open Ds_util

type config = {
  dir : string;
  quota_words : int;
  queue_bound : int;
  drain_per_tick : int;
  checkpoint_every : int;
  max_frame : int;
  retention : int;
  tenant_gauges : int;
  tenant_stats_cap : int;
  flight : bool;
}

let default_config ~dir =
  {
    dir;
    quota_words = 4_000_000;
    queue_bound = 256;
    drain_per_tick = 128;
    checkpoint_every = 256;
    max_frame = 16 * 1024 * 1024;
    retention = 2;
    tenant_gauges = 8;
    tenant_stats_cap = 64;
    flight = false;
  }

type conn = {
  cid : int;
  reader : Frame_reader.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable alive : bool;
}

type pending = {
  p_conn : conn;
  p_tenant : string;
  p_stream : string;
  p_seq : int;
  p_payload : string;
  p_arrival : int64;
  p_ctx : Ds_obs.Trace.context option;
      (* sender's span, carried in the frame's TCTX extension *)
}

(* Per-tenant observability rollup: an ungated NACK taxonomy (plain
   ints — the select loop is single-threaded) plus a gated latency
   quantile sketch.  The table is capped at [tenant_stats_cap]
   distinct tenants; later arrivals share the ["!overflow"] slot
   (['!'] fails {!Registry.name_ok}, so no real tenant can collide
   with it). *)
type tstat = {
  ts_lat : Ds_obs.Quantile.t;
  ts_nacks : int array;
}

let overflow_tenant = "!overflow"
let n_nack_kinds = Array.length Sframe.nack_kinds

type recovery_report = {
  r_tenants : int;
  r_streams : int;
  r_quarantined : int;  (** generations + torn tmp files quarantined *)
  r_degraded_copies : int;
  r_ns : int64;
}

type t = {
  config : config;
  registry : Registry.t;
  queue : pending Queue.t;
  mutable applied_since_checkpoint : int;
  mutable next_conn_id : int;
  mutable events : string list;  (* newest first *)
  mutable recovery : recovery_report;
  tstats : (string, tstat) Hashtbl.t;
  nack_totals : int array;  (* global taxonomy, ungated *)
  mutable overloaded : bool;  (* true between overload onset and relief *)
  mutable gauged : string list;  (* tenants currently held as registry gauges *)
  mutable flight : Flight.t option;
}

(* Metrics: registered once, cheap when disabled (one atomic load). *)
let m_frames = Ds_obs.Metrics.counter "serve.ingest.frames"
let m_applied = Ds_obs.Metrics.counter "serve.ingest.applied"
let m_duplicate = Ds_obs.Metrics.counter "serve.ingest.duplicate"

(* Quantile sketch instead of the old log2 histogram: the STAT rollup
   needs an honest p99/p999, which power-of-two buckets cannot give. *)
let q_latency = Ds_obs.Quantile.quantile "serve.ingest.latency_ns"
let m_queue_depth = Ds_obs.Metrics.gauge "serve.queue.depth"
let m_stat = Ds_obs.Metrics.counter "serve.stat.requests"
let m_ckpt = Ds_obs.Metrics.counter "serve.checkpoint.generations"
let m_ckpt_lag = Ds_obs.Metrics.gauge "serve.checkpoint.lag_frames"
let m_quarantined = Ds_obs.Metrics.counter "serve.checkpoint.quarantined"
let m_degraded = Ds_obs.Metrics.counter "serve.recovery.degraded_copies"

let m_nack =
  let kinds =
    [
      "overloaded";
      "quota_exceeded";
      "unknown_stream";
      "stream_exists";
      "unknown_family";
      "bad_seq";
      "bad_frame";
    ]
  in
  let tbl = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tbl k (Ds_obs.Metrics.counter ("serve.nack." ^ k))) kinds;
  fun reason -> Hashtbl.find tbl (Sframe.nack_name reason)

let event t fmt = Printf.ksprintf (fun m -> t.events <- m :: t.events) fmt
let events t = List.rev t.events
let recovery_report t = t.recovery
let registry t = t.registry
let config t = t.config

(* ------------------------------------------------------------------ *)
(* Live observability: per-tenant rollups, STAT document, flight       *)
(* ------------------------------------------------------------------ *)

let tstat_for t tenant =
  match Hashtbl.find_opt t.tstats tenant with
  | Some s -> s
  | None ->
      let key =
        if Hashtbl.length t.tstats < t.config.tenant_stats_cap then tenant
        else overflow_tenant
      in
      (match Hashtbl.find_opt t.tstats key with
      | Some s -> s
      | None ->
          let s =
            {
              ts_lat = Ds_obs.Quantile.make ~gated:true ();
              ts_nacks = Array.make n_nack_kinds 0;
            }
          in
          Hashtbl.replace t.tstats key s;
          s)

let total_lag t =
  let lag = ref 0 in
  Registry.iter_tenants t.registry (fun tn -> lag := !lag + Registry.checkpoint_lag tn);
  !lag

let empty_summary =
  {
    Ds_obs.Quantile.s_count = 0;
    s_sum = 0;
    s_p50 = Float.nan;
    s_p90 = Float.nan;
    s_p99 = Float.nan;
    s_p999 = Float.nan;
  }

let take n l =
  let rec go n = function x :: tl when n > 0 -> x :: go (n - 1) tl | _ -> [] in
  go n l

(* Tenants by measured footprint, heaviest first (name-ascending among
   ties so the ordering — and every export derived from it — is
   deterministic). *)
let tenants_by_words t =
  let tenants = ref [] in
  Registry.iter_tenants t.registry (fun tn -> tenants := tn :: !tenants);
  List.sort
    (fun (a : Registry.tenant) (b : Registry.tenant) ->
      compare (b.Registry.words, a.Registry.t_name) (a.Registry.words, b.Registry.t_name))
    !tenants

let bprint_nacks b counts =
  Buffer.add_char b '{';
  let first = ref true in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Printf.bprintf b "\"%s\":%d" Sframe.nack_kinds.(i) n
      end)
    counts;
  Buffer.add_char b '}'

(* The [serve_stats/v1] document: global queue/backpressure state,
   totals, NACK taxonomy and ingest quantiles, plus a per-tenant
   rollup bounded at [tenant_stats_cap] heaviest tenants (the rest are
   aggregated under [tenants_omitted]) — this is where per-tenant
   numbers live now that registry gauges only track the top-K. *)
let stat_json t =
  let b = Buffer.create 2048 in
  let all = tenants_by_words t in
  let shown = take t.config.tenant_stats_cap all in
  let n_shown = List.length shown in
  let omitted = List.length all - n_shown in
  let omitted_words =
    if omitted = 0 then 0
    else
      List.fold_left (fun acc tn -> acc + tn.Registry.words) 0 all
      - List.fold_left (fun acc tn -> acc + tn.Registry.words) 0 shown
  in
  let tenants_total, streams_total, frames_total, words_total =
    Registry.stats t.registry
  in
  Printf.bprintf b "{\"schema\":\"serve_stats/v1\",\"observability\":%b,"
    (Ds_obs.Metrics.enabled ());
  Printf.bprintf b "\"queue\":{\"depth\":%d,\"bound\":%d,\"overloaded\":%b},"
    (Queue.length t.queue) t.config.queue_bound t.overloaded;
  Printf.bprintf b
    "\"totals\":{\"tenants\":%d,\"streams\":%d,\"applied_frames\":%d,\"words\":%d,\"quota_words\":%d,\"checkpoint_lag\":%d},"
    tenants_total streams_total frames_total words_total
    (Registry.quota_words t.registry)
    (total_lag t);
  Buffer.add_string b "\"nacks\":";
  bprint_nacks b t.nack_totals;
  Printf.bprintf b ",\"ingest\":%s,"
    (Ds_obs.Quantile.summary_json (Ds_obs.Quantile.summarize q_latency));
  Printf.bprintf b "\"flight\":{\"armed\":%b,\"dumps\":%d},"
    (t.flight <> None)
    (match t.flight with Some f -> Flight.dumps f | None -> 0);
  Buffer.add_string b "\"tenants\":{";
  List.iteri
    (fun i (tn : Registry.tenant) ->
      if i > 0 then Buffer.add_char b ',';
      let applied = ref 0 and durable = ref 0 in
      Hashtbl.iter
        (fun _ (s : Registry.stream) ->
          applied := !applied + s.Registry.applied_seq;
          durable := !durable + s.Registry.durable_seq)
        tn.Registry.streams;
      Printf.bprintf b
        "\"%s\":{\"words\":%d,\"quota_words\":%d,\"streams\":%d,\"generation\":%d,\"applied_frames\":%d,\"durable_frames\":%d,\"checkpoint_lag\":%d,"
        (Json.escape tn.Registry.t_name)
        tn.Registry.words
        (Registry.quota_words t.registry)
        (Hashtbl.length tn.Registry.streams)
        tn.Registry.generation !applied !durable
        (Registry.checkpoint_lag tn);
      let summary, nacks =
        match Hashtbl.find_opt t.tstats tn.Registry.t_name with
        | Some ts -> (Ds_obs.Quantile.summarize ts.ts_lat, ts.ts_nacks)
        | None -> (empty_summary, Array.make n_nack_kinds 0)
      in
      Printf.bprintf b "\"ingest\":%s,\"nacks\":"
        (Ds_obs.Quantile.summary_json summary);
      bprint_nacks b nacks;
      Buffer.add_char b '}')
    shown;
  Buffer.add_string b "},";
  Printf.bprintf b "\"tenants_omitted\":{\"count\":%d,\"words\":%d}" omitted
    omitted_words;
  (match Hashtbl.find_opt t.tstats overflow_tenant with
  | Some ts ->
      Printf.bprintf b ",\"overflow\":{\"ingest\":%s,\"nacks\":"
        (Ds_obs.Quantile.summary_json (Ds_obs.Quantile.summarize ts.ts_lat));
      bprint_nacks b ts.ts_nacks;
      Buffer.add_char b '}'
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let flight_dump t reason =
  match t.flight with
  | None -> ()
  | Some f ->
      Flight.dump f ~reason ~stats_json:(stat_json t) ~events:t.events

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

let checkpoint_tenant t (tn : Registry.tenant) =
  let generation = max tn.Registry.generation tn.Registry.max_gen_seen + 1 in
  let records = Registry.records_of_tenant tn in
  Checkpoint.write ~dir:t.config.dir ~tenant:tn.Registry.t_name ~generation records;
  Registry.mark_durable tn ~generation;
  Checkpoint.prune ~dir:t.config.dir ~tenant:tn.Registry.t_name ~keep:t.config.retention;
  Ds_obs.Metrics.incr m_ckpt 1;
  if Ds_obs.Metrics.enabled () then
    (* The per-tenant budget enforced at admission, recorded against the
       measured footprint: the ledger constant is words/quota <= 1.
       (The per-tenant words *gauge* moved to the top-K refresh below —
       a registry entry per tenant name does not survive a
       million-tenant run.) *)
    Ds_obs.Ledger.record
      ~phase:("serve." ^ tn.Registry.t_name)
      ~words:tn.Registry.words
      (float_of_int (Registry.quota_words t.registry));
  event t "checkpoint: tenant %s generation %d (%d streams, %d words)" tn.Registry.t_name
    generation
    (Hashtbl.length tn.Registry.streams)
    tn.Registry.words;
  generation

(* Keep registry gauges for only the [tenant_gauges] heaviest tenants,
   evicting names that fell out of the top-K ({!Metrics.unregister}):
   the registry and the Prometheus export stay bounded no matter how
   many tenant names pass through.  Everyone else is still visible in
   the STAT rollup. *)
let refresh_tenant_gauges t =
  if Ds_obs.Metrics.enabled () then begin
    let top = take t.config.tenant_gauges (tenants_by_words t) in
    let top_names = List.map (fun (tn : Registry.tenant) -> tn.Registry.t_name) top in
    List.iter
      (fun name ->
        if not (List.mem name top_names) then
          Ds_obs.Metrics.unregister ("serve.tenant.words." ^ name))
      t.gauged;
    List.iter
      (fun (tn : Registry.tenant) ->
        Ds_obs.Metrics.set
          (Ds_obs.Metrics.gauge ("serve.tenant.words." ^ tn.Registry.t_name))
          tn.Registry.words)
      top;
    t.gauged <- top_names
  end

let checkpoint_now t =
  List.iter (fun tn -> ignore (checkpoint_tenant t tn)) (Registry.dirty_tenants t.registry);
  t.applied_since_checkpoint <- 0;
  Ds_obs.Metrics.set m_ckpt_lag 0;
  refresh_tenant_gauges t;
  flight_dump t "checkpoint"

let recover t =
  let t0 = Ds_obs.Clock.now_ns () in
  let quarantined = ref 0 and degraded = ref 0 and tenants = ref 0 and streams = ref 0 in
  List.iter
    (fun tenant ->
      let tmp = Checkpoint.quarantine_tmp ~dir:t.config.dir ~tenant in
      if tmp > 0 then begin
        quarantined := !quarantined + tmp;
        event t "quarantine: tenant %s: %d torn tmp file(s) from a crashed writer" tenant tmp
      end;
      let rec try_gens = function
        | [] -> ()
        | g :: older -> (
            let path = Checkpoint.gen_path ~dir:t.config.dir ~tenant ~generation:g in
            let fail reason =
              Checkpoint.quarantine path;
              incr quarantined;
              event t "quarantine: %s: %s" path reason;
              Registry.remove_tenant t.registry tenant;
              try_gens older
            in
            match Checkpoint.read path with
            | Error reason -> fail reason
            | Ok (gen, tenant_in_file, records) ->
                if tenant_in_file <> tenant then fail "tenant name mismatch"
                else begin
                  Registry.remove_tenant t.registry tenant;
                  let rec load lost = function
                    | [] -> Ok lost
                    | r :: rest -> (
                        match Registry.load_record t.registry ~tenant r with
                        | Ok l -> load (lost + l) rest
                        | Error m ->
                            Error (Printf.sprintf "stream %s: %s" r.Checkpoint.r_stream m))
                  in
                  match load 0 records with
                  | Error reason -> fail reason
                  | Ok lost ->
                      let tn = Registry.get_or_add_tenant t.registry tenant in
                      tn.Registry.generation <- gen;
                      tn.Registry.max_gen_seen <- Checkpoint.max_seen ~dir:t.config.dir ~tenant;
                      tn.Registry.dirty <- false;
                      incr tenants;
                      streams := !streams + Hashtbl.length tn.Registry.streams;
                      degraded := !degraded + lost;
                      if lost > 0 then
                        event t
                          "degraded: tenant %s generation %d lost %d AGM cop(ies); serving \
                           certified deltas from the surviving quorum"
                          tenant gen lost;
                      event t "recovered: tenant %s at generation %d (%d streams)" tenant gen
                        (Hashtbl.length tn.Registry.streams)
                end)
      in
      try_gens (Checkpoint.generations ~dir:t.config.dir ~tenant))
    (Checkpoint.tenants ~dir:t.config.dir);
  Ds_obs.Metrics.incr m_quarantined !quarantined;
  Ds_obs.Metrics.incr m_degraded !degraded;
  t.recovery <-
    {
      r_tenants = !tenants;
      r_streams = !streams;
      r_quarantined = !quarantined;
      r_degraded_copies = !degraded;
      r_ns = Ds_obs.Clock.elapsed_ns t0;
    }

let create config =
  let t =
    {
      config;
      registry = Registry.create ~quota_words:config.quota_words;
      queue = Queue.create ();
      applied_since_checkpoint = 0;
      next_conn_id = 0;
      events = [];
      recovery =
        { r_tenants = 0; r_streams = 0; r_quarantined = 0; r_degraded_copies = 0; r_ns = 0L };
      tstats = Hashtbl.create 16;
      nack_totals = Array.make n_nack_kinds 0;
      overloaded = false;
      gauged = [];
      flight = (if config.flight then Some (Flight.create ~dir:config.dir ()) else None);
    }
  in
  recover t;
  (* Corruption found on the recovery walk is exactly the moment an
     operator wants a forensic artifact. *)
  if t.recovery.r_quarantined > 0 then flight_dump t "recovery-quarantine";
  t

(* ------------------------------------------------------------------ *)
(* Transport-agnostic request processing                               *)
(* ------------------------------------------------------------------ *)

let connect t =
  let cid = t.next_conn_id in
  t.next_conn_id <- cid + 1;
  {
    cid;
    reader = Frame_reader.create ~max_frame:t.config.max_frame ();
    out = Buffer.create 1024;
    out_pos = 0;
    alive = true;
  }

let conn_failed c = (not c.alive) || Frame_reader.failed c.reader <> None

let respond c resp = Buffer.add_string c.out (Sframe.frame (Sframe.encode_response resp))

let nack ?tenant t c ~seq reason =
  Ds_obs.Metrics.incr (m_nack reason) 1;
  let idx = Sframe.nack_index reason in
  t.nack_totals.(idx) <- t.nack_totals.(idx) + 1;
  (match tenant with
  | Some tn ->
      let s = tstat_for t tn in
      s.ts_nacks.(idx) <- s.ts_nacks.(idx) + 1
  | None -> ());
  respond c (Sframe.Nack { seq; reason })

let take_output c =
  let s = Buffer.sub c.out c.out_pos (Buffer.length c.out - c.out_pos) in
  Buffer.clear c.out;
  c.out_pos <- 0;
  s

let pending_depth t = Queue.length t.queue

let handle t c ?ctx (req : Sframe.request) =
  match req with
  | Sframe.Ingest { tenant; stream; seq; payload } ->
      Ds_obs.Metrics.incr m_frames 1;
      let depth = Queue.length t.queue in
      if depth >= t.config.queue_bound then begin
        if not t.overloaded then begin
          t.overloaded <- true;
          event t "overload: queue hit bound %d" t.config.queue_bound;
          flight_dump t "overload"
        end;
        nack ~tenant t c ~seq
          (Sframe.Overloaded { queue_depth = depth; bound = t.config.queue_bound })
      end
      else begin
        Queue.add
          {
            p_conn = c;
            p_tenant = tenant;
            p_stream = stream;
            p_seq = seq;
            p_payload = payload;
            p_arrival = Ds_obs.Clock.now_ns ();
            p_ctx = ctx;
          }
          t.queue;
        Ds_obs.Metrics.set m_queue_depth (depth + 1)
      end
  | Sframe.Create { tenant; stream; family; n; seed } -> (
      match Registry.create_stream t.registry ~tenant ~stream ~family ~n ~seed with
      | Ok s ->
          respond c
            (Sframe.Created { words = Ds_sketch.Linear_sketch.Packed.space_in_words s.packed })
      | Error reason -> nack ~tenant t c ~seq:(-1) reason)
  | Sframe.Query { tenant; stream } -> (
      match Option.bind (Registry.find_tenant t.registry tenant) (fun tn ->
                Registry.find_stream tn stream)
      with
      | Some s -> respond c (Registry.state s)
      | None -> nack ~tenant t c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Seq_query { tenant; stream } -> (
      match Option.bind (Registry.find_tenant t.registry tenant) (fun tn ->
                Registry.find_stream tn stream)
      with
      | Some s ->
          respond c
            (Sframe.Seqs { applied_seq = s.Registry.applied_seq; durable_seq = s.Registry.durable_seq })
      | None -> nack ~tenant t c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Flush { tenant } -> (
      match Registry.find_tenant t.registry tenant with
      | Some tn ->
          let generation =
            if tn.Registry.dirty then checkpoint_tenant t tn else tn.Registry.generation
          in
          respond c (Sframe.Flushed { generation })
      | None -> nack ~tenant t c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Drop_copies { tenant; stream; copies } -> (
      match Option.bind (Registry.find_tenant t.registry tenant) (fun tn ->
                Registry.find_stream tn stream)
      with
      | Some s ->
          let lost = Registry.drop_copies s copies in
          event t "degraded: tenant %s stream %s marked %d cop(ies) lost" tenant stream lost;
          respond c (Sframe.Dropped { copies_lost = lost })
      | None -> nack ~tenant t c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Stats ->
      let tenants, streams, applied_frames, words = Registry.stats t.registry in
      respond c (Sframe.Stats_reply { tenants; streams; applied_frames; words })
  | Sframe.Stat_rollup ->
      Ds_obs.Metrics.incr m_stat 1;
      respond c (Sframe.Stat_rollup_reply { json = stat_json t })

let feed t c bytes =
  Frame_reader.feed c.reader bytes;
  let rec loop () =
    match Frame_reader.next c.reader with
    | Error e ->
        (* Length-prefix poisoned: the stream cannot resynchronise. *)
        event t "conn %d: dropped: %s" c.cid (Wire.frame_error_to_string e);
        c.alive <- false
    | Ok None -> ()
    | Ok (Some payload) ->
        (match Sframe.decode_request_traced payload with
        | Ok (req, ctx) -> handle t c ?ctx req
        | Error m -> nack t c ~seq:(-1) (Sframe.Bad_frame m));
        loop ()
  in
  if c.alive then loop ()

let apply_one t (p : pending) =
  match
    Option.bind (Registry.find_tenant t.registry p.p_tenant) (fun tn ->
        Registry.find_stream tn p.p_stream)
  with
  | None ->
      if p.p_conn.alive then
        nack ~tenant:p.p_tenant t p.p_conn ~seq:p.p_seq Sframe.Unknown_stream
  | Some s -> (
      match Registry.apply s ~seq:p.p_seq ~payload:p.p_payload with
      | Ok applied ->
          (match applied with
          | Registry.Applied ->
              (Registry.get_or_add_tenant t.registry p.p_tenant).Registry.dirty <- true;
              t.applied_since_checkpoint <- t.applied_since_checkpoint + 1;
              Ds_obs.Metrics.incr m_applied 1
          | Registry.Duplicate -> Ds_obs.Metrics.incr m_duplicate 1);
          let dur_ns = Ds_obs.Clock.elapsed_ns p.p_arrival in
          Ds_obs.Quantile.observe q_latency (Int64.to_int dur_ns);
          Ds_obs.Quantile.observe (tstat_for t p.p_tenant).ts_lat (Int64.to_int dur_ns);
          (* The frame carried the sender's span context: the apply span
             parents under it, linking client and server traces across
             the process boundary (same shape as sketch.decode under
             LSK1's TCTX). *)
          (match p.p_ctx with
          | Some ctx ->
              Ds_obs.Trace.record_linked "serve.apply" ctx ~start_ns:p.p_arrival
                ~dur_ns
          | None ->
              (* Untraced sender: still a root span, so the flight
                 recorder shows what was applied right before a crash. *)
              Ds_obs.Trace.record "serve.apply" ~start_ns:p.p_arrival ~dur_ns);
          if p.p_conn.alive then
            respond p.p_conn
              (Sframe.Ack { seq = p.p_seq; durable_seq = s.Registry.durable_seq })
      | Error reason ->
          if p.p_conn.alive then
            nack ~tenant:p.p_tenant t p.p_conn ~seq:p.p_seq reason)

let drain t =
  let budget = ref t.config.drain_per_tick in
  while !budget > 0 && not (Queue.is_empty t.queue) do
    apply_one t (Queue.pop t.queue);
    decr budget
  done;
  let depth = Queue.length t.queue in
  (* Overload relief: only clear the flag once the queue has drained to
     half the bound, so a queue oscillating at the bound logs (and
     flight-dumps) one onset, not one per NACK. *)
  if t.overloaded && depth * 2 <= t.config.queue_bound then t.overloaded <- false;
  Ds_obs.Metrics.set m_queue_depth depth;
  Ds_obs.Metrics.set m_ckpt_lag (total_lag t);
  if t.applied_since_checkpoint >= t.config.checkpoint_every then checkpoint_now t

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket accept/ingest loop                               *)
(* ------------------------------------------------------------------ *)

(* Minimal HTTP/1.0 responder for the optional admin socket: GET
   /stats (STAT rollup), /metrics (Prometheus), /json (full ds_obs/v1
   report), /healthz.  One request per connection, close on flush —
   enough for curl and any Prometheus scraper, with zero parsing state
   beyond the request head. *)
type admin_conn = { a_in : Buffer.t; mutable a_out : string; mutable a_pos : int }

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let admin_respond t a =
  let head = Buffer.contents a.a_in in
  let line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> (
        match String.index_opt head '\n' with
        | Some i -> String.sub head 0 i
        | None -> head)
  in
  let target =
    match String.split_on_char ' ' line with _ :: path :: _ -> path | _ -> "/"
  in
  let status, ctype, body =
    match target with
    | "/stats" -> ("200 OK", "application/json", stat_json t ^ "\n")
    | "/metrics" ->
        ("200 OK", "text/plain; version=0.0.4", Ds_obs.Export.prometheus ())
    | "/json" -> ("200 OK", "application/json", Ds_obs.Export.report_json ())
    | "/healthz" -> ("200 OK", "text/plain", "ok\n")
    | _ -> ("404 Not Found", "text/plain", "not found\n")
  in
  a.a_out <-
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      status ctype (String.length body) body

let stop_requested = ref false

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> stop_requested := true) in
  (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
  (* Writing to a client that vanished must be EPIPE (we close the
     conn), not process death. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let run_unix t ~socket_path ?admin_path ?(tick = 0.02) ?max_ticks () =
  stop_requested := false;
  install_signal_handlers ();
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let admin_listener =
    match admin_path with
    | None -> None
    | Some path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let l = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind l (Unix.ADDR_UNIX path);
        Unix.listen l 16;
        Unix.set_nonblock l;
        Some l
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let admins : (Unix.file_descr, admin_conn) Hashtbl.t = Hashtbl.create 8 in
  let close_fd fd =
    (match Hashtbl.find_opt conns fd with
    | Some c -> c.alive <- false
    | None -> ());
    Hashtbl.remove conns fd;
    Hashtbl.remove admins fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let r = t.recovery in
  Fmt.pr "serve: recovered %d tenant(s), %d stream(s), %d quarantined, %d degraded copies in \
          %.1f ms@."
    r.r_tenants r.r_streams r.r_quarantined r.r_degraded_copies
    (Int64.to_float r.r_ns /. 1e6);
  Fmt.pr "serve: listening on %s@." socket_path;
  (match admin_path with
  | Some p -> Fmt.pr "serve: admin plane on %s@." p
  | None -> ());
  Format.pp_print_flush Format.std_formatter ();
  let buf = Bytes.create 65536 in
  let ticks = ref 0 in
  let finished () =
    match max_ticks with Some m -> !ticks >= m | None -> false
  in
  (try
     while (not !stop_requested) && not (finished ()) do
       incr ticks;
       let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
       let fds =
         Hashtbl.fold
           (fun fd a acc -> if a.a_out = "" then fd :: acc else acc)
           admins fds
       in
       let fds = match admin_listener with Some l -> l :: fds | None -> fds in
       let writable =
         Hashtbl.fold
           (fun fd c acc -> if Buffer.length c.out > c.out_pos then fd :: acc else acc)
           conns []
       in
       let writable =
         Hashtbl.fold
           (fun fd a acc ->
             if a.a_out <> "" && a.a_pos < String.length a.a_out then fd :: acc
             else acc)
           admins writable
       in
       let readable, writable, _ =
         try Unix.select (listener :: fds) writable [] tick
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       let accept_into l register =
         let continue = ref true in
         while !continue do
           match Unix.accept l with
           | client, _ ->
               Unix.set_nonblock client;
               register client
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
               continue := false
           | exception Unix.Unix_error _ -> continue := false
         done
       in
       List.iter
         (fun fd ->
           if fd = listener then
             accept_into listener (fun client ->
                 Hashtbl.replace conns client (connect t))
           else if admin_listener = Some fd then
             accept_into fd (fun client ->
                 Hashtbl.replace admins client
                   { a_in = Buffer.create 256; a_out = ""; a_pos = 0 })
           else
             match Hashtbl.find_opt conns fd with
             | Some c -> (
                 match Unix.read fd buf 0 (Bytes.length buf) with
                 | 0 -> close_fd fd
                 | n -> feed t c (Bytes.sub_string buf 0 n)
                 | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                 | exception Unix.Unix_error _ -> close_fd fd)
             | None -> (
                 match Hashtbl.find_opt admins fd with
                 | None -> ()
                 | Some a -> (
                     match Unix.read fd buf 0 (Bytes.length buf) with
                     | 0 -> close_fd fd
                     | n ->
                         Buffer.add_subbytes a.a_in buf 0 n;
                         (* Respond once the request head is complete. *)
                         let head = Buffer.contents a.a_in in
                         if
                           a.a_out = ""
                           && (contains_substring head "\r\n\r\n"
                              || contains_substring head "\n\n")
                         then admin_respond t a
                     | exception
                         Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                         ()
                     | exception Unix.Unix_error _ -> close_fd fd)))
         readable;
       drain t;
       List.iter
         (fun fd ->
           match Hashtbl.find_opt conns fd with
           | Some c -> (
               let len = Buffer.length c.out - c.out_pos in
               if len > 0 then
                 match Unix.write_substring fd (Buffer.sub c.out c.out_pos len) 0 len with
                 | n ->
                     c.out_pos <- c.out_pos + n;
                     if c.out_pos = Buffer.length c.out then begin
                       Buffer.clear c.out;
                       c.out_pos <- 0
                     end
                 | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                 | exception Unix.Unix_error _ -> close_fd fd)
           | None -> (
               match Hashtbl.find_opt admins fd with
               | None -> ()
               | Some a -> (
                   let len = String.length a.a_out - a.a_pos in
                   if len > 0 then
                     match Unix.write_substring fd a.a_out a.a_pos len with
                     | n ->
                         a.a_pos <- a.a_pos + n;
                         if a.a_pos = String.length a.a_out then close_fd fd
                     | exception
                         Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                         ()
                     | exception Unix.Unix_error _ -> close_fd fd)))
         writable;
       (* Poisoned connections are closed once their NACKs have flushed. *)
       Hashtbl.iter
         (fun fd c ->
           if conn_failed c && Buffer.length c.out <= c.out_pos then close_fd fd)
         (Hashtbl.copy conns)
     done
   with e ->
     Unix.close listener;
     (match admin_listener with
     | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
     | None -> ());
     raise e);
  (* Graceful exit (SIGTERM/SIGINT or max_ticks): drain what is queued
     and make it durable — only kill -9 loses the undurable suffix, and
     that suffix is exactly what clients replay by linearity. *)
  while not (Queue.is_empty t.queue) do
    drain t
  done;
  checkpoint_now t;
  flight_dump t "shutdown";
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) admins;
  Unix.close listener;
  (match admin_listener with
  | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
  | None -> ());
  (match admin_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  try Unix.unlink socket_path with Unix.Unix_error _ -> ()
