open Ds_util

type config = {
  dir : string;
  quota_words : int;
  queue_bound : int;
  drain_per_tick : int;
  checkpoint_every : int;
  max_frame : int;
  retention : int;
}

let default_config ~dir =
  {
    dir;
    quota_words = 4_000_000;
    queue_bound = 256;
    drain_per_tick = 128;
    checkpoint_every = 256;
    max_frame = 16 * 1024 * 1024;
    retention = 2;
  }

type conn = {
  cid : int;
  reader : Frame_reader.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable alive : bool;
}

type pending = {
  p_conn : conn;
  p_tenant : string;
  p_stream : string;
  p_seq : int;
  p_payload : string;
  p_arrival : int64;
}

type recovery_report = {
  r_tenants : int;
  r_streams : int;
  r_quarantined : int;  (** generations + torn tmp files quarantined *)
  r_degraded_copies : int;
  r_ns : int64;
}

type t = {
  config : config;
  registry : Registry.t;
  queue : pending Queue.t;
  mutable applied_since_checkpoint : int;
  mutable next_conn_id : int;
  mutable events : string list;  (* newest first *)
  mutable recovery : recovery_report;
}

(* Metrics: registered once, cheap when disabled (one atomic load). *)
let m_frames = Ds_obs.Metrics.counter "serve.ingest.frames"
let m_applied = Ds_obs.Metrics.counter "serve.ingest.applied"
let m_duplicate = Ds_obs.Metrics.counter "serve.ingest.duplicate"
let m_latency = Ds_obs.Metrics.histogram "serve.ingest.latency_ns"
let m_queue_depth = Ds_obs.Metrics.gauge "serve.queue.depth"
let m_ckpt = Ds_obs.Metrics.counter "serve.checkpoint.generations"
let m_ckpt_lag = Ds_obs.Metrics.gauge "serve.checkpoint.lag_frames"
let m_quarantined = Ds_obs.Metrics.counter "serve.checkpoint.quarantined"
let m_degraded = Ds_obs.Metrics.counter "serve.recovery.degraded_copies"

let m_nack =
  let kinds =
    [
      "overloaded";
      "quota_exceeded";
      "unknown_stream";
      "stream_exists";
      "unknown_family";
      "bad_seq";
      "bad_frame";
    ]
  in
  let tbl = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tbl k (Ds_obs.Metrics.counter ("serve.nack." ^ k))) kinds;
  fun reason -> Hashtbl.find tbl (Sframe.nack_name reason)

let event t fmt = Printf.ksprintf (fun m -> t.events <- m :: t.events) fmt
let events t = List.rev t.events
let recovery_report t = t.recovery
let registry t = t.registry
let config t = t.config

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

let checkpoint_tenant t (tn : Registry.tenant) =
  let generation = max tn.Registry.generation tn.Registry.max_gen_seen + 1 in
  let records = Registry.records_of_tenant tn in
  Checkpoint.write ~dir:t.config.dir ~tenant:tn.Registry.t_name ~generation records;
  Registry.mark_durable tn ~generation;
  Checkpoint.prune ~dir:t.config.dir ~tenant:tn.Registry.t_name ~keep:t.config.retention;
  Ds_obs.Metrics.incr m_ckpt 1;
  if Ds_obs.Metrics.enabled () then begin
    Ds_obs.Metrics.set
      (Ds_obs.Metrics.gauge ("serve.tenant.words." ^ tn.Registry.t_name))
      tn.Registry.words;
    (* The per-tenant budget enforced at admission, recorded against the
       measured footprint: the ledger constant is words/quota <= 1. *)
    Ds_obs.Ledger.record
      ~phase:("serve." ^ tn.Registry.t_name)
      ~words:tn.Registry.words
      (float_of_int (Registry.quota_words t.registry))
  end;
  event t "checkpoint: tenant %s generation %d (%d streams, %d words)" tn.Registry.t_name
    generation
    (Hashtbl.length tn.Registry.streams)
    tn.Registry.words;
  generation

let checkpoint_now t =
  List.iter (fun tn -> ignore (checkpoint_tenant t tn)) (Registry.dirty_tenants t.registry);
  t.applied_since_checkpoint <- 0;
  Ds_obs.Metrics.set m_ckpt_lag 0

let total_lag t =
  let lag = ref 0 in
  Registry.iter_tenants t.registry (fun tn -> lag := !lag + Registry.checkpoint_lag tn);
  !lag

let recover t =
  let t0 = Ds_obs.Clock.now_ns () in
  let quarantined = ref 0 and degraded = ref 0 and tenants = ref 0 and streams = ref 0 in
  List.iter
    (fun tenant ->
      let tmp = Checkpoint.quarantine_tmp ~dir:t.config.dir ~tenant in
      if tmp > 0 then begin
        quarantined := !quarantined + tmp;
        event t "quarantine: tenant %s: %d torn tmp file(s) from a crashed writer" tenant tmp
      end;
      let rec try_gens = function
        | [] -> ()
        | g :: older -> (
            let path = Checkpoint.gen_path ~dir:t.config.dir ~tenant ~generation:g in
            let fail reason =
              Checkpoint.quarantine path;
              incr quarantined;
              event t "quarantine: %s: %s" path reason;
              Registry.remove_tenant t.registry tenant;
              try_gens older
            in
            match Checkpoint.read path with
            | Error reason -> fail reason
            | Ok (gen, tenant_in_file, records) ->
                if tenant_in_file <> tenant then fail "tenant name mismatch"
                else begin
                  Registry.remove_tenant t.registry tenant;
                  let rec load lost = function
                    | [] -> Ok lost
                    | r :: rest -> (
                        match Registry.load_record t.registry ~tenant r with
                        | Ok l -> load (lost + l) rest
                        | Error m ->
                            Error (Printf.sprintf "stream %s: %s" r.Checkpoint.r_stream m))
                  in
                  match load 0 records with
                  | Error reason -> fail reason
                  | Ok lost ->
                      let tn = Registry.get_or_add_tenant t.registry tenant in
                      tn.Registry.generation <- gen;
                      tn.Registry.max_gen_seen <- Checkpoint.max_seen ~dir:t.config.dir ~tenant;
                      tn.Registry.dirty <- false;
                      incr tenants;
                      streams := !streams + Hashtbl.length tn.Registry.streams;
                      degraded := !degraded + lost;
                      if lost > 0 then
                        event t
                          "degraded: tenant %s generation %d lost %d AGM cop(ies); serving \
                           certified deltas from the surviving quorum"
                          tenant gen lost;
                      event t "recovered: tenant %s at generation %d (%d streams)" tenant gen
                        (Hashtbl.length tn.Registry.streams)
                end)
      in
      try_gens (Checkpoint.generations ~dir:t.config.dir ~tenant))
    (Checkpoint.tenants ~dir:t.config.dir);
  Ds_obs.Metrics.incr m_quarantined !quarantined;
  Ds_obs.Metrics.incr m_degraded !degraded;
  t.recovery <-
    {
      r_tenants = !tenants;
      r_streams = !streams;
      r_quarantined = !quarantined;
      r_degraded_copies = !degraded;
      r_ns = Ds_obs.Clock.elapsed_ns t0;
    }

let create config =
  let t =
    {
      config;
      registry = Registry.create ~quota_words:config.quota_words;
      queue = Queue.create ();
      applied_since_checkpoint = 0;
      next_conn_id = 0;
      events = [];
      recovery =
        { r_tenants = 0; r_streams = 0; r_quarantined = 0; r_degraded_copies = 0; r_ns = 0L };
    }
  in
  recover t;
  t

(* ------------------------------------------------------------------ *)
(* Transport-agnostic request processing                               *)
(* ------------------------------------------------------------------ *)

let connect t =
  let cid = t.next_conn_id in
  t.next_conn_id <- cid + 1;
  {
    cid;
    reader = Frame_reader.create ~max_frame:t.config.max_frame ();
    out = Buffer.create 1024;
    out_pos = 0;
    alive = true;
  }

let conn_failed c = (not c.alive) || Frame_reader.failed c.reader <> None

let respond c resp = Buffer.add_string c.out (Sframe.frame (Sframe.encode_response resp))

let nack c ~seq reason =
  Ds_obs.Metrics.incr (m_nack reason) 1;
  respond c (Sframe.Nack { seq; reason })

let take_output c =
  let s = Buffer.sub c.out c.out_pos (Buffer.length c.out - c.out_pos) in
  Buffer.clear c.out;
  c.out_pos <- 0;
  s

let pending_depth t = Queue.length t.queue

let handle t c (req : Sframe.request) =
  match req with
  | Sframe.Ingest { tenant; stream; seq; payload } ->
      Ds_obs.Metrics.incr m_frames 1;
      let depth = Queue.length t.queue in
      if depth >= t.config.queue_bound then
        nack c ~seq (Sframe.Overloaded { queue_depth = depth; bound = t.config.queue_bound })
      else begin
        Queue.add
          {
            p_conn = c;
            p_tenant = tenant;
            p_stream = stream;
            p_seq = seq;
            p_payload = payload;
            p_arrival = Ds_obs.Clock.now_ns ();
          }
          t.queue;
        Ds_obs.Metrics.set m_queue_depth (depth + 1)
      end
  | Sframe.Create { tenant; stream; family; n; seed } -> (
      match Registry.create_stream t.registry ~tenant ~stream ~family ~n ~seed with
      | Ok s ->
          respond c
            (Sframe.Created { words = Ds_sketch.Linear_sketch.Packed.space_in_words s.packed })
      | Error reason -> nack c ~seq:(-1) reason)
  | Sframe.Query { tenant; stream } -> (
      match Option.bind (Registry.find_tenant t.registry tenant) (fun tn ->
                Registry.find_stream tn stream)
      with
      | Some s -> respond c (Registry.state s)
      | None -> nack c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Seq_query { tenant; stream } -> (
      match Option.bind (Registry.find_tenant t.registry tenant) (fun tn ->
                Registry.find_stream tn stream)
      with
      | Some s ->
          respond c
            (Sframe.Seqs { applied_seq = s.Registry.applied_seq; durable_seq = s.Registry.durable_seq })
      | None -> nack c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Flush { tenant } -> (
      match Registry.find_tenant t.registry tenant with
      | Some tn ->
          let generation =
            if tn.Registry.dirty then checkpoint_tenant t tn else tn.Registry.generation
          in
          respond c (Sframe.Flushed { generation })
      | None -> nack c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Drop_copies { tenant; stream; copies } -> (
      match Option.bind (Registry.find_tenant t.registry tenant) (fun tn ->
                Registry.find_stream tn stream)
      with
      | Some s ->
          let lost = Registry.drop_copies s copies in
          event t "degraded: tenant %s stream %s marked %d cop(ies) lost" tenant stream lost;
          respond c (Sframe.Dropped { copies_lost = lost })
      | None -> nack c ~seq:(-1) Sframe.Unknown_stream)
  | Sframe.Stats ->
      let tenants, streams, applied_frames, words = Registry.stats t.registry in
      respond c (Sframe.Stats_reply { tenants; streams; applied_frames; words })

let feed t c bytes =
  Frame_reader.feed c.reader bytes;
  let rec loop () =
    match Frame_reader.next c.reader with
    | Error e ->
        (* Length-prefix poisoned: the stream cannot resynchronise. *)
        event t "conn %d: dropped: %s" c.cid (Wire.frame_error_to_string e);
        c.alive <- false
    | Ok None -> ()
    | Ok (Some payload) ->
        (match Sframe.decode_request payload with
        | Ok req -> handle t c req
        | Error m -> nack c ~seq:(-1) (Sframe.Bad_frame m));
        loop ()
  in
  if c.alive then loop ()

let apply_one t (p : pending) =
  match
    Option.bind (Registry.find_tenant t.registry p.p_tenant) (fun tn ->
        Registry.find_stream tn p.p_stream)
  with
  | None -> if p.p_conn.alive then nack p.p_conn ~seq:p.p_seq Sframe.Unknown_stream
  | Some s -> (
      match Registry.apply s ~seq:p.p_seq ~payload:p.p_payload with
      | Ok applied ->
          (match applied with
          | Registry.Applied ->
              (Registry.get_or_add_tenant t.registry p.p_tenant).Registry.dirty <- true;
              t.applied_since_checkpoint <- t.applied_since_checkpoint + 1;
              Ds_obs.Metrics.incr m_applied 1
          | Registry.Duplicate -> Ds_obs.Metrics.incr m_duplicate 1);
          Ds_obs.Metrics.observe m_latency
            (Int64.to_int (Ds_obs.Clock.elapsed_ns p.p_arrival));
          if p.p_conn.alive then
            respond p.p_conn
              (Sframe.Ack { seq = p.p_seq; durable_seq = s.Registry.durable_seq })
      | Error reason -> if p.p_conn.alive then nack p.p_conn ~seq:p.p_seq reason)

let drain t =
  let budget = ref t.config.drain_per_tick in
  while !budget > 0 && not (Queue.is_empty t.queue) do
    apply_one t (Queue.pop t.queue);
    decr budget
  done;
  Ds_obs.Metrics.set m_queue_depth (Queue.length t.queue);
  Ds_obs.Metrics.set m_ckpt_lag (total_lag t);
  if t.applied_since_checkpoint >= t.config.checkpoint_every then checkpoint_now t

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket accept/ingest loop                               *)
(* ------------------------------------------------------------------ *)

let stop_requested = ref false

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> stop_requested := true) in
  (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
  (* Writing to a client that vanished must be EPIPE (we close the
     conn), not process death. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let run_unix t ~socket_path ?(tick = 0.02) ?max_ticks () =
  stop_requested := false;
  install_signal_handlers ();
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let close_fd fd =
    (match Hashtbl.find_opt conns fd with
    | Some c -> c.alive <- false
    | None -> ());
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let r = t.recovery in
  Fmt.pr "serve: recovered %d tenant(s), %d stream(s), %d quarantined, %d degraded copies in \
          %.1f ms@."
    r.r_tenants r.r_streams r.r_quarantined r.r_degraded_copies
    (Int64.to_float r.r_ns /. 1e6);
  Fmt.pr "serve: listening on %s@." socket_path;
  Format.pp_print_flush Format.std_formatter ();
  let buf = Bytes.create 65536 in
  let ticks = ref 0 in
  let finished () =
    match max_ticks with Some m -> !ticks >= m | None -> false
  in
  (try
     while (not !stop_requested) && not (finished ()) do
       incr ticks;
       let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
       let writable =
         Hashtbl.fold
           (fun fd c acc -> if Buffer.length c.out > c.out_pos then fd :: acc else acc)
           conns []
       in
       let readable, writable, _ =
         try Unix.select (listener :: fds) writable [] tick
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       List.iter
         (fun fd ->
           if fd = listener then begin
             let continue = ref true in
             while !continue do
               match Unix.accept listener with
               | client, _ ->
                   Unix.set_nonblock client;
                   Hashtbl.replace conns client (connect t)
               | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                   continue := false
               | exception Unix.Unix_error _ -> continue := false
             done
           end
           else
             match Hashtbl.find_opt conns fd with
             | None -> ()
             | Some c -> (
                 match Unix.read fd buf 0 (Bytes.length buf) with
                 | 0 -> close_fd fd
                 | n -> feed t c (Bytes.sub_string buf 0 n)
                 | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                 | exception Unix.Unix_error _ -> close_fd fd))
         readable;
       drain t;
       List.iter
         (fun fd ->
           match Hashtbl.find_opt conns fd with
           | None -> ()
           | Some c -> (
               let len = Buffer.length c.out - c.out_pos in
               if len > 0 then
                 match Unix.write_substring fd (Buffer.sub c.out c.out_pos len) 0 len with
                 | n ->
                     c.out_pos <- c.out_pos + n;
                     if c.out_pos = Buffer.length c.out then begin
                       Buffer.clear c.out;
                       c.out_pos <- 0
                     end
                 | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                 | exception Unix.Unix_error _ -> close_fd fd))
         writable;
       (* Poisoned connections are closed once their NACKs have flushed. *)
       Hashtbl.iter
         (fun fd c ->
           if conn_failed c && Buffer.length c.out <= c.out_pos then close_fd fd)
         (Hashtbl.copy conns)
     done
   with e ->
     Unix.close listener;
     raise e);
  (* Graceful exit (SIGTERM/SIGINT or max_ticks): drain what is queued
     and make it durable — only kill -9 loses the undurable suffix, and
     that suffix is exactly what clients replay by linearity. *)
  while not (Queue.is_empty t.queue) do
    drain t
  done;
  checkpoint_now t;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  Unix.close listener;
  try Unix.unlink socket_path with Unix.Unix_error _ -> ()
