(** The sketch registry: many small independent linear sketches keyed by
    [(tenant, stream)], with per-tenant space accounting and the
    sequence-watermark discipline that makes retries, replays and
    reordered duplicates idempotent.

    The registry is deliberately transport-free — {!Server} feeds it
    decoded SRV1 requests, recovery feeds it decoded checkpoint records,
    and the test suite feeds it both directly. *)

type stream = {
  s_name : string;
  s_family : string;
  s_n : int;
  s_seed : int;
  packed : Ds_sketch.Linear_sketch.Packed.t;
  agm : Ds_agm.Agm_sketch.t option;
  mutable applied_seq : int;  (** last contiguous frame absorbed *)
  mutable durable_seq : int;  (** last frame inside a durable generation *)
  mutable lost_copies : int list;  (** AGM repetitions lost (degraded) *)
}

type tenant = {
  t_name : string;
  streams : (string, stream) Hashtbl.t;
  mutable words : int;  (** measured footprint, [space_in_words] summed *)
  mutable generation : int;
  mutable max_gen_seen : int;
  mutable dirty : bool;  (** frames applied since the last generation *)
}

type t

val create : quota_words:int -> t
val quota_words : t -> int
val find_tenant : t -> string -> tenant option
val get_or_add_tenant : t -> string -> tenant
val find_stream : tenant -> string -> stream option
val remove_tenant : t -> string -> unit

val name_ok : string -> bool
(** Tenant/stream names become checkpoint path components:
    [[A-Za-z0-9_.-]{1,64}], not dot-led. *)

val create_stream :
  t ->
  tenant:string ->
  stream:string ->
  family:string ->
  n:int ->
  seed:int ->
  (stream, Sframe.nack) result
(** Admission control: refused with [Quota_exceeded] when the tenant's
    measured words plus the candidate sketch would exceed the budget.
    Idempotent for an identical [(family, n, seed)] triple;
    [Stream_exists] otherwise. *)

type applied = Applied | Duplicate

val apply : stream -> seq:int -> payload:string -> (applied, Sframe.nack) result
(** Absorb one LSK1 ingest frame under the watermark discipline:
    [seq <= applied_seq] is a no-op [Duplicate] (idempotent re-ack),
    [seq = applied_seq + 1] absorbs by linearity, anything else is a
    typed [Bad_seq]/[Bad_frame] refusal that leaves the sketch
    untouched. *)

val copies_total : stream -> int
val surviving_copies : stream -> int list

val certified_delta : stream -> float
(** {!Ds_agm.Agm_sketch.certified_delta} of the surviving quorum; 0 for
    scalar families. *)

val drop_copies : stream -> int list -> int
(** Mark AGM repetitions lost; returns the total lost count. *)

val state : stream -> Sframe.response
(** The [State] response: full envelope + quorum health. *)

val to_record : stream -> Checkpoint.record
val records_of_tenant : tenant -> Checkpoint.record list
(** Streams sorted by name — generation bytes are deterministic. *)

val load_record : t -> tenant:string -> Checkpoint.record -> (int, string) result
(** Rebuild one stream from a generation record. [Ok lost] gives the
    number of AGM copies that failed their envelope checksum (degraded
    quorum); [Error] means the record cannot be salvaged and the caller
    must fall back to an older generation. *)

val stats : t -> int * int * int * int
(** (tenants, streams, applied frames, words). *)

val iter_tenants : t -> (tenant -> unit) -> unit
val dirty_tenants : t -> tenant list

val mark_durable : tenant -> generation:int -> unit
(** After a successful generation write: advance every stream's durable
    watermark to its applied watermark and clear the dirty bit. *)

val checkpoint_lag : tenant -> int
(** Applied-but-not-durable frames across the tenant's streams. *)
