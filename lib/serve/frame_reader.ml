open Ds_util

type t = {
  max_frame : int;
  mutable data : Bytes.t;
  mutable len : int;  (* bytes buffered *)
  mutable pos : int;  (* bytes consumed *)
  mutable failed : Wire.frame_error option;
}

let create ?(max_frame = 16 * 1024 * 1024) () =
  if max_frame < 0 then invalid_arg "Frame_reader.create: negative max_frame";
  { max_frame; data = Bytes.create 4096; len = 0; pos = 0; failed = None }

let buffered t = t.len - t.pos
let failed t = t.failed

(* The buffer only ever grows to hold one frame's worth of validated
   input plus the following header, so a hostile length prefix cannot
   drive an allocation: the length is checked against [max_frame] before
   the payload bytes are awaited, and [feed] refuses input after a
   failure. *)
let compact t =
  if t.pos > 0 then begin
    let live = t.len - t.pos in
    Bytes.blit t.data t.pos t.data 0 live;
    t.len <- live;
    t.pos <- 0
  end

let feed t s =
  if t.failed = None then begin
    let n = String.length s in
    if t.len + n > Bytes.length t.data then begin
      compact t;
      if t.len + n > Bytes.length t.data then begin
        let cap = ref (max 8 (Bytes.length t.data)) in
        while t.len + n > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit t.data 0 bigger 0 t.len;
        t.data <- bigger
      end
    end;
    Bytes.blit_string s 0 t.data t.len n;
    t.len <- t.len + n
  end

let next t =
  match t.failed with
  | Some e -> Error e
  | None ->
      if buffered t < Wire.frame_header_length then Ok None
      else begin
        let header = Bytes.sub_string t.data t.pos Wire.frame_header_length in
        match Wire.decode_frame_length ~max:t.max_frame header ~pos:0 with
        | Error e ->
            t.failed <- Some e;
            Error e
        | Ok len ->
            if buffered t < Wire.frame_header_length + len then Ok None
            else begin
              let payload =
                Bytes.sub_string t.data (t.pos + Wire.frame_header_length) len
              in
              t.pos <- t.pos + Wire.frame_header_length + len;
              if t.pos = t.len then begin
                t.pos <- 0;
                t.len <- 0
              end;
              Ok (Some payload)
            end
      end
