open Ds_sketch

type stream = {
  s_name : string;
  s_family : string;
  s_n : int;
  s_seed : int;
  packed : Linear_sketch.Packed.t;
  agm : Ds_agm.Agm_sketch.t option;
  mutable applied_seq : int;
  mutable durable_seq : int;
  mutable lost_copies : int list;  (* sorted ascending, unique *)
}

type tenant = {
  t_name : string;
  streams : (string, stream) Hashtbl.t;
  mutable words : int;
  mutable generation : int;  (* last durable generation *)
  mutable max_gen_seen : int;  (* never reuse a number a dead server touched *)
  mutable dirty : bool;
}

type t = { tenants : (string, tenant) Hashtbl.t; quota_words : int }

let create ~quota_words = { tenants = Hashtbl.create 16; quota_words }
let quota_words t = t.quota_words
let find_tenant t name = Hashtbl.find_opt t.tenants name

let get_or_add_tenant t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      let tn =
        {
          t_name = name;
          streams = Hashtbl.create 8;
          words = 0;
          generation = 0;
          max_gen_seen = 0;
          dirty = false;
        }
      in
      Hashtbl.replace t.tenants name tn;
      tn

let find_stream tn name = Hashtbl.find_opt tn.streams name

(* Tenant and stream names become path components of the checkpoint
   store; anything else is rejected at the door. *)
let name_ok s =
  s <> "" && s.[0] <> '.'
  && String.length s <= 64
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true | _ -> false)
       s

let add_stream_unchecked tn ~stream ~family ~n ~seed (made : Families.made) =
  let s =
    {
      s_name = stream;
      s_family = family;
      s_n = n;
      s_seed = seed;
      packed = made.Families.packed;
      agm = made.Families.agm;
      applied_seq = 0;
      durable_seq = 0;
      lost_copies = [];
    }
  in
  Hashtbl.replace tn.streams stream s;
  tn.words <- tn.words + Linear_sketch.Packed.space_in_words s.packed;
  s

(* Admission control happens here: the tenant's measured footprint plus
   the candidate sketch must fit the budget, or the create is refused
   with a typed NACK the client can surface to its operator (retrying
   the same create can never succeed). *)
let create_stream t ~tenant ~stream ~family ~n ~seed =
  if not (name_ok tenant && name_ok stream) then
    Error (Sframe.Bad_frame "tenant/stream name must be [A-Za-z0-9_.-]{1,64}, not dot-led")
  else
    let tn = get_or_add_tenant t tenant in
    match find_stream tn stream with
    | Some s ->
        if s.s_family = family && s.s_n = n && s.s_seed = seed then Ok s
        else Error Sframe.Stream_exists
    | None -> (
        match Families.make ~family ~n ~seed with
        | Error _ -> Error (Sframe.Unknown_family family)
        | Ok made ->
            let words = Linear_sketch.Packed.space_in_words made.Families.packed in
            if tn.words + words > t.quota_words then
              Error
                (Sframe.Quota_exceeded
                   { used_words = tn.words; budget_words = t.quota_words })
            else begin
              tn.dirty <- true;
              Ok (add_stream_unchecked tn ~stream ~family ~n ~seed made)
            end)

type applied = Applied | Duplicate

(* The sequence watermark is what makes every retry/replay path safe:
   frames at or below [applied_seq] are acknowledged without touching
   the sketch (reordered duplicates, client replays after recovery),
   the next contiguous frame is absorbed by linearity, and a gap is a
   typed refusal that tells the client where to rewind. *)
let apply s ~seq ~payload =
  if seq <= 0 then Error (Sframe.Bad_seq { expected = s.applied_seq + 1; got = seq })
  else if seq <= s.applied_seq then Ok Duplicate
  else if seq > s.applied_seq + 1 then
    Error (Sframe.Bad_seq { expected = s.applied_seq + 1; got = seq })
  else
    match Linear_sketch.Packed.absorb_result s.packed payload with
    | Ok () ->
        s.applied_seq <- seq;
        Ok Applied
    | Error e -> Error (Sframe.Bad_frame (Linear_sketch.error_to_string e))

let copies_total s = match s.agm with Some a -> Ds_agm.Agm_sketch.copies a | None -> 1

let surviving_copies s =
  match s.agm with
  | None -> []
  | Some a ->
      List.filter
        (fun c -> not (List.mem c s.lost_copies))
        (List.init (Ds_agm.Agm_sketch.copies a) Fun.id)

let certified_delta s =
  match s.agm with
  | None -> 0.0
  | Some a ->
      Ds_agm.Agm_sketch.certified_delta ~n:(Ds_agm.Agm_sketch.n a)
        ~copies:(List.length (surviving_copies s))

let drop_copies s copies =
  (match s.agm with
  | None -> ()
  | Some a ->
      let total = Ds_agm.Agm_sketch.copies a in
      let valid = List.filter (fun c -> c >= 0 && c < total) copies in
      s.lost_copies <- List.sort_uniq compare (valid @ s.lost_copies));
  List.length s.lost_copies

let state s =
  Sframe.State
    {
      payload = Linear_sketch.Packed.serialize s.packed;
      applied_seq = s.applied_seq;
      copies_total = copies_total s;
      copies_lost = List.length s.lost_copies;
      certified_delta = certified_delta s;
    }

(* ------------------------------------------------------------------ *)
(* Checkpoint records                                                  *)
(* ------------------------------------------------------------------ *)

(* AGM streams are checkpointed one LSK1 envelope per repetition: each
   part carries its own checksum, so targeted damage costs one copy
   (degraded quorum, certified delta) instead of the generation. *)
let to_record s =
  let parts =
    match s.agm with
    | Some a ->
        List.init (Ds_agm.Agm_sketch.copies a) (fun c ->
            Ds_agm.Agm_sketch.Copy.serialize (Ds_agm.Agm_sketch.Copy.slice a c))
    | None -> [ Linear_sketch.Packed.serialize s.packed ]
  in
  {
    Checkpoint.r_stream = s.s_name;
    r_family = s.s_family;
    r_n = s.s_n;
    r_seed = s.s_seed;
    r_applied_seq = s.applied_seq;
    r_parts = parts;
  }

let records_of_tenant tn =
  Hashtbl.fold (fun _ s acc -> s :: acc) tn.streams []
  |> List.sort (fun a b -> compare a.s_name b.s_name)
  |> List.map to_record

(* Rebuild one stream from a decoded generation record.  Scalar families
   are all-or-nothing (a bad envelope voids the generation — the caller
   falls back to an older one).  AGM parts degrade per copy; losing
   every copy is indistinguishable from data loss, so that too voids
   the generation. *)
let load_record t ~tenant (r : Checkpoint.record) =
  match
    Families.make ~family:r.Checkpoint.r_family ~n:r.Checkpoint.r_n ~seed:r.Checkpoint.r_seed
  with
  | Error m -> Error m
  | Ok made -> (
      match (made.Families.agm, r.Checkpoint.r_parts) with
      | None, [ part ] -> (
          match Linear_sketch.Packed.deserialize_result made.Families.packed part with
          | Ok () ->
              let tn = get_or_add_tenant t tenant in
              let s =
                add_stream_unchecked tn ~stream:r.Checkpoint.r_stream
                  ~family:r.Checkpoint.r_family ~n:r.Checkpoint.r_n ~seed:r.Checkpoint.r_seed
                  made
              in
              s.applied_seq <- r.Checkpoint.r_applied_seq;
              s.durable_seq <- r.Checkpoint.r_applied_seq;
              Ok 0
          | Error e -> Error (Linear_sketch.error_to_string e))
      | None, _ -> Error "scalar stream with unexpected part count"
      | Some a, parts ->
          if List.length parts <> Ds_agm.Agm_sketch.copies a then
            Error "agm stream with wrong part count"
          else begin
            let lost = ref [] in
            List.iteri
              (fun c part ->
                let slice = Ds_agm.Agm_sketch.Copy.slice a c in
                match Ds_agm.Agm_sketch.Copy.absorb_result slice part with
                | Ok () -> ()
                | Error _ -> lost := c :: !lost)
              parts;
            let lost = List.rev !lost in
            if List.length lost = Ds_agm.Agm_sketch.copies a then
              Error "agm stream with every copy corrupt"
            else begin
              let tn = get_or_add_tenant t tenant in
              let s =
                add_stream_unchecked tn ~stream:r.Checkpoint.r_stream
                  ~family:r.Checkpoint.r_family ~n:r.Checkpoint.r_n ~seed:r.Checkpoint.r_seed
                  made
              in
              s.applied_seq <- r.Checkpoint.r_applied_seq;
              s.durable_seq <- r.Checkpoint.r_applied_seq;
              s.lost_copies <- lost;
              Ok (List.length lost)
            end
          end)

let remove_tenant t name =
  match Hashtbl.find_opt t.tenants name with
  | None -> ()
  | Some _ -> Hashtbl.remove t.tenants name

let stats t =
  let tenants = Hashtbl.length t.tenants in
  let streams = ref 0 and frames = ref 0 and words = ref 0 in
  Hashtbl.iter
    (fun _ tn ->
      streams := !streams + Hashtbl.length tn.streams;
      words := !words + tn.words;
      Hashtbl.iter (fun _ s -> frames := !frames + s.applied_seq) tn.streams)
    t.tenants;
  (tenants, !streams, !frames, !words)

let iter_tenants t f = Hashtbl.iter (fun _ tn -> f tn) t.tenants

let dirty_tenants t =
  Hashtbl.fold (fun _ tn acc -> if tn.dirty then tn :: acc else acc) t.tenants []
  |> List.sort (fun a b -> compare a.t_name b.t_name)

let mark_durable tn ~generation =
  tn.generation <- generation;
  tn.max_gen_seen <- max tn.max_gen_seen generation;
  tn.dirty <- false;
  Hashtbl.iter (fun _ s -> s.durable_seq <- s.applied_seq) tn.streams

let checkpoint_lag tn =
  Hashtbl.fold (fun _ s acc -> acc + (s.applied_seq - s.durable_seq)) tn.streams 0
