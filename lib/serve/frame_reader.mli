(** Incremental reader for length-prefixed frames.

    Accumulates raw socket bytes and yields complete frame payloads. The
    4-byte header is validated with {!Ds_util.Wire.decode_frame_length}
    {e before} any payload space is reserved, so a hostile 8-byte header
    (negative or absurdly large length) produces a typed error instead of
    an allocation — the connection must then be dropped, because a
    length-prefixed stream cannot resynchronise.

    Fuzzed in [test/test_serve.ml]: random bytes and truncated prefixes
    never raise, never allocate beyond [max_frame] + one header, and
    either yield frames or park the reader in a typed failed state. *)

type t

val create : ?max_frame:int -> unit -> t
(** [max_frame] defaults to 16 MiB — far above any SRV1 frame the serving
    layer emits, far below an OOM. *)

val feed : t -> string -> unit
(** Append bytes from the transport. Ignored after a header failure. *)

val next : t -> (string option, Ds_util.Wire.frame_error) result
(** [Ok (Some payload)] — one complete frame, consumed; [Ok None] — need
    more bytes; [Error _] — poisoned header, drop the connection. Repeated
    calls after an error return the same error. *)

val buffered : t -> int
(** Bytes held but not yet returned (partial frame + unread headers). *)

val failed : t -> Ds_util.Wire.frame_error option
(** The poisoned state, if any. *)
