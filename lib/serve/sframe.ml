open Ds_util

type nack =
  | Overloaded of { queue_depth : int; bound : int }
  | Quota_exceeded of { used_words : int; budget_words : int }
  | Unknown_stream
  | Stream_exists
  | Unknown_family of string
  | Bad_seq of { expected : int; got : int }
  | Bad_frame of string

type request =
  | Create of { tenant : string; stream : string; family : string; n : int; seed : int }
  | Ingest of { tenant : string; stream : string; seq : int; payload : string }
  | Query of { tenant : string; stream : string }
  | Seq_query of { tenant : string; stream : string }
  | Flush of { tenant : string }
  | Drop_copies of { tenant : string; stream : string; copies : int list }
  | Stats
  | Stat_rollup

type response =
  | Created of { words : int }
  | Ack of { seq : int; durable_seq : int }
  | Nack of { seq : int; reason : nack }
  | State of {
      payload : string;
      applied_seq : int;
      copies_total : int;
      copies_lost : int;
      certified_delta : float;
    }
  | Seqs of { applied_seq : int; durable_seq : int }
  | Flushed of { generation : int }
  | Stats_reply of { tenants : int; streams : int; applied_frames : int; words : int }
  | Dropped of { copies_lost : int }
  | Stat_rollup_reply of { json : string }

let nack_name = function
  | Overloaded _ -> "overloaded"
  | Quota_exceeded _ -> "quota_exceeded"
  | Unknown_stream -> "unknown_stream"
  | Stream_exists -> "stream_exists"
  | Unknown_family _ -> "unknown_family"
  | Bad_seq _ -> "bad_seq"
  | Bad_frame _ -> "bad_frame"

(* Dense taxonomy indexing for per-tenant NACK counts in the STAT
   rollup: [nack_kinds.(nack_index r) = nack_name r]. *)
let nack_kinds =
  [|
    "overloaded";
    "quota_exceeded";
    "unknown_stream";
    "stream_exists";
    "unknown_family";
    "bad_seq";
    "bad_frame";
  |]

let nack_index = function
  | Overloaded _ -> 0
  | Quota_exceeded _ -> 1
  | Unknown_stream -> 2
  | Stream_exists -> 3
  | Unknown_family _ -> 4
  | Bad_seq _ -> 5
  | Bad_frame _ -> 6

(* Only overload is transient from the client's point of view (back off,
   re-send the same bytes).  [Bad_frame] is deterministic too: local
   sockets do not corrupt bytes in flight, and the server also emits it
   for validation failures (bad tenant/stream names, absorb dimension
   mismatches), so the identical frame is refused the identical way on
   every attempt. *)
let nack_retryable = function
  | Overloaded _ -> true
  | Bad_frame _ | Quota_exceeded _ | Unknown_stream | Stream_exists | Unknown_family _
  | Bad_seq _ ->
      false

let pp_nack ppf = function
  | Overloaded { queue_depth; bound } ->
      Format.fprintf ppf "overloaded(depth %d/%d)" queue_depth bound
  | Quota_exceeded { used_words; budget_words } ->
      Format.fprintf ppf "quota_exceeded(%d/%d words)" used_words budget_words
  | Unknown_stream -> Format.fprintf ppf "unknown_stream"
  | Stream_exists -> Format.fprintf ppf "stream_exists"
  | Unknown_family f -> Format.fprintf ppf "unknown_family(%s)" f
  | Bad_seq { expected; got } -> Format.fprintf ppf "bad_seq(expected %d, got %d)" expected got
  | Bad_frame m -> Format.fprintf ppf "bad_frame(%s)" m

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

(* Every frame payload is  tag "SRV1" . kind byte . fields . fixed64
   FNV-1a of all preceding bytes.  The checksum is verified before any
   field is interpreted, mirroring the LSK1 envelope discipline: a
   corrupted frame is a typed decode error, never garbage state. *)

let magic = "SRV1"

(* Same strictly-additive trace-context extension as the LSK1 envelope
   (lib/sketch/linear_sketch.ml): an optional trailing
   [tag "TCTX" . fixed64 trace_id . fixed64 span_id] INSIDE the
   checksummed payload.  Untraced frames are byte-identical to the
   PR 8 wire format, so old servers and old clients interoperate with
   new peers as long as tracing stays off (the default). *)
let trace_ext_tag = "TCTX"

let finish buf =
  let body = Wire.contents buf in
  Wire.write_fixed64 buf (Wire.fnv1a64 body);
  Wire.contents buf

let checked msg =
  let len = String.length msg in
  if len < 8 then Error "frame shorter than its checksum"
  else
    let body_len = len - 8 in
    let declared = Wire.read_fixed64 (Wire.source (String.sub msg body_len 8)) in
    if Wire.fnv1a64 ~pos:0 ~len:body_len msg <> declared then Error "frame checksum mismatch"
    else Ok (String.sub msg 0 body_len)

let write_header buf kind =
  Wire.write_tag buf magic;
  Wire.write_int buf kind

let encode_request ?trace r =
  let buf = Wire.sink () in
  (match r with
  | Create { tenant; stream; family; n; seed } ->
      write_header buf 1;
      Wire.write_tag buf tenant;
      Wire.write_tag buf stream;
      Wire.write_tag buf family;
      Wire.write_int buf n;
      Wire.write_int buf seed
  | Ingest { tenant; stream; seq; payload } ->
      write_header buf 2;
      Wire.write_tag buf tenant;
      Wire.write_tag buf stream;
      Wire.write_int buf seq;
      Wire.write_tag buf payload
  | Query { tenant; stream } ->
      write_header buf 3;
      Wire.write_tag buf tenant;
      Wire.write_tag buf stream
  | Seq_query { tenant; stream } ->
      write_header buf 4;
      Wire.write_tag buf tenant;
      Wire.write_tag buf stream
  | Flush { tenant } ->
      write_header buf 5;
      Wire.write_tag buf tenant
  | Drop_copies { tenant; stream; copies } ->
      write_header buf 6;
      Wire.write_tag buf tenant;
      Wire.write_tag buf stream;
      Wire.write_array buf (Array.of_list copies)
  | Stats -> write_header buf 7
  | Stat_rollup -> write_header buf 8);
  (match trace with
  | Some { Ds_obs.Trace.trace_id; span_id } ->
      Wire.write_tag buf trace_ext_tag;
      Wire.write_fixed64 buf trace_id;
      Wire.write_fixed64 buf span_id
  | None -> ());
  finish buf

let encode_nack buf = function
  | Overloaded { queue_depth; bound } ->
      Wire.write_int buf 1;
      Wire.write_int buf queue_depth;
      Wire.write_int buf bound
  | Quota_exceeded { used_words; budget_words } ->
      Wire.write_int buf 2;
      Wire.write_int buf used_words;
      Wire.write_int buf budget_words
  | Unknown_stream -> Wire.write_int buf 3
  | Stream_exists -> Wire.write_int buf 4
  | Unknown_family f ->
      Wire.write_int buf 5;
      Wire.write_tag buf f
  | Bad_seq { expected; got } ->
      Wire.write_int buf 6;
      Wire.write_int buf expected;
      Wire.write_int buf got
  | Bad_frame m ->
      Wire.write_int buf 7;
      Wire.write_tag buf m

let encode_response r =
  let buf = Wire.sink () in
  (match r with
  | Created { words } ->
      write_header buf 64;
      Wire.write_int buf words
  | Ack { seq; durable_seq } ->
      write_header buf 65;
      Wire.write_int buf seq;
      Wire.write_int buf durable_seq
  | Nack { seq; reason } ->
      write_header buf 66;
      Wire.write_int buf seq;
      encode_nack buf reason
  | State { payload; applied_seq; copies_total; copies_lost; certified_delta } ->
      write_header buf 67;
      Wire.write_tag buf payload;
      Wire.write_int buf applied_seq;
      Wire.write_int buf copies_total;
      Wire.write_int buf copies_lost;
      Wire.write_fixed64 buf (Int64.bits_of_float certified_delta)
  | Seqs { applied_seq; durable_seq } ->
      write_header buf 68;
      Wire.write_int buf applied_seq;
      Wire.write_int buf durable_seq
  | Flushed { generation } ->
      write_header buf 69;
      Wire.write_int buf generation
  | Stats_reply { tenants; streams; applied_frames; words } ->
      write_header buf 70;
      Wire.write_int buf tenants;
      Wire.write_int buf streams;
      Wire.write_int buf applied_frames;
      Wire.write_int buf words
  | Dropped { copies_lost } ->
      write_header buf 71;
      Wire.write_int buf copies_lost
  | Stat_rollup_reply { json } ->
      write_header buf 72;
      Wire.write_tag buf json);
  finish buf

let decode_header src =
  let got = Wire.read_tag src in
  if got <> magic then failwith (Printf.sprintf "not an SRV1 frame (magic %S)" got);
  Wire.read_int src

let decode_guard f msg =
  match checked msg with
  | Error e -> Error e
  | Ok body -> (
      let src = Wire.source body in
      match f src with
      | v ->
          if Wire.remaining src <> 0 then
            Error (Printf.sprintf "%d trailing bytes" (Wire.remaining src))
          else Ok v
      | exception Failure m -> Error m)

let read_request src =
  match decode_header src with
  | 1 ->
      let tenant = Wire.read_tag src in
      let stream = Wire.read_tag src in
      let family = Wire.read_tag src in
      let n = Wire.read_int src in
      let seed = Wire.read_int src in
      Create { tenant; stream; family; n; seed }
  | 2 ->
      let tenant = Wire.read_tag src in
      let stream = Wire.read_tag src in
      let seq = Wire.read_int src in
      let payload = Wire.read_tag src in
      Ingest { tenant; stream; seq; payload }
  | 3 ->
      let tenant = Wire.read_tag src in
      let stream = Wire.read_tag src in
      Query { tenant; stream }
  | 4 ->
      let tenant = Wire.read_tag src in
      let stream = Wire.read_tag src in
      Seq_query { tenant; stream }
  | 5 -> Flush { tenant = Wire.read_tag src }
  | 6 ->
      let tenant = Wire.read_tag src in
      let stream = Wire.read_tag src in
      let copies = Array.to_list (Wire.read_array src) in
      Drop_copies { tenant; stream; copies }
  | 7 -> Stats
  | 8 -> Stat_rollup
  | k -> failwith (Printf.sprintf "unknown request kind %d" k)

let decode_request_traced msg =
  decode_guard
    (fun src ->
      let req = read_request src in
      let ctx =
        if Wire.remaining src = 0 then None
        else
          (* Anything after the request fields must be exactly one
             trace-context extension; otherwise it is trailing garbage
             exactly as before. *)
          match
            try Some (Wire.read_tag src) with Failure _ -> None
          with
          | Some tag when tag = trace_ext_tag && Wire.remaining src = 16 ->
              let trace_id = Wire.read_fixed64 src in
              let span_id = Wire.read_fixed64 src in
              Some { Ds_obs.Trace.trace_id; span_id }
          | Some _ | None -> failwith "trailing bytes after request"
      in
      (req, ctx))
    msg

let decode_request msg = Result.map fst (decode_request_traced msg)

let decode_nack src =
  match Wire.read_int src with
  | 1 ->
      let queue_depth = Wire.read_int src in
      let bound = Wire.read_int src in
      Overloaded { queue_depth; bound }
  | 2 ->
      let used_words = Wire.read_int src in
      let budget_words = Wire.read_int src in
      Quota_exceeded { used_words; budget_words }
  | 3 -> Unknown_stream
  | 4 -> Stream_exists
  | 5 -> Unknown_family (Wire.read_tag src)
  | 6 ->
      let expected = Wire.read_int src in
      let got = Wire.read_int src in
      Bad_seq { expected; got }
  | 7 -> Bad_frame (Wire.read_tag src)
  | k -> failwith (Printf.sprintf "unknown nack kind %d" k)

let decode_response msg =
  decode_guard
    (fun src ->
      match decode_header src with
      | 64 -> Created { words = Wire.read_int src }
      | 65 ->
          let seq = Wire.read_int src in
          let durable_seq = Wire.read_int src in
          Ack { seq; durable_seq }
      | 66 ->
          let seq = Wire.read_int src in
          let reason = decode_nack src in
          Nack { seq; reason }
      | 67 ->
          let payload = Wire.read_tag src in
          let applied_seq = Wire.read_int src in
          let copies_total = Wire.read_int src in
          let copies_lost = Wire.read_int src in
          let certified_delta = Int64.float_of_bits (Wire.read_fixed64 src) in
          State { payload; applied_seq; copies_total; copies_lost; certified_delta }
      | 68 ->
          let applied_seq = Wire.read_int src in
          let durable_seq = Wire.read_int src in
          Seqs { applied_seq; durable_seq }
      | 69 -> Flushed { generation = Wire.read_int src }
      | 70 ->
          let tenants = Wire.read_int src in
          let streams = Wire.read_int src in
          let applied_frames = Wire.read_int src in
          let words = Wire.read_int src in
          Stats_reply { tenants; streams; applied_frames; words }
      | 71 -> Dropped { copies_lost = Wire.read_int src }
      | 72 -> Stat_rollup_reply { json = Wire.read_tag src }
      | k -> failwith (Printf.sprintf "unknown response kind %d" k))
    msg

let frame msg =
  let buf = Buffer.create (String.length msg + 4) in
  Wire.write_frame buf msg;
  Buffer.contents buf
