open Ds_util

type record = {
  r_stream : string;
  r_family : string;
  r_n : int;
  r_seed : int;
  r_applied_seq : int;
  r_parts : string list;
}

(* On-disk generation format (SCP1):

     tag "SCP1" . int generation . tag tenant . int stream_count
     per stream: tag stream . tag family . int n . int seed
                 . int applied_seq . int part_count . int part_len ...
     fixed64 FNV-1a of every preceding byte          (header checksum)
     parts, concatenated raw

   The header checksum plus an exact total-length check decide torn vs
   whole before any part is touched; each part is itself an LSK1
   envelope with its own checksum, so targeted damage inside one AGM
   repetition degrades that copy instead of voiding the generation. *)

let magic = "SCP1"

let encode ~generation ~tenant records =
  let buf = Wire.sink () in
  Wire.write_tag buf magic;
  Wire.write_int buf generation;
  Wire.write_tag buf tenant;
  Wire.write_int buf (List.length records);
  List.iter
    (fun r ->
      Wire.write_tag buf r.r_stream;
      Wire.write_tag buf r.r_family;
      Wire.write_int buf r.r_n;
      Wire.write_int buf r.r_seed;
      Wire.write_int buf r.r_applied_seq;
      Wire.write_int buf (List.length r.r_parts);
      List.iter (fun p -> Wire.write_int buf (String.length p)) r.r_parts)
    records;
  let header = Wire.contents buf in
  Wire.write_fixed64 buf (Wire.fnv1a64 header);
  let out = Buffer.create (String.length header + 8) in
  Buffer.add_string out (Wire.contents buf);
  List.iter (fun r -> List.iter (Buffer.add_string out) r.r_parts) records;
  Buffer.contents out

let decode data =
  let len = String.length data in
  let src = Wire.source data in
  match
    let got = Wire.read_tag src in
    if got <> magic then failwith (Printf.sprintf "bad magic %S" got);
    let generation = Wire.read_int src in
    let tenant = Wire.read_tag src in
    let count = Wire.read_int src in
    if count < 0 || count > len then failwith "implausible stream count";
    let skeleton =
      List.init count (fun _ ->
          let r_stream = Wire.read_tag src in
          let r_family = Wire.read_tag src in
          let r_n = Wire.read_int src in
          let r_seed = Wire.read_int src in
          let r_applied_seq = Wire.read_int src in
          let part_count = Wire.read_int src in
          if part_count < 0 || part_count > len then failwith "implausible part count";
          let lens =
            List.init part_count (fun _ ->
                let l = Wire.read_int src in
                if l < 0 || l > len then failwith "implausible part length";
                l)
          in
          (r_stream, r_family, r_n, r_seed, r_applied_seq, lens))
    in
    let header_len = len - Wire.remaining src in
    let declared = Wire.read_fixed64 src in
    if Wire.fnv1a64 ~pos:0 ~len:header_len data <> declared then
      failwith "header checksum mismatch";
    let pos = ref (header_len + 8) in
    let records =
      List.map
        (fun (r_stream, r_family, r_n, r_seed, r_applied_seq, lens) ->
          let r_parts =
            List.map
              (fun l ->
                if !pos + l > len then failwith "torn: parts cut short";
                let p = String.sub data !pos l in
                pos := !pos + l;
                p)
              lens
          in
          { r_stream; r_family; r_n; r_seed; r_applied_seq; r_parts })
        skeleton
    in
    if !pos <> len then failwith (Printf.sprintf "%d trailing bytes" (len - !pos));
    (generation, tenant, records)
  with
  | v -> Ok v
  | exception Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let tenant_dir ~dir ~tenant = Filename.concat dir tenant
let gen_basename generation = Printf.sprintf "gen-%010d.scp" generation

let gen_path ~dir ~tenant ~generation =
  Filename.concat (tenant_dir ~dir ~tenant) (gen_basename generation)

let tmp_path ~dir ~tenant ~generation = gen_path ~dir ~tenant ~generation ^ ".tmp"

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* write-tmp / fsync / rename / fsync-dir: a kill -9 at any instant
   leaves either the previous generation set untouched (tmp file, whole
   or torn, skipped and quarantined on recovery) or the new generation
   fully durable.  There is no window in which a reader can see a
   half-written [.scp]. *)
let write ~dir ~tenant ~generation records =
  let tdir = tenant_dir ~dir ~tenant in
  mkdir_p tdir;
  let tmp = tmp_path ~dir ~tenant ~generation in
  let final = gen_path ~dir ~tenant ~generation in
  let data = encode ~generation ~tenant records in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let len = String.length data in
  (* POSIX permits partial writes on regular files (large buffers,
     EINTR): loop until the whole image is down, then fsync. *)
  (try
     let pos = ref 0 in
     while !pos < len do
       match Unix.write_substring fd data !pos (len - !pos) with
       | n -> pos := !pos + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done;
     Unix.fsync fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.close fd;
  Unix.rename tmp final;
  fsync_dir tdir

let parse_gen name =
  if String.length name = String.length (gen_basename 0)
     && String.sub name 0 4 = "gen-"
     && Filename.check_suffix name ".scp"
  then int_of_string_opt (String.sub name 4 10)
  else None

let list_dir path = try Sys.readdir path with Sys_error _ -> [||]

let generations ~dir ~tenant =
  let entries = list_dir (tenant_dir ~dir ~tenant) in
  Array.to_list entries
  |> List.filter_map parse_gen
  |> List.sort (fun a b -> compare b a)

(* Highest generation number ever used under this tenant, counting torn
   tmp files and quarantined generations — a recovering server must
   never reuse a number a past incarnation may have touched. *)
let max_seen ~dir ~tenant =
  let entries = list_dir (tenant_dir ~dir ~tenant) in
  Array.fold_left
    (fun acc name ->
      let stem =
        if Filename.check_suffix name ".quarantined" then
          Filename.chop_suffix name ".quarantined"
        else name
      in
      let stem =
        if Filename.check_suffix stem ".tmp" then Filename.chop_suffix stem ".tmp" else stem
      in
      match parse_gen stem with Some g -> max acc g | None -> acc)
    0 entries

let quarantine path =
  try Unix.rename path (path ^ ".quarantined") with Unix.Unix_error _ -> ()

(* Torn tmp files left by a crash mid-write: never decoded, quarantined
   by name so post-mortems can inspect them. Returns how many. *)
let quarantine_tmp ~dir ~tenant =
  let tdir = tenant_dir ~dir ~tenant in
  let entries = list_dir tdir in
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ".tmp" then begin
        quarantine (Filename.concat tdir name);
        acc + 1
      end
      else acc)
    0 entries

let prune ~dir ~tenant ~keep =
  match generations ~dir ~tenant with
  | [] -> ()
  | gens ->
      List.iteri
        (fun i g ->
          if i >= keep then
            try Unix.unlink (gen_path ~dir ~tenant ~generation:g) with Unix.Unix_error _ -> ())
        gens

let tenants ~dir =
  list_dir dir |> Array.to_list
  |> List.filter (fun name -> Sys.is_directory (Filename.concat dir name))
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

let read path = try decode (read_file path) with Sys_error m -> Error m
