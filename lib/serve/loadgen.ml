open Ds_util
open Ds_sketch

(* The workload is a pure function of its seed: stream sizes are drawn
   from a Zipf profile (rank-r stream gets weight 1/r^s of the update
   budget), update indices/deltas come from a per-stream PRNG split, and
   families cycle through the registry's catalogue.  The socket driver,
   the deterministic simulator and the verifier all rebuild the same
   plan from the same seed — verification needs no side channel beyond
   the seed and the acked-frame ledger. *)

type stream_spec = {
  l_tenant : string;
  l_stream : string;
  l_family : string;
  l_n : int;
  l_seed : int;
  l_updates : (int * int) array;  (* (index, delta) *)
  l_batch : int;
}

type plan = { p_seed : int; p_specs : stream_spec list }

let zipf_weights ~count ~exponent =
  let w = Array.init count (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) exponent) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let make ?(families = Families.names) ?(zipf = 1.1) ~seed ~tenants ~streams_per_tenant
    ~updates ~n ~batch () =
  let root = Prng.create seed in
  let count = tenants * streams_per_tenant in
  let weights = zipf_weights ~count ~exponent:zipf in
  let specs = ref [] in
  let rank = ref 0 in
  for ti = 0 to tenants - 1 do
    let tenant = Printf.sprintf "tenant-%02d" ti in
    for si = 0 to streams_per_tenant - 1 do
      let r = !rank in
      incr rank;
      let stream = Printf.sprintf "stream-%02d" si in
      let family = List.nth families (r mod List.length families) in
      let rng = Prng.split_named root (Printf.sprintf "%s/%s" tenant stream) in
      let m = max batch (int_of_float (Float.round (float_of_int updates *. weights.(r)))) in
      let l_updates =
        Array.init m (fun _ ->
            let index = Prng.int rng n in
            let delta = 1 + Prng.int rng 8 in
            (index, delta))
      in
      specs :=
        {
          l_tenant = tenant;
          l_stream = stream;
          l_family = family;
          l_n = n;
          l_seed = seed lxor (r * 0x9E3779B9);
          l_updates;
          l_batch = batch;
        }
        :: !specs
    done
  done;
  { p_seed = seed; p_specs = List.rev !specs }

let frame_count spec = (Array.length spec.l_updates + spec.l_batch - 1) / spec.l_batch

(* Ingest payloads: each frame is the LSK1 envelope of a scratch sketch
   holding one batch of updates; the server folds frames in by
   linearity, so the sum over frames equals direct application. *)
let batches spec =
  match Families.make ~family:spec.l_family ~n:spec.l_n ~seed:spec.l_seed with
  | Error m -> invalid_arg ("Loadgen.batches: " ^ m)
  | Ok made ->
      let scratch = made.Families.packed in
      let total = Array.length spec.l_updates in
      List.init (frame_count spec) (fun b ->
          Linear_sketch.Packed.reset scratch;
          let lo = b * spec.l_batch in
          let hi = min total (lo + spec.l_batch) in
          for i = lo to hi - 1 do
            let index, delta = spec.l_updates.(i) in
            Linear_sketch.Packed.update scratch ~index ~delta
          done;
          Linear_sketch.Packed.serialize scratch)

(* The envelope the server must hold after absorbing the first [frames]
   batches — bit-identical, not approximately equal: both sides run the
   same seeded sketch, and merging batch envelopes is the same linear
   map as applying the updates directly. *)
let expected_envelope ?frames spec =
  match Families.make ~family:spec.l_family ~n:spec.l_n ~seed:spec.l_seed with
  | Error m -> invalid_arg ("Loadgen.expected_envelope: " ^ m)
  | Ok made ->
      let mirror = made.Families.packed in
      let total = Array.length spec.l_updates in
      let upto =
        match frames with
        | None -> total
        | Some f -> min total (f * spec.l_batch)
      in
      for i = 0 to upto - 1 do
        let index, delta = spec.l_updates.(i) in
        Linear_sketch.Packed.update mirror ~index ~delta
      done;
      Linear_sketch.Packed.serialize mirror

let hash payload = Wire.fnv1a64 payload

(* Ledger line: tenant stream acked_frames fnv1a64-of-expected-envelope.
   Written by the driver after every ack so a kill -9 of the *client*
   also leaves a consistent ledger prefix. *)
let ledger_line spec ~acked =
  Printf.sprintf "%s %s %d %016Lx" spec.l_tenant spec.l_stream acked
    (hash (expected_envelope ~frames:acked spec))

let parse_ledger_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ tenant; stream; acked; h ] -> (
      match (int_of_string_opt acked, Int64.of_string_opt ("0x" ^ h)) with
      | Some a, Some hv -> Some (tenant, stream, a, hv)
      | _ -> None)
  | _ -> None

type outcome = {
  o_acked_frames : int;
  o_failed_frames : int;
  o_retries : int;
  o_reconnects : int;
  o_backoff : float;
  o_lat : Ds_obs.Quantile.summary;
      (* client-observed wall time per acked ingest RPC, ns — measured
         with an ungated Quantile sketch, so honest p99/p999 come out
         of a fixed-memory accumulator instead of a sample array *)
}

(* Drive the plan through a socket client round-robin across streams, so
   every tenant's queue fills concurrently and backpressure is actually
   exercised.  [ledger] receives one line per stream after each ack. *)
let run client plan ~ledger =
  let specs = Array.of_list plan.p_specs in
  let payloads = Array.map (fun s -> Array.of_list (batches s)) specs in
  let acked = Array.make (Array.length specs) 0 in
  let failed = ref 0 in
  Array.iter
    (fun spec ->
      match
        Client.create_stream client ~tenant:spec.l_tenant ~stream:spec.l_stream
          ~family:spec.l_family ~n:spec.l_n ~seed:spec.l_seed
      with
      | Ok _ -> ()
      | Error m ->
          invalid_arg
            (Printf.sprintf "loadgen: create %s/%s: %s" spec.l_tenant spec.l_stream m))
    specs;
  let remaining = ref (Array.fold_left (fun a p -> a + Array.length p) 0 payloads) in
  let cursor = Array.make (Array.length specs) 0 in
  let lat = Ds_obs.Quantile.make () in
  let write_ledger i =
    match ledger with
    | None -> ()
    | Some oc ->
        output_string oc (ledger_line specs.(i) ~acked:acked.(i));
        output_char oc '\n';
        flush oc
  in
  while !remaining > 0 do
    Array.iteri
      (fun i spec ->
        let c = cursor.(i) in
        if c < Array.length payloads.(i) then begin
          cursor.(i) <- c + 1;
          decr remaining;
          let t0 = Ds_obs.Clock.now_ns () in
          match
            Client.ingest client ~tenant:spec.l_tenant ~stream:spec.l_stream
              ~payload:payloads.(i).(c)
          with
          | Ok () ->
              Ds_obs.Quantile.observe lat
                (Int64.to_int (Ds_obs.Clock.elapsed_ns t0));
              acked.(i) <- acked.(i) + 1;
              write_ledger i
          | Error _ -> incr failed
        end)
      specs
  done;
  (* Acked is a promise to this process only: the server may still hold
     the suffix in volatile state, and once we exit nobody retains the
     payloads to replay after a crash.  Flush every tenant so that at
     exit acked implies durable — the ledger then survives any later
     kill -9 of the server. *)
  let tenants = List.sort_uniq compare (List.map (fun s -> s.l_tenant) plan.p_specs) in
  List.iter
    (fun tenant ->
      match Client.flush client ~tenant with
      | Ok _ -> ()
      | Error m -> invalid_arg (Printf.sprintf "loadgen: flush %s: %s" tenant m))
    tenants;
  {
    o_acked_frames = Array.fold_left ( + ) 0 acked;
    o_failed_frames = !failed;
    o_retries = Client.retries client;
    o_reconnects = Client.reconnects client;
    o_backoff = Client.backoff_total client;
    o_lat = Ds_obs.Quantile.summarize lat;
  }

(* Verification: rebuild the plan from its seed, query every stream, and
   demand the server's envelope be bit-identical to the mirror at the
   acked watermark recorded in the ledger. *)
let verify client plan ~ledger_lines =
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match parse_ledger_line line with
      | Some (tenant, stream, a, h) -> Hashtbl.replace by_key (tenant, stream) (a, h)
      | None -> ())
    ledger_lines;
  let mismatches = ref [] and checked = ref 0 in
  List.iter
    (fun spec ->
      match Hashtbl.find_opt by_key (spec.l_tenant, spec.l_stream) with
      | None -> ()
      | Some (acked_frames, ledger_hash) -> (
          incr checked;
          let fail fmt =
            Printf.ksprintf
              (fun m ->
                mismatches :=
                  Printf.sprintf "%s/%s: %s" spec.l_tenant spec.l_stream m :: !mismatches)
              fmt
          in
          match Client.query client ~tenant:spec.l_tenant ~stream:spec.l_stream with
          | Error m -> fail "query: %s" m
          | Ok st ->
              if st.Client.applied_seq < acked_frames then
                fail "applied %d < acked %d (dropped acked updates!)" st.Client.applied_seq
                  acked_frames
              else begin
                let expected = expected_envelope ~frames:st.Client.applied_seq spec in
                if st.Client.payload <> expected then
                  fail "envelope differs from mirror at frame %d" st.Client.applied_seq;
                let eh = hash (expected_envelope ~frames:acked_frames spec) in
                if eh <> ledger_hash then
                  fail "ledger hash %016Lx <> mirror %016Lx" ledger_hash eh
              end))
    plan.p_specs;
  (!checked, List.rev !mismatches)
