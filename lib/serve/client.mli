(** Reconnecting SRV1 client over a Unix domain socket.

    Every call runs under {!Ds_fault.Supervisor}'s capped exponential
    backoff with multiplicative jitter: transport faults (disconnect,
    poisoned framing) reconnect and {e resync} — ask the server's
    (applied, durable) watermarks, drop what is durable there, re-send
    everything above the applied watermark by linearity — while
    retryable NACKs ([Overloaded]) back off and re-send the same frame.
    Permanent NACKs ([Quota_exceeded], [Bad_seq], [Bad_frame], ...)
    surface immediately as [Error].

    The client keeps, per stream, the suffix of payloads not yet covered
    by a durable generation; that suffix is exactly what a kill -9 can
    lose and exactly what resync can be asked to re-send.  Entries the
    live server has applied but not yet checkpointed stay in the ledger
    without being re-sent, so a reconnect to a lagging server never
    forgets what a later crash could roll back.  The sequence-watermark
    discipline on the server makes every replay idempotent. *)

type t

val connect :
  ?policy:Ds_fault.Supervisor.policy ->
  ?delay_unit:float ->
  ?seed:int ->
  socket_path:string ->
  unit ->
  t
(** Lazy: the socket is dialed on first use.  [delay_unit] converts the
    supervisor's abstract backoff units to seconds (default 0.02);
    [seed] drives the jitter. *)

val close : t -> unit

val create_stream :
  t -> tenant:string -> stream:string -> family:string -> n:int -> seed:int ->
  (int, string) result
(** Returns the sketch's size in words.  Idempotent for an identical
    [(family, n, seed)] triple. *)

val ingest : t -> tenant:string -> stream:string -> payload:string -> (unit, string) result
(** Assigns the next sequence number, retains the payload until a
    durable ack covers it, sends, and retries per the policy. *)

type state = {
  payload : string;  (** full LSK1 envelope of the merged sketch *)
  applied_seq : int;
  copies_total : int;
  copies_lost : int;
  certified_delta : float;  (** surviving-quorum failure probability *)
}

val query : t -> tenant:string -> stream:string -> (state, string) result
val seqs : t -> tenant:string -> stream:string -> (int * int, string) result
(** (applied, durable) watermarks. *)

val flush : t -> tenant:string -> (int, string) result
(** Force a checkpoint; returns the durable generation number. *)

val drop_copies :
  t -> tenant:string -> stream:string -> copies:int list -> (int, string) result

val stats : t -> (int * int * int * int, string) result
(** (tenants, streams, applied frames, words). *)

val stat : t -> (string, string) result
(** The server's full [serve_stats/v1] rollup as one JSON document
    (queue state, totals, NACK taxonomy, ingest latency quantiles and
    the bounded per-tenant section) — the [Stat_rollup] RPC. *)

val retries : t -> int
val reconnects : t -> int
val backoff_total : t -> float
(** Seconds actually slept in backoff. *)

val unacked_count : t -> tenant:string -> stream:string -> int
