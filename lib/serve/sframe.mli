(** SRV1: the serving layer's frame protocol.

    Clients speak length-prefixed frames ({!Ds_util.Wire.write_frame} /
    {!Frame_reader}) whose payloads are the tagged, checksummed messages
    below: [tag "SRV1" . kind . fields . fixed64 FNV-1a]. The checksum is
    verified before any field is parsed, mirroring the LSK1 envelope
    discipline — a damaged frame is a typed decode error, never garbage
    state.

    Sketch payloads inside [Ingest] and [State] are ordinary LSK1
    envelopes ({!Ds_sketch.Linear_sketch}): the server absorbs ingests by
    linearity, so a client batch is just a serialized delta sketch. *)

(** Why a request was refused. *)
type nack =
  | Overloaded of { queue_depth : int; bound : int }
      (** bounded ingest queue full — back off and re-send *)
  | Quota_exceeded of { used_words : int; budget_words : int }
      (** per-tenant space budget would be exceeded *)
  | Unknown_stream
  | Stream_exists  (** create with different parameters than the live stream *)
  | Unknown_family of string
  | Bad_seq of { expected : int; got : int }
      (** sequence gap — the client must rewind to [expected] *)
  | Bad_frame of string
      (** payload failed to decode or validate (bad names, dimension
          mismatch) — deterministic, not retryable *)

type request =
  | Create of { tenant : string; stream : string; family : string; n : int; seed : int }
  | Ingest of { tenant : string; stream : string; seq : int; payload : string }
      (** [payload] is an LSK1 envelope of the client's batch delta;
          [seq] counts from 1 per stream, contiguous *)
  | Query of { tenant : string; stream : string }
  | Seq_query of { tenant : string; stream : string }
  | Flush of { tenant : string }  (** force a durable checkpoint now *)
  | Drop_copies of { tenant : string; stream : string; copies : int list }
      (** chaos/admin: mark AGM repetitions lost (degraded quorum) *)
  | Stats
  | Stat_rollup
      (** live observability rollup: per-tenant words vs quota,
          checkpoint lag, NACK taxonomy and ingest latency quantiles as
          one [serve_stats/v1] JSON document.  Strictly additive (kind
          8): old servers answer it with a decode error, old clients
          never send it. *)

type response =
  | Created of { words : int }
  | Ack of { seq : int; durable_seq : int }
      (** applied (or idempotently re-acked); durable up to [durable_seq] *)
  | Nack of { seq : int; reason : nack }  (** [seq = -1] for non-ingest *)
  | State of {
      payload : string;  (** LSK1 envelope of the stream's full sketch *)
      applied_seq : int;
      copies_total : int;  (** AGM repetitions; 1 for scalar families *)
      copies_lost : int;
      certified_delta : float;
          (** decode failure probability certified by the surviving
              quorum ({!Ds_agm.Agm_sketch.certified_delta}); 0 for
              scalar families *)
    }
  | Seqs of { applied_seq : int; durable_seq : int }
  | Flushed of { generation : int }
  | Stats_reply of { tenants : int; streams : int; applied_frames : int; words : int }
  | Dropped of { copies_lost : int }
  | Stat_rollup_reply of { json : string }
      (** the [serve_stats/v1] document ({!Server.stat_json}) *)

val nack_name : nack -> string
(** Stable lowercase kind name — the keys of NACK metric counters. *)

val nack_kinds : string array
(** All kind names, indexed by {!nack_index} — the dense taxonomy used
    by per-tenant NACK counts in the STAT rollup. *)

val nack_index : nack -> int
(** [nack_kinds.(nack_index r) = nack_name r]. *)

val nack_retryable : nack -> bool
(** Whether re-sending the same frame after backoff can succeed. *)

val pp_nack : Format.formatter -> nack -> unit

val encode_request : ?trace:Ds_obs.Trace.context -> request -> string
(** [?trace] appends the same strictly-additive TCTX extension the
    LSK1 envelope carries (tag + two fixed64 ids, inside the checksum)
    so the server can link its [serve.apply] span under the client's
    send span.  Without it the bytes are identical to the PR 8 format,
    which old servers require. *)

val decode_request : string -> (request, string) result
(** Accepts traced and untraced frames alike, dropping the context. *)

val decode_request_traced :
  string -> (request * Ds_obs.Trace.context option, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val frame : string -> string
(** Wrap an encoded message in its 4-byte length prefix — the exact bytes
    written to the socket. *)
