(** The multi-tenant sketch service.

    The core is transport-agnostic: {!connect}/{!feed}/{!drain}/
    {!take_output} process SRV1 byte streams against the registry, so
    the deterministic simulator and the test suite drive exactly the
    code the Unix socket loop runs.

    Robustness properties, by mechanism:
    - {b admission control}: [Create] beyond the tenant's word budget is
      refused with a typed [Quota_exceeded] NACK ({!Registry.create_stream});
    - {b backpressure}: the ingest queue is bounded; when full, frames
      get an immediate [Overloaded] NACK naming the depth and bound so
      clients back off instead of timing out;
    - {b durability}: dirty tenants are checkpointed every
      [checkpoint_every] applied frames (write-tmp/fsync/rename, see
      {!Checkpoint}); a kill -9 at any instant loses only the
      acked-but-undurable suffix, which clients re-send by linearity;
    - {b graceful degradation}: AGM copies that fail their envelope
      checksum on recovery are marked lost and queries carry the
      surviving quorum's certified delta. *)

type config = {
  dir : string;  (** checkpoint store root *)
  quota_words : int;  (** per-tenant sketch-space budget *)
  queue_bound : int;  (** ingest queue depth before [Overloaded] *)
  drain_per_tick : int;  (** frames applied per {!drain} call *)
  checkpoint_every : int;  (** applied frames between generations *)
  max_frame : int;  (** LSK1 frame length-prefix ceiling *)
  retention : int;  (** durable generations kept per tenant *)
  tenant_gauges : int;
      (** heaviest tenants kept as [serve.tenant.words.*] registry
          gauges (the rest are evicted — the registry stays bounded) *)
  tenant_stats_cap : int;
      (** distinct tenants tracked and reported in the STAT rollup;
          later arrivals share one overflow slot *)
  flight : bool;  (** arm the crash {!Flight} recorder *)
}

val default_config : dir:string -> config

type t
type conn

type recovery_report = {
  r_tenants : int;
  r_streams : int;
  r_quarantined : int;  (** generations + torn tmp files quarantined *)
  r_degraded_copies : int;
  r_ns : int64;
}

val create : config -> t
(** Builds the registry and runs recovery: torn tmp files quarantined,
    then per tenant the newest generation that decodes and loads wins;
    corrupt generations are quarantined (never partially applied) and
    the walk falls back to the next older one. *)

val recovery_report : t -> recovery_report
val registry : t -> Registry.t
val config : t -> config

val events : t -> string list
(** Durability/degradation event log, oldest first — checkpoint writes,
    quarantines, lost copies, dropped connections.  Tests assert on
    exact event counts (e.g. "exactly one quarantine per torn file"). *)

val connect : t -> conn
val conn_failed : conn -> bool
(** True once the connection's length-prefix stream is poisoned (framing
    error) — the transport must drop it after flushing output. *)

val feed : t -> conn -> string -> unit
(** Feed raw bytes; complete frames are decoded and handled.  Non-ingest
    requests are answered immediately; ingest frames enter the bounded
    queue or are NACKed [Overloaded]. *)

val drain : t -> unit
(** Apply up to [drain_per_tick] queued frames (acks/NACKs written to
    each frame's connection), then checkpoint if the applied-frame
    budget is spent. *)

val take_output : conn -> string
(** Drain the connection's pending response bytes. *)

val pending_depth : t -> int
val checkpoint_now : t -> unit
(** Checkpoint every dirty tenant immediately (also the [Flush] path),
    refresh the top-K tenant gauges, and flight-dump when armed. *)

val stat_json : t -> string
(** The [serve_stats/v1] rollup answered to [Stat_rollup] requests and
    served at [/stats] on the admin socket: queue/backpressure state,
    totals, NACK taxonomy, ingest latency quantiles (p50/p90/p99/p999)
    and a per-tenant section bounded at [tenant_stats_cap] heaviest
    tenants (words vs quota, streams, watermarks, checkpoint lag,
    per-tenant NACKs and latency). *)

val run_unix :
  t ->
  socket_path:string ->
  ?admin_path:string ->
  ?tick:float ->
  ?max_ticks:int ->
  unit ->
  unit
(** Accept/ingest loop over a Unix domain socket ([Unix.select],
    non-blocking).  SIGTERM/SIGINT request a graceful exit: queued
    frames are drained and checkpointed; only kill -9 loses state.
    [max_ticks] bounds the loop for tests.  [admin_path] opens a second
    listener inside the same select loop speaking minimal HTTP/1.0:
    [GET /stats] (STAT rollup JSON), [/metrics] (Prometheus),
    [/json] (full [ds_obs/v1] report), [/healthz]. *)
