(** Crash flight recorder: bounded forensic dumps that survive kill -9.

    Persists the tail of the trace-span ring plus metric, quantile and
    STAT-rollup snapshots as one [flight/v1] JSON document at
    [<dir>/flight-latest.json], written write-tmp/fsync/rename (same
    discipline as {!Checkpoint}) so the file is never torn.  The
    server dumps on overload onset, quarantine-on-corruption, every
    checkpoint wave and graceful shutdown; after a kill -9 the last
    dump is what [dynospan serve-stats --post-mortem] replays. *)

type t

val create : ?max_spans:int -> ?max_events:int -> dir:string -> unit -> t
(** [max_spans] (default 256) bounds the span tail kept per dump;
    [max_events] (default 64) bounds the event-log tail. *)

val dump : t -> reason:string -> stats_json:string -> events:string list -> unit
(** Write one dump (atomically replacing the previous one).  [events]
    is newest-first, as {!Server} keeps it. *)

val dumps : t -> int
(** Dumps written so far by this recorder. *)

val path : dir:string -> string
(** Where the dump lives: [<dir>/flight-latest.json]. *)

val read : dir:string -> (Ds_util.Json.t, string) result
(** Parse the latest dump — the post-mortem entry point. *)
