(** Crash-consistent per-tenant checkpoint generations (SCP1).

    One file per (tenant, generation) holds every stream of the tenant:
    identity triple (family, n, seed), the applied-sequence watermark,
    and the sketch state as LSK1 parts — one envelope per AGM repetition
    (so targeted damage degrades a copy, not the tenant), one envelope
    for scalar families.

    Durability protocol: write to [gen-N.scp.tmp], [fsync], [rename] to
    [gen-N.scp], [fsync] the directory. A kill [-9] at any instant leaves
    either the previous generation set intact (a [.tmp] is skipped and
    quarantined on recovery, whole or torn) or the new generation fully
    durable — there is no state in which a reader sees a half-written
    [.scp]. Torn or corrupt generations fail the header checksum or the
    exact-length check and are {e quarantined, never decoded}: renamed to
    [*.quarantined] and left for post-mortems. *)

type record = {
  r_stream : string;
  r_family : string;
  r_n : int;
  r_seed : int;
  r_applied_seq : int;  (** every frame up to here is inside the parts *)
  r_parts : string list;  (** LSK1 envelopes, each self-checksummed *)
}

val encode : generation:int -> tenant:string -> record list -> string
val decode : string -> (int * string * record list, string) result
(** [Error] for a torn, truncated, or checksum-failing blob — in every
    such case no part has been interpreted. *)

val write : dir:string -> tenant:string -> generation:int -> record list -> unit
(** The durable write path described above. Creates directories as
    needed. @raise Failure on a short write. *)

val read : string -> (int * string * record list, string) result
(** Read and decode one generation file by path. *)

val tenant_dir : dir:string -> tenant:string -> string
val gen_path : dir:string -> tenant:string -> generation:int -> string
val tmp_path : dir:string -> tenant:string -> generation:int -> string

val generations : dir:string -> tenant:string -> int list
(** Generation numbers with a well-named [.scp] file, newest first
    (contents not yet validated — recovery walks this list). *)

val max_seen : dir:string -> tenant:string -> int
(** Highest generation number ever used, counting [.tmp] and
    [*.quarantined] leftovers — a recovering server must not reuse a
    number a dead incarnation may have touched. 0 if none. *)

val quarantine : string -> unit
(** Rename a bad generation (or torn tmp) to [path ^ ".quarantined"]. *)

val quarantine_tmp : dir:string -> tenant:string -> int
(** Quarantine every [.tmp] under the tenant (crash-mid-write leftovers);
    returns how many were found. *)

val prune : dir:string -> tenant:string -> keep:int -> unit
(** Unlink all but the newest [keep] valid-named generations. *)

val tenants : dir:string -> string list
(** Tenant subdirectories of a checkpoint root, sorted. *)
