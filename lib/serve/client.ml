open Ds_util
open Ds_fault

(* Per-stream client-side ledger: the next sequence number to assign and
   the acked-but-not-yet-durable suffix of payloads.  After a server
   kill -9 the recovered registry sits at the durable watermark; the
   client learns it with [Seq_query] and re-sends exactly this suffix —
   re-ingest by linearity. *)
type entry = {
  mutable next_seq : int;
  unacked : (int, string) Hashtbl.t;
  (* (family, n, seed) once [create_stream] succeeded: enough to
     re-register the stream if the server loses it entirely (killed
     before its first checkpoint ever landed). *)
  mutable spec : (string * int * int) option;
}

type t = {
  socket_path : string;
  policy : Supervisor.policy;
  delay_unit : float;
  rng : Prng.t;
  mutable fd : Unix.file_descr option;
  mutable reader : Frame_reader.t;
  streams : (string * string, entry) Hashtbl.t;
  mutable retries : int;
  mutable reconnects : int;
  mutable backoff_total : float;
}

let connect ?(policy = Supervisor.default) ?(delay_unit = 0.02) ?(seed = 0xC11E57) ~socket_path
    () =
  (* A write to a socket whose server died must surface as EPIPE (a
     transport error we reconnect from), not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    socket_path;
    policy;
    delay_unit;
    rng = Prng.create seed;
    fd = None;
    reader = Frame_reader.create ();
    streams = Hashtbl.create 8;
    retries = 0;
    reconnects = 0;
    backoff_total = 0.0;
  }

let retries t = t.retries
let reconnects t = t.reconnects
let backoff_total t = t.backoff_total

let close t =
  match t.fd with
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* Capped exponential backoff from the supervisor's policy, with
   multiplicative jitter in [0.5, 1.0) so a herd of clients NACKed in
   the same tick does not retry in the same tick. *)
let backoff t ~attempt =
  let units = Supervisor.delay_before t.policy ~attempt in
  let d = units *. t.delay_unit *. (0.5 +. Prng.float t.rng 0.5) in
  if d > 0.0 then begin
    t.backoff_total <- t.backoff_total +. d;
    Unix.sleepf d
  end

let entry t ~tenant ~stream =
  let key = (tenant, stream) in
  match Hashtbl.find_opt t.streams key with
  | Some e -> e
  | None ->
      let e = { next_seq = 1; unacked = Hashtbl.create 16; spec = None } in
      Hashtbl.replace t.streams key e;
      e

exception Transport of string

let transport fmt = Printf.ksprintf (fun m -> raise (Transport m)) fmt

let send fd msg =
  let framed = Sframe.frame msg in
  let len = String.length framed in
  let rec go pos =
    if pos < len then
      match Unix.write_substring fd framed pos (len - pos) with
      | 0 -> transport "write returned 0"
      | n -> go (pos + n)
      | exception Unix.Unix_error (e, _, _) -> transport "write: %s" (Unix.error_message e)
  in
  go 0

let recv t fd =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame_reader.next t.reader with
    | Error e -> transport "framing: %s" (Wire.frame_error_to_string e)
    | Ok (Some payload) -> (
        match Sframe.decode_response payload with
        | Ok r -> r
        | Error m -> transport "decode: %s" m)
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> transport "connection closed by server"
        | n ->
            Frame_reader.feed t.reader (Bytes.sub_string buf 0 n);
            go ()
        | exception Unix.Unix_error (e, _, _) -> transport "read: %s" (Unix.error_message e))
  in
  go ()

let dial t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with
  | () ->
      t.fd <- Some fd;
      t.reader <- Frame_reader.create ();
      fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      transport "connect %s: %s" t.socket_path (Unix.error_message e)

let rpc_on ?trace fd t req =
  send fd (Sframe.encode_request ?trace req);
  recv t fd

(* Resynchronise one stream after reconnecting: ask the server where its
   watermarks are, drop what is already durable there, replay everything
   above what it has applied, in order.  Entries in
   (durable_seq, applied_seq] are neither dropped nor re-sent: the live
   server holds them, so re-sending only draws duplicate acks, but a
   later kill -9 can still roll the server back below them — the ledger
   must keep them until a durable ack covers them.  Replayed frames the
   server already applied are absorbed as idempotent duplicates. *)
let resync_stream t fd (tenant, stream) e =
  let replay ~applied_seq ~durable_seq =
    let pending =
      Hashtbl.fold (fun seq payload acc -> (seq, payload) :: acc) e.unacked []
      |> List.sort compare
    in
    List.iter
      (fun (seq, payload) ->
        if seq <= durable_seq then Hashtbl.remove e.unacked seq
        else if seq > applied_seq then
          match rpc_on fd t (Sframe.Ingest { tenant; stream; seq; payload }) with
          | Sframe.Ack { seq = s; durable_seq } ->
              if s <> seq then transport "resync: ack for %d, expected %d" s seq;
              Hashtbl.iter
                (fun k _ -> if k <= durable_seq then Hashtbl.remove e.unacked k)
                (Hashtbl.copy e.unacked)
          | Sframe.Nack { reason; _ } ->
              transport "resync: %s" (Format.asprintf "%a" Sframe.pp_nack reason)
          | _ -> transport "resync: unexpected response")
      pending;
    if e.next_seq <= applied_seq then e.next_seq <- applied_seq + 1
  in
  match rpc_on fd t (Sframe.Seq_query { tenant; stream }) with
  | Sframe.Seqs { applied_seq; durable_seq } -> replay ~applied_seq ~durable_seq
  | Sframe.Nack { reason = Sframe.Unknown_stream; _ } -> (
      (* The server lost every generation for this stream — killed before
         its first checkpoint ever landed.  Then nothing was ever durable,
         so nothing was ever pruned from the unacked ledger: it holds the
         complete history and we can re-register and replay from seq 1. *)
      match e.spec with
      | Some (family, n, seed) -> (
          match rpc_on fd t (Sframe.Create { tenant; stream; family; n; seed }) with
          | Sframe.Created _ -> replay ~applied_seq:0 ~durable_seq:0
          | Sframe.Nack { reason; _ } ->
              transport "resync create: %s" (Format.asprintf "%a" Sframe.pp_nack reason)
          | _ -> transport "resync create: unexpected response")
      | None ->
          (* Never created through this client; the caller's own create
             re-registers it and the suffix replays then. *)
          ())
  | Sframe.Nack { reason; _ } ->
      transport "resync: %s" (Format.asprintf "%a" Sframe.pp_nack reason)
  | _ -> transport "resync: unexpected response"

let ensure_conn t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let fd = dial t in
      t.reconnects <- t.reconnects + 1;
      Hashtbl.iter (fun key e -> resync_stream t fd key e) t.streams;
      fd

(* Run one request with the supervisor's retry envelope: transport
   faults reconnect-and-resync, retryable NACKs ([Overloaded]) back off
   and re-send.  Permanent NACKs surface immediately — retrying them
   cannot succeed. *)
let with_retries t f =
  let rec go attempt =
    let outcome =
      match
        let fd = ensure_conn t in
        f fd
      with
      | r -> r
      | exception Transport m ->
          close t;
          Error (`Transient m)
    in
    match outcome with
    | Ok v -> Ok v
    | Error (`Permanent m) -> Error m
    | Error (`Transient m) ->
        if attempt + 1 >= t.policy.Supervisor.max_attempts then Error m
        else begin
          t.retries <- t.retries + 1;
          backoff t ~attempt:(attempt + 1);
          go (attempt + 1)
        end
  in
  go 0

let nack_error reason =
  let m = Format.asprintf "%a" Sframe.pp_nack reason in
  if Sframe.nack_retryable reason then Error (`Transient m) else Error (`Permanent m)

let create_stream t ~tenant ~stream ~family ~n ~seed =
  let e = entry t ~tenant ~stream in
  with_retries t (fun fd ->
      match rpc_on fd t (Sframe.Create { tenant; stream; family; n; seed }) with
      | Sframe.Created { words } ->
          e.spec <- Some (family, n, seed);
          Ok words
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to create"))

let ingest t ~tenant ~stream ~payload =
  let e = entry t ~tenant ~stream in
  let seq = e.next_seq in
  e.next_seq <- seq + 1;
  Hashtbl.replace e.unacked seq payload;
  with_retries t (fun fd ->
      match
        (* When tracing is on, the frame carries this send span's
           context (TCTX) so the server's serve.apply span parents
           under it — one causal trace across both processes.  With
           tracing off, [current_context] is [None] and the bytes are
           the PR 8 wire format exactly. *)
        Ds_obs.Trace.with_span "client.send" (fun () ->
            rpc_on
              ?trace:(Ds_obs.Trace.current_context ())
              fd t
              (Sframe.Ingest { tenant; stream; seq; payload }))
      with
      | Sframe.Ack { durable_seq; _ } ->
          Hashtbl.iter
            (fun k _ -> if k <= durable_seq then Hashtbl.remove e.unacked k)
            (Hashtbl.copy e.unacked);
          Ok ()
      | Sframe.Nack { reason = Sframe.Bad_seq { expected; _ }; _ } when expected <= seq ->
          (* The server is behind us (it recovered mid-conversation); a
             resync on the next attempt replays the gap. *)
          close t;
          Error (`Transient "server behind client watermark")
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to ingest"))

type state = {
  payload : string;
  applied_seq : int;
  copies_total : int;
  copies_lost : int;
  certified_delta : float;
}

let query t ~tenant ~stream =
  with_retries t (fun fd ->
      match rpc_on fd t (Sframe.Query { tenant; stream }) with
      | Sframe.State { payload; applied_seq; copies_total; copies_lost; certified_delta } ->
          Ok { payload; applied_seq; copies_total; copies_lost; certified_delta }
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to query"))

let seqs t ~tenant ~stream =
  with_retries t (fun fd ->
      match rpc_on fd t (Sframe.Seq_query { tenant; stream }) with
      | Sframe.Seqs { applied_seq; durable_seq } -> Ok (applied_seq, durable_seq)
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to seq query"))

let flush t ~tenant =
  with_retries t (fun fd ->
      match rpc_on fd t (Sframe.Flush { tenant }) with
      | Sframe.Flushed { generation } -> Ok generation
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to flush"))

let drop_copies t ~tenant ~stream ~copies =
  with_retries t (fun fd ->
      match rpc_on fd t (Sframe.Drop_copies { tenant; stream; copies }) with
      | Sframe.Dropped { copies_lost } -> Ok copies_lost
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to drop"))

let stats t =
  with_retries t (fun fd ->
      match rpc_on fd t Sframe.Stats with
      | Sframe.Stats_reply { tenants; streams; applied_frames; words } ->
          Ok (tenants, streams, applied_frames, words)
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to stats"))

let stat t =
  with_retries t (fun fd ->
      match rpc_on fd t Sframe.Stat_rollup with
      | Sframe.Stat_rollup_reply { json } -> Ok json
      | Sframe.Nack { reason; _ } -> nack_error reason
      | _ -> Error (`Transient "unexpected response to stat"))

let unacked_count t ~tenant ~stream =
  match Hashtbl.find_opt t.streams (tenant, stream) with
  | Some e -> Hashtbl.length e.unacked
  | None -> 0
