(** Seeded load generator for the serve layer.

    The whole workload — tenants, streams, Zipf-profiled stream sizes,
    per-stream update sequences, batch envelopes — is a pure function of
    one seed.  That purity is the verification story: after any crash or
    chaos run, [verify] rebuilds the mirror sketches from the seed alone
    and demands the server's envelopes be {e bit-identical} at the acked
    watermark recorded in the ledger. *)

type stream_spec = {
  l_tenant : string;
  l_stream : string;
  l_family : string;
  l_n : int;
  l_seed : int;
  l_updates : (int * int) array;
  l_batch : int;
}

type plan = { p_seed : int; p_specs : stream_spec list }

val make :
  ?families:string list ->
  ?zipf:float ->
  seed:int ->
  tenants:int ->
  streams_per_tenant:int ->
  updates:int ->
  n:int ->
  batch:int ->
  unit ->
  plan
(** Rank-r stream receives [1/r^zipf] of the update budget (min one
    batch); families cycle through {!Families.names}. *)

val frame_count : stream_spec -> int
val batches : stream_spec -> string list
(** One LSK1 envelope per ingest frame (a batch of updates sketched into
    a scratch sketch — the server folds them in by linearity). *)

val expected_envelope : ?frames:int -> stream_spec -> string
(** Mirror envelope after the first [frames] batches (default: all). *)

val hash : string -> int64
val ledger_line : stream_spec -> acked:int -> string
val parse_ledger_line : string -> (string * string * int * int64) option

type outcome = {
  o_acked_frames : int;
  o_failed_frames : int;
  o_retries : int;
  o_reconnects : int;
  o_backoff : float;
  o_lat : Ds_obs.Quantile.summary;
      (** client-observed wall time per acked ingest RPC, in ns *)
}

val run : Client.t -> plan -> ledger:out_channel option -> outcome
(** Round-robin the plan's batches across streams (so backpressure is
    exercised), appending a ledger line after every ack. *)

val verify : Client.t -> plan -> ledger_lines:string list -> int * string list
(** (streams checked, mismatch descriptions — empty means every acked
    update survived, bit-identically). *)
