open Ds_util
open Ds_sketch

(* A served stream's sketch is reconstructed on both sides of the wire
   (and across restarts) from exactly three scalars: family name, index
   dimension, seed.  The maker must therefore be a pure function of
   those — any parameter defaults in here are part of the protocol. *)

type made = {
  packed : Linear_sketch.Packed.t;
  agm : Ds_agm.Agm_sketch.t option;
      (* the typed handle when the family is "agm": per-copy checkpoint
         parts and degraded quorum decoding need the repetition
         structure the packed view hides *)
}

let scalar packed = { packed; agm = None }

let make ~family ~n ~seed =
  if n < 2 then Error (Printf.sprintf "dimension %d too small" n)
  else
    match family with
    | "agm" ->
        let t =
          Ds_agm.Agm_sketch.create (Prng.create seed) ~n
            ~params:(Ds_agm.Agm_sketch.default_params ~n)
        in
        Ok { packed = Linear_sketch.Packed.pack (module Ds_agm.Agm_sketch.Linear) t; agm = Some t }
    | "connectivity" ->
        let t =
          Ds_agm.Connectivity.create (Prng.create seed) ~n
            ~params:(Ds_agm.Agm_sketch.default_params ~n)
        in
        Ok (scalar (Linear_sketch.Packed.pack (module Ds_agm.Connectivity.Linear) t))
    | "l0_sampler" ->
        let t =
          L0_sampler.create (Prng.create seed) ~dim:n ~params:L0_sampler.default_params
        in
        Ok (scalar (Linear_sketch.Packed.pack (module L0_sampler.Linear) t))
    | "count_sketch" ->
        let t =
          Count_sketch.create (Prng.create seed) ~dim:n
            ~params:{ Count_sketch.rows = 3; cols = 32; hash_degree = 4 }
        in
        Ok (scalar (Linear_sketch.Packed.pack (module Count_sketch.Linear) t))
    | "ams_f2" ->
        let t =
          Ams_f2.create (Prng.create seed) ~dim:n
            ~params:{ Ams_f2.rows = 4; reps = 3; hash_degree = 4 }
        in
        Ok (scalar (Linear_sketch.Packed.pack (module Ams_f2.Linear) t))
    | "sparsify1p" ->
        (* n is the vertex count; the sketch lives over the binom(n,2) edge
           space. Serving-tier bank sizes (not the offline decode defaults,
           which scale with eps) — like every maker here, they are part of
           the protocol. *)
        let t =
          Ds_sparsify.Level_bank.create (Prng.create seed)
            ~dim:(Ds_graph.Edge_index.dim n)
            ~params:
              {
                Ds_sparsify.Level_bank.banks = 2;
                levels = 8;
                rows = 3;
                cols = 64;
                hash_degree = 6;
              }
        in
        Ok (scalar (Linear_sketch.Packed.pack (module Ds_sparsify.Level_bank.Linear) t))
    | other -> Error (Printf.sprintf "unknown family %S" other)

let names = [ "agm"; "connectivity"; "l0_sampler"; "count_sketch"; "ams_f2"; "sparsify1p" ]
