(* Crash flight recorder.

   A kill -9 leaves the checkpoint store (durable state) but destroys
   everything the operator actually wants to see afterwards: what the
   server was doing, how deep the queue was, which tenant was being
   applied.  The recorder persists exactly that — the tail of the
   trace-span ring, the metric/quantile snapshots and the live STAT
   rollup — as one JSON document under the checkpoint dir, written
   with the same write-tmp/fsync/rename discipline as {!Checkpoint} so
   the file is always either the previous complete dump or the new
   complete dump, never torn.

   Dumps are cheap (one bounded buffer + one rename) and are triggered
   on state transitions that precede most incidents: overload onset,
   quarantine-on-corruption at recovery, every checkpoint wave, and
   graceful shutdown.  The dump lives at [<dir>/flight-latest.json] —
   a root-level *file*, deliberately not a subdirectory, because
   {!Checkpoint.tenants} treats every directory under [dir] as a
   tenant store. *)

type t = {
  f_dir : string;
  f_max_spans : int;
  f_max_events : int;
  mutable f_seq : int;
}

let filename = "flight-latest.json"
let path ~dir = Filename.concat dir filename

let create ?(max_spans = 256) ?(max_events = 64) ~dir () =
  { f_dir = dir; f_max_spans = max_spans; f_max_events = max_events; f_seq = 0 }

let dumps t = t.f_seq

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_atomic ~path data =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length data in
      let pos = ref 0 in
      while !pos < len do
        match Unix.write_substring fd data !pos (len - !pos) with
        | n -> pos := !pos + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

(* Last [n] of a list, preserving order. *)
let tail n l =
  let len = List.length l in
  if len <= n then l
  else
    let rec drop k = function _ :: tl when k > 0 -> drop (k - 1) tl | l -> l in
    drop (len - n) l

let take n l =
  let rec go n = function x :: tl when n > 0 -> x :: go (n - 1) tl | _ -> [] in
  go n l

let dump t ~reason ~stats_json ~events =
  t.f_seq <- t.f_seq + 1;
  let b = Buffer.create 8192 in
  Printf.bprintf b
    "{\"schema\":\"flight/v1\",\"seq\":%d,\"reason\":\"%s\",\"pid\":%d,\"wall_s\":%.3f,\"mono_ns\":%Ld,"
    t.f_seq
    (Ds_util.Json.escape reason)
    (Unix.getpid ()) (Unix.gettimeofday ())
    (Ds_obs.Clock.now_ns ());
  (* Tail of the span ring: the most recent serve.apply/client spans. *)
  let spans = tail t.f_max_spans (Ds_obs.Trace.spans ()) in
  Buffer.add_string b "\"spans\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Ds_obs.Trace.span_to_json sp))
    spans;
  Printf.bprintf b "],\"spans_recorded\":%d,\"spans_dropped\":%d,"
    (Ds_obs.Trace.recorded ())
    (Ds_obs.Trace.dropped ());
  Buffer.add_string b "\"metrics\":";
  Buffer.add_string b (Ds_obs.Metrics.to_json (Ds_obs.Metrics.snapshot ()));
  Buffer.add_string b ",\"quantiles\":";
  Buffer.add_string b (Ds_obs.Quantile.to_json (Ds_obs.Quantile.snapshot ()));
  Buffer.add_string b ",\"stats\":";
  Buffer.add_string b stats_json;
  (* Newest-first event tail, as kept by the server. *)
  Buffer.add_string b ",\"events\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\"" (Ds_util.Json.escape e))
    (take t.f_max_events events);
  Buffer.add_string b "]}";
  write_atomic ~path:(path ~dir:t.f_dir) (Buffer.contents b)

let read ~dir =
  let p = path ~dir in
  match
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ds_util.Json.parse data
  | exception Sys_error m -> Error m
