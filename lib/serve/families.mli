(** Family registry of the serving layer.

    A served stream's sketch is a pure function of [(family, n, seed)] —
    the three scalars in a [Create] frame and in every checkpoint record.
    Client, server and recovery all call {!make} with the same triple, so
    their sketches are wire-compatible (equal shape {e and} equal
    seed-derived structure) and LSK1 envelopes flow between them. *)

type made = {
  packed : Ds_sketch.Linear_sketch.Packed.t;
  agm : Ds_agm.Agm_sketch.t option;
      (** the typed handle when [family = "agm"] — it shares state with
          [packed]; per-copy checkpointing and degraded quorum decoding
          need the repetition structure *)
}

val make : family:string -> n:int -> seed:int -> (made, string) result
(** Families: ["agm"] (graph connectivity over [n] vertices, per-copy
    durability and certified degraded decode), ["connectivity"],
    ["l0_sampler"], ["count_sketch"], ["ams_f2"] (index space of size
    [n]), ["sparsify1p"] (single-pass sparsifier bank over the
    [binom(n,2)] edge space of an [n]-vertex graph). [Error] names the
    unknown family or bad dimension. *)

val names : string list
