(** A fixed-size pool of OCaml 5 domains with a shared job queue.

    The pool exists to parallelise {e sketch ingestion}: linear sketches of
    stream shards can be built on separate domains and summed afterwards
    (see {!Shard_ingest}), which is the same decomposition the paper's
    distributed setting uses across servers. Workers are spawned once at
    {!create} and persist until {!shutdown} — callers batch work through
    {!run} without paying a domain spawn per call.

    Scheduling is deliberately minimal (one mutex, one condition variable,
    FIFO queue): ingestion jobs are long and coarse, so queue contention is
    irrelevant — the fine-grained balancing lives in {!Shard_ingest}'s
    work-stealing chunk deques, not here. Telemetry on the submit/pop path
    is sampled (one gauge write per 32 queue operations, outside the lock)
    so enabling metrics cannot serialize the workers. Do {e not} call
    {!run} from inside a job — a worker waiting on its own pool can
    deadlock when every other worker is busy. *)

type t

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains] workers (default
    [Domain.recommended_domain_count ()], minimum 1). Domains are an
    OS-level resource: create few pools and {!shutdown} them. *)

val size : t -> int
(** Number of worker domains. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute the thunks on the pool and wait for all of them; results are
    returned in submission order. A singleton list runs in the calling
    domain. If any thunk raises, the remaining thunks still run to
    completion and the first exception (in completion order) is re-raised.
    Thunks must not touch mutable state shared with other thunks. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f items] is {!run} over [fun () -> f items.(i)]. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget enqueue. {!run} is the right call for almost everything;
    [submit] exists for callers managing their own completion signalling.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Drain outstanding jobs, stop and join every worker. Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)
