type job = Job of (unit -> unit) | Quit

(* Telemetry (no-ops unless Ds_obs.Metrics is enabled).  The queue-depth
   gauge used to be written under [pool.lock] on every submit and pop,
   which serialized all workers on the gauge's cache line whenever
   metrics were on.  It is now *sampled*: one write per
   [depth_sample_every] queue operations, performed outside the lock.
   [Queue.length] is a field read (queues track their length), so the
   unlocked read is a benign race — the gauge is an observability
   signal, not a synchronization primitive, and a sampled value from a
   few operations ago is exactly as useful. *)
let m_jobs = Ds_obs.Metrics.counter "par.pool.jobs"
let m_depth = Ds_obs.Metrics.gauge "par.pool.queue_depth"
let depth_sample_every = 32

type t = {
  size : int;
  jobs : job Queue.t;
  lock : Mutex.t;
  has_job : Condition.t;
  ops : int Atomic.t; (* padded: submit/pop tick counter for gauge sampling *)
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

let sample_depth pool =
  if Ds_obs.Metrics.enabled () then
    if Atomic.fetch_and_add pool.ops 1 land (depth_sample_every - 1) = 0 then
      Ds_obs.Metrics.set m_depth (Queue.length pool.jobs)

let worker pool =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.jobs do
      Condition.wait pool.has_job pool.lock
    done;
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.lock;
    sample_depth pool;
    match job with
    | Quit -> ()
    | Job f ->
        f ();
        Ds_obs.Metrics.incr m_jobs 1;
        loop ()
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | Some d when d < 1 -> invalid_arg "Pool.create: need at least one domain"
    | Some d -> d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let pool =
    {
      size;
      jobs = Queue.create ();
      lock = Mutex.create ();
      has_job = Condition.create ();
      ops = Ds_util.Padding.atomic 0;
      workers = [||];
      closed = false;
    }
  in
  pool.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.size

let submit pool job =
  (* Capture the submitter's trace context so spans recorded by the
     worker domain parent under the submitting span.  Free when tracing
     is off ([current_context] returns [None] without touching DLS). *)
  let ctx = Ds_obs.Trace.current_context () in
  let job =
    match ctx with
    | None -> job
    | Some _ -> fun () -> Ds_obs.Trace.with_context ctx job
  in
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push (Job job) pool.jobs;
  Condition.signal pool.has_job;
  Mutex.unlock pool.lock;
  sample_depth pool

let run pool thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ] (* nothing to overlap; skip the queue round-trip *)
  | thunks ->
      let n = List.length thunks in
      let results = Array.make n None in
      let pending = ref n in
      let first_error = ref None in
      let done_lock = Mutex.create () in
      let all_done = Condition.create () in
      List.iteri
        (fun i f ->
          submit pool (fun () ->
              let outcome = try Ok (f ()) with e -> Error e in
              Mutex.lock done_lock;
              (match outcome with
              | Ok v -> results.(i) <- Some v
              | Error e -> if !first_error = None then first_error := Some e);
              decr pending;
              if !pending = 0 then Condition.signal all_done;
              Mutex.unlock done_lock))
        thunks;
      Mutex.lock done_lock;
      while !pending > 0 do
        Condition.wait all_done done_lock
      done;
      Mutex.unlock done_lock;
      (match !first_error with Some e -> raise e | None -> ());
      Array.to_list (Array.map Option.get results)

let map_array pool f items =
  if Array.length items = 0 then [||]
  else
    run pool (List.init (Array.length items) (fun i () -> f items.(i))) |> Array.of_list

let shutdown pool =
  Mutex.lock pool.lock;
  if not pool.closed then begin
    pool.closed <- true;
    for _ = 1 to pool.size do
      Queue.push Quit pool.jobs
    done;
    Condition.broadcast pool.has_job;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end
  else Mutex.unlock pool.lock

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
