(** Domain-parallel sketch ingestion by shard-and-sum.

    Linear sketches commute with stream partitioning: for any split of the
    update array into shards, the sum of per-shard sketches equals the
    sketch of the whole stream — {e exactly}, counter for counter, provided
    every replica is built from the same seed-derived structure. That is the
    property the paper's distributed setting rests on (Section 1), and it is
    what makes this module's output bit-identical to sequential ingestion
    (property-tested in [test/test_par.ml]).

    The engine partitions the update array under a {!policy}, builds one
    compatible replica per worker domain ({!Ds_agm.Agm_sketch.clone_zero}
    and friends share the immutable hash state physically, so replicas cost
    only their counters), ingests shards concurrently, and reduces by
    linearity. *)

type 'a policy =
  | Chunked  (** contiguous slices — best cache behaviour, the default *)
  | Round_robin  (** update [i] to shard [i mod shards] (the paper's figure) *)
  | By_key of ('a -> int)  (** locality routing, e.g. {!by_vertex} *)

val by_vertex : Ds_stream.Update.t policy
(** Route each edge update by [min u v] — every vertex's updates land on one
    shard, mirroring a vertex-partitioned server deployment. *)

val split : 'a policy -> shards:int -> 'a array -> 'a array array
(** Materialise the partition (exposed for tests and custom drivers). Every
    element appears in exactly one shard; [Chunked] and [Round_robin]
    preserve relative order within a shard. *)

val ingest :
  Pool.t ->
  ?policy:'a policy ->
  make:(unit -> 's) ->
  update:('s -> 'a array -> unit) ->
  merge:('s -> 's -> unit) ->
  'a array ->
  's
(** [ingest pool ~make ~update ~merge items] builds [min (size pool)
    (length items)] replicas with [make] (called in the calling domain — it
    may read shared seeds without locking), applies each shard with [update]
    on a worker domain, merges right-to-left into the first replica with
    [merge] and returns it. [make] must produce {e compatible} replicas:
    sketches whose structure derives from the same seed. *)

val ingest_into :
  Pool.t ->
  ?policy:'a policy ->
  clone_zero:('s -> 's) ->
  update:('s -> 'a array -> unit) ->
  add:('s -> 's -> unit) ->
  's ->
  'a array ->
  unit
(** Like {!ingest}, but replicas are [clone_zero] copies of an existing
    sketch and the reduced result is added into it — the convenient form
    when a consumer owns a long-lived sketch. *)

val linear :
  Pool.t ->
  ?policy:(int * int) policy ->
  's Ds_sketch.Linear_sketch.impl ->
  's ->
  (int * int) array ->
  unit
(** [linear pool impl sketch pairs] shard-ingests an [(index, delta)] array
    into {e any} sketch implementing {!Ds_sketch.Linear_sketch.S} — the one
    generic entry point. Replicas are [clone_zero] copies, shards are applied
    with the interface's [update], the reduction is [add]; bit-identical to
    applying [pairs] sequentially. *)

(** {2 Sketch-specific wrappers}

    [agm] and [connectivity] take edge-update arrays and keep their
    locality-regrouping [update_batch] fast path; the rest are one-line
    instantiations of {!linear}. *)

val agm : Pool.t -> ?policy:Ds_stream.Update.t policy -> Ds_agm.Agm_sketch.t -> Ds_stream.Update.t array -> unit
val connectivity : Pool.t -> ?policy:Ds_stream.Update.t policy -> Ds_agm.Connectivity.t -> Ds_stream.Update.t array -> unit
val l0_sampler : Pool.t -> ?policy:(int * int) policy -> Ds_sketch.L0_sampler.t -> (int * int) array -> unit
val sparse_recovery : Pool.t -> ?policy:(int * int) policy -> Ds_sketch.Sparse_recovery.t -> (int * int) array -> unit
