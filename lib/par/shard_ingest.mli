(** Domain-parallel sketch ingestion: shard-and-sum with work stealing.

    Linear sketches commute with stream partitioning: for any split of the
    update array into shards, the sum of per-shard sketches equals the
    sketch of the whole stream — {e exactly}, counter for counter, provided
    every replica is built from the same seed-derived structure. That is the
    property the paper's distributed setting rests on (Section 1), and it is
    what makes this module's output bit-identical to sequential ingestion
    (property-tested in [test/test_par.ml]).

    The engine turns the update array into a {e chunk plan} — index ranges
    over the original array (or over one key-grouped permutation for
    {!By_key}), never per-shard copies — and deals the chunks to worker
    deques. Each worker owns a {e lazily created} private replica
    ({!Ds_agm.Agm_sketch.clone_zero} and friends share the immutable hash
    state physically, so replicas cost only their counters), drains its own
    deque, then steals chunks from stalled peers (Chase–Lev deques,
    {!Ws_deque}); a stolen chunk is ingested into the {e thief's} replica,
    which is sound because any assignment of chunks to replicas sums to the
    identical sketch. Chunks are sized for the batched [update_slice]
    kernels, and the final reduction is a log-depth parallel tree merge.

    Work stealing, the chunk size, the number of replicas and the merge
    order are all invisible in the result: integer counter addition is
    commutative and associative, so every schedule produces the same bytes. *)

type 'a policy =
  | Chunked  (** contiguous ranges — best cache behaviour, the default *)
  | Round_robin
      (** chunks dealt round-robin: every worker starts on an interleaved
          sample of the stream (equal to the classic element-stride deal by
          linearity, without the strided copy) *)
  | By_key of ('a -> int)  (** locality routing, e.g. {!by_vertex} *)

val by_vertex : Ds_stream.Update.t policy
(** Route each edge update by [min u v] — every vertex's updates land on one
    shard, mirroring a vertex-partitioned server deployment. *)

val split : 'a policy -> shards:int -> 'a array -> 'a array array
(** Materialise the partition as fresh per-shard arrays. {b Tests and custom
    drivers only}: the engine itself works on index-range chunk plans
    ({!plan}) and never pays the per-shard copies — [split] survives as the
    executable specification of the three policies (every element appears in
    exactly one shard; [Chunked] and [Round_robin] preserve relative order
    within a shard) and for callers that genuinely need materialised shards,
    such as the cluster simulator's per-server update logs. *)

(** {2 Chunk plans} *)

type 'a plan = private {
  data : 'a array;
      (** the array chunks index into: the caller's array unchanged
          ([Chunked]/[Round_robin]) or one key-grouped permutation of it
          ([By_key] — the only copy the engine ever makes) *)
  chunk_lo : int array;  (** start of chunk [c] in [data] *)
  chunk_len : int array;  (** length of chunk [c] *)
  deal : int array array;  (** [deal.(w)]: chunk ids initially dealt to worker [w] *)
}

val plan : ?chunk:int -> 'a policy -> workers:int -> 'a array -> 'a plan
(** Build the zero-copy chunk plan the engine runs on (exposed for tests and
    custom drivers). Every index of the input appears in exactly one chunk;
    every chunk is dealt to exactly one worker. [chunk] overrides the chunk
    size (default: sized so each worker's deal is several kernel-friendly
    batches, at least 512 elements per chunk).
    @raise Invalid_argument if [workers < 1] or [chunk < 1]. *)

(** {2 Replica arenas} *)

type 's arena
(** Keeps worker replicas alive across runs so repeated ingests into the
    same sketch structure stop allocating: a slot's replica is created
    (one [clone_zero]) the first time that worker ever wins a chunk, and
    every later run hands it back after a [reset] — one off-heap buffer
    fill back to the zero vector. An arena is tied to one sketch
    {e structure}: reusing it with a sketch of different shape or seed is
    a contract violation (the family's own compatibility check will
    reject the merge). Not concurrency-safe across overlapping ingests. *)

val arena : ?bytes_of:('s -> int) -> reset:('s -> unit) -> unit -> 's arena
(** [reset] must return a replica to the zero sketch in place
    (e.g. {!Ds_agm.Agm_sketch.reset}); [bytes_of] (default [fun _ -> 0])
    prices a replica for the [par.ingest.arena_bytes] gauge. *)

val arena_of : 's Ds_sketch.Linear_sketch.impl -> 's arena
(** An arena for any linear family, priced at [8 * space_in_words]. *)

val agm_arena : unit -> Ds_agm.Agm_sketch.t arena

val arena_bytes : 's arena -> int
(** Off-heap bytes currently held by the arena's replicas (also exported
    as the [par.ingest.arena_bytes] gauge after every arena-backed run). *)

(** {2 Ingestion} *)

val ingest :
  Pool.t ->
  ?policy:'a policy ->
  ?chunk:int ->
  ?workers:int ->
  make:(unit -> 's) ->
  update:('s -> 'a array -> pos:int -> len:int -> unit) ->
  merge:('s -> 's -> unit) ->
  'a array ->
  's
(** [ingest pool ~make ~update ~merge items] ingests [items] on the pool and
    returns the merged result. [update s data ~pos ~len] must apply
    [data.(pos .. pos+len-1)] to [s]; [make] must produce {e compatible}
    replicas (structure derived from the same seed) and is called lazily on
    a worker's own domain the first time that worker wins a chunk, so it
    must be safe to call concurrently from several domains (reading shared
    seeds/prototypes without mutation is fine). [workers] overrides the
    replica/worker count, which defaults to
    [min (Pool.size pool) (Domain.recommended_domain_count ())] — never more
    replicas than can run concurrently, since each costs a clone and a
    merge. *)

val ingest_into :
  Pool.t ->
  ?policy:'a policy ->
  ?chunk:int ->
  ?workers:int ->
  ?arena:'s arena ->
  clone_zero:('s -> 's) ->
  update:('s -> 'a array -> pos:int -> len:int -> unit) ->
  add:('s -> 's -> unit) ->
  's ->
  'a array ->
  unit
(** Like {!ingest}, but the reduction lands in an existing sketch: worker
    slot 0 ingests directly into it (clone-free and merge-free when one
    worker ends up doing all the work), other workers' replicas are
    [clone_zero] copies merged in at the end — or recycled from [arena]
    when one is attached, cloning only on a slot's first use ever.
    [clone_zero] must return a physically fresh sketch. If [update]
    raises, the sketch may be left with a partially applied stream (the
    exception still propagates). *)

val linear :
  Pool.t ->
  ?policy:(int * int) policy ->
  ?chunk:int ->
  ?workers:int ->
  ?arena:'s arena ->
  's Ds_sketch.Linear_sketch.impl ->
  's ->
  (int * int) array ->
  unit
(** [linear pool impl sketch pairs] shard-ingests an [(index, delta)] array
    into {e any} sketch implementing {!Ds_sketch.Linear_sketch.S} — the one
    generic entry point; bit-identical to applying [pairs] sequentially. *)

(** {2 Sketch-specific wrappers}

    [agm] and [connectivity] route every chunk through the locality-sorted
    [update_slice] batched kernels — the same fast path, key-power tables
    included, as single-thread ingestion; the rest chunk through their
    [update_slice] without any per-shard copy. *)

val agm :
  Pool.t ->
  ?policy:Ds_stream.Update.t policy ->
  ?chunk:int ->
  ?workers:int ->
  ?arena:Ds_agm.Agm_sketch.t arena ->
  Ds_agm.Agm_sketch.t ->
  Ds_stream.Update.t array ->
  unit

val connectivity :
  Pool.t ->
  ?policy:Ds_stream.Update.t policy ->
  ?chunk:int ->
  ?workers:int ->
  ?arena:Ds_agm.Connectivity.t arena ->
  Ds_agm.Connectivity.t ->
  Ds_stream.Update.t array ->
  unit

val l0_sampler :
  Pool.t ->
  ?policy:(int * int) policy ->
  ?chunk:int ->
  ?workers:int ->
  ?arena:Ds_sketch.L0_sampler.t arena ->
  Ds_sketch.L0_sampler.t ->
  (int * int) array ->
  unit

val sparse_recovery :
  Pool.t ->
  ?policy:(int * int) policy ->
  ?chunk:int ->
  ?workers:int ->
  ?arena:Ds_sketch.Sparse_recovery.t arena ->
  Ds_sketch.Sparse_recovery.t ->
  (int * int) array ->
  unit
