(* Chase–Lev work-stealing deque, specialised to the ingestion engine's
   needs: the deque is filled once (with chunk ids) before any worker
   runs, then only consumed — the owner pops from the bottom, thieves
   steal from the top.  No push ever happens concurrently with take or
   steal, so the buffer is immutable during the racy phase and the
   classic growth/ABA hazards of the full algorithm vanish; what remains
   is the take/steal race on the last element, resolved by CAS on [top].

   OCaml [Atomic] operations are seq_cst, which supplies the fences the
   original algorithm places explicitly.  [top] and [bottom] are padded
   cells: an array of deques would otherwise put several owners' hot
   indices on one cache line and serialize exactly the traffic the deque
   exists to avoid. *)

type t = {
  top : int Atomic.t; (* next index thieves steal from (grows) *)
  bottom : int Atomic.t; (* one past the owner's end (shrinks) *)
  buf : int array; (* fixed contents, written before workers start *)
}

let of_array values =
  {
    top = Ds_util.Padding.atomic 0;
    bottom = Ds_util.Padding.atomic (Array.length values);
    buf = Array.copy values;
  }

let length d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

(* Owner end.  The bottom decrement must be visible to thieves before we
   read [top] (seq_cst set/get give exactly that), otherwise a thief
   could steal the element we are about to return. *)
let take d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty; restore the canonical empty state bottom = top. *)
    Atomic.set d.bottom t;
    None
  end
  else if b = t then begin
    (* Last element: race thieves for it via [top]. *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some d.buf.(b) else None
  end
  else Some d.buf.(b)

(* Thief end.  A CAS failure means another thief advanced [top]; retry
   against the new state until the deque is observably empty. *)
let steal d =
  let rec loop () =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else
      let x = d.buf.(t) in
      if Atomic.compare_and_set d.top t (t + 1) then Some x else loop ()
  in
  loop ()
