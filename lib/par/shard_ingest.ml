open Ds_stream

type 'a policy =
  | Chunked
  | Round_robin
  | By_key of ('a -> int)

let by_vertex : Update.t policy = By_key (fun u -> min u.Update.u u.Update.v)

(* Telemetry is batch-granular: one counter bump per [ingest] call and
   one histogram sample per shard, never per update, so the enabled
   overhead on the hot AGM path stays well under the 3% budget. *)
let m_updates = Ds_obs.Metrics.counter "par.ingest.updates"
let m_batches = Ds_obs.Metrics.counter "par.ingest.batches"
let m_batch_size = Ds_obs.Metrics.histogram "par.ingest.batch_size"

let split policy ~shards items =
  if shards < 1 then invalid_arg "Shard_ingest.split: need at least one shard";
  let n = Array.length items in
  match policy with
  | Chunked ->
      (* Contiguous slices, sizes differing by at most one. *)
      Array.init shards (fun s ->
          let lo = s * n / shards and hi = (s + 1) * n / shards in
          Array.sub items lo (hi - lo))
  | Round_robin ->
      Array.init shards (fun s ->
          let len = ((n - s) + shards - 1) / shards in
          Array.init len (fun i -> items.(s + (i * shards))))
  | By_key key ->
      let counts = Array.make shards 0 in
      let route = Array.map (fun it -> (key it land max_int) mod shards) items in
      Array.iter (fun s -> counts.(s) <- counts.(s) + 1) route;
      let parts = Array.map (fun c -> Array.make c items.(0)) counts in
      let fill = Array.make shards 0 in
      Array.iteri
        (fun i it ->
          let s = route.(i) in
          parts.(s).(fill.(s)) <- it;
          fill.(s) <- fill.(s) + 1)
        items;
      parts

let ingest pool ?(policy = Chunked) ~make ~update ~merge items =
  let shards = max 1 (min (Pool.size pool) (Array.length items)) in
  (* Replicas are constructed in the calling domain: [make] typically copies
     a shared seed, and keeping that serial means callers need no locking. *)
  let replicas = Array.init shards (fun _ -> make ()) in
  if Array.length items > 0 then begin
    let parts = split policy ~shards items in
    if Ds_obs.Metrics.enabled () then begin
      Ds_obs.Metrics.incr m_updates (Array.length items);
      Ds_obs.Metrics.incr m_batches shards;
      Array.iter
        (fun p -> Ds_obs.Metrics.observe m_batch_size (Array.length p))
        parts
    end;
    (* [Pool.submit] captures the "par.ingest" context, so each shard's
       span links under it even though it runs on a worker domain. *)
    Ds_obs.Trace.with_span "par.ingest" (fun () ->
        ignore
          (Pool.run pool
             (List.init shards (fun s () ->
                  Ds_obs.Trace.with_span "par.shard" (fun () ->
                      update replicas.(s) parts.(s))))))
  end;
  for s = 1 to shards - 1 do
    merge replicas.(0) replicas.(s)
  done;
  replicas.(0)

let ingest_into pool ?policy ~clone_zero ~update ~add sketch items =
  let shard =
    ingest pool ?policy ~make:(fun () -> clone_zero sketch) ~update ~merge:add items
  in
  add sketch shard

(* One entry point for anything implementing the linear-sketch interface:
   clone replicas, apply (index, delta) shards, reduce by linearity. *)
let linear (type s) pool ?policy ((module L) : s Ds_sketch.Linear_sketch.impl)
    (sketch : s) (pairs : (int * int) array) =
  ingest_into pool ?policy ~clone_zero:L.clone_zero
    ~update:(fun s -> Array.iter (fun (index, delta) -> L.update s ~index ~delta))
    ~add:L.add sketch pairs

(* The edge-stream wrappers keep their [update_batch] path: it regroups large
   batches by lower endpoint for cache locality, which the generic
   (index, delta) route cannot know to do. *)
let agm pool ?policy sketch updates =
  ingest_into pool ?policy ~clone_zero:Ds_agm.Agm_sketch.clone_zero
    ~update:Ds_agm.Agm_sketch.update_batch ~add:Ds_agm.Agm_sketch.add sketch updates

let connectivity pool ?policy conn updates =
  ingest_into pool ?policy ~clone_zero:Ds_agm.Connectivity.clone_zero
    ~update:Ds_agm.Connectivity.update_batch ~add:Ds_agm.Connectivity.absorb conn
    updates

let l0_sampler pool ?policy sampler pairs =
  linear pool ?policy (module Ds_sketch.L0_sampler.Linear) sampler pairs

let sparse_recovery pool ?policy sketch pairs =
  linear pool ?policy (module Ds_sketch.Sparse_recovery.Linear) sketch pairs
