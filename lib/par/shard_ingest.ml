open Ds_stream

type 'a policy =
  | Chunked
  | Round_robin
  | By_key of ('a -> int)

let by_vertex : Update.t policy = By_key (fun u -> min u.Update.u u.Update.v)

(* Telemetry is batch-granular: counters are bumped once per [ingest]
   call from per-worker local tallies (never per update, never per
   chunk from inside the hot loop), so the enabled overhead on the AGM
   path stays well under the 3% budget. *)
let m_updates = Ds_obs.Metrics.counter "par.ingest.updates"
let m_batches = Ds_obs.Metrics.counter "par.ingest.batches"
let m_steals = Ds_obs.Metrics.counter "par.ingest.steals"
let m_batch_size = Ds_obs.Metrics.histogram "par.ingest.batch_size"
let m_arena_bytes = Ds_obs.Metrics.gauge "par.ingest.arena_bytes"

(* ------------------------------------------------------------------ *)
(* Replica arenas                                                      *)
(* ------------------------------------------------------------------ *)

(* Worker replicas cost one off-heap buffer each; an arena keeps them
   alive across runs so repeated ingests into the same sketch structure
   stop allocating. A recycled replica is handed back to its worker
   after a [reset] (one buffer fill back to the zero vector — cheaper
   than the blit a fresh clone would need, and equivalent: the zero
   sketch of any linear family is the all-zero buffer). Slot 0 never
   draws from the arena: it ingests directly into the caller's sketch. *)
type 's arena = {
  reset : 's -> unit;
  bytes_of : 's -> int;
  mutable slots : 's option array; (* indexed by worker slot; grown on demand *)
  mutable bytes : int;
}

let arena ?(bytes_of = fun _ -> 0) ~reset () = { reset; bytes_of; slots = [||]; bytes = 0 }

let arena_of (type s) ((module L) : s Ds_sketch.Linear_sketch.impl) =
  arena ~reset:L.reset ~bytes_of:(fun s -> 8 * L.space_in_words s) ()

let arena_bytes a = a.bytes

(* Called before the parallel region: growing [slots] must not race the
   workers' disjoint per-slot reads and writes. *)
let arena_reserve a workers =
  let len = Array.length a.slots in
  if len < workers then begin
    let slots = Array.make workers None in
    Array.blit a.slots 0 slots 0 len;
    a.slots <- slots
  end

(* Called after the parallel region (workers stash replicas into
   disjoint slots during it; accounting would race there). *)
let arena_refresh a =
  a.bytes <-
    Array.fold_left
      (fun acc -> function Some r -> acc + a.bytes_of r | None -> acc)
      0 a.slots;
  if Ds_obs.Metrics.enabled () then Ds_obs.Metrics.set m_arena_bytes a.bytes

(* Materialized partition, kept for tests and custom drivers (the engine
   itself never copies per shard any more — see [plan]). *)
let split policy ~shards items =
  if shards < 1 then invalid_arg "Shard_ingest.split: need at least one shard";
  let n = Array.length items in
  match policy with
  | Chunked ->
      (* Contiguous slices, sizes differing by at most one. *)
      Array.init shards (fun s ->
          let lo = s * n / shards and hi = (s + 1) * n / shards in
          Array.sub items lo (hi - lo))
  | Round_robin ->
      Array.init shards (fun s ->
          let len = ((n - s) + shards - 1) / shards in
          Array.init len (fun i -> items.(s + (i * shards))))
  | By_key key ->
      let counts = Array.make shards 0 in
      let route = Array.map (fun it -> (key it land max_int) mod shards) items in
      Array.iter (fun s -> counts.(s) <- counts.(s) + 1) route;
      let parts = Array.map (fun c -> Array.make c items.(0)) counts in
      let fill = Array.make shards 0 in
      Array.iteri
        (fun i it ->
          let s = route.(i) in
          parts.(s).(fill.(s)) <- it;
          fill.(s) <- fill.(s) + 1)
        items;
      parts

(* ------------------------------------------------------------------ *)
(* Chunk plans: the zero-copy replacement for [split]                  *)
(* ------------------------------------------------------------------ *)

type 'a plan = {
  data : 'a array;
  chunk_lo : int array;
  chunk_len : int array;
  deal : int array array;
}

(* Chunks are sized to feed the batched kernels: big enough that
   [update_slice]'s locality regrouping amortizes (AGM regroups from 64
   elements), small enough that a worker's deal is several chunks and
   thieves have something to steal. *)
let default_chunk ~workers n = max 1 (min n (max 512 (n / (workers * 8))))

(* Chunk ids covering [lo, hi) in [chunk]-sized ranges, appended to the
   accumulators in order. *)
let push_ranges ~chunk ~lo ~hi los lens =
  let pos = ref lo in
  while !pos < hi do
    let len = min chunk (hi - !pos) in
    los := !pos :: !los;
    lens := len :: !lens;
    pos := !pos + len
  done

let rec plan ?chunk policy ~workers items =
  if workers < 1 then invalid_arg "Shard_ingest.plan: need at least one worker";
  let n = Array.length items in
  let chunk =
    match chunk with
    | Some c when c < 1 -> invalid_arg "Shard_ingest.plan: chunk must be positive"
    | Some c -> c
    | None -> default_chunk ~workers n
  in
  match policy with
  | Chunked | Round_robin ->
      let nchunks = (n + chunk - 1) / chunk in
      let chunk_lo = Array.init nchunks (fun i -> i * chunk) in
      let chunk_len = Array.init nchunks (fun i -> min chunk (n - (i * chunk))) in
      let deal =
        match policy with
        | Chunked ->
            (* Contiguous runs of chunks per worker: each worker starts on
               a cache-local span of the stream. *)
            Array.init workers (fun w ->
                let lo = w * nchunks / workers and hi = (w + 1) * nchunks / workers in
                Array.init (hi - lo) (fun i -> lo + i))
        | _ ->
            (* Round_robin deals *chunks* round-robin: each worker gets an
               interleaved sample of the stream. By linearity this yields
               the same final sketch as the classic element-stride deal,
               without the strided copy. *)
            Array.init workers (fun w ->
                let len = ((nchunks - w) + workers - 1) / workers in
                Array.init len (fun i -> w + (i * workers)))
      in
      { data = items; chunk_lo; chunk_len; deal }
  | By_key _ when workers = 1 ->
      (* One shard: routing is the identity partition, skip the permute. *)
      plan ~chunk Chunked ~workers items
  | By_key key ->
      (* One counting-sort pass groups same-key items into contiguous
         segments of a single permuted copy — the only copy the engine
         ever makes, shared by all shards (the old [split] allocated the
         same total as fresh per-shard arrays, plus per-shard headers). *)
      let counts = Array.make workers 0 in
      let route = Array.map (fun it -> (key it land max_int) mod workers) items in
      Array.iter (fun s -> counts.(s) <- counts.(s) + 1) route;
      let seg_lo = Array.make (workers + 1) 0 in
      for s = 0 to workers - 1 do
        seg_lo.(s + 1) <- seg_lo.(s) + counts.(s)
      done;
      let data = Array.make n items.(0) in
      let fill = Array.copy seg_lo in
      Array.iteri
        (fun i it ->
          let s = route.(i) in
          data.(fill.(s)) <- it;
          fill.(s) <- fill.(s) + 1)
        items;
      let los = ref [] and lens = ref [] in
      let deal =
        Array.init workers (fun s ->
            let first = List.length !los in
            push_ranges ~chunk ~lo:seg_lo.(s) ~hi:seg_lo.(s + 1) los lens;
            let count = List.length !los - first in
            Array.init count (fun i -> first + i))
      in
      let chunk_lo = Array.of_list (List.rev !los) in
      let chunk_len = Array.of_list (List.rev !lens) in
      { data; chunk_lo; chunk_len; deal }

(* ------------------------------------------------------------------ *)
(* The work-stealing engine                                            *)
(* ------------------------------------------------------------------ *)

let resolve_workers pool workers =
  match workers with
  | Some w when w < 1 -> invalid_arg "Shard_ingest: need at least one worker"
  | Some w -> w
  | None ->
      (* Replicas cost a clone and a merge each, so never keep more than
         can actually run concurrently: the pool may deliberately be
         larger than the machine (tests, oversubscription experiments),
         but extra replicas on a saturated host are pure overhead. *)
      max 1 (min (Pool.size pool) (Domain.recommended_domain_count ()))

(* Log-depth reduction of the live replicas; each round's merges run
   concurrently on the pool, so the reduction costs O(log W) rounds of
   wall-clock instead of W serial full-sketch adds.  Any merge order
   gives bit-identical results: counters are integers and addition is
   commutative and associative. *)
let tree_merge pool merge live =
  let len = Array.length live in
  let stride = ref 1 in
  while !stride < len do
    let s = !stride in
    let pairs = ref [] in
    let i = ref 0 in
    while !i + s < len do
      pairs := (!i, !i + s) :: !pairs;
      i := !i + (2 * s)
    done;
    (match !pairs with
    | [] -> ()
    | [ (a, b) ] -> merge live.(a) live.(b)
    | ps -> ignore (Pool.run pool (List.rev_map (fun (a, b) () -> merge live.(a) live.(b)) ps)));
    stride := 2 * s
  done

(* Run the parallel region over a plan.  [make_slot] is called lazily,
   on the worker's own domain, the first time that worker executes a
   chunk — workers that never win a chunk never pay for a replica.
   Returns the surviving replicas in slot order. *)
let run_plan pool ~workers ~make_slot ~update p =
  let deques = Array.map Ws_deque.of_array p.deal in
  let replicas = Array.make workers None in
  let steal_tally = Array.make workers 0 in
  let region slot =
    let replica = ref None in
    let stolen = ref 0 in
    let exec c =
      let r =
        match !replica with
        | Some r -> r
        | None ->
            let r = make_slot slot in
            replica := Some r;
            r
      in
      update r p.data ~pos:p.chunk_lo.(c) ~len:p.chunk_len.(c)
    in
    let rec drain () =
      match Ws_deque.take deques.(slot) with
      | Some c ->
          exec c;
          drain ()
      | None -> ()
    in
    drain ();
    (* Steal sweeps: one chunk per victim per pass, so a thief spreads
       its help across every stalled owner.  Nothing is ever pushed
       after the deal, so a pass that finds every deque empty is a
       certificate of global completion. *)
    if workers > 1 then begin
      let continue_ = ref true in
      while !continue_ do
        let found = ref false in
        for d = 1 to workers - 1 do
          match Ws_deque.steal deques.((slot + d) mod workers) with
          | Some c ->
              found := true;
              incr stolen;
              exec c
          | None -> ()
        done;
        if not !found then continue_ := false
      done
    end;
    replicas.(slot) <- !replica;
    steal_tally.(slot) <- !stolen
  in
  Ds_obs.Trace.with_span "par.ingest" (fun () ->
      ignore
        (Pool.run pool
           (List.init workers (fun slot () ->
                Ds_obs.Trace.with_span "par.worker" (fun () -> region slot)))));
  if Ds_obs.Metrics.enabled () then begin
    Ds_obs.Metrics.incr m_updates (Array.length p.data);
    Ds_obs.Metrics.incr m_batches (Array.length p.chunk_lo);
    Ds_obs.Metrics.incr m_steals (Array.fold_left ( + ) 0 steal_tally);
    Array.iter (fun len -> Ds_obs.Metrics.observe m_batch_size len) p.chunk_len
  end;
  Array.of_list (List.filter_map Fun.id (Array.to_list replicas))

let ingest pool ?(policy = Chunked) ?chunk ?workers ~make ~update ~merge items =
  let workers = resolve_workers pool workers in
  if Array.length items = 0 then make ()
  else begin
    let p = plan ?chunk policy ~workers items in
    let live = run_plan pool ~workers ~make_slot:(fun _ -> make ()) ~update p in
    if Array.length live = 0 then make ()
    else begin
      tree_merge pool merge live;
      live.(0)
    end
  end

let ingest_into pool ?(policy = Chunked) ?chunk ?workers ?arena ~clone_zero ~update ~add
    sketch items =
  let workers = resolve_workers pool workers in
  if Array.length items > 0 then begin
    let p = plan ?chunk policy ~workers items in
    (match arena with Some a -> arena_reserve a workers | None -> ());
    (* Worker slot 0 ingests straight into the caller's sketch — by
       linearity, adding its shard in place now or via a replica later
       is the same sum — which makes the single-worker path (and the
       common case of a lightly loaded pool) clone-free and merge-free.
       Other slots draw a recycled replica from the arena when one is
       attached, cloning only on a slot's first use ever. *)
    let make_slot slot =
      if slot = 0 then sketch
      else
        match arena with
        | None -> clone_zero sketch
        | Some a -> (
            match a.slots.(slot) with
            | Some r ->
                a.reset r;
                r
            | None ->
                let r = clone_zero sketch in
                a.slots.(slot) <- Some r;
                r)
    in
    let live = run_plan pool ~workers ~make_slot ~update p in
    (match arena with Some a -> arena_refresh a | None -> ());
    if Array.length live > 0 then begin
      tree_merge pool add live;
      if live.(0) != sketch then add sketch live.(0)
    end
  end

(* One entry point for anything implementing the linear-sketch interface:
   lazy replicas, (index, delta) chunk ranges, reduce by linearity. *)
let linear (type s) pool ?policy ?chunk ?workers ?arena
    ((module L) : s Ds_sketch.Linear_sketch.impl) (sketch : s)
    (pairs : (int * int) array) =
  ingest_into pool ?policy ?chunk ?workers ?arena ~clone_zero:L.clone_zero
    ~update:(fun s arr ~pos ~len ->
      for i = pos to pos + len - 1 do
        let index, delta = arr.(i) in
        L.update s ~index ~delta
      done)
    ~add:L.add sketch pairs

(* The edge-stream wrappers route chunks through the [update_slice]
   batched kernels: the parallel path regroups each chunk by lower
   endpoint exactly like the single-thread fast path, sharing the same
   key-power tables, with no per-shard array materialization. *)
let agm pool ?policy ?chunk ?workers ?arena sketch updates =
  ingest_into pool ?policy ?chunk ?workers ?arena ~clone_zero:Ds_agm.Agm_sketch.clone_zero
    ~update:(fun s arr ~pos ~len -> Ds_agm.Agm_sketch.update_slice s arr ~pos ~len)
    ~add:Ds_agm.Agm_sketch.add sketch updates

let agm_arena () =
  arena ~reset:Ds_agm.Agm_sketch.reset
    ~bytes_of:(fun s -> 8 * Ds_agm.Agm_sketch.space_in_words s)
    ()

let connectivity pool ?policy ?chunk ?workers ?arena:a conn updates =
  ingest_into pool ?policy ?chunk ?workers ?arena:a
    ~clone_zero:Ds_agm.Connectivity.clone_zero
    ~update:(fun s arr ~pos ~len -> Ds_agm.Connectivity.update_slice s arr ~pos ~len)
    ~add:Ds_agm.Connectivity.absorb conn updates

let l0_sampler pool ?policy ?chunk ?workers ?arena:a sampler pairs =
  ingest_into pool ?policy ?chunk ?workers ?arena:a
    ~clone_zero:Ds_sketch.L0_sampler.clone_zero
    ~update:(fun s arr ~pos ~len -> Ds_sketch.L0_sampler.update_slice s arr ~pos ~len)
    ~add:Ds_sketch.L0_sampler.add sampler pairs

let sparse_recovery pool ?policy ?chunk ?workers ?arena:a sketch pairs =
  ingest_into pool ?policy ?chunk ?workers ?arena:a
    ~clone_zero:Ds_sketch.Sparse_recovery.clone_zero
    ~update:(fun s arr ~pos ~len -> Ds_sketch.Sparse_recovery.update_slice s arr ~pos ~len)
    ~add:Ds_sketch.Sparse_recovery.add sketch pairs
