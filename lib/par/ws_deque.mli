(** A consume-only Chase–Lev work-stealing deque of [int] work ids.

    The ingestion engine deals every worker a deque of chunk ids up
    front; during the parallel region the owner drains its own deque
    with {!take} (LIFO) while idle workers {!steal} from the other end
    (FIFO), so a skewed partition rebalances instead of tail-stalling.
    Because nothing is pushed after construction, each id is returned
    {e exactly once} across all [take]/[steal] calls, and once a deque
    reports empty it stays empty.

    Indices are padded atomics ({!Ds_util.Padding}): arrays of deques do
    not false-share. *)

type t

val of_array : int array -> t
(** A deque holding the given ids. The array is copied; {!take} returns
    ids from the end, {!steal} from the front. *)

val take : t -> int option
(** Owner-only: pop from the bottom. Must be called by at most one
    domain (the owner); concurrent {!steal}s are fine. *)

val steal : t -> int option
(** Thief side: pop from the top. Safe from any number of domains
    concurrently, including concurrently with the owner's {!take}. *)

val length : t -> int
(** Snapshot of the current size (racy, for load introspection only). *)
