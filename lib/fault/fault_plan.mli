(** Deterministic fault injection for the distributed sketching pipeline.

    A {e fault plan} decides, for every message send attempt in a supervised
    cluster run, whether the attempt is faulted and how. Plans are pure
    functions of [(server, message, attempt)] coordinates driven by the
    library's SplitMix64 PRNG ({!Ds_util.Prng}), so every chaos run is
    replayable from one seed and — because draws are stateless per
    coordinate, not per call sequence — independent of the order in which
    the coordinator happens to process servers (sequential and
    domain-parallel supervised runs see the {e same} faults).

    The fault inventory mirrors what a real coordinator faces:
    - [Crash]: the sending server dies. Crashes are {e sticky} — the
      supervisor treats every later message from that server as failed until
      it recovers the shard some other way (re-ingestion by linearity).
    - [Drop]: the message is lost in transit; a retry can succeed.
    - [Corrupt n]: the message arrives with [n] random bit flips — the wire
      checksum must catch it.
    - [Truncate]: the message arrives cut short at a random point.
    - [Duplicate]: the message is delivered twice; the coordinator must
      deduplicate or it double-counts the shard.
    - [Delay d]: the message arrives [d] backoff units late (accounted as
      simulated waiting, then processed normally). *)

type fault =
  | Crash
  | Drop
  | Corrupt of int  (** number of bit flips, >= 1 *)
  | Truncate
  | Duplicate
  | Delay of int  (** backoff units, >= 1 *)

type t

val none : t
(** The empty plan: every draw is [None] (fault-free). *)

val random : seed:int -> rate:float -> t
(** Each [(server, message, attempt)] coordinate is faulted independently
    with probability [rate]; the fault kind and its parameters are drawn
    from a per-coordinate SplitMix64 stream derived from [seed]. Two plans
    built from equal seeds and rates are extensionally equal. *)

val of_list : ?seed:int -> ((int * int * int) * fault) list -> t
(** An explicit plan: the fault at coordinate [(server, message, attempt)]
    (attempts count from 0), [None] elsewhere. [seed] (default 0) drives the
    channel randomness (corruption positions, truncation points). *)

val draw : t -> server:int -> message:int -> attempt:int -> fault option
(** The plan's verdict for one send attempt. Pure: equal coordinates always
    return equal verdicts. *)

val channel_rng : t -> server:int -> message:int -> attempt:int -> Ds_util.Prng.t
(** The per-coordinate randomness used to apply a fault to concrete bytes
    (flip positions, truncation point). Derived from the plan seed, so a
    replayed run corrupts the same bits. *)

val fault_name : fault -> string
(** Stable lowercase kind name ("crash", "drop", "corrupt", "truncate",
    "duplicate", "delay") — the keys of supervised-report breakdowns. *)

val kind_names : string list
(** Every kind name, in the fixed report order. *)

val pp_fault : Format.formatter -> fault -> unit

(** What the channel delivers for one send attempt. *)
type delivery =
  | Delivered of string  (** bytes arrived (possibly corrupted or cut) *)
  | Duplicated of string  (** the same bytes arrived twice *)
  | Delayed of int * string  (** arrived [units] backoff units late *)
  | Lost  (** dropped in transit; the sender is still alive *)
  | Crashed  (** the sender died mid-send; nothing arrived *)

val apply : Ds_util.Prng.t -> fault option -> string -> delivery
(** Push one message through the faulted channel. [None] delivers the bytes
    untouched. [Corrupt] and [Truncate] guarantee the delivered bytes differ
    from the sent bytes (a flip is a real change; a truncation is a strict
    prefix), so "delivered unchanged" and "damaged" are mutually exclusive
    outcomes. *)

val corrupt : Ds_util.Prng.t -> flips:int -> string -> string
(** [flips] random single-bit flips (re-drawn if they would cancel out);
    exposed for the fuzz suite. Returns the message unchanged only when it
    is empty. *)
