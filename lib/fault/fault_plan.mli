(** Deterministic fault injection for the distributed sketching pipeline.

    A {e fault plan} decides, for every message send attempt in a supervised
    cluster run, whether the attempt is faulted and how. Plans are pure
    functions of [(server, message, attempt)] coordinates driven by the
    library's SplitMix64 PRNG ({!Ds_util.Prng}), so every chaos run is
    replayable from one seed and — because draws are stateless per
    coordinate, not per call sequence — independent of the order in which
    the coordinator happens to process servers (sequential and
    domain-parallel supervised runs see the {e same} faults).

    The fault inventory mirrors what a real coordinator faces:
    - [Crash]: the sending server dies. Crashes are {e sticky} — the
      supervisor treats every later message from that server as failed until
      it recovers the shard some other way (re-ingestion by linearity).
    - [Drop]: the message is lost in transit; a retry can succeed.
    - [Corrupt n]: the message arrives with [n] random bit flips — the wire
      checksum must catch it.
    - [Truncate]: the message arrives cut short at a random point.
    - [Duplicate]: the message is delivered twice; the coordinator must
      deduplicate or it double-counts the shard.
    - [Delay d]: the message arrives [d] backoff units late (accounted as
      simulated waiting, then processed normally). *)

type fault =
  | Crash
  | Drop
  | Corrupt of int  (** number of bit flips, >= 1 *)
  | Truncate
  | Duplicate
  | Delay of int  (** backoff units, >= 1 *)

type t

val none : t
(** The empty plan: every draw is [None] (fault-free). *)

val random : seed:int -> rate:float -> t
(** Each [(server, message, attempt)] coordinate is faulted independently
    with probability [rate]; the fault kind and its parameters are drawn
    from a per-coordinate SplitMix64 stream derived from [seed]. Two plans
    built from equal seeds and rates are extensionally equal. *)

val of_list : ?seed:int -> ((int * int * int) * fault) list -> t
(** An explicit plan: the fault at coordinate [(server, message, attempt)]
    (attempts count from 0), [None] elsewhere. [seed] (default 0) drives the
    channel randomness (corruption positions, truncation points). *)

val draw : t -> server:int -> message:int -> attempt:int -> fault option
(** The plan's verdict for one send attempt. Pure: equal coordinates always
    return equal verdicts. *)

val channel_rng : t -> server:int -> message:int -> attempt:int -> Ds_util.Prng.t
(** The per-coordinate randomness used to apply a fault to concrete bytes
    (flip positions, truncation point). Derived from the plan seed, so a
    replayed run corrupts the same bits. *)

val fault_name : fault -> string
(** Stable lowercase kind name ("crash", "drop", "corrupt", "truncate",
    "duplicate", "delay") — the keys of supervised-report breakdowns. *)

val kind_names : string list
(** Every kind name, in the fixed report order. *)

val pp_fault : Format.formatter -> fault -> unit

(** What the channel delivers for one send attempt. *)
type delivery =
  | Delivered of string  (** bytes arrived (possibly corrupted or cut) *)
  | Duplicated of string  (** the same bytes arrived twice *)
  | Delayed of int * string  (** arrived [units] backoff units late *)
  | Lost  (** dropped in transit; the sender is still alive *)
  | Crashed  (** the sender died mid-send; nothing arrived *)

val apply : Ds_util.Prng.t -> fault option -> string -> delivery
(** Push one message through the faulted channel. [None] delivers the bytes
    untouched. [Corrupt] and [Truncate] guarantee the delivered bytes differ
    from the sent bytes (a flip is a real change; a truncation is a strict
    prefix), so "delivered unchanged" and "damaged" are mutually exclusive
    outcomes. *)

val corrupt : Ds_util.Prng.t -> flips:int -> string -> string
(** [flips] random single-bit flips (re-drawn if they would cancel out);
    exposed for the fuzz suite. Returns the message unchanged only when it
    is empty. *)

(** {1 Connection-level faults (the serving layer's transport boundary)}

    Frames crossing a socket fail in ways a message channel cannot:
    - [Conn_stall]: a strict prefix of the frame arrives, then the sender
      goes quiet — the receiver holds an incomplete frame until it times
      the connection out.
    - [Conn_disconnect]: a strict prefix arrives and the connection drops;
      the receiver must discard the partial frame, the sender reconnects
      and retries.
    - [Conn_reorder_dup]: the frame is delivered, and delivered {e again}
      after later traffic — the receiver's sequence watermark must make the
      replay idempotent.

    Connection faults draw from their own salted per-[(server, message,
    attempt)] streams, so adding them changed no existing [draw] verdict:
    chaos reports from earlier seeds replay byte-identically. *)

type conn_fault =
  | Conn_stall
  | Conn_disconnect
  | Conn_reorder_dup

val draw_conn : t -> server:int -> message:int -> attempt:int -> conn_fault option
(** The plan's connection-level verdict for one frame send attempt. Pure
    and stateless per coordinate, like {!draw}, and independent of it (its
    own salt), sharing the plan's [rate]. *)

val conn_rng : t -> server:int -> message:int -> attempt:int -> Ds_util.Prng.t
(** Per-coordinate randomness used to apply a connection fault to concrete
    frame bytes (the prefix cut point). *)

val conn_fault_name : conn_fault -> string
(** Stable lowercase kind name ("stall", "disconnect", "reorder_dup"). *)

val conn_kind_names : string list
val pp_conn_fault : Format.formatter -> conn_fault -> unit

(** What the transport does with one framed send attempt. *)
type conn_delivery =
  | Conn_delivered of string  (** the whole frame arrived *)
  | Conn_prefix_stall of string
      (** a strict prefix arrived; the connection is alive but silent *)
  | Conn_prefix_close of string
      (** a strict prefix arrived; the connection then closed *)
  | Conn_reordered_dup of string
      (** the frame arrived and will arrive again after the next frame *)

val apply_conn : Ds_util.Prng.t -> conn_fault option -> string -> conn_delivery
(** Push one frame through the faulted transport. [None] delivers the frame
    untouched. Stall/disconnect prefixes are {e strict} prefixes (possibly
    empty), so the receiver is always left with an incomplete frame. *)
