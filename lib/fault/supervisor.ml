type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
}

let default = { max_attempts = 5; base_delay = 1.0; multiplier = 2.0; max_delay = 8.0 }

let delay_before p ~attempt =
  if attempt <= 0 then 0.0
  else min p.max_delay (p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)))

type stats = { attempts : int; backoff : float }

(* Simulated-time backoff is a float of abstract units; the counter
   carries milli-units so it stays an integer metric. *)
let m_retries = Ds_obs.Metrics.counter "fault.retries"
let m_backoff_milli = Ds_obs.Metrics.counter "fault.backoff_milli"
let m_gave_up = Ds_obs.Metrics.counter "fault.gave_up"

let retry p f =
  if p.max_attempts < 1 then invalid_arg "Supervisor.retry: max_attempts must be >= 1";
  let rec go attempt backoff =
    let backoff = backoff +. delay_before p ~attempt in
    (* Each attempt is a child span, so retries show up individually on
       the trace's critical path. *)
    match Ds_obs.Trace.with_span "fault.attempt" (fun () -> f ~attempt) with
    | Ok _ as ok -> (ok, { attempts = attempt + 1; backoff })
    | Error _ as err ->
        if attempt + 1 >= p.max_attempts then (err, { attempts = attempt + 1; backoff })
        else go (attempt + 1) backoff
  in
  let ((result, stats) as r) = go 0 0.0 in
  if Ds_obs.Metrics.enabled () then begin
    Ds_obs.Metrics.incr m_retries (stats.attempts - 1);
    Ds_obs.Metrics.incr m_backoff_milli
      (int_of_float ((stats.backoff *. 1000.) +. 0.5));
    match result with
    | Error _ -> Ds_obs.Metrics.incr m_gave_up 1
    | Ok _ -> ()
  end;
  r
