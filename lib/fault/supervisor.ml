type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
}

let default = { max_attempts = 5; base_delay = 1.0; multiplier = 2.0; max_delay = 8.0 }

let delay_before p ~attempt =
  if attempt <= 0 then 0.0
  else min p.max_delay (p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)))

type stats = { attempts : int; backoff : float }

let retry p f =
  if p.max_attempts < 1 then invalid_arg "Supervisor.retry: max_attempts must be >= 1";
  let rec go attempt backoff =
    let backoff = backoff +. delay_before p ~attempt in
    match f ~attempt with
    | Ok _ as ok -> (ok, { attempts = attempt + 1; backoff })
    | Error _ as err ->
        if attempt + 1 >= p.max_attempts then (err, { attempts = attempt + 1; backoff })
        else go (attempt + 1) backoff
  in
  go 0 0.0
