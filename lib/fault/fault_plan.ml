open Ds_util

type fault =
  | Crash
  | Drop
  | Corrupt of int
  | Truncate
  | Duplicate
  | Delay of int

type t = {
  seed : int;
  rate : float; (* 0.0 for explicit plans *)
  overrides : (int * int * int, fault) Hashtbl.t;
}

let none = { seed = 0; rate = 0.0; overrides = Hashtbl.create 1 }
let random ~seed ~rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault_plan.random: rate must be in [0, 1]";
  { seed; rate; overrides = Hashtbl.create 1 }

let of_list ?(seed = 0) entries =
  let overrides = Hashtbl.create (List.length entries) in
  List.iter (fun (coord, fault) -> Hashtbl.replace overrides coord fault) entries;
  { seed; rate = 0.0; overrides }

(* Stateless per-coordinate stream: the draw at (server, message, attempt)
   never depends on how many draws happened before it, which is what makes
   sequential and domain-parallel supervised runs see identical faults. *)
let coord_rng t ~server ~message ~attempt ~salt =
  Prng.split_named (Prng.create t.seed)
    (Printf.sprintf "%s.s%d.m%d.a%d" salt server message attempt)

let channel_rng t ~server ~message ~attempt =
  coord_rng t ~server ~message ~attempt ~salt:"channel"

(* Kind weights: transient channel faults (drop/corrupt) dominate, crashes
   are rarer — the usual shape of real incident distributions. *)
let pick_fault rng =
  match Prng.int rng 8 with
  | 0 -> Crash
  | 1 | 2 -> Drop
  | 3 | 4 -> Corrupt (1 + Prng.int rng 4)
  | 5 -> Truncate
  | 6 -> Duplicate
  | _ -> Delay (1 + Prng.int rng 3)

let draw t ~server ~message ~attempt =
  match Hashtbl.find_opt t.overrides (server, message, attempt) with
  | Some f -> Some f
  | None ->
      if t.rate = 0.0 then None
      else
        let rng = coord_rng t ~server ~message ~attempt ~salt:"draw" in
        if Prng.bernoulli rng t.rate then Some (pick_fault rng) else None

let fault_name = function
  | Crash -> "crash"
  | Drop -> "drop"
  | Corrupt _ -> "corrupt"
  | Truncate -> "truncate"
  | Duplicate -> "duplicate"
  | Delay _ -> "delay"

let kind_names = [ "crash"; "drop"; "corrupt"; "truncate"; "duplicate"; "delay" ]

let pp_fault ppf = function
  | Crash -> Format.fprintf ppf "crash"
  | Drop -> Format.fprintf ppf "drop"
  | Corrupt n -> Format.fprintf ppf "corrupt(%d flips)" n
  | Truncate -> Format.fprintf ppf "truncate"
  | Duplicate -> Format.fprintf ppf "duplicate"
  | Delay d -> Format.fprintf ppf "delay(%d)" d

type delivery =
  | Delivered of string
  | Duplicated of string
  | Delayed of int * string
  | Lost
  | Crashed

let corrupt rng ~flips msg =
  let len = String.length msg in
  if len = 0 then msg
  else begin
    let b = Bytes.of_string msg in
    for _ = 1 to max 1 flips do
      let pos = Prng.int rng len in
      let bit = Prng.int rng 8 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)))
    done;
    (* An even number of flips can land on the same bit and cancel; a
       faulted channel must actually damage the bytes. *)
    if Bytes.to_string b = msg then begin
      let pos = Prng.int rng len in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1))
    end;
    Bytes.to_string b
  end

let apply rng fault msg =
  match fault with
  | None -> Delivered msg
  | Some Crash -> Crashed
  | Some Drop -> Lost
  | Some (Corrupt flips) -> Delivered (corrupt rng ~flips msg)
  | Some Truncate ->
      (* A strict prefix, possibly empty. *)
      let len = String.length msg in
      if len = 0 then Delivered msg else Delivered (String.sub msg 0 (Prng.int rng len))
  | Some Duplicate -> Duplicated msg
  | Some (Delay d) -> Delayed (max 1 d, msg)
