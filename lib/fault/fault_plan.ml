open Ds_util

type fault =
  | Crash
  | Drop
  | Corrupt of int
  | Truncate
  | Duplicate
  | Delay of int

type t = {
  seed : int;
  rate : float; (* 0.0 for explicit plans *)
  overrides : (int * int * int, fault) Hashtbl.t;
}

let none = { seed = 0; rate = 0.0; overrides = Hashtbl.create 1 }
let random ~seed ~rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault_plan.random: rate must be in [0, 1]";
  { seed; rate; overrides = Hashtbl.create 1 }

let of_list ?(seed = 0) entries =
  let overrides = Hashtbl.create (List.length entries) in
  List.iter (fun (coord, fault) -> Hashtbl.replace overrides coord fault) entries;
  { seed; rate = 0.0; overrides }

(* Stateless per-coordinate stream: the draw at (server, message, attempt)
   never depends on how many draws happened before it, which is what makes
   sequential and domain-parallel supervised runs see identical faults. *)
let coord_rng t ~server ~message ~attempt ~salt =
  Prng.split_named (Prng.create t.seed)
    (Printf.sprintf "%s.s%d.m%d.a%d" salt server message attempt)

let channel_rng t ~server ~message ~attempt =
  coord_rng t ~server ~message ~attempt ~salt:"channel"

(* Kind weights: transient channel faults (drop/corrupt) dominate, crashes
   are rarer — the usual shape of real incident distributions. *)
let pick_fault rng =
  match Prng.int rng 8 with
  | 0 -> Crash
  | 1 | 2 -> Drop
  | 3 | 4 -> Corrupt (1 + Prng.int rng 4)
  | 5 -> Truncate
  | 6 -> Duplicate
  | _ -> Delay (1 + Prng.int rng 3)

let draw t ~server ~message ~attempt =
  match Hashtbl.find_opt t.overrides (server, message, attempt) with
  | Some f -> Some f
  | None ->
      if t.rate = 0.0 then None
      else
        let rng = coord_rng t ~server ~message ~attempt ~salt:"draw" in
        if Prng.bernoulli rng t.rate then Some (pick_fault rng) else None

let fault_name = function
  | Crash -> "crash"
  | Drop -> "drop"
  | Corrupt _ -> "corrupt"
  | Truncate -> "truncate"
  | Duplicate -> "duplicate"
  | Delay _ -> "delay"

let kind_names = [ "crash"; "drop"; "corrupt"; "truncate"; "duplicate"; "delay" ]

let pp_fault ppf = function
  | Crash -> Format.fprintf ppf "crash"
  | Drop -> Format.fprintf ppf "drop"
  | Corrupt n -> Format.fprintf ppf "corrupt(%d flips)" n
  | Truncate -> Format.fprintf ppf "truncate"
  | Duplicate -> Format.fprintf ppf "duplicate"
  | Delay d -> Format.fprintf ppf "delay(%d)" d

(* Connection-level faults live in their own type (and their own salted
   draw stream, below): the serving layer's transport boundary fails in
   ways a message channel cannot — a peer can go quiet mid-frame, hang
   up mid-frame, or replay a frame after later traffic. Keeping them out
   of [fault] preserves every existing chaos report byte-for-byte. *)
type conn_fault =
  | Conn_stall
  | Conn_disconnect
  | Conn_reorder_dup

let conn_rng t ~server ~message ~attempt =
  coord_rng t ~server ~message ~attempt ~salt:"conn"

let pick_conn_fault rng =
  match Prng.int rng 4 with
  | 0 -> Conn_stall
  | 1 -> Conn_disconnect
  | _ -> Conn_reorder_dup

let draw_conn t ~server ~message ~attempt =
  if t.rate = 0.0 then None
  else
    let rng = coord_rng t ~server ~message ~attempt ~salt:"conn_draw" in
    if Prng.bernoulli rng t.rate then Some (pick_conn_fault rng) else None

let conn_fault_name = function
  | Conn_stall -> "stall"
  | Conn_disconnect -> "disconnect"
  | Conn_reorder_dup -> "reorder_dup"

let conn_kind_names = [ "stall"; "disconnect"; "reorder_dup" ]

let pp_conn_fault ppf f = Format.pp_print_string ppf (conn_fault_name f)

type conn_delivery =
  | Conn_delivered of string
  | Conn_prefix_stall of string
  | Conn_prefix_close of string
  | Conn_reordered_dup of string

(* A damaged frame must actually be cut short: the prefix is a strict
   prefix (possibly empty), so the receiver is guaranteed to be left
   holding an incomplete frame. *)
let strict_prefix rng msg =
  let len = String.length msg in
  if len = 0 then "" else String.sub msg 0 (Prng.int rng len)

let apply_conn rng fault msg =
  match fault with
  | None -> Conn_delivered msg
  | Some Conn_stall -> Conn_prefix_stall (strict_prefix rng msg)
  | Some Conn_disconnect -> Conn_prefix_close (strict_prefix rng msg)
  | Some Conn_reorder_dup -> Conn_reordered_dup msg

type delivery =
  | Delivered of string
  | Duplicated of string
  | Delayed of int * string
  | Lost
  | Crashed

let corrupt rng ~flips msg =
  let len = String.length msg in
  if len = 0 then msg
  else begin
    let b = Bytes.of_string msg in
    for _ = 1 to max 1 flips do
      let pos = Prng.int rng len in
      let bit = Prng.int rng 8 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)))
    done;
    (* An even number of flips can land on the same bit and cancel; a
       faulted channel must actually damage the bytes. *)
    if Bytes.to_string b = msg then begin
      let pos = Prng.int rng len in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1))
    end;
    Bytes.to_string b
  end

let apply rng fault msg =
  match fault with
  | None -> Delivered msg
  | Some Crash -> Crashed
  | Some Drop -> Lost
  | Some (Corrupt flips) -> Delivered (corrupt rng ~flips msg)
  | Some Truncate ->
      (* A strict prefix, possibly empty. *)
      let len = String.length msg in
      if len = 0 then Delivered msg else Delivered (String.sub msg 0 (Prng.int rng len))
  | Some Duplicate -> Duplicated msg
  | Some (Delay d) -> Delayed (max 1 d, msg)
