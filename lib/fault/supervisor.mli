(** Retry with capped exponential backoff — the supervising coordinator's
    policy for transient faults (drops, detected corruption). Time is
    {e simulated}: the supervisor accounts the backoff it would have slept
    (in abstract units) instead of sleeping, so chaos experiments are fast
    and their reports deterministic. *)

type policy = {
  max_attempts : int;  (** total tries per message, >= 1 *)
  base_delay : float;  (** backoff before the first retry, in time units *)
  multiplier : float;  (** exponential growth factor, >= 1 *)
  max_delay : float;  (** backoff cap *)
}

val default : policy
(** 5 attempts, 1.0 base, x2 growth, capped at 8.0 — small enough that a
    hostile plan cannot stall a chaos sweep. *)

val delay_before : policy -> attempt:int -> float
(** Backoff charged before attempt [attempt] (attempts count from 0; the
    first attempt is free): [min max_delay (base * multiplier^(attempt-1))]. *)

type stats = {
  attempts : int;  (** attempts actually made, >= 1 *)
  backoff : float;  (** total simulated waiting *)
}

val retry : policy -> (attempt:int -> ('a, 'e) result) -> ('a, 'e) result * stats
(** Run [f ~attempt:0], then on [Error] charge backoff and retry, up to
    [max_attempts] attempts. Returns the first [Ok], or the last [Error]
    with the accumulated stats. *)
