(** k-wise independent hash families over [F_p], [p = 2^31 - 1].

    The paper assumes [O(log n)]-wise independent hash functions to generate
    the edge samples [E_j], vertex samples [C_r], [Y_j], [Z_r], and the rows
    of the sparse-recovery sketches (Theorem 8). A degree-[k] random
    polynomial over a prime field is the textbook such family; the degree is
    a parameter so experiments can dial independence. *)

type t
(** An immutable hash function drawn from the family. *)

val create : Prng.t -> k:int -> t
(** [create rng ~k] draws a uniformly random polynomial of degree [k - 1],
    i.e. a [k]-wise independent function [F_p -> F_p]. Requires [k >= 1]. *)

val eval : t -> int -> int
(** [eval h x] evaluates the polynomial at [Field.of_int x]; the result is a
    field element in [0, p). Keys larger than [p] are folded into the field
    with a mixing step so that distinct 62-bit keys rarely collide. *)

val fold_key : int -> int
(** The key-folding step of {!eval} exposed separately: callers that hash
    one key through several functions (rows of a recovery sketch, sampling
    levels) fold once and use the [_folded] variants below. Pure function of
    the key; [eval h x = eval_folded h (fold_key x)]. *)

val eval_folded : t -> int -> int
(** {!eval} on a pre-folded key (a field element in [0, p)). *)

val to_range : t -> int -> bound:int -> int
(** [to_range h x ~bound] maps [x] to [0, bound). Unlike a plain
    [eval mod bound] (bias up to [bound / p] per bucket, material when
    [bound] approaches [p]), values landing in the un-divisible tail of
    [[0, p)] are deterministically re-hashed, leaving residual bias below
    [(bound/p)^9] — negligible at every bound. Requires [0 < bound]. *)

val to_range_folded : t -> int -> bound:int -> int
(** {!to_range} on a pre-folded key. *)

val to_range_pows : t -> x:int -> x2:int -> x4:int -> bound:int -> int
(** {!to_range_folded} with the folded key's square and fourth power supplied
    by the caller ([x2 = x*x], [x4 = x2*x2] in [F_p]). The powers depend only
    on the key, so a container evaluating many hashes at one key computes
    them once. Same value as {!to_range_folded}. *)

val to_unit : t -> int -> float
(** [to_unit h x] maps [x] to a quasi-uniform float in [0, 1). This is the
    discretised uniform [h^j_uv] used in Section 6.3. *)

val bernoulli : t -> int -> float -> bool
(** [bernoulli h x q] is true iff [to_unit h x < q]; a pairwise-consistent
    coin for key [x]. *)

val level : t -> int -> int
(** [level h x] is a geometric level: the largest [j >= 0] such that
    [to_unit h x < 2^-j], capped at 62. [level h x >= j] has probability
    [2^-j]; used for the nested sampling sets [E_j], [Y_j], [Z_r]. *)

val level_folded : t -> int -> int
(** {!level} on a pre-folded key. *)

val level_pows : t -> x:int -> x2:int -> x4:int -> int
(** {!level_folded} with precomputed key powers, as in {!to_range_pows}. *)

val space_in_words : t -> int
(** Number of machine words of state (the coefficient vector). *)
