let p = 0x7fffffff (* 2^31 - 1 *)

let[@inline] of_int x =
  (* Branches cover the common callers (already-reduced values, small signed
     deltas) without a hardware division. *)
  if x >= 0 then if x < p then x else x mod p
  else if x > -p then x + p
  else
    let r = x mod p in
    if r < 0 then r + p else r

let[@inline] add a b =
  let s = a + b in
  if s >= p then s - p else s

let[@inline] sub a b = let d = a - b in if d < 0 then d + p else d
let[@inline] neg a = if a = 0 then 0 else p - a

(* (p-1)^2 = (2^31-2)^2 < 2^62 - 1 = max_int, so the product never wraps.
   Reduction exploits the Mersenne shape: 2^31 = 1 (mod p), so a 62-bit
   product folds as high + low in two rounds of shift/mask/add — no
   hardware division on the hottest instruction in the library. After the
   second fold the value is at most p, so one conditional subtract
   completes the reduction. *)
let[@inline] mul a b =
  let x = a * b in
  let r = (x lsr 31) + (x land p) in
  let r = (r lsr 31) + (r land p) in
  if r >= p then r - p else r

let pow b e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  if e < 0 then invalid_arg "Field.pow: negative exponent";
  go 1 (of_int b) e

let inv a = if a = 0 then raise Division_by_zero else pow a (p - 2)
let div a b = mul a (inv b)
let[@inline] scale_int c x = mul (of_int c) x

module Pow = struct
  type table = {
    base : int;
    max_exp : int;
    shift : int; (* split point: e = hi * 2^shift + lo *)
    lo : int array; (* lo.(i) = base^i,          i in [0, 2^shift) *)
    hi : int array; (* hi.(j) = base^(j*2^shift), j in [0, max_exp >> shift] *)
  }

  let table ~base ~max_exp =
    if max_exp < 0 then invalid_arg "Field.Pow.table: negative max_exp";
    let base = of_int base in
    let bits =
      let rec go b = if 1 lsl b > max_exp then b else go (b + 1) in
      go 1
    in
    let shift = (bits + 1) / 2 in
    let lo = Array.make (1 lsl shift) 1 in
    for i = 1 to Array.length lo - 1 do
      lo.(i) <- mul lo.(i - 1) base
    done;
    let step = mul lo.(Array.length lo - 1) base (* base^(2^shift) *) in
    let hi = Array.make ((max_exp lsr shift) + 1) 1 in
    for j = 1 to Array.length hi - 1 do
      hi.(j) <- mul hi.(j - 1) step
    done;
    { base; max_exp; shift; lo; hi }

  let base t = t.base
  let max_exp t = t.max_exp

  let[@inline] get t e =
    mul
      (Array.unsafe_get t.lo (e land ((1 lsl t.shift) - 1)))
      (Array.unsafe_get t.hi (e lsr t.shift))
end
