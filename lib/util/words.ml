(* Flat off-heap word buffers: the storage substrate for every linear
   sketch family.

   A [Words.t] is a contiguous C-layout Bigarray of machine words living
   outside the OCaml heap: the GC never scans it, domains can blit it
   without write barriers, and a serialized checkpoint of it is an
   mmap-friendly flat image.  Sketch state is a small linear object of
   O(k n^(1+1/k) log n) words (Thm 1); keeping it in one of these makes
   clone = one zeroed allocation, merge = one tight loop, and ship =
   one pass over one buffer.

   The merge loops come in two flavours matching the two counter
   algebras in the library:

   - [add]/[sub]: plain machine-integer addition on every word
     (Count_sketch tables, AMS F2 counters, Packed_l0 / Sketch_table
     raw-accumulated fingerprints).
   - [add_tri]/[sub_tri]: One_sparse triples (c0, c1, c2) where the
     third word of every triple is a Mersenne-field element kept
     reduced in [0, 2^31-1) — the whole Sparse_recovery / L0_sampler /
     AGM tower is a flat array of such triples.

   Both are backed by C stubs (util_words_stubs.c); a pure-OCaml
   fallback ships for platforms where the stubs cannot build and is
   selected by setting DS_WORDS_KERNEL=ocaml in the environment before
   the program starts (the CI runs the whole suite under both, and the
   golden-fixture test pins that the two produce identical LSK1
   bytes). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* ------------------------------------------------------------------ *)
(* Kernel selection                                                    *)
(* ------------------------------------------------------------------ *)

external c_add : t -> t -> int -> unit = "ds_words_add" [@@noalloc]
external c_sub : t -> t -> int -> unit = "ds_words_sub" [@@noalloc]
external c_add_tri : t -> t -> int -> unit = "ds_words_add_tri" [@@noalloc]
external c_sub_tri : t -> t -> int -> unit = "ds_words_sub_tri" [@@noalloc]

let use_c =
  match Sys.getenv_opt "DS_WORDS_KERNEL" with
  | Some s when String.lowercase_ascii s = "ocaml" -> false
  | _ -> true

let kernel = if use_c then "c" else "ocaml"

(* ------------------------------------------------------------------ *)
(* Construction and element access                                     *)
(* ------------------------------------------------------------------ *)

let create len =
  if len < 0 then invalid_arg "Words.create: negative length";
  let w = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill w 0;
  w

let length (t : t) = Bigarray.Array1.dim t
let get (t : t) i : int = Bigarray.Array1.get t i
let set (t : t) i (v : int) = Bigarray.Array1.set t i v
let[@inline] unsafe_get (t : t) i : int = Bigarray.Array1.unsafe_get t i
let[@inline] unsafe_set (t : t) i (v : int) = Bigarray.Array1.unsafe_set t i v

let fill (t : t) v = Bigarray.Array1.fill t v

let fill_range (t : t) ~pos ~len v =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Words.fill_range: range out of bounds";
  for i = pos to pos + len - 1 do
    unsafe_set t i v
  done

(* A view aliases the underlying storage: writes through the view are
   writes to the parent. This is how container sketches give each cell
   an addressable window of one shared allocation. *)
let view (t : t) ~pos ~len : t = Bigarray.Array1.sub t pos len

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || dst_pos < 0 || src_pos + len > length src
     || dst_pos + len > length dst
  then invalid_arg "Words.blit: range out of bounds";
  Bigarray.Array1.blit (view src ~pos:src_pos ~len) (view dst ~pos:dst_pos ~len)

let copy (t : t) =
  let w = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (length t) in
  Bigarray.Array1.blit t w;
  w

let of_array a =
  let w = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i v -> unsafe_set w i v) a;
  w

let to_array (t : t) = Array.init (length t) (fun i -> unsafe_get t i)

let sub_array (t : t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Words.sub_array: range out of bounds";
  Array.init len (fun i -> unsafe_get t (pos + i))

(* ------------------------------------------------------------------ *)
(* Merge kernels                                                       *)
(* ------------------------------------------------------------------ *)

let p = Field.p

let check2 name t s =
  if length t <> length s then
    invalid_arg (Printf.sprintf "Words.%s: length mismatch (%d vs %d)" name (length t) (length s))

let ocaml_add (t : t) (s : t) len =
  for i = 0 to len - 1 do
    unsafe_set t i (unsafe_get t i + unsafe_get s i)
  done

let ocaml_sub (t : t) (s : t) len =
  for i = 0 to len - 1 do
    unsafe_set t i (unsafe_get t i - unsafe_get s i)
  done

(* Triples: words 0 and 1 of each triple are exact integers, word 2 is a
   Mersenne-field residue kept reduced — exactly One_sparse.add/sub, so
   a buffer-level merge is bit-identical to the per-cell loops it
   replaces. *)
let ocaml_add_tri (t : t) (s : t) len =
  let i = ref 0 in
  while !i + 2 < len do
    let o = !i in
    unsafe_set t o (unsafe_get t o + unsafe_get s o);
    unsafe_set t (o + 1) (unsafe_get t (o + 1) + unsafe_get s (o + 1));
    let v = unsafe_get t (o + 2) + unsafe_get s (o + 2) in
    unsafe_set t (o + 2) (if v >= p then v - p else v);
    i := o + 3
  done

let ocaml_sub_tri (t : t) (s : t) len =
  let i = ref 0 in
  while !i + 2 < len do
    let o = !i in
    unsafe_set t o (unsafe_get t o - unsafe_get s o);
    unsafe_set t (o + 1) (unsafe_get t (o + 1) - unsafe_get s (o + 1));
    let v = unsafe_get t (o + 2) - unsafe_get s (o + 2) in
    unsafe_set t (o + 2) (if v < 0 then v + p else v);
    i := o + 3
  done

let add t s =
  check2 "add" t s;
  if use_c then c_add t s (length t) else ocaml_add t s (length t)

let sub t s =
  check2 "sub" t s;
  if use_c then c_sub t s (length t) else ocaml_sub t s (length t)

let add_tri t s =
  check2 "add_tri" t s;
  if length t mod 3 <> 0 then invalid_arg "Words.add_tri: length not a multiple of 3";
  if use_c then c_add_tri t s (length t) else ocaml_add_tri t s (length t)

let sub_tri t s =
  check2 "sub_tri" t s;
  if length t mod 3 <> 0 then invalid_arg "Words.sub_tri: length not a multiple of 3";
  if use_c then c_sub_tri t s (length t) else ocaml_sub_tri t s (length t)

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)
(* ------------------------------------------------------------------ *)

(* Byte-compatible with [Wire.write_array] / [Wire.read_array] over the
   same values: the LSK1 format predates the off-heap representation and
   is pinned by the golden fixtures, so serialization stays a varint
   stream — but now produced by one pass over one contiguous buffer. *)
let write_wire_array sink (t : t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Words.write_wire_array: range out of bounds";
  Wire.write_int sink len;
  for i = pos to pos + len - 1 do
    Wire.write_int sink (unsafe_get t i)
  done

let read_wire_array ~what src (t : t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Words.read_wire_array: range out of bounds";
  let n = Wire.read_int src in
  if n <> len then failwith (what ^ ": length mismatch");
  for i = pos to pos + len - 1 do
    unsafe_set t i (Wire.read_int src)
  done

(* Raw little-endian image of the buffer: the mmap-friendly checkpoint
   form (not part of LSK1, which is pinned varint). *)
let to_bytes (t : t) =
  let len = length t in
  let b = Bytes.create (8 * len) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le b (8 * i) (Int64.of_int (unsafe_get t i))
  done;
  b

let of_bytes b =
  let nb = Bytes.length b in
  if nb mod 8 <> 0 then invalid_arg "Words.of_bytes: length not a multiple of 8";
  let len = nb / 8 in
  let w = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  for i = 0 to len - 1 do
    unsafe_set w i (Int64.to_int (Bytes.get_int64_le b (8 * i)))
  done;
  w

let bytes_per_word = 8
let off_heap_bytes (t : t) = bytes_per_word * length t
