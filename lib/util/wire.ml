type sink = Buffer.t
type source = { data : string; mutable pos : int }

let sink () = Buffer.create 256
let contents = Buffer.contents
let source data = { data; pos = 0 }
let remaining s = String.length s.data - s.pos

(* Zig-zag then base-128 varint; total over the full 63-bit int range (the
   recursion uses logical shifts, so a negative zig-zag word terminates
   after at most 9 bytes). *)
let write_int buf v =
  let z = (v lsl 1) lxor (v asr 62) in
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr (z land 0x7f))
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

let read_byte s =
  if s.pos >= String.length s.data then failwith "Wire: truncated input";
  let b = Char.code s.data.[s.pos] in
  s.pos <- s.pos + 1;
  b

let read_int s =
  let rec go shift acc =
    if shift > 62 then failwith "Wire: varint too long";
    let b = read_byte s in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let write_array buf a =
  write_int buf (Array.length a);
  Array.iter (write_int buf) a

let read_array s =
  (* Every varint element occupies at least one byte, so a well-formed
     array never declares more elements than there are bytes left — the
     bound caps the allocation at the frame size before any element is
     read. *)
  let len = read_int s in
  if len < 0 || len > remaining s then failwith "Wire: implausible array length";
  Array.init len (fun _ -> read_int s)

let write_fixed64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let read_fixed64 s =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (read_byte s)) (8 * i))
  done;
  !v

(* FNV-1a over a byte range, the integrity check of the Linear_sketch wire
   envelope. 64-bit arithmetic via Int64 so writer and reader agree on every
   platform word size. *)
let fnv1a64 ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Wire.fnv1a64: range out of bounds";
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code data.[i]))) 0x100000001b3L
  done;
  !h

(* Length-prefixed framing for the serving layer's socket protocol: a
   4-byte little-endian unsigned length, then that many payload bytes.
   The header is fixed-width (not a varint) so a reader can always pull
   exactly 4 bytes and decide — before allocating anything — whether the
   advertised length is sane. *)

let frame_header_length = 4

type frame_error =
  | Frame_negative of int
  | Frame_too_large of { length : int; max : int }

let frame_error_to_string = function
  | Frame_negative n -> Printf.sprintf "negative frame length %d" n
  | Frame_too_large { length; max } ->
      Printf.sprintf "frame length %d exceeds limit %d" length max

let write_frame_header buf len =
  if len < 0 then invalid_arg "Wire.write_frame_header: negative length";
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((len lsr (8 * i)) land 0xff))
  done

let write_frame buf payload =
  write_frame_header buf (String.length payload);
  Buffer.add_string buf payload

(* Decode the 4 header bytes at [pos]. The wire value is an unsigned
   32-bit field, but a hostile or desynchronised peer can set the sign
   bit; decoding it as a signed i32 keeps "negative" distinguishable
   from merely huge, and both are rejected with a typed error before a
   single payload byte is allocated. *)
let decode_frame_length ~max data ~pos =
  if max < 0 then invalid_arg "Wire.decode_frame_length: negative max";
  if pos < 0 || pos + frame_header_length > String.length data then
    invalid_arg "Wire.decode_frame_length: header out of bounds";
  let b i = Char.code data.[pos + i] in
  let raw = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (* Sign-extend bit 31 on a 63-bit int. *)
  let signed = (raw lxor 0x80000000) - 0x80000000 in
  if signed < 0 then Error (Frame_negative signed)
  else if signed > max then Error (Frame_too_large { length = signed; max })
  else Ok signed

let write_tag buf tag =
  write_int buf (String.length tag);
  Buffer.add_string buf tag

let read_tag s =
  let len = read_int s in
  if len < 0 || len > remaining s then failwith "Wire: truncated tag";
  let got = String.sub s.data s.pos len in
  s.pos <- s.pos + len;
  got

let expect_tag s tag =
  let len = read_int s in
  if len <> String.length tag || remaining s < len then
    failwith (Printf.sprintf "Wire: expected tag %S" tag);
  let got = String.sub s.data s.pos len in
  s.pos <- s.pos + len;
  if got <> tag then failwith (Printf.sprintf "Wire: expected tag %S, found %S" tag got)
