(* Minimal JSON reader/writer.

   The repo emits all of its JSON by hand (Ds_obs.Export, bench
   writers); this module adds the other direction so in-tree tools —
   [dynospan serve-stats], the flight-recorder post-mortem reader, and
   the test suite — can consume those documents without taking on an
   external dependency. It is a strict recursive-descent parser over
   the subset of JSON our emitters produce (objects, arrays, strings
   with escapes, numbers incl. exponents, booleans, null), with enough
   generality to read anything a scraper like jq would accept. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> fail "unexpected end of input at %d" c.pos

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | _ -> ()

let expect c ch =
  let got = next c in
  if got <> ch then fail "expected %C at %d, got %C" ch (c.pos - 1) got

let expect_word c w =
  let n = String.length w in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = w then
    c.pos <- c.pos + n
  else fail "expected %s at %d" w c.pos

let utf8_add b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match next c with
      | '0' .. '9' as ch -> Char.code ch - Char.code '0'
      | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
      | ch -> fail "bad hex digit %C at %d" ch (c.pos - 1)
    in
    v := (!v * 16) + d
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match next c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            let u = hex4 c in
            (* Surrogate pair: combine when a low surrogate follows. *)
            if u >= 0xd800 && u <= 0xdbff then begin
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              if lo >= 0xdc00 && lo <= 0xdfff then
                utf8_add b
                  (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
              else fail "bad low surrogate at %d" c.pos
            end
            else utf8_add b u
        | ch -> fail "bad escape %C at %d" ch (c.pos - 1));
        go ()
    | ch -> Buffer.add_char b ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "bad number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | ch -> fail "expected ',' or '}' at %d, got %C" (c.pos - 1) ch
        in
        members []
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> elems (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | ch -> fail "expected ',' or ']' at %d, got %C" (c.pos - 1) ch
        in
        elems []
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' ->
      expect_word c "true";
      Bool true
  | Some 'f' ->
      expect_word c "false";
      Bool false
  | Some 'n' ->
      expect_word c "null";
      Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected %C at %d" ch c.pos
  | None -> fail "unexpected end of input at %d" c.pos

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing bytes at %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- printing --- *)

let escape_to b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 2) in
  escape_to b s;
  Buffer.contents b

let number_to_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      escape_to b s;
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_to b k;
          Buffer.add_string b "\":";
          write b v)
        l;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- accessors --- *)

let member key = function
  | Obj l -> List.assoc_opt key l
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_obj = function Obj l -> Some l | _ -> None

let path keys v =
  List.fold_left
    (fun acc k -> match acc with Some v -> member k v | None -> None)
    (Some v) keys
