type t = { coeffs : int array }

let create rng ~k =
  if k < 1 then invalid_arg "Kwise.create: k must be >= 1";
  let coeffs = Array.init k (fun _ -> Prng.int rng Field.p) in
  (* Avoid the identically-zero function for degenerate uses. *)
  if Array.for_all (fun c -> c = 0) coeffs then coeffs.(0) <- 1;
  { coeffs }

(* Keys can exceed p (edge indices go up to n^2); fold the high bits in with
   a multiplier so that keys congruent mod p still hash differently. *)
let[@inline] fold_key x =
  let lo = x land 0x7fffffff
  and hi = (x lsr 31) land 0x7fffffff in
  Field.add (Field.of_int lo) (Field.mul (Field.of_int hi) 0x5DEECE66)

(* Evaluation with the key's square and fourth power precomputed: x^2 and
   x^4 depend only on the key, and the sketch containers evaluate many
   degree-6 hashes at one key, so the caller computes them once. *)
let[@inline] eval_folded_pows t ~x ~x2 ~x4 =
  let coeffs = t.coeffs in
  if Array.length coeffs = 6 then
    (* The default degree gets an Estrin-split path: Horner's chain is one
       long serial dependency (each step waits on the previous reduction),
       while the split evaluates sub-terms in parallel on an out-of-order
       core. Field ops are exact mod p, so the re-association computes the
       identical value. *)
    let a = Field.add (Array.unsafe_get coeffs 0) (Field.mul (Array.unsafe_get coeffs 1) x) in
    let b = Field.add (Array.unsafe_get coeffs 2) (Field.mul (Array.unsafe_get coeffs 3) x) in
    let c = Field.add (Array.unsafe_get coeffs 4) (Field.mul (Array.unsafe_get coeffs 5) x) in
    Field.add a (Field.add (Field.mul b x2) (Field.mul c x4))
  else begin
    let acc = ref 0 in
    for i = Array.length coeffs - 1 downto 0 do
      acc := Field.add (Field.mul !acc x) (Array.unsafe_get coeffs i)
    done;
    !acc
  end

let[@inline] eval_folded t x =
  let x2 = Field.mul x x in
  let x4 = Field.mul x2 x2 in
  eval_folded_pows t ~x ~x2 ~x4

let eval t x = eval_folded t (fold_key x)

(* Map a hash value to [0, bound) without the modulo bias of a plain
   [eval mod bound]: values falling in the short tail [lim, p) (where
   [lim = p - p mod bound] is the largest multiple of [bound] below [p])
   are deterministically re-hashed through the same polynomial until they
   land in the evenly-divisible region. The chain is a fixed function of
   the key, so the map stays consistent across calls; after [8] rounds the
   residual bias is at most [(bound/p)^9], and for the small bounds used by
   bucket hashes the tail is essentially never hit (one extra compare). *)
let[@inline] to_range_of_value t v ~bound =
  if bound <= 0 then invalid_arg "Kwise.to_range: bound must be positive";
  if bound land (bound - 1) = 0 && bound < Field.p then begin
    (* Power-of-two bound — every bucket hash in the recovery tree. p is all
       ones in binary, so [p mod bound = bound - 1]: the limit is
       [p - bound + 1] and [v mod bound] is a mask. Same values as the
       general path below, no hardware division on the hot path. *)
    let lim = Field.p - bound + 1 and mask = bound - 1 in
    if v < lim then v land mask
    else
      let rec go v tries =
        if v < lim || tries = 0 then v land mask else go (eval_folded t v) (tries - 1)
      in
      go (eval_folded t v) 7
  end
  else if bound >= Field.p then v
  else
    let lim = Field.p - (Field.p mod bound) in
    if v < lim then v mod bound
    else
      let rec go v tries =
        if v < lim || tries = 0 then v mod bound else go (eval_folded t v) (tries - 1)
      in
      go (eval_folded t v) 7

let to_range_folded t x ~bound = to_range_of_value t (eval_folded t x) ~bound

let[@inline] to_range_pows t ~x ~x2 ~x4 ~bound =
  to_range_of_value t (eval_folded_pows t ~x ~x2 ~x4) ~bound

let to_range t x ~bound = to_range_folded t (fold_key x) ~bound
let to_unit t x = float_of_int (eval t x) /. float_of_int Field.p

let bernoulli t x q = to_unit t x < q

let[@inline] level_of_value v =
  if v = 0 then 31
  else begin
    (* v uniform in [1, p); level j iff v < p / 2^j. *)
    let rec go j threshold =
      if j >= 31 then 31
      else if v < threshold then go (j + 1) (threshold / 2)
      else j
    in
    go 0 Field.p - 1 |> max 0
  end

let level_folded t x = level_of_value (eval_folded t x)
let[@inline] level_pows t ~x ~x2 ~x4 = level_of_value (eval_folded_pows t ~x ~x2 ~x4)
let level t x = level_folded t (fold_key x)
let space_in_words t = Array.length t.coeffs
