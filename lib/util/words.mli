(** Flat off-heap word buffers — the storage substrate for linear-sketch
    state.

    A {!t} is a contiguous C-layout Bigarray of machine words (one
    64-bit slot per OCaml [int]) living outside the OCaml heap: the GC
    never scans or moves it, replicas are produced by one zeroed
    allocation or one blit, and merging two sketches is one tight loop
    over two buffers (a C stub by default, see {!kernel}).

    Containers embed sub-sketches by handing them {!view}s: a view
    aliases the parent's storage, so a whole tower of nested sketches
    (AGM -> L0 samplers -> sparse-recovery cells -> one-sparse triples)
    is physically a single allocation that can be shipped, zeroed or
    merged with one call. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val kernel : string
(** ["c"] when the foreign stubs drive {!add}/{!sub}/{!add_tri}/{!sub_tri},
    ["ocaml"] when the pure fallback does.  Selected once at program
    start: set [DS_WORDS_KERNEL=ocaml] to force the fallback (both paths
    are CI-gated to produce identical bytes). *)

val create : int -> t
(** Zero-filled buffer of the given word count. *)

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

val unsafe_get : t -> int -> int
(** No bounds check — hot-path cell access for sketch kernels. *)

val unsafe_set : t -> int -> int -> unit

val fill : t -> int -> unit
val fill_range : t -> pos:int -> len:int -> int -> unit

val view : t -> pos:int -> len:int -> t
(** [view t ~pos ~len] aliases [t]'s storage: writes through the view are
    visible in [t] and vice versa.  O(1), no copy. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
val copy : t -> t
val of_array : int array -> t
val to_array : t -> int array
val sub_array : t -> pos:int -> len:int -> int array

val add : t -> t -> unit
(** [add t s] sets [t.(i) <- t.(i) + s.(i)] for every word (plain machine
    addition).  Lengths must match.  Aliasing ([add t t]) is well-defined
    and doubles every word. *)

val sub : t -> t -> unit
(** Elementwise [t.(i) <- t.(i) - s.(i)]. *)

val add_tri : t -> t -> unit
(** One_sparse-triple merge: for each aligned triple [(c0, c1, c2)],
    [c0] and [c1] add as plain integers while [c2] adds in the Mersenne
    field [F_{2^31-1}] (both sides reduced, result reduced) — exactly the
    per-cell [One_sparse.add] the buffer layout replaces.  Length must be
    a multiple of 3. *)

val sub_tri : t -> t -> unit
(** Triple-wise subtraction, [c2] in the Mersenne field. *)

val write_wire_array : Wire.sink -> t -> pos:int -> len:int -> unit
(** Length-prefixed zig-zag varints, byte-compatible with
    [Wire.write_array] over the same values (the pinned LSK1 body
    encoding), produced in one pass over the buffer. *)

val read_wire_array : what:string -> Wire.source -> t -> pos:int -> len:int -> unit
(** Inverse of {!write_wire_array} into an existing range.
    @raise Failure ("[what]: length mismatch") when the stored length
    differs from [len]. *)

val to_bytes : t -> bytes
(** Raw little-endian image — the mmap-friendly flat checkpoint form. *)

val of_bytes : bytes -> t

val bytes_per_word : int
(** 8: storage bytes per word slot. *)

val off_heap_bytes : t -> int
(** [bytes_per_word * length t]: what this buffer costs outside the heap. *)
