(* Cache-line padded atomics.

   OCaml 5.1 has no [Atomic.make_contended]; an [Atomic.make 0] is an
   ordinary 2-word heap block, so a batch of them (the 32-way sharded
   telemetry counters, a deque's top/bottom pair) is allocated back to
   back and up to four cells share one 64-byte line.  Every
   [fetch_and_add] then invalidates its neighbours' lines and sharded
   counters serialize on cache coherence instead of scaling.

   The standard workaround (what multicore-magic's [copy_as_padded]
   does) is to allocate the atomic as a *larger* block: the atomic
   primitives ([%atomic_load], [caml_atomic_cas], ...) operate on field
   0 of the block and never inspect its size, so a 16-word block behaves
   exactly like [Atomic.make]'s 2-word one while guaranteeing that no
   two padded cells ever share a 128-byte span (one line plus the
   adjacent-line prefetcher's reach).

   Only immediate (int) contents are supported: the spare fields are
   initialized to the immediate 0, and keeping the payload immediate
   sidesteps any write-barrier subtlety in the padding fields. *)

let words_per_cell = 16

let atomic (v : int) : int Atomic.t =
  (* [Obj.new_block 0 n] zero-initializes fields to [Val_unit]-safe
     values, so the block is valid for the GC before we overwrite
     field 0 with the payload. *)
  let b = Obj.new_block 0 words_per_cell in
  for i = 1 to words_per_cell - 1 do
    Obj.set_field b i (Obj.repr 0)
  done;
  Obj.set_field b 0 (Obj.repr v);
  (Obj.magic b : int Atomic.t)

let array n v = Array.init n (fun _ -> atomic v)
