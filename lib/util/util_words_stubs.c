/* Merge kernels for Ds_util.Words: tight loops over off-heap word
   buffers.

   The buffers are Bigarrays of kind `int` (untagged OCaml integers in
   native 64-bit slots), so the kernels are plain intnat arithmetic with
   no tagging, no write barriers and no GC interaction — declared
   [@@noalloc] on the OCaml side.  A pure-OCaml fallback with identical
   semantics lives in words.ml (DS_WORDS_KERNEL=ocaml selects it); the
   golden-fixture CI job pins both paths to the same bytes.

   DS_WORDS_P is the Mersenne prime 2^31 - 1 of Ds_util.Field: in the
   `tri` variants every third word is a field residue kept reduced in
   [0, p), matching One_sparse's c2 counter exactly. */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#define DS_WORDS_P ((intnat)0x7fffffff)

CAMLprim value ds_words_add(value dst, value src, value vlen)
{
  intnat *d = (intnat *)Caml_ba_data_val(dst);
  const intnat *s = (const intnat *)Caml_ba_data_val(src);
  intnat n = Long_val(vlen);
  for (intnat i = 0; i < n; i++) d[i] += s[i];
  return Val_unit;
}

CAMLprim value ds_words_sub(value dst, value src, value vlen)
{
  intnat *d = (intnat *)Caml_ba_data_val(dst);
  const intnat *s = (const intnat *)Caml_ba_data_val(src);
  intnat n = Long_val(vlen);
  for (intnat i = 0; i < n; i++) d[i] -= s[i];
  return Val_unit;
}

CAMLprim value ds_words_add_tri(value dst, value src, value vlen)
{
  intnat *d = (intnat *)Caml_ba_data_val(dst);
  const intnat *s = (const intnat *)Caml_ba_data_val(src);
  intnat n = Long_val(vlen);
  for (intnat i = 0; i + 2 < n; i += 3) {
    intnat c2;
    d[i] += s[i];
    d[i + 1] += s[i + 1];
    c2 = d[i + 2] + s[i + 2];
    d[i + 2] = (c2 >= DS_WORDS_P) ? c2 - DS_WORDS_P : c2;
  }
  return Val_unit;
}

CAMLprim value ds_words_sub_tri(value dst, value src, value vlen)
{
  intnat *d = (intnat *)Caml_ba_data_val(dst);
  const intnat *s = (const intnat *)Caml_ba_data_val(src);
  intnat n = Long_val(vlen);
  for (intnat i = 0; i + 2 < n; i += 3) {
    intnat c2;
    d[i] -= s[i];
    d[i + 1] -= s[i + 1];
    c2 = d[i + 2] - s[i + 2];
    d[i + 2] = (c2 < 0) ? c2 + DS_WORDS_P : c2;
  }
  return Val_unit;
}
