(** Compact binary encoding for sketch state.

    Sketch {e structure} (hash functions, dimensions) is derived from a
    shared seed, so only the {e counters} ever need to cross the network —
    exactly the paper's distributed model, where servers agree on the
    sketching matrix and ship [S x^i]. Writers append to a buffer; readers
    consume a string. Integers use zig-zag varint encoding (signed counters
    are mostly small), and every composite value carries a small tag so that
    misaligned reads fail loudly instead of decoding garbage. *)

type sink
type source

val sink : unit -> sink
val contents : sink -> string
val source : string -> source

val remaining : source -> int
(** Bytes not yet consumed. *)

val write_int : sink -> int -> unit
val read_int : source -> int
(** @raise Failure on truncated input. *)

val write_array : sink -> int array -> unit
val read_array : source -> int array

val write_fixed64 : sink -> int64 -> unit
(** Eight little-endian bytes, platform independent. Used for checksums and
    float bit patterns, which must not be varint-compressed. *)

val read_fixed64 : source -> int64
(** @raise Failure on truncated input. *)

val fnv1a64 : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a 64-bit hash of [data.[pos .. pos+len-1]] (defaults: the whole
    string). The corruption check of every versioned sketch wire message:
    writers append it, readers verify it before parsing anything else. *)

val write_tag : sink -> string -> unit
val expect_tag : source -> string -> unit
(** @raise Failure if the next tag differs — the standard guard at the head
    of every sketch's [write]/[read_into] pair. *)

val read_tag : source -> string
(** Read whatever tag comes next, for readers that report {e which} tag they
    found instead of merely failing (the typed-error decode path).
    @raise Failure on truncated input. *)
