(** Compact binary encoding for sketch state.

    Sketch {e structure} (hash functions, dimensions) is derived from a
    shared seed, so only the {e counters} ever need to cross the network —
    exactly the paper's distributed model, where servers agree on the
    sketching matrix and ship [S x^i]. Writers append to a buffer; readers
    consume a string. Integers use zig-zag varint encoding (signed counters
    are mostly small), and every composite value carries a small tag so that
    misaligned reads fail loudly instead of decoding garbage. *)

type sink
type source

val sink : unit -> sink
val contents : sink -> string
val source : string -> source

val remaining : source -> int
(** Bytes not yet consumed. *)

val write_int : sink -> int -> unit
val read_int : source -> int
(** @raise Failure on truncated input. *)

val write_array : sink -> int array -> unit
val read_array : source -> int array

val write_fixed64 : sink -> int64 -> unit
(** Eight little-endian bytes, platform independent. Used for checksums and
    float bit patterns, which must not be varint-compressed. *)

val read_fixed64 : source -> int64
(** @raise Failure on truncated input. *)

val fnv1a64 : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a 64-bit hash of [data.[pos .. pos+len-1]] (defaults: the whole
    string). The corruption check of every versioned sketch wire message:
    writers append it, readers verify it before parsing anything else. *)

(** {1 Length-prefixed framing}

    The serving layer's socket protocol: a fixed 4-byte little-endian
    unsigned length, then that many payload bytes. Fixed-width (unlike the
    varints above) so a reader can pull exactly {!frame_header_length}
    bytes and validate the advertised length {e before} allocating any
    payload buffer — an 8-byte hostile header must never cause an OOM. *)

val frame_header_length : int
(** Always 4. *)

(** Why a frame header was rejected. Both cases mean the stream is
    desynchronised or hostile; the connection must be dropped (there is no
    way to resynchronise a length-prefixed stream). *)
type frame_error =
  | Frame_negative of int  (** sign bit set when read as an i32 *)
  | Frame_too_large of { length : int; max : int }

val frame_error_to_string : frame_error -> string

val write_frame_header : Buffer.t -> int -> unit
(** Append the 4-byte header for a payload of the given length.
    @raise Invalid_argument on a negative length. *)

val write_frame : Buffer.t -> string -> unit
(** Header + payload in one call. *)

val decode_frame_length : max:int -> string -> pos:int -> (int, frame_error) result
(** Decode the 4 header bytes at [pos] and validate them against [max].
    Never allocates payload space.
    @raise Invalid_argument if fewer than 4 bytes are available at [pos]
    (the caller buffers until it has a whole header). *)

val write_tag : sink -> string -> unit
val expect_tag : source -> string -> unit
(** @raise Failure if the next tag differs — the standard guard at the head
    of every sketch's [write]/[read_into] pair. *)

val read_tag : source -> string
(** Read whatever tag comes next, for readers that report {e which} tag they
    found instead of merely failing (the typed-error decode path).
    @raise Failure on truncated input. *)
