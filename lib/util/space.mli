(** Space accounting for sketch state.

    Every sketch in this repository can report the number of machine words it
    holds; experiment tables use these counts as the measured "sketching
    dimension", matching the paper's space bounds (which are stated in bits;
    one word here is 63 usable bits). *)

val words_to_bits : int -> int
(** Machine words to bits (63-bit OCaml ints). *)

val words_to_mib : int -> float
(** Machine words to mebibytes (8 bytes per word). *)

val pp_words : Format.formatter -> int -> unit
(** Human-readable rendering, e.g. ["12.3 Kw"]; [0] prints ["0 w"].
    @raise Invalid_argument on a negative word count (a negative count
    is always an accounting bug; printing ["-3 w"] would hide it). *)
