(** Arithmetic in the Mersenne prime field [F_p] with [p = 2^31 - 1].

    All elements are native OCaml [int]s in the range [0, p). Products of two
    elements fit in a 63-bit native int ([ (p-1)^2 < 2^62 ]), so no big-number
    support is needed. This field backs every fingerprint and hash polynomial
    in the sketching layer. *)

val p : int
(** The field modulus, [2^31 - 1]. *)

val of_int : int -> int
(** [of_int x] reduces an arbitrary integer (possibly negative) into [0, p). *)

val add : int -> int -> int
(** Field addition. Arguments must already be reduced. *)

val sub : int -> int -> int
(** Field subtraction. Arguments must already be reduced. *)

val neg : int -> int
(** Field negation. *)

val mul : int -> int -> int
(** Field multiplication. Arguments must already be reduced. *)

val pow : int -> int -> int
(** [pow b e] is [b^e mod p] by binary exponentiation. Requires [e >= 0]. *)

val inv : int -> int
(** Multiplicative inverse by Fermat's little theorem.
    @raise Division_by_zero on [inv 0]. *)

val div : int -> int -> int
(** [div a b = mul a (inv b)]. *)

val scale_int : int -> int -> int
(** [scale_int c x] multiplies a field element [x] by an arbitrary (possibly
    negative, possibly large) integer coefficient [c], reducing [c] first.
    Used to fold signed stream multiplicities into fingerprints. *)

(** Fixed-base exponentiation by table lookup: for a base known in advance
    and exponents bounded by [max_exp], [get] computes [base^e] with two
    array reads and one multiplication instead of the [O(log e)] squarings
    of {!pow}. The two tables cover the low and high halves of the exponent
    bits, so memory is [O(sqrt max_exp)] words. This is the hot-path kernel
    behind every {!Ds_sketch.One_sparse} fingerprint update; tables are
    immutable after construction and safe to share across domains. *)
module Pow : sig
  type table

  val table : base:int -> max_exp:int -> table
  (** Precompute tables for [base^e], [0 <= e <= max_exp]. *)

  val base : table -> int
  (** The (reduced) base. *)

  val max_exp : table -> int

  val get : table -> int -> int
  (** [get t e] is [base^e mod p]. Requires [0 <= e <= max_exp]; out-of-range
      exponents are undefined behaviour (unchecked — hot path). *)
end
