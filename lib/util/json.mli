(** Minimal zero-dependency JSON reader/writer.

    The repo's exporters ([Ds_obs.Export], the bench writers, the
    serve STAT rollup) emit JSON by hand; this module provides the
    matching reader so in-tree consumers — [dynospan serve-stats], the
    flight-recorder post-mortem, tests — can parse those documents
    without an external library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing non-whitespace bytes
    are an error. *)

val to_string : t -> string
(** Compact (single-line) serialization. NaN prints as [null]. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes), for hand-rolled
    emitters. *)

val member : string -> t -> t option
(** [member k v] is the value bound to [k] when [v] is an object. *)

val path : string list -> t -> t option
(** [path ["a";"b"] v] walks nested objects. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
