(** Cache-line padded atomics (a stand-in for OCaml 5.2's
    [Atomic.make_contended] on the 5.1 runtime).

    A padded cell occupies its own 128-byte span, so independent cells
    written by different domains never false-share a cache line. Use for
    contended hot-path cells (sharded counters, work-stealing deque
    indices); plain [Atomic.make] remains right for everything cold —
    each padded cell costs 128 bytes. *)

val words_per_cell : int
(** Heap words per padded cell (16 = 128 bytes on 64-bit). *)

val atomic : int -> int Atomic.t
(** [atomic v] is an [int Atomic.t] holding [v], allocated as a
    {!words_per_cell}-word block so neighbouring allocations cannot
    share its cache line. Supports every [Atomic] operation. Only
    immediate ([int]) payloads are supported. *)

val array : int -> int -> int Atomic.t array
(** [array n v] is [n] independently padded cells, each holding [v] —
    the layout for per-domain sharded counters. *)
