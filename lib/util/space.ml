let words_to_bits w = w * 63
let words_to_mib w = float_of_int (w * 8) /. (1024.0 *. 1024.0)

let pp_words ppf w =
  if w < 0 then
    invalid_arg (Printf.sprintf "Space.pp_words: negative word count (%d)" w);
  if w = 0 then Format.pp_print_string ppf "0 w"
  else
    let fw = float_of_int w in
    if fw >= 1e9 then Format.fprintf ppf "%.2f Gw" (fw /. 1e9)
    else if fw >= 1e6 then Format.fprintf ppf "%.2f Mw" (fw /. 1e6)
    else if fw >= 1e3 then Format.fprintf ppf "%.1f Kw" (fw /. 1e3)
    else Format.fprintf ppf "%d w" w
