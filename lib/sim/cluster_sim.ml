open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

type partition = Round_robin | By_vertex | Random of int

(* Registry telemetry, published alongside (never instead of) the report
   records below: the pp_* table output is part of the chaos CI contract
   and must stay byte-identical, so the registry is a second export path
   over the same numbers (E15 and E16 share it).  All no-ops unless
   Ds_obs.Metrics is enabled. *)
let m_envelopes = Ds_obs.Metrics.counter "cluster.envelopes"
let m_wire_bytes = Ds_obs.Metrics.counter "cluster.wire_bytes"
let m_attempts = Ds_obs.Metrics.counter "cluster.attempts"
let m_faults = Ds_obs.Metrics.counter "cluster.faults"
let m_retries = Ds_obs.Metrics.counter "cluster.retries"
let m_backoff_milli = Ds_obs.Metrics.counter "cluster.backoff_milli"
let m_dup_rejected = Ds_obs.Metrics.counter "cluster.duplicates_rejected"
let m_decode_errors = Ds_obs.Metrics.counter "cluster.decode_errors"
let m_crashed = Ds_obs.Metrics.counter "cluster.crashed_servers"
let m_healed = Ds_obs.Metrics.counter "cluster.healed_servers"
let m_reingested_updates = Ds_obs.Metrics.counter "cluster.reingested_updates"
let m_recovery_bytes = Ds_obs.Metrics.counter "cluster.recovery_bytes"
let m_lost = Ds_obs.Metrics.counter "cluster.lost_servers"
let g_quorum = Ds_obs.Metrics.gauge "cluster.quorum"
let g_copies = Ds_obs.Metrics.gauge "cluster.copies"
let g_delta_ppm = Ds_obs.Metrics.gauge "cluster.degraded_delta_ppm"

type report = {
  servers : int;
  updates_total : int;
  updates_per_server : int array;
  bytes_per_server : int array;
  bytes_total : int;
  words_per_server : int;
  forest_edges : int;
  forest_correct : bool;
}

(* Every protocol below fans one function over the per-server shards,
   sequentially or on the pool.  Shards are materialized arrays here by
   design — the simulation charges each server for its own copy of the
   stream — so this stays [Pool.map_array] rather than the zero-copy
   ingest engine. *)
let map_mode mode f parts =
  match mode with
  | `Sequential -> Array.map f parts
  | `Parallel pool -> Ds_par.Pool.map_array pool f parts

let assign partition ~servers =
  match partition with
  | Round_robin -> fun i _u -> i mod servers
  | By_vertex -> fun _i (u : Update.t) -> min u.Update.u u.Update.v mod servers
  | Random seed ->
      let rng = Prng.create seed in
      fun _i _u -> Prng.int rng servers

(* Verification against the offline ground truth: every forest edge is a
   real final-graph edge, and the forest has exactly the component
   structure of the final graph. *)
let forest_ok ~n stream forest =
  let g = Update.final_graph ~n stream in
  List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest
  &&
  let fg = Graph.create n in
  List.iter (fun (u, v) -> if not (Graph.mem_edge fg u v) then Graph.add_edge fg u v) forest;
  Components.count fg = Components.count g
  && List.length forest = n - Components.count g

(* Shard the stream across servers under the chosen partition. *)
let shard ~route ~servers ~counts stream =
  let lists = Array.make servers [] in
  Array.iteri
    (fun i u ->
      let s = route i u in
      counts.(s) <- counts.(s) + 1;
      lists.(s) <- u :: lists.(s))
    stream;
  Array.map (fun l -> Array.of_list (List.rev l)) lists

let run ?(mode = `Sequential) rng ~n ~servers ~partition stream =
  if servers < 1 then invalid_arg "Cluster_sim.run: need at least one server";
  Ds_obs.Trace.with_span "cluster.run" @@ fun () ->
  let params = Agm_sketch.default_params ~n in
  (* Shared randomness: all servers and the coordinator derive identical
     sketch structure from the same seed. *)
  let shared = Prng.split_named rng "shared-sketch-seed" in
  let fresh () = Agm_sketch.create (Prng.copy shared) ~n ~params in
  let counts = Array.make servers 0 in
  let route = assign partition ~servers in
  (* Materialise each server's shard of the stream (the routing itself is
     not what the experiment measures). *)
  let shard_updates = shard ~route ~servers ~counts stream in
  (* Sketch each server's shard, then ship: serialize every shard (the
     communication the paper counts). In [`Parallel] mode the servers run
     concurrently on real domains; replicas are compatible by shared seed,
     so the mode cannot change any measured or decoded quantity. *)
  (* Each serialize runs under its own "cluster.ship" span and embeds
     that span's context in the envelope, so the coordinator's decode
     spans link back to the shipping server.  With tracing disabled
     [current_context] is [None] and the bytes are unchanged. *)
  let sketch_server updates =
    let sk = fresh () in
    Ds_obs.Trace.with_span "cluster.sketch" (fun () ->
        Agm_sketch.update_batch sk updates);
    let msg =
      Ds_obs.Trace.with_span "cluster.ship" (fun () ->
          Agm_sketch.serialize ?trace:(Ds_obs.Trace.current_context ()) sk)
    in
    (sk, msg)
  in
  let server_results = map_mode mode sketch_server shard_updates in
  let shards = Array.map fst server_results in
  let messages = Array.map snd server_results in
  let bytes_per_server = Array.map String.length messages in
  (* Coordinator: absorb and sum. *)
  let coordinator = fresh () in
  let scratch = fresh () in
  Ds_obs.Trace.with_span "cluster.merge" (fun () ->
      Array.iter
        (fun m ->
          Agm_sketch.deserialize_into scratch m;
          Agm_sketch.add coordinator scratch)
        messages);
  let forest = Agm_sketch.spanning_forest coordinator in
  let forest_correct = forest_ok ~n stream forest in
  let bytes_total = Array.fold_left ( + ) 0 bytes_per_server in
  Ds_obs.Metrics.incr m_envelopes servers;
  Ds_obs.Metrics.incr m_wire_bytes bytes_total;
  {
    servers;
    updates_total = Array.length stream;
    updates_per_server = counts;
    bytes_per_server;
    bytes_total;
    words_per_server = Agm_sketch.space_in_words shards.(0);
    forest_edges = List.length forest;
    forest_correct;
  }

let pp_report ppf r =
  Format.fprintf ppf "servers=%d updates=%d (per server: min %d, max %d)@." r.servers
    r.updates_total
    (Array.fold_left min max_int r.updates_per_server)
    (Array.fold_left max 0 r.updates_per_server);
  Format.fprintf ppf "state per server: %d words; messages: %d bytes total@." r.words_per_server
    r.bytes_total;
  Format.fprintf ppf "forest: %d edges, correct=%b@." r.forest_edges r.forest_correct

(* ------------------------------------------------------------------ *)
(* Generic shipping: the same server/coordinator round-trip for any
   sketch implementing the linear interface.                           *)

module Linear_sketch = Ds_sketch.Linear_sketch

type ship_report = {
  family : string;
  ship_servers : int;
  ship_updates_total : int;
  ship_bytes_per_server : int array;
  ship_bytes_total : int;
  ship_words_per_server : int;
  matches_direct : bool;
}

let ship (type s) ?(mode = `Sequential) ((module L) : s Linear_sketch.impl) ~make
    ~servers (updates : (int * int) array) =
  if servers < 1 then invalid_arg "Cluster_sim.ship: need at least one server";
  Ds_obs.Trace.with_span "cluster.ship_run" @@ fun () ->
  (* Round-robin shards; any partition gives the same coordinator state by
     linearity, so the routing is not a parameter here.  [split] is the
     materializing partition kept exactly for custom drivers like this
     one, where each server owns its shard. *)
  let shards = Ds_par.Shard_ingest.(split Round_robin) ~shards:servers updates in
  let sketch_server part =
    let sk : s = make () in
    Ds_obs.Trace.with_span "cluster.sketch" (fun () ->
        Array.iter (fun (index, delta) -> L.update sk ~index ~delta) part);
    Ds_obs.Trace.with_span "cluster.ship" (fun () ->
        Linear_sketch.serialize
          ?trace:(Ds_obs.Trace.current_context ())
          (module L) sk)
  in
  let messages = map_mode mode sketch_server shards in
  let bytes_per_server = Array.map String.length messages in
  (* Coordinator: deserialize each message and sum (the wire round-trip the
     paper's distributed setting counts). *)
  Ds_obs.Metrics.incr m_envelopes servers;
  Ds_obs.Metrics.incr m_wire_bytes
    (Array.fold_left (fun acc m -> acc + String.length m) 0 messages);
  let coordinator = make () in
  Array.iter (fun m -> Linear_sketch.absorb (module L) coordinator m) messages;
  (* Ground truth: the same updates sketched directly in one process. *)
  let direct = make () in
  Array.iter (fun (index, delta) -> L.update direct ~index ~delta) updates;
  let matches_direct =
    Linear_sketch.serialize (module L) coordinator
    = Linear_sketch.serialize (module L) direct
  in
  {
    family = L.family;
    ship_servers = servers;
    ship_updates_total = Array.length updates;
    ship_bytes_per_server = bytes_per_server;
    ship_bytes_total = Array.fold_left ( + ) 0 bytes_per_server;
    ship_words_per_server = L.space_in_words coordinator;
    matches_direct;
  }

let ship_families ?mode rng ~dim ~servers updates =
  let module S = Ds_sketch in
  (* Each family gets an independent child seed; [make] copies it so every
     replica (server, coordinator, direct) derives identical structure. *)
  let seeded name create =
    let seed = Prng.split_named rng name in
    fun () -> create (Prng.copy seed)
  in
  [
    ship ?mode
      (module S.One_sparse.Linear)
      ~make:(seeded "one_sparse" (fun r -> S.One_sparse.create r ~dim))
      ~servers updates;
    ship ?mode
      (module S.Sparse_recovery.Linear)
      ~make:
        (seeded "sparse_recovery" (fun r ->
             S.Sparse_recovery.create r ~dim
               ~params:(S.Sparse_recovery.default_params ~sparsity:8)))
      ~servers updates;
    ship ?mode
      (module S.Count_sketch.Linear)
      ~make:
        (seeded "count_sketch" (fun r ->
             S.Count_sketch.create r ~dim ~params:S.Count_sketch.default_params))
      ~servers updates;
    ship ?mode
      (module S.Ams_f2.Linear)
      ~make:(seeded "ams_f2" (fun r -> S.Ams_f2.create r ~dim ~params:S.Ams_f2.default_params))
      ~servers updates;
    ship ?mode
      (module S.F0.Linear)
      ~make:(seeded "f0" (fun r -> S.F0.create r ~dim ~params:S.F0.default_params))
      ~servers updates;
    ship ?mode
      (module S.L0_sampler.Linear)
      ~make:
        (seeded "l0_sampler" (fun r ->
             S.L0_sampler.create r ~dim ~params:S.L0_sampler.default_params))
      ~servers updates;
    ship ?mode
      (module S.Packed_l0.Linear)
      ~make:
        (seeded "packed_l0" (fun r ->
             S.Packed_l0.Owned.create r ~dim ~params:S.Packed_l0.default_params))
      ~servers updates;
    ship ?mode
      (module S.Sketch_table.Linear)
      ~make:
        (seeded "sketch_table" (fun r ->
             S.Sketch_table.create r ~key_dim:dim ~capacity:32 ~rows:3 ~hash_degree:6
               ~payload_len:0))
      ~servers updates;
  ]

let pp_ship_report ppf r =
  Format.fprintf ppf "%-16s servers=%d updates=%d wire=%d bytes (max/server %d) state=%d words ok=%b@."
    r.family r.ship_servers r.ship_updates_total r.ship_bytes_total
    (Array.fold_left max 0 r.ship_bytes_per_server)
    r.ship_words_per_server r.matches_direct

(* ------------------------------------------------------------------ *)
(* Supervised runs: the same protocol pushed through a deterministically
   faulted channel, with a coordinator that validates every envelope,
   retries transient faults with capped backoff, deduplicates, recovers
   crashed shards by linearity and degrades to quorum decoding when a
   server is permanently lost.                                         *)

module Fault_plan = Ds_fault.Fault_plan
module Supervisor = Ds_fault.Supervisor

(* Mutable channel accounting shared by every message of one run. *)
type chan_stats = {
  mutable sent : int; (* send attempts, including faulted ones *)
  mutable faults : int;
  by_kind : (string, int) Hashtbl.t;
  mutable retries : int;
  mutable backoff : float; (* simulated waiting, in policy time units *)
  mutable duplicates_rejected : int;
  mutable decode_errors : int;
  mutable bytes : int; (* bytes that actually crossed the channel *)
}

let fresh_chan_stats () =
  {
    sent = 0;
    faults = 0;
    by_kind = Hashtbl.create 8;
    retries = 0;
    backoff = 0.0;
    duplicates_rejected = 0;
    decode_errors = 0;
    bytes = 0;
  }

let count_fault stats f =
  stats.faults <- stats.faults + 1;
  let k = Fault_plan.fault_name f in
  Hashtbl.replace stats.by_kind k
    (1 + Option.value ~default:0 (Hashtbl.find_opt stats.by_kind k))

let faults_by_kind stats =
  List.map
    (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt stats.by_kind k)))
    Fault_plan.kind_names

(* Fold one run's channel accounting into the registry. *)
let publish_chan_stats stats =
  if Ds_obs.Metrics.enabled () then begin
    Ds_obs.Metrics.incr m_attempts stats.sent;
    Ds_obs.Metrics.incr m_faults stats.faults;
    List.iter
      (fun (k, c) ->
        if c > 0 then Ds_obs.Metrics.incr (Ds_obs.Metrics.counter ("cluster.fault." ^ k)) c)
      (faults_by_kind stats);
    Ds_obs.Metrics.incr m_retries stats.retries;
    Ds_obs.Metrics.incr m_backoff_milli (int_of_float ((stats.backoff *. 1000.) +. 0.5));
    Ds_obs.Metrics.incr m_dup_rejected stats.duplicates_rejected;
    Ds_obs.Metrics.incr m_decode_errors stats.decode_errors;
    Ds_obs.Metrics.incr m_wire_bytes stats.bytes
  end

(* Push one message through the faulted channel with retries. [absorb]
   validates-and-merges delivered bytes into the coordinator (untouched on
   [Error], so the same destination can be retried). Crashes are sticky:
   once [crashed.(server)] is set, every remaining attempt and message from
   that server fails without consulting the plan. Returns whether the
   message was merged. *)
let deliver ~plan ~policy ~stats ~crashed ~server ~message msg ~absorb =
  let merge bytes ~dup =
    stats.bytes <- stats.bytes + ((if dup then 2 else 1) * String.length bytes);
    match absorb bytes with
    | Ok () ->
        (* A duplicate's first arrival merges; the second hits the ledger
           (this (server, message) is now merged) and is rejected, never
           summed twice. *)
        if dup then stats.duplicates_rejected <- stats.duplicates_rejected + 1;
        Ok ()
    | Error e ->
        stats.decode_errors <- stats.decode_errors + 1;
        Error (`Decode e)
  in
  let result, rstats =
    Supervisor.retry policy (fun ~attempt ->
        if crashed.(server) then Error `Crashed
        else begin
          stats.sent <- stats.sent + 1;
          let fault = Fault_plan.draw plan ~server ~message ~attempt in
          (match fault with Some f -> count_fault stats f | None -> ());
          let crng = Fault_plan.channel_rng plan ~server ~message ~attempt in
          match Fault_plan.apply crng fault msg with
          | Fault_plan.Crashed ->
              crashed.(server) <- true;
              Error `Crashed
          | Fault_plan.Lost -> Error `Lost
          | Fault_plan.Delivered bytes -> merge bytes ~dup:false
          | Fault_plan.Duplicated bytes -> merge bytes ~dup:true
          | Fault_plan.Delayed (units, bytes) ->
              stats.backoff <-
                stats.backoff +. (float_of_int units *. policy.Supervisor.base_delay);
              merge bytes ~dup:false
        end)
  in
  stats.retries <- stats.retries + (rstats.Supervisor.attempts - 1);
  stats.backoff <- stats.backoff +. rstats.Supervisor.backoff;
  match result with Ok () -> true | Error _ -> false

(* Wire cost of re-reading one raw update during recovery: two endpoint
   words and a delta word. *)
let update_wire_bytes = 24

type supervised_report = {
  sup_servers : int;
  sup_updates_total : int;
  sup_messages : int; (* distinct (server, repetition) envelopes *)
  sup_attempts : int; (* send attempts, including faulted ones *)
  sup_faults : int;
  sup_faults_by_kind : (string * int) list; (* Fault_plan.kind_names order *)
  sup_retries : int;
  sup_backoff : float;
  sup_duplicates_rejected : int;
  sup_decode_errors : int;
  sup_bytes_total : int; (* bytes that crossed the channel *)
  sup_crashed_servers : int list;
  sup_reingested_servers : int list;
  sup_reingested_updates : int;
  sup_recovery_bytes : int;
  sup_lost_servers : int list;
  sup_quorum : int; (* repetitions usable for decoding *)
  sup_copies : int; (* repetition budget of the sketch *)
  sup_degraded_delta : float;
  sup_forest_edges : int;
  sup_forest_correct : bool;
  sup_merged_hash : int64; (* FNV-1a of the coordinator's serialized state *)
}

let run_supervised ?(mode = `Sequential) ?(policy = Supervisor.default)
    ?(allow_reingest = true) ~plan rng ~n ~servers ~partition stream =
  if servers < 1 then invalid_arg "Cluster_sim.run_supervised: need at least one server";
  Ds_obs.Trace.with_span "cluster.run_supervised" @@ fun () ->
  let params = Agm_sketch.default_params ~n in
  (* Same seed chain as [run]: with full recovery the coordinator's merged
     state is byte-identical to the fault-free protocol's. *)
  let shared = Prng.split_named rng "shared-sketch-seed" in
  let fresh () = Agm_sketch.create (Prng.copy shared) ~n ~params in
  let counts = Array.make servers 0 in
  let route = assign partition ~servers in
  let shard_updates = shard ~route ~servers ~counts stream in
  (* Servers sketch exactly as in the fault-free protocol but ship each
     repetition as its own checksummed envelope: the unit of shipping is the
     unit of loss, so one fault costs one repetition, not a whole sketch. *)
  let sketch_server updates =
    let sk = fresh () in
    Ds_obs.Trace.with_span "cluster.sketch" (fun () ->
        Agm_sketch.update_batch sk updates);
    let envs =
      Array.init (Agm_sketch.copies sk) (fun c ->
          Ds_obs.Trace.with_span "cluster.ship" (fun () ->
              Agm_sketch.Copy.serialize
                ?trace:(Ds_obs.Trace.current_context ())
                (Agm_sketch.Copy.slice sk c)))
    in
    (sk, envs)
  in
  let server_results = map_mode mode sketch_server shard_updates in
  let envelopes = Array.map snd server_results in
  let copies = Agm_sketch.copies (fst server_results.(0)) in
  (* The coordinator ingests envelopes through the faulted channel. Fault
     draws are stateless per (server, message, attempt), so the report is
     independent of the server-sketching mode above. *)
  let coordinator = fresh () in
  let stats = fresh_chan_stats () in
  let crashed = Array.make servers false in
  let merged = Array.make_matrix servers copies false in
  Ds_obs.Trace.with_span "cluster.deliver" (fun () ->
      for s = 0 to servers - 1 do
        for c = 0 to copies - 1 do
          if not crashed.(s) then
            merged.(s).(c) <-
              deliver ~plan ~policy ~stats ~crashed ~server:s ~message:c
                envelopes.(s).(c)
                ~absorb:
                  (Agm_sketch.Copy.absorb_result (Agm_sketch.Copy.slice coordinator c))
        done
      done);
  (* Recovery by linearity: the coordinator re-sketches a failed server's
     shard from the trace and sums the missing repetitions into its state —
     no global restart, no re-send protocol, and the recovered sum equals
     the fault-free sum bit for bit. *)
  let reingested = ref [] in
  let reingested_updates = ref 0 in
  let recovery_bytes = ref 0 in
  let lost = ref [] in
  for s = servers - 1 downto 0 do
    let missing =
      List.filter (fun c -> not merged.(s).(c)) (List.init copies (fun c -> c))
    in
    if missing <> [] then
      if allow_reingest then
        Ds_obs.Trace.with_span "cluster.recover" (fun () ->
            let replica = fresh () in
            Agm_sketch.update_batch replica shard_updates.(s);
            List.iter
              (fun c ->
                Agm_sketch.Copy.Linear.add
                  (Agm_sketch.Copy.slice coordinator c)
                  (Agm_sketch.Copy.slice replica c);
                merged.(s).(c) <- true)
              missing;
            reingested := s :: !reingested;
            reingested_updates := !reingested_updates + Array.length shard_updates.(s);
            recovery_bytes :=
              !recovery_bytes + (update_wire_bytes * Array.length shard_updates.(s)))
      else lost := s :: !lost
  done;
  (* Quorum decode: a repetition is trustworthy only if every server's
     contribution to it was merged; the surviving quorum shrinks the
     Boruvka round budget and the certified failure probability tracks it. *)
  let quorum =
    List.filter
      (fun c -> Array.for_all (fun row -> row.(c)) merged)
      (List.init copies (fun c -> c))
  in
  let forest =
    Agm_sketch.spanning_forest ~copies:(Array.of_list quorum) coordinator
  in
  let crashed_servers =
    List.filter (fun s -> crashed.(s)) (List.init servers (fun s -> s))
  in
  if Ds_obs.Metrics.enabled () then begin
    publish_chan_stats stats;
    Ds_obs.Metrics.incr m_envelopes (servers * copies);
    Ds_obs.Metrics.incr m_crashed (List.length crashed_servers);
    Ds_obs.Metrics.incr m_healed (List.length !reingested);
    Ds_obs.Metrics.incr m_reingested_updates !reingested_updates;
    Ds_obs.Metrics.incr m_recovery_bytes !recovery_bytes;
    Ds_obs.Metrics.incr m_lost (List.length !lost);
    Ds_obs.Metrics.set g_quorum (List.length quorum);
    Ds_obs.Metrics.set g_copies copies;
    Ds_obs.Metrics.set g_delta_ppm
      (int_of_float
         (Agm_sketch.certified_delta ~n ~copies:(List.length quorum) *. 1e6))
  end;
  {
    sup_servers = servers;
    sup_updates_total = Array.length stream;
    sup_messages = servers * copies;
    sup_attempts = stats.sent;
    sup_faults = stats.faults;
    sup_faults_by_kind = faults_by_kind stats;
    sup_retries = stats.retries;
    sup_backoff = stats.backoff;
    sup_duplicates_rejected = stats.duplicates_rejected;
    sup_decode_errors = stats.decode_errors;
    sup_bytes_total = stats.bytes;
    sup_crashed_servers = crashed_servers;
    sup_reingested_servers = !reingested;
    sup_reingested_updates = !reingested_updates;
    sup_recovery_bytes = !recovery_bytes;
    sup_lost_servers = !lost;
    sup_quorum = List.length quorum;
    sup_copies = copies;
    sup_degraded_delta = Agm_sketch.certified_delta ~n ~copies:(List.length quorum);
    sup_forest_edges = List.length forest;
    sup_forest_correct = forest_ok ~n stream forest;
    sup_merged_hash = Wire.fnv1a64 (Agm_sketch.serialize coordinator);
  }

let pp_supervised_report ppf r =
  Format.fprintf ppf "servers=%d updates=%d messages=%d attempts=%d@." r.sup_servers
    r.sup_updates_total r.sup_messages r.sup_attempts;
  Format.fprintf ppf "faults=%d (%s)@." r.sup_faults
    (String.concat ", "
       (List.filter_map
          (fun (k, c) -> if c = 0 then None else Some (Printf.sprintf "%s %d" k c))
          r.sup_faults_by_kind));
  Format.fprintf ppf "retries=%d backoff=%.1f dup-rejected=%d decode-errors=%d wire=%d bytes@."
    r.sup_retries r.sup_backoff r.sup_duplicates_rejected r.sup_decode_errors r.sup_bytes_total;
  Format.fprintf ppf "crashed=[%s] reingested=[%s] (%d updates, %d bytes) lost=[%s]@."
    (String.concat ";" (List.map string_of_int r.sup_crashed_servers))
    (String.concat ";" (List.map string_of_int r.sup_reingested_servers))
    r.sup_reingested_updates r.sup_recovery_bytes
    (String.concat ";" (List.map string_of_int r.sup_lost_servers));
  Format.fprintf ppf "quorum=%d/%d certified-delta=%g@." r.sup_quorum r.sup_copies
    r.sup_degraded_delta;
  Format.fprintf ppf "forest: %d edges, correct=%b merged-hash=%Lx@." r.sup_forest_edges
    r.sup_forest_correct r.sup_merged_hash

(* Supervised generic shipping: whole-envelope granularity (one message per
   server), any linear-sketch family. *)

type supervised_ship_report = {
  ss_family : string;
  ss_servers : int;
  ss_updates_total : int;
  ss_attempts : int;
  ss_faults : int;
  ss_faults_by_kind : (string * int) list;
  ss_retries : int;
  ss_backoff : float;
  ss_duplicates_rejected : int;
  ss_decode_errors : int;
  ss_bytes_total : int;
  ss_crashed_servers : int list;
  ss_reingested_servers : int list;
  ss_recovery_bytes : int;
  ss_lost_servers : int list;
  ss_matches_direct : bool;
}

let ship_supervised (type s) ?(mode = `Sequential) ?(policy = Supervisor.default)
    ?(allow_reingest = true) ~plan ((module L) : s Linear_sketch.impl) ~make ~servers
    (updates : (int * int) array) =
  if servers < 1 then invalid_arg "Cluster_sim.ship_supervised: need at least one server";
  Ds_obs.Trace.with_span "cluster.ship_supervised" @@ fun () ->
  let shards = Ds_par.Shard_ingest.(split Round_robin) ~shards:servers updates in
  let sketch_shard part =
    let sk : s = make () in
    Ds_obs.Trace.with_span "cluster.sketch" (fun () ->
        Array.iter (fun (index, delta) -> L.update sk ~index ~delta) part);
    Ds_obs.Trace.with_span "cluster.ship" (fun () ->
        Linear_sketch.serialize
          ?trace:(Ds_obs.Trace.current_context ())
          (module L) sk)
  in
  let messages = map_mode mode sketch_shard shards in
  let coordinator = make () in
  let stats = fresh_chan_stats () in
  let crashed = Array.make servers false in
  let merged = Array.make servers false in
  Ds_obs.Trace.with_span "cluster.deliver" (fun () ->
      Array.iteri
        (fun s msg ->
          merged.(s) <-
            deliver ~plan ~policy ~stats ~crashed ~server:s ~message:0 msg
              ~absorb:(Linear_sketch.absorb_result (module L) coordinator))
        messages);
  let reingested = ref [] in
  let recovery_bytes = ref 0 in
  let lost = ref [] in
  for s = servers - 1 downto 0 do
    if not merged.(s) then
      if allow_reingest then
        Ds_obs.Trace.with_span "cluster.recover" (fun () ->
            let replica = make () in
            Array.iter (fun (index, delta) -> L.update replica ~index ~delta) shards.(s);
            L.add coordinator replica;
            merged.(s) <- true;
            reingested := s :: !reingested;
            recovery_bytes := !recovery_bytes + (update_wire_bytes * Array.length shards.(s)))
      else lost := s :: !lost
  done;
  let direct = make () in
  Array.iter (fun (index, delta) -> L.update direct ~index ~delta) updates;
  let crashed_servers =
    List.filter (fun s -> crashed.(s)) (List.init servers (fun s -> s))
  in
  if Ds_obs.Metrics.enabled () then begin
    publish_chan_stats stats;
    Ds_obs.Metrics.incr m_envelopes servers;
    Ds_obs.Metrics.incr m_crashed (List.length crashed_servers);
    Ds_obs.Metrics.incr m_healed (List.length !reingested);
    Ds_obs.Metrics.incr m_recovery_bytes !recovery_bytes;
    Ds_obs.Metrics.incr m_lost (List.length !lost)
  end;
  {
    ss_family = L.family;
    ss_servers = servers;
    ss_updates_total = Array.length updates;
    ss_attempts = stats.sent;
    ss_faults = stats.faults;
    ss_faults_by_kind = faults_by_kind stats;
    ss_retries = stats.retries;
    ss_backoff = stats.backoff;
    ss_duplicates_rejected = stats.duplicates_rejected;
    ss_decode_errors = stats.decode_errors;
    ss_bytes_total = stats.bytes;
    ss_crashed_servers = crashed_servers;
    ss_reingested_servers = !reingested;
    ss_recovery_bytes = !recovery_bytes;
    ss_lost_servers = !lost;
    ss_matches_direct =
      Linear_sketch.serialize (module L) coordinator
      = Linear_sketch.serialize (module L) direct;
  }

let pp_supervised_ship_report ppf r =
  Format.fprintf ppf
    "%-16s servers=%d updates=%d attempts=%d faults=%d retries=%d dup=%d bad=%d \
     reingested=%d lost=%d ok=%b@."
    r.ss_family r.ss_servers r.ss_updates_total r.ss_attempts r.ss_faults r.ss_retries
    r.ss_duplicates_rejected r.ss_decode_errors
    (List.length r.ss_reingested_servers)
    (List.length r.ss_lost_servers) r.ss_matches_direct
