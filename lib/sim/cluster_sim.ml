open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

type partition = Round_robin | By_vertex | Random of int

type report = {
  servers : int;
  updates_total : int;
  updates_per_server : int array;
  bytes_per_server : int array;
  bytes_total : int;
  words_per_server : int;
  forest_edges : int;
  forest_correct : bool;
}

let assign partition ~servers =
  match partition with
  | Round_robin -> fun i _u -> i mod servers
  | By_vertex -> fun _i (u : Update.t) -> min u.Update.u u.Update.v mod servers
  | Random seed ->
      let rng = Prng.create seed in
      fun _i _u -> Prng.int rng servers

let run ?(mode = `Sequential) rng ~n ~servers ~partition stream =
  if servers < 1 then invalid_arg "Cluster_sim.run: need at least one server";
  let params = Agm_sketch.default_params ~n in
  (* Shared randomness: all servers and the coordinator derive identical
     sketch structure from the same seed. *)
  let shared = Prng.split_named rng "shared-sketch-seed" in
  let fresh () = Agm_sketch.create (Prng.copy shared) ~n ~params in
  let counts = Array.make servers 0 in
  let route = assign partition ~servers in
  (* Materialise each server's shard of the stream (the routing itself is
     not what the experiment measures). *)
  let shard_updates =
    let lists = Array.make servers [] in
    Array.iteri
      (fun i u ->
        let s = route i u in
        counts.(s) <- counts.(s) + 1;
        lists.(s) <- u :: lists.(s))
      stream;
    Array.map (fun l -> Array.of_list (List.rev l)) lists
  in
  (* Sketch each server's shard, then ship: serialize every shard (the
     communication the paper counts). In [`Parallel] mode the servers run
     concurrently on real domains; replicas are compatible by shared seed,
     so the mode cannot change any measured or decoded quantity. *)
  let sketch_server updates =
    let sk = fresh () in
    Agm_sketch.update_batch sk updates;
    (sk, Agm_sketch.serialize sk)
  in
  let server_results =
    match mode with
    | `Sequential -> Array.map sketch_server shard_updates
    | `Parallel pool -> Ds_par.Pool.map_array pool sketch_server shard_updates
  in
  let shards = Array.map fst server_results in
  let messages = Array.map snd server_results in
  let bytes_per_server = Array.map String.length messages in
  (* Coordinator: absorb and sum. *)
  let coordinator = fresh () in
  let scratch = fresh () in
  Array.iter
    (fun m ->
      Agm_sketch.deserialize_into scratch m;
      Agm_sketch.add coordinator scratch)
    messages;
  let forest = Agm_sketch.spanning_forest coordinator in
  (* Verification against offline ground truth. *)
  let g = Update.final_graph ~n stream in
  let forest_correct =
    List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest
    &&
    let fg = Graph.create n in
    List.iter (fun (u, v) -> if not (Graph.mem_edge fg u v) then Graph.add_edge fg u v) forest;
    Components.count fg = Components.count g
    && List.length forest = n - Components.count g
  in
  {
    servers;
    updates_total = Array.length stream;
    updates_per_server = counts;
    bytes_per_server;
    bytes_total = Array.fold_left ( + ) 0 bytes_per_server;
    words_per_server = Agm_sketch.space_in_words shards.(0);
    forest_edges = List.length forest;
    forest_correct;
  }

let pp_report ppf r =
  Format.fprintf ppf "servers=%d updates=%d (per server: min %d, max %d)@." r.servers
    r.updates_total
    (Array.fold_left min max_int r.updates_per_server)
    (Array.fold_left max 0 r.updates_per_server);
  Format.fprintf ppf "state per server: %d words; messages: %d bytes total@." r.words_per_server
    r.bytes_total;
  Format.fprintf ppf "forest: %d edges, correct=%b@." r.forest_edges r.forest_correct
