open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

type partition = Round_robin | By_vertex | Random of int

type report = {
  servers : int;
  updates_total : int;
  updates_per_server : int array;
  bytes_per_server : int array;
  bytes_total : int;
  words_per_server : int;
  forest_edges : int;
  forest_correct : bool;
}

let assign partition ~servers =
  match partition with
  | Round_robin -> fun i _u -> i mod servers
  | By_vertex -> fun _i (u : Update.t) -> min u.Update.u u.Update.v mod servers
  | Random seed ->
      let rng = Prng.create seed in
      fun _i _u -> Prng.int rng servers

let run ?(mode = `Sequential) rng ~n ~servers ~partition stream =
  if servers < 1 then invalid_arg "Cluster_sim.run: need at least one server";
  let params = Agm_sketch.default_params ~n in
  (* Shared randomness: all servers and the coordinator derive identical
     sketch structure from the same seed. *)
  let shared = Prng.split_named rng "shared-sketch-seed" in
  let fresh () = Agm_sketch.create (Prng.copy shared) ~n ~params in
  let counts = Array.make servers 0 in
  let route = assign partition ~servers in
  (* Materialise each server's shard of the stream (the routing itself is
     not what the experiment measures). *)
  let shard_updates =
    let lists = Array.make servers [] in
    Array.iteri
      (fun i u ->
        let s = route i u in
        counts.(s) <- counts.(s) + 1;
        lists.(s) <- u :: lists.(s))
      stream;
    Array.map (fun l -> Array.of_list (List.rev l)) lists
  in
  (* Sketch each server's shard, then ship: serialize every shard (the
     communication the paper counts). In [`Parallel] mode the servers run
     concurrently on real domains; replicas are compatible by shared seed,
     so the mode cannot change any measured or decoded quantity. *)
  let sketch_server updates =
    let sk = fresh () in
    Agm_sketch.update_batch sk updates;
    (sk, Agm_sketch.serialize sk)
  in
  let server_results =
    match mode with
    | `Sequential -> Array.map sketch_server shard_updates
    | `Parallel pool -> Ds_par.Pool.map_array pool sketch_server shard_updates
  in
  let shards = Array.map fst server_results in
  let messages = Array.map snd server_results in
  let bytes_per_server = Array.map String.length messages in
  (* Coordinator: absorb and sum. *)
  let coordinator = fresh () in
  let scratch = fresh () in
  Array.iter
    (fun m ->
      Agm_sketch.deserialize_into scratch m;
      Agm_sketch.add coordinator scratch)
    messages;
  let forest = Agm_sketch.spanning_forest coordinator in
  (* Verification against offline ground truth. *)
  let g = Update.final_graph ~n stream in
  let forest_correct =
    List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest
    &&
    let fg = Graph.create n in
    List.iter (fun (u, v) -> if not (Graph.mem_edge fg u v) then Graph.add_edge fg u v) forest;
    Components.count fg = Components.count g
    && List.length forest = n - Components.count g
  in
  {
    servers;
    updates_total = Array.length stream;
    updates_per_server = counts;
    bytes_per_server;
    bytes_total = Array.fold_left ( + ) 0 bytes_per_server;
    words_per_server = Agm_sketch.space_in_words shards.(0);
    forest_edges = List.length forest;
    forest_correct;
  }

let pp_report ppf r =
  Format.fprintf ppf "servers=%d updates=%d (per server: min %d, max %d)@." r.servers
    r.updates_total
    (Array.fold_left min max_int r.updates_per_server)
    (Array.fold_left max 0 r.updates_per_server);
  Format.fprintf ppf "state per server: %d words; messages: %d bytes total@." r.words_per_server
    r.bytes_total;
  Format.fprintf ppf "forest: %d edges, correct=%b@." r.forest_edges r.forest_correct

(* ------------------------------------------------------------------ *)
(* Generic shipping: the same server/coordinator round-trip for any
   sketch implementing the linear interface.                           *)

module Linear_sketch = Ds_sketch.Linear_sketch

type ship_report = {
  family : string;
  ship_servers : int;
  ship_updates_total : int;
  ship_bytes_per_server : int array;
  ship_bytes_total : int;
  ship_words_per_server : int;
  matches_direct : bool;
}

let ship (type s) ?(mode = `Sequential) ((module L) : s Linear_sketch.impl) ~make
    ~servers (updates : (int * int) array) =
  if servers < 1 then invalid_arg "Cluster_sim.ship: need at least one server";
  (* Round-robin shards; any partition gives the same coordinator state by
     linearity, so the routing is not a parameter here. *)
  let shards =
    Array.init servers (fun s ->
        let len = (Array.length updates - s + servers - 1) / servers in
        Array.init len (fun i -> updates.(s + (i * servers))))
  in
  let sketch_server part =
    let sk : s = make () in
    Array.iter (fun (index, delta) -> L.update sk ~index ~delta) part;
    Linear_sketch.serialize (module L) sk
  in
  let messages =
    match mode with
    | `Sequential -> Array.map sketch_server shards
    | `Parallel pool -> Ds_par.Pool.map_array pool sketch_server shards
  in
  let bytes_per_server = Array.map String.length messages in
  (* Coordinator: deserialize each message and sum (the wire round-trip the
     paper's distributed setting counts). *)
  let coordinator = make () in
  Array.iter (fun m -> Linear_sketch.absorb (module L) coordinator m) messages;
  (* Ground truth: the same updates sketched directly in one process. *)
  let direct = make () in
  Array.iter (fun (index, delta) -> L.update direct ~index ~delta) updates;
  let matches_direct =
    Linear_sketch.serialize (module L) coordinator
    = Linear_sketch.serialize (module L) direct
  in
  {
    family = L.family;
    ship_servers = servers;
    ship_updates_total = Array.length updates;
    ship_bytes_per_server = bytes_per_server;
    ship_bytes_total = Array.fold_left ( + ) 0 bytes_per_server;
    ship_words_per_server = L.space_in_words coordinator;
    matches_direct;
  }

let ship_families ?mode rng ~dim ~servers updates =
  let module S = Ds_sketch in
  (* Each family gets an independent child seed; [make] copies it so every
     replica (server, coordinator, direct) derives identical structure. *)
  let seeded name create =
    let seed = Prng.split_named rng name in
    fun () -> create (Prng.copy seed)
  in
  [
    ship ?mode
      (module S.One_sparse.Linear)
      ~make:(seeded "one_sparse" (fun r -> S.One_sparse.create r ~dim))
      ~servers updates;
    ship ?mode
      (module S.Sparse_recovery.Linear)
      ~make:
        (seeded "sparse_recovery" (fun r ->
             S.Sparse_recovery.create r ~dim
               ~params:(S.Sparse_recovery.default_params ~sparsity:8)))
      ~servers updates;
    ship ?mode
      (module S.Count_sketch.Linear)
      ~make:
        (seeded "count_sketch" (fun r ->
             S.Count_sketch.create r ~dim ~params:S.Count_sketch.default_params))
      ~servers updates;
    ship ?mode
      (module S.Ams_f2.Linear)
      ~make:(seeded "ams_f2" (fun r -> S.Ams_f2.create r ~dim ~params:S.Ams_f2.default_params))
      ~servers updates;
    ship ?mode
      (module S.F0.Linear)
      ~make:(seeded "f0" (fun r -> S.F0.create r ~dim ~params:S.F0.default_params))
      ~servers updates;
    ship ?mode
      (module S.L0_sampler.Linear)
      ~make:
        (seeded "l0_sampler" (fun r ->
             S.L0_sampler.create r ~dim ~params:S.L0_sampler.default_params))
      ~servers updates;
    ship ?mode
      (module S.Packed_l0.Linear)
      ~make:
        (seeded "packed_l0" (fun r ->
             S.Packed_l0.Owned.create r ~dim ~params:S.Packed_l0.default_params))
      ~servers updates;
    ship ?mode
      (module S.Sketch_table.Linear)
      ~make:
        (seeded "sketch_table" (fun r ->
             S.Sketch_table.create r ~key_dim:dim ~capacity:32 ~rows:3 ~hash_degree:6
               ~payload_len:0))
      ~servers updates;
  ]

let pp_ship_report ppf r =
  Format.fprintf ppf "%-16s servers=%d updates=%d wire=%d bytes (max/server %d) state=%d words ok=%b@."
    r.family r.ship_servers r.ship_updates_total r.ship_bytes_total
    (Array.fold_left max 0 r.ship_bytes_per_server)
    r.ship_words_per_server r.matches_direct
