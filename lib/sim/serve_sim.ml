open Ds_util
open Ds_serve
open Ds_fault

(* A deterministic, socket-free drive of the serve stack: the simulated
   clients feed SRV1 bytes straight into {!Ds_serve.Server}'s transport-
   agnostic core through {!Ds_fault.Fault_plan}'s connection-fault
   channel, and seeded kill -9 events discard the live server (queued
   frames, buffers and all) and recover a fresh one from the checkpoint
   store.  Every quantity in the report is a pure function of
   (workload seed, plan seed, knobs) — the chaos sweep in E19 diffs
   reports across reruns to prove it. *)

type report = {
  sv_streams : int;
  sv_frames : int;  (** distinct ingest frames in the workload *)
  sv_sends : int;  (** send attempts, including faulted and replayed *)
  sv_acked : int;  (** distinct frames acknowledged *)
  sv_conn_faults : int;
  sv_conn_faults_by_kind : (string * int) list;
      (** counts in {!Ds_fault.Fault_plan.conn_kind_names} order *)
  sv_overloaded : int;  (** [Overloaded] NACKs received (then retried) *)
  sv_duplicate_acks : int;  (** acks for frames already applied *)
  sv_crashes : int;
  sv_torn : int;  (** generation files deliberately torn before recovery *)
  sv_quarantined : int;  (** files quarantined across all recoveries *)
  sv_degraded_copies : int;
  sv_replayed : int;  (** frames re-sent from client ledgers after recovery *)
  sv_reconnects : int;
  sv_generations : int;  (** durable generations written *)
  sv_final_match : bool;
      (** every stream's final envelope is bit-identical to the seeded
          mirror — the paper's linearity guarantee, end to end *)
}

type client_stream = {
  spec : Loadgen.stream_spec;
  payloads : string array;
  mutable conn : Server.conn;
  reader : Frame_reader.t ref;  (* client-side response framing *)
  mutable next : int;  (* next frame index to send (0-based) *)
  mutable acked : int;  (* highest contiguous acked seq *)
  unacked : (int, string) Hashtbl.t;
  mutable inflight : int option;  (* seq awaiting a response *)
}

let fresh_conn server cs =
  cs.conn <- Server.connect server;
  cs.reader := Frame_reader.create ()

(* Pull every complete response currently buffered on the stream's
   connection. *)
let responses cs =
  Frame_reader.feed !(cs.reader) (Server.take_output cs.conn);
  let rec go acc =
    match Frame_reader.next !(cs.reader) with
    | Ok (Some payload) -> (
        match Sframe.decode_response payload with
        | Ok r -> go (r :: acc)
        | Error m -> failwith ("serve_sim: response decode: " ^ m))
    | Ok None -> List.rev acc
    | Error e -> failwith ("serve_sim: response framing: " ^ Wire.frame_error_to_string e)
  in
  go []

let rpc server cs req =
  Server.feed server cs.conn (Sframe.frame (Sframe.encode_request req));
  Server.drain server;
  match responses cs with
  | [ r ] -> r
  | rs -> failwith (Printf.sprintf "serve_sim: expected 1 response, got %d" (List.length rs))

let run ?(crash_every = 0) ?(tear_on_crash = false) ?(queue_bound = 32) ?(drain_per_tick = 8)
    ?(checkpoint_every = 64) ?(burst = 4) ~plan:fault_plan ~dir (workload : Loadgen.plan) =
  let tear_rng = Prng.split_named (Prng.create workload.Loadgen.p_seed) "serve_sim_tear" in
  let config =
    {
      (Server.default_config ~dir) with
      Server.queue_bound;
      drain_per_tick;
      checkpoint_every;
      quota_words = 16_000_000;
    }
  in
  let server = ref (Server.create config) in
  let specs = Array.of_list workload.Loadgen.p_specs in
  let sends = ref 0 in
  let conn_faults = ref 0 in
  let fault_counts = Hashtbl.create 4 in
  let overloaded = ref 0 in
  let dup_acks = ref 0 in
  let crashes = ref 0 in
  let torn = ref 0 in
  let quarantined = ref 0 in
  let degraded = ref 0 in
  let replayed = ref 0 in
  let reconnects = ref 0 in
  let acked_total = ref 0 in
  let streams =
    Array.map
      (fun spec ->
        {
          spec;
          payloads = Array.of_list (Loadgen.batches spec);
          conn = Server.connect !server;
          reader = ref (Frame_reader.create ());
          next = 0;
          acked = 0;
          unacked = Hashtbl.create 16;
          inflight = None;
        })
      specs
  in
  let create_stream cs =
    let s = cs.spec in
    match
      rpc !server cs
        (Sframe.Create
           {
             tenant = s.Loadgen.l_tenant;
             stream = s.Loadgen.l_stream;
             family = s.Loadgen.l_family;
             n = s.Loadgen.l_n;
             seed = s.Loadgen.l_seed;
           })
    with
    | Sframe.Created _ -> ()
    | Sframe.Nack { reason; _ } ->
        failwith (Format.asprintf "serve_sim: create: %a" Sframe.pp_nack reason)
    | _ -> failwith "serve_sim: create: unexpected response"
  in
  Array.iter create_stream streams;
  (* Client-side bookkeeping for one response on this stream's conn. *)
  let note_response cs = function
    | Sframe.Ack { seq; durable_seq } ->
        if seq <= cs.acked then incr dup_acks
        else begin
          cs.acked <- seq;
          incr acked_total
        end;
        Hashtbl.iter
          (fun k _ -> if k <= durable_seq then Hashtbl.remove cs.unacked k)
          (Hashtbl.copy cs.unacked);
        if cs.inflight = Some seq then cs.inflight <- None
    | Sframe.Nack { seq; reason = Sframe.Overloaded _ } ->
        incr overloaded;
        (* Roll the cursor back; the frame re-enters the send loop. *)
        if cs.inflight = Some seq then begin
          cs.inflight <- None;
          cs.next <- cs.next - 1
        end
    | Sframe.Nack { reason; _ } ->
        failwith (Format.asprintf "serve_sim: ingest: %a" Sframe.pp_nack reason)
    | _ -> failwith "serve_sim: unexpected response on ingest conn"
  in
  let pump cs = List.iter (note_response cs) (responses cs) in
  (* Send one ingest frame through the connection-fault channel.  A
     stalled or closed connection delivers a strict prefix and then
     reconnects and re-sends — drawn per (server=stream, message,
     attempt) so the whole schedule is replayable. *)
  let send_frame cs ~seq ~payload =
    let s = cs.spec in
    let msg =
      Sframe.frame
        (Sframe.encode_request
           (Sframe.Ingest
              {
                tenant = s.Loadgen.l_tenant;
                stream = s.Loadgen.l_stream;
                seq;
                payload;
              }))
    in
    let stream_id = Hashtbl.hash (s.Loadgen.l_tenant, s.Loadgen.l_stream) land 0xFFFF in
    let message = seq in
    let rec attempt_loop attempt =
      incr sends;
      let fault = Fault_plan.draw_conn fault_plan ~server:stream_id ~message ~attempt in
      (match fault with
      | Some f ->
          incr conn_faults;
          let name = Fault_plan.conn_fault_name f in
          Hashtbl.replace fault_counts name
            (1 + Option.value ~default:0 (Hashtbl.find_opt fault_counts name))
      | None -> ());
      let rng = Fault_plan.conn_rng fault_plan ~server:stream_id ~message ~attempt in
      match Fault_plan.apply_conn rng fault msg with
      | Fault_plan.Conn_delivered m -> Server.feed !server cs.conn m
      | Fault_plan.Conn_reordered_dup m ->
          (* The frame arrives, and its ghost arrives again right after:
             the watermark makes the second copy a duplicate ack. *)
          Server.feed !server cs.conn m;
          Server.feed !server cs.conn m
      | Fault_plan.Conn_prefix_stall p | Fault_plan.Conn_prefix_close p ->
          (* The tail never arrives; the connection is dead.  Feeding a
             later frame after a partial one would desynchronise the
             length-prefix stream, so the client reconnects and
             re-sends the same frame. *)
          Server.feed !server cs.conn p;
          fresh_conn !server cs;
          incr reconnects;
          attempt_loop (attempt + 1)
    in
    attempt_loop 0;
    cs.inflight <- Some seq
  in
  (* Resync one stream against a freshly recovered server: ask the
     watermark, replay the unacked suffix by linearity. *)
  let resync cs =
    fresh_conn !server cs;
    incr reconnects;
    let s = cs.spec in
    match
      rpc !server cs
        (Sframe.Seq_query { tenant = s.Loadgen.l_tenant; stream = s.Loadgen.l_stream })
    with
    | Sframe.Seqs { applied_seq; _ } ->
        cs.acked <- applied_seq;
        cs.inflight <- None;
        cs.next <- applied_seq;
        (* applied_seq frames are durable on the recovered server;
           frames above it re-enter the send loop from the retained
           payload array (the unacked ledger's job in the socket
           client; the sim keeps every payload, so it replays from the
           array and counts what a real client would have re-sent). *)
        Hashtbl.iter
          (fun k _ ->
            if k <= applied_seq then Hashtbl.remove cs.unacked k else incr replayed)
          (Hashtbl.copy cs.unacked);
        Hashtbl.reset cs.unacked
    | Sframe.Nack { reason = Sframe.Unknown_stream; _ } ->
        (* No generation ever became durable: recreate and replay all. *)
        create_stream cs;
        replayed := !replayed + cs.acked;
        cs.acked <- 0;
        cs.inflight <- None;
        cs.next <- 0;
        Hashtbl.reset cs.unacked
    | _ -> failwith "serve_sim: resync: unexpected response"
  in
  let tear_newest () =
    (* Simulated disk corruption: truncate the newest durable generation
       at a seeded offset, so the next recovery must quarantine it and
       fall back — without ever decoding the torn bytes. *)
    let newest = ref None in
    List.iter
      (fun tenant ->
        match Checkpoint.generations ~dir ~tenant with
        | g :: _ -> (
            let path = Checkpoint.gen_path ~dir ~tenant ~generation:g in
            match !newest with
            | Some (_, g') when g' >= g -> ()
            | _ -> newest := Some (path, g))
        | [] -> ())
      (Checkpoint.tenants ~dir);
    match !newest with
    | None -> false
    | Some (path, _) ->
        let len = (Unix.stat path).Unix.st_size in
        if len <= 1 then false
        else begin
          let keep = 1 + Prng.int tear_rng (len - 1) in
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd keep;
          Unix.close fd;
          true
        end
  in
  let crash () =
    incr crashes;
    (* kill -9: the live server vanishes — ingest queue, connection
       buffers, dirty registry state, everything not on disk. *)
    if tear_on_crash && tear_newest () then incr torn;
    server := Server.create config;
    let r = Server.recovery_report !server in
    quarantined := !quarantined + r.Server.r_quarantined;
    degraded := !degraded + r.Server.r_degraded_copies;
    Array.iter resync streams
  in
  let total_gens () =
    List.fold_left
      (fun acc tenant ->
        match Checkpoint.generations ~dir ~tenant with g :: _ -> acc + g | [] -> acc)
      0
      (Checkpoint.tenants ~dir)
  in
  let next_crash = ref (if crash_every > 0 then crash_every else max_int) in
  (* Progress gate: a crash must have fresh durable state to destroy, or
     an aggressive cadence (crash_every below the checkpoint interval,
     with tearing) regresses the watermark every cycle and the replay
     loop never terminates.  One checkpoint event writes every dirty
     tenant, so generation counts are demanded per tenant: one event's
     worth since the last crash — two when tearing, so the fall-back
     generation was cut in the {e current} cycle and the torn tenant's
     watermark still nets forward.  This keeps every parameterisation
     convergent without changing the schedule's determinism. *)
  let gens_needed () =
    let tenants = max 1 (List.length (Checkpoint.tenants ~dir)) in
    tenants * if tear_on_crash then 2 else 1
  in
  let gens_at_crash = ref (total_gens ()) in
  let remaining () =
    Array.exists (fun cs -> cs.next < Array.length cs.payloads || cs.inflight <> None) streams
  in
  (* [burst] throttles draining: the server only applies queued frames
     every [burst] rounds, so with many streams the bounded queue
     genuinely fills between drains and [Overloaded] NACKs fire. *)
  let round = ref 0 in
  while remaining () do
    incr round;
    Array.iter
      (fun cs ->
        if cs.inflight = None && cs.next < Array.length cs.payloads then begin
          let seq = cs.next + 1 in
          let payload = cs.payloads.(cs.next) in
          cs.next <- seq;
          Hashtbl.replace cs.unacked seq payload;
          send_frame cs ~seq ~payload
        end)
      streams;
    if !round mod burst = 0 then Server.drain !server;
    Array.iter pump streams;
    if !acked_total >= !next_crash && total_gens () >= !gens_at_crash + gens_needed () then begin
      next_crash := !acked_total + crash_every;
      crash ();
      gens_at_crash := total_gens ()
    end
  done;
  (* Settle: apply every straggler (duplicate ghosts included), force
     durability, then compare every envelope to the seeded mirror at
     full depth on fresh connections. *)
  while Server.pending_depth !server > 0 do
    Server.drain !server
  done;
  Array.iter pump streams;
  Server.checkpoint_now !server;
  let final_match = ref true in
  Array.iter
    (fun cs ->
      fresh_conn !server cs;
      let s = cs.spec in
      match
        rpc !server cs
          (Sframe.Query { tenant = s.Loadgen.l_tenant; stream = s.Loadgen.l_stream })
      with
      | Sframe.State { payload; applied_seq; _ } ->
          let frames = Loadgen.frame_count s in
          if applied_seq <> frames then final_match := false;
          if payload <> Loadgen.expected_envelope s then final_match := false
      | _ -> final_match := false)
    streams;
  let generations = total_gens () in
  {
    sv_streams = Array.length streams;
    sv_frames = Array.fold_left (fun a cs -> a + Array.length cs.payloads) 0 streams;
    sv_sends = !sends;
    sv_acked = !acked_total;
    sv_conn_faults = !conn_faults;
    sv_conn_faults_by_kind =
      List.map
        (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt fault_counts k)))
        Fault_plan.conn_kind_names;
    sv_overloaded = !overloaded;
    sv_duplicate_acks = !dup_acks;
    sv_crashes = !crashes;
    sv_torn = !torn;
    sv_quarantined = !quarantined;
    sv_degraded_copies = !degraded;
    sv_replayed = !replayed;
    sv_reconnects = !reconnects;
    sv_generations = generations;
    sv_final_match = !final_match;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>serve sim: %d streams, %d frames@,\
     sends %d (conn faults %d: %a)@,\
     acked %d, overloaded %d, duplicate acks %d@,\
     crashes %d (torn %d, quarantined %d, degraded copies %d)@,\
     replayed %d, reconnects %d, generations %d@,\
     final envelopes bit-identical: %b@]"
    r.sv_streams r.sv_frames r.sv_sends r.sv_conn_faults
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (k, c) -> Format.fprintf ppf "%s %d" k c))
    r.sv_conn_faults_by_kind r.sv_acked r.sv_overloaded r.sv_duplicate_acks r.sv_crashes
    r.sv_torn r.sv_quarantined r.sv_degraded_copies r.sv_replayed r.sv_reconnects
    r.sv_generations r.sv_final_match
