(** A simulation of the paper's distributed setting (Section 1): the update
    stream is partitioned across [s] servers; each server sketches its shard
    locally using shared seed-derived randomness; at query time the servers
    ship their {e serialized} sketches to a coordinator, which sums them and
    decodes global structure. The simulator accounts bytes on the wire and
    words of state per server, which is the tradeoff (communication vs
    re-streaming) the paper's introduction argues for.

    The simulated primitive is the AGM connectivity stack (the one whose
    serialization is wired end-to-end); the measured quantities generalize
    to every linear sketch in the library. *)

type partition =
  | Round_robin  (** update [i] goes to server [i mod s] *)
  | By_vertex  (** updates go to the server owning [min u v] (locality) *)
  | Random of int  (** seeded random assignment *)

type report = {
  servers : int;
  updates_total : int;
  updates_per_server : int array;
  bytes_per_server : int array;  (** serialized sketch sizes *)
  bytes_total : int;
  words_per_server : int;  (** in-memory sketch state per server *)
  forest_edges : int;
  forest_correct : bool;  (** verified against the offline ground truth *)
}

val run :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  n:int ->
  servers:int ->
  partition:partition ->
  Ds_stream.Update.t array ->
  report
(** Shards the stream, sketches per server, serializes, merges at the
    coordinator, extracts the spanning forest and verifies it against the
    offline final graph of the stream. [`Parallel pool] (default
    [`Sequential]) runs the servers concurrently on real domains; because
    all servers derive their sketch structure from the shared seed, the
    mode changes wall-clock only — every report field is identical. *)

val pp_report : Format.formatter -> report -> unit

(** {2 Generic shipping}

    The same server → coordinator round-trip for {e any} sketch implementing
    {!Ds_sketch.Linear_sketch.S}: shard the [(index, delta)] stream, sketch
    each shard with a seed-compatible replica, serialize, have the
    coordinator deserialize-and-sum, and check the summed state is
    byte-identical (on the wire) to sketching the whole stream directly. *)

type ship_report = {
  family : string;  (** the sketch family shipped *)
  ship_servers : int;
  ship_updates_total : int;
  ship_bytes_per_server : int array;  (** serialized message sizes *)
  ship_bytes_total : int;
  ship_words_per_server : int;  (** in-memory state per replica *)
  matches_direct : bool;
      (** coordinator's merged state serializes identically to a direct
          single-process sketch of the same stream *)
}

val ship :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  's Ds_sketch.Linear_sketch.impl ->
  make:(unit -> 's) ->
  servers:int ->
  (int * int) array ->
  ship_report
(** [ship impl ~make ~servers updates]: [make] must mint seed-compatible
    replicas (typically from copies of one shared PRNG); it is called once
    per server plus twice at the coordinator (merge target and direct
    ground truth). Shards are round-robin — by linearity the partition
    cannot change the merged state. *)

val ship_families :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  dim:int ->
  servers:int ->
  (int * int) array ->
  ship_report list
(** {!ship} across the library's registered linear-sketch families
    (one-sparse, sparse recovery, count sketch, AMS F2, F0, L0 sampler,
    packed L0, sketch table) with default parameters over a [dim]-length
    vector — experiment E13's full-inventory sweep. *)

val pp_ship_report : Format.formatter -> ship_report -> unit
