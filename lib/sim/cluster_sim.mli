(** A simulation of the paper's distributed setting (Section 1): the update
    stream is partitioned across [s] servers; each server sketches its shard
    locally using shared seed-derived randomness; at query time the servers
    ship their {e serialized} sketches to a coordinator, which sums them and
    decodes global structure. The simulator accounts bytes on the wire and
    words of state per server, which is the tradeoff (communication vs
    re-streaming) the paper's introduction argues for.

    The simulated primitive is the AGM connectivity stack (the one whose
    serialization is wired end-to-end); the measured quantities generalize
    to every linear sketch in the library. *)

type partition =
  | Round_robin  (** update [i] goes to server [i mod s] *)
  | By_vertex  (** updates go to the server owning [min u v] (locality) *)
  | Random of int  (** seeded random assignment *)

type report = {
  servers : int;
  updates_total : int;
  updates_per_server : int array;
  bytes_per_server : int array;  (** serialized sketch sizes *)
  bytes_total : int;
  words_per_server : int;  (** in-memory sketch state per server *)
  forest_edges : int;
  forest_correct : bool;  (** verified against the offline ground truth *)
}

val run :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  n:int ->
  servers:int ->
  partition:partition ->
  Ds_stream.Update.t array ->
  report
(** Shards the stream, sketches per server, serializes, merges at the
    coordinator, extracts the spanning forest and verifies it against the
    offline final graph of the stream. [`Parallel pool] (default
    [`Sequential]) runs the servers concurrently on real domains; because
    all servers derive their sketch structure from the shared seed, the
    mode changes wall-clock only — every report field is identical. *)

val pp_report : Format.formatter -> report -> unit
