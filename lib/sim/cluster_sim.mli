(** A simulation of the paper's distributed setting (Section 1): the update
    stream is partitioned across [s] servers; each server sketches its shard
    locally using shared seed-derived randomness; at query time the servers
    ship their {e serialized} sketches to a coordinator, which sums them and
    decodes global structure. The simulator accounts bytes on the wire and
    words of state per server, which is the tradeoff (communication vs
    re-streaming) the paper's introduction argues for.

    The simulated primitive is the AGM connectivity stack (the one whose
    serialization is wired end-to-end); the measured quantities generalize
    to every linear sketch in the library. *)

type partition =
  | Round_robin  (** update [i] goes to server [i mod s] *)
  | By_vertex  (** updates go to the server owning [min u v] (locality) *)
  | Random of int  (** seeded random assignment *)

type report = {
  servers : int;
  updates_total : int;
  updates_per_server : int array;
  bytes_per_server : int array;  (** serialized sketch sizes *)
  bytes_total : int;
  words_per_server : int;  (** in-memory sketch state per server *)
  forest_edges : int;
  forest_correct : bool;  (** verified against the offline ground truth *)
}

val run :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  n:int ->
  servers:int ->
  partition:partition ->
  Ds_stream.Update.t array ->
  report
(** Shards the stream, sketches per server, serializes, merges at the
    coordinator, extracts the spanning forest and verifies it against the
    offline final graph of the stream. [`Parallel pool] (default
    [`Sequential]) runs the servers concurrently on real domains; because
    all servers derive their sketch structure from the shared seed, the
    mode changes wall-clock only — every report field is identical. *)

val pp_report : Format.formatter -> report -> unit

(** {2 Generic shipping}

    The same server → coordinator round-trip for {e any} sketch implementing
    {!Ds_sketch.Linear_sketch.S}: shard the [(index, delta)] stream, sketch
    each shard with a seed-compatible replica, serialize, have the
    coordinator deserialize-and-sum, and check the summed state is
    byte-identical (on the wire) to sketching the whole stream directly. *)

type ship_report = {
  family : string;  (** the sketch family shipped *)
  ship_servers : int;
  ship_updates_total : int;
  ship_bytes_per_server : int array;  (** serialized message sizes *)
  ship_bytes_total : int;
  ship_words_per_server : int;  (** in-memory state per replica *)
  matches_direct : bool;
      (** coordinator's merged state serializes identically to a direct
          single-process sketch of the same stream *)
}

val ship :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  's Ds_sketch.Linear_sketch.impl ->
  make:(unit -> 's) ->
  servers:int ->
  (int * int) array ->
  ship_report
(** [ship impl ~make ~servers updates]: [make] must mint seed-compatible
    replicas (typically from copies of one shared PRNG); it is called once
    per server plus twice at the coordinator (merge target and direct
    ground truth). Shards are round-robin — by linearity the partition
    cannot change the merged state. *)

val ship_families :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  dim:int ->
  servers:int ->
  (int * int) array ->
  ship_report list
(** {!ship} across the library's registered linear-sketch families
    (one-sparse, sparse recovery, count sketch, AMS F2, F0, L0 sampler,
    packed L0, sketch table) with default parameters over a [dim]-length
    vector — experiment E13's full-inventory sweep. *)

val pp_ship_report : Format.formatter -> ship_report -> unit

(** {2 Supervised (self-healing) runs}

    The same protocol pushed through a deterministically faulted channel
    ({!Ds_fault.Fault_plan}), with a coordinator that validates every
    envelope through the typed decode interface, retries transient faults
    with capped exponential backoff ({!Ds_fault.Supervisor}), deduplicates
    by ledger, recovers crashed servers by re-ingesting their shard trace
    (sound by linearity: the recovered sum is bit-identical to the
    fault-free sum) and, when recovery is forbidden, degrades to decoding
    from the surviving quorum of sketch repetitions with an honestly
    reported failure probability. *)

type supervised_report = {
  sup_servers : int;
  sup_updates_total : int;
  sup_messages : int;  (** distinct (server, repetition) envelopes *)
  sup_attempts : int;  (** send attempts, including faulted ones *)
  sup_faults : int;
  sup_faults_by_kind : (string * int) list;
      (** counts in {!Ds_fault.Fault_plan.kind_names} order *)
  sup_retries : int;
  sup_backoff : float;  (** total simulated waiting, in policy time units *)
  sup_duplicates_rejected : int;
  sup_decode_errors : int;  (** envelopes rejected by checksum/shape checks *)
  sup_bytes_total : int;  (** bytes that actually crossed the channel *)
  sup_crashed_servers : int list;
  sup_reingested_servers : int list;
  sup_reingested_updates : int;
  sup_recovery_bytes : int;  (** wire cost of re-reading recovered shards *)
  sup_lost_servers : int list;  (** crashed and not recovered *)
  sup_quorum : int;  (** repetitions every server contributed to *)
  sup_copies : int;  (** the sketch's repetition budget *)
  sup_degraded_delta : float;  (** {!Ds_agm.Agm_sketch.certified_delta} of the quorum *)
  sup_forest_edges : int;
  sup_forest_correct : bool;
  sup_merged_hash : int64;
      (** FNV-1a of the coordinator's serialized merged state — equal to the
          fault-free run's hash whenever every shard was merged or recovered *)
}

val run_supervised :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  ?policy:Ds_fault.Supervisor.policy ->
  ?allow_reingest:bool ->
  plan:Ds_fault.Fault_plan.t ->
  Ds_util.Prng.t ->
  n:int ->
  servers:int ->
  partition:partition ->
  Ds_stream.Update.t array ->
  supervised_report
(** Like {!run}, but each server ships every sketch repetition as its own
    checksummed envelope through the faulted channel, so one fault costs one
    repetition. The coordinator retries per [policy]; crashes are sticky per
    server. With [allow_reingest] (default) missing repetitions are rebuilt
    from the server's shard trace and summed in — under any plan the merged
    state then equals the fault-free state bit for bit. With
    [~allow_reingest:false] a permanently failed server is reported lost and
    decoding falls back to the quorum of fully-merged repetitions, with
    [sup_degraded_delta] certifying what the decode is still worth. Fault
    draws are stateless per (server, message, attempt) coordinate, so the
    report is identical in [`Sequential] and [`Parallel] modes and across
    reruns with an equal-seed plan. *)

val pp_supervised_report : Format.formatter -> supervised_report -> unit

type supervised_ship_report = {
  ss_family : string;
  ss_servers : int;
  ss_updates_total : int;
  ss_attempts : int;
  ss_faults : int;
  ss_faults_by_kind : (string * int) list;
  ss_retries : int;
  ss_backoff : float;
  ss_duplicates_rejected : int;
  ss_decode_errors : int;
  ss_bytes_total : int;
  ss_crashed_servers : int list;
  ss_reingested_servers : int list;
  ss_recovery_bytes : int;
  ss_lost_servers : int list;
  ss_matches_direct : bool;
      (** the healed coordinator serializes identically to a direct
          single-process sketch — [false] only if a server was lost *)
}

val ship_supervised :
  ?mode:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  ?policy:Ds_fault.Supervisor.policy ->
  ?allow_reingest:bool ->
  plan:Ds_fault.Fault_plan.t ->
  's Ds_sketch.Linear_sketch.impl ->
  make:(unit -> 's) ->
  servers:int ->
  (int * int) array ->
  supervised_ship_report
(** {!ship} through the faulted channel, at whole-envelope granularity (one
    message per server, message index 0). Same retry, dedup, re-ingest and
    loss accounting as {!run_supervised}. *)

val pp_supervised_ship_report : Format.formatter -> supervised_ship_report -> unit
