(** Deterministic chaos harness for the serve layer.

    Drives {!Ds_serve.Server}'s transport-agnostic core with a seeded
    {!Ds_serve.Loadgen} workload pushed through
    {!Ds_fault.Fault_plan}'s connection-fault channel (partial frame
    then stall, mid-frame disconnect, reordered duplicate), with seeded
    kill -9 events that discard the live server — queue, buffers,
    un-checkpointed state — and recover a fresh one from the checkpoint
    store, optionally tearing the newest generation first to force the
    quarantine-and-fall-back path.

    Every report field is a pure function of (workload seed, plan,
    knobs): reruns are byte-identical, which is what experiment E19
    asserts. *)

type report = {
  sv_streams : int;
  sv_frames : int;
  sv_sends : int;
  sv_acked : int;
  sv_conn_faults : int;
  sv_conn_faults_by_kind : (string * int) list;
  sv_overloaded : int;
  sv_duplicate_acks : int;
  sv_crashes : int;
  sv_torn : int;
  sv_quarantined : int;
  sv_degraded_copies : int;
  sv_replayed : int;
  sv_reconnects : int;
  sv_generations : int;
  sv_final_match : bool;
}

val run :
  ?crash_every:int ->
  ?tear_on_crash:bool ->
  ?queue_bound:int ->
  ?drain_per_tick:int ->
  ?checkpoint_every:int ->
  ?burst:int ->
  plan:Ds_fault.Fault_plan.t ->
  dir:string ->
  Ds_serve.Loadgen.plan ->
  report
(** [crash_every = k] kills the server after every [k] distinct acks
    (0 = never).  [queue_bound]/[drain_per_tick] are set low by default
    so backpressure genuinely fires.  The terminal invariant —
    [sv_final_match] — demands every stream's envelope equal the seeded
    mirror bit for bit despite faults, crashes and replays: linearity,
    end to end. *)

val pp_report : Format.formatter -> report -> unit
