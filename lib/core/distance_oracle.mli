(** The paper's motivating application, packaged: an approximate
    shortest-path-distance oracle built from a dynamic stream in two passes.

    Construction sketches the stream with {!Two_pass_spanner} (unweighted)
    or {!Weighted_spanner} (weighted); queries run single-source searches on
    the retained spanner, memoised per source. Distance estimates [d^] obey
    [d <= d^ <= stretch * d]. *)

type t

val of_stream :
  Ds_util.Prng.t -> n:int -> k:int -> Ds_stream.Update.t array -> t
(** Two passes; stretch [2^k]. *)

val checkpoint_stream :
  Ds_util.Prng.t -> n:int -> k:int -> Ds_stream.Update.t array -> string
(** Pass 1 only; the serialised pass boundary
    (see {!Two_pass_spanner.checkpoint}). *)

val resume_stream :
  Ds_util.Prng.t -> n:int -> k:int -> checkpoint:string -> Ds_stream.Update.t array -> t
(** Finish construction from a checkpoint taken with the same seed, [n] and
    [k]; the oracle is identical to one built by {!of_stream} in an
    uninterrupted process.
    @raise Failure on a corrupt or mismatched checkpoint. *)

val of_weighted_stream :
  Ds_util.Prng.t ->
  n:int ->
  k:int ->
  gamma:float ->
  w_min:float ->
  w_max:float ->
  Ds_stream.Update.weighted array ->
  t
(** Two passes per weight class; stretch [2^k (1 + gamma)]. *)

val query : t -> int -> int -> float
(** Estimated distance; [infinity] if disconnected in the spanner. O(m) on
    first use of a source, O(1) after (memoised). *)

val stretch : t -> float
(** The multiplicative guarantee of this oracle's estimates. *)

val spanner_edges : t -> int
val space_words : t -> int
(** Sketch state used during construction (the oracle itself then keeps
    only the spanner). *)
