open Ds_util
open Ds_sketch
open Ds_graph
open Ds_stream
open Ds_agm

type params = {
  d : int;
  degree_factor : float;
  center_rate_factor : float;
  sampler : L0_sampler.params;
  f0 : F0.params;
  agm : Agm_sketch.params;
  hash_degree : int;
}

let default_params ~n ~d =
  {
    d;
    degree_factor = 1.0;
    center_rate_factor = 1.5;
    sampler = L0_sampler.default_params;
    f0 = { F0.default_params with reps = 3 };
    agm = Agm_sketch.default_params ~n;
    hash_degree = 6;
  }

type diagnostics = {
  centers : int;
  low_degree : int;
  high_degree : int;
  degree_misclassified : int;
  orphan_high : int;
}

type result = { spanner : Graph.t; space_words : int; diagnostics : diagnostics }

let distortion_bound ~n ~d =
  2.0 +. (8.0 *. (float_of_int n /. float_of_int d))

let space_bound ~n ~d =
  let nf = float_of_int n in
  nf *. float_of_int d *. log (max 2.0 nf) /. log 2.0

let m_updates = Ds_obs.Metrics.counter "additive.updates"
let m_misclassified = Ds_obs.Metrics.counter "additive.degree_misclassified"
let m_orphans = Ds_obs.Metrics.counter "additive.orphan_high"

let run rng ~n ~params:prm stream =
  if prm.d < 1 then invalid_arg "Additive_spanner.run: d must be >= 1";
  let rng = Prng.split_named rng "additive_spanner" in
  let log2n = F0.levels_for n in
  let threshold =
    max 2 (int_of_float (ceil (prm.degree_factor *. float_of_int (prm.d * log2n))))
  in
  (* Center set C at rate ~ factor/d. *)
  let center_rate = min 1.0 (prm.center_rate_factor /. float_of_int prm.d) in
  let crng = Prng.split_named rng "centers" in
  let is_center = Array.init n (fun _ -> Prng.bernoulli crng center_rate) in
  (* Per-vertex sketches. *)
  let deg_params =
    { Sparse_recovery.sparsity = 2 * threshold; rows = 3; hash_degree = prm.hash_degree }
  in
  let deg_proto = Sparse_recovery.create (Prng.split_named rng "nbr") ~dim:n ~params:deg_params in
  let nbr_sketch = Array.init n (fun _ -> Sparse_recovery.clone_zero deg_proto) in
  let f0_rng = Prng.split_named rng "f0" in
  let deg_est = Array.init n (fun _ -> F0.create (Prng.copy f0_rng) ~dim:n ~params:prm.f0) in
  let samp_rng = Prng.split_named rng "samp" in
  let center_sampler =
    Array.init n (fun _ -> L0_sampler.create (Prng.copy samp_rng) ~dim:n ~params:prm.sampler)
  in
  let agm = Agm_sketch.create (Prng.split_named rng "agm") ~n ~params:prm.agm in
  (* ---- The single pass. ---- *)
  Ds_obs.Metrics.incr m_updates (Array.length stream);
  (Ds_obs.Trace.with_span "additive.pass" @@ fun () ->
   Array.iter
     (fun (u : Update.t) ->
       let delta = Update.delta u in
       let touch a b =
         Sparse_recovery.update nbr_sketch.(a) ~index:b ~delta;
         F0.update deg_est.(a) ~index:b ~delta;
         if is_center.(b) then L0_sampler.update center_sampler.(a) ~index:b ~delta
       in
       touch u.Update.u u.Update.v;
       touch u.Update.v u.Update.u;
       Agm_sketch.update agm ~u:u.Update.u ~v:u.Update.v ~delta)
     stream);
  (* ---- Post-processing. ---- *)
  let spanner = Graph.create n in
  let add a b = if a <> b && not (Graph.mem_edge spanner a b) then Graph.add_edge spanner a b in
  let e_low = Graph.create n in
  let parent = Array.make n (-1) in
  let low = ref 0 and high = ref 0 and misclassified = ref 0 and orphan = ref 0 in
  for u = 0 to n - 1 do
    if F0.estimate deg_est.(u) <= threshold then begin
      incr low;
      match Sparse_recovery.decode nbr_sketch.(u) with
      | Some assoc ->
          List.iter (fun (v, m) -> if m > 0 && not (Graph.mem_edge e_low u v) then Graph.add_edge e_low u v) assoc
      | None -> incr misclassified
    end
    else begin
      incr high;
      match L0_sampler.sample center_sampler.(u) with
      | Some (w, _) when w <> u -> parent.(u) <- w
      | Some _ | None -> incr orphan
    end
  done;
  (* E_low into the spanner, and out of the connectivity sketches. *)
  Graph.iter_edges e_low (fun a b -> add a b);
  Agm_sketch.subtract_graph agm e_low;
  (* Star forest F: high-degree vertices hang off their center. Centers that
     are themselves high-degree may also hang off another center; that still
     satisfies the star-cluster argument since we contract by labels below. *)
  for u = 0 to n - 1 do
    if parent.(u) >= 0 then add u parent.(u)
  done;
  (* Supernode labels: the star of each center collapses. A vertex with no
     parent and no center role is its own supernode. *)
  let labels = Array.init n (fun v -> if parent.(v) >= 0 then parent.(v) else v) in
  let forest = Agm_sketch.spanning_forest ~labels agm in
  List.iter (fun (a, b) -> add a b) forest;
  let num_centers = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 is_center in
  let space =
    Array.fold_left (fun acc s -> acc + Sparse_recovery.space_in_words s) 0 nbr_sketch
    + Array.fold_left (fun acc s -> acc + F0.space_in_words s) 0 deg_est
    + Array.fold_left (fun acc s -> acc + L0_sampler.space_in_words s) 0 center_sampler
    + Agm_sketch.space_in_words agm
  in
  if Ds_obs.Metrics.enabled () then begin
    Ds_obs.Metrics.incr m_misclassified !misclassified;
    Ds_obs.Metrics.incr m_orphans !orphan;
    (* Wire bytes: the AGM sketch is the dominant shippable state; the
       per-vertex recovery sketches live coordinator-side only. *)
    Ds_obs.Ledger.record ~phase:"additive.total" ~words:space
      ~wire_bytes:(String.length (Agm_sketch.serialize agm))
      (space_bound ~n ~d:prm.d)
  end;
  {
    spanner;
    space_words = space;
    diagnostics =
      {
        centers = num_centers;
        low_degree = !low;
        high_degree = !high;
        degree_misclassified = !misclassified;
        orphan_high = !orphan;
      };
  }
