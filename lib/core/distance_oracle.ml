open Ds_graph

type backend =
  | Unweighted of Graph.t
  | Weighted of Weighted_graph.t

type t = {
  backend : backend;
  stretch : float;
  space_words : int;
  cache : (int, float array) Hashtbl.t; (* source -> distances *)
}

let of_result ~k (r : Two_pass_spanner.result) =
  {
    backend = Unweighted r.Two_pass_spanner.spanner;
    stretch = float_of_int (1 lsl k);
    space_words = r.Two_pass_spanner.space_words;
    cache = Hashtbl.create 16;
  }

let of_stream rng ~n ~k stream =
  of_result ~k
    (Two_pass_spanner.run rng ~n ~params:(Two_pass_spanner.default_params ~k) stream)

let checkpoint_stream rng ~n ~k stream =
  Two_pass_spanner.checkpoint rng ~n ~params:(Two_pass_spanner.default_params ~k) stream

let resume_stream rng ~n ~k ~checkpoint stream =
  of_result ~k
    (Two_pass_spanner.resume rng ~n
       ~params:(Two_pass_spanner.default_params ~k)
       ~checkpoint stream)

let of_weighted_stream rng ~n ~k ~gamma ~w_min ~w_max stream =
  let r =
    Weighted_spanner.run rng ~n
      ~params:(Two_pass_spanner.default_params ~k)
      ~gamma ~w_min ~w_max stream
  in
  {
    backend = Weighted r.Weighted_spanner.spanner;
    stretch = Weighted_spanner.stretch_bound ~k ~gamma;
    space_words = r.Weighted_spanner.space_words;
    cache = Hashtbl.create 16;
  }

let distances_from t source =
  match Hashtbl.find_opt t.cache source with
  | Some d -> d
  | None ->
      let d =
        match t.backend with
        | Unweighted g ->
            Array.map
              (fun x -> if x = max_int then infinity else float_of_int x)
              (Bfs.distances g ~source)
        | Weighted g -> Dijkstra.distances g ~source
      in
      Hashtbl.replace t.cache source d;
      d

let query t u v = (distances_from t u).(v)
let stretch t = t.stretch

let spanner_edges t =
  match t.backend with
  | Unweighted g -> Graph.num_edges g
  | Weighted g -> Weighted_graph.num_edges g

let space_words t = t.space_words
