(** Theorem 1: the two-pass, [~O(n^{1+1/k})]-space streaming construction of
    a [2^k]-spanner (Algorithms 1 and 2).

    Pass 1 maintains, for every vertex [u], sampling level [j] and center
    level [r], the linear sketch [S^r_j(u)] of the edges from [u] into [C_r]
    restricted to the sampled pair set [E_j]. After the pass, cluster trees
    are grown bottom-up: summing member sketches (linearity!) yields a sketch
    of the edges leaving a whole cluster towards [C_{i+1}], from which a
    parent and a witness edge are decoded.

    Pass 2 gives every terminal cluster [Tu] a linear hash table keyed by
    outside vertices [v]; each key's payload sketches [N(v) ∩ Tu], so after
    the pass one edge into the cluster is recovered for every outside
    neighbour — exactly the edge set the offline algorithm adds.

    The [accessed_edges] field implements the augmentation of Claims 16/18/20
    used by the spectral sparsifier: every edge of [G] that any successful
    sketch decode revealed is reported. *)

type params = {
  k : int;  (** stretch exponent: the spanner has stretch [<= 2^k] *)
  sketch_sparsity : int;  (** recovery budget of each [S^r_j] (paper: [O(log n)]) *)
  sketch_rows : int;
  table_rows : int;
  capacity_factor : float;
      (** terminal-table cells = [factor * log2 n * n^((i+1)/k)], capped at [2n] *)
  payload : Ds_sketch.Packed_l0.params;  (** per-key neighbourhood sampler *)
  hash_degree : int;
}

val default_params : k:int -> params

type diagnostics = {
  terminals_per_level : int array;
  pass1_decode_failures : int;  (** cluster attach scans that hit an undecodable window *)
  table_decode_failures : int;  (** terminal tables that failed to decode *)
  payload_decode_failures : int;  (** keys whose neighbourhood sampler failed *)
  recovered_edges : int;  (** pass-2 edges added to the spanner *)
}

type result = {
  spanner : Ds_graph.Graph.t;
  accessed_edges : (int * int) list;
  clustering : Clustering.t;
  space_words : int;  (** total words of sketch state across both passes *)
  diagnostics : diagnostics;
}

val run :
  ?ingest:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  n:int ->
  params:params ->
  Ds_stream.Update.t array ->
  result
(** Processes the stream twice (the two passes); the stream array itself is
    the only re-readable input, exactly as in the model. [`Parallel pool]
    (default [`Sequential]) fills the pass-1 sketches by sharding the stream
    across domains into compatible zero replicas and summing them — by
    linearity the merged state, and therefore the output spanner, is
    bit-identical to sequential ingestion. *)

val space_bound : n:int -> k:int -> float
(** The Theorem 1 bound [~O(n^{1+1/k})] (unit constant, one log factor) in
    words, for experiment tables. *)

(** {2 Pass-boundary checkpointing}

    The state alive at the boundary between the two passes is exactly the
    pass-1 sketch counters — the structure (hash functions, centers, the
    level hash) is seed-derived and rebuilt by replaying the same PRNG
    chain. [checkpoint] serialises that state into a versioned, checksummed
    blob; [resume], given the {e same} caller PRNG, [n], [params] and
    stream, rebuilds the structure, loads the counters and runs the
    clustering plus pass 2, producing a result bit-identical to an
    uninterrupted {!run} — across process boundaries. *)

val checkpoint :
  ?ingest:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  n:int ->
  params:params ->
  Ds_stream.Update.t array ->
  string
(** Run pass 1 only and serialise its state. The caller PRNG is consumed
    exactly as by {!run}. *)

val resume :
  Ds_util.Prng.t ->
  n:int ->
  params:params ->
  checkpoint:string ->
  Ds_stream.Update.t array ->
  result
(** Rebuild pass-1 structure from the PRNG chain, restore the checkpointed
    counters, and finish: clustering, pass 2 over the stream, spanner
    assembly. [run rng ... stream] and
    [resume rng ... ~checkpoint:(checkpoint rng ... stream) stream] (with
    equal-seed PRNGs) return identical results.
    @raise Failure if the checkpoint is corrupt, truncated, or was taken
    with different [n]/[params]. *)

(** Why a checkpoint was rejected, in the order the checks run — the typed
    face of {!resume} for callers that must branch on failure (the CLI's
    clean exit-code path, the self-healing fallback below) instead of
    parsing exception strings. *)
type checkpoint_error =
  | Truncated of { length : int; min_length : int }
      (** shorter than any well-formed checkpoint *)
  | Checksum_mismatch  (** corrupt or cut short; caught before any parsing *)
  | Wrong_magic of { got : string }  (** not a TPS1 checkpoint at all *)
  | Header_mismatch of { field : string }
      (** a valid checkpoint taken with different [n], [params] or level
          count — resuming it would decode garbage *)
  | Malformed_body of string
      (** the body failed to parse despite a valid checksum (forged or
          writer bug) *)
  | Trailing_bytes of int  (** the body did not consume the blob *)

val checkpoint_error_to_string : checkpoint_error -> string
val pp_checkpoint_error : Format.formatter -> checkpoint_error -> unit

val resume_result :
  Ds_util.Prng.t ->
  n:int ->
  params:params ->
  checkpoint:string ->
  Ds_stream.Update.t array ->
  (result, checkpoint_error) Stdlib.result
(** {!resume} with a typed verdict instead of an exception. *)

val resume_or_restart :
  ?ingest:[ `Sequential | `Parallel of Ds_par.Pool.t ] ->
  Ds_util.Prng.t ->
  n:int ->
  params:params ->
  checkpoint:string ->
  Ds_stream.Update.t array ->
  result * [ `Resumed | `Recomputed of checkpoint_error ]
(** Self-healing resume: try the checkpoint, and if it is rejected for any
    reason fall back to recomputing pass 1 from the stream (which the model
    allows — the stream array is the re-readable input). Because the PRNG
    chain is derived without consuming the caller generator, the fallback
    result is bit-identical to an uninterrupted {!run}; the verdict reports
    which path produced it and, when recomputed, why the checkpoint was
    rejected. *)
