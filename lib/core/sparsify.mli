(** Algorithm 6 / Corollary 2: AUGMENTED-SPANNER-SPARSIFY — the two-pass
    spectral sparsifier.

    Pipeline: {!Estimate} builds the robust-connectivity oracle (two passes,
    shared with everything else since all structures are sketched from the
    same stream); then [Z] independent invocations of {!Sample_spanner} are
    averaged, so edge [e] receives weight
    [ (1/Z) * sum_s 2^{j(e)} * X^s_e ] with [X^s_e = 1] iff [e] survived
    level [j(e)] of invocation [s] and was output by the augmented spanner.
    Lemma 22: the result is a [(1 ± O(eps))]-spectral sparsifier whp when
    [Z = O(alpha^2 log n / eps^3)].

    All sampling decisions are made by seed-derived hash functions, which is
    how Section 6.3 de-randomises the [Omega(n^2)] ideal random bits (our
    stand-in for Nisan's generator; see DESIGN.md). *)

type params = {
  z_rounds : int;  (** Z: invocations of SAMPLE-AUGMENTED-SPANNER *)
  h_levels : int;  (** H: sampling levels inside each invocation *)
  oversample_shift : int;
      (** sample each edge [shift] levels denser than its [q_hat] level —
          unbiased, cuts variance by [2^-shift], grows size by [2^shift]
          (a laptop-scale substitute for very large [Z]) *)
  estimate : Estimate.params;
  spanner : Two_pass_spanner.params;  (** stretch of the sampling spanners *)
}

exception Invalid_eps of float
(** Raised (with the offending value) on [eps <= 0], [eps >= 1] or NaN —
    accuracies for which the round budget would be nonsense and the
    [(1 ± eps)] guarantee vacuous. *)

val validate_eps : float -> unit
(** @raise Invalid_eps unless [0 < eps < 1]. *)

val default_params : k:int -> eps:float -> n:int -> params
(** Scales [z_rounds] like [log n / eps] (scaled-down from the paper's
    [alpha^2 log n / eps^3], which is far beyond laptop scale; the
    experiment tables report the measured quality next to the budget).
    @raise Invalid_eps unless [0 < eps < 1]. *)

type result = {
  sparsifier : Ds_graph.Weighted_graph.t;
  space_words : int;
  rounds : int;
}

val run : Ds_util.Prng.t -> n:int -> params:params -> Ds_stream.Update.t array -> result

val space_bound : n:int -> eps:float -> float
(** Corollary 2's [n * 2^O(sqrt(log n)) / eps^4] in words (unit constant). *)
