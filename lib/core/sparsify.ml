open Ds_util
open Ds_graph

type params = {
  z_rounds : int;
  h_levels : int;
  oversample_shift : int;
  estimate : Estimate.params;
  spanner : Two_pass_spanner.params;
}

exception Invalid_eps of float

let validate_eps eps =
  (* eps <= 0 would send z_rounds to infinity (or, worse, through
     [int_of_float nan] = 0 rounds); eps >= 1 makes the (1 +- eps) guarantee
     vacuous. Reject both ends with a typed error instead of producing a
     nonsense budget. NaN fails every comparison, so it falls through to
     the raise as well. *)
  if not (eps > 0.0 && eps < 1.0) then raise (Invalid_eps eps)

let default_params ~k ~eps ~n =
  validate_eps eps;
  let log2n = float_of_int (Ds_sketch.F0.levels_for n) in
  {
    z_rounds = max 3 (int_of_float (ceil (log2n /. eps /. 4.0)));
    h_levels = Ds_sketch.F0.levels_for n + 2;
    oversample_shift = 2;
    estimate = Estimate.default_params ~k;
    spanner = Two_pass_spanner.default_params ~k;
  }

type result = { sparsifier : Weighted_graph.t; space_words : int; rounds : int }

let space_bound ~n ~eps =
  let nf = float_of_int n in
  nf *. (2.0 ** sqrt (log nf /. log 2.0)) /. (eps ** 4.0)

let run rng ~n ~params:prm stream =
  let est = Estimate.build (Prng.split_named rng "estimate") ~n ~params:prm.estimate stream in
  (* Sampling an edge [oversample_shift] levels denser than its q_hat level
     keeps the estimator unbiased (the emitted weight matches the class) and
     cuts the per-edge variance by 2^-shift — the same concentration the
     paper buys with a larger Z, at 2^shift x the output size. *)
  let q u v = max 1 (Estimate.query est u v - prm.oversample_shift) in
  let acc = Hashtbl.create 256 in (* (u,v) -> summed weight *)
  let space = ref (Estimate.space_words est) in
  for s = 1 to prm.z_rounds do
    let r =
      Sample_spanner.run
        (Prng.split_named rng (Printf.sprintf "round%d" s))
        ~n ~spanner_params:prm.spanner ~h_levels:prm.h_levels ~q stream
    in
    space := max !space (Estimate.space_words est + r.Sample_spanner.space_words);
    List.iter
      (fun (u, v, w) ->
        let key = (u, v) in
        let prev = match Hashtbl.find_opt acc key with Some x -> x | None -> 0.0 in
        Hashtbl.replace acc key (prev +. w))
      r.Sample_spanner.edges
  done;
  let sparsifier = Weighted_graph.create n in
  let z = float_of_int prm.z_rounds in
  Hashtbl.iter
    (fun (u, v) w -> if w > 0.0 then Weighted_graph.add_edge sparsifier u v (w /. z))
    acc;
  { sparsifier; space_words = !space; rounds = prm.z_rounds }
