open Ds_util
open Ds_sketch
open Ds_graph
open Ds_stream

type params = {
  k : int;
  sketch_sparsity : int;
  sketch_rows : int;
  table_rows : int;
  capacity_factor : float;
  payload : Packed_l0.params;
  hash_degree : int;
}

let default_params ~k =
  {
    k;
    sketch_sparsity = 8;
    sketch_rows = 3;
    table_rows = 3;
    capacity_factor = 3.0;
    payload = Packed_l0.default_params;
    hash_degree = 6;
  }

type diagnostics = {
  terminals_per_level : int array;
  pass1_decode_failures : int;
  table_decode_failures : int;
  payload_decode_failures : int;
  recovered_edges : int;
}

type result = {
  spanner : Graph.t;
  accessed_edges : (int * int) list;
  clustering : Clustering.t;
  space_words : int;
  diagnostics : diagnostics;
}

let space_bound ~n ~k =
  let nf = float_of_int n and kf = float_of_int k in
  kf *. (nf ** (1.0 +. (1.0 /. kf))) *. log (max 2.0 nf) /. log 2.0

(* Telemetry: per-pass counters and the space ledger (all no-ops unless
   Ds_obs.Metrics is enabled).  Qualified [Ds_obs.Trace] throughout —
   [open Ds_stream] is in scope. *)
let m_p1_updates = Ds_obs.Metrics.counter "spanner.pass1.updates"
let m_p2_updates = Ds_obs.Metrics.counter "spanner.pass2.updates"
let m_fail_pass1 = Ds_obs.Metrics.counter "spanner.decode_fail.pass1"
let m_fail_table = Ds_obs.Metrics.counter "spanner.decode_fail.table"
let m_fail_payload = Ds_obs.Metrics.counter "spanner.decode_fail.payload"
let m_recovered = Ds_obs.Metrics.counter "spanner.recovered_edges"
let m_ckpt_bytes = Ds_obs.Metrics.counter "spanner.checkpoint.bytes"
let m_resume_ok = Ds_obs.Metrics.counter "spanner.resume.ok"
let m_resume_rejected = Ds_obs.Metrics.counter "spanner.resume.rejected"

(* ------------------------------------------------------------------ *)
(* Pass 1: the S^r_j sketches and the cluster forest.                   *)
(* ------------------------------------------------------------------ *)

type pass1 = {
  n : int;
  prm : params;
  edge_dim : int;
  levels : int; (* number of sampling levels J *)
  level_hash : Kwise.t; (* nested E_j membership: e in E_j iff level(e) >= j *)
  centers : Clustering.centers;
  (* sketches.(u).(r-1).(j) = S^r_j(u), r in [1, k-1]. *)
  sketches : Sparse_recovery.t array array array;
  accessed : (int, unit) Hashtbl.t; (* edge indices revealed by any decode *)
  mutable decode_failures : int;
}

let make_pass1 rng ~n ~prm =
  let edge_dim = Edge_index.dim n in
  let levels = F0.levels_for edge_dim in
  let centers = Clustering.sample_centers (Prng.split_named rng "centers") ~n ~k:prm.k in
  let sr_params =
    {
      Sparse_recovery.sparsity = prm.sketch_sparsity;
      rows = prm.sketch_rows;
      hash_degree = prm.hash_degree;
    }
  in
  (* One prototype per (r, j): all vertices share its hashes (mergeable). *)
  let protos =
    Array.init (max 0 (prm.k - 1)) (fun ri ->
        Array.init levels (fun j ->
            Sparse_recovery.create
              (Prng.split_named rng (Printf.sprintf "s.%d.%d" ri j))
              ~dim:edge_dim ~params:sr_params))
  in
  let sketches =
    Array.init n (fun _ ->
        Array.map (Array.map Sparse_recovery.clone_zero) protos)
  in
  {
    n;
    prm;
    edge_dim;
    levels;
    level_hash = Kwise.create (Prng.split_named rng "elevels") ~k:prm.hash_degree;
    centers;
    sketches;
    accessed = Hashtbl.create 1024;
    decode_failures = 0;
  }

let pass1_update p (u : Update.t) =
  let delta = Update.delta u in
  let idx = Edge_index.encode ~n:p.n u.Update.u u.Update.v in
  let folded = Kwise.fold_key idx in
  let lvl = min (Kwise.level_folded p.level_hash folded) (p.levels - 1) in
  for r = 1 to p.prm.k - 1 do
    if p.centers.(r).(u.Update.v) then
      for j = 0 to lvl do
        Sparse_recovery.update_folded p.sketches.(u.Update.u).(r - 1).(j) ~index:idx ~folded ~delta
      done;
    if p.centers.(r).(u.Update.u) then
      for j = 0 to lvl do
        Sparse_recovery.update_folded p.sketches.(u.Update.v).(r - 1).(j) ~index:idx ~folded ~delta
      done
  done

(* Sharded pass-1 fill: the sketch array is a linear function of the stream,
   so per-domain replicas (sharing the immutable hash state) summed cell-wise
   equal the sequentially filled array exactly. *)
let clone_sketches_zero p =
  Array.map (Array.map (Array.map Sparse_recovery.clone_zero)) p.sketches

let merge_sketches dst src =
  Array.iteri
    (fun u per_r ->
      Array.iteri
        (fun ri per_j ->
          Array.iteri (fun j sk -> Sparse_recovery.add dst.(u).(ri).(j) sk) per_j)
        per_r)
    src

let pass1_fill p ~ingest stream =
  Ds_obs.Metrics.incr m_p1_updates (Array.length stream);
  Ds_obs.Trace.with_span "spanner.pass1" @@ fun () ->
  match ingest with
  | `Sequential -> Array.iter (pass1_update p) stream
  | `Parallel pool ->
      let filled =
        Ds_par.Shard_ingest.ingest pool
          ~make:(fun () -> { p with sketches = clone_sketches_zero p })
          ~update:(fun replica stream ~pos ~len ->
            for i = pos to pos + len - 1 do
              pass1_update replica stream.(i)
            done)
          ~merge:(fun a b -> merge_sketches a.sketches b.sketches)
          stream
      in
      merge_sketches p.sketches filled.sketches

(* Attach callback: sum member sketches for target level r = level+1, then
   scan sampling levels from sparsest down; the first non-empty decodable
   window yields the parent and witness. *)
let attach p ~level ~root:_ ~members =
  let r = level + 1 in
  let member_set = Hashtbl.create (List.length members) in
  List.iter (fun v -> Hashtbl.replace member_set v ()) members;
  let record assoc = List.iter (fun (idx, _) -> Hashtbl.replace p.accessed idx ()) assoc in
  let pick assoc =
    (* Choose any decoded edge; identify which endpoint is the C_r parent. *)
    let best = ref None in
    List.iter
      (fun (idx, _) ->
        let a, b = Edge_index.decode ~n:p.n idx in
        let a_in = Hashtbl.mem member_set a and b_in = Hashtbl.mem member_set b in
        let candidate =
          (* witness = (inside endpoint, parent); parent must be in C_r. *)
          if p.centers.(r).(b) && a_in && not b_in then Some (b, (a, b))
          else if p.centers.(r).(a) && b_in && not a_in then Some (a, (b, a))
          else if p.centers.(r).(b) && a_in then Some (b, (a, b))
          else if p.centers.(r).(a) && b_in then Some (a, (b, a))
          else None
        in
        match (!best, candidate) with
        | None, Some _ -> best := candidate
        | _ -> ())
      assoc;
    !best
  in
  let merged j =
    match members with
    | [] -> invalid_arg "Two_pass_spanner.attach: empty cluster"
    | first :: rest ->
        let acc = Sparse_recovery.copy p.sketches.(first).(r - 1).(j) in
        List.iter (fun v -> Sparse_recovery.add acc p.sketches.(v).(r - 1).(j)) rest;
        acc
  in
  let rec scan j =
    if j < 0 then None
    else
      match Sparse_recovery.decode (merged j) with
      | Some [] -> scan (j - 1)
      | Some assoc -> (
          record assoc;
          match pick assoc with
          | Some _ as res -> res
          | None -> scan (j - 1) (* decoded only intra-cluster edges; go denser *))
      | None ->
          (* Window [1, B] skipped between levels: count and fall back to
             terminal (costs table space, never correctness). *)
          p.decode_failures <- p.decode_failures + 1;
          None
  in
  scan (p.levels - 1)

(* ------------------------------------------------------------------ *)
(* Pass 2: terminal-cluster hash tables.                                *)
(* ------------------------------------------------------------------ *)

type terminal_table = {
  members : int array;
  table : Sketch_table.t;
  payload_cfg : Packed_l0.config option; (* None for singleton clusters *)
}

type pass2 = {
  terminal_id_of : int array;
  rank_in_terminal : int array;
  tables : terminal_table array; (* indexed by terminal id *)
}

let make_pass2 rng ~n ~prm (clustering : Clustering.t) =
  let terminal_id_of = clustering.Clustering.terminal_id_of in
  let rank_in_terminal = Array.make n (-1) in
  let log2n = float_of_int (F0.levels_for n) in
  let tables =
    Array.mapi
      (fun tid { Clustering.level; members; _ } ->
        let members = Array.of_list members in
        Array.iteri (fun i v -> rank_in_terminal.(v) <- i) members;
        let trng = Prng.split_named rng (Printf.sprintf "table%d" tid) in
        let nf = float_of_int n in
        let expected_keys =
          prm.capacity_factor *. log2n
          *. (nf ** (float_of_int (level + 1) /. float_of_int prm.k))
        in
        let capacity = max 8 (min (2 * n) (int_of_float (ceil expected_keys))) in
        let payload_cfg, payload_len =
          if Array.length members <= 1 then (None, 0)
          else begin
            let cfg =
              Packed_l0.make_config
                (Prng.split_named trng "payload")
                ~dim:(Array.length members) ~params:prm.payload
            in
            (Some cfg, Packed_l0.state_len cfg)
          end
        in
        let table =
          Sketch_table.create (Prng.split_named trng "cells") ~key_dim:n ~capacity
            ~rows:prm.table_rows ~hash_degree:prm.hash_degree ~payload_len
        in
        { members; table; payload_cfg })
      clustering.Clustering.terminals
  in
  { terminal_id_of; rank_in_terminal; tables }

let pass2_update p2 (u : Update.t) =
  let delta = Update.delta u in
  let route a b =
    let tid = p2.terminal_id_of.(a) in
    if p2.terminal_id_of.(b) <> tid then begin
      let tt = p2.tables.(tid) in
      let rank = p2.rank_in_terminal.(a) in
      let write =
        match tt.payload_cfg with
        | None -> fun _arr _off -> ()
        | Some cfg -> fun arr off -> Packed_l0.update cfg arr ~off ~index:rank ~delta
      in
      Sketch_table.update tt.table ~key:b ~weight:delta ~write
    end
  in
  route u.Update.u u.Update.v;
  route u.Update.v u.Update.u

(* ------------------------------------------------------------------ *)
(* Checkpoint: the pass boundary, serialised.                          *)
(* ------------------------------------------------------------------ *)

(* Everything pass 2 needs and the stream cannot regenerate is (a) the
   pass-1 sketch counters and (b) the seed-derived structure. (b) is rebuilt
   by replaying the same PRNG chain in [resume], so the checkpoint carries
   only (a) plus enough of (n, params) to verify the caller replays the
   chain with the same inputs. Same envelope discipline as
   {!Linear_sketch}: magic, shape, body, trailing FNV-1a-64 checksum
   verified before any parsing. *)

let checkpoint_magic = "TPS1"
let checksum_bytes = 8

let write_params sink prm =
  Wire.write_int sink prm.k;
  Wire.write_int sink prm.sketch_sparsity;
  Wire.write_int sink prm.sketch_rows;
  Wire.write_int sink prm.table_rows;
  Wire.write_fixed64 sink (Int64.bits_of_float prm.capacity_factor);
  Wire.write_int sink prm.payload.Packed_l0.reps;
  Wire.write_int sink prm.payload.Packed_l0.sparsity;
  Wire.write_int sink prm.payload.Packed_l0.hash_degree;
  Wire.write_int sink prm.hash_degree

let read_params src =
  let k = Wire.read_int src in
  let sketch_sparsity = Wire.read_int src in
  let sketch_rows = Wire.read_int src in
  let table_rows = Wire.read_int src in
  let capacity_factor = Int64.float_of_bits (Wire.read_fixed64 src) in
  let reps = Wire.read_int src in
  let sparsity = Wire.read_int src in
  let payload_hash_degree = Wire.read_int src in
  let hash_degree = Wire.read_int src in
  {
    k;
    sketch_sparsity;
    sketch_rows;
    table_rows;
    capacity_factor;
    payload = { Packed_l0.reps; sparsity; hash_degree = payload_hash_degree };
    hash_degree;
  }

let serialize_pass1 p1 =
  let sink = Wire.sink () in
  Wire.write_tag sink checkpoint_magic;
  Wire.write_int sink p1.n;
  write_params sink p1.prm;
  Wire.write_int sink p1.levels;
  Array.iter (Array.iter (Array.iter (fun sk -> Sparse_recovery.write sk sink))) p1.sketches;
  let payload = Wire.contents sink in
  let tail = Wire.sink () in
  Wire.write_fixed64 tail (Wire.fnv1a64 payload);
  payload ^ Wire.contents tail

type checkpoint_error =
  | Truncated of { length : int; min_length : int }
  | Checksum_mismatch
  | Wrong_magic of { got : string }
  | Header_mismatch of { field : string }
  | Malformed_body of string
  | Trailing_bytes of int

let checkpoint_error_to_string = function
  | Truncated { length; min_length } ->
      Printf.sprintf "truncated checkpoint (%d bytes, need at least %d)" length min_length
  | Checksum_mismatch -> "checkpoint checksum mismatch (corrupt or truncated)"
  | Wrong_magic { got } -> Printf.sprintf "not a TPS1 checkpoint (magic %S)" got
  | Header_mismatch { field } ->
      Printf.sprintf "checkpoint %s mismatch (taken with different inputs)" field
  | Malformed_body msg -> Printf.sprintf "malformed checkpoint body (%s)" msg
  | Trailing_bytes k -> Printf.sprintf "checkpoint has %d trailing bytes" k

let pp_checkpoint_error ppf e = Format.pp_print_string ppf (checkpoint_error_to_string e)

(* On [Error] past the header checks the destination's counters may be
   partially overwritten — callers must discard [p1] (what
   [resume_or_restart] does by recomputing pass 1 from the stream). *)
let load_pass1_result p1 data =
  let len = String.length data in
  let min_length = checksum_bytes + String.length checkpoint_magic + 2 in
  if len < min_length then Error (Truncated { length = len; min_length })
  else begin
    let payload_len = len - checksum_bytes in
    let stored = ref 0L in
    for i = checksum_bytes - 1 downto 0 do
      stored := Int64.logor (Int64.shift_left !stored 8) (Int64.of_int (Char.code data.[payload_len + i]))
    done;
    if Wire.fnv1a64 ~len:payload_len data <> !stored then Error Checksum_mismatch
    else
      try
        let src = Wire.source (String.sub data 0 payload_len) in
        let magic = Wire.read_tag src in
        if magic <> checkpoint_magic then Error (Wrong_magic { got = magic })
        else if Wire.read_int src <> p1.n then Error (Header_mismatch { field = "n" })
        else if read_params src <> p1.prm then Error (Header_mismatch { field = "params" })
        else if Wire.read_int src <> p1.levels then Error (Header_mismatch { field = "levels" })
        else begin
          Array.iter (Array.iter (Array.iter (fun sk -> Sparse_recovery.read_into sk src))) p1.sketches;
          match Wire.remaining src with 0 -> Ok () | k -> Error (Trailing_bytes k)
        end
      with Failure msg -> Error (Malformed_body msg)
  end


(* ------------------------------------------------------------------ *)

(* The PRNG chain is the contract between [run], [checkpoint] and [resume]:
   all three derive pass-1 structure from split_named rng
   "two_pass_spanner" -> "pass1" and pass-2 structure from -> "pass2", so a
   resumed process rebuilds hash functions bit-identical to the
   checkpointing one from the same caller seed. *)
let derive rng ~n ~prm =
  if prm.k < 1 then invalid_arg "Two_pass_spanner: k must be >= 1";
  Ds_obs.Trace.with_span "spanner.derive" @@ fun () ->
  let rng = Prng.split_named rng "two_pass_spanner" in
  (rng, make_pass1 (Prng.split_named rng "pass1") ~n ~prm)

(* Space of pass 1: per-vertex cells plus one shared hash set per (r, j).
   Shared with the space ledger, which reports the measured constant of
   this quantity against [space_bound]. *)
let pass1_space_words p1 =
  let per_sketch =
    if p1.prm.k > 1 then Sparse_recovery.space_in_words p1.sketches.(0).(0).(0)
    else 0
  in
  p1.n * (p1.prm.k - 1) * p1.levels * per_sketch

let finish rng p1 ~n ~prm stream =
  let clustering =
    Ds_obs.Trace.with_span "spanner.clustering" @@ fun () ->
    Clustering.build ~n ~k:prm.k ~centers:p1.centers ~attach:(attach p1)
  in
  let pass1_space = pass1_space_words p1 in
  let p2 =
    Ds_obs.Trace.with_span "spanner.derive" (fun () ->
        make_pass2 (Prng.split_named rng "pass2") ~n ~prm clustering)
  in
  Ds_obs.Metrics.incr m_p2_updates (Array.length stream);
  (Ds_obs.Trace.with_span "spanner.pass2" @@ fun () ->
   Array.iter (pass2_update p2) stream);
  (* Assemble the spanner. *)
  let spanner = Graph.create n in
  let add a b = if a <> b && not (Graph.mem_edge spanner a b) then Graph.add_edge spanner a b in
  List.iter (fun (a, b) -> add a b) clustering.Clustering.witnesses;
  let table_failures = ref 0 and payload_failures = ref 0 and recovered = ref 0 in
  Ds_obs.Trace.with_span "spanner.extract" (fun () ->
      Array.iter
        (fun tt ->
          match Sketch_table.decode tt.table with
          | None -> incr table_failures
          | Some entries ->
              List.iter
                (fun (key, weight, payload) ->
                  if weight > 0 then
                    match tt.payload_cfg with
                    | None ->
                        incr recovered;
                        add tt.members.(0) key
                    | Some cfg -> (
                        match Packed_l0.decode cfg payload ~off:0 with
                        | Some (rank, _) ->
                            incr recovered;
                            add tt.members.(rank) key
                        | None -> incr payload_failures))
                entries)
        p2.tables);
  let pass2_space =
    Array.fold_left (fun acc tt -> acc + Sketch_table.space_in_words tt.table) 0 p2.tables
  in
  (* Augmented output: every edge revealed by a successful decode. *)
  let accessed = ref [] in
  Hashtbl.iter
    (fun idx () ->
      let a, b = Edge_index.decode ~n idx in
      accessed := (a, b) :: !accessed)
    p1.accessed;
  Graph.iter_edges spanner (fun a b -> accessed := (a, b) :: !accessed);
  let terminals_per_level = Array.make prm.k 0 in
  Array.iter
    (fun { Clustering.level; _ } ->
      terminals_per_level.(level) <- terminals_per_level.(level) + 1)
    clustering.Clustering.terminals;
  if Ds_obs.Metrics.enabled () then begin
    Ds_obs.Metrics.incr m_fail_pass1 p1.decode_failures;
    Ds_obs.Metrics.incr m_fail_table !table_failures;
    Ds_obs.Metrics.incr m_fail_payload !payload_failures;
    Ds_obs.Metrics.incr m_recovered !recovered;
    (* The checkpoint blob is exactly the pass-1 state on the wire, so
       its length is the serialized-bytes column of the ledger entry. *)
    let bound = space_bound ~n ~k:prm.k in
    Ds_obs.Ledger.record ~phase:"two_pass.pass1" ~words:pass1_space
      ~wire_bytes:(String.length (serialize_pass1 p1))
      bound;
    Ds_obs.Ledger.record ~phase:"two_pass.total"
      ~words:(pass1_space + pass2_space) bound
  end;
  {
    spanner;
    accessed_edges = !accessed;
    clustering;
    space_words = pass1_space + pass2_space;
    diagnostics =
      {
        terminals_per_level;
        pass1_decode_failures = p1.decode_failures;
        table_decode_failures = !table_failures;
        payload_decode_failures = !payload_failures;
        recovered_edges = !recovered;
      };
  }

(* Every entry point runs under one "spanner.run" root span, so a whole
   two-pass run (including a checkpoint/resume pair) reconstructs as a
   single trace tree with pass 1 / clustering / pass 2 as children. *)
let run ?(ingest = `Sequential) rng ~n ~params:prm stream =
  Ds_obs.Trace.with_span "spanner.run" @@ fun () ->
  let rng, p1 = derive rng ~n ~prm in
  pass1_fill p1 ~ingest stream;
  finish rng p1 ~n ~prm stream

let checkpoint ?(ingest = `Sequential) rng ~n ~params:prm stream =
  Ds_obs.Trace.with_span "spanner.run" @@ fun () ->
  let _rng, p1 = derive rng ~n ~prm in
  pass1_fill p1 ~ingest stream;
  let data = Ds_obs.Trace.with_span "spanner.checkpoint" (fun () -> serialize_pass1 p1) in
  Ds_obs.Metrics.incr m_ckpt_bytes (String.length data);
  data

let resume_result rng ~n ~params:prm ~checkpoint stream =
  Ds_obs.Trace.with_span "spanner.run" @@ fun () ->
  let rng, p1 = derive rng ~n ~prm in
  match Ds_obs.Trace.with_span "spanner.resume.load" (fun () -> load_pass1_result p1 checkpoint) with
  | Ok () ->
      Ds_obs.Metrics.incr m_resume_ok 1;
      Ok (finish rng p1 ~n ~prm stream)
  | Error e ->
      Ds_obs.Metrics.incr m_resume_rejected 1;
      Error e

let resume rng ~n ~params:prm ~checkpoint stream =
  match resume_result rng ~n ~params:prm ~checkpoint stream with
  | Ok r -> r
  | Error e -> failwith ("Two_pass_spanner: " ^ checkpoint_error_to_string e)

let resume_or_restart ?(ingest = `Sequential) rng ~n ~params:prm ~checkpoint stream =
  match resume_result rng ~n ~params:prm ~checkpoint stream with
  | Ok r -> (r, `Resumed)
  | Error e ->
      (* The failed load may have partially overwritten the rebuilt pass-1
         state, so fall back to recomputing pass 1 from the stream.
         [split_named] derives children without consuming the caller PRNG,
         so this replays the exact chain of [run] and the recomputed result
         is bit-identical to an uninterrupted run. *)
      (run ~ingest rng ~n ~params:prm stream, `Recomputed e)
