open Ds_util
open Ds_sketch

type params = { banks : int; levels : int; rows : int; cols : int; hash_degree : int }

let default_params = { banks = 2; levels = 12; rows = 5; cols = 1024; hash_degree = 6 }

(* One contiguous off-heap buffer holds every counter of every bank and
   level, laid out bank-major:

     slot(b, l) = ((b * levels) + l) * rows * cols

   Each slot is a CountSketch table over the same edge-index space; the
   per-level Count_sketch values alias the buffer through O(1) views, so
   merge/subtract/zero/ship are single whole-buffer calls and the LSK1 body
   is one window pass. *)
type t = {
  dim : int;
  prm : params;
  level_hash : Kwise.t array; (* one nested-sampling hash per bank *)
  sketches : Count_sketch.t array array; (* [bank].[level], views into words *)
  words : Words.t;
}

let[@inline] slot_words prm = prm.rows * prm.cols

let attach rng ~dim ~prm words =
  let cs_params =
    { Count_sketch.rows = prm.rows; cols = prm.cols; hash_degree = prm.hash_degree }
  in
  Array.init prm.banks (fun b ->
      let brng = Prng.split_named rng (Printf.sprintf "bank%d" b) in
      Array.init prm.levels (fun l ->
          let pos = ((b * prm.levels) + l) * slot_words prm in
          Count_sketch.create_over
            (Prng.split_named brng (Printf.sprintf "level%d" l))
            ~dim ~params:cs_params
            ~table:(Words.view words ~pos ~len:(slot_words prm))))

let create rng ~dim ~params:prm =
  if prm.banks < 1 || prm.levels < 1 || prm.rows < 1 || prm.cols < 1 then
    invalid_arg "Level_bank.create: bad params";
  if dim < 1 then invalid_arg "Level_bank.create: bad dimension";
  let words = Words.create (prm.banks * prm.levels * slot_words prm) in
  {
    dim;
    prm;
    level_hash =
      Array.init prm.banks (fun b ->
          Kwise.create
            (Prng.split_named rng (Printf.sprintf "sample%d" b))
            ~k:prm.hash_degree);
    sketches = attach rng ~dim ~prm words;
    words;
  }

let params t = t.prm
let dim t = t.dim

let sample_level t ~bank ~index = min (t.prm.levels - 1) (Kwise.level t.level_hash.(bank) index)

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "Level_bank.update: index out of range";
  (* Each bank routes the update into exactly one level: the edge's
     geometric class [g(e)] (capped into the last level). The paper's nested
     sample [E_l] is the union of classes >= l; decode re-derives [g(e)]
     from the seed per candidate, so storing the partition instead of the
     nested prefixes keeps the same sampling semantics while halving the
     collision mass at every level. *)
  for b = 0 to t.prm.banks - 1 do
    Count_sketch.update t.sketches.(b).(sample_level t ~bank:b ~index) ~index ~delta
  done

let query t ~bank ~level ~index = Count_sketch.estimate t.sketches.(bank).(level) index

let check_compatible t s =
  if t.dim <> s.dim || t.prm <> s.prm then invalid_arg "Level_bank: incompatible banks"

let add t s =
  check_compatible t s;
  Words.add t.words s.words

let sub t s =
  check_compatible t s;
  Words.sub t.words s.words

let reset t = Words.fill t.words 0

let clone_zero t =
  let words = Words.create (Words.length t.words) in
  {
    t with
    words;
    sketches =
      Array.mapi
        (fun b row ->
          Array.mapi
            (fun l cs ->
              let pos = ((b * t.prm.levels) + l) * slot_words t.prm in
              Count_sketch.rebind cs ~table:(Words.view words ~pos ~len:(slot_words t.prm)))
            row)
        t.sketches;
  }

let space_in_words t =
  (* Count_sketch.space_in_words includes each table, but every table is a
     view into the shared buffer — count the buffer once and keep only the
     per-sketch hash-coefficient words. *)
  Words.length t.words
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.level_hash
  + Array.fold_left
      (fun a row ->
        Array.fold_left
          (fun a cs -> a + (Count_sketch.space_in_words cs - slot_words t.prm))
          a row)
      0 t.sketches

let write_body t sink =
  Wire.write_tag sink "sp1b";
  Wire.write_int sink t.dim;
  (* One window per (bank, level) slot: the body is a concatenation of
     CountSketch tables in layout order, so a reader can locate any level
     without decoding the rest. *)
  for b = 0 to t.prm.banks - 1 do
    for l = 0 to t.prm.levels - 1 do
      Words.write_wire_array sink t.words
        ~pos:(((b * t.prm.levels) + l) * slot_words t.prm)
        ~len:(slot_words t.prm)
    done
  done

let read_body t src =
  Wire.expect_tag src "sp1b";
  if Wire.read_int src <> t.dim then failwith "Level_bank.read_body: dimension mismatch";
  for b = 0 to t.prm.banks - 1 do
    for l = 0 to t.prm.levels - 1 do
      Words.read_wire_array ~what:"Level_bank.read_body" src t.words
        ~pos:(((b * t.prm.levels) + l) * slot_words t.prm)
        ~len:(slot_words t.prm)
    done
  done

module Linear = struct
  type nonrec t = t

  let family = "sparsify1p"
  let dim = dim
  let shape t = [| t.dim; t.prm.banks; t.prm.levels; t.prm.rows; t.prm.cols; t.prm.hash_degree |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write_body
  let read_body = read_body
end
