(** The single-pass sparsifier's sketch state: a bank of CountSketch tables
    over the edge space, one per (bank, sampling level), in one contiguous
    off-heap buffer.

    Each edge has a seed-derived geometric level [g(e)]
    ([P(g(e) >= l) = 2^-l]), inducing the nested samples
    [E_l = { e | g(e) >= l }] of KLMMS (arXiv 1407.1289). Level [l] of a
    bank stores the {e class} [g(e) = l] (the last level absorbs the tail):
    since the decode chain ({!Sparsify1p}) enumerates candidates and
    re-derives [g(e)] from the seed, membership in any [E_l] is decided by
    the hash alone and the sketch only has to answer multiplicity queries —
    storing the partition instead of the nested prefixes halves the
    collision mass at every level. Banks are independent copies so
    refinement steps that reuse the state can be spread over fresh
    randomness.

    Everything is linear: the whole bank is a single {!Ds_util.Words} buffer
    (per-level tables are O(1) views), so merge, subtract, zeroing, LSK1
    shipping, parallel ingestion and checkpointing all compose through
    {!Linear} with no new plumbing. *)

type t

type params = {
  banks : int;  (** independent copies (the decode chain round-robins over them) *)
  levels : int;  (** sampling levels; level [l] subsamples at rate [2^-l] *)
  rows : int;  (** CountSketch rows per level (median decoding) *)
  cols : int;  (** CountSketch buckets per row *)
  hash_degree : int;
}

val default_params : params
(** [banks = 2], [levels = 12], [rows = 5], [cols = 1024], [hash_degree = 6]. *)

val create : Ds_util.Prng.t -> dim:int -> params:params -> t
(** [dim] is the edge-index space, [Edge_index.dim n] for an [n]-vertex
    graph. @raise Invalid_argument on non-positive parameters. *)

val params : t -> params
val dim : t -> int

val update : t -> index:int -> delta:int -> unit
(** Route one signed edge update into its geometric class in every bank —
    the single pass. Cost [rows] cell updates per bank. *)

val sample_level : t -> bank:int -> index:int -> int
(** The edge's geometric sampling level [g(e)] in [bank] (capped at
    [levels - 1]): the largest [l] with [e in E_l]. Pure function of the
    seed and the index, so decode can re-derive membership without storing
    it. *)

val query : t -> bank:int -> level:int -> index:int -> int
(** Median-of-rows CountSketch estimate of the edge's multiplicity, read
    from its class slot — callers pass [level = sample_level ... index].
    Exact (whp) when the class is sparse relative to [cols]. *)

val add : t -> t -> unit
val sub : t -> t -> unit
val reset : t -> unit
val clone_zero : t -> t
val space_in_words : t -> int

module Linear : Ds_sketch.Linear_sketch.S with type t = t
(** Family ["sparsify1p"]; shape
    [[| dim; banks; levels; rows; cols; hash_degree |]]. *)
