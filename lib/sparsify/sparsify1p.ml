open Ds_util
open Ds_graph
open Ds_linalg

type params = {
  bank : Level_bank.params;
  jl_reps : int;
  oversample : float;
  chain_eps : float;
  gamma0_scale : float;
  gamma_floor_scale : float;
}

exception Invalid_eps of float

let validate_eps eps =
  (* Same contract as Sparsify.validate_eps: eps <= 0 gives an unbounded (or
     NaN-poisoned) sampling rate, eps >= 1 a vacuous guarantee. NaN fails
     both comparisons and lands in the raise. *)
  if not (eps > 0.0 && eps < 1.0) then raise (Invalid_eps eps)

let[@inline] log2_ceil n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

let[@inline] pow2_ceil x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 1

let default_params ~n ~eps =
  validate_eps eps;
  if n < 2 then invalid_arg "Sparsify1p.default_params: need n >= 2";
  let log2n = max 1 (log2_ceil n) in
  (* Buckets per row scale like n log n / eps^2 — the KLMMS space budget.
     At that width the geometric class an edge is read from is sparse
     relative to [cols], so median-of-rows multiplicity estimates are exact
     whp and the only error left is the sampling error eps was budgeted
     for. *)
  let cols =
    pow2_ceil
      (max 256 (int_of_float (ceil (float_of_int (n * log2n) /. (eps *. eps)))))
  in
  {
    bank =
      {
        Level_bank.banks = 2;
        (* Deepest level ever queried is ~log2 gamma0 = log2 n + O(1); the
           rest of the depth just keeps tail classes thin. *)
        levels = log2n + 4;
        rows = 7;
        cols;
        hash_degree = 6;
      };
    jl_reps = 10;
    oversample = 1.5;
    (* Intermediate chain steps only need a constant-factor sparsifier to
       seed the next step's resistances (KLMMS run the chain at constant
       accuracy and spend eps only on the last step). *)
    chain_eps = 0.5;
    gamma0_scale = 8.0;
    gamma_floor_scale = 0.5;
  }

type t = { n : int; prm : params; bank : Level_bank.t }

let create rng ~n ~params =
  if n < 2 then invalid_arg "Sparsify1p.create: need n >= 2";
  { n; prm = params; bank = Level_bank.create rng ~dim:(Edge_index.dim n) ~params:params.bank }

let n t = t.n
let params t = t.prm
let bank t = t.bank

let of_bank ~n ~params bank =
  if Level_bank.dim bank <> Edge_index.dim n then
    invalid_arg "Sparsify1p.of_bank: bank dimension does not match n";
  { n; prm = params; bank }

let update t ~u ~v ~delta =
  Level_bank.update t.bank ~index:(Edge_index.encode ~n:t.n u v) ~delta

type result = {
  sparsifier : Weighted_graph.t;
  space_words : int;
  chain_steps : int;
  chain_sizes : int array;
}

(* The KLMMS chain. K(gamma) = L + gamma I interpolates between the
   well-conditioned gamma0 I (gamma0 >= lambda_max, where resistances are
   the analytic 2/gamma0) and the target L (gamma_floor << eps lambda_2).
   Halving gamma keeps K(gamma/2) <= K(gamma) <= 2 K(gamma/2), so a
   sparsifier of step s-1 gives constant-factor resistance estimates for
   step s; each step samples edge e with probability proportional to its
   estimated leverage and reads its multiplicity out of the sketch at the
   matching geometric level. One sketch state serves every step because the
   sampling sets are nested and banks supply fresh randomness. *)
let decode rng t ~eps =
  validate_eps eps;
  let n = t.n in
  let prm = t.prm in
  let bprm = Level_bank.params t.bank in
  let levels = bprm.Level_bank.levels in
  let banks = bprm.Level_bank.banks in
  let logn = log (float_of_int (max 2 n)) in
  let gamma0 = prm.gamma0_scale *. float_of_int n in
  let gamma_floor =
    prm.gamma_floor_scale *. eps /. (float_of_int n *. float_of_int n)
  in
  let steps =
    max 1 (int_of_float (ceil (log (gamma0 /. gamma_floor) /. log 2.0)))
  in
  let h = ref (Weighted_graph.create n) in
  let sizes = Array.make steps 0 in
  for s = 1 to steps do
    let final = s = steps in
    let gamma_prev = gamma0 /. (2.0 ** float_of_int (s - 1)) in
    let eps_s = if final then eps else prm.chain_eps in
    (* The last step decodes at the target accuracy from a bank no
       intermediate step touched; intermediate steps round-robin over the
       rest so successive refinements don't reuse sampling randomness. *)
    let bank_ix =
      if banks = 1 then 0 else if final then banks - 1 else (s - 1) mod (banks - 1)
    in
    let resist =
      if Weighted_graph.num_edges !h = 0 then fun _ _ -> 2.0 /. gamma_prev
      else
        Resistance.jl_estimator (Prng.split rng) !h ~shift:gamma_prev
          ~reps:prm.jl_reps ()
    in
    let rate = prm.oversample *. logn /. (eps_s *. eps_s) in
    let out = Weighted_graph.create n in
    Edge_index.iter_pairs ~n (fun u v ->
        (* The multiplicity is read from every bank at the pair's own
           geometric class there — the deepest, hence sparsest, slot that
           holds it. Taking the min across banks makes a phantom survive
           only if independent sketches err upward at the same pair,
           squaring the (already small) false-positive rate; for a present
           edge every bank reads the exact multiplicity whp, so the min is
           exact. *)
        let index = Edge_index.encode ~n u v in
        let est = ref max_int in
        for b = 0 to banks - 1 do
          let g = Level_bank.sample_level t.bank ~bank:b ~index in
          est := min !est (Level_bank.query t.bank ~bank:b ~level:g ~index)
        done;
        if !est > 0 then begin
          (* A multiplicity-m edge is m parallel unit edges, so its
             leverage — hence its sampling probability — is m times the
             pair resistance; est is exact whp and independent of the
             inclusion coin below, so using it here keeps the sample
             unbiased while stopping heavy edges from being subsampled and
             weight-amplified. *)
          let p = min 1.0 (rate *. float_of_int !est *. resist u v) in
          let lvl =
            if p >= 1.0 then 0
            else if p <= 0.0 then levels - 1
            else min (levels - 1) (int_of_float (floor (-.(log p /. log 2.0))))
          in
          (* Inclusion is decided by bank [bank_ix]'s hash at level [lvl]
             (probability 2^-lvl); the 2^lvl reweighting keeps the
             expectation exact. *)
          if Level_bank.sample_level t.bank ~bank:bank_ix ~index >= lvl then
            Weighted_graph.add_edge out u v
              (float_of_int !est *. float_of_int (1 lsl lvl))
        end);
    sizes.(s - 1) <- Weighted_graph.num_edges out;
    h := out
  done;
  {
    sparsifier = !h;
    space_words = Level_bank.space_in_words t.bank;
    chain_steps = steps;
    chain_sizes = sizes;
  }

let run rng ~n ~params ~eps stream =
  validate_eps eps;
  let t = create (Prng.split_named rng "sketch") ~n ~params in
  Array.iter
    (fun (upd : Ds_stream.Update.t) ->
      update t ~u:upd.Ds_stream.Update.u ~v:upd.Ds_stream.Update.v
        ~delta:(Ds_stream.Update.delta upd))
    stream;
  decode (Prng.split_named rng "decode") t ~eps

let space_bound ~n ~eps =
  let nf = float_of_int n in
  let l = log nf /. log 2.0 in
  nf *. l *. l *. l /. (eps *. eps)
