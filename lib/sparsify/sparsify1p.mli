(** Single-pass [(1 ± eps)] spectral sparsification in dynamic streams —
    the KLMMS chain (Kapralov–Lee–Musco–Musco–Sidford, arXiv 1407.1289),
    the algorithm the source paper's Section 1 cites as the single-pass
    counterpart of its two-pass {!Ds_core.Sparsify}.

    One pass feeds every signed edge update into a {!Level_bank} (a
    {!Ds_sketch.Linear_sketch.S} family, so deletions, merging, shipping and
    checkpointing come for free). Decode then walks the chain of regularized
    Laplacians [K(gamma) = L + gamma I] with [gamma] halving from
    [gamma0 >= lambda_max] down to [gamma_floor << eps lambda_2]:

    - [K(gamma0)] is within a factor 2 of [gamma0 I], whose effective
      resistances are the analytic [2 / gamma0] — no graph needed;
    - a constant-factor sparsifier of [K(gamma)] yields constant-factor
      resistance estimates for [K(gamma / 2)] (since
      [K(gamma/2) <= K(gamma) <= 2 K(gamma/2)]), computed by JL-sketched
      shifted-CG solves ({!Ds_linalg.Resistance.jl_estimator});
    - each step reads the edge's multiplicity [m_e] out of the sketch,
      samples it with probability
      [p_e = min 1 (oversample * m_e * R~_e * ln n / eps_s^2)] (the
      leverage of a multiplicity-[m_e] edge is [m_e] resistances) by
      testing membership against the edge's seed-derived geometric
      level; the recovered weight [m_e * 2^level] makes the estimator
      unbiased;
    - intermediate steps run at constant accuracy [chain_eps]; only the
      final step spends the target [eps], on a bank reserved for it. *)

type params = {
  bank : Level_bank.params;  (** the sketch state *)
  jl_reps : int;  (** JL probes per resistance estimator (CG solves/step) *)
  oversample : float;  (** constant in [p_e = c * m_e * R~_e * ln n / eps^2] *)
  chain_eps : float;  (** accuracy of intermediate chain steps *)
  gamma0_scale : float;  (** [gamma0 = scale * n >= lambda_max] *)
  gamma_floor_scale : float;  (** chain ends at [scale * eps / n^2] *)
}

exception Invalid_eps of float
(** Raised (with the offending value) on [eps <= 0], [eps >= 1] or NaN,
    mirroring {!Ds_core.Sparsify.Invalid_eps}. *)

val validate_eps : float -> unit
(** @raise Invalid_eps unless [0 < eps < 1]. *)

val default_params : n:int -> eps:float -> params
(** Sized so the geometric class an edge is read from stays sparse relative
    to [cols] ([cols ~ n log n / eps^2], the KLMMS space budget): sketch
    recovery is then exact whp and the sampling error carries the whole
    eps budget. [eps] here must be the smallest accuracy the state will be
    decoded at. @raise Invalid_eps unless [0 < eps < 1].
    @raise Invalid_argument if [n < 2]. *)

type t

val create : Ds_util.Prng.t -> n:int -> params:params -> t
(** Fresh sketch state for an [n]-vertex dynamic stream.
    @raise Invalid_argument if [n < 2]. *)

val n : t -> int
val params : t -> params

val bank : t -> Level_bank.t
(** The underlying linear state — merge it, serialize it ({!Level_bank.Linear}),
    checkpoint it; {!of_bank} rebuilds the sparsifier around the result. *)

val of_bank : n:int -> params:params -> Level_bank.t -> t
(** Wrap an existing bank (e.g. one read back from LSK1 or merged across
    shards). @raise Invalid_argument if the bank's dimension is not
    [Edge_index.dim n]. *)

val update : t -> u:int -> v:int -> delta:int -> unit
(** One signed edge update — the single pass. *)

type result = {
  sparsifier : Ds_graph.Weighted_graph.t;
  space_words : int;  (** total sketch state, {!Level_bank.space_in_words} *)
  chain_steps : int;  (** length of the gamma chain *)
  chain_sizes : int array;  (** edges recovered at each chain step *)
}

val decode : Ds_util.Prng.t -> t -> eps:float -> result
(** Run the chain. [eps] may be any accuracy no smaller than the one the
    params were sized for. @raise Invalid_eps unless [0 < eps < 1]. *)

val run :
  Ds_util.Prng.t ->
  n:int ->
  params:params ->
  eps:float ->
  Ds_stream.Update.t array ->
  result
(** Ingest the whole stream in one pass, then {!decode}. *)

val space_bound : n:int -> eps:float -> float
(** KLMMS's [O~(n / eps^2)]: [n log^3 n / eps^2] in words (unit constant),
    the curve E20 plots measured space against. *)
