let shards = 32
let shard_mask = shards - 1
let n_buckets = 63

type counter = { c_name : string; c_cells : int Atomic.t array }
type gauge = { g_name : string; g_cell : int Atomic.t }

type histogram = {
  h_name : string;
  (* cells.(s) holds [n_buckets] bucket slots followed by one sum slot. *)
  h_cells : int Atomic.t array array;
}

type metric = C of counter | G of gauge | H of histogram

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* Counter shards exist precisely so domains don't contend, which only
   works if each shard's cell sits on its own cache line — unpadded,
   [Array.init] packs the 32 atomics into 2-3 lines and hammering
   domains false-share them.  Histogram bucket rows stay unpadded: a
   row is already private to one shard index, and padding 64 slots per
   shard would multiply histogram space 16x for no contention win. *)
let cells n = Ds_util.Padding.array n 0
let dense_cells n = Array.init n (fun _ -> Atomic.make 0)

let register name ~kind ~make ~cast =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match cast m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Ds_obs.Metrics: %S already registered as a different kind \
                    (wanted %s)"
                   name kind))
      | None ->
          let v, m = make () in
          Hashtbl.add registry name m;
          v)

let counter name =
  register name ~kind:"counter"
    ~make:(fun () ->
      let c = { c_name = name; c_cells = cells shards } in
      (c, C c))
    ~cast:(function C c -> Some c | _ -> None)

let gauge name =
  register name ~kind:"gauge"
    ~make:(fun () ->
      let g = { g_name = name; g_cell = Ds_util.Padding.atomic 0 } in
      (g, G g))
    ~cast:(function G g -> Some g | _ -> None)

let histogram name =
  register name ~kind:"histogram"
    ~make:(fun () ->
      let h =
        { h_name = name; h_cells = Array.init shards (fun _ -> dense_cells (n_buckets + 1)) }
      in
      (h, H h))
    ~cast:(function H h -> Some h | _ -> None)

let shard_index () = (Domain.self () :> int) land shard_mask

let incr c n =
  if Atomic.get enabled_flag then
    ignore (Atomic.fetch_and_add c.c_cells.(shard_index ()) n)

let set g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v

(* Bucket [b] holds values in [2^b, 2^(b+1)); everything <= 1 lands in
   bucket 0.  A shift loop, not [log], so samples stay exact. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 1 do
      b := !b + 1;
      x := !x lsr 1
    done;
    min !b (n_buckets - 1)
  end

let observe h v =
  if Atomic.get enabled_flag then begin
    let row = h.h_cells.(shard_index ()) in
    ignore (Atomic.fetch_and_add row.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add row.(n_buckets) v)
  end

let value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_cells
let gauge_value g = Atomic.get g.g_cell

type hist_view = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_view) list;
}

let le_of_bucket b = if b >= 62 then max_int else (1 lsl (b + 1)) - 1

let hist_view h =
  let totals = Array.make (n_buckets + 1) 0 in
  Array.iter
    (fun row ->
      for i = 0 to n_buckets do
        totals.(i) <- totals.(i) + Atomic.get row.(i)
      done)
    h.h_cells;
  let buckets = ref [] in
  let count = ref 0 in
  for b = n_buckets - 1 downto 0 do
    if totals.(b) > 0 then begin
      buckets := (le_of_bucket b, totals.(b)) :: !buckets;
      count := !count + totals.(b)
    end
  done;
  { h_count = !count; h_sum = totals.(n_buckets); h_buckets = !buckets }

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock (fun () ->
      let cs = ref [] and gs = ref [] and hs = ref [] in
      Hashtbl.iter
        (fun name -> function
          | C c -> cs := (name, value c) :: !cs
          | G g -> gs := (name, gauge_value g) :: !gs
          | H h -> hs := (name, hist_view h) :: !hs)
        registry;
      {
        counters = List.sort by_name !cs;
        gauges = List.sort by_name !gs;
        histograms = List.sort by_name !hs;
      })

let unregister name = with_lock (fun () -> Hashtbl.remove registry name)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Array.iter (fun a -> Atomic.set a 0) c.c_cells
          | G g -> Atomic.set g.g_cell 0
          | H h ->
              Array.iter (fun row -> Array.iter (fun a -> Atomic.set a 0) row)
                h.h_cells)
        registry)

(* --- exporters ------------------------------------------------------- *)

let escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_obj b fields emit =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b name;
      Buffer.add_string b "\":";
      emit b v)
    fields;
  Buffer.add_char b '}'

let to_json snap =
  let b = Buffer.create 1024 in
  let int_emit b v = Buffer.add_string b (string_of_int v) in
  let hist_emit b h =
    Buffer.add_string b (Printf.sprintf "{\"count\":%d,\"sum\":%d,\"buckets\":[" h.h_count h.h_sum);
    List.iteri
      (fun i (le, n) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "{\"le\":%d,\"count\":%d}" le n))
      h.h_buckets;
    Buffer.add_string b "]}"
  in
  Buffer.add_string b "{\"counters\":";
  json_obj b snap.counters int_emit;
  Buffer.add_string b ",\"gauges\":";
  json_obj b snap.gauges int_emit;
  Buffer.add_string b ",\"histograms\":";
  json_obj b snap.histograms hist_emit;
  Buffer.add_char b '}';
  Buffer.contents b

(* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*.  Map
   every out-of-charset byte to '_' and prefix '_' when the first byte
   is a digit, so arbitrary registry names (dots, slashes, unicode)
   always export as legal families. *)
let sanitize name =
  let ok_rest = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let mapped = String.map (fun c -> if ok_rest c then c else '_') name in
  if mapped = "" then "_"
  else
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

let to_prometheus snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    snap.counters;
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n v))
    snap.gauges;
  List.iter
    (fun (name, h) ->
      let n = sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (le, cnt) ->
          cum := !cum + cnt;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le !cum))
        h.h_buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n" n
           h.h_count n h.h_sum n h.h_count))
    snap.histograms;
  Buffer.contents b
