external now_ns : unit -> int64 = "ds_obs_clock_now_ns"

let elapsed_ns t0 = Int64.sub (now_ns ()) t0
