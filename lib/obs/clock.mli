(** Monotonic clock. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin ([CLOCK_MONOTONIC]).
    Only differences between two readings are meaningful. *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns t0] is [now_ns () - t0]. *)
