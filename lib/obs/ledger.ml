type entry = {
  phase : string;
  words : int;
  wire_bytes : int;
  off_heap_bytes : int;
  bound_words : float;
  constant : float;
}

(* The asymptotic bounds drop polylog factors and the per-level
   repetition constants of the l0-sampler stack; measured constants for
   honest reproductions land well under this. *)
let default_tolerance = 4096.
let lock = Mutex.create ()
let items : entry list ref = ref []

let record ?(wire_bytes = 0) ?off_heap_bytes ~phase ~words bound =
  if Metrics.enabled () then begin
    if bound <= 0. then invalid_arg "Ds_obs.Ledger.record: bound must be > 0";
    if words < 0 then invalid_arg "Ds_obs.Ledger.record: words must be >= 0";
    (* Sketch counters live in off-heap word buffers (Ds_util.Words, 8
       bytes per slot), so by default the off-heap cost is exactly the
       recorded word count; callers tracking heap-resident structures
       alongside pass [~off_heap_bytes] explicitly. *)
    let off_heap_bytes =
      match off_heap_bytes with Some b -> b | None -> 8 * words
    in
    let e =
      {
        phase;
        words;
        wire_bytes;
        off_heap_bytes;
        bound_words = bound;
        constant = float_of_int words /. bound;
      }
    in
    Mutex.lock lock;
    items := e :: !items;
    Mutex.unlock lock
  end

let entries () =
  Mutex.lock lock;
  let l = List.rev !items in
  Mutex.unlock lock;
  l

let check ?(tolerance = default_tolerance) e =
  e.constant >= 0. && e.constant <= tolerance

let reset () =
  Mutex.lock lock;
  items := [];
  Mutex.unlock lock

let pp_entry ppf e =
  Format.fprintf ppf "%s words=%d wire=%dB off_heap=%dB bound=%.1f c=%.3f ok=%b" e.phase
    e.words e.wire_bytes e.off_heap_bytes e.bound_words e.constant (check e)

let to_json () =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"phase\":\"%s\",\"words\":%d,\"wire_bytes\":%d,\"off_heap_bytes\":%d,\"bound_words\":%.3f,\"constant\":%.6f,\"within_bound\":%b}"
           e.phase e.words e.wire_bytes e.off_heap_bytes e.bound_words e.constant (check e)))
    (entries ());
  Buffer.add_char b ']';
  Buffer.contents b
