(** Streaming quantile sketch: fixed-memory sub-bucketed log histogram.

    Replaces the registry's raw log2 histograms wherever an honest
    tail estimate is needed (serve ingest latency, loadgen client
    latency).  Each power-of-two octave is refined into 32 equal-width
    sub-buckets, so [estimate] — the midpoint of the nearest-rank cell
    — carries at most [1/64] (~1.6%) relative error at any quantile,
    on any distribution of nonnegative int samples.  Memory is fixed
    (~1.9k cells per shard); cells are pure counts, so merging sketches
    cell-wise is exactly the sketch of the concatenated streams.

    Two flavours:
    - [quantile name]: registered, domain-sharded like
      {!Metrics} (32 rows), gated on {!Metrics.enabled}; appears in
      {!Export} JSON/Prometheus output.
    - [make ()]: anonymous single-row sketch, ungated by default —
      for single-domain callers that always want the numbers. *)

type t

val quantile : string -> t
(** Find-or-create the registered sketch under this name (idempotent,
    like {!Metrics.counter}).  Observation is gated on
    {!Metrics.enabled}. *)

val unregister : string -> unit
(** Drop a registered sketch (its cells survive in callers still
    holding the handle, but it leaves all registry-wide views). *)

val make : ?gated:bool -> unit -> t
(** Anonymous single-row sketch.  [gated] (default [false]) makes
    observation respect {!Metrics.enabled}. *)

val observe : t -> int -> unit
(** Record one sample; negatives clamp to 0.  Lock-free. *)

val estimate : t -> float -> float
(** [estimate t q] is the nearest-rank [q]-quantile (q clamped to
    [0,1]), as the midpoint of its cell: relative error <= 1/64.
    [nan] when empty. *)

val count : t -> int
val sum : t -> int

type summary = {
  s_count : int;
  s_sum : int;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

val summarize : t -> summary
(** One consistent pass over the cells (single snapshot of the totals,
    so the four quantiles agree on [s_count]). *)

val merge_into : into:t -> t -> unit
(** Cell-wise add of [src]'s totals into [into]'s first row: the
    result estimates the concatenation of both streams exactly. *)

val reset : t -> unit

(** {1 Registry-wide views} *)

val snapshot : unit -> (string * summary) list
(** All registered sketches, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered sketch (registrations persist). *)

val summary_json : summary -> string
(** One JSON object; empty sketches print quantiles as [0]. *)

val to_json : (string * summary) list -> string
(** JSON object keyed by sketch name. *)

val to_prometheus : (string * summary) list -> string
(** Prometheus [summary] exposition ([{quantile="0.99"}] series plus
    [_sum]/[_count]). *)
