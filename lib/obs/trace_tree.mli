(** Span-forest reconstruction and critical-path analysis.

    Works over any span list: the live ring ({!Trace.spans}) or spans
    parsed back from one or more JSONL trace files ({!parse_jsonl}) —
    files from different domains or processes can simply be
    concatenated, since causal ids are globally unique.

    The forest is always well-formed: spans whose [parent_id] is 0 or
    unresolvable become roots (counted in [orphans]), and parent cycles
    (possible only in corrupted or hand-edited files) are broken by
    promoting nodes to roots (counted in [cycles_broken]). *)

type node = {
  span : Trace.span;
  mutable children : node list;  (** sorted by start time *)
  mutable parent : node option;
}

type forest = {
  roots : node list;  (** sorted by start time *)
  node_count : int;
  orphans : int;  (** spans with an unresolvable non-zero parent *)
  cycles_broken : int;  (** nodes promoted to roots to break cycles *)
}

val of_spans : Trace.span list -> forest
val end_ns : node -> int64
val iter : (node -> unit) -> node -> unit
val iter_forest : (node -> unit) -> forest -> unit

val self_ns : node -> int64
(** Span duration minus the union of its children's intervals clamped
    to its own (overlapping children — parallel work on other domains —
    are merged, not double-counted). *)

(** {1 Per-phase rollups} *)

type rollup = {
  r_name : string;
  r_count : int;
  r_total_ns : int64;  (** sum of span durations *)
  r_self_ns : int64;  (** sum of self times *)
  r_max_ns : int64;  (** longest single span *)
}

val rollups : forest -> rollup list
(** One row per span name, sorted by total self time (descending). *)

(** {1 Critical path} *)

type path_step = { p_node : node; p_ns : int64 }

val critical_path : node -> path_step list
(** The blocking chain of a root span, computed by a backward walk: at
    each instant the blocking span is the child with the latest end
    before the cursor, and gaps between children are the parent's own
    time.  Each span appears at most once (its blocking segments
    summed), in order of first appearance in time.  The step durations
    partition the root's interval exactly:
    [path_total (critical_path r) = r.span.dur_ns]. *)

val path_total : path_step list -> int64

val main_root : forest -> node option
(** The longest root span — the run under analysis when a file holds
    several traces.  [None] on an empty forest. *)

(** {1 JSONL parsing} *)

val parse_jsonl : string -> Trace.span list
(** Parse {!Trace.to_jsonl} output (one flat JSON object per line;
    blank lines skipped).  Unknown keys are ignored and missing causal
    ids default to 0, so pre-causal trace files still load.
    @raise Failure on a malformed line. *)

(** {1 Exporters} *)

val to_chrome_json : Trace.span list -> string
(** Chrome trace-event JSON (array form): complete events ([ph:"X"])
    with microsecond [ts]/[dur], [pid]/[tid] from the recording
    process/domain, causal ids under [args].  Loads in Perfetto and
    chrome://tracing. *)

val to_folded : forest -> string
(** Folded-stack lines ["root;child;leaf <self_ns>"] for
    flamegraph.pl / speedscope (semicolons and spaces in span names are
    mapped to ['_']). *)
