type span = { name : string; start_ns : int64; dur_ns : int64; domain : int }

let dummy = { name = ""; start_ns = 0L; dur_ns = 0L; domain = 0 }
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* The ring is an array of boxed records: a slot write is a single
   pointer store, so concurrent readers never see a torn span.  [next]
   counts every span ever recorded; slot = next mod capacity. *)
let ring = ref (Array.make 4096 dummy)
let next = Atomic.make 0
let capacity () = Array.length !ring

let reset ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Ds_obs.Trace.reset: capacity must be > 0"
  | Some c -> ring := Array.make c dummy
  | None -> Array.fill !ring 0 (Array.length !ring) dummy);
  Atomic.set next 0

let push sp =
  let r = !ring in
  let i = Atomic.fetch_and_add next 1 in
  r.(i mod Array.length r) <- sp

let record name ~start_ns ~dur_ns =
  if Atomic.get enabled_flag then
    push { name; start_ns; dur_ns; domain = (Domain.self () :> int) }

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        record name ~start_ns:t0 ~dur_ns:(Clock.elapsed_ns t0))
      f
  end

let recorded () = Atomic.get next

let spans () =
  let r = !ring in
  let cap = Array.length r in
  let total = Atomic.get next in
  let kept = min total cap in
  let first = total - kept in
  List.init kept (fun i -> r.((first + i) mod cap))

let to_jsonl () =
  let b = Buffer.create 1024 in
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"domain\":%d}\n"
           (String.concat "\\\"" (String.split_on_char '"' sp.name))
           sp.start_ns sp.dur_ns sp.domain))
    (spans ());
  Buffer.contents b
