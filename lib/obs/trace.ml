type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  domain : int;
  pid : int;
  trace_id : int64;
  span_id : int64;
  parent_id : int64;
}

type context = { trace_id : int64; span_id : int64 }

let dummy =
  {
    name = "";
    start_ns = 0L;
    dur_ns = 0L;
    domain = 0;
    pid = 0;
    trace_id = 0L;
    span_id = 0L;
    parent_id = 0L;
  }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

external getpid : unit -> int = "ds_obs_getpid"

let pid = getpid ()

(* Span/trace ids: a SplitMix64 finalizer over (pid, global counter).  The
   finalizer is a bijection on 64 bits, so two ids collide only if their
   (pid, counter) words collide: never within a process (the counter is a
   fetch-and-add), and across processes only once a counter passes 2^40.
   Ids are folded to 63 bits (positive when printed as JSON integers); 0 is
   reserved for "no parent". *)
let id_counter = Atomic.make 0

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fresh_id () =
  let c = Atomic.fetch_and_add id_counter 1 in
  let word = Int64.logxor (Int64.shift_left (Int64.of_int pid) 40) (Int64.of_int c) in
  let id = Int64.logand (mix64 word) 0x7fffffffffffffffL in
  if id = 0L then 1L else id

(* The ambient span stack is domain-local: [with_span] nests automatically
   within one domain, and execution boundaries (pool submission, wire
   envelopes) carry a {!context} across explicitly. *)
let stack_key : (int64 * int64) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_context () =
  if not (Atomic.get enabled_flag) then None
  else
    match !(Domain.DLS.get stack_key) with
    | (trace_id, span_id) :: _ -> Some { trace_id; span_id }
    | [] -> None

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some { trace_id; span_id } ->
      let st = Domain.DLS.get stack_key in
      let saved = !st in
      st := [ (trace_id, span_id) ];
      Fun.protect ~finally:(fun () -> st := saved) f

(* The ring is an array of boxed records: a slot write is a single
   pointer store, so concurrent readers never see a torn span.  [next]
   counts every span ever recorded; slot = next mod capacity. *)
let ring = ref (Array.make 4096 dummy)
let next = Atomic.make 0
let capacity () = Array.length !ring

let reset ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Ds_obs.Trace.reset: capacity must be > 0"
  | Some c -> ring := Array.make c dummy
  | None -> Array.fill !ring 0 (Array.length !ring) dummy);
  Atomic.set next 0

let push sp =
  let r = !ring in
  let i = Atomic.fetch_and_add next 1 in
  r.(i mod Array.length r) <- sp

(* Ambient ids for a new span: inherit the domain's open span as parent, or
   start a fresh trace at the root. *)
let ambient_ids () =
  match !(Domain.DLS.get stack_key) with
  | (trace_id, span_id) :: _ -> (trace_id, span_id)
  | [] -> (fresh_id (), 0L)

let record name ~start_ns ~dur_ns =
  if Atomic.get enabled_flag then begin
    let trace_id, parent_id = ambient_ids () in
    push
      {
        name;
        start_ns;
        dur_ns;
        domain = (Domain.self () :> int);
        pid;
        trace_id;
        span_id = fresh_id ();
        parent_id;
      }
  end

let record_linked name { trace_id; span_id = parent_id } ~start_ns ~dur_ns =
  if Atomic.get enabled_flag then
    push
      {
        name;
        start_ns;
        dur_ns;
        domain = (Domain.self () :> int);
        pid;
        trace_id;
        span_id = fresh_id ();
        parent_id;
      }

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get stack_key in
    let trace_id, parent_id =
      match !st with (t, s) :: _ -> (t, s) | [] -> (fresh_id (), 0L)
    in
    let span_id = fresh_id () in
    st := (trace_id, span_id) :: !st;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        (match !st with _ :: tl -> st := tl | [] -> ());
        push
          {
            name;
            start_ns = t0;
            dur_ns = Clock.elapsed_ns t0;
            domain = (Domain.self () :> int);
            pid;
            trace_id;
            span_id;
            parent_id;
          })
      f
  end

let recorded () = Atomic.get next

let spans () =
  let r = !ring in
  let cap = Array.length r in
  let total = Atomic.get next in
  let kept = min total cap in
  let first = total - kept in
  List.init kept (fun i -> r.((first + i) mod cap))

let dropped () = max 0 (recorded () - min (recorded ()) (capacity ()))

let span_to_json sp =
  Printf.sprintf
    "{\"name\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"domain\":%d,\"pid\":%d,\"trace_id\":%Ld,\"span_id\":%Ld,\"parent_id\":%Ld}"
    (String.concat "\\\"" (String.split_on_char '"' sp.name))
    sp.start_ns sp.dur_ns sp.domain sp.pid sp.trace_id sp.span_id sp.parent_id

let to_jsonl () =
  let b = Buffer.create 1024 in
  List.iter
    (fun sp ->
      Buffer.add_string b (span_to_json sp);
      Buffer.add_char b '\n')
    (spans ());
  Buffer.contents b
