(* Streaming quantile sketch: an HDR-style sub-bucketed log histogram.

   The registry's log2 histograms answer "which power-of-two bucket"
   — useless for an honest p99 (the bucket containing p99 can be 2x
   wide).  This sketch refines each octave into [subs] equal-width
   sub-buckets, so any nonnegative int sample lands in a cell whose
   width is at most [1/subs] of its magnitude.  A nearest-rank
   estimate returned as the cell midpoint is therefore within
   [1/(2*subs)] relative error (= 1/64 with sub_bits = 5), comfortably
   inside the 5% rank-error budget the tests demand at p99/p999.

   Memory is fixed: values 0..subs-1 get one exact cell each, and each
   octave [2^p, 2^(p+1)) for p in [sub_bits, 62] gets [subs] cells —
   1888 int atomics per shard, ~15 KiB.  Cells are pure counts, so a
   cell-wise sum of two sketches is exactly the sketch of the
   concatenated streams: merge = concat, deterministically.

   Concurrency mirrors [Metrics]: registered sketches shard their cell
   rows by domain id and gate observation on the global metrics
   switch; ad-hoc sketches ([make]) default to one row and no gate,
   for single-domain callers like [Loadgen] that always want the
   numbers. *)

let sub_bits = 5
let subs = 1 lsl sub_bits
let max_exp = 62

(* Octaves [2^sub_bits, 2^(sub_bits+1)) .. [2^max_exp, 2^63). *)
let octaves = max_exp - sub_bits + 1
let n_cells = subs * (octaves + 1)

(* Each shard row carries the cells plus one trailing sum slot. *)
let row_len = n_cells + 1

type t = {
  q_gated : bool;
  q_mask : int;  (* shard count - 1; 0 for single-row sketches *)
  q_rows : int Atomic.t array array;
}

let make_rows n = Array.init n (fun _ -> Array.init row_len (fun _ -> Atomic.make 0))

let make ?(gated = false) () = { q_gated = gated; q_mask = 0; q_rows = make_rows 1 }

(* --- registry, mirroring Metrics --- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let quantile name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some q -> q
      | None ->
          let q =
            {
              q_gated = true;
              q_mask = Metrics.shards - 1;
              q_rows = make_rows Metrics.shards;
            }
          in
          Hashtbl.add registry name q;
          q)

let unregister name = with_lock (fun () -> Hashtbl.remove registry name)

(* --- cell geometry --- *)

let cell_of v =
  if v < subs then if v < 0 then 0 else v
  else begin
    (* p = floor(log2 v), in [sub_bits, max_exp]. *)
    let p = ref sub_bits and x = ref (v lsr sub_bits) in
    while !x > 1 do
      incr p;
      x := !x lsr 1
    done;
    let sub = (v lsr (!p - sub_bits)) land (subs - 1) in
    ((!p - sub_bits + 1) * subs) + sub
  end

(* Midpoint of the inclusive integer range a cell covers; exact for
   the linear region and the first octave (width-1 cells). *)
let cell_mid c =
  if c < subs then float_of_int c
  else begin
    let octave = (c / subs) - 1 in
    let sub = c land (subs - 1) in
    let shift = octave in
    let lo = (subs + sub) lsl shift in
    let width = 1 lsl shift in
    float_of_int lo +. (float_of_int (width - 1) /. 2.0)
  end

(* --- observation --- *)

let observe t v =
  if (not t.q_gated) || Metrics.enabled () then begin
    let v = if v < 0 then 0 else v in
    let row =
      if t.q_mask = 0 then t.q_rows.(0)
      else t.q_rows.((Domain.self () :> int) land t.q_mask)
    in
    ignore (Atomic.fetch_and_add row.(cell_of v) 1);
    ignore (Atomic.fetch_and_add row.(n_cells) v)
  end

(* --- reading --- *)

let totals t =
  let tot = Array.make row_len 0 in
  Array.iter
    (fun row ->
      for i = 0 to row_len - 1 do
        tot.(i) <- tot.(i) + Atomic.get row.(i)
      done)
    t.q_rows;
  tot

let count_of tot =
  let n = ref 0 in
  for i = 0 to n_cells - 1 do
    n := !n + tot.(i)
  done;
  !n

let estimate_in tot ~count q =
  if count = 0 then Float.nan
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    let cum = ref 0 and cell = ref (-1) and i = ref 0 in
    while !cell < 0 && !i < n_cells do
      cum := !cum + tot.(!i);
      if !cum >= rank then cell := !i;
      incr i
    done;
    cell_mid (if !cell < 0 then n_cells - 1 else !cell)
  end

let count t = count_of (totals t)
let sum t = (totals t).(n_cells)

let estimate t q =
  let tot = totals t in
  estimate_in tot ~count:(count_of tot) q

type summary = {
  s_count : int;
  s_sum : int;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

let summarize t =
  let tot = totals t in
  let count = count_of tot in
  {
    s_count = count;
    s_sum = tot.(n_cells);
    s_p50 = estimate_in tot ~count 0.5;
    s_p90 = estimate_in tot ~count 0.9;
    s_p99 = estimate_in tot ~count 0.99;
    s_p999 = estimate_in tot ~count 0.999;
  }

let merge_into ~into src =
  let tot = totals src in
  let row = into.q_rows.(0) in
  for i = 0 to row_len - 1 do
    if tot.(i) <> 0 then ignore (Atomic.fetch_and_add row.(i) tot.(i))
  done

let reset t =
  Array.iter (fun row -> Array.iter (fun c -> Atomic.set c 0) row) t.q_rows

(* --- registry-wide views --- *)

let snapshot () =
  let items =
    with_lock (fun () -> Hashtbl.fold (fun name q acc -> (name, q) :: acc) registry [])
  in
  let items = List.map (fun (name, q) -> (name, summarize q)) items in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let reset_all () =
  with_lock (fun () -> Hashtbl.iter (fun _ q -> reset q) registry)

(* --- exporters --- *)

let num f = if Float.is_nan f then "0" else Printf.sprintf "%.1f" f

let summary_json s =
  Printf.sprintf "{\"count\":%d,\"sum\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"p999\":%s}"
    s.s_count s.s_sum (num s.s_p50) (num s.s_p90) (num s.s_p99) (num s.s_p999)

let to_json items =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":%s" (Ds_util.Json.escape name) (summary_json s))
    items;
  Buffer.add_char b '}';
  Buffer.contents b

let to_prometheus items =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, s) ->
      let n = Metrics.sanitize name in
      Printf.bprintf b "# TYPE %s summary\n" n;
      List.iter
        (fun (q, v) -> Printf.bprintf b "%s{quantile=\"%s\"} %s\n" n q (num v))
        [ ("0.5", s.s_p50); ("0.9", s.s_p90); ("0.99", s.s_p99); ("0.999", s.s_p999) ];
      Printf.bprintf b "%s_sum %d\n%s_count %d\n" n s.s_sum n s.s_count)
    items;
  Buffer.contents b
