(* Span-forest reconstruction and critical-path analysis over causal
   traces (Trace spans from the live ring, or parsed back from JSONL
   trace files of one or more domains/processes). *)

type node = {
  span : Trace.span;
  mutable children : node list; (* sorted by start_ns *)
  mutable parent : node option;
}

type forest = {
  roots : node list; (* sorted by start_ns *)
  node_count : int;
  orphans : int; (* parent_id set but not present in the span set *)
  cycles_broken : int; (* nodes promoted to roots to break parent cycles *)
}

let end_ns n = Int64.add n.span.Trace.start_ns n.span.Trace.dur_ns

let by_start a b =
  match Int64.compare a.span.Trace.start_ns b.span.Trace.start_ns with
  | 0 -> Int64.compare a.span.Trace.span_id b.span.Trace.span_id
  | c -> c

(* Build the forest: link children to parents by id, treat unresolvable
   parents as roots (counting them), then break any parent cycles (possible
   only in hand-edited or adversarial trace files) by promoting the
   earliest unreachable node to a root until every node is reachable.  The
   returned forest is therefore always acyclic with every edge resolvable. *)
let of_spans spans =
  let nodes = List.map (fun span -> { span; children = []; parent = None }) spans in
  let tbl = Hashtbl.create (List.length nodes * 2) in
  List.iter (fun n -> Hashtbl.replace tbl n.span.Trace.span_id n) nodes;
  let roots = ref [] and orphans = ref 0 in
  List.iter
    (fun n ->
      let pid = n.span.Trace.parent_id in
      if pid = 0L then roots := n :: !roots
      else
        match Hashtbl.find_opt tbl pid with
        | Some p when p != n ->
            n.parent <- Some p;
            p.children <- n :: p.children
        | _ ->
            incr orphans;
            roots := n :: !roots)
    nodes;
  (* Reachability sweep; detach-and-promote breaks cycles. *)
  let visited = Hashtbl.create (List.length nodes * 2) in
  let rec mark n =
    if not (Hashtbl.mem visited n.span.Trace.span_id) then begin
      Hashtbl.replace visited n.span.Trace.span_id n;
      List.iter mark n.children
    end
  in
  let cycles = ref 0 in
  let rec sweep () =
    List.iter mark !roots;
    let unreached =
      List.filter (fun n -> not (Hashtbl.mem visited n.span.Trace.span_id)) nodes
    in
    match List.sort by_start unreached with
    | [] -> ()
    | n :: _ ->
        (match n.parent with
        | Some p ->
            p.children <- List.filter (fun c -> c != n) p.children;
            n.parent <- None
        | None -> ());
        incr cycles;
        roots := n :: !roots;
        sweep ()
  in
  sweep ();
  List.iter (fun n -> n.children <- List.sort by_start n.children) nodes;
  {
    roots = List.sort by_start !roots;
    node_count = List.length nodes;
    orphans = !orphans;
    cycles_broken = !cycles;
  }

let rec iter f node =
  f node;
  List.iter (iter f) node.children

let iter_forest f forest = List.iter (iter f) forest.roots

(* Self time: the node's duration minus the union of its children's
   intervals clamped to its own.  Children may overlap (parallel shards on
   other domains), so intervals are merged, never summed. *)
let self_ns node =
  let s = node.span.Trace.start_ns and e = end_ns node in
  let clamped =
    List.filter_map
      (fun c ->
        let cs = max s c.span.Trace.start_ns and ce = min e (end_ns c) in
        if Int64.compare ce cs > 0 then Some (cs, ce) else None)
      node.children
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Int64.compare a b) clamped in
  let covered = ref 0L and cursor = ref s in
  List.iter
    (fun (cs, ce) ->
      let cs = max cs !cursor in
      if Int64.compare ce cs > 0 then begin
        covered := Int64.add !covered (Int64.sub ce cs);
        cursor := ce
      end)
    sorted;
  Int64.sub node.span.Trace.dur_ns !covered

(* -------------------- per-phase rollups -------------------- *)

type rollup = {
  r_name : string;
  r_count : int;
  r_total_ns : int64; (* sum of span durations *)
  r_self_ns : int64; (* sum of self times *)
  r_max_ns : int64; (* longest single span *)
}

let rollups forest =
  let tbl = Hashtbl.create 64 in
  iter_forest
    (fun n ->
      let name = n.span.Trace.name in
      let prev =
        Option.value
          (Hashtbl.find_opt tbl name)
          ~default:{ r_name = name; r_count = 0; r_total_ns = 0L; r_self_ns = 0L; r_max_ns = 0L }
      in
      Hashtbl.replace tbl name
        {
          prev with
          r_count = prev.r_count + 1;
          r_total_ns = Int64.add prev.r_total_ns n.span.Trace.dur_ns;
          r_self_ns = Int64.add prev.r_self_ns (self_ns n);
          r_max_ns = max prev.r_max_ns n.span.Trace.dur_ns;
        })
    forest;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> Int64.compare b.r_self_ns a.r_self_ns)

(* -------------------- critical path -------------------- *)

(* Backward walk from the root's end: at each instant the blocking span is
   the child with the latest end before the cursor; gaps between children
   are the parent's own time.  The produced segments partition the root's
   interval exactly, so their durations sum to the root duration by
   construction — the cross-check `trace-analyze` reports. *)
let critical_segments root =
  let segs = ref [] in
  let rec walk node ~floor ~until =
    let rec consume t =
      if Int64.compare t floor <= 0 then ()
      else begin
        let best =
          List.fold_left
            (fun acc c ->
              if Int64.compare c.span.Trace.start_ns t < 0 then
                let ce = min (end_ns c) t in
                if Int64.compare ce floor > 0 then
                  match acc with
                  | Some b when Int64.compare (min (end_ns b) t) ce >= 0 -> acc
                  | _ -> Some c
                else acc
              else acc)
            None node.children
        in
        match best with
        | None -> segs := (node, Int64.sub t floor) :: !segs
        | Some c ->
            let c_end = min (end_ns c) t in
            if Int64.compare c_end t < 0 then segs := (node, Int64.sub t c_end) :: !segs;
            let c_floor = max floor c.span.Trace.start_ns in
            walk c ~floor:c_floor ~until:c_end;
            consume c_floor
      end
    in
    ignore until;
    consume until
  in
  walk root ~floor:root.span.Trace.start_ns ~until:(end_ns root);
  !segs (* ascending in time: built by prepending as the cursor moves back *)

type path_step = { p_node : node; p_ns : int64 }

(* One entry per span on the path (a span interrupted by children appears
   once, with its segments summed), ordered by first appearance in time. *)
let critical_path root =
  let segs = critical_segments root in
  let order = Hashtbl.create 16 and totals = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun (n, d) ->
      let id = n.span.Trace.span_id in
      if not (Hashtbl.mem order id) then begin
        Hashtbl.replace order id (!next, n);
        incr next
      end;
      Hashtbl.replace totals id
        (Int64.add d (Option.value ~default:0L (Hashtbl.find_opt totals id))))
    segs;
  Hashtbl.fold (fun id (rank, n) acc -> (rank, { p_node = n; p_ns = Hashtbl.find totals id }) :: acc) order []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let path_total path = List.fold_left (fun acc s -> Int64.add acc s.p_ns) 0L path

(* Longest root = the run under analysis, when several traces share a file. *)
let main_root forest =
  List.fold_left
    (fun acc n ->
      match acc with
      | Some b when Int64.compare b.span.Trace.dur_ns n.span.Trace.dur_ns >= 0 -> acc
      | _ -> Some n)
    None forest.roots

(* -------------------- JSONL parsing -------------------- *)

(* Minimal parser for the flat one-object-per-line format Trace.to_jsonl
   writes: string and integer values only.  Unknown keys are ignored and
   missing causal ids default to 0, so pre-causal trace files still load. *)
let parse_object line =
  let len = String.length line in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Trace_tree.parse: %s at byte %d" msg !pos) in
  let skip_ws () =
    while !pos < len && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect ch =
    skip_ws ();
    if !pos >= len || line.[!pos] <> ch then fail (Printf.sprintf "expected %C" ch);
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= len then fail "dangling escape";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 5 >= len then fail "short unicode escape";
              let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
              Buffer.add_char b (Char.chr (code land 0xff));
              pos := !pos + 4
          | c -> Buffer.add_char b c);
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < len && line.[!pos] = '-' then incr pos;
    while !pos < len && line.[!pos] >= '0' && line.[!pos] <= '9' do incr pos done;
    if !pos = start then fail "expected integer";
    Int64.of_string (String.sub line start (!pos - start))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < len && line.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let v =
        if !pos < len && line.[!pos] = '"' then `Str (parse_string ()) else `Int (parse_int ())
      in
      fields := (key, v) :: !fields;
      skip_ws ();
      if !pos < len && line.[!pos] = ',' then begin
        incr pos;
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  !fields

let span_of_fields fields =
  let int_field key default =
    match List.assoc_opt key fields with Some (`Int v) -> v | _ -> default
  in
  let str_field key default =
    match List.assoc_opt key fields with Some (`Str v) -> v | _ -> default
  in
  {
    Trace.name = str_field "name" "?";
    start_ns = int_field "start_ns" 0L;
    dur_ns = int_field "dur_ns" 0L;
    domain = Int64.to_int (int_field "domain" 0L);
    pid = Int64.to_int (int_field "pid" 0L);
    trace_id = int_field "trace_id" 0L;
    span_id = int_field "span_id" 0L;
    parent_id = int_field "parent_id" 0L;
  }

let parse_jsonl data =
  String.split_on_char '\n' data
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> span_of_fields (parse_object l))

(* -------------------- exporters -------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace-event JSON (the array form): complete events ("ph":"X")
   with microsecond timestamps, pid/tid from the recording process/domain.
   Loads directly in Perfetto and chrome://tracing. *)
let to_chrome_json spans =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (sp : Trace.span) ->
      if i > 0 then Buffer.add_string b ",\n ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"trace_id\":\"%Lx\",\"span_id\":\"%Lx\",\"parent_id\":\"%Lx\"}}"
           (json_escape sp.Trace.name)
           (Int64.to_float sp.Trace.start_ns /. 1e3)
           (Int64.to_float sp.Trace.dur_ns /. 1e3)
           sp.Trace.pid sp.Trace.domain sp.Trace.trace_id sp.Trace.span_id sp.Trace.parent_id))
    spans;
  Buffer.add_string b "]\n";
  Buffer.contents b

(* Folded-stack output for flamegraph.pl / speedscope: one line per
   distinct root-to-node chain, weighted by summed self time in ns. *)
let to_folded forest =
  let clean name =
    String.map (function ';' | ' ' -> '_' | c -> c) name
  in
  let tbl = Hashtbl.create 64 in
  let rec go prefix n =
    let stack =
      if prefix = "" then clean n.span.Trace.name
      else prefix ^ ";" ^ clean n.span.Trace.name
    in
    let self = self_ns n in
    if Int64.compare self 0L > 0 then
      Hashtbl.replace tbl stack
        (Int64.add self (Option.value ~default:0L (Hashtbl.find_opt tbl stack)));
    List.iter (go stack) n.children
  in
  List.iter (go "") forest.roots;
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let b = Buffer.create 1024 in
  List.iter
    (fun (stack, ns) -> Buffer.add_string b (Printf.sprintf "%s %Ld\n" stack ns))
    (List.sort compare lines);
  Buffer.contents b
