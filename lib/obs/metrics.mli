(** Metrics registry: counters, gauges and log-scale histograms.

    Design constraints (see DESIGN.md section 8):

    - {b cheap when disabled}: every hot-path operation is a single load
      of one [bool Atomic.t] followed by a conditional branch; no
      allocation, no locking.
    - {b domain-safe}: counters and histograms are sharded across a
      fixed array of atomic cells indexed by [Domain.self () land
      (shards - 1)].  Writers never contend on a cache line unless two
      domains alias the same shard; readers sum the shards at snapshot
      time.  Totals are exact (every increment lands in exactly one
      shard), so snapshots of a quiesced registry are deterministic.
    - {b stable identity}: [counter name] returns the same cell set for
      the same name for the lifetime of the process; re-registration is
      idempotent.  Names must be unique across metric kinds.

    Gauges are last-writer-wins single cells: exact under quiesced
    reads, racy (but never torn) under concurrent writers. *)

val shards : int
(** Number of per-domain shards (a power of two). *)

(** {1 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Metric kinds} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create the counter registered under this name.
    @raise Invalid_argument if the name is registered as another kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> int -> unit
(** [incr c n] adds [n] to the calling domain's shard of [c].  No-op
    when disabled. *)

val set : gauge -> int -> unit
(** Last-writer-wins store.  No-op when disabled. *)

val observe : histogram -> int -> unit
(** Record a sample into the log2 bucket containing it: bucket [b]
    holds values in [[2^b, 2^(b+1))], with all values [<= 1] (including
    negatives) in bucket 0.  No-op when disabled. *)

val value : counter -> int
(** Sum over all shards. *)

val gauge_value : gauge -> int

(** {1 Snapshots} *)

type hist_view = {
  h_count : int;  (** total number of samples *)
  h_sum : int;  (** sum of all samples *)
  h_buckets : (int * int) list;
      (** [(le, count)] per non-empty bucket, ascending [le]; [le] is
          the largest value the bucket can hold ([2^(b+1) - 1]). *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_view) list;
}
(** All lists sorted by name; taken under the registry lock. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric (registrations themselves persist). *)

val unregister : string -> unit
(** Remove a metric from the registry entirely: it stops appearing in
    snapshots and exports.  Callers still holding the handle can keep
    writing to its (now orphaned) cells; a later re-registration under
    the same name creates fresh cells.  Exists so unbounded name
    spaces (per-tenant gauges) can evict cold entries. *)

val sanitize : string -> string
(** Prometheus-legal metric name: out-of-charset bytes become ['_'],
    a leading digit gets a ['_'] prefix. *)

(** {1 Exporters} *)

val to_json : snapshot -> string
(** One JSON object [{"counters":{..},"gauges":{..},"histograms":{..}}],
    keys in sorted order, no trailing newline. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format.  Metric names are sanitised
    ([.] and [-] become [_]); histograms emit cumulative [_bucket]
    lines with [le] labels plus [_sum] and [_count]. *)
