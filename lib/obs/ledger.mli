(** Space ledger: measured sketch space vs. closed-form theorem bounds.

    At a named phase boundary the caller records the live state's
    [space_in_words] (and optionally its serialized wire bytes) next to
    the theorem's closed-form bound in words — e.g. pass-1 spanner
    state against [k * n^(1+1/k) * log2 n] (Theorem 1) or the additive
    sketch against [n * d * log2 n] (Theorem 3).  The ledger reports
    the measured constant [c = words / bound]: the paper's claims hold
    iff [c] stays bounded as [n] grows, so [check] compares [c] to a
    generous polylog-slack tolerance rather than demanding [c <= 1]. *)

type entry = {
  phase : string;
  words : int;  (** measured [space_in_words] at the boundary *)
  wire_bytes : int;  (** serialized bytes at the boundary; 0 if not taken *)
  off_heap_bytes : int;
      (** true off-heap storage cost: sketch counters live in
          {!Ds_util.Words} buffers at 8 bytes per word slot, so this
          defaults to [8 * words] unless the recorder overrides it *)
  bound_words : float;  (** closed-form bound in words *)
  constant : float;  (** [words /. bound_words] *)
}

val default_tolerance : float
(** Maximum acceptable measured constant (covers polylog factors and
    repetition constants the asymptotic bound hides). *)

val record :
  ?wire_bytes:int -> ?off_heap_bytes:int -> phase:string -> words:int -> float -> unit
(** [record ~phase ~words bound] appends an entry.  No-op when
    {!Metrics.enabled} is false.  [off_heap_bytes] defaults to
    [8 * words] — the exact buffer cost of word-backed sketch state.
    @raise Invalid_argument if [bound <= 0] or [words < 0]. *)

val entries : unit -> entry list
(** Entries in recording order. *)

val check : ?tolerance:float -> entry -> bool
(** [check e] is true iff [0 <= e.constant <= tolerance] (default
    {!default_tolerance}). *)

val reset : unit -> unit

val pp_entry : Format.formatter -> entry -> unit
(** [phase words=… wire=…B bound=… c=… ok=…] — one line. *)

val to_json : unit -> string
(** JSON array of entries, each with a ["within_bound"] field from
    [check] at the default tolerance. *)
