/* Monotonic clock primitive for Ds_obs.Clock.

   CLOCK_MONOTONIC never jumps backwards under NTP adjustments, which is
   the property span durations need.  Unix.gettimeofday is wall clock and
   mtime is not vendored, hence this 20-line stub. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ds_obs_clock_now_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL +
                         (int64_t)ts.tv_nsec);
}

/* Process id for span identity: merged trace files from several
   processes must not collide on span ids, so the id stream is keyed by
   (pid, counter).  Avoids a unix-library dependency for one syscall. */

#include <unistd.h>

CAMLprim value ds_obs_getpid(value unit)
{
  (void)unit;
  return Val_int((int)getpid());
}
