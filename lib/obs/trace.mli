(** Causal span tracing into a fixed-size ring buffer.

    Spans carry monotonic-clock timestamps ({!Clock.now_ns}), the id of
    the recording domain/process, and {e causal ids}: every span has a
    [span_id], a [parent_id] (the span that was open on the same domain
    when it started, or [0] for a root) and a [trace_id] shared by every
    span of one logical run.  Nesting is automatic within a domain
    ({!with_span} keeps a domain-local span stack); across execution
    boundaries — pool task submission, wire envelopes, retries — the
    caller carries a {!context} explicitly ({!current_context} /
    {!with_context}) so the receiving side's spans link into the sending
    side's trace.

    The ring keeps the most recent [capacity] spans; older ones are
    overwritten (the total recorded count is still reported, so drops
    are visible).  Disabled tracing costs one atomic load + branch per
    [with_span].

    Ids are 63-bit positive integers from a SplitMix64 stream keyed by
    [(pid, counter)]: unique within a process, and distinct across
    processes (for merged multi-process trace files) as long as no
    process records 2^40 spans.  [0] never names a span — it is the
    "no parent" marker. *)

type span = {
  name : string;
  start_ns : int64;  (** monotonic, arbitrary origin *)
  dur_ns : int64;
  domain : int;  (** integer id of the recording domain *)
  pid : int;  (** recording process, for merged multi-process traces *)
  trace_id : int64;  (** shared by all spans of one logical run *)
  span_id : int64;  (** unique, never 0 *)
  parent_id : int64;  (** 0 for a trace root *)
}

type context = { trace_id : int64; span_id : int64 }
(** A point in some trace: enough to parent new spans under [span_id]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val capacity : unit -> int
(** Current ring capacity (default 4096). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when enabled, records a span even
    if [f] raises.  The span's parent is the innermost [with_span] open
    on this domain (via {!with_context} at an execution boundary);
    without one it starts a fresh trace. *)

val current_context : unit -> context option
(** The innermost open span on this domain, as a carryable context.
    [None] when tracing is disabled or no span is open — so capturing a
    context at a boundary is free in the disabled path. *)

val with_context : context option -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with [ctx] installed as the ambient
    parent: spans created inside attach under [ctx.span_id] and inherit
    [ctx.trace_id].  The previous ambient stack is restored afterwards
    (exception-safe).  [with_context None f] is [f ()]. *)

val record : string -> start_ns:int64 -> dur_ns:int64 -> unit
(** Record a span with explicit timestamps (for replaying external
    timings).  Parented like {!with_span}.  No-op when disabled. *)

val record_linked : string -> context -> start_ns:int64 -> dur_ns:int64 -> unit
(** Record a span whose parent is the given carried context rather than
    the ambient stack — how a decode span links to the trace embedded
    in a wire envelope.  No-op when disabled. *)

val spans : unit -> span list
(** The retained spans in recording order (oldest first). *)

val recorded : unit -> int
(** Total spans recorded since the last [reset], including overwritten
    ones. *)

val dropped : unit -> int
(** Spans overwritten by ring wraparound:
    [recorded () - List.length (spans ())]. *)

val reset : ?capacity:int -> unit -> unit
(** Clear the ring; optionally resize it.
    @raise Invalid_argument on non-positive capacity. *)

val span_to_json : span -> string
(** One span as a JSON object (no trailing newline). *)

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"name":..,"start_ns":..,"dur_ns":..,"domain":..,"pid":..,
      "trace_id":..,"span_id":..,"parent_id":..}]. *)
