(** Lightweight span tracing into a fixed-size ring buffer.

    Spans carry monotonic-clock timestamps ({!Clock.now_ns}) and the id
    of the recording domain.  The ring keeps the most recent
    [capacity] spans; older ones are overwritten (the total recorded
    count is still reported, so drops are visible).  Disabled tracing
    costs one atomic load + branch per [with_span]. *)

type span = {
  name : string;
  start_ns : int64;  (** monotonic, arbitrary origin *)
  dur_ns : int64;
  domain : int;  (** integer id of the recording domain *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val capacity : unit -> int
(** Current ring capacity (default 4096). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when enabled, records a span even
    if [f] raises. *)

val record : string -> start_ns:int64 -> dur_ns:int64 -> unit
(** Record a span with explicit timestamps (for replaying external
    timings).  No-op when disabled. *)

val spans : unit -> span list
(** The retained spans in recording order (oldest first). *)

val recorded : unit -> int
(** Total spans recorded since the last [reset], including overwritten
    ones; [recorded () - List.length (spans ())] spans were dropped. *)

val reset : ?capacity:int -> unit -> unit
(** Clear the ring; optionally resize it.
    @raise Invalid_argument on non-positive capacity. *)

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"name":..,"start_ns":..,"dur_ns":..,"domain":..}]. *)
