let enable () =
  Metrics.set_enabled true;
  Trace.set_enabled true

let disable () =
  Metrics.set_enabled false;
  Trace.set_enabled false

let active () = Metrics.enabled () || Trace.enabled ()

let reset () =
  Metrics.reset ();
  Quantile.reset_all ();
  Trace.reset ();
  Ledger.reset ()

let report_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"ds_obs/v1\",\"metrics\":";
  Buffer.add_string b (Metrics.to_json (Metrics.snapshot ()));
  Buffer.add_string b ",\"quantiles\":";
  Buffer.add_string b (Quantile.to_json (Quantile.snapshot ()));
  Buffer.add_string b ",\"spans\":[";
  List.iteri
    (fun i (sp : Trace.span) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Trace.span_to_json sp))
    (Trace.spans ());
  Buffer.add_string b (Printf.sprintf "],\"spans_dropped\":%d,\"ledger\":" (Trace.dropped ()));
  Buffer.add_string b (Ledger.to_json ());
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_report ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (report_json ()))

let prometheus () =
  Metrics.to_prometheus (Metrics.snapshot ())
  ^ Quantile.to_prometheus (Quantile.snapshot ())

let pp_summary ppf () =
  let snap = Metrics.snapshot () in
  let nonzero = List.filter (fun (_, v) -> v <> 0) snap.Metrics.counters in
  Format.fprintf ppf "obs: %d counters (%d non-zero), %d spans recorded@."
    (List.length snap.Metrics.counters)
    (List.length nonzero) (Trace.recorded ());
  let dropped = Trace.dropped () in
  if dropped > 0 then
    Format.fprintf ppf
      "  WARNING: span ring overwrote %d spans (capacity %d) — older spans lost@."
      dropped (Trace.capacity ());
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %s = %d@." name v)
    nonzero;
  List.iter
    (fun (name, s) ->
      if s.Quantile.s_count > 0 then
        Format.fprintf ppf "  %s: n=%d p50=%.0f p99=%.0f p999=%.0f@." name
          s.Quantile.s_count s.Quantile.s_p50 s.Quantile.s_p99
          s.Quantile.s_p999)
    (Quantile.snapshot ());
  List.iter
    (fun e -> Format.fprintf ppf "space-ledger: %a@." Ledger.pp_entry e)
    (Ledger.entries ())
