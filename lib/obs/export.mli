(** One-stop front-end: enable/disable all telemetry and render a
    combined report. *)

val enable : unit -> unit
(** Turn on metrics, tracing and the ledger. *)

val disable : unit -> unit
val active : unit -> bool

val reset : unit -> unit
(** Zero counters/gauges/histograms, clear spans and ledger entries.
    Registrations persist. *)

val report_json : unit -> string
(** [{"schema":"ds_obs/v1","metrics":{..},"quantiles":{..},
     "spans":[..],"spans_dropped":N,"ledger":[..]}] — spans inline as
    objects (same fields as the JSONL export, causal ids included);
    [spans_dropped] counts spans lost to ring wraparound; [quantiles]
    holds one {!Quantile.summary} per registered sketch.  Trailing
    newline included. *)

val write_report : path:string -> unit
(** Write {!report_json} to [path] (truncating). *)

val prometheus : unit -> string
(** Prometheus text format of the current metrics snapshot. *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-oriented digest: non-zero counters, span count (with a
    warning when the ring overwrote spans), and one ledger line per
    entry with the measured constant. *)
