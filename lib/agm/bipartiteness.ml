open Ds_graph

type t = {
  n : int;
  base : Agm_sketch.t; (* sketch of G, for #components(G) *)
  cover : Agm_sketch.t; (* sketch of the double cover D(G) on 2n vertices *)
}

let create rng ~n ~params =
  let cover_params = { params with Agm_sketch.copies = params.Agm_sketch.copies + 1 } in
  {
    n;
    base = Agm_sketch.create (Ds_util.Prng.split_named rng "base") ~n ~params;
    cover =
      Agm_sketch.create (Ds_util.Prng.split_named rng "cover") ~n:(2 * n) ~params:cover_params;
  }

let update t ~u ~v ~delta =
  Agm_sketch.update t.base ~u ~v ~delta;
  (* u0 = u, v0 = v, u1 = u + n, v1 = v + n. *)
  Agm_sketch.update t.cover ~u ~v:(v + t.n) ~delta;
  Agm_sketch.update t.cover ~u:(u + t.n) ~v ~delta

let clone_zero t =
  { t with base = Agm_sketch.clone_zero t.base; cover = Agm_sketch.clone_zero t.cover }

let add t s =
  Agm_sketch.add t.base s.base;
  Agm_sketch.add t.cover s.cover

let sub t s =
  Agm_sketch.sub t.base s.base;
  Agm_sketch.sub t.cover s.cover

let reset t =
  Agm_sketch.reset t.base;
  Agm_sketch.reset t.cover

type verdict = { components : int; bipartite_components : int; is_bipartite : bool }

let components_of_forest ~n forest =
  let uf = Union_find.create n in
  List.iter (fun (u, v) -> ignore (Union_find.union uf u v)) forest;
  Union_find.num_classes uf

let test t =
  let c_g = components_of_forest ~n:t.n (Agm_sketch.spanning_forest t.base) in
  let c_d = components_of_forest ~n:(2 * t.n) (Agm_sketch.spanning_forest t.cover) in
  (* Isolated vertices are bipartite components and lift to two isolated
     cover vertices, so the identity holds for them too. *)
  let bipartite_components = c_d - c_g in
  { components = c_g; bipartite_components; is_bipartite = bipartite_components = c_g }

let space_in_words t = Agm_sketch.space_in_words t.base + Agm_sketch.space_in_words t.cover

module Linear = struct
  type nonrec t = t

  let family = "bipartiteness"
  let dim t = Agm_sketch.Linear.dim t.base

  let shape t =
    Array.concat
      [ [| t.n |]; Agm_sketch.Linear.shape t.base; Agm_sketch.Linear.shape t.cover ]

  let clone_zero = clone_zero
  let add = add
  let sub = sub

  (* Indices range over the base graph's edge space; the double-cover lift
     happens inside [update]. *)
  let update t ~index ~delta =
    let u, v = Ds_graph.Edge_index.decode ~n:t.n index in
    update t ~u ~v ~delta

  let reset = reset
  let space_in_words = space_in_words

  let write_body t sink =
    Ds_util.Wire.write_tag sink "bip";
    Agm_sketch.write t.base sink;
    Agm_sketch.write t.cover sink

  let read_body t src =
    Ds_util.Wire.expect_tag src "bip";
    Agm_sketch.read_into t.base src;
    Agm_sketch.read_into t.cover src
end
