open Ds_graph

type t = { n : int; sketch : Agm_sketch.t }
type answers = { label : int array; count : int }

let create rng ~n ~params = { n; sketch = Agm_sketch.create rng ~n ~params }
let update t ~u ~v ~delta = Agm_sketch.update t.sketch ~u ~v ~delta
let update_batch t updates = Agm_sketch.update_batch t.sketch updates
let update_slice t updates ~pos ~len = Agm_sketch.update_slice t.sketch updates ~pos ~len
let clone_zero t = { t with sketch = Agm_sketch.clone_zero t.sketch }
let absorb t shard = Agm_sketch.add t.sketch shard.sketch
let add = absorb
let sub t s = Agm_sketch.sub t.sketch s.sketch
let reset t = Agm_sketch.reset t.sketch

let freeze t =
  let uf = Union_find.create t.n in
  List.iter
    (fun (u, v) -> ignore (Union_find.union uf u v))
    (Agm_sketch.spanning_forest t.sketch);
  (* Canonical labels: smallest member id per class. *)
  let label = Array.make t.n max_int in
  for v = 0 to t.n - 1 do
    let r = Union_find.find uf v in
    if v < label.(r) then label.(r) <- v
  done;
  let final = Array.init t.n (fun v -> label.(Union_find.find uf v)) in
  { label = final; count = Union_find.num_classes uf }

let components a = a.count
let connected a u v = a.label.(u) = a.label.(v)
let component_of a v = a.label.(v)
let space_in_words t = Agm_sketch.space_in_words t.sketch

module Linear = struct
  type nonrec t = t

  let family = "connectivity"
  let dim t = Agm_sketch.Linear.dim t.sketch
  let shape t = Agm_sketch.Linear.shape t.sketch
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update t ~index ~delta = Agm_sketch.Linear.update t.sketch ~index ~delta
  let reset = reset
  let space_in_words = space_in_words
  let write_body t sink = Agm_sketch.write t.sketch sink
  let read_body t src = Agm_sketch.read_into t.sketch src
end
