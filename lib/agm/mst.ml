open Ds_graph
open Ds_stream

type params = { gamma : float; w_min : float; w_max : float; sketch : Agm_sketch.params }

type t = {
  n : int;
  classes : Weight_class.t;
  sketches : Agm_sketch.t array; (* one per weight class *)
}

let create rng ~n ~params =
  let classes =
    Weight_class.create ~gamma:params.gamma ~w_min:params.w_min ~w_max:params.w_max
  in
  let sketches =
    Array.init (Weight_class.num_classes classes) (fun c ->
        Agm_sketch.create
          (Ds_util.Prng.split_named rng (Printf.sprintf "mst%d" c))
          ~n ~params:params.sketch)
  in
  { n; classes; sketches }

let update t ~u ~v ~weight ~delta =
  let c = Weight_class.class_of t.classes weight in
  Agm_sketch.update t.sketches.(c) ~u ~v ~delta

let clone_zero t = { t with sketches = Array.map Agm_sketch.clone_zero t.sketches }

let combine op t s =
  if t.n <> s.n || Array.length t.sketches <> Array.length s.sketches then
    invalid_arg "Mst: incompatible";
  Array.iteri (fun c sk -> op sk s.sketches.(c)) t.sketches

let add t s = combine Agm_sketch.add t s
let sub t s = combine Agm_sketch.sub t s
let reset t = Array.iter Agm_sketch.reset t.sketches

let extract t =
  let uf = Union_find.create t.n in
  let edges = ref [] in
  Array.iteri
    (fun c sketch ->
      if Union_find.num_classes uf > 1 then begin
        let labels = Array.init t.n (fun v -> Union_find.find uf v) in
        let forest = Agm_sketch.spanning_forest ~labels sketch in
        let w = Weight_class.representative t.classes c in
        List.iter
          (fun (a, b) -> if Union_find.union uf a b then edges := (a, b, w) :: !edges)
          forest
      end)
    t.sketches;
  !edges

let forest_weight edges = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 edges

let space_in_words t =
  Array.fold_left (fun acc s -> acc + Agm_sketch.space_in_words s) 0 t.sketches

module Linear = struct
  type nonrec t = t

  let family = "mst"

  (* The sketched vector stacks one edge-space block per weight class:
     index = class * Edge_index.dim n + edge_index. *)
  let dim t = Array.length t.sketches * Edge_index.dim t.n

  let shape t =
    Array.append
      [| t.n; Array.length t.sketches |]
      (Agm_sketch.Linear.shape t.sketches.(0))

  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let reset = reset

  let update t ~index ~delta =
    let edge_dim = Edge_index.dim t.n in
    let c = index / edge_dim in
    if c < 0 || c >= Array.length t.sketches then
      invalid_arg "Mst.Linear.update: index out of range";
    Agm_sketch.Linear.update t.sketches.(c) ~index:(index mod edge_dim) ~delta

  let space_in_words = space_in_words

  let write_body t sink =
    Ds_util.Wire.write_tag sink "mst";
    Array.iter (fun s -> Agm_sketch.write s sink) t.sketches

  let read_body t src =
    Ds_util.Wire.expect_tag src "mst";
    Array.iter (fun s -> Agm_sketch.read_into s src) t.sketches
end
