(** Approximate minimum spanning forests from linear sketches ([AGM12a]).

    Weights are rounded into geometric classes (rate [1 + gamma], exactly
    Remark 14's trick); one {!Agm_sketch} per class sketches that class's
    edges. Extraction is Kruskal-by-class: walk classes from light to heavy,
    contract the components connected so far (sketch linearity again) and
    take a spanning forest of the current class across them. The result is a
    spanning forest whose weight is within [1 + gamma] of the true minimum
    spanning forest. Single pass, insertions and deletions of weighted edges
    (the paper's weighted model: weights fixed at insertion). *)

type t

type params = {
  gamma : float;  (** weight-class rounding; approximation factor [1 + gamma] *)
  w_min : float;
  w_max : float;
  sketch : Agm_sketch.params;
}

val create : Ds_util.Prng.t -> n:int -> params:params -> t

val update : t -> u:int -> v:int -> weight:float -> delta:int -> unit
(** [delta] is [+1]/[-1]; a deletion must carry the weight of the matching
    insertion (model guarantee). *)

val extract : t -> (int * int * float) list
(** Spanning-forest edges with their class-representative weights.
    Non-destructive. *)

val forest_weight : (int * int * float) list -> float

val clone_zero : t -> t
val add : t -> t -> unit
val sub : t -> t -> unit
(** Classwise merge/subtract of every weight class's sketch (linearity). *)

val space_in_words : t -> int

module Linear : Ds_sketch.Linear_sketch.S with type t = t
(** Linear over the stacked edge spaces of all weight classes:
    [index = class * Edge_index.dim n + edge_index]. *)
