(** Connectivity queries from AGM sketches — the simplest consumer of
    {!Agm_sketch} (the [AGM12a] headline result) packaged as an oracle:
    stream once, then ask component counts and u~v connectivity. *)

type t

val create : Ds_util.Prng.t -> n:int -> params:Agm_sketch.params -> t
val update : t -> u:int -> v:int -> delta:int -> unit

val update_batch : t -> Ds_stream.Update.t array -> unit
(** Apply a whole update array; may regroup for locality (linearity makes
    the final state order-independent, bit-for-bit). *)

val update_slice : t -> Ds_stream.Update.t array -> pos:int -> len:int -> unit
(** [update_batch] over [updates.(pos .. pos+len-1)] without copying the
    slice (the parallel engine's chunk entry point). *)

val clone_zero : t -> t
(** A fresh empty oracle compatible with [t]; shards for pre-sharded
    (parallel or distributed) ingestion are clones of one prototype. *)

val absorb : t -> t -> unit
(** [absorb t shard] adds a compatible shard's sketch into [t] (linearity);
    after absorbing every shard, [freeze] answers for the union stream. *)

val add : t -> t -> unit
(** Alias of {!absorb}. *)

val sub : t -> t -> unit
(** Subtract a compatible oracle's counters. *)

type answers

val freeze : t -> answers
(** Extract the spanning forest once; queries are O(alpha(n)) afterwards.
    The sketch can keep receiving updates; [freeze] again for fresh
    answers. *)

val components : answers -> int
val connected : answers -> int -> int -> bool
val component_of : answers -> int -> int
(** Smallest vertex id in the component. *)

val space_in_words : t -> int

module Linear : Ds_sketch.Linear_sketch.S with type t = t
(** The oracle as a linear sketch over edge space (delegates to the
    underlying {!Agm_sketch.Linear}). *)
