open Ds_graph

type t = { n : int; k : int; sketches : Agm_sketch.t array }

let create rng ~n ~k ~params =
  if k < 1 then invalid_arg "K_connectivity.create: k must be >= 1";
  let sketches =
    Array.init k (fun i ->
        Agm_sketch.create (Ds_util.Prng.split_named rng (Printf.sprintf "kc%d" i)) ~n ~params)
  in
  { n; k; sketches }

let update t ~u ~v ~delta =
  Array.iter (fun s -> Agm_sketch.update s ~u ~v ~delta) t.sketches

let clone_zero t = { t with sketches = Array.map Agm_sketch.clone_zero t.sketches }

let combine op t s =
  if t.n <> s.n || t.k <> s.k then invalid_arg "K_connectivity: incompatible";
  Array.iteri (fun i sk -> op sk s.sketches.(i)) t.sketches

let add t s = combine Agm_sketch.add t s
let sub t s = combine Agm_sketch.sub t s
let reset t = Array.iter Agm_sketch.reset t.sketches

let certificate t =
  let acc = Graph.create t.n in
  (* Peel forests: each round's forest is removed from all later sketches so
     the next forest finds k-edge-connectivity witnesses beyond it. *)
  for i = 0 to t.k - 1 do
    let forest = Agm_sketch.spanning_forest t.sketches.(i) in
    let layer = Graph.create t.n in
    List.iter
      (fun (u, v) ->
        if not (Graph.mem_edge layer u v) then begin
          Graph.add_edge layer u v;
          if not (Graph.mem_edge acc u v) then Graph.add_edge acc u v
        end)
      forest;
    for j = i + 1 to t.k - 1 do
      Agm_sketch.subtract_graph t.sketches.(j) layer
    done
  done;
  acc

let is_k_connected t = Min_cut.edge_connectivity (certificate t) >= t.k

let space_in_words t =
  Array.fold_left (fun acc s -> acc + Agm_sketch.space_in_words s) 0 t.sketches

module Linear = struct
  type nonrec t = t

  let family = "k_connectivity"
  let dim t = Agm_sketch.Linear.dim t.sketches.(0)

  let shape t = Array.append [| t.k |] (Agm_sketch.Linear.shape t.sketches.(0))

  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let reset = reset

  let update t ~index ~delta =
    Array.iter (fun s -> Agm_sketch.Linear.update s ~index ~delta) t.sketches

  let space_in_words = space_in_words

  let write_body t sink =
    Ds_util.Wire.write_tag sink "kc";
    Array.iter (fun s -> Agm_sketch.write s sink) t.sketches

  let read_body t src =
    Ds_util.Wire.expect_tag src "kc";
    Array.iter (fun s -> Agm_sketch.read_into s src) t.sketches
end
