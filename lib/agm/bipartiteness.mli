(** Bipartiteness testing from linear sketches ([AGM12a]).

    The {e double cover} [D(G)] has two copies [v0, v1] of every vertex and,
    for each edge [{u, v}], the two edges [{u0, v1}] and [{u1, v0}]. A
    connected component of [G] lifts to one component of [D] if it contains
    an odd cycle and to two if it is bipartite, so

      [#bipartite components = #components(D) - #components(G)].

    Both counts come from AGM spanning forests, i.e. from linear sketches of
    the stream — a single pass, insertions and deletions included. *)

type t

val create : Ds_util.Prng.t -> n:int -> params:Agm_sketch.params -> t
(** The [params] are for the base-graph sketch; the double-cover sketch is
    sized for [2n] internally. *)

val update : t -> u:int -> v:int -> delta:int -> unit

val clone_zero : t -> t
val add : t -> t -> unit
val sub : t -> t -> unit
(** Merge/subtract both the base and double-cover sketches (linearity). *)

type verdict = {
  components : int;  (** components of the streamed graph *)
  bipartite_components : int;  (** how many of them are bipartite *)
  is_bipartite : bool;  (** every component bipartite *)
}

val test : t -> verdict
(** Non-destructive. *)

val space_in_words : t -> int

module Linear : Ds_sketch.Linear_sketch.S with type t = t
(** Linear over the {e base} graph's edge space; each indexed update streams
    the edge into the base sketch and its two double-cover lifts. *)
