(** AGM graph-connectivity sketches (Theorem 10, [AGM12a]).

    Every vertex [u] carries L0-samplers of its {e signed incidence vector}:
    the vector over edge space with entry [+m] at [idx(u,v)] if [u < v] and
    [-m] if [u > v], where [m] is the multiplicity of [{u,v}]. Summing these
    vectors over a vertex set [S] cancels the edges inside [S] exactly, so a
    sample from the merged sketch is an edge leaving [S] — which is what a
    Boruvka round needs. One independent sampler copy is consumed per round
    (re-using a copy would condition on its own output).

    Beyond Theorem 10 the paper relies on two structural properties that this
    module exposes directly (both are consequences of linearity):
    - {!subtract_graph}: remove an explicitly known edge set (Algorithm 3
      subtracts [E_low] before computing its spanning forest);
    - supernode contraction: {!spanning_forest} takes an optional vertex
      labelling and computes a forest of the contracted multigraph by merging
      member sketches. *)

type t

type params = {
  copies : int;  (** independent sampler copies = Boruvka round budget *)
  sampler : Ds_sketch.L0_sampler.params;
}

val default_params : n:int -> params
(** [copies = ceil(log2 n) + 3] with the default L0 parameters. *)

val create : Ds_util.Prng.t -> n:int -> params:params -> t

val n : t -> int

val copies : t -> int
(** The sketch's repetition count (independent sampler copies). *)

val certified_delta : n:int -> copies:int -> float
(** The failure probability a decode can still certify when only [copies]
    repetitions are usable: [2^(ceil(log2 n) - copies)] clamped to 1.
    Extraction needs ~[ceil(log2 n)] Boruvka rounds; spare copies are retry
    slack, each at least halving the residual failure probability. With the
    default budget ([ceil(log2 n) + 3]) this certifies delta = 1/8; every
    lost repetition doubles it, and below [ceil(log2 n)] nothing is
    certified. The degraded-delta ledger of the supervised cluster
    protocol. *)

val update : t -> u:int -> v:int -> delta:int -> unit
(** Stream an edge-multiplicity update into both endpoints' sketches. The
    edge index is encoded, key-folded and level-hashed once per copy (not
    once per sampler row) — the hot-path kernel of every AGM consumer. *)

val update_batch : t -> Ds_stream.Update.t array -> unit
(** Apply a whole update array; the final state equals the fold of {!update}
    with [delta = Update.delta] bit-for-bit. Large batches are regrouped by
    lower endpoint for cache locality before applying — sound because the
    sketch is linear, so application order cannot matter. *)

val update_slice : t -> Ds_stream.Update.t array -> pos:int -> len:int -> unit
(** {!update_batch} restricted to [updates.(pos .. pos+len-1)], without
    copying the slice — the chunk-granular entry point of the parallel
    ingestion engine; large slices get the same lower-endpoint locality
    regrouping.
    @raise Invalid_argument if the range is out of bounds. *)

val clone_zero : t -> t
(** A fresh empty sketch compatible with [t] (same seed-derived structure,
    physically shared hash functions and fingerprint ladders, zero
    counters). This is how sharded ingestion builds per-domain replicas
    whose sums decode exactly like a sequentially built sketch. *)

val subtract_graph : t -> Ds_graph.Graph.t -> unit
(** Remove every distinct edge of the given graph (with its multiplicity 1)
    from the sketched multigraph. The caller must know these edges exist;
    over-subtraction makes multiplicities negative and voids the model. *)

val add : t -> t -> unit
(** Merge the sketch of another update stream (distributed setting). One
    kernel pass over the two sketches' contiguous counter buffers. *)

val sub : t -> t -> unit
(** Subtract another sketch's counters — delete its whole update stream. *)

val reset : t -> unit
(** Zero every counter in place (one buffer fill), keeping the structure —
    what lets an ingestion arena recycle replicas across runs. *)

val spanning_forest : ?labels:int array -> ?copies:int array -> t -> (int * int) list
(** Extract a spanning forest of the sketched multigraph with high
    probability. [labels] (optional) assigns every vertex a supernode; the
    forest then spans the contracted multigraph, with each returned edge
    being an original graph edge whose endpoints lie in different supernodes.
    [copies] (optional) restricts extraction to the given repetition
    indices, in the given order — the degraded decode of the supervised
    cluster protocol, where only a surviving quorum of repetitions is
    trustworthy; the round budget shrinks accordingly (see
    {!certified_delta}). Non-destructive. *)

val space_in_words : t -> int

val write : t -> Ds_util.Wire.sink -> unit
val read_into : t -> Ds_util.Wire.source -> unit
(** Raw counter body (no envelope); building blocks for {!Linear}. *)

module Linear : Ds_sketch.Linear_sketch.S with type t = t
(** The sketch as a linear sketch over {e edge space}: [update ~index]
    decodes [index] with {!Ds_graph.Edge_index.decode} and streams a
    multiplicity update of that edge (both endpoints' signed incidence
    vectors move together). *)

val serialize : ?trace:Ds_obs.Trace.context -> t -> string
(** Wire form of the counters only — what a server ships to the coordinator
    (the structure is rebuilt from the shared seed on the other side).
    Equal to [Linear_sketch.serialize (module Linear)]: the versioned,
    checksummed envelope.  [?trace] embeds a trace-context extension
    (see {!Ds_sketch.Linear_sketch.serialize}); omitted, the bytes are
    unchanged from previous versions. *)

val deserialize_into : t -> string -> unit
(** Overwrite [t]'s counters with a serialised sketch. [t] must have been
    created from the same seed and parameters as the sender's sketch.
    @raise Failure on shape mismatch, checksum failure or corrupt input. *)

val deserialize_result : t -> string -> (unit, Ds_sketch.Linear_sketch.error) result
(** Typed-error variant of {!deserialize_into} — what a supervising
    coordinator branches on to decide retry vs refuse. *)

(** One repetition of the sketch as a first-class linear sketch (family
    ["agm_copy"]). This is the unit of shipping in the supervised cluster
    protocol: each server sends every repetition as its own checksummed
    envelope, so a fault costs one repetition, not the whole sketch, and a
    permanently lost server still leaves a decodable quorum of repetitions
    ({!spanning_forest}'s [copies] argument). Slices alias the parent
    sketch's counters — merging into a slice merges into the parent. *)
module Copy : sig
  type slice

  val slice : t -> int -> slice
  (** The parent's repetition [c] (shared counters, not a copy). *)

  val index : slice -> int
  (** Which repetition this slice is. *)

  module Linear : Ds_sketch.Linear_sketch.S with type t = slice
  (** The copy index is part of the wire shape: repetition [c]'s envelope is
      rejected by any other repetition's slice, because each repetition
      derives independent hash structure from its own seed chain. *)

  val serialize : ?trace:Ds_obs.Trace.context -> slice -> string

  val absorb_result : slice -> string -> (unit, Ds_sketch.Linear_sketch.error) result
  (** Validate-and-sum one repetition envelope into the parent sketch. *)
end
