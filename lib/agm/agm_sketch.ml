open Ds_util
open Ds_sketch
open Ds_graph

type params = { copies : int; sampler : L0_sampler.params }

(* The entire copies x n sampler grid lives in one off-heap buffer,
   copy-major (copy [c] vertex [u] at [((c*n) + u) * sampler_words]):
   merging two whole sketches is one triple-kernel pass, each repetition
   is a contiguous region (so {!Copy} slices merge with one pass too),
   and a domain replica is a single zeroed allocation. *)
type t = {
  n : int;
  prm : params;
  words : Words.t;
  (* samplers.(c).(u): copy c of vertex u's incidence sampler — views
     into [words]. *)
  samplers : L0_sampler.t array array;
}

let default_params ~n =
  { copies = F0.levels_for n + 3; sampler = L0_sampler.default_params }

let embed_samplers ~n samplers words =
  let sw = L0_sampler.state_words samplers.(0).(0) in
  Array.mapi
    (fun c row ->
      Array.mapi (fun u sk -> L0_sampler.clone_into sk ~words ~off:(((c * n) + u) * sw)) row)
    samplers

let create rng ~n ~params:prm =
  if n < 2 then invalid_arg "Agm_sketch.create: need at least two vertices";
  let dim = Edge_index.dim n in
  let protos =
    Array.init prm.copies (fun c ->
        (* Within one copy all vertices share hash functions so that their
           sketches are compatible (mergeable); copies are independent.
           Viewing every vertex off one prototype shares the immutable hash
           state and fingerprint ladders physically across all n vertices. *)
        let copy_rng = Prng.split_named rng (Printf.sprintf "copy%d" c) in
        L0_sampler.create (Prng.copy copy_rng) ~dim ~params:prm.sampler)
  in
  let sw = L0_sampler.state_words protos.(0) in
  let words = Words.create (prm.copies * n * sw) in
  let samplers = Array.map (fun proto -> Array.make n proto) protos in
  { n; prm; words; samplers = embed_samplers ~n samplers words }

let n t = t.n
let copies t = t.prm.copies

(* Degraded-δ accounting for quorum decoding: a spanning-forest extraction
   needs ~ceil(log2 n) Boruvka rounds, one independent sampler copy each;
   the default budget carries 3 spare copies, and each spare at least halves
   the residual failure probability (the spares are exactly the retry slack
   of the round-failure analysis). With [copies] usable repetitions the
   certified failure probability is therefore 2^(levels - copies), clamped
   to 1 when the budget cannot even cover the rounds. *)
let certified_delta ~n ~copies =
  if copies <= 0 then 1.0
  else min 1.0 (2.0 ** float_of_int (F0.levels_for n - copies))

let clone_zero t =
  let words = Words.create (Words.length t.words) in
  { t with words; samplers = embed_samplers ~n:t.n t.samplers words }

let reset t = Words.fill t.words 0

let signed_delta ~u ~v delta = if u < v then delta else -delta

let update t ~u ~v ~delta =
  if u = v then invalid_arg "Agm_sketch.update: self-loop";
  let idx = Edge_index.encode ~n:t.n u v in
  let x = Kwise.fold_key idx in
  (* The folded key and its powers are shared by every hash evaluation this
     update triggers (copies x levels x rows). *)
  let x2 = Field.mul x x in
  let x4 = Field.mul x2 x2 in
  let du = signed_delta ~u ~v delta in
  for c = 0 to t.prm.copies - 1 do
    let su = t.samplers.(c).(u) and sv = t.samplers.(c).(v) in
    (* Both endpoints' samplers share this copy's hash functions: one level
       evaluation and one set of bucket evaluations serves both, +du into
       [u]'s sketch and -du into [v]'s. *)
    let level = L0_sampler.level_of_pows su ~x ~x2 ~x4 in
    L0_sampler.update_prepared_pair_pows su sv ~index:idx ~x ~x2 ~x4 ~level ~delta:du
  done

let update_slice t updates ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length updates then
    invalid_arg "Agm_sketch.update_slice: range out of bounds";
  let module U = Ds_stream.Update in
  let apply (e : U.t) = update t ~u:e.U.u ~v:e.U.v ~delta:(U.delta e) in
  if len < 64 then
    for i = pos to pos + len - 1 do
      apply updates.(i)
    done
  else begin
    (* Group the slice by lower endpoint before applying: one vertex's
       sampler column is a small, cache-resident slice of the whole sketch,
       so consecutive same-vertex updates hit warm lines instead of paging
       through all n columns. The sketch is linear — every update is a pure
       counter addition — so the reordered application yields the
       bit-identical final state. *)
    let counts = Array.make t.n 0 in
    for i = pos to pos + len - 1 do
      let e = updates.(i) in
      let k = min e.U.u e.U.v in
      counts.(k) <- counts.(k) + 1
    done;
    let next = Array.make t.n 0 in
    let acc = ref 0 in
    for k = 0 to t.n - 1 do
      next.(k) <- !acc;
      acc := !acc + counts.(k)
    done;
    let sorted = Array.make len updates.(pos) in
    for i = pos to pos + len - 1 do
      let e = updates.(i) in
      let k = min e.U.u e.U.v in
      sorted.(next.(k)) <- e;
      next.(k) <- next.(k) + 1
    done;
    Array.iter apply sorted
  end

let update_batch t updates = update_slice t updates ~pos:0 ~len:(Array.length updates)

let subtract_graph t g =
  if Graph.n g <> t.n then invalid_arg "Agm_sketch.subtract_graph: size mismatch";
  Graph.iter_edges g (fun u v -> update t ~u ~v ~delta:(-1))

let check_compatible t s =
  if
    t.n <> s.n || t.prm <> s.prm
    || not
         (Array.for_all2
            (fun a b -> L0_sampler.compatible a.(0) b.(0))
            t.samplers s.samplers)
  then invalid_arg "Agm_sketch: incompatible"

(* All copies x n samplers merge in one pass over the two buffers. *)
let add t s =
  check_compatible t s;
  Words.add_tri t.words s.words

let sub t s =
  check_compatible t s;
  Words.sub_tri t.words s.words

let spanning_forest ?labels ?copies t =
  let usable =
    match copies with
    | None -> Array.init t.prm.copies (fun c -> c)
    | Some cs ->
        Array.iter
          (fun c ->
            if c < 0 || c >= t.prm.copies then
              invalid_arg "Agm_sketch.spanning_forest: copy index out of range")
          cs;
        cs
  in
  let uf = Union_find.create t.n in
  (match labels with
  | None -> ()
  | Some l ->
      if Array.length l <> t.n then invalid_arg "Agm_sketch.spanning_forest: bad labels";
      (* Pre-merge supernodes: vertices with equal labels are one node. *)
      let seen = Hashtbl.create 16 in
      Array.iteri
        (fun v lab ->
          match Hashtbl.find_opt seen lab with
          | None -> Hashtbl.add seen lab v
          | Some first -> ignore (Union_find.union uf first v))
        l);
  let forest = ref [] in
  let round = ref 0 in
  let exhausted = ref false in
  (* A round with no unions is NOT termination: all vertices of one copy
     share hash functions (they must, to be mergeable), so decode failures
     are correlated across components within a round — the next copy is
     independent. Termination is certified only when every component's
     merged sketch is provably empty (no outgoing edges anywhere). *)
  while (not !exhausted) && !round < Array.length usable && Union_find.num_classes uf > 1 do
    let members = Union_find.class_members uf in
    (* One fresh sampler copy per Boruvka round — only copies the caller
       certifies as usable (the surviving quorum, in degraded decodes). *)
    let copy = t.samplers.(usable.(!round)) in
    incr round;
    (* Candidate outgoing edge per component, from the merged sketch. *)
    let candidates = ref [] in
    let all_empty = ref true in
    Array.iteri
      (fun rep mem ->
        match mem with
        | [] -> ()
        | first :: rest -> (
            let merged = L0_sampler.copy copy.(first) in
            List.iter (fun v -> L0_sampler.add merged copy.(v)) rest;
            match L0_sampler.classify merged with
            | `Empty -> ()
            | `Fail -> all_empty := false
            | `Sample (idx, _) ->
                all_empty := false;
                let a, b = Edge_index.decode ~n:t.n idx in
                (* Internal edges cancel, so exactly one endpoint should be
                   inside; anything else is a (detectable) decode artefact. *)
                let ina = Union_find.find uf a = rep and inb = Union_find.find uf b = rep in
                if ina <> inb then candidates := (a, b) :: !candidates))
      members;
    if !all_empty then exhausted := true
    else
      List.iter
        (fun (a, b) -> if Union_find.union uf a b then forest := (a, b) :: !forest)
        !candidates
  done;
  !forest

let space_in_words t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a sk -> a + L0_sampler.space_in_words sk) acc row)
    0 t.samplers

let write t sink =
  Wire.write_tag sink "agm";
  Wire.write_int sink t.n;
  Array.iter (Array.iter (fun s -> L0_sampler.write s sink)) t.samplers

let read_into t src =
  Wire.expect_tag src "agm";
  if Wire.read_int src <> t.n then failwith "Agm_sketch.read_into: size mismatch";
  Array.iter (Array.iter (fun s -> L0_sampler.read_into s src)) t.samplers

module Linear = struct
  type nonrec t = t

  let family = "agm"
  let dim t = Edge_index.dim t.n

  let shape t =
    let s = t.prm.sampler in
    [| t.n; t.prm.copies; s.L0_sampler.sparsity; s.L0_sampler.rows; s.L0_sampler.hash_degree |]

  let clone_zero = clone_zero
  let add = add
  let sub = sub

  (* The index/delta face: coordinates of the sketched vector are edge
     indices, so decode and route through the signed-incidence update. *)
  let update t ~index ~delta =
    let u, v = Edge_index.decode ~n:t.n index in
    update t ~u ~v ~delta

  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end

let serialize ?trace t = Ds_sketch.Linear_sketch.serialize ?trace (module Linear) t
let deserialize_into t data = Ds_sketch.Linear_sketch.deserialize_into (module Linear) t data
let deserialize_result t data = Ds_sketch.Linear_sketch.deserialize_result (module Linear) t data

(* ------------------------------------------------------------------ *)
(* One repetition as a first-class linear sketch: the unit of shipping
   in the supervised cluster protocol, where losing one envelope must
   cost one repetition, not the whole sketch.                          *)

module Copy = struct
  type slice = {
    sn : int;
    sprm : params;
    c : int;
    cwords : Words.t; (* the parent buffer region of this repetition *)
    row : L0_sampler.t array; (* the parent's samplers.(c), physically shared *)
  }

  let slice t c =
    if c < 0 || c >= t.prm.copies then invalid_arg "Agm_sketch.Copy.slice: copy out of range";
    (* Copy-major layout: repetition [c] is the contiguous buffer region
       [c*n*sw .. (c+1)*n*sw), so slice merges are one kernel pass. *)
    let sw = L0_sampler.state_words t.samplers.(0).(0) in
    let cwords = Words.view t.words ~pos:(c * t.n * sw) ~len:(t.n * sw) in
    { sn = t.n; sprm = t.prm; c; cwords; row = t.samplers.(c) }

  let index t = t.c

  module Linear = struct
    type t = slice

    let family = "agm_copy"
    let dim s = Edge_index.dim s.sn

    (* The copy index is part of the shape: copy c's hash structure is
       derived from the "copy<c>" seed chain, so a copy-j message merged
       into a copy-c slice would be semantically incompatible even though
       the counter layout matches. *)
    let shape s =
      let p = s.sprm.sampler in
      [|
        s.sn;
        s.c;
        s.sprm.copies;
        p.L0_sampler.sparsity;
        p.L0_sampler.rows;
        p.L0_sampler.hash_degree;
      |]

    let clone_zero s =
      let sw = L0_sampler.state_words s.row.(0) in
      let words = Words.create (Array.length s.row * sw) in
      {
        s with
        cwords = words;
        row = Array.mapi (fun u sk -> L0_sampler.clone_into sk ~words ~off:(u * sw)) s.row;
      }

    let check_compatible a b =
      if
        a.sn <> b.sn || a.c <> b.c || a.sprm <> b.sprm
        || not (L0_sampler.compatible a.row.(0) b.row.(0))
      then invalid_arg "Agm_sketch.Copy: incompatible slices"

    let add a b =
      check_compatible a b;
      Words.add_tri a.cwords b.cwords

    let sub a b =
      check_compatible a b;
      Words.sub_tri a.cwords b.cwords

    let reset s = Words.fill s.cwords 0

    let update s ~index ~delta =
      let u, v = Edge_index.decode ~n:s.sn index in
      if u = v then invalid_arg "Agm_sketch.Copy.update: self-loop";
      let x = Kwise.fold_key index in
      let x2 = Field.mul x x in
      let x4 = Field.mul x2 x2 in
      let du = signed_delta ~u ~v delta in
      let su = s.row.(u) and sv = s.row.(v) in
      let level = L0_sampler.level_of_pows su ~x ~x2 ~x4 in
      L0_sampler.update_prepared_pair_pows su sv ~index ~x ~x2 ~x4 ~level ~delta:du

    let space_in_words s =
      Array.fold_left (fun a sk -> a + L0_sampler.space_in_words sk) 0 s.row

    let write_body s sink = Array.iter (fun sk -> L0_sampler.write sk sink) s.row
    let read_body s src = Array.iter (fun sk -> L0_sampler.read_into sk src) s.row
  end

  let serialize ?trace s = Ds_sketch.Linear_sketch.serialize ?trace (module Linear) s

  let absorb_result s data = Ds_sketch.Linear_sketch.absorb_result (module Linear) s data
end
