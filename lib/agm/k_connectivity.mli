(** k-edge-connectivity certificates from linear sketches ([AGM12a], the
    substrate results the paper's Section 2 builds on).

    Maintain [k] independent {!Agm_sketch} instances of the same stream.
    After the stream, extract a spanning forest from the first, subtract its
    edges from the second (linearity), extract again, and so on. The union
    [F_1 ∪ ... ∪ F_k] has [O(kn)] edges and preserves every cut value up to
    [k]: the graph is k-edge-connected iff the certificate is. *)

type t

val create : Ds_util.Prng.t -> n:int -> k:int -> params:Agm_sketch.params -> t
(** [k >= 1] independent sketch instances. *)

val update : t -> u:int -> v:int -> delta:int -> unit

val clone_zero : t -> t
(** A fresh empty instance sharing [t]'s seed-derived structure. *)

val add : t -> t -> unit
val sub : t -> t -> unit
(** Componentwise merge of all [k] sketches (linearity). *)

val certificate : t -> Ds_graph.Graph.t
(** The union of the [k] successively-peeled forests. Non-destructive on the
    first sketch; consumes (by subtraction) the later ones, so call it
    once. *)

val is_k_connected : t -> bool
(** [edge_connectivity (certificate t) >= k] — the sketch-side answer; the
    certificate theorem makes it agree with the input graph whp. *)

val space_in_words : t -> int

module Linear : Ds_sketch.Linear_sketch.S with type t = t
(** All [k] sketches as one linear sketch over edge space: an [update]
    streams the edge into every instance; the wire body concatenates the
    [k] counter blocks. *)
