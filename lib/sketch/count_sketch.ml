open Ds_util

type params = { rows : int; cols : int; hash_degree : int }

(* The rows x cols counter table is one flat off-heap buffer in row-major
   order (row [r] col [c] at [r*cols + c]): merge is one plain-add kernel
   pass, replicas are one zeroed allocation. *)
type t = {
  dim : int;
  prm : params;
  bucket_hash : Kwise.t array;
  sign_hash : Kwise.t array;
  table : Words.t;
}

let default_params = { rows = 5; cols = 256; hash_degree = 6 }

let make rng ~dim ~params:prm ~table =
  if prm.rows < 1 || prm.cols < 1 then invalid_arg "Count_sketch.create: bad params";
  let mk tag i = Kwise.create (Prng.split_named rng (Printf.sprintf "%s%d" tag i)) ~k:prm.hash_degree in
  {
    dim;
    prm;
    bucket_hash = Array.init prm.rows (mk "bucket");
    sign_hash = Array.init prm.rows (mk "sign");
    table;
  }

let create rng ~dim ~params = make rng ~dim ~params ~table:(Words.create (params.rows * params.cols))

let create_over rng ~dim ~params ~table =
  if Words.length table <> params.rows * params.cols then
    invalid_arg "Count_sketch.create_over: table length <> rows * cols";
  make rng ~dim ~params ~table

let rebind t ~table =
  if Words.length table <> Words.length t.table then
    invalid_arg "Count_sketch.rebind: table length mismatch";
  { t with table }

let sign t r index = if Kwise.eval t.sign_hash.(r) index land 1 = 0 then 1 else -1
let[@inline] cell t r c = (r * t.prm.cols) + c

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "Count_sketch.update: index out of range";
  for r = 0 to t.prm.rows - 1 do
    let c = Kwise.to_range t.bucket_hash.(r) index ~bound:t.prm.cols in
    let i = cell t r c in
    Words.unsafe_set t.table i (Words.unsafe_get t.table i + (delta * sign t r index))
  done

let estimate t index =
  let ests =
    Array.init t.prm.rows (fun r ->
        let c = Kwise.to_range t.bucket_hash.(r) index ~bound:t.prm.cols in
        float_of_int (Words.unsafe_get t.table (cell t r c) * sign t r index))
  in
  int_of_float (Stats.median ests)

let heavy_hitters t ~candidates ~threshold =
  List.filter_map
    (fun i ->
      let e = estimate t i in
      if abs e >= threshold then Some (i, e) else None)
    candidates

let check_compatible t s =
  if t.dim <> s.dim || t.prm <> s.prm then invalid_arg "Count_sketch: incompatible sketches"

let add t s =
  check_compatible t s;
  Words.add t.table s.table

let sub t s =
  check_compatible t s;
  Words.sub t.table s.table

let copy t = { t with table = Words.copy t.table }
let clone_zero t = { t with table = Words.create (Words.length t.table) }
let reset t = Words.fill t.table 0

let space_in_words t =
  (t.prm.rows * t.prm.cols)
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.bucket_hash
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.sign_hash

let write t sink =
  Wire.write_tag sink "cts";
  Wire.write_int sink t.dim;
  for r = 0 to t.prm.rows - 1 do
    Words.write_wire_array sink t.table ~pos:(r * t.prm.cols) ~len:t.prm.cols
  done

let read_into t src =
  Wire.expect_tag src "cts";
  if Wire.read_int src <> t.dim then failwith "Count_sketch.read_into: dimension mismatch";
  for r = 0 to t.prm.rows - 1 do
    Words.read_wire_array ~what:"Count_sketch.read_into" src t.table ~pos:(r * t.prm.cols)
      ~len:t.prm.cols
  done

module Linear = struct
  type nonrec t = t

  let family = "count_sketch"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.rows; t.prm.cols; t.prm.hash_degree |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
