open Ds_util

type params = { rows : int; cols : int; hash_degree : int }

type t = {
  dim : int;
  prm : params;
  bucket_hash : Kwise.t array;
  sign_hash : Kwise.t array;
  table : int array array;
}

let default_params = { rows = 5; cols = 256; hash_degree = 6 }

let create rng ~dim ~params:prm =
  if prm.rows < 1 || prm.cols < 1 then invalid_arg "Count_sketch.create: bad params";
  let mk tag i = Kwise.create (Prng.split_named rng (Printf.sprintf "%s%d" tag i)) ~k:prm.hash_degree in
  {
    dim;
    prm;
    bucket_hash = Array.init prm.rows (mk "bucket");
    sign_hash = Array.init prm.rows (mk "sign");
    table = Array.init prm.rows (fun _ -> Array.make prm.cols 0);
  }

let sign t r index = if Kwise.eval t.sign_hash.(r) index land 1 = 0 then 1 else -1

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "Count_sketch.update: index out of range";
  for r = 0 to t.prm.rows - 1 do
    let c = Kwise.to_range t.bucket_hash.(r) index ~bound:t.prm.cols in
    t.table.(r).(c) <- t.table.(r).(c) + (delta * sign t r index)
  done

let estimate t index =
  let ests =
    Array.init t.prm.rows (fun r ->
        let c = Kwise.to_range t.bucket_hash.(r) index ~bound:t.prm.cols in
        float_of_int (t.table.(r).(c) * sign t r index))
  in
  int_of_float (Stats.median ests)

let heavy_hitters t ~candidates ~threshold =
  List.filter_map
    (fun i ->
      let e = estimate t i in
      if abs e >= threshold then Some (i, e) else None)
    candidates

let iter2 t s f =
  if t.dim <> s.dim || t.prm <> s.prm then invalid_arg "Count_sketch: incompatible sketches";
  for r = 0 to t.prm.rows - 1 do
    for c = 0 to t.prm.cols - 1 do
      f r c s.table.(r).(c)
    done
  done

let add t s = iter2 t s (fun r c v -> t.table.(r).(c) <- t.table.(r).(c) + v)
let sub t s = iter2 t s (fun r c v -> t.table.(r).(c) <- t.table.(r).(c) - v)
let copy t = { t with table = Array.map Array.copy t.table }
let clone_zero t = { t with table = Array.map (fun row -> Array.make (Array.length row) 0) t.table }
let reset t = Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.table

let space_in_words t =
  (t.prm.rows * t.prm.cols)
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.bucket_hash
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.sign_hash

let write t sink =
  Wire.write_tag sink "cts";
  Wire.write_int sink t.dim;
  Array.iter (fun row -> Wire.write_array sink row) t.table

let read_into t src =
  Wire.expect_tag src "cts";
  if Wire.read_int src <> t.dim then failwith "Count_sketch.read_into: dimension mismatch";
  Array.iteri
    (fun r _ ->
      let row = Wire.read_array src in
      if Array.length row <> t.prm.cols then failwith "Count_sketch.read_into: row length mismatch";
      Array.blit row 0 t.table.(r) 0 t.prm.cols)
    t.table

module Linear = struct
  type nonrec t = t

  let family = "count_sketch"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.rows; t.prm.cols; t.prm.hash_degree |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
