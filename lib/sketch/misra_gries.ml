type t = { k : int; counters : (int, int) Hashtbl.t; mutable total : int }

let create ~k =
  if k < 1 then invalid_arg "Misra_gries.create: k must be >= 1";
  { k; counters = Hashtbl.create k; total = 0 }

let update t x =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counters x with
  | Some c -> Hashtbl.replace t.counters x (c + 1)
  | None ->
      if Hashtbl.length t.counters < t.k then Hashtbl.replace t.counters x 1
      else begin
        (* Decrement everyone; evict the zeros. *)
        let dead = ref [] in
        Hashtbl.iter
          (fun y c -> if c = 1 then dead := y :: !dead else Hashtbl.replace t.counters y (c - 1))
          t.counters;
        List.iter (Hashtbl.remove t.counters) !dead
      end

let estimate t x = match Hashtbl.find_opt t.counters x with Some c -> c | None -> 0
let candidates t = Hashtbl.fold (fun x c acc -> (x, c) :: acc) t.counters []
let total t = t.total

(* k (element, counter) pairs plus [k] and [total]. *)
let space_in_words t = (2 * t.k) + 2

(* Misra–Gries is NOT a linear sketch: its state depends on arrival order
   (evictions are history-dependent), so it has no add/sub/clone_zero and
   cannot satisfy [Linear_sketch.S] — registration is already a type error.
   This witness makes the refusal explicit and testable at runtime too. *)
let linear () =
  Linear_sketch.not_linear ~family:"misra_gries"
    ~reason:"deterministic insert-only summary; state is order-dependent, no add/sub" ()
