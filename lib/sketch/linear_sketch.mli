(** The first-class linear-sketch interface.

    Every piece of algorithm state in this library is a {e linear sketch}: a
    vector of counters that is a linear function of the update stream. That
    single property is what the paper's distributed setting (Section 1) and
    pass structure (Algorithms 1+2) rest on, and it buys three universal
    operations — shipping (serialize), summing (merge) and space accounting —
    that previously existed ad hoc on a handful of modules. This module makes
    the property load-bearing: any module implementing {!S} gets a versioned
    binary wire format, generic sharded ingestion
    ({!Ds_par.Shard_ingest.linear}, via the parallel library) and
    cluster-simulation shipping ({!Ds_sim.Cluster_sim}) for free.

    {2 Wire format (version 1)}

    A serialized sketch is a self-delimiting byte string:

    {v
    tag  "LSK1"            magic + format version
    tag  family            the implementation's family name
    array shape            structural fingerprint (dims, rows, ...)
    body                   counters only, implementation-defined
    fixed64 checksum       FNV-1a of every preceding byte
    v}

    Structure (hash functions, fingerprint bases) is derived from a shared
    seed and never shipped — exactly the paper's model, where servers agree
    on the sketching matrix and ship [S x^i]. Readers verify the checksum
    {e before} parsing, then magic, family and shape, so truncated,
    bit-flipped or mis-routed messages raise [Failure] instead of decoding
    garbage (property-fuzzed in [test/test_linear.ml]). *)

module type S = sig
  type t

  val family : string
  (** Wire-format family name, unique per implementation (e.g.
      ["l0_sampler"]). *)

  val dim : t -> int
  (** Size of the index space [update] accepts. *)

  val shape : t -> int array
  (** Structural fingerprint: every parameter that must agree between writer
      and reader for the counters to be interchangeable (dimensions, rows,
      levels, ...). Written into the envelope and checked on read. Seeds are
      {e not} part of the shape — two sketches with equal shapes but
      different seeds are wire-compatible yet semantically incompatible, as
      everywhere else in the library. *)

  val clone_zero : t -> t
  (** A fresh sketch of the zero vector, compatible with [t] (shared
      immutable structure, zero counters). *)

  val add : t -> t -> unit
  (** [add dst src]: [dst := dst + src]. Compatible sketches only. *)

  val sub : t -> t -> unit
  (** [sub dst src]: [dst := dst - src]. *)

  val update : t -> index:int -> delta:int -> unit
  (** Add [delta] to coordinate [index] of the sketched vector,
      [0 <= index < dim t]. *)

  val reset : t -> unit
  (** Back to the zero vector in place, keeping the structure (and the
      off-heap buffer) — a zero-fill, not an allocation.  Replica arenas
      ({!Ds_par.Shard_ingest}) rely on this to recycle sketches across
      runs. *)

  val space_in_words : t -> int

  val write_body : t -> Ds_util.Wire.sink -> unit
  (** Append the counter body (no envelope). *)

  val read_body : t -> Ds_util.Wire.source -> unit
  (** Overwrite [t]'s counters from a body written by a shape-identical
      sketch. @raise Failure on malformed input. *)
end

type 'a impl = (module S with type t = 'a)

val version : int
(** Wire-format version (bumped with the magic tag). *)

val serialize : ?trace:Ds_obs.Trace.context -> 'a impl -> 'a -> string
(** The sketch's counters in the versioned envelope described above.

    [?trace] appends an optional trace-context extension after the
    body, inside the checksummed payload:

    {v
    tag  "TCTX"            extension marker
    fixed64 trace_id       the shipping run's trace
    fixed64 span_id        the shipping span (decode spans parent here)
    v}

    Without [?trace] the envelope is byte-identical to what this module
    always produced — merge-equality comparisons and checkpoint hashes
    are unaffected.  A reader finding the extension records a
    ["sketch.decode"] span linked to the carried context (when tracing
    is enabled) and otherwise ignores it. *)

(** Why a decode was rejected — the typed face of envelope validation, in
    the order the checks run. A supervising coordinator branches on this
    (retry a [Checksum_mismatch], refuse to retry a [Wrong_family]) instead
    of parsing exception strings. *)
type error =
  | Truncated of { length : int; min_length : int }
      (** shorter than any well-formed envelope *)
  | Checksum_mismatch  (** corrupt or truncated bytes, caught before parsing *)
  | Wrong_magic of { got : string }  (** not an LSK1 message *)
  | Wrong_family of { expected : string; got : string }  (** mis-routed *)
  | Shape_mismatch of { expected : int array; got : int array }
      (** same family, structurally incompatible parameters *)
  | Malformed_body of string
      (** the body failed to parse despite a valid checksum (forged or
          writer bug); the destination may be partially overwritten *)
  | Trailing_bytes of int
      (** the body did not consume the message (and what follows is not
          a well-formed trace-context extension) *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val deserialize_result : 'a impl -> 'a -> string -> (unit, error) result
(** Overwrite the destination's counters with a serialized message from a
    compatible sketch. Verifies, in order: length, checksum, magic/version,
    family, shape, and that the body consumes the message exactly. On
    [Error] the destination must be discarded (it may be partially
    overwritten only if the message was forged to pass the checksum; all
    random corruption is caught up front). *)

val deserialize_into : 'a impl -> 'a -> string -> unit
(** Raising wrapper for {!deserialize_result}, kept for call sites that
    treat a bad message as fatal. @raise Failure on any mismatch. *)

val absorb_result : 'a impl -> 'a -> string -> (unit, error) result
(** [absorb_result impl t msg] adds a serialized compatible sketch into [t]
    — the coordinator operation of the distributed setting: deserialize into
    a zero clone, then [add]. On [Error], [t] is untouched (the zero clone
    absorbs any partial parse), which is what lets a supervisor retry the
    same destination. *)

val absorb : 'a impl -> 'a -> string -> unit
(** Raising wrapper for {!absorb_result}. @raise Failure as
    {!deserialize_into}. *)

val not_linear : family:string -> reason:string -> unit -> 'a
(** Registration guard for summaries that are {e not} linear (they lack
    [add]/[sub]/[clone_zero] and cannot honour the merge contract).
    @raise Invalid_argument always, naming the family and the reason. *)

(** A sketch packed with its implementation — the dynamic counterpart of
    {!impl}, for registries that hold many sketch families at once (e.g. the
    cluster simulator's family table). *)
module Packed : sig
  type t = T : 'a impl * 'a -> t

  val pack : 'a impl -> 'a -> t
  val family : t -> string
  val dim : t -> int
  val shape : t -> int array
  val space_in_words : t -> int
  val update : t -> index:int -> delta:int -> unit
  val reset : t -> unit
  val clone_zero : t -> t
  val serialize : ?trace:Ds_obs.Trace.context -> t -> string

  val deserialize_into : t -> string -> unit
  (** @raise Failure as the statically-typed {!deserialize_into}. *)

  val deserialize_result : t -> string -> (unit, error) result

  val absorb : t -> string -> unit
  (** @raise Failure as the statically-typed {!absorb}. *)

  val absorb_result : t -> string -> (unit, error) result
end
