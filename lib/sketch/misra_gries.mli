(** Misra–Gries heavy hitters: the classical {e deterministic} insert-only
    summary, here as the non-linear contrast to {!Count_sketch}. With [k]
    counters, every element of frequency above [m / (k+1)] is retained and
    estimates undershoot by at most [m / (k+1)]. It cannot process
    deletions — exactly the gap that motivates the paper's linear-sketch
    world — and the test suite demonstrates that contrast directly. *)

type t

val create : k:int -> t
(** [k] counters. *)

val update : t -> int -> unit
(** Process one insert-only occurrence. *)

val estimate : t -> int -> int
(** Lower bound on the true frequency, within [m / (k+1)]. *)

val candidates : t -> (int * int) list
(** Currently tracked (element, counter) pairs. *)

val total : t -> int
(** Number of occurrences processed. *)

val space_in_words : t -> int
(** [2k + 2]: the tracked (element, counter) pairs plus bookkeeping. *)

val linear : unit -> 'a
(** Misra–Gries is {e not} a linear sketch: evictions depend on arrival
    order, so it has no [add]/[sub]/[clone_zero] and cannot implement
    {!Linear_sketch.S} — trying to register it is a compile-time type error.
    This function is the runtime witness of that fact.
    @raise Invalid_argument always. *)
