(** The linear hash table of sketches from Algorithm 2 (the [H^u_j]
    structures): a linear sketch of a map [key -> payload vector] supporting
    increments to any key's payload, and full recovery of all (key, payload)
    pairs when the number of distinct live keys is at most the capacity.

    Implementation: [rows] hash rows of [capacity] cells. A cell holds a
    1-sparse decoder over the {e key} space (count, key-sum, key-fingerprint
    — all raw integer accumulators) plus the componentwise sum of the
    payloads hashed into it. A cell whose key-decoder reports a singleton
    yields that key's full payload; peeling it out of every row reveals the
    rest, exactly as in {!Sparse_recovery} but with vector-valued entries.
    This realises the packing trick the paper sketches at the end of Section
    3.2 ("treating the sketches associated with nodes [v ∈ V] as
    poly(log n)-length bit numbers and sketching this vector").

    Soundness relies on the payload being a pure integer-linear accumulator
    (see {!Packed_l0}) and on each key's total weight being non-zero whenever
    its payload is non-zero — true in the paper's setting because edge
    multiplicities are non-negative. *)

type t

val create :
  Ds_util.Prng.t -> key_dim:int -> capacity:int -> rows:int -> hash_degree:int -> payload_len:int -> t
(** A table that can recover up to roughly [capacity / 1.3] distinct keys
    whp. [payload_len] is the word length of every payload vector. *)

val update : t -> key:int -> weight:int -> write:(Ds_util.Words.t -> int -> unit) -> unit
(** [update t ~key ~weight ~write] adds [weight] to [key]'s weight and
    applies [write buf off] — which must add an integer-linear contribution
    into [buf.(off .. off + payload_len - 1)] — once per row, to the cell
    [key] hashes to ([buf] is the table's own buffer, [off] the cell's
    payload window). The same [write] must be used symmetrically for
    subtraction by negating deltas. *)

val decode : t -> (int * int * Ds_util.Words.t) list option
(** Recover all live keys: [(key, weight, payload)] triples. [None] when the
    table is over capacity or peeling stalls (detected, never silently
    wrong). Non-destructive. *)

val keys_hint : t -> int
(** Upper estimate of the number of live keys (non-empty cells in one row). *)

val add : t -> t -> unit
val sub : t -> t -> unit
val space_in_words : t -> int
val capacity : t -> int

val clone_zero : t -> t
(** A fresh all-zero table sharing [t]'s (immutable) hash functions and
    fingerprint base. Tables are mergeable iff built from equal PRNG state,
    so a clone is the only safe way to mint a compatible replica. *)

val copy : t -> t

val write : t -> Ds_util.Wire.sink -> unit
val read_into : t -> Ds_util.Wire.source -> unit
(** Counter (de)serialisation; see {!One_sparse.write}.
    @raise Failure on mismatch or truncation. *)

module Linear : Linear_sketch.S with type t = t
(** [update ~index ~delta] adds [delta] to key [index]'s weight with a zero
    payload contribution. *)
