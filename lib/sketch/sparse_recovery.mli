(** Exact recovery of s-sparse vectors (the paper's [SKETCH_B] / [DECODE]
    primitive, Theorem 8 [CM06]).

    The sketch hashes the index space into [2s] buckets in each of [rows]
    independent rows; each bucket is a {!One_sparse} decoder. Decoding peels:
    any bucket holding a single surviving coordinate reveals it, the
    coordinate is subtracted from every row, and the process repeats. For a
    vector of support at most [s] this recovers everything with probability
    [1 - 2^-Omega(rows)]; failure is {e detected} (some bucket refuses to
    clear), so — unlike the paper's [CM06] matrix — no side F0 sketch is
    needed to know whether decoding succeeded (see DESIGN.md).

    The sketch is linear: [add]/[sub]/[merge] operate bucket-wise, which is
    what lets Algorithm 1 sum the sketches [S^r_j(v)] along a cluster tree. *)

type t

type params = {
  sparsity : int;  (** recovery budget [s]: decode succeeds whp when [||x||_0 <= s] *)
  rows : int;  (** independent hash rows; failure probability [2^-Omega(rows)] *)
  hash_degree : int;  (** independence of the bucket hashes *)
}

val default_params : sparsity:int -> params
(** [rows = 4], [hash_degree = 6] — empirically sound for [n <= 4096]
    (validated by the property tests in [test/test_sketch.ml]). *)

val create : Ds_util.Prng.t -> dim:int -> params:params -> t
(** Fresh sketch of the zero vector over [0, dim). Generators with equal
    state yield compatible (mergeable) sketches. *)

val update : t -> index:int -> delta:int -> unit
(** Add [delta] to coordinate [index]; O(rows) bucket updates. The key fold
    and the fingerprint term are computed once per update (not once per
    row) — all cells share one fingerprint base by construction. *)

val update_batch : t -> (int * int) array -> unit
(** [(index, delta)] pairs, applied in order; equals the fold of {!update}. *)

val update_slice : t -> (int * int) array -> pos:int -> len:int -> unit
(** [update_batch] over [updates.(pos .. pos+len-1)] without copying the
    slice (the parallel engine's chunk entry point). *)

val update_folded : t -> index:int -> folded:int -> delta:int -> unit
(** {!update} with the key fold hoisted out: [folded] must equal
    [Kwise.fold_key index]. No bounds check — kernel API for containers
    ({!L0_sampler}, {!F0}) that feed one key to many sketches. *)

val update_folded_pair : t -> t -> index:int -> folded:int -> delta:int -> unit
(** [update_folded_pair t s ~index ~folded ~delta] applies [+delta] to [t]
    and [-delta] to [s] with one set of bucket evaluations and one
    fingerprint term. Precondition: [t] and [s] are clones sharing hash
    functions and fingerprint base (e.g. built with {!clone_zero} from one
    prototype) — unchecked; the edge-update kernel of
    {!Ds_agm.Agm_sketch}. *)

val update_pows : t -> index:int -> x:int -> x2:int -> x4:int -> delta:int -> unit
(** {!update_folded} with the folded key's square and fourth power also
    hoisted ([x = Kwise.fold_key index], [x2 = Field.mul x x],
    [x4 = Field.mul x2 x2]); containers evaluating many rows/levels at one
    key compute the powers once (see {!Ds_util.Kwise.to_range_pows}). *)

val update_pows_pair : t -> t -> index:int -> x:int -> x2:int -> x4:int -> delta:int -> unit
(** {!update_folded_pair} with precomputed key powers, as {!update_pows}. *)


val decode : t -> (int * int) list option
(** Full recovery attempt. [Some assoc] lists every non-zero coordinate with
    its value (unordered); [None] means the vector was (detectably) not
    [s]-sparse or an internal decode failed. Non-destructive. *)

val decode_any : t -> (int * int) option
(** Cheapest query: some non-zero coordinate of the vector, or [None] if the
    vector is zero or nothing can be peeled. Matches the paper's "an
    arbitrary element of the support" in Algorithm 1 line 14. *)

val is_zero : t -> bool
(** Whether the sketched vector is (whp) identically zero. *)

val add : t -> t -> unit
val sub : t -> t -> unit
val copy : t -> t

val clone_zero : t -> t
(** A fresh zero sketch {e compatible} with [t] (same hashes and fingerprint
    bases, new counters). Large sketch arrays (one instance per vertex) use
    this to share the immutable hash state physically. *)

val reset : t -> unit
(** Zero every counter in place — one fill of the underlying buffer. *)

val state_words : t -> int
(** Exact word count of the cell-grid buffer ([rows * cols * 3]): what a
    container must reserve to {!clone_into} this sketch. *)

val compatible : t -> t -> bool
(** Same shape and fingerprint base — the merge precondition, checked
    once per container merge instead of once per cell. *)

val clone_into : t -> words:Ds_util.Words.t -> off:int -> t
(** [clone_into t ~words ~off] is {!clone_zero} whose counters live at
    [words.[off .. off + state_words t - 1]] (an alias of the caller's
    buffer, zeroed by the caller).  Containers ({!L0_sampler}, {!F0})
    use this to keep a whole tower of sketches in one allocation. *)

val merge_many : t list -> t
(** Sum of compatible sketches as a fresh sketch.
    @raise Invalid_argument on the empty list. *)

val space_in_words : t -> int
val dim : t -> int
val params : t -> params

val write : t -> Ds_util.Wire.sink -> unit
(** Serialise all cell counters (hashes are seed-derived, not shipped). *)

val read_into : t -> Ds_util.Wire.source -> unit
(** Overwrite [t]'s counters; [t] must share the writer's seed/shape.
    @raise Failure on mismatch or truncation. *)

module Linear : Linear_sketch.S with type t = t
