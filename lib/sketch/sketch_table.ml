open Ds_util

(* All counters live in one flat off-heap buffer, row-major with
   segmented rows: row [r] occupies [row_words = cap * (3 + payload_len)]
   words at [r * row_words], split as

     kc      at +0            (cap words : weight count)
     ks      at +cap          (cap words : weighted key sum)
     kf      at +2*cap        (cap words : raw-integer key fingerprint)
     payload at +3*cap        (cap * payload_len words)

   matching the serialization order (kc, ks, kf, payload per row), so the
   wire body is four window passes per row over one buffer.  Everything —
   fingerprints included — is a raw integer accumulator, so merge is the
   plain-add kernel over the whole buffer. *)
type t = {
  key_dim : int;
  cap : int;
  rows : int;
  payload_len : int;
  hashes : Kwise.t array;
  base : int; (* key fingerprint base *)
  words : Words.t;
}

let[@inline] row_words t = t.cap * (3 + t.payload_len)
let[@inline] kc_off t r c = (r * row_words t) + c
let[@inline] ks_off t r c = (r * row_words t) + t.cap + c
let[@inline] kf_off t r c = (r * row_words t) + (2 * t.cap) + c
let[@inline] payload_off t r c = (r * row_words t) + (3 * t.cap) + (c * t.payload_len)

let create rng ~key_dim ~capacity ~rows ~hash_degree ~payload_len =
  if capacity < 1 || rows < 1 || payload_len < 0 then
    invalid_arg "Sketch_table.create: bad dimensions";
  {
    key_dim;
    cap = capacity;
    rows;
    payload_len;
    hashes =
      Array.init rows (fun r ->
          Kwise.create (Prng.split_named rng (Printf.sprintf "row%d" r)) ~k:hash_degree);
    base = 2 + Prng.int rng (Field.p - 2);
    words = Words.create (rows * capacity * (3 + payload_len));
  }

let update t ~key ~weight ~write =
  if key < 0 || key >= t.key_dim then invalid_arg "Sketch_table.update: key out of range";
  let fp = weight * Field.pow t.base (key + 1) in
  let w = t.words in
  for r = 0 to t.rows - 1 do
    let c = Kwise.to_range t.hashes.(r) key ~bound:t.cap in
    let okc = kc_off t r c and oks = ks_off t r c and okf = kf_off t r c in
    Words.unsafe_set w okc (Words.unsafe_get w okc + weight);
    Words.unsafe_set w oks (Words.unsafe_get w oks + (weight * key));
    Words.unsafe_set w okf (Words.unsafe_get w okf + fp);
    write w (payload_off t r c)
  done

type cell_state = Zero | One of int * int | Many

(* [scratch] shares [t]'s layout (it is a peeling copy of [t.words]). *)
let decode_cell t (scratch : Words.t) r c =
  let c0 = Words.unsafe_get scratch (kc_off t r c)
  and c1 = Words.unsafe_get scratch (ks_off t r c)
  and c2 = Words.unsafe_get scratch (kf_off t r c) in
  if c0 = 0 && c1 = 0 && Field.of_int c2 = 0 then begin
    (* Weight cancelled to zero: genuinely empty only if the payload is too. *)
    let clean = ref true in
    let base = payload_off t r c in
    for i = 0 to t.payload_len - 1 do
      if Words.unsafe_get scratch (base + i) <> 0 then clean := false
    done;
    if !clean then Zero else Many
  end
  else if c0 = 0 then Many
  else if c1 mod c0 <> 0 then Many
  else begin
    let k = c1 / c0 in
    if k < 0 || k >= t.key_dim then Many
    else if Field.of_int (c0 * Field.pow t.base (k + 1)) = Field.of_int c2 then One (k, c0)
    else Many
  end

let decode t =
  let scratch = Words.copy t.words in
  let results = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    for r = 0 to t.rows - 1 do
      for c = 0 to t.cap - 1 do
        match decode_cell t scratch r c with
        | One (k, w) when Kwise.to_range t.hashes.(r) k ~bound:t.cap = c ->
            let pl = Words.create t.payload_len in
            Words.blit ~src:scratch ~src_pos:(payload_off t r c) ~dst:pl ~dst_pos:0
              ~len:t.payload_len;
            results := (k, w, pl) :: !results;
            let fp = w * Field.pow t.base (k + 1) in
            for r' = 0 to t.rows - 1 do
              let c' = Kwise.to_range t.hashes.(r') k ~bound:t.cap in
              let okc = kc_off t r' c' and oks = ks_off t r' c' and okf = kf_off t r' c' in
              Words.unsafe_set scratch okc (Words.unsafe_get scratch okc - w);
              Words.unsafe_set scratch oks (Words.unsafe_get scratch oks - (w * k));
              Words.unsafe_set scratch okf (Words.unsafe_get scratch okf - fp);
              let b' = payload_off t r' c' in
              for i = 0 to t.payload_len - 1 do
                Words.unsafe_set scratch (b' + i)
                  (Words.unsafe_get scratch (b' + i) - Words.unsafe_get pl i)
              done
            done;
            progress := true
        | Zero | One _ | Many -> ()
      done
    done
  done;
  let cleared = ref true in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cap - 1 do
      match decode_cell t scratch r c with
      | Zero -> ()
      | One _ | Many -> cleared := false
    done
  done;
  if !cleared then Some !results else None

let keys_hint t =
  let occupied = ref 0 in
  for c = 0 to t.cap - 1 do
    if
      Words.unsafe_get t.words (kc_off t 0 c) <> 0
      || Words.unsafe_get t.words (ks_off t 0 c) <> 0
      || Field.of_int (Words.unsafe_get t.words (kf_off t 0 c)) <> 0
    then incr occupied
  done;
  !occupied

let check_compatible t s =
  if
    t.key_dim <> s.key_dim || t.cap <> s.cap || t.rows <> s.rows
    || t.payload_len <> s.payload_len || t.base <> s.base
  then invalid_arg "Sketch_table: incompatible tables"

let add t s =
  check_compatible t s;
  Words.add t.words s.words

let sub t s =
  check_compatible t s;
  Words.sub t.words s.words

let space_in_words t =
  (t.rows * t.cap * (3 + t.payload_len))
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.hashes

let capacity t = t.cap
let clone_zero t = { t with words = Words.create (Words.length t.words) }
let copy t = { t with words = Words.copy t.words }
let reset t = Words.fill t.words 0

let write t sink =
  Wire.write_tag sink "stb";
  Wire.write_int sink t.key_dim;
  for r = 0 to t.rows - 1 do
    Words.write_wire_array sink t.words ~pos:(kc_off t r 0) ~len:t.cap;
    Words.write_wire_array sink t.words ~pos:(ks_off t r 0) ~len:t.cap;
    Words.write_wire_array sink t.words ~pos:(kf_off t r 0) ~len:t.cap;
    Words.write_wire_array sink t.words ~pos:(payload_off t r 0) ~len:(t.cap * t.payload_len)
  done

let read_into t src =
  Wire.expect_tag src "stb";
  if Wire.read_int src <> t.key_dim then failwith "Sketch_table.read_into: key_dim mismatch";
  let what = "Sketch_table.read_into" in
  for r = 0 to t.rows - 1 do
    Words.read_wire_array ~what src t.words ~pos:(kc_off t r 0) ~len:t.cap;
    Words.read_wire_array ~what src t.words ~pos:(ks_off t r 0) ~len:t.cap;
    Words.read_wire_array ~what src t.words ~pos:(kf_off t r 0) ~len:t.cap;
    Words.read_wire_array ~what src t.words ~pos:(payload_off t r 0) ~len:(t.cap * t.payload_len)
  done

module Linear = struct
  type nonrec t = t

  let family = "sketch_table"
  let dim t = t.key_dim
  let shape t = [| t.key_dim; t.cap; t.rows; t.payload_len |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub

  (* A key's weight is a linear accumulator; updating it with an empty
     payload contribution is the index/delta face of [update]. *)
  let update t ~index ~delta = update t ~key:index ~weight:delta ~write:(fun _ _ -> ())
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
