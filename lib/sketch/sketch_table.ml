open Ds_util

type t = {
  key_dim : int;
  cap : int;
  rows : int;
  payload_len : int;
  hashes : Kwise.t array;
  base : int; (* key fingerprint base *)
  (* Per row: cells laid out as [cap] records of (count, keysum, keyfp). *)
  kc : int array array; (* rows x cap : weight count *)
  ks : int array array; (* rows x cap : weighted key sum *)
  kf : int array array; (* rows x cap : raw-integer key fingerprint *)
  payload : int array array; (* rows x (cap * payload_len) *)
}

let create rng ~key_dim ~capacity ~rows ~hash_degree ~payload_len =
  if capacity < 1 || rows < 1 || payload_len < 0 then
    invalid_arg "Sketch_table.create: bad dimensions";
  {
    key_dim;
    cap = capacity;
    rows;
    payload_len;
    hashes =
      Array.init rows (fun r ->
          Kwise.create (Prng.split_named rng (Printf.sprintf "row%d" r)) ~k:hash_degree);
    base = 2 + Prng.int rng (Field.p - 2);
    kc = Array.init rows (fun _ -> Array.make capacity 0);
    ks = Array.init rows (fun _ -> Array.make capacity 0);
    kf = Array.init rows (fun _ -> Array.make capacity 0);
    payload = Array.init rows (fun _ -> Array.make (capacity * payload_len) 0);
  }

let update t ~key ~weight ~write =
  if key < 0 || key >= t.key_dim then invalid_arg "Sketch_table.update: key out of range";
  let fp = weight * Field.pow t.base (key + 1) in
  for r = 0 to t.rows - 1 do
    let c = Kwise.to_range t.hashes.(r) key ~bound:t.cap in
    t.kc.(r).(c) <- t.kc.(r).(c) + weight;
    t.ks.(r).(c) <- t.ks.(r).(c) + (weight * key);
    t.kf.(r).(c) <- t.kf.(r).(c) + fp;
    write t.payload.(r) (c * t.payload_len)
  done

type cell_state = Zero | One of int * int | Many

let decode_cell t kc ks kf payload r c =
  let c0 = kc.(r).(c) and c1 = ks.(r).(c) and c2 = kf.(r).(c) in
  if c0 = 0 && c1 = 0 && Field.of_int c2 = 0 then begin
    (* Weight cancelled to zero: genuinely empty only if the payload is too. *)
    let clean = ref true in
    let base = c * t.payload_len in
    for i = 0 to t.payload_len - 1 do
      if payload.(r).(base + i) <> 0 then clean := false
    done;
    if !clean then Zero else Many
  end
  else if c0 = 0 then Many
  else if c1 mod c0 <> 0 then Many
  else begin
    let k = c1 / c0 in
    if k < 0 || k >= t.key_dim then Many
    else if Field.of_int (c0 * Field.pow t.base (k + 1)) = Field.of_int c2 then One (k, c0)
    else Many
  end

let decode t =
  let kc = Array.map Array.copy t.kc
  and ks = Array.map Array.copy t.ks
  and kf = Array.map Array.copy t.kf
  and payload = Array.map Array.copy t.payload in
  let results = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    for r = 0 to t.rows - 1 do
      for c = 0 to t.cap - 1 do
        match decode_cell t kc ks kf payload r c with
        | One (k, w) when Kwise.to_range t.hashes.(r) k ~bound:t.cap = c ->
            let pbase = c * t.payload_len in
            let pl = Array.sub payload.(r) pbase t.payload_len in
            results := (k, w, pl) :: !results;
            let fp = w * Field.pow t.base (k + 1) in
            for r' = 0 to t.rows - 1 do
              let c' = Kwise.to_range t.hashes.(r') k ~bound:t.cap in
              kc.(r').(c') <- kc.(r').(c') - w;
              ks.(r').(c') <- ks.(r').(c') - (w * k);
              kf.(r').(c') <- kf.(r').(c') - fp;
              let b' = c' * t.payload_len in
              for i = 0 to t.payload_len - 1 do
                payload.(r').(b' + i) <- payload.(r').(b' + i) - pl.(i)
              done
            done;
            progress := true
        | Zero | One _ | Many -> ()
      done
    done
  done;
  let cleared = ref true in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cap - 1 do
      match decode_cell t kc ks kf payload r c with
      | Zero -> ()
      | One _ | Many -> cleared := false
    done
  done;
  if !cleared then Some !results else None

let keys_hint t =
  let occupied = ref 0 in
  for c = 0 to t.cap - 1 do
    if t.kc.(0).(c) <> 0 || t.ks.(0).(c) <> 0 || Field.of_int t.kf.(0).(c) <> 0 then incr occupied
  done;
  !occupied

let check_compatible t s =
  if
    t.key_dim <> s.key_dim || t.cap <> s.cap || t.rows <> s.rows
    || t.payload_len <> s.payload_len || t.base <> s.base
  then invalid_arg "Sketch_table: incompatible tables"

let combine t s op =
  check_compatible t s;
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cap - 1 do
      t.kc.(r).(c) <- op t.kc.(r).(c) s.kc.(r).(c);
      t.ks.(r).(c) <- op t.ks.(r).(c) s.ks.(r).(c);
      t.kf.(r).(c) <- op t.kf.(r).(c) s.kf.(r).(c)
    done;
    for i = 0 to (t.cap * t.payload_len) - 1 do
      t.payload.(r).(i) <- op t.payload.(r).(i) s.payload.(r).(i)
    done
  done

let add t s = combine t s ( + )
let sub t s = combine t s ( - )

let space_in_words t =
  (t.rows * t.cap * (3 + t.payload_len))
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 t.hashes

let capacity t = t.cap

let clone_zero t =
  {
    t with
    kc = Array.init t.rows (fun _ -> Array.make t.cap 0);
    ks = Array.init t.rows (fun _ -> Array.make t.cap 0);
    kf = Array.init t.rows (fun _ -> Array.make t.cap 0);
    payload = Array.init t.rows (fun _ -> Array.make (t.cap * t.payload_len) 0);
  }

let copy t =
  {
    t with
    kc = Array.map Array.copy t.kc;
    ks = Array.map Array.copy t.ks;
    kf = Array.map Array.copy t.kf;
    payload = Array.map Array.copy t.payload;
  }

let write t sink =
  Wire.write_tag sink "stb";
  Wire.write_int sink t.key_dim;
  for r = 0 to t.rows - 1 do
    Wire.write_array sink t.kc.(r);
    Wire.write_array sink t.ks.(r);
    Wire.write_array sink t.kf.(r);
    Wire.write_array sink t.payload.(r)
  done

let read_into t src =
  Wire.expect_tag src "stb";
  if Wire.read_int src <> t.key_dim then failwith "Sketch_table.read_into: key_dim mismatch";
  let read_row ~len dst =
    let a = Wire.read_array src in
    if Array.length a <> len then failwith "Sketch_table.read_into: row length mismatch";
    Array.blit a 0 dst 0 len
  in
  for r = 0 to t.rows - 1 do
    read_row ~len:t.cap t.kc.(r);
    read_row ~len:t.cap t.ks.(r);
    read_row ~len:t.cap t.kf.(r);
    read_row ~len:(t.cap * t.payload_len) t.payload.(r)
  done

module Linear = struct
  type nonrec t = t

  let family = "sketch_table"
  let dim t = t.key_dim
  let shape t = [| t.key_dim; t.cap; t.rows; t.payload_len |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub

  (* A key's weight is a linear accumulator; updating it with an empty
     payload contribution is the index/delta face of [update]. *)
  let update t ~index ~delta = update t ~key:index ~weight:delta ~write:(fun _ _ -> ())
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
