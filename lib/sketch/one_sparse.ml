open Ds_util

(* The three counters live in an off-heap Words buffer at [off]: a
   standalone sketch owns a 3-word buffer of its own, while container
   cells (Sparse_recovery rows) are views into one shared allocation —
   see [view].  The record itself is only immutable metadata (dimension,
   fingerprint base, the shared power ladder, and the window address). *)
type t = {
  dim : int;
  base : int; (* fingerprint base r, shared by compatible sketches *)
  pows : Field.Pow.table; (* cached ladder for r^(i+1), shared by clones *)
  words : Words.t;
  off : int;
}

type result = Zero | One of int * int | Many

let state_words = 3

let create rng ~dim =
  if dim <= 0 then invalid_arg "One_sparse.create: dim must be positive";
  let base = 2 + Prng.int rng (Field.p - 2) in
  let pows = Field.Pow.table ~base ~max_exp:dim in
  { dim; base; pows; words = Words.create state_words; off = 0 }

let clone_zero t = { t with words = Words.create state_words; off = 0 }
let view t ~words ~off = { t with words; off }

let[@inline] c0 t = Words.unsafe_get t.words t.off
let[@inline] c1 t = Words.unsafe_get t.words (t.off + 1)
let[@inline] c2 t = Words.unsafe_get t.words (t.off + 2)
let[@inline] set_c0 t v = Words.unsafe_set t.words t.off v
let[@inline] set_c1 t v = Words.unsafe_set t.words (t.off + 1) v
let[@inline] set_c2 t v = Words.unsafe_set t.words (t.off + 2) v

let[@inline] fingerprint_pow t index = Field.Pow.get t.pows (index + 1)

let[@inline] update_prepared t ~index ~delta ~term =
  let w = t.words and o = t.off in
  Words.unsafe_set w o (Words.unsafe_get w o + delta);
  Words.unsafe_set w (o + 1) (Words.unsafe_get w (o + 1) + (delta * index));
  Words.unsafe_set w (o + 2) (Field.add (Words.unsafe_get w (o + 2)) term)

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "One_sparse.update: index out of range";
  update_prepared t ~index ~delta ~term:(Field.scale_int delta (fingerprint_pow t index))

let update_batch t updates =
  Array.iter (fun (index, delta) -> update t ~index ~delta) updates

let decode t =
  let c0 = c0 t and c1 = c1 t and c2 = c2 t in
  if c0 = 0 && c1 = 0 && c2 = 0 then Zero
  else if c0 = 0 then Many
  else if c1 mod c0 <> 0 then Many
  else begin
    let i = c1 / c0 in
    if i < 0 || i >= t.dim then Many
    else if Field.scale_int c0 (fingerprint_pow t i) = c2 then One (i, c0)
    else Many
  end

let is_zero t = c0 t = 0 && c1 t = 0 && c2 t = 0

let compatible t s = t.dim = s.dim && t.base = s.base

let check_compatible t s =
  if not (compatible t s) then invalid_arg "One_sparse: incompatible sketches"

let add t s =
  check_compatible t s;
  (* Merging shard replicas walks millions of cells of which only the
     touched few are non-zero; skipping the zero sources spares the
     destination's dirty cache traffic.  Adding zero is the identity on
     every counter (including [c2]: [Field.add x 0 = x]), so the
     fast path is bit-invisible.  (Container merges bypass this loop
     entirely: one [Words.add_tri] covers a whole cell grid.) *)
  if not (is_zero s) then begin
    set_c0 t (c0 t + c0 s);
    set_c1 t (c1 t + c1 s);
    set_c2 t (Field.add (c2 t) (c2 s))
  end

let sub t s =
  check_compatible t s;
  set_c0 t (c0 t - c0 s);
  set_c1 t (c1 t - c1 s);
  set_c2 t (Field.sub (c2 t) (c2 s))

let copy t =
  let words = Words.create state_words in
  Words.blit ~src:t.words ~src_pos:t.off ~dst:words ~dst_pos:0 ~len:state_words;
  { t with words; off = 0 }

let reset t =
  set_c0 t 0;
  set_c1 t 0;
  set_c2 t 0

let space_in_words _ = 4

let write_raw t sink =
  Wire.write_int sink (c0 t);
  Wire.write_int sink (c1 t);
  Wire.write_int sink (c2 t)

let read_raw t src =
  set_c0 t (Wire.read_int src);
  set_c1 t (Wire.read_int src);
  set_c2 t (Wire.read_int src)

let write t sink =
  Wire.write_tag sink "1sp";
  Wire.write_int sink t.dim;
  write_raw t sink

let read_into t src =
  Wire.expect_tag src "1sp";
  let dim = Wire.read_int src in
  if dim <> t.dim then failwith "One_sparse.read_into: dimension mismatch";
  read_raw t src

module Linear = struct
  type nonrec t = t

  let family = "one_sparse"
  let dim t = t.dim
  let shape t = [| t.dim |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
