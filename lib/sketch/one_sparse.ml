open Ds_util

type t = {
  dim : int;
  base : int; (* fingerprint base r, shared by compatible sketches *)
  pows : Field.Pow.table; (* cached ladder for r^(i+1), shared by clones *)
  mutable c0 : int;
  mutable c1 : int;
  mutable c2 : int;
}

type result = Zero | One of int * int | Many

let create rng ~dim =
  if dim <= 0 then invalid_arg "One_sparse.create: dim must be positive";
  let base = 2 + Prng.int rng (Field.p - 2) in
  let pows = Field.Pow.table ~base ~max_exp:dim in
  { dim; base; pows; c0 = 0; c1 = 0; c2 = 0 }

let clone_zero t = { t with c0 = 0; c1 = 0; c2 = 0 }
let[@inline] fingerprint_pow t index = Field.Pow.get t.pows (index + 1)

let[@inline] update_prepared t ~index ~delta ~term =
  t.c0 <- t.c0 + delta;
  t.c1 <- t.c1 + (delta * index);
  t.c2 <- Field.add t.c2 term

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "One_sparse.update: index out of range";
  update_prepared t ~index ~delta ~term:(Field.scale_int delta (fingerprint_pow t index))

let update_batch t updates =
  Array.iter (fun (index, delta) -> update t ~index ~delta) updates

let decode t =
  if t.c0 = 0 && t.c1 = 0 && t.c2 = 0 then Zero
  else if t.c0 = 0 then Many
  else if t.c1 mod t.c0 <> 0 then Many
  else begin
    let i = t.c1 / t.c0 in
    if i < 0 || i >= t.dim then Many
    else if Field.scale_int t.c0 (fingerprint_pow t i) = t.c2 then One (i, t.c0)
    else Many
  end

let is_zero t = t.c0 = 0 && t.c1 = 0 && t.c2 = 0

let check_compatible t s =
  if t.dim <> s.dim || t.base <> s.base then
    invalid_arg "One_sparse: incompatible sketches"

let add t s =
  check_compatible t s;
  (* Merging shard replicas walks millions of cells of which only the
     touched few are non-zero; skipping the zero sources spares the
     destination's dirty cache traffic.  Adding zero is the identity on
     every counter (including [c2]: [Field.add x 0 = x]), so the
     fast path is bit-invisible. *)
  if not (s.c0 = 0 && s.c1 = 0 && s.c2 = 0) then begin
    t.c0 <- t.c0 + s.c0;
    t.c1 <- t.c1 + s.c1;
    t.c2 <- Field.add t.c2 s.c2
  end

let sub t s =
  check_compatible t s;
  t.c0 <- t.c0 - s.c0;
  t.c1 <- t.c1 - s.c1;
  t.c2 <- Field.sub t.c2 s.c2

let copy t = { t with c0 = t.c0 }

let reset t =
  t.c0 <- 0;
  t.c1 <- 0;
  t.c2 <- 0

let space_in_words _ = 4

let write_raw t sink =
  Wire.write_int sink t.c0;
  Wire.write_int sink t.c1;
  Wire.write_int sink t.c2

let read_raw t src =
  t.c0 <- Wire.read_int src;
  t.c1 <- Wire.read_int src;
  t.c2 <- Wire.read_int src

let write t sink =
  Wire.write_tag sink "1sp";
  Wire.write_int sink t.dim;
  write_raw t sink

let read_into t src =
  Wire.expect_tag src "1sp";
  let dim = Wire.read_int src in
  if dim <> t.dim then failwith "One_sparse.read_into: dimension mismatch";
  read_raw t src

module Linear = struct
  type nonrec t = t

  let family = "one_sparse"
  let dim t = t.dim
  let shape t = [| t.dim |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
