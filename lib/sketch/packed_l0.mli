(** An L0-sampler codec over externally owned {!Ds_util.Words} state.

    This is the payload format for {!Sketch_table} cells: Algorithm 2 stores,
    for each key [v], a sketch of [N(v) ∩ Tu ∩ Y_j] from which one neighbour
    must be recoverable. The state here is a flat word buffer under plain
    componentwise addition — even the field fingerprints are kept as
    unreduced integer accumulators and only reduced at decode time — so a
    containing structure can add/subtract payloads without knowing their
    semantics. That property is what makes the table's peeling sound.

    Layout: [reps] independent repetitions, each with its own geometric level
    hash; per level a [2 x 2*sparsity] grid of 1-sparse (count, index-sum,
    fingerprint) triples, peeled at decode time. *)

type config
(** Immutable hash functions and dimensions; shared by all states using it. *)

type params = {
  reps : int;  (** independent repetitions; failure decays exponentially *)
  sparsity : int;  (** per-level peelable support *)
  hash_degree : int;
}

val default_params : params
(** [reps = 2], [sparsity = 3], [hash_degree = 6]. *)

val make_config : Ds_util.Prng.t -> dim:int -> params:params -> config

val state_len : config -> int
(** Word length of the state window required. *)

val update : config -> Ds_util.Words.t -> off:int -> index:int -> delta:int -> unit
(** Add [delta] to coordinate [index] of the vector sketched in
    [state.(off .. off + state_len - 1)]. *)

val decode : config -> Ds_util.Words.t -> off:int -> (int * int) option
(** [Some (index, value)] for one non-zero coordinate (near-uniform among
    the support), or [None] if the vector is zero or decoding failed. *)

val dim : config -> int
val config_space_in_words : config -> int

(** The codec bundled with one state array of its own — the packed sampler
    as a first-class sketch. {!Sketch_table} cells keep using the
    external-state API above; this form is what the linear-sketch interface
    registers. *)
module Owned : sig
  type t

  val create : Ds_util.Prng.t -> dim:int -> params:params -> t
  val config : t -> config

  val update : t -> index:int -> delta:int -> unit
  val sample : t -> (int * int) option

  val clone_zero : t -> t
  val copy : t -> t
  val reset : t -> unit
  val add : t -> t -> unit
  val sub : t -> t -> unit
  val space_in_words : t -> int
  val write : t -> Ds_util.Wire.sink -> unit

  val read_into : t -> Ds_util.Wire.source -> unit
  (** @raise Failure on mismatch or truncation. *)
end

module Linear : Linear_sketch.S with type t = Owned.t
