(** Exact recovery of 1-sparse vectors from a 3-word linear sketch.

    This is the Ganguly decoder: for a vector [x] over index space
    [0, dim) updated by signed increments, maintain

    - [c0 = sum_i x_i] (exact integer),
    - [c1 = sum_i x_i * i] (exact integer),
    - [c2 = sum_i x_i * r^(i+1)] in [F_p] for a random [r].

    If [x] has exactly one non-zero coordinate [i] with value [w], then
    [c1 / c0 = i] and [c2 = w * r^(i+1)]; the fingerprint test makes a false
    positive occur with probability at most [dim / p] per query. This is the
    atom from which every other sketch in the library is built (Theorem 8's
    recovery matrix is a hashed array of these). *)

type t
(** Mutable sketch state (3 words + the shared fingerprint base). *)

type result =
  | Zero  (** the sketched vector is (whp) identically zero *)
  | One of int * int  (** [One (i, w)]: single non-zero coordinate [i] of value [w] *)
  | Many  (** more than one non-zero coordinate (or fingerprint mismatch) *)

val create : Ds_util.Prng.t -> dim:int -> t
(** Fresh sketch of the zero vector over [0, dim). Two sketches built from
    generators with equal state are {e compatible}: they use the same
    fingerprint base and may be merged. *)

val update : t -> index:int -> delta:int -> unit
(** Add [delta] to coordinate [index]. O(1) field ops: the fingerprint power
    [r^(index+1)] comes from a cached ladder ({!Ds_util.Field.Pow}) built
    once per base at {!create} time and shared by {!copy}/{!clone_zero}. *)

val update_batch : t -> (int * int) array -> unit
(** [update_batch t pairs] applies [(index, delta)] pairs in order;
    equivalent to folding {!update} over the array. *)

val clone_zero : t -> t
(** A fresh zero sketch compatible with [t]: shares the fingerprint base and
    the (immutable) power ladder. Allocates a private 3-word buffer. *)

(** {2 Low-level kernel API}

    Containers that hash one update into many cells sharing a fingerprint
    base ({!Sparse_recovery} rows) compute the fingerprint term once and
    apply it per cell. Misuse voids decoding — these skip every check. *)

val state_words : int
(** 3: the number of buffer words a cell occupies (c0, c1, c2). *)

val compatible : t -> t -> bool
(** Same dimension and fingerprint base — the merge precondition.
    Containers check this once per merge instead of once per cell. *)

val view : t -> words:Ds_util.Words.t -> off:int -> t
(** [view t ~words ~off] is a sketch compatible with [t] whose counters
    live at [words.[off .. off+2]] — an alias, not a copy.  This is how
    containers embed their cell grid in one contiguous allocation: the
    triple layout matches {!Ds_util.Words.add_tri}, so the whole grid
    merges with one buffer-level call. *)

val fingerprint_pow : t -> int -> int
(** [fingerprint_pow t index] is [r^(index+1)] from the cached ladder.
    Requires [0 <= index < dim] (unchecked). *)

val update_prepared : t -> index:int -> delta:int -> term:int -> unit
(** [update_prepared t ~index ~delta ~term] adds [delta] at [index] where
    [term] must equal [Field.scale_int delta (fingerprint_pow t index)].
    No bounds check. *)

val decode : t -> result
(** Classify the current vector. *)

val is_zero : t -> bool
(** [decode t = Zero], cheaper to call. *)

val add : t -> t -> unit
(** [add dst src] sets [dst := dst + src] (compatible sketches only). *)

val sub : t -> t -> unit
(** [sub dst src] sets [dst := dst - src]. *)

val copy : t -> t

val reset : t -> unit
(** Back to the zero vector. *)

val space_in_words : t -> int

val write : t -> Ds_util.Wire.sink -> unit
(** Serialise the counters (structure is seed-derived and not shipped). *)

val read_into : t -> Ds_util.Wire.source -> unit
(** Overwrite [t]'s counters with serialised ones. [t] must have been built
    from the same seed/dimension as the writer; the dimension is checked.
    @raise Failure on tag/dimension mismatch or truncation. *)

val write_raw : t -> Ds_util.Wire.sink -> unit
(** The three counters only — no header. For containers that frame their
    cells themselves (see {!Sparse_recovery.write}). *)

val read_raw : t -> Ds_util.Wire.source -> unit

module Linear : Linear_sketch.S with type t = t
(** The universal interface: {!Linear_sketch.serialize} and friends over
    this sketch. *)
