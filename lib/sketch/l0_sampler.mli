(** L0 sampling: draw a (near-)uniform non-zero coordinate of a dynamically
    updated vector from a linear sketch.

    One {!Sparse_recovery} instance per geometric sampling level; sampling
    scans from the sparsest level downward, decodes the first level with a
    non-empty support and returns the member minimising an independent
    tie-break hash. This is the primitive [AGM12a] builds connectivity from,
    and the structure the paper's [Y_j] sets emulate (Section 3.2 notes the
    two are interchangeable). Uniformity is validated empirically in
    experiment E9. *)

type t

type params = {
  sparsity : int;  (** per-level recovery budget (>= 1) *)
  rows : int;  (** hash rows per level sketch *)
  hash_degree : int;
}

val default_params : params
(** [sparsity = 2], [rows = 3], [hash_degree = 6]. *)

val create : Ds_util.Prng.t -> dim:int -> params:params -> t

val update : t -> index:int -> delta:int -> unit
(** Expected O(rows) bucket updates (levels are nested, so a coordinate at
    level [l] touches [l + 1] sketches; E[l] = 1). The key fold happens once
    per update and is shared across levels and rows. *)

val update_batch : t -> (int * int) array -> unit
(** [(index, delta)] pairs, applied in order; equals the fold of {!update}. *)

val update_slice : t -> (int * int) array -> pos:int -> len:int -> unit
(** [update_batch] over [updates.(pos .. pos+len-1)] without copying the
    slice (the parallel engine's chunk entry point). *)

val clone_zero : t -> t
(** A fresh zero sampler compatible with [t], sharing its (immutable) hash
    functions and fingerprint ladders. O(sketch cells), not O(create). *)

(** {2 Kernel API} — no bounds checks; see {!Sparse_recovery.update_folded}. *)

val level_of : t -> folded:int -> int
(** The sampling level of a pre-folded key (already capped to the sketch's
    level count). Vertices sharing hash structure share levels, so container
    sketches ({!Ds_agm.Agm_sketch}) evaluate this once per update. *)

val update_prepared : t -> index:int -> folded:int -> level:int -> delta:int -> unit
(** {!update} with fold and level hoisted; [folded = Kwise.fold_key index],
    [level = level_of t ~folded]. *)

val update_prepared_pair : t -> t -> index:int -> folded:int -> level:int -> delta:int -> unit
(** [+delta] into the first sampler and [-delta] into the second with one
    set of hash evaluations; both must be clones sharing hash structure
    (see {!Sparse_recovery.update_folded_pair}). *)

val update_folded : t -> index:int -> folded:int -> delta:int -> unit
(** {!update_prepared} computing the level itself. *)

val level_of_pows : t -> x:int -> x2:int -> x4:int -> int
(** {!level_of} with the folded key's square and fourth power supplied
    (see {!Sparse_recovery.update_pows}); the deepest-shared hoist for
    containers evaluating many samplers at one key. *)

val update_prepared_pows :
  t -> index:int -> x:int -> x2:int -> x4:int -> level:int -> delta:int -> unit
(** {!update_prepared} with precomputed key powers. *)

val update_prepared_pair_pows :
  t -> t -> index:int -> x:int -> x2:int -> x4:int -> level:int -> delta:int -> unit
(** {!update_prepared_pair} with precomputed key powers. *)

val sample : t -> (int * int) option
(** [Some (index, value)] for a non-zero coordinate chosen near-uniformly,
    or [None] when the vector is zero or sampling failed (detected). *)

val classify : t -> [ `Empty | `Sample of int * int | `Fail ]
(** Like {!sample} but separates the two [None] cases: [`Empty] certifies
    (whp) that the vector is zero, [`Fail] is a detected decoding failure
    (the support exists but no level isolated it). Boruvka loops need the
    distinction to tell "done" from "retry with a fresh copy". *)

val support_hint : t -> int
(** Rough support-size estimate from the level structure (factor O(1)). *)

val add : t -> t -> unit
val sub : t -> t -> unit
val copy : t -> t

val reset : t -> unit
(** Zero every counter in place — one fill of the underlying buffer. *)

val state_words : t -> int
(** Word count of the all-levels counter buffer: the reservation a
    container makes to {!clone_into} this sampler. *)

val clone_into : t -> words:Ds_util.Words.t -> off:int -> t
(** {!clone_zero} into a caller-provided (zeroed) buffer window at
    [off]: the embedded sampler aliases the caller's storage, so e.g.
    {!Ds_agm.Agm_sketch} holds its whole copies x vertices sampler grid
    in one allocation and merges it with one kernel call. *)

val compatible : t -> t -> bool
(** Same shape, hashes drawn from equal seeds — the merge precondition. *)

val space_in_words : t -> int

val write : t -> Ds_util.Wire.sink -> unit
val read_into : t -> Ds_util.Wire.source -> unit
(** Counter (de)serialisation; see {!Ds_sketch.One_sparse.write}. *)

module Linear : Linear_sketch.S with type t = t
