open Ds_util

module type S = sig
  type t

  val family : string
  val dim : t -> int
  val shape : t -> int array
  val clone_zero : t -> t
  val add : t -> t -> unit
  val sub : t -> t -> unit
  val update : t -> index:int -> delta:int -> unit
  val space_in_words : t -> int
  val write_body : t -> Wire.sink -> unit
  val read_body : t -> Wire.source -> unit
end

type 'a impl = (module S with type t = 'a)

let version = 1
let magic = "LSK1"
let checksum_bytes = 8

let serialize (type a) ((module L) : a impl) (t : a) =
  let sink = Wire.sink () in
  Wire.write_tag sink magic;
  Wire.write_tag sink L.family;
  Wire.write_array sink (L.shape t);
  L.write_body t sink;
  let payload = Wire.contents sink in
  let tail = Wire.sink () in
  Wire.write_fixed64 tail (Wire.fnv1a64 payload);
  payload ^ Wire.contents tail

(* Trailing checksum, located from the message length alone (fixed width, no
   varint layer), so truncation can never shift where the reader looks. *)
let stored_checksum data pos =
  let v = ref 0L in
  for i = 0 to checksum_bytes - 1 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code data.[pos + i])) (8 * i))
  done;
  !v

let deserialize_into (type a) ((module L) : a impl) (t : a) data =
  let len = String.length data in
  if len < checksum_bytes + String.length magic + 2 then
    failwith "Linear_sketch: truncated message";
  let payload_len = len - checksum_bytes in
  (* Integrity first: nothing is parsed (and the destination is untouched)
     unless the bytes are exactly what some writer produced. *)
  if Wire.fnv1a64 ~len:payload_len data <> stored_checksum data payload_len then
    failwith "Linear_sketch: checksum mismatch (corrupt or truncated message)";
  let src = Wire.source (String.sub data 0 payload_len) in
  Wire.expect_tag src magic;
  Wire.expect_tag src L.family;
  let shape = Wire.read_array src in
  if shape <> L.shape t then failwith "Linear_sketch: shape mismatch";
  L.read_body t src;
  if Wire.remaining src <> 0 then failwith "Linear_sketch: trailing bytes"

let absorb (type a) ((module L) as impl : a impl) (t : a) data =
  let scratch = L.clone_zero t in
  deserialize_into impl scratch data;
  L.add t scratch

let not_linear ~family ~reason () =
  invalid_arg
    (Printf.sprintf
       "Linear_sketch: %s is not a linear sketch (%s); it cannot honour the merge contract"
       family reason)

module Packed = struct
  type t = T : 'a impl * 'a -> t

  let pack impl v = T (impl, v)
  let family (T ((module L), _)) = L.family
  let dim (T ((module L), v)) = L.dim v
  let shape (T ((module L), v)) = L.shape v
  let space_in_words (T ((module L), v)) = L.space_in_words v
  let update (T ((module L), v)) ~index ~delta = L.update v ~index ~delta
  let clone_zero (T ((module L), v)) = T ((module L), L.clone_zero v)
  let serialize (T (impl, v)) = serialize impl v
  let deserialize_into (T (impl, v)) data = deserialize_into impl v data
  let absorb (T (impl, v)) data = absorb impl v data
end
