open Ds_util

module type S = sig
  type t

  val family : string
  val dim : t -> int
  val shape : t -> int array
  val clone_zero : t -> t
  val add : t -> t -> unit
  val sub : t -> t -> unit
  val update : t -> index:int -> delta:int -> unit
  val reset : t -> unit
  val space_in_words : t -> int
  val write_body : t -> Wire.sink -> unit
  val read_body : t -> Wire.source -> unit
end

type 'a impl = (module S with type t = 'a)

let version = 1
let magic = "LSK1"
let checksum_bytes = 8

(* Optional trace-context extension: appended after the body, inside the
   checksummed payload, so a corrupted extension is caught by the same
   integrity check as the counters.  Plain envelopes (no [?trace]) are
   byte-identical to version-1 messages without the extension, and
   readers that predate it would see it as trailing bytes — both
   directions of compatibility are property-tested in test_trace.ml. *)
let trace_ext_tag = "TCTX"

(* Decode/encode telemetry: one counter bump per envelope, never per
   byte (no-ops unless Ds_obs.Metrics is enabled). *)
let m_ser_count = Ds_obs.Metrics.counter "sketch.serialize.count"
let m_ser_bytes = Ds_obs.Metrics.counter "sketch.serialize.bytes"
let m_dec_ok = Ds_obs.Metrics.counter "sketch.decode.ok"
let m_dec_err = Ds_obs.Metrics.counter "sketch.decode.err"

let serialize (type a) ?trace ((module L) : a impl) (t : a) =
  let sink = Wire.sink () in
  Wire.write_tag sink magic;
  Wire.write_tag sink L.family;
  Wire.write_array sink (L.shape t);
  L.write_body t sink;
  (match trace with
  | Some { Ds_obs.Trace.trace_id; span_id } ->
      Wire.write_tag sink trace_ext_tag;
      Wire.write_fixed64 sink trace_id;
      Wire.write_fixed64 sink span_id
  | None -> ());
  let payload = Wire.contents sink in
  let tail = Wire.sink () in
  Wire.write_fixed64 tail (Wire.fnv1a64 payload);
  let msg = payload ^ Wire.contents tail in
  Ds_obs.Metrics.incr m_ser_count 1;
  Ds_obs.Metrics.incr m_ser_bytes (String.length msg);
  msg

type error =
  | Truncated of { length : int; min_length : int }
  | Checksum_mismatch
  | Wrong_magic of { got : string }
  | Wrong_family of { expected : string; got : string }
  | Shape_mismatch of { expected : int array; got : int array }
  | Malformed_body of string
  | Trailing_bytes of int

let error_to_string = function
  | Truncated { length; min_length } ->
      Printf.sprintf "truncated message (%d bytes, need at least %d)" length min_length
  | Checksum_mismatch -> "checksum mismatch (corrupt or truncated message)"
  | Wrong_magic { got } -> Printf.sprintf "bad magic %S (expected %S)" got magic
  | Wrong_family { expected; got } ->
      Printf.sprintf "family mismatch: message is %S, receiver is %S" got expected
  | Shape_mismatch { expected; got } ->
      Printf.sprintf "shape mismatch: message [%s], receiver [%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int got)))
        (String.concat ";" (Array.to_list (Array.map string_of_int expected)))
  | Malformed_body msg -> Printf.sprintf "malformed body (%s)" msg
  | Trailing_bytes n -> Printf.sprintf "%d trailing bytes after the body" n

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* Trailing checksum, located from the message length alone (fixed width, no
   varint layer), so truncation can never shift where the reader looks. *)
let stored_checksum data pos =
  let v = ref 0L in
  for i = 0 to checksum_bytes - 1 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code data.[pos + i])) (8 * i))
  done;
  !v

let deserialize_result (type a) ((module L) : a impl) (t : a) data =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let count r =
    (match r with
    | Ok () -> Ds_obs.Metrics.incr m_dec_ok 1
    | Error _ -> Ds_obs.Metrics.incr m_dec_err 1);
    r
  in
  let tracing = Ds_obs.Trace.enabled () in
  let t0 = if tracing then Ds_obs.Clock.now_ns () else 0L in
  count
  @@
  let len = String.length data in
  let min_length = checksum_bytes + String.length magic + 2 in
  let* () = if len < min_length then Error (Truncated { length = len; min_length }) else Ok () in
  let payload_len = len - checksum_bytes in
  (* Integrity first: nothing is parsed (and the destination is untouched)
     unless the bytes are exactly what some writer produced. *)
  let* () =
    if Wire.fnv1a64 ~len:payload_len data <> stored_checksum data payload_len then
      Error Checksum_mismatch
    else Ok ()
  in
  let src = Wire.source (String.sub data 0 payload_len) in
  let read_tag () = try Ok (Wire.read_tag src) with Failure m -> Error (Malformed_body m) in
  let* got_magic = read_tag () in
  let* () = if got_magic <> magic then Error (Wrong_magic { got = got_magic }) else Ok () in
  let* got_family = read_tag () in
  let* () =
    if got_family <> L.family then
      Error (Wrong_family { expected = L.family; got = got_family })
    else Ok ()
  in
  let* shape = try Ok (Wire.read_array src) with Failure m -> Error (Malformed_body m) in
  let* () =
    if shape <> L.shape t then Error (Shape_mismatch { expected = L.shape t; got = shape })
    else Ok ()
  in
  let* () = try Ok (L.read_body t src) with Failure m -> Error (Malformed_body m) in
  match Wire.remaining src with
  | 0 -> Ok ()
  | n -> (
      (* Anything after the body must be exactly one trace-context
         extension; otherwise it is trailing garbage as before. *)
      match (try Ok (Wire.read_tag src) with Failure _ -> Error (Trailing_bytes n)) with
      | Ok tag when tag = trace_ext_tag && Wire.remaining src = 16 ->
          let trace_id = Wire.read_fixed64 src in
          let span_id = Wire.read_fixed64 src in
          (* The decode span parents under the *sender's* shipping span
             via the carried context, linking the receiving process into
             the coordinator's trace. *)
          if tracing then
            Ds_obs.Trace.record_linked "sketch.decode"
              { Ds_obs.Trace.trace_id; span_id }
              ~start_ns:t0 ~dur_ns:(Ds_obs.Clock.elapsed_ns t0);
          Ok ()
      | Ok _ | Error _ -> Error (Trailing_bytes n))

let deserialize_into impl t data =
  match deserialize_result impl t data with
  | Ok () -> ()
  | Error e -> failwith ("Linear_sketch: " ^ error_to_string e)

let absorb_result (type a) ((module L) as impl : a impl) (t : a) data =
  let scratch = L.clone_zero t in
  match deserialize_result impl scratch data with
  | Ok () -> Ok (L.add t scratch)
  | Error _ as e -> e

let absorb impl t data =
  match absorb_result impl t data with
  | Ok () -> ()
  | Error e -> failwith ("Linear_sketch: " ^ error_to_string e)

let not_linear ~family ~reason () =
  invalid_arg
    (Printf.sprintf
       "Linear_sketch: %s is not a linear sketch (%s); it cannot honour the merge contract"
       family reason)

module Packed = struct
  type t = T : 'a impl * 'a -> t

  let pack impl v = T (impl, v)
  let family (T ((module L), _)) = L.family
  let dim (T ((module L), v)) = L.dim v
  let shape (T ((module L), v)) = L.shape v
  let space_in_words (T ((module L), v)) = L.space_in_words v
  let update (T ((module L), v)) ~index ~delta = L.update v ~index ~delta
  let reset (T ((module L), v)) = L.reset v
  let clone_zero (T ((module L), v)) = T ((module L), L.clone_zero v)
  let serialize ?trace (T (impl, v)) = serialize ?trace impl v
  let deserialize_into (T (impl, v)) data = deserialize_into impl v data
  let deserialize_result (T (impl, v)) data = deserialize_result impl v data
  let absorb (T (impl, v)) data = absorb impl v data
  let absorb_result (T (impl, v)) data = absorb_result impl v data
end
