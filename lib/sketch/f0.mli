(** Distinct-elements (F0) estimation from a linear sketch, the stand-in for
    Theorem 9 [KNW10].

    For each geometric sampling level [j] the sketch keeps a small
    {!Sparse_recovery} instance of the substream restricted to indices with
    hash level [>= j]. The estimate is [count * 2^j] at the first level that
    decodes, medianed over independent repetitions. Decode failures are
    detected (never silently wrong), so the estimator is a true
    constant-factor F0 gate; accuracy tightens as [sparsity] grows
    (relative error roughly [1/sqrt(sparsity)]). The paper only needs a
    factor-2 gate (Section 2). *)

type t

type params = {
  sparsity : int;  (** per-level recovery budget; estimation accuracy knob *)
  reps : int;  (** independent repetitions medianed together *)
  hash_degree : int;
}

val default_params : params
(** [sparsity = 8], [reps = 3], [hash_degree = 6]. *)

val levels_for : int -> int
(** [levels_for dim] is the number of geometric sampling levels needed to
    cover a support of up to [dim] elements ([ceil(log2 dim) + 1]). Shared
    by every levelled sketch in the library. *)

val create : Ds_util.Prng.t -> dim:int -> params:params -> t

val update : t -> index:int -> delta:int -> unit

val estimate : t -> int
(** Estimated number of non-zero coordinates. Exact when the support fits a
    single level-0 sketch (support [<= sparsity]). *)

val add : t -> t -> unit
val sub : t -> t -> unit
val copy : t -> t

val clone_zero : t -> t
(** A fresh zero sketch compatible with [t] (shared level hashes and
    per-level recovery structure). *)

val reset : t -> unit
val space_in_words : t -> int

val write : t -> Ds_util.Wire.sink -> unit
val read_into : t -> Ds_util.Wire.source -> unit
(** @raise Failure on mismatch or truncation. *)

module Linear : Linear_sketch.S with type t = t
