(** The Alon–Matias–Szegedy F2 (second frequency moment) sketch — the
    original randomized linear measurement, included as a substrate both for
    completeness of the sketching toolkit and because [||x||_2^2] of the
    edge-multiplicity vector (= sum of squared multiplicities) is the
    natural multigraph health metric for streams with churn.

    Each estimator is [ (sum_i s(i) x_i)^2 ] for 4-wise independent signs
    [s]; rows are averaged and [reps] row-groups medianed, giving a
    [(1 ± eps)] estimate with [rows = O(1/eps^2)]. *)

type t

type params = {
  rows : int;  (** estimators averaged per group; error [~1/sqrt rows] *)
  reps : int;  (** groups medianed; failure probability [2^-Omega(reps)] *)
  hash_degree : int;  (** must be >= 4 for the variance bound *)
}

val default_params : params
(** [rows = 16], [reps = 5], [hash_degree = 4]. *)

val create : Ds_util.Prng.t -> dim:int -> params:params -> t
val update : t -> index:int -> delta:int -> unit

val estimate : t -> float
(** Estimated [||x||_2^2]. *)

val add : t -> t -> unit
val sub : t -> t -> unit
val copy : t -> t

val clone_zero : t -> t
(** A fresh zero sketch compatible with [t] (shared sign hashes). *)

val reset : t -> unit
val space_in_words : t -> int

val write : t -> Ds_util.Wire.sink -> unit
val read_into : t -> Ds_util.Wire.source -> unit
(** @raise Failure on mismatch or truncation. *)

module Linear : Linear_sketch.S with type t = t
