open Ds_util

type params = { rows : int; reps : int; hash_degree : int }

(* The reps x rows counters are one flat off-heap buffer (rep [r] row [j]
   at [r*rows + j]): merge is one plain-add kernel pass. *)
type t = {
  dim : int;
  prm : params;
  signs : Kwise.t array array; (* reps x rows *)
  counters : Words.t; (* reps x rows : sum_i s(i) x_i *)
}

let default_params = { rows = 16; reps = 5; hash_degree = 4 }

let create rng ~dim ~params:prm =
  if prm.rows < 1 || prm.reps < 1 then invalid_arg "Ams_f2.create: bad params";
  if prm.hash_degree < 4 then invalid_arg "Ams_f2.create: need 4-wise independence";
  {
    dim;
    prm;
    signs =
      Array.init prm.reps (fun r ->
          Array.init prm.rows (fun j ->
              Kwise.create
                (Prng.split_named rng (Printf.sprintf "s%d.%d" r j))
                ~k:prm.hash_degree));
    counters = Words.create (prm.reps * prm.rows);
  }

let sign h index = if Kwise.eval h index land 1 = 0 then 1 else -1
let[@inline] cell t r j = (r * t.prm.rows) + j

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "Ams_f2.update: index out of range";
  for r = 0 to t.prm.reps - 1 do
    for j = 0 to t.prm.rows - 1 do
      let i = cell t r j in
      Words.unsafe_set t.counters i
        (Words.unsafe_get t.counters i + (delta * sign t.signs.(r).(j) index))
    done
  done

let estimate t =
  let group r =
    let acc = ref 0.0 in
    for j = 0 to t.prm.rows - 1 do
      let c = float_of_int (Words.unsafe_get t.counters (cell t r j)) in
      acc := !acc +. (c *. c)
    done;
    !acc /. float_of_int t.prm.rows
  in
  Stats.median (Array.init t.prm.reps group)

let check_compatible t s =
  if t.dim <> s.dim || t.prm <> s.prm then invalid_arg "Ams_f2: incompatible sketches"

let add t s =
  check_compatible t s;
  Words.add t.counters s.counters

let sub t s =
  check_compatible t s;
  Words.sub t.counters s.counters

let copy t = { t with counters = Words.copy t.counters }
let clone_zero t = { t with counters = Words.create (Words.length t.counters) }
let reset t = Words.fill t.counters 0

let space_in_words t =
  (t.prm.reps * t.prm.rows)
  + Array.fold_left
      (fun acc row -> Array.fold_left (fun a h -> a + Kwise.space_in_words h) acc row)
      0 t.signs

let write t sink =
  Wire.write_tag sink "af2";
  Wire.write_int sink t.dim;
  for r = 0 to t.prm.reps - 1 do
    Words.write_wire_array sink t.counters ~pos:(r * t.prm.rows) ~len:t.prm.rows
  done

let read_into t src =
  Wire.expect_tag src "af2";
  if Wire.read_int src <> t.dim then failwith "Ams_f2.read_into: dimension mismatch";
  for r = 0 to t.prm.reps - 1 do
    Words.read_wire_array ~what:"Ams_f2.read_into" src t.counters ~pos:(r * t.prm.rows)
      ~len:t.prm.rows
  done

module Linear = struct
  type nonrec t = t

  let family = "ams_f2"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.rows; t.prm.reps; t.prm.hash_degree |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
