open Ds_util

type params = { sparsity : int; rows : int; hash_degree : int }

(* One off-heap buffer holds every level's cell grid back to back (level
   [j] at word offset [j * level_words]); the [sketches] array views it.
   Merging an L0 sampler is one triple-kernel pass over the buffer. *)
type t = {
  dim : int;
  prm : params;
  levels : int;
  level_hash : Kwise.t;
  tie_break : Kwise.t;
  words : Words.t;
  sketches : Sparse_recovery.t array;
}

let default_params = { sparsity = 2; rows = 3; hash_degree = 6 }
let state_words t = Words.length t.words

(* Re-home the level sketches into [words] (every level has the same
   grid shape, hence the same word footprint). *)
let embed_sketches sketches words =
  let lw = Sparse_recovery.state_words sketches.(0) in
  Array.mapi (fun j sk -> Sparse_recovery.clone_into sk ~words ~off:(j * lw)) sketches

let create rng ~dim ~params:prm =
  let levels = F0.levels_for dim in
  let sr_params =
    { Sparse_recovery.sparsity = prm.sparsity; rows = prm.rows; hash_degree = prm.hash_degree }
  in
  let sketches =
    Array.init levels (fun j ->
        Sparse_recovery.create
          (Prng.split_named rng (Printf.sprintf "lvl%d" j))
          ~dim ~params:sr_params)
  in
  let words = Words.create (levels * Sparse_recovery.state_words sketches.(0)) in
  {
    dim;
    prm;
    levels;
    level_hash = Kwise.create (Prng.split_named rng "levels") ~k:prm.hash_degree;
    tie_break = Kwise.create (Prng.split_named rng "tiebreak") ~k:prm.hash_degree;
    words;
    sketches = embed_sketches sketches words;
  }

let level_of t ~folded = min (Kwise.level_folded t.level_hash folded) (t.levels - 1)

let[@inline] level_of_pows t ~x ~x2 ~x4 =
  min (Kwise.level_pows t.level_hash ~x ~x2 ~x4) (t.levels - 1)

let[@inline] update_prepared_pows t ~index ~x ~x2 ~x4 ~level ~delta =
  for j = 0 to level do
    Sparse_recovery.update_pows (Array.unsafe_get t.sketches j) ~index ~x ~x2 ~x4 ~delta
  done

let update_prepared t ~index ~folded ~level ~delta =
  let x2 = Field.mul folded folded in
  let x4 = Field.mul x2 x2 in
  update_prepared_pows t ~index ~x:folded ~x2 ~x4 ~level ~delta

(* [t] gets +delta and [s] gets -delta of the same coordinate; both must be
   clones sharing hash structure (see Sparse_recovery.update_pows_pair). *)
let[@inline] update_prepared_pair_pows t s ~index ~x ~x2 ~x4 ~level ~delta =
  for j = 0 to level do
    Sparse_recovery.update_pows_pair
      (Array.unsafe_get t.sketches j)
      (Array.unsafe_get s.sketches j)
      ~index ~x ~x2 ~x4 ~delta
  done

let update_prepared_pair t s ~index ~folded ~level ~delta =
  let x2 = Field.mul folded folded in
  let x4 = Field.mul x2 x2 in
  update_prepared_pair_pows t s ~index ~x:folded ~x2 ~x4 ~level ~delta

let update_folded t ~index ~folded ~delta =
  let x2 = Field.mul folded folded in
  let x4 = Field.mul x2 x2 in
  update_prepared_pows t ~index ~x:folded ~x2 ~x4
    ~level:(level_of_pows t ~x:folded ~x2 ~x4) ~delta

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "L0_sampler.update: index out of range";
  update_folded t ~index ~folded:(Kwise.fold_key index) ~delta

let update_batch t updates =
  Array.iter (fun (index, delta) -> update t ~index ~delta) updates

let update_slice t updates ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length updates then
    invalid_arg "L0_sampler.update_slice: range out of bounds";
  for i = pos to pos + len - 1 do
    let index, delta = updates.(i) in
    update t ~index ~delta
  done

let pick_min_tiebreak t assoc =
  let best = ref None in
  List.iter
    (fun (i, w) ->
      let h = Kwise.eval t.tie_break i in
      match !best with
      | Some (h0, _, _) when h0 <= h -> ()
      | _ -> best := Some (h, i, w))
    assoc;
  match !best with None -> None | Some (_, i, w) -> Some (i, w)

(* Scan from the sparsest level down: levels are nested, so the first level
   (from the top) whose decoded support is non-empty holds a random small
   subsample of the full support. Reaching below level 0 means every level
   (including level 0 = the whole vector) decoded to the empty support, so
   the vector is zero whp. *)
let classify t =
  let rec go j =
    if j < 0 then `Empty
    else
      match Sparse_recovery.decode t.sketches.(j) with
      | Some [] -> go (j - 1)
      | Some assoc -> (
          match pick_min_tiebreak t assoc with
          | Some (i, w) -> `Sample (i, w)
          | None -> `Fail)
      | None -> (* support here already > sparsity: a denser level won't help *) `Fail
  in
  go (t.levels - 1)

let sample t =
  match classify t with `Sample (i, w) -> Some (i, w) | `Empty | `Fail -> None

let support_hint t =
  let rec go j =
    if j >= t.levels then t.dim
    else
      match Sparse_recovery.decode t.sketches.(j) with
      | Some assoc -> List.length assoc * (1 lsl j)
      | None -> go (j + 1)
  in
  go 0

let compatible t s =
  t.dim = s.dim && t.prm = s.prm
  && Array.for_all2 Sparse_recovery.compatible t.sketches s.sketches

let check_compatible t s =
  if not (compatible t s) then invalid_arg "L0_sampler: incompatible sketches"

(* One buffer-level triple merge covers every level's cell grid. *)
let add t s =
  check_compatible t s;
  Words.add_tri t.words s.words

let sub t s =
  check_compatible t s;
  Words.sub_tri t.words s.words

let copy t =
  let words = Words.copy t.words in
  { t with words; sketches = embed_sketches t.sketches words }

let clone_zero t =
  let words = Words.create (Words.length t.words) in
  { t with words; sketches = embed_sketches t.sketches words }

let clone_into t ~words ~off =
  let w = Words.view words ~pos:off ~len:(Words.length t.words) in
  { t with words = w; sketches = embed_sketches t.sketches w }

let reset t = Words.fill t.words 0

let space_in_words t =
  Kwise.space_in_words t.level_hash
  + Kwise.space_in_words t.tie_break
  + Array.fold_left (fun a sk -> a + Sparse_recovery.space_in_words sk) 0 t.sketches

let write t sink =
  Wire.write_tag sink "l0";
  Wire.write_int sink t.levels;
  Array.iter (fun sk -> Sparse_recovery.write sk sink) t.sketches

let read_into t src =
  Wire.expect_tag src "l0";
  if Wire.read_int src <> t.levels then failwith "L0_sampler.read_into: level mismatch";
  Array.iter (fun sk -> Sparse_recovery.read_into sk src) t.sketches

module Linear = struct
  type nonrec t = t

  let family = "l0_sampler"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.sparsity; t.prm.rows; t.prm.hash_degree; t.levels |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
