(** CountSketch [CCF02]: linear frequency estimation with median-of-rows
    decoding. The paper notes (after Theorem 8) that CountSketch can replace
    the [CM06] recovery matrix at better log factors; we provide it both for
    that ablation and as a general substrate. *)

type t

type params = {
  rows : int;  (** independent rows (median taken across them) *)
  cols : int;  (** buckets per row; estimation error is [||x||_2 / sqrt cols] *)
  hash_degree : int;
}

val default_params : params
(** [rows = 5], [cols = 256], [hash_degree = 6]. *)

val create : Ds_util.Prng.t -> dim:int -> params:params -> t

val create_over : Ds_util.Prng.t -> dim:int -> params:params -> table:Ds_util.Words.t -> t
(** {!create} over caller-provided storage (typically a {!Ds_util.Words.view}
    into a container's flat buffer): the sketch aliases [table] instead of
    allocating. This is how a bank of sketches (e.g. the single-pass
    sparsifier's level chain) lives in one contiguous allocation whose
    merge/zero/ship cost is one whole-buffer call.
    @raise Invalid_argument unless [Words.length table = rows * cols]. *)

val rebind : t -> table:Ds_util.Words.t -> t
(** The same sketch (shared hash functions, hence wire-compatible) over new
    storage — how a container's [clone_zero] re-attaches its level views to a
    fresh buffer. @raise Invalid_argument on a length mismatch. *)

val update : t -> index:int -> delta:int -> unit

val estimate : t -> int -> int
(** [estimate t i] is the median-of-rows estimate of coordinate [i]. *)

val heavy_hitters : t -> candidates:int list -> threshold:int -> (int * int) list
(** Candidates whose estimated magnitude is at least [threshold]. *)

val add : t -> t -> unit
val sub : t -> t -> unit
val copy : t -> t

val clone_zero : t -> t
(** A fresh zero sketch compatible with [t] (shared hash functions, zero
    table). *)

val reset : t -> unit
val space_in_words : t -> int

val write : t -> Ds_util.Wire.sink -> unit
(** Serialise the table counters (hashes are seed-derived, not shipped). *)

val read_into : t -> Ds_util.Wire.source -> unit
(** Overwrite [t]'s counters; [t] must share the writer's seed/shape.
    @raise Failure on mismatch or truncation. *)

module Linear : Linear_sketch.S with type t = t
