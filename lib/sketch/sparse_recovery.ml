open Ds_util

type params = { sparsity : int; rows : int; hash_degree : int }

(* The whole rows x cols cell grid lives in one off-heap Words buffer of
   One_sparse triples, in row-major cell order (cell (r,c) at word offset
   3*(r*cols + c)).  [cells] holds views into that buffer: the hot update
   path addresses cells through the precomputed views, while merge, reset
   and replica cloning operate on the buffer as a whole (one add_tri /
   fill / blit instead of rows*cols cell calls). *)
type t = {
  dim : int;
  prm : params;
  cols : int;
  hashes : Kwise.t array; (* one bucket hash per row *)
  words : Words.t;
  cells : One_sparse.t array array; (* rows x cols views into [words] *)
}

let default_params ~sparsity = { sparsity; rows = 4; hash_degree = 6 }

let state_words t = t.prm.rows * t.cols * One_sparse.state_words

let make_cells ~rows ~cols proto words =
  Array.init rows (fun r ->
      Array.init cols (fun c ->
          One_sparse.view proto ~words ~off:(One_sparse.state_words * ((r * cols) + c))))

let create rng ~dim ~params:prm =
  if prm.sparsity < 1 then invalid_arg "Sparse_recovery.create: sparsity < 1";
  if prm.rows < 1 then invalid_arg "Sparse_recovery.create: rows < 1";
  let cols = max 2 (2 * prm.sparsity) in
  let hashes =
    Array.init prm.rows (fun r ->
        Kwise.create (Prng.split_named rng (Printf.sprintf "row%d" r)) ~k:prm.hash_degree)
  in
  let cell_rng = Prng.split_named rng "cells" in
  (* All cells share one fingerprint base so that peeling can subtract a
     recovered coordinate from any row; viewing every cell off one
     prototype also shares the fingerprint power ladder physically. *)
  let proto_cell = One_sparse.create (Prng.copy cell_rng) ~dim in
  let words = Words.create (prm.rows * cols * One_sparse.state_words) in
  let cells = make_cells ~rows:prm.rows ~cols proto_cell words in
  { dim; prm; cols; hashes; words; cells }

(* Unit deltas (edge insert/delete) skip the fingerprint multiply:
   [scale_int 1 x = x] and [scale_int (-1) x = neg x] exactly. *)
let[@inline] fingerprint_term t ~index ~delta =
  let pw = One_sparse.fingerprint_pow t.cells.(0).(0) index in
  if delta = 1 then pw
  else if delta = -1 then Field.neg pw
  else Field.scale_int delta pw

(* Hot path: the key is folded once, its square/fourth power and the
   fingerprint term computed once (all cells share one base), leaving one
   polynomial evaluation per row. *)
let[@inline] update_pows t ~index ~x ~x2 ~x4 ~delta =
  let term = fingerprint_term t ~index ~delta in
  for r = 0 to t.prm.rows - 1 do
    let c = Kwise.to_range_pows (Array.unsafe_get t.hashes r) ~x ~x2 ~x4 ~bound:t.cols in
    One_sparse.update_prepared
      (Array.unsafe_get (Array.unsafe_get t.cells r) c)
      ~index ~delta ~term
  done

let[@inline] update_folded t ~index ~folded ~delta =
  let x2 = Field.mul folded folded in
  let x4 = Field.mul x2 x2 in
  update_pows t ~index ~x:folded ~x2 ~x4 ~delta

(* Paired hot path for edge updates: [t] and [s] must be clones sharing hash
   functions and fingerprint base (the two endpoints' sketches within one
   Agm copy). The coordinate lands in the same bucket of both, with +delta
   in [t] and -delta in [s], so buckets and the fingerprint term are
   computed once and applied twice. *)
let[@inline] update_pows_pair t s ~index ~x ~x2 ~x4 ~delta =
  let term = fingerprint_term t ~index ~delta in
  let nterm = Field.neg term in
  let ndelta = -delta in
  for r = 0 to t.prm.rows - 1 do
    let c = Kwise.to_range_pows (Array.unsafe_get t.hashes r) ~x ~x2 ~x4 ~bound:t.cols in
    One_sparse.update_prepared
      (Array.unsafe_get (Array.unsafe_get t.cells r) c)
      ~index ~delta ~term;
    One_sparse.update_prepared
      (Array.unsafe_get (Array.unsafe_get s.cells r) c)
      ~index ~delta:ndelta ~term:nterm
  done

let[@inline] update_folded_pair t s ~index ~folded ~delta =
  let x2 = Field.mul folded folded in
  let x4 = Field.mul x2 x2 in
  update_pows_pair t s ~index ~x:folded ~x2 ~x4 ~delta

let update t ~index ~delta =
  if index < 0 || index >= t.dim then
    invalid_arg "Sparse_recovery.update: index out of range";
  update_folded t ~index ~folded:(Kwise.fold_key index) ~delta

let update_batch t updates =
  Array.iter (fun (index, delta) -> update t ~index ~delta) updates

let update_slice t updates ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length updates then
    invalid_arg "Sparse_recovery.update_slice: range out of bounds";
  for i = pos to pos + len - 1 do
    let index, delta = updates.(i) in
    update t ~index ~delta
  done

let is_zero t =
  let n = Words.length t.words in
  let rec go i = i >= n || (Words.unsafe_get t.words i = 0 && go (i + 1)) in
  go 0

(* A snapshot copies the buffer once and views the copy — rows*cols cells,
   one allocation (peeling mutates the snapshot, never the sketch). *)
let snapshot t =
  let words = Words.copy t.words in
  make_cells ~rows:t.prm.rows ~cols:t.cols t.cells.(0).(0) words

(* Peel [work] in place; feed every recovered coordinate to [emit] and return
   true iff the residual cleared completely. [stop_early] aborts after the
   first recovery (for decode_any). *)
let peel t work ~stop_early ~emit =
  let progress = ref true in
  let recovered = ref 0 in
  let finished = ref false in
  while !progress && not !finished do
    progress := false;
    for r = 0 to t.prm.rows - 1 do
      if not !finished then
        for c = 0 to t.cols - 1 do
          if not !finished then
            match One_sparse.decode work.(r).(c) with
            | One (i, w) when Kwise.to_range t.hashes.(r) i ~bound:t.cols = c ->
                emit (i, w);
                incr recovered;
                for r' = 0 to t.prm.rows - 1 do
                  let c' = Kwise.to_range t.hashes.(r') i ~bound:t.cols in
                  One_sparse.update work.(r').(c') ~index:i ~delta:(-w)
                done;
                progress := true;
                if stop_early then finished := true
            | Zero | One _ | Many -> ()
        done
    done
  done;
  Array.for_all (fun row -> Array.for_all One_sparse.is_zero row) work

let decode t =
  let work = snapshot t in
  let acc = ref [] in
  let cleared = peel t work ~stop_early:false ~emit:(fun kv -> acc := kv :: !acc) in
  if cleared then Some !acc else None

let decode_any t =
  let work = snapshot t in
  let found = ref None in
  let _cleared = peel t work ~stop_early:true ~emit:(fun kv -> found := Some kv) in
  !found

let compatible t s =
  t.dim = s.dim && t.prm = s.prm && t.cols = s.cols
  && One_sparse.compatible t.cells.(0).(0) s.cells.(0).(0)

let check_compatible t s =
  if not (compatible t s) then invalid_arg "Sparse_recovery: incompatible sketches"

(* Merge is one triple-kernel pass over the whole grid: c0/c1 of every
   cell add as plain integers, c2 in the Mersenne field — bit-identical
   to the per-cell One_sparse loops this replaces. *)
let add t s =
  check_compatible t s;
  Words.add_tri t.words s.words

let sub t s =
  check_compatible t s;
  Words.sub_tri t.words s.words

let copy t =
  let words = Words.copy t.words in
  { t with words; cells = make_cells ~rows:t.prm.rows ~cols:t.cols t.cells.(0).(0) words }

let clone_zero t =
  let words = Words.create (Words.length t.words) in
  { t with words; cells = make_cells ~rows:t.prm.rows ~cols:t.cols t.cells.(0).(0) words }

(* Containers embed a clone inside their own allocation: the clone's
   buffer is a view of [words] at [off], so the parent can merge / zero /
   blit every embedded sketch with one buffer-level call. *)
let clone_into t ~words ~off =
  let w = Words.view words ~pos:off ~len:(Words.length t.words) in
  { t with words = w; cells = make_cells ~rows:t.prm.rows ~cols:t.cols t.cells.(0).(0) w }

let reset t = Words.fill t.words 0

let merge_many = function
  | [] -> invalid_arg "Sparse_recovery.merge_many: empty list"
  | first :: rest ->
      let acc = copy first in
      List.iter (fun s -> add acc s) rest;
      acc

let space_in_words t =
  let cell_words = 4 in
  let hash_words = Array.fold_left (fun acc h -> acc + Kwise.space_in_words h) 0 t.hashes in
  (t.prm.rows * t.cols * cell_words) + hash_words

let dim t = t.dim
let params t = t.prm

(* Cells are framed as (zero-run skip, counters) pairs: sketches of sparse
   shards are overwhelmingly zero cells, and a zero run costs one byte. The
   reader knows the total cell count, so no end marker is needed.  The scan
   is one pass over the contiguous buffer (a cell is zero iff its three
   words are). *)
let write t sink =
  Wire.write_tag sink "srec";
  Wire.write_int sink t.dim;
  Wire.write_int sink t.prm.rows;
  Wire.write_int sink t.cols;
  let w = t.words in
  let total = t.prm.rows * t.cols in
  let zero_cell i =
    let o = 3 * i in
    Words.unsafe_get w o = 0 && Words.unsafe_get w (o + 1) = 0 && Words.unsafe_get w (o + 2) = 0
  in
  let pos = ref 0 in
  while !pos < total do
    let start = !pos in
    while !pos < total && zero_cell !pos do
      incr pos
    done;
    Wire.write_int sink (!pos - start);
    if !pos < total then begin
      let o = 3 * !pos in
      Wire.write_int sink (Words.unsafe_get w o);
      Wire.write_int sink (Words.unsafe_get w (o + 1));
      Wire.write_int sink (Words.unsafe_get w (o + 2));
      incr pos
    end
  done;
  (* A trailing zero run ends exactly at [total]; if the last cell was
     non-zero the loop exits without a final skip, which the reader's
     position arithmetic handles. *)
  ()

let read_into t src =
  Wire.expect_tag src "srec";
  if Wire.read_int src <> t.dim then failwith "Sparse_recovery.read_into: dimension mismatch";
  if Wire.read_int src <> t.prm.rows || Wire.read_int src <> t.cols then
    failwith "Sparse_recovery.read_into: shape mismatch";
  let w = t.words in
  let total = t.prm.rows * t.cols in
  let pos = ref 0 in
  while !pos < total do
    let skip = Wire.read_int src in
    if skip < 0 || !pos + skip > total then failwith "Sparse_recovery.read_into: bad zero run";
    if skip > 0 then Words.fill_range w ~pos:(3 * !pos) ~len:(3 * skip) 0;
    pos := !pos + skip;
    if !pos < total then begin
      let o = 3 * !pos in
      Words.unsafe_set w o (Wire.read_int src);
      Words.unsafe_set w (o + 1) (Wire.read_int src);
      Words.unsafe_set w (o + 2) (Wire.read_int src);
      incr pos
    end
  done

module Linear = struct
  type nonrec t = t

  let family = "sparse_recovery"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.sparsity; t.prm.rows; t.prm.hash_degree; t.cols |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
