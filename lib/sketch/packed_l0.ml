open Ds_util

type params = { reps : int; sparsity : int; hash_degree : int }

type config = {
  dim : int;
  prm : params;
  levels : int;
  buckets : int;
  base : int; (* fingerprint base, raw-integer accumulated *)
  level_hashes : Kwise.t array; (* one per rep *)
  bucket_hashes : Kwise.t array array; (* reps x 2 rows *)
  tie_break : Kwise.t;
}

let default_params = { reps = 2; sparsity = 3; hash_degree = 6 }
let rows = 2

let make_config rng ~dim ~params:prm =
  if dim <= 0 then invalid_arg "Packed_l0.make_config: dim must be positive";
  let levels = F0.levels_for dim in
  {
    dim;
    prm;
    levels;
    buckets = max 2 (2 * prm.sparsity);
    base = 2 + Prng.int rng (Field.p - 2);
    level_hashes =
      Array.init prm.reps (fun r ->
          Kwise.create (Prng.split_named rng (Printf.sprintf "lvl%d" r)) ~k:prm.hash_degree);
    bucket_hashes =
      Array.init prm.reps (fun r ->
          Array.init rows (fun q ->
              Kwise.create
                (Prng.split_named rng (Printf.sprintf "bkt%d.%d" r q))
                ~k:prm.hash_degree));
    tie_break = Kwise.create (Prng.split_named rng "tiebreak") ~k:prm.hash_degree;
  }

let triple_words = 3
let level_words c = rows * c.buckets * triple_words
let rep_words c = c.levels * level_words c
let state_len c = c.prm.reps * rep_words c

let cell_off c ~rep ~level ~row ~bucket =
  (rep * rep_words c) + (level * level_words c) + (((row * c.buckets) + bucket) * triple_words)

let update c (state : Words.t) ~off ~index ~delta =
  if index < 0 || index >= c.dim then invalid_arg "Packed_l0.update: index out of range";
  let fp = delta * Field.pow c.base (index + 1) in
  for rep = 0 to c.prm.reps - 1 do
    let lvl = min (Kwise.level c.level_hashes.(rep) index) (c.levels - 1) in
    for level = 0 to lvl do
      for row = 0 to rows - 1 do
        let bucket = Kwise.to_range c.bucket_hashes.(rep).(row) index ~bound:c.buckets in
        let o = off + cell_off c ~rep ~level ~row ~bucket in
        Words.unsafe_set state o (Words.unsafe_get state o + delta);
        Words.unsafe_set state (o + 1) (Words.unsafe_get state (o + 1) + (delta * index));
        Words.unsafe_set state (o + 2) (Words.unsafe_get state (o + 2) + fp)
      done
    done
  done

(* Decode one (rep, level) grid by peeling, on a scratch copy (an ordinary
   int array — decode is a cold path and the grid is small). Returns
   [Some assoc] iff the grid clears. *)
let decode_level c (state : Words.t) ~off ~rep ~level =
  let grid_off = off + cell_off c ~rep ~level ~row:0 ~bucket:0 in
  let scratch = Words.sub_array state ~pos:grid_off ~len:(level_words c) in
  let cell row bucket = (((row * c.buckets) + bucket) * triple_words) in
  let decode_cell o =
    let c0 = scratch.(o) and c1 = scratch.(o + 1) and c2 = scratch.(o + 2) in
    if c0 = 0 && c1 = 0 && Field.of_int c2 = 0 then `Zero
    else if c0 = 0 then `Many
    else if c1 mod c0 <> 0 then `Many
    else begin
      let i = c1 / c0 in
      if i < 0 || i >= c.dim then `Many
      else if Field.of_int (c0 * Field.pow c.base (i + 1)) = Field.of_int c2 then `One (i, c0)
      else `Many
    end
  in
  let acc = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    for row = 0 to rows - 1 do
      for bucket = 0 to c.buckets - 1 do
        match decode_cell (cell row bucket) with
        | `One (i, w)
          when Kwise.to_range c.bucket_hashes.(rep).(row) i ~bound:c.buckets = bucket ->
            acc := (i, w) :: !acc;
            let fp = w * Field.pow c.base (i + 1) in
            for row' = 0 to rows - 1 do
              let b' = Kwise.to_range c.bucket_hashes.(rep).(row') i ~bound:c.buckets in
              let o = cell row' b' in
              scratch.(o) <- scratch.(o) - w;
              scratch.(o + 1) <- scratch.(o + 1) - (w * i);
              scratch.(o + 2) <- scratch.(o + 2) - fp
            done;
            progress := true
        | `Zero | `One _ | `Many -> ()
      done
    done
  done;
  let cleared = ref true in
  for o = 0 to level_words c - 1 do
    if o mod triple_words = 2 then begin
      if Field.of_int scratch.(o) <> 0 then cleared := false
    end
    else if scratch.(o) <> 0 then cleared := false
  done;
  if !cleared then Some !acc else None

let pick_min_tiebreak c assoc =
  let best = ref None in
  List.iter
    (fun (i, w) ->
      let h = Kwise.eval c.tie_break i in
      match !best with
      | Some (h0, _, _) when h0 <= h -> ()
      | _ -> best := Some (h, i, w))
    assoc;
  match !best with None -> None | Some (_, i, w) -> Some (i, w)

let decode c state ~off =
  let rec per_rep rep =
    if rep >= c.prm.reps then None
    else begin
      let rec per_level level =
        if level < 0 then None
        else
          match decode_level c state ~off ~rep ~level with
          | Some [] -> per_level (level - 1)
          | Some assoc -> pick_min_tiebreak c assoc
          | None -> None
      in
      match per_level (c.levels - 1) with
      | Some _ as r -> r
      | None -> per_rep (rep + 1)
    end
  in
  per_rep 0

let dim c = c.dim

let config_space_in_words c =
  Kwise.space_in_words c.tie_break
  + Array.fold_left (fun a h -> a + Kwise.space_in_words h) 0 c.level_hashes
  + Array.fold_left
      (fun a row -> a + Array.fold_left (fun b h -> b + Kwise.space_in_words h) 0 row)
      0 c.bucket_hashes

(* The codec bundled with one state buffer of its own: the packed sampler as
   a first-class sketch rather than a payload format. Sketch_table cells
   keep using the external-state API; this form is what the linear-sketch
   interface (and the cluster simulator) registers. *)
module Owned = struct
  type t = { config : config; state : Words.t }

  let create rng ~dim ~params =
    let config = make_config rng ~dim ~params in
    { config; state = Words.create (state_len config) }

  let config t = t.config
  let update t ~index ~delta = update t.config t.state ~off:0 ~index ~delta
  let sample t = decode t.config t.state ~off:0
  let clone_zero t = { t with state = Words.create (Words.length t.state) }
  let copy t = { t with state = Words.copy t.state }
  let reset t = Words.fill t.state 0

  let check_compatible t s =
    if
      t.config.dim <> s.config.dim || t.config.prm <> s.config.prm
      || t.config.base <> s.config.base
    then invalid_arg "Packed_l0.Owned: incompatible sketches"

  (* Everything in the state — fingerprints included — is a raw integer
     accumulator, so merge is the plain-add kernel. *)
  let add t s =
    check_compatible t s;
    Words.add t.state s.state

  let sub t s =
    check_compatible t s;
    Words.sub t.state s.state

  let space_in_words t = Words.length t.state + config_space_in_words t.config

  let write t sink =
    Wire.write_tag sink "pl0";
    Wire.write_int sink t.config.dim;
    Words.write_wire_array sink t.state ~pos:0 ~len:(Words.length t.state)

  let read_into t src =
    Wire.expect_tag src "pl0";
    if Wire.read_int src <> t.config.dim then failwith "Packed_l0.read_into: dimension mismatch";
    Words.read_wire_array ~what:"Packed_l0.read_into" src t.state ~pos:0
      ~len:(Words.length t.state)
end

module Linear = struct
  type t = Owned.t

  let family = "packed_l0"
  let dim (t : t) = t.Owned.config.dim

  let shape (t : t) =
    let c = t.Owned.config in
    [| c.dim; c.prm.reps; c.prm.sparsity; c.prm.hash_degree; c.levels; c.buckets |]

  let clone_zero = Owned.clone_zero
  let add = Owned.add
  let sub = Owned.sub
  let update = Owned.update
  let reset = Owned.reset
  let space_in_words = Owned.space_in_words
  let write_body = Owned.write
  let read_body = Owned.read_into
end
