open Ds_util

type params = { sparsity : int; reps : int; hash_degree : int }

type rep = {
  level_hash : Kwise.t;
  sketches : Sparse_recovery.t array; (* one per level *)
}

type t = { dim : int; prm : params; levels : int; instances : rep array }

let default_params = { sparsity = 8; reps = 3; hash_degree = 6 }

let levels_for dim =
  let rec go l acc = if acc >= dim then l + 1 else go (l + 1) (acc * 2) in
  go 0 1

let create rng ~dim ~params:prm =
  if prm.reps < 1 then invalid_arg "F0.create: reps < 1";
  let levels = levels_for dim in
  let sr_params =
    { Sparse_recovery.sparsity = prm.sparsity; rows = 3; hash_degree = prm.hash_degree }
  in
  let make_rep i =
    let r = Prng.split_named rng (Printf.sprintf "f0rep%d" i) in
    let level_hash = Kwise.create (Prng.split_named r "levels") ~k:prm.hash_degree in
    let sketches =
      Array.init levels (fun j ->
          Sparse_recovery.create
            (Prng.split_named r (Printf.sprintf "lvl%d" j))
            ~dim ~params:sr_params)
    in
    { level_hash; sketches }
  in
  { dim; prm; levels; instances = Array.init prm.reps make_rep }

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "F0.update: index out of range";
  let folded = Kwise.fold_key index in
  Array.iter
    (fun rep ->
      let lvl = min (Kwise.level_folded rep.level_hash folded) (t.levels - 1) in
      for j = 0 to lvl do
        Sparse_recovery.update_folded rep.sketches.(j) ~index ~folded ~delta
      done)
    t.instances

let estimate_rep t rep =
  let rec go j =
    if j >= t.levels then t.dim (* nothing decoded: support is essentially full *)
    else
      match Sparse_recovery.decode rep.sketches.(j) with
      | Some assoc -> List.length assoc * (1 lsl j)
      | None -> go (j + 1)
  in
  go 0

let estimate t =
  let es = Array.map (fun r -> float_of_int (estimate_rep t r)) t.instances in
  int_of_float (Stats.median es)

let iter2 t s f =
  if t.dim <> s.dim || t.prm <> s.prm then invalid_arg "F0: incompatible sketches";
  Array.iteri
    (fun i rep -> Array.iteri (fun j sk -> f sk s.instances.(i).sketches.(j)) rep.sketches)
    t.instances

let add t s = iter2 t s Sparse_recovery.add
let sub t s = iter2 t s Sparse_recovery.sub

let copy t =
  {
    t with
    instances =
      Array.map
        (fun r -> { r with sketches = Array.map Sparse_recovery.copy r.sketches })
        t.instances;
  }

let clone_zero t =
  {
    t with
    instances =
      Array.map
        (fun r -> { r with sketches = Array.map Sparse_recovery.clone_zero r.sketches })
        t.instances;
  }

let reset t =
  Array.iter (fun r -> Array.iter Sparse_recovery.reset r.sketches) t.instances

let space_in_words t =
  Array.fold_left
    (fun acc r ->
      acc + Kwise.space_in_words r.level_hash
      + Array.fold_left (fun a sk -> a + Sparse_recovery.space_in_words sk) 0 r.sketches)
    0 t.instances

let write t sink =
  Wire.write_tag sink "f0";
  Wire.write_int sink t.levels;
  Array.iter (fun r -> Array.iter (fun sk -> Sparse_recovery.write sk sink) r.sketches) t.instances

let read_into t src =
  Wire.expect_tag src "f0";
  if Wire.read_int src <> t.levels then failwith "F0.read_into: level mismatch";
  Array.iter
    (fun r -> Array.iter (fun sk -> Sparse_recovery.read_into sk src) r.sketches)
    t.instances

module Linear = struct
  type nonrec t = t

  let family = "f0"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.sparsity; t.prm.reps; t.prm.hash_degree; t.levels |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
