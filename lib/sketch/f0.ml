open Ds_util

type params = { sparsity : int; reps : int; hash_degree : int }

type rep = {
  level_hash : Kwise.t;
  sketches : Sparse_recovery.t array; (* one per level *)
}

(* All reps x levels cell grids live back to back in one off-heap buffer
   (rep [i] level [j] at word offset [(i*levels + j) * level_words]);
   the rep sketches are views into it, and merge is one kernel pass. *)
type t = { dim : int; prm : params; levels : int; words : Words.t; instances : rep array }

let default_params = { sparsity = 8; reps = 3; hash_degree = 6 }

let levels_for dim =
  let rec go l acc = if acc >= dim then l + 1 else go (l + 1) (acc * 2) in
  go 0 1

let embed_instances ~levels instances words =
  let lw = Sparse_recovery.state_words instances.(0).sketches.(0) in
  Array.mapi
    (fun i r ->
      {
        r with
        sketches =
          Array.mapi
            (fun j sk -> Sparse_recovery.clone_into sk ~words ~off:(((i * levels) + j) * lw))
            r.sketches;
      })
    instances

let create rng ~dim ~params:prm =
  if prm.reps < 1 then invalid_arg "F0.create: reps < 1";
  let levels = levels_for dim in
  let sr_params =
    { Sparse_recovery.sparsity = prm.sparsity; rows = 3; hash_degree = prm.hash_degree }
  in
  let make_rep i =
    let r = Prng.split_named rng (Printf.sprintf "f0rep%d" i) in
    let level_hash = Kwise.create (Prng.split_named r "levels") ~k:prm.hash_degree in
    let sketches =
      Array.init levels (fun j ->
          Sparse_recovery.create
            (Prng.split_named r (Printf.sprintf "lvl%d" j))
            ~dim ~params:sr_params)
    in
    { level_hash; sketches }
  in
  let instances = Array.init prm.reps make_rep in
  let words =
    Words.create (prm.reps * levels * Sparse_recovery.state_words instances.(0).sketches.(0))
  in
  { dim; prm; levels; words; instances = embed_instances ~levels instances words }

let update t ~index ~delta =
  if index < 0 || index >= t.dim then invalid_arg "F0.update: index out of range";
  let folded = Kwise.fold_key index in
  Array.iter
    (fun rep ->
      let lvl = min (Kwise.level_folded rep.level_hash folded) (t.levels - 1) in
      for j = 0 to lvl do
        Sparse_recovery.update_folded rep.sketches.(j) ~index ~folded ~delta
      done)
    t.instances

let estimate_rep t rep =
  let rec go j =
    if j >= t.levels then t.dim (* nothing decoded: support is essentially full *)
    else
      match Sparse_recovery.decode rep.sketches.(j) with
      | Some assoc -> List.length assoc * (1 lsl j)
      | None -> go (j + 1)
  in
  go 0

let estimate t =
  let es = Array.map (fun r -> float_of_int (estimate_rep t r)) t.instances in
  int_of_float (Stats.median es)

let check_compatible t s =
  if
    t.dim <> s.dim || t.prm <> s.prm
    || not
         (Array.for_all2
            (fun a b -> Array.for_all2 Sparse_recovery.compatible a.sketches b.sketches)
            t.instances s.instances)
  then invalid_arg "F0: incompatible sketches"

let add t s =
  check_compatible t s;
  Words.add_tri t.words s.words

let sub t s =
  check_compatible t s;
  Words.sub_tri t.words s.words

let copy t =
  let words = Words.copy t.words in
  { t with words; instances = embed_instances ~levels:t.levels t.instances words }

let clone_zero t =
  let words = Words.create (Words.length t.words) in
  { t with words; instances = embed_instances ~levels:t.levels t.instances words }

let reset t = Words.fill t.words 0

let space_in_words t =
  Array.fold_left
    (fun acc r ->
      acc + Kwise.space_in_words r.level_hash
      + Array.fold_left (fun a sk -> a + Sparse_recovery.space_in_words sk) 0 r.sketches)
    0 t.instances

let write t sink =
  Wire.write_tag sink "f0";
  Wire.write_int sink t.levels;
  Array.iter (fun r -> Array.iter (fun sk -> Sparse_recovery.write sk sink) r.sketches) t.instances

let read_into t src =
  Wire.expect_tag src "f0";
  if Wire.read_int src <> t.levels then failwith "F0.read_into: level mismatch";
  Array.iter
    (fun r -> Array.iter (fun sk -> Sparse_recovery.read_into sk src) r.sketches)
    t.instances

module Linear = struct
  type nonrec t = t

  let family = "f0"
  let dim t = t.dim
  let shape t = [| t.dim; t.prm.sparsity; t.prm.reps; t.prm.hash_degree; t.levels |]
  let clone_zero = clone_zero
  let add = add
  let sub = sub
  let update = update
  let reset = reset
  let space_in_words = space_in_words
  let write_body = write
  let read_body = read_into
end
