(** Effective resistances (Section 2): the potential difference across
    [{u, v}] when a unit current is injected at [u] and extracted at [v],
    with every edge [e] a conductor of conductance [w_e]. Computed by
    conjugate gradients, [R_uv = (e_u - e_v)^T L^+ (e_u - e_v)]. These are
    the sampling probabilities of the [SS08] baseline (Theorem 7) and the
    quantity the KP12 robust connectivities approximate. *)

val effective : Ds_graph.Weighted_graph.t -> int -> int -> float
(** @raise Invalid_argument on a self-pair. Returns [infinity] when [u] and
    [v] are in different components. *)

val all_edges : Ds_graph.Weighted_graph.t -> (int * int * float * float) list
(** [(u, v, w_e, R_e)] for every edge. One CG solve per edge. *)

val total : Ds_graph.Weighted_graph.t -> float
(** [sum_e w_e R_e]; equals [n - #components] exactly (Foster's theorem) —
    used as a self-check in tests. *)

val jl_estimator :
  Ds_util.Prng.t ->
  Ds_graph.Weighted_graph.t ->
  shift:float ->
  reps:int ->
  ?tol:float ->
  unit ->
  int -> int -> float
(** [jl_estimator rng g ~shift ~reps ()] returns a function estimating the
    effective resistance of any vertex pair w.r.t. the {e regularized}
    Laplacian [K = L_g + shift * I] (Spielman–Srivastava JL sketching:
    project the factorization [K = M^T M] onto [reps] Gaussian directions,
    one {!Cg.solve_shifted} per direction up front, O(reps) per queried
    pair). Relative error concentrates like [1/sqrt reps]. Works on
    disconnected [g] — the shift keeps [K] positive definite — which is what
    the single-pass sparsifier chain needs when its early sparsifiers are
    still fragments. @raise Invalid_argument on [reps < 1]; {!Cg.solve_shifted}
    raises on [shift <= 0]. *)
