open Ds_graph

let effective g u v =
  if u = v then invalid_arg "Resistance.effective: self-pair";
  let n = Weighted_graph.n g in
  if not (Components.same_component (Weighted_graph.unweighted g) u v) then infinity
  else begin
    let b = Array.make n 0.0 in
    b.(u) <- 1.0;
    b.(v) <- -1.0;
    let { Cg.x; _ } = Cg.solve g ~b ~tol:1e-10 () in
    x.(u) -. x.(v)
  end

let all_edges g =
  List.map (fun (u, v, w) -> (u, v, w, effective g u v)) (Weighted_graph.edges g)

let total g =
  List.fold_left (fun acc (_, _, w, r) -> acc +. (w *. r)) 0.0 (all_edges g)

let jl_estimator rng g ~shift ~reps ?(tol = 1e-8) () =
  if reps < 1 then invalid_arg "Resistance.jl_estimator: reps must be positive";
  let n = Weighted_graph.n g in
  (* R_uv w.r.t. K = L + shift I is ||M K^-1 (e_u - e_v)||^2 for the
     factorization K = M^T M, M = [W^{1/2} B; sqrt(shift) I]. Project M onto
     [reps] Gaussian directions: one edge-indexed Gaussian per probe for the
     incidence block, one vertex-indexed Gaussian for the sqrt(shift) I
     block, then a single shifted-CG solve per probe. After the solves,
     every pair costs O(reps) — which is what lets the sparsifier's decode
     loop scan all candidate pairs. *)
  let z =
    Array.init reps (fun _ ->
        let y = Array.make n 0.0 in
        Weighted_graph.iter_edges g (fun u v w ->
            let g_e = Ds_util.Prng.gaussian rng *. sqrt w in
            y.(u) <- y.(u) +. g_e;
            y.(v) <- y.(v) -. g_e);
        let sq = sqrt shift in
        for i = 0 to n - 1 do
          y.(i) <- y.(i) +. (sq *. Ds_util.Prng.gaussian rng)
        done;
        (Cg.solve_shifted g ~shift ~b:y ~tol ()).Cg.x)
  in
  let inv_reps = 1.0 /. float_of_int reps in
  fun u v ->
    let acc = ref 0.0 in
    for j = 0 to reps - 1 do
      let d = z.(j).(u) -. z.(j).(v) in
      acc := !acc +. (d *. d)
    done;
    !acc *. inv_reps
