type result = { x : float array; iterations : int; residual : float }

let solve_shifted g ~shift ~b ?(tol = 1e-9) ?(max_iter = 0) () =
  let n = Ds_graph.Weighted_graph.n g in
  if Array.length b <> n then invalid_arg "Cg.solve_shifted: size mismatch";
  if shift <= 0.0 then invalid_arg "Cg.solve_shifted: shift must be positive";
  let max_iter = if max_iter = 0 then 20 * n else max_iter in
  (* [L + shift I] is positive definite (no kernel, connected or not), so
     this is textbook CG: no ones-projection anywhere. *)
  let apply v =
    let lv = Laplacian.apply g v in
    for i = 0 to n - 1 do
      lv.(i) <- lv.(i) +. (shift *. v.(i))
    done;
    lv
  in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy r in
  let rs = ref (Vec.dot r r) in
  let bnorm = max (sqrt !rs) 1e-30 in
  let iters = ref 0 in
  while sqrt !rs /. bnorm > tol && !iters < max_iter do
    incr iters;
    let kp = apply p in
    let alpha = !rs /. Vec.dot p kp in
    Vec.axpy alpha p x;
    Vec.axpy (-.alpha) kp r;
    let rs' = Vec.dot r r in
    let beta = rs' /. !rs in
    for i = 0 to n - 1 do
      p.(i) <- r.(i) +. (beta *. p.(i))
    done;
    rs := rs'
  done;
  let residual = Vec.norm (Vec.sub (apply x) b) /. bnorm in
  { x; iterations = !iters; residual }

let solve g ~b ?(tol = 1e-9) ?(max_iter = 0) () =
  let n = Ds_graph.Weighted_graph.n g in
  if Array.length b <> n then invalid_arg "Cg.solve: size mismatch";
  let max_iter = if max_iter = 0 then 20 * n else max_iter in
  let b = Array.copy b in
  Vec.project_off_ones b;
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy r in
  let rs = ref (Vec.dot r r) in
  let bnorm = max (sqrt !rs) 1e-30 in
  let iters = ref 0 in
  while sqrt !rs /. bnorm > tol && !iters < max_iter do
    incr iters;
    let lp = Laplacian.apply g p in
    let denom = Vec.dot p lp in
    if denom <= 0.0 then
      (* Hit the kernel (disconnected graph or numerical trouble): stop. *)
      rs := 0.0
    else begin
      let alpha = !rs /. denom in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) lp r;
      (* CG drifts into the kernel over many iterations; re-project. *)
      Vec.project_off_ones r;
      let rs' = Vec.dot r r in
      let beta = rs' /. !rs in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done;
      rs := rs'
    end
  done;
  Vec.project_off_ones x;
  let residual = Vec.norm (Vec.sub (Laplacian.apply g x) b) /. bnorm in
  { x; iterations = !iters; residual }
