(** Conjugate gradients for Laplacian systems. Solves [L x = b] on the
    subspace orthogonal to the all-ones vector (the solvable subspace of a
    connected graph's Laplacian); this is how effective resistances are
    computed without densifying. *)

type result = { x : float array; iterations : int; residual : float }

val solve :
  Ds_graph.Weighted_graph.t -> b:float array -> ?tol:float -> ?max_iter:int -> unit -> result
(** [b] is projected off the ones vector first. @raise Invalid_argument when
    [b]'s length differs from the vertex count. The solution is the
    minimum-norm one (mean zero). *)

val solve_shifted :
  Ds_graph.Weighted_graph.t ->
  shift:float ->
  b:float array ->
  ?tol:float ->
  ?max_iter:int ->
  unit ->
  result
(** Solve the regularized system [(L + shift * I) x = b], [shift > 0]. The
    matrix is positive definite for every graph — including disconnected
    ones — so no kernel projection is involved; this is the solver behind
    the single-pass sparsifier's chain of regularized Laplacians [K(gamma) =
    L + gamma I] (KLMMS, arXiv 1407.1289). @raise Invalid_argument on a size
    mismatch or non-positive shift. *)
