(* Monitoring a dynamic network from sketches only: the [AGM12a] toolkit the
   paper builds on, all answered from one pass of linear sketches while
   links come and go.

   - is the network still 2-edge-connected (no single point of failure)?
   - what does a cheapest backbone (approximate MST) cost?
   - did the topology stay bipartite (e.g. host/switch layers)?

       dune exec examples/network_monitoring.exe *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

let () =
  let n = 120 in
  let rng = Prng.create 31 in

  (* The network: a ring backbone (2-edge-connected) plus random shortcuts,
     with link weights = latencies. *)
  let ring = Gen.cycle n in
  let shortcuts =
    Graph.subgraph
      (Gen.gnm (Prng.split rng) ~n ~m:80)
      ~keep:(fun u v -> not (Graph.mem_edge ring u v))
  in
  let net = Graph.union ring shortcuts in
  let latency = Hashtbl.create 256 in
  Graph.iter_edges net (fun u v ->
      Hashtbl.replace latency (u, v) (1.0 +. Prng.float (Prng.copy rng) 30.0));
  Fmt.pr "network: %d nodes, %d links@." n (Graph.num_edges net);

  (* One pass: three sketch families fed by the same update stream. *)
  let kconn =
    K_connectivity.create (Prng.split rng) ~n ~k:2 ~params:(Agm_sketch.default_params ~n)
  in
  let mst =
    Mst.create (Prng.split rng) ~n
      ~params:
        { Mst.gamma = 0.25; w_min = 1.0; w_max = 32.0; sketch = Agm_sketch.default_params ~n }
  in
  let bip = Bipartiteness.create (Prng.split rng) ~n ~params:(Agm_sketch.default_params ~n) in
  let feed u v delta =
    let w = Hashtbl.find latency (min u v, max u v) in
    K_connectivity.update kconn ~u ~v ~delta;
    Mst.update mst ~u ~v ~weight:w ~delta;
    Bipartiteness.update bip ~u ~v ~delta
  in
  (* Stream with churn: links flap (insert + delete) before settling. *)
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:0 net in
  Array.iter (fun u -> feed u.Update.u u.Update.v (Update.delta u)) stream;
  (* Flap 40 existing links: delete and re-insert. *)
  let links = Array.of_list (Graph.edges net) in
  Prng.shuffle (Prng.copy rng) links;
  for i = 0 to 39 do
    let u, v = links.(i) in
    feed u v (-1);
    feed u v 1
  done;

  (* Decode the monitors. *)
  Fmt.pr "@.-- resilience --@.";
  let resilient = K_connectivity.is_k_connected kconn in
  Fmt.pr "2-edge-connected (sketch): %b@." resilient;
  Fmt.pr "2-edge-connected (exact):  %b@." (Min_cut.edge_connectivity net >= 2);
  assert (resilient = (Min_cut.edge_connectivity net >= 2));

  Fmt.pr "@.-- backbone cost --@.";
  let forest = Mst.extract mst in
  let wnet = Weighted_graph.create n in
  Graph.iter_edges net (fun u v -> Weighted_graph.add_edge wnet u v (Hashtbl.find latency (u, v)));
  let exact = Mst_offline.kruskal wnet in
  (* The sketch reports class-rounded weights; price its chosen links at
     their true latencies for an apples-to-apples comparison. *)
  let true_cost =
    List.fold_left
      (fun acc (u, v, _) -> acc +. Hashtbl.find latency (min u v, max u v))
      0.0 forest
  in
  let exact_cost = Mst_offline.forest_weight exact in
  Fmt.pr "approx MST: %d links, true cost %.1f@." (List.length forest) true_cost;
  Fmt.pr "exact  MST: %d links, cost %.1f (ratio %.3f, guarantee <= 1.25)@."
    (List.length exact) exact_cost (true_cost /. exact_cost);
  assert (List.length forest = List.length exact);
  assert (true_cost >= exact_cost -. 1e-6);
  assert (true_cost <= 1.25 *. exact_cost +. 1e-6);

  Fmt.pr "@.-- layering --@.";
  let v = Bipartiteness.test bip in
  Fmt.pr "components=%d bipartite=%b (ring of even length + odd shortcuts)@."
    v.Bipartiteness.components v.Bipartiteness.is_bipartite;

  let space =
    K_connectivity.space_in_words kconn + Mst.space_in_words mst + Bipartiteness.space_in_words bip
  in
  Fmt.pr "@.total monitor state: %a (network itself: %d links)@." Space.pp_words space
    (Graph.num_edges net);
  Fmt.pr "OK: resilience, backbone and layering monitored from linear sketches.@."
