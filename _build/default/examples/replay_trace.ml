(* Replaying a recorded update trace: streams are plain data, so they can be
   captured from production, shipped as text files, and replayed through any
   of the algorithms. This example writes a trace with churn, replays it
   into a distance oracle, and answers queries — the full "synopsis of a
   stream you no longer have" workflow.

       dune exec examples/replay_trace.exe *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let () =
  let n = 150 in
  let rng = Prng.create 77 in

  (* Producer side: a stream happens (and is logged), then is gone. *)
  let graph = Gen.watts_strogatz (Prng.split rng) ~n ~k:2 ~beta:0.15 in
  let stream = Stream_gen.flapping (Prng.split rng) ~flaps:400 graph in
  let path = Filename.temp_file "dynostream" ".trace" in
  Trace.save path stream;
  Fmt.pr "recorded %d updates to %s (%d bytes)@." (Array.length stream) path
    (let st = open_in path in
     let len = in_channel_length st in
     close_in st;
     len);

  (* Consumer side: replay the file through a two-pass distance oracle. *)
  let replayed = Trace.load path in
  assert (replayed = stream);
  let oracle = Distance_oracle.of_stream (Prng.split rng) ~n ~k:3 replayed in
  Fmt.pr "oracle built: %d spanner edges, stretch <= %.0f, sketch state %a@."
    (Distance_oracle.spanner_edges oracle)
    (Distance_oracle.stretch oracle)
    Space.pp_words
    (Distance_oracle.space_words oracle);

  (* Answer queries and check against ground truth. *)
  let qrng = Prng.split rng in
  let ok = ref 0 and total = 20 in
  for _ = 1 to total do
    let u = Prng.int qrng n and v = Prng.int qrng n in
    if u <> v then begin
      let est = Distance_oracle.query oracle u v in
      let exact = float_of_int (Bfs.distance graph u v) in
      if est >= exact && est <= Distance_oracle.stretch oracle *. exact then incr ok
    end
    else incr ok
  done;
  Fmt.pr "queries within guarantee: %d/%d@." !ok total;
  assert (!ok = total);
  Sys.remove path;
  Fmt.pr "OK: record, ship, replay, query.@."
