examples/distributed_sketch.mli:
