examples/quickstart.ml: Array Ds_core Ds_graph Ds_stream Ds_util Fmt Gen Graph Prng Space Stream_gen Stretch Two_pass_spanner
