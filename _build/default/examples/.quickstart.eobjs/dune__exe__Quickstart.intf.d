examples/quickstart.mli:
