examples/replay_trace.ml: Array Bfs Distance_oracle Ds_core Ds_graph Ds_stream Ds_util Filename Fmt Gen Prng Space Stream_gen Sys Trace
