examples/sparsify_cuts.mli:
