examples/sparsify_cuts.ml: Ds_core Ds_graph Ds_linalg Ds_stream Ds_util Fmt Gen Graph Laplacian List Printf Prng Space Sparsify Spectral Stream_gen Weighted_graph
