examples/replay_trace.mli:
