examples/distributed_sketch.ml: Agm_sketch Array Components Ds_agm Ds_graph Ds_stream Ds_util Fmt Gen Graph List Prng Space Stream_gen String Update
