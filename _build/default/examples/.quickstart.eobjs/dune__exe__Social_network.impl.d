examples/social_network.ml: Array Bfs Ds_core Ds_graph Ds_stream Ds_util Fmt Gen Graph Prng Space Stream_gen Two_pass_spanner Update
