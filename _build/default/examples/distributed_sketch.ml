(* The paper's distributed motivation (Section 1), executed literally: the
   edge stream is split across several servers; each server only sketches
   its own shard using the SAME seed-derived sketching matrices; the
   coordinator receives the sketches, SUMS them (linearity: S(x1) + S(x2) =
   S(x1 + x2)), and extracts global structure — a spanning forest and a
   connectivity answer — without any server ever seeing the whole graph.

       dune exec examples/distributed_sketch.exe *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

let () =
  let n = 400 in
  let servers = 4 in
  let rng = Prng.create 99 in

  let graph = Gen.connected_gnp (Prng.split rng) ~n ~p:0.015 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:2000 graph in
  Fmt.pr "graph: n=%d edges=%d; stream of %d updates over %d servers@." n
    (Graph.num_edges graph) (Array.length stream) servers;

  (* Every server derives the same sketch structure from the shared seed
     (the paper: "the servers can agree upon a sketching matrix S"). *)
  let shared_seed = Prng.create 424242 in
  let params = Agm_sketch.default_params ~n in
  let sketch_of s = ignore s; Agm_sketch.create (Prng.copy shared_seed) ~n ~params in
  let shards = Array.init servers sketch_of in

  (* Round-robin shard assignment: each update goes to exactly one server. *)
  Array.iteri
    (fun i u ->
      Agm_sketch.update shards.(i mod servers) ~u:u.Update.u ~v:u.Update.v
        ~delta:(Update.delta u))
    stream;
  let shard_words = Agm_sketch.space_in_words shards.(0) in
  Fmt.pr "each server holds %a of sketch state (vs %d edges it saw)@." Space.pp_words shard_words
    (Array.length stream / servers);

  (* Each server serialises its counters — this is the message that would
     cross the network (structure is rebuilt from the shared seed). *)
  let messages = Array.map Agm_sketch.serialize shards in
  let total_bytes = Array.fold_left (fun a m -> a + String.length m) 0 messages in
  Fmt.pr "messages to coordinator: %d bytes total (vs streaming all %d updates)@." total_bytes
    (Array.length stream);

  (* Coordinator: rebuild from the seed, absorb each message, sum, decode. *)
  let coordinator = sketch_of 0 in
  let scratch = sketch_of 0 in
  Array.iter
    (fun message ->
      Agm_sketch.deserialize_into scratch message;
      Agm_sketch.add coordinator scratch)
    messages;
  let forest = Agm_sketch.spanning_forest coordinator in
  Fmt.pr "coordinator forest: %d edges (n - components = %d)@." (List.length forest)
    (n - Components.count graph);

  (* Verify against ground truth. *)
  let fg = Graph.create n in
  List.iter (fun (u, v) -> if not (Graph.mem_edge fg u v) then Graph.add_edge fg u v) forest;
  assert (List.for_all (fun (u, v) -> Graph.mem_edge graph u v) forest);
  assert (Components.count fg = Components.count graph);
  Fmt.pr "OK: global connectivity from per-server linear sketches only.@."
