(* Quickstart: sketch a dynamic edge stream (insertions AND deletions) in
   two passes and extract a multiplicative spanner from the sketches alone.

       dune exec examples/quickstart.exe

   The three steps below are the whole public API surface needed:
   1. build a stream of signed edge updates,
   2. run [Two_pass_spanner.run] over it (it reads the stream twice),
   3. verify the result against the offline graph. *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let () =
  let n = 200 in
  let rng = Prng.create 2014 in

  (* A connected random graph, streamed with churn: 1500 decoy edges are
     inserted and later deleted, so any algorithm that "just samples what it
     sees" would keep edges that no longer exist. *)
  let graph = Gen.connected_gnp (Prng.split rng) ~n ~p:0.04 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:1500 graph in
  Fmt.pr "stream: %d updates ending at a graph with %d edges@." (Array.length stream)
    (Graph.num_edges graph);

  (* Two passes, ~O(n^{1+1/k}) space, stretch <= 2^k (Theorem 1). *)
  let k = 3 in
  let result =
    Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k) stream
  in
  let spanner = result.Two_pass_spanner.spanner in
  Fmt.pr "spanner: %d edges, sketch state %a@." (Graph.num_edges spanner) Space.pp_words
    result.Two_pass_spanner.space_words;

  (* Verify: the spanner is a subgraph and every distance is stretched by at
     most 2^k. (The verification uses the offline graph; the algorithm never
     saw it.) *)
  let s = Stretch.multiplicative ~base:graph ~spanner in
  Fmt.pr "stretch: max=%.1f (bound %d), mean=%.2f, violations=%d@." s.Stretch.max (1 lsl k)
    s.Stretch.mean s.Stretch.violations;
  assert (Graph.is_subgraph ~sub:spanner ~super:graph);
  assert (s.Stretch.violations = 0);
  assert (s.Stretch.max <= float_of_int (1 lsl k));
  Fmt.pr "OK: a 2^%d-spanner from linear sketches in two passes.@." k
