(* A dynamic "social network" with churn: a preferential-attachment graph
   (heavy-tailed degrees, like real friendship graphs) in which a fraction
   of friendships are later unfriended. The paper's motivating query is
   approximate distance between users without storing the graph; this
   example serves those queries from the streamed spanner and compares
   against exact distances.

       dune exec examples/social_network.exe *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let () =
  let n = 300 in
  let rng = Prng.create 7 in

  (* Final friendship graph. *)
  let graph = Gen.preferential_attachment (Prng.split rng) ~n ~m:3 in
  Fmt.pr "social graph: %d users, %d friendships@." n (Graph.num_edges graph);

  (* The stream adds ~40%% extra friendships that are later removed
     (unfriending), interleaved with the real ones. *)
  let decoys = 2 * Graph.num_edges graph / 5 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys graph in
  Fmt.pr "stream: %d updates (%d of them deletions)@." (Array.length stream)
    (Array.fold_left (fun acc u -> if u.Update.sign = Update.Delete then acc + 1 else acc) 0 stream);

  (* Build the distance oracle: a 2^k-spanner sketched in two passes. *)
  let k = 3 in
  let r =
    Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k) stream
  in
  let spanner = r.Two_pass_spanner.spanner in
  Fmt.pr "distance oracle: %d edges kept of %d (state %a)@." (Graph.num_edges spanner)
    (Graph.num_edges graph) Space.pp_words r.Two_pass_spanner.space_words;

  (* Serve 12 random "how far apart are these users?" queries. *)
  Fmt.pr "@.%-8s %-8s %-6s %-9s %-7s@." "user a" "user b" "exact" "estimate" "ratio";
  let qrng = Prng.split rng in
  let worst = ref 1.0 in
  for _ = 1 to 12 do
    let a = Prng.int qrng n and b = Prng.int qrng n in
    if a <> b then begin
      let exact = Bfs.distance graph a b in
      let est = Bfs.distance spanner a b in
      let ratio = float_of_int est /. float_of_int (max 1 exact) in
      if ratio > !worst then worst := ratio;
      Fmt.pr "%-8d %-8d %-6d %-9d %.2f@." a b exact est ratio
    end
  done;
  Fmt.pr "@.worst observed ratio %.2f (guarantee: <= %d)@." !worst (1 lsl k);
  assert (!worst <= float_of_int (1 lsl k))
