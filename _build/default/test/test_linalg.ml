open Ds_util
open Ds_graph
open Ds_linalg

let check_bool = Alcotest.(check bool)
let check_float msg ?(tol = 1e-6) a b = Alcotest.(check (float tol)) msg a b

(* -------------------- Vec / Matrix -------------------- *)

let test_vec () =
  check_float "dot" 11.0 (Vec.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_float "norm" 5.0 (Vec.norm [| 3.0; 4.0 |]);
  let y = [| 1.0; 1.0 |] in
  Vec.axpy 2.0 [| 1.0; 2.0 |] y;
  check_float "axpy" 3.0 y.(0);
  check_float "axpy" 5.0 y.(1);
  let v = [| 1.0; 2.0; 3.0 |] in
  Vec.project_off_ones v;
  check_float "projected mean" 0.0 (Array.fold_left ( +. ) 0.0 v);
  check_float "unit norm" 1.0 (Vec.norm (Vec.random_unit (Prng.create 1) 10))

let test_matrix_mul () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 2.0 (Matrix.get c 0 0);
  check_float "c01" 1.0 (Matrix.get c 0 1);
  check_float "c10" 4.0 (Matrix.get c 1 0);
  check_float "c11" 3.0 (Matrix.get c 1 1);
  let v = Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_float "mul_vec" 3.0 v.(0);
  check_float "mul_vec" 7.0 v.(1)

let test_matrix_transpose_identity () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let at = Matrix.transpose a in
  check_float "transpose" 3.0 (Matrix.get at 0 1);
  let i = Matrix.identity 2 in
  check_bool "a * I = a" true (Matrix.frobenius (Matrix.sub (Matrix.mul a i) a) < 1e-12)

(* -------------------- Laplacian -------------------- *)

let test_laplacian_dense () =
  let g = Weighted_graph.of_edges 3 [ (0, 1, 2.0); (1, 2, 3.0) ] in
  let l = Laplacian.dense g in
  check_float "diag" 2.0 (Matrix.get l 0 0);
  check_float "diag mid" 5.0 (Matrix.get l 1 1);
  check_float "off" (-2.0) (Matrix.get l 0 1);
  check_float "zero" 0.0 (Matrix.get l 0 2);
  check_bool "symmetric" true (Matrix.is_symmetric l)

let test_laplacian_apply_matches_dense () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 2) ~n:20 ~p:0.2) in
  let l = Laplacian.dense g in
  let rng = Prng.create 3 in
  for _ = 1 to 10 do
    let x = Vec.random_unit rng 20 in
    let a = Laplacian.apply g x and b = Matrix.mul_vec l x in
    check_bool "operator matches dense" true (Vec.norm (Vec.sub a b) < 1e-9)
  done

let test_quadratic_form () =
  let g = Weighted_graph.of_edges 3 [ (0, 1, 2.0); (1, 2, 3.0) ] in
  (* x = (1,0,0): only edge (0,1) cut: 2 * 1 = 2 *)
  check_float "qf" 2.0 (Laplacian.quadratic_form g [| 1.0; 0.0; 0.0 |]);
  check_float "cut weight" 2.0 (Laplacian.cut_weight g [ 0 ]);
  check_float "cut both" 3.0 (Laplacian.cut_weight g [ 0; 1 ])

(* -------------------- CG -------------------- *)

let test_cg_solves () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 4) ~n:30 ~p:0.15) in
  let b = Array.make 30 0.0 in
  b.(3) <- 1.0;
  b.(17) <- -1.0;
  let { Cg.x; residual; _ } = Cg.solve g ~b () in
  check_bool "small residual" true (residual < 1e-6);
  let lx = Laplacian.apply g x in
  check_bool "Lx = b" true (Vec.norm (Vec.sub lx b) < 1e-6)

(* -------------------- Jacobi -------------------- *)

let test_jacobi_known () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3. *)
  let m = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let ev = Jacobi.eigenvalues m in
  check_float "lambda1" 1.0 ev.(0);
  check_float "lambda2" 3.0 ev.(1)

let test_jacobi_reconstructs () =
  let rng = Prng.create 5 in
  let n = 12 in
  let m = Matrix.create n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = Prng.gaussian rng in
      Matrix.set m i j v;
      Matrix.set m j i v
    done
  done;
  let { Jacobi.values; vectors } = Jacobi.decompose m in
  (* Q diag(values) Q^T = m *)
  let d = Matrix.create n in
  Array.iteri (fun i v -> Matrix.set d i i v) values;
  let recon = Matrix.mul vectors (Matrix.mul d (Matrix.transpose vectors)) in
  check_bool "reconstruction" true (Matrix.frobenius (Matrix.sub recon m) < 1e-7);
  (* Orthogonality *)
  let qtq = Matrix.mul (Matrix.transpose vectors) vectors in
  check_bool "orthogonal" true
    (Matrix.frobenius (Matrix.sub qtq (Matrix.identity n)) < 1e-8)

let test_jacobi_laplacian_kernel () =
  let g = Weighted_graph.of_graph (Gen.cycle 8) in
  let ev = Jacobi.eigenvalues (Laplacian.dense g) in
  check_float "connected: single zero eigenvalue" 0.0 ev.(0);
  check_bool "second eigenvalue positive" true (ev.(1) > 1e-9)

(* -------------------- Effective resistance -------------------- *)

let test_resistance_path () =
  (* Series resistors: R(0, k) = k on a unit path. *)
  let g = Weighted_graph.of_graph (Gen.path 6) in
  check_float "adjacent" 1.0 (Resistance.effective g 0 1);
  check_float "end to end" 5.0 (Resistance.effective g 0 5)

let test_resistance_complete () =
  (* K_n: R_uv = 2/n. *)
  let g = Weighted_graph.of_graph (Gen.complete 10) in
  check_float "complete" 0.2 (Resistance.effective g 0 5)

let test_resistance_cycle () =
  (* Cycle: R(u, v) = d (n - d) / n for hop distance d. *)
  let g = Weighted_graph.of_graph (Gen.cycle 10) in
  check_float "cycle d=1" 0.9 (Resistance.effective g 0 1);
  check_float "cycle d=5" 2.5 (Resistance.effective g 0 5)

let test_resistance_parallel () =
  (* Two parallel unit edges = multiedge via weights: conductances add. *)
  let g = Weighted_graph.of_edges 2 [ (0, 1, 2.0) ] in
  check_float "parallel halves" 0.5 (Resistance.effective g 0 1)

let test_resistance_disconnected () =
  let g = Weighted_graph.create 4 in
  Weighted_graph.add_edge g 0 1 1.0;
  check_bool "infinite across components" true (Resistance.effective g 0 3 = infinity)

let test_foster () =
  (* Foster's theorem: sum over edges of w_e R_e = n - #components. *)
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 6) ~n:25 ~p:0.2) in
  check_float "foster" ~tol:1e-4 24.0 (Resistance.total g)

(* -------------------- Spectral bounds -------------------- *)

let test_spectral_identical () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 7) ~n:20 ~p:0.2) in
  let { Spectral.lambda_min; lambda_max; kernel_leak } =
    Spectral.pencil_bounds ~base:g ~candidate:g
  in
  check_float "identical min" ~tol:1e-6 1.0 lambda_min;
  check_float "identical max" ~tol:1e-6 1.0 lambda_max;
  check_float "no kernel leak" ~tol:1e-6 0.0 kernel_leak;
  check_bool "is sparsifier of itself" true (Spectral.is_sparsifier ~base:g ~candidate:g ~eps:0.01)

let test_spectral_scaled () =
  let g = Weighted_graph.of_graph (Gen.cycle 12) in
  let h = Weighted_graph.create 12 in
  Weighted_graph.iter_edges g (fun u v w -> Weighted_graph.add_edge h u v (1.5 *. w));
  let { Spectral.lambda_min; lambda_max; _ } = Spectral.pencil_bounds ~base:g ~candidate:h in
  check_float "scaled min" ~tol:1e-6 1.5 lambda_min;
  check_float "scaled max" ~tol:1e-6 1.5 lambda_max

let test_spectral_subgraph_detected () =
  (* Dropping a cycle edge destroys the approximation (lambda_min drops). *)
  let g = Weighted_graph.of_graph (Gen.cycle 12) in
  let h = Weighted_graph.create 12 in
  Weighted_graph.iter_edges g (fun u v w -> if not (u = 0 && v = 1) then Weighted_graph.add_edge h u v w);
  let { Spectral.lambda_min; lambda_max; _ } = Spectral.pencil_bounds ~base:g ~candidate:h in
  check_bool "min visibly below 1" true (lambda_min < 0.5);
  check_bool "max at most 1" true (lambda_max <= 1.0 +. 1e-6);
  check_bool "not a 0.1-sparsifier" false (Spectral.is_sparsifier ~base:g ~candidate:h ~eps:0.1)

let test_spectral_ratio_samples () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 8) ~n:16 ~p:0.3) in
  let { Spectral.lambda_min; lambda_max; _ } = Spectral.pencil_bounds ~base:g ~candidate:g in
  let rng = Prng.create 9 in
  let samples = Spectral.quadratic_ratio_samples rng ~base:g ~candidate:g ~samples:20 in
  Array.iter
    (fun r ->
      check_bool "sample ratios inside exact bounds" true
        (r >= lambda_min -. 1e-6 && r <= lambda_max +. 1e-6))
    samples;
  let cuts = Spectral.cut_ratio_samples rng ~base:g ~candidate:g ~samples:10 in
  Array.iter (fun r -> check_float "cut ratio 1" ~tol:1e-9 1.0 r) cuts

(* -------------------- CSR -------------------- *)

let test_csr_basics () =
  let m = Csr.of_triplets ~rows:3 ~cols:3 [ (0, 1, 2.0); (1, 0, 2.0); (2, 2, 5.0); (0, 1, 1.0) ] in
  check_float "duplicates summed" 3.0 (Csr.get m 0 1);
  check_float "absent is zero" 0.0 (Csr.get m 0 2);
  check_bool "nnz" true (Csr.nnz m = 3);
  let y = Csr.mul_vec m [| 1.0; 1.0; 1.0 |] in
  check_float "row0" 3.0 y.(0);
  check_float "row1" 2.0 y.(1);
  check_float "row2" 5.0 y.(2)

let test_csr_matches_dense_laplacian () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 35) ~n:25 ~p:0.2) in
  let sp = Csr.of_laplacian g in
  let dn = Laplacian.dense g in
  check_bool "csr equals dense" true
    (Matrix.frobenius (Matrix.sub (Csr.to_dense sp) dn) < 1e-12);
  let rng = Prng.create 36 in
  for _ = 1 to 5 do
    let x = Vec.random_unit rng 25 in
    let a = Csr.mul_vec sp x and b = Matrix.mul_vec dn x in
    check_bool "spmv matches" true (Vec.norm (Vec.sub a b) < 1e-10)
  done

let test_csr_transpose () =
  let m = Csr.of_triplets ~rows:2 ~cols:3 [ (0, 2, 7.0); (1, 0, -1.0) ] in
  let mt = Csr.transpose m in
  check_float "transposed entry" 7.0 (Csr.get mt 2 0);
  check_float "transposed entry 2" (-1.0) (Csr.get mt 0 1);
  check_bool "shape" true (Csr.rows mt = 3 && Csr.cols mt = 2)

(* -------------------- Power iteration -------------------- *)

let test_power_matches_jacobi () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 30) ~n:24 ~p:0.2) in
  let exact =
    let ev = Jacobi.eigenvalues (Laplacian.dense g) in
    ev.(Array.length ev - 1)
  in
  let pi = Power_iteration.lambda_max g ~iters:500 () in
  check_bool
    (Printf.sprintf "power %.4f vs jacobi %.4f" pi exact)
    true
    (abs_float (pi -. exact) /. exact < 0.01)

let test_power_pencil_identity () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 31) ~n:20 ~p:0.25) in
  let v = Power_iteration.lambda_max_pencil ~base:g ~candidate:g () in
  check_float "identical pencil" ~tol:1e-6 1.0 v

let test_power_pencil_scaled () =
  let g = Weighted_graph.of_graph (Gen.cycle 12) in
  let h = Weighted_graph.create 12 in
  Weighted_graph.iter_edges g (fun u v w -> Weighted_graph.add_edge h u v (2.0 *. w));
  let v = Power_iteration.lambda_max_pencil ~base:g ~candidate:h () in
  check_float "scaled pencil" ~tol:1e-4 2.0 v

let test_power_pencil_matches_spectral () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 32) ~n:18 ~p:0.3) in
  (* candidate: random reweighting *)
  let rng = Prng.create 33 in
  let h = Weighted_graph.create 18 in
  Weighted_graph.iter_edges g (fun u v w ->
      Weighted_graph.add_edge h u v (w *. (0.5 +. Prng.float rng 1.0)));
  let { Spectral.lambda_max; _ } = Spectral.pencil_bounds ~base:g ~candidate:h in
  let pi = Power_iteration.lambda_max_pencil ~base:g ~candidate:h ~iters:300 () in
  check_bool
    (Printf.sprintf "pencil power %.4f vs exact %.4f" pi lambda_max)
    true
    (abs_float (pi -. lambda_max) /. lambda_max < 0.02)

let prop_resistance_bounded_by_distance =
  QCheck.Test.make ~name:"R_uv <= d(u,v) on unit-weight graphs (Rayleigh)" ~count:25
    QCheck.small_nat
    (fun seed ->
      let g0 = Gen.connected_gnp (Prng.create (seed + 50)) ~n:15 ~p:0.2 in
      let g = Weighted_graph.of_graph g0 in
      let ok = ref true in
      for v = 1 to 14 do
        let r = Resistance.effective g 0 v in
        let d = float_of_int (Bfs.distance g0 0 v) in
        if r > d +. 1e-6 then ok := false
      done;
      !ok)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_resistance_bounded_by_distance ]

let () =
  Alcotest.run "linalg"
    [
      ( "dense",
        [
          Alcotest.test_case "vec" `Quick test_vec;
          Alcotest.test_case "matrix mul" `Quick test_matrix_mul;
          Alcotest.test_case "transpose/identity" `Quick test_matrix_transpose_identity;
        ] );
      ( "laplacian",
        [
          Alcotest.test_case "dense" `Quick test_laplacian_dense;
          Alcotest.test_case "operator matches dense" `Quick test_laplacian_apply_matches_dense;
          Alcotest.test_case "quadratic form" `Quick test_quadratic_form;
        ] );
      ("cg", [ Alcotest.test_case "solves" `Quick test_cg_solves ]);
      ( "jacobi",
        [
          Alcotest.test_case "known spectrum" `Quick test_jacobi_known;
          Alcotest.test_case "reconstructs" `Quick test_jacobi_reconstructs;
          Alcotest.test_case "laplacian kernel" `Quick test_jacobi_laplacian_kernel;
        ] );
      ( "resistance",
        [
          Alcotest.test_case "path" `Quick test_resistance_path;
          Alcotest.test_case "complete" `Quick test_resistance_complete;
          Alcotest.test_case "cycle" `Quick test_resistance_cycle;
          Alcotest.test_case "parallel" `Quick test_resistance_parallel;
          Alcotest.test_case "disconnected" `Quick test_resistance_disconnected;
          Alcotest.test_case "foster" `Quick test_foster;
        ] );
      ( "csr",
        [
          Alcotest.test_case "basics" `Quick test_csr_basics;
          Alcotest.test_case "matches dense laplacian" `Quick test_csr_matches_dense_laplacian;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
        ] );
      ( "power_iteration",
        [
          Alcotest.test_case "matches jacobi" `Quick test_power_matches_jacobi;
          Alcotest.test_case "pencil identity" `Quick test_power_pencil_identity;
          Alcotest.test_case "pencil scaled" `Quick test_power_pencil_scaled;
          Alcotest.test_case "pencil matches spectral" `Quick test_power_pencil_matches_spectral;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "identical" `Quick test_spectral_identical;
          Alcotest.test_case "scaled" `Quick test_spectral_scaled;
          Alcotest.test_case "subgraph detected" `Quick test_spectral_subgraph_detected;
          Alcotest.test_case "ratio samples" `Quick test_spectral_ratio_samples;
        ] );
      ("properties", qcheck_cases);
    ]
