(* Differential testing: every streaming algorithm against its offline
   reference over randomized (graph family, stream shape, parameter)
   configurations. Complements the per-module suites: here nothing is
   mocked, the whole pipeline runs, and the offline side is computed
   independently. *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let check_bool = Alcotest.(check bool)

let families seed n =
  let rng = Prng.create seed in
  [
    ("gnp", Gen.connected_gnp (Prng.split rng) ~n ~p:(8.0 /. float_of_int n));
    ("pa", Gen.preferential_attachment (Prng.split rng) ~n ~m:3);
    ("ws", Gen.watts_strogatz (Prng.split rng) ~n ~k:2 ~beta:0.2);
    ("grid", Gen.grid (n / 8) 8);
  ]

let streams rng g =
  [
    ("insert", Stream_gen.insert_only (Prng.split rng) g);
    ("churn", Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g);
    ("flap", Stream_gen.flapping (Prng.split rng) ~flaps:(Graph.num_edges g / 2) g);
  ]

let test_spanners_differential () =
  List.iter
    (fun seed ->
      let n = 64 in
      List.iter
        (fun (fname, g) ->
          let rng = Prng.create (seed * 131) in
          List.iter
            (fun (sname, stream) ->
              let k = 2 + (seed mod 2) in
              (* streaming two-pass *)
              let tp =
                Two_pass_spanner.run (Prng.split rng) ~n
                  ~params:(Two_pass_spanner.default_params ~k)
                  stream
              in
              let s_tp = Stretch.multiplicative ~base:g ~spanner:tp.Two_pass_spanner.spanner in
              check_bool
                (Printf.sprintf "two-pass %s/%s k=%d" fname sname k)
                true
                (s_tp.Stretch.violations = 0
                && s_tp.Stretch.max <= float_of_int (1 lsl k)
                && Graph.is_subgraph ~sub:tp.Two_pass_spanner.spanner ~super:g);
              (* offline reference on the same graph *)
              let ob = (Basic_spanner.run (Prng.split rng) ~k g).Basic_spanner.spanner in
              let s_ob = Stretch.multiplicative ~base:g ~spanner:ob in
              check_bool "offline reference bound" true
                (s_ob.Stretch.max <= float_of_int (1 lsl k));
              (* the streaming size should be within a constant of offline *)
              check_bool
                (Printf.sprintf "size comparable %s/%s" fname sname)
                true
                (Graph.num_edges tp.Two_pass_spanner.spanner
                <= (4 * Graph.num_edges ob) + (4 * n)))
            (streams rng g))
        (families seed n))
    [ 1; 2 ]

let test_multipass_vs_offline_bs () =
  List.iter
    (fun seed ->
      let n = 72 in
      let rng = Prng.create (seed * 977) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.1 in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:300 g in
      let k = 3 in
      let mp =
        Multipass_spanner.run (Prng.split rng) ~n
          ~params:(Multipass_spanner.default_params ~k)
          stream
      in
      let off = Baswana_sen.run (Prng.split rng) ~k g in
      let s_mp = Stretch.multiplicative ~base:g ~spanner:mp.Multipass_spanner.spanner in
      let s_off = Stretch.multiplicative ~base:g ~spanner:off in
      check_bool "both respect 2k-1" true
        (s_mp.Stretch.max <= 5.0 && s_off.Stretch.max <= 5.0);
      check_bool "sizes same order" true
        (Graph.num_edges mp.Multipass_spanner.spanner <= (4 * Graph.num_edges off) + (4 * n)))
    [ 3; 4; 5 ]

let test_additive_vs_offline () =
  List.iter
    (fun seed ->
      let n = 96 in
      let rng = Prng.create (seed * 389) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.3 in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:400 g in
      let d = 4 in
      let str =
        Additive_spanner.run (Prng.split rng) ~n
          ~params:(Additive_spanner.default_params ~n ~d)
          stream
      in
      let off = Aingworth.run g in
      let s_str = Stretch.additive ~base:g ~spanner:str.Additive_spanner.spanner () in
      let s_off = Stretch.additive ~base:g ~spanner:off () in
      check_bool "offline +2" true (s_off.Stretch.max <= 2.0);
      check_bool "streaming within its bound" true
        (s_str.Stretch.violations = 0
        && s_str.Stretch.max <= Additive_spanner.distortion_bound ~n ~d))
    [ 6; 7 ]

let test_forest_differential () =
  List.iter
    (fun seed ->
      let n = 48 in
      let rng = Prng.create (seed * 613) in
      let g = Gen.gnp (Prng.split rng) ~n ~p:0.07 in
      List.iter
        (fun (sname, stream) ->
          let sk =
            Ds_agm.Agm_sketch.create (Prng.split rng) ~n
              ~params:(Ds_agm.Agm_sketch.default_params ~n)
          in
          Array.iter
            (fun u ->
              Ds_agm.Agm_sketch.update sk ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
            stream;
          let sketch_forest = Ds_agm.Agm_sketch.spanning_forest sk in
          let offline_forest = Components.spanning_forest g in
          check_bool
            (Printf.sprintf "forest size matches offline (%s)" sname)
            true
            (List.length sketch_forest = List.length offline_forest))
        (streams rng g))
    [ 8; 9; 10 ]

let test_mst_differential () =
  List.iter
    (fun seed ->
      let n = 40 in
      let rng = Prng.create (seed * 241) in
      let g0 = Gen.connected_gnp (Prng.split rng) ~n ~p:0.15 in
      let wg = Weighted_graph.create n in
      Graph.iter_edges g0 (fun u v ->
          Weighted_graph.add_edge wg u v (1.0 +. Prng.float rng 31.0));
      let gamma = 0.25 in
      let t =
        Ds_agm.Mst.create (Prng.split rng) ~n
          ~params:
            {
              Ds_agm.Mst.gamma;
              w_min = 1.0;
              w_max = 32.0;
              sketch = Ds_agm.Agm_sketch.default_params ~n;
            }
      in
      Weighted_graph.iter_edges wg (fun u v w -> Ds_agm.Mst.update t ~u ~v ~weight:w ~delta:1);
      let approx = Ds_agm.Mst.extract t in
      let exact = Mst_offline.kruskal wg in
      let true_cost =
        List.fold_left
          (fun acc (u, v, _) -> acc +. Option.value ~default:0.0 (Weighted_graph.weight wg u v))
          0.0 approx
      in
      let exact_cost = Mst_offline.forest_weight exact in
      check_bool
        (Printf.sprintf "MST ratio within 1+gamma (seed %d)" seed)
        true
        (List.length approx = List.length exact
        && true_cost >= exact_cost -. 1e-6
        && true_cost <= ((1.0 +. gamma) *. exact_cost) +. 1e-6))
    [ 11; 12; 13 ]

let test_f0_differential () =
  let open Ds_sketch in
  List.iter
    (fun seed ->
      let rng = Prng.create (seed * 83) in
      let dim = 5000 in
      let sk = F0.create (Prng.split rng) ~dim ~params:F0.default_params in
      let model = Hashtbl.create 64 in
      for _ = 1 to 600 do
        let i = Prng.int rng dim in
        match Hashtbl.find_opt model i with
        | Some () when Prng.bool rng ->
            Hashtbl.remove model i;
            F0.update sk ~index:i ~delta:(-1)
        | Some () -> ()
        | None ->
            Hashtbl.add model i ();
            F0.update sk ~index:i ~delta:1
      done;
      let truth = Hashtbl.length model in
      let est = F0.estimate sk in
      check_bool
        (Printf.sprintf "F0 within factor 2 (seed %d: %d vs %d)" seed est truth)
        true
        (est * 2 >= truth && est <= 2 * truth))
    [ 14; 15; 16; 17 ]

let test_sliding_window_spanner () =
  (* Snapshots enter and expire; the spanner of the stream must approximate
     the union of the in-window snapshots, which is the stream's final
     graph. *)
  List.iter
    (fun seed ->
      let n = 48 in
      let rng = Prng.create (seed * 47) in
      let snaps = List.init 5 (fun i -> Gen.gnm (Prng.create (seed + (100 * i))) ~n ~m:60) in
      let stream = Stream_gen.sliding_window (Prng.split rng) ~window:2 snaps in
      let g = Update.final_graph ~n stream in
      let k = 2 in
      let r =
        Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k)
          stream
      in
      let s = Stretch.multiplicative ~base:g ~spanner:r.Two_pass_spanner.spanner in
      check_bool
        (Printf.sprintf "sliding window spanner (seed %d)" seed)
        true
        (s.Stretch.violations = 0
        && s.Stretch.max <= float_of_int (1 lsl k)
        && Graph.is_subgraph ~sub:r.Two_pass_spanner.spanner ~super:g))
    [ 20; 21; 22 ]

let () =
  Alcotest.run "differential"
    [
      ( "streaming-vs-offline",
        [
          Alcotest.test_case "spanners all families/streams" `Slow test_spanners_differential;
          Alcotest.test_case "multipass vs BS07" `Slow test_multipass_vs_offline_bs;
          Alcotest.test_case "additive vs ACIM99" `Slow test_additive_vs_offline;
          Alcotest.test_case "forest vs offline" `Slow test_forest_differential;
          Alcotest.test_case "mst vs kruskal" `Slow test_mst_differential;
          Alcotest.test_case "f0 vs model" `Quick test_f0_differential;
          Alcotest.test_case "sliding window spanner" `Slow test_sliding_window_spanner;
        ] );
    ]
