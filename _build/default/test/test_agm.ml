open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sketch_of_stream rng ~n stream =
  let t = Agm_sketch.create rng ~n ~params:(Agm_sketch.default_params ~n) in
  Array.iter
    (fun u -> Agm_sketch.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  t

(* A forest is correct for g iff its edges are edges of g and it connects
   exactly the components of g. *)
let forest_is_correct g forest =
  let n = Graph.n g in
  List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest
  &&
  let fg = Graph.create n in
  List.iter (fun (u, v) -> if not (Graph.mem_edge fg u v) then Graph.add_edge fg u v) forest;
  let gl = Components.labels g and fl = Components.labels fg in
  let ok = ref true in
  for a = 0 to n - 1 do
    if (gl.(a) = gl.(0)) <> (fl.(a) = fl.(0)) then () (* labels differ per component id *)
  done;
  (* Same partition: components agree pairwise through label equivalence. *)
  let rep = Hashtbl.create n in
  Array.iteri
    (fun v l ->
      match Hashtbl.find_opt rep l with
      | None -> Hashtbl.add rep l fl.(v)
      | Some fr -> if fr <> fl.(v) then ok := false)
    gl;
  let seen = Hashtbl.create n in
  Hashtbl.iter
    (fun _ fr -> if Hashtbl.mem seen fr then ok := false else Hashtbl.add seen fr ())
    rep;
  !ok

let test_connected_insert_only () =
  for seed = 0 to 4 do
    let rng = Prng.create (100 + seed) in
    let g = Gen.connected_gnp rng ~n:40 ~p:0.08 in
    let stream = Stream_gen.insert_only (Prng.split rng) g in
    let t = sketch_of_stream (Prng.split rng) ~n:40 stream in
    let forest = Agm_sketch.spanning_forest t in
    check_int "tree edges" 39 (List.length forest);
    check_bool "correct forest" true (forest_is_correct g forest)
  done

let test_multiple_components () =
  let rng = Prng.create 7 in
  let g = Gen.disjoint_cliques rng ~count:4 ~size:6 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let t = sketch_of_stream (Prng.split rng) ~n:24 stream in
  let forest = Agm_sketch.spanning_forest t in
  check_int "forest edges" (24 - 4) (List.length forest);
  check_bool "correct forest" true (forest_is_correct g forest)

let test_deletion_heavy () =
  (* Insert a complete graph, delete down to a sparse remnant: sampling the
     prefix fails here; linear sketches must not. *)
  for seed = 0 to 4 do
    let rng = Prng.create (200 + seed) in
    let n = 24 in
    let target = Gen.cycle n in
    let stream = Stream_gen.delete_down_to (Prng.split rng) ~from:(Gen.complete n) target in
    let t = sketch_of_stream (Prng.split rng) ~n stream in
    let forest = Agm_sketch.spanning_forest t in
    check_bool "correct forest after mass deletion" true (forest_is_correct target forest)
  done

let test_churn () =
  let rng = Prng.create 11 in
  let g = Gen.connected_gnp rng ~n:30 ~p:0.1 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:300 g in
  let t = sketch_of_stream (Prng.split rng) ~n:30 stream in
  check_bool "correct under churn" true (forest_is_correct g (Agm_sketch.spanning_forest t))

let test_empty_graph () =
  let t = Agm_sketch.create (Prng.create 1) ~n:8 ~params:(Agm_sketch.default_params ~n:8) in
  check_int "no edges, no forest" 0 (List.length (Agm_sketch.spanning_forest t))

let test_subtract_graph () =
  (* Sketch a graph, subtract a known subgraph, extract the forest of the rest. *)
  let n = 16 in
  let rng = Prng.create 13 in
  let cyc = Gen.cycle n in
  (* G = cycle + chords; subtract the chords, the cycle must remain spanned. *)
  let chords = Gen.gnm (Prng.split rng) ~n ~m:20 in
  let chords = Graph.subgraph chords ~keep:(fun u v -> not (Graph.mem_edge cyc u v)) in
  let g = Graph.union cyc chords in
  let t = sketch_of_stream (Prng.split rng) ~n (Stream_gen.insert_only (Prng.split rng) g) in
  Agm_sketch.subtract_graph t chords;
  let forest = Agm_sketch.spanning_forest t in
  check_bool "forest of the remainder" true (forest_is_correct cyc forest)

let test_supernode_contraction () =
  (* Two cliques with labels contracting each clique: the forest of the
     contracted graph is exactly the bridge. *)
  let n = 12 in
  let g = Gen.barbell 6 in
  let rng = Prng.create 17 in
  let t = sketch_of_stream (Prng.split rng) ~n (Stream_gen.insert_only (Prng.split rng) g) in
  let labels = Array.init n (fun v -> if v < 6 then 0 else 1) in
  let forest = Agm_sketch.spanning_forest ~labels t in
  match forest with
  | [ (a, b) ] ->
      check_bool "bridge endpoints" true ((min a b, max a b) = (5, 6))
  | other -> Alcotest.failf "expected exactly the bridge, got %d edges" (List.length other)

let test_merge_distributed () =
  (* Split a stream across three "servers", sketch independently with shared
     randomness, merge, and extract — the paper's distributed motivation. *)
  let n = 30 in
  let rng = Prng.create 19 in
  let g = Gen.connected_gnp rng ~n ~p:0.12 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
  let seed = Prng.create 424242 in
  let mk () = Agm_sketch.create (Prng.copy seed) ~n ~params:(Agm_sketch.default_params ~n) in
  let servers = [| mk (); mk (); mk () |] in
  Array.iteri
    (fun i u ->
      Agm_sketch.update servers.(i mod 3) ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  Agm_sketch.add servers.(0) servers.(1);
  Agm_sketch.add servers.(0) servers.(2);
  check_bool "merged sketch spans" true
    (forest_is_correct g (Agm_sketch.spanning_forest servers.(0)))

let test_wire_roundtrip () =
  (* Servers serialise their shard sketches; the coordinator rebuilds the
     structure from the shared seed, absorbs the bytes, merges, decodes. *)
  let n = 30 in
  let rng = Prng.create 23 in
  let g = Gen.connected_gnp rng ~n ~p:0.12 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:80 g in
  let seed = Prng.create 777 in
  let params = Agm_sketch.default_params ~n in
  let mk () = Agm_sketch.create (Prng.copy seed) ~n ~params in
  let a = mk () and b = mk () in
  Array.iteri
    (fun i u ->
      let target = if i mod 2 = 0 then a else b in
      Agm_sketch.update target ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  (* Ship both shards as bytes. *)
  let bytes_a = Agm_sketch.serialize a and bytes_b = Agm_sketch.serialize b in
  check_bool "wire is compact" true
    (String.length bytes_a < 8 * Agm_sketch.space_in_words a);
  let ra = mk () and rb = mk () in
  Agm_sketch.deserialize_into ra bytes_a;
  Agm_sketch.deserialize_into rb bytes_b;
  Agm_sketch.add ra rb;
  check_bool "forest from shipped sketches" true
    (forest_is_correct g (Agm_sketch.spanning_forest ra))

let test_wire_shape_mismatch () =
  let params n = Agm_sketch.default_params ~n in
  let small = Agm_sketch.create (Prng.create 1) ~n:8 ~params:(params 8) in
  let big = Agm_sketch.create (Prng.create 1) ~n:16 ~params:(params 16) in
  let bytes = Agm_sketch.serialize small in
  check_bool "mismatch detected" true
    (try
       Agm_sketch.deserialize_into big bytes;
       false
     with Failure _ -> true)

let prop_agm_success_rate =
  QCheck.Test.make ~name:"spanning forest correct on random graphs" ~count:30
    QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 5000) in
      let g = Gen.gnp rng ~n:20 ~p:0.15 in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:50 g in
      let t = sketch_of_stream (Prng.split rng) ~n:20 stream in
      forest_is_correct g (Agm_sketch.spanning_forest t))

let () =
  Alcotest.run "agm"
    [
      ( "spanning_forest",
        [
          Alcotest.test_case "connected insert-only" `Quick test_connected_insert_only;
          Alcotest.test_case "multiple components" `Quick test_multiple_components;
          Alcotest.test_case "deletion heavy" `Quick test_deletion_heavy;
          Alcotest.test_case "churn" `Quick test_churn;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "linearity",
        [
          Alcotest.test_case "subtract graph" `Quick test_subtract_graph;
          Alcotest.test_case "supernode contraction" `Quick test_supernode_contraction;
          Alcotest.test_case "distributed merge" `Quick test_merge_distributed;
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "wire shape mismatch" `Quick test_wire_shape_mismatch;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_agm_success_rate ]);
    ]
