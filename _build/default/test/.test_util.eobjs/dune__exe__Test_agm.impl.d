test/test_agm.ml: Agm_sketch Alcotest Array Components Ds_agm Ds_graph Ds_stream Ds_util Gen Graph Hashtbl List Prng QCheck QCheck_alcotest Stream_gen String Update
