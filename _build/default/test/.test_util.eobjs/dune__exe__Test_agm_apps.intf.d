test/test_agm_apps.mli:
