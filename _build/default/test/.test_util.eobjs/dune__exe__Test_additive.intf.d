test/test_additive.mli:
