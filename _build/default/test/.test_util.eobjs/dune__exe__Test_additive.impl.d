test/test_additive.ml: Additive_spanner Alcotest Components Ds_core Ds_graph Ds_stream Ds_util Gen Graph Ind_game List Prng QCheck QCheck_alcotest Stream_gen Stretch
