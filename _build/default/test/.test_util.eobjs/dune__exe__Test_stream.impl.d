test/test_stream.ml: Alcotest Array Ds_graph Ds_stream Ds_util Filename Fun Gen Graph List Prng QCheck QCheck_alcotest Stream_gen Stream_stats Sys Trace Update Weight_class
