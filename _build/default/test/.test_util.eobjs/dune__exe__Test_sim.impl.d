test/test_sim.ml: Alcotest Array Cluster_sim Ds_graph Ds_sim Ds_stream Ds_util Gen Prng QCheck QCheck_alcotest Stream_gen
