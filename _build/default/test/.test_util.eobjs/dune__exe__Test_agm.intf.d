test/test_agm.mli:
