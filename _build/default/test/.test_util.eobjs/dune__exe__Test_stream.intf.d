test/test_stream.mli:
