test/test_util.ml: Alcotest Array Ds_util Field Kwise List Prng QCheck QCheck_alcotest Space Stats String Wire
