test/test_graph.ml: Alcotest Array Bfs Components Diameter Dijkstra Ds_graph Ds_util Edge_index Gen Graph Graphviz Hashtbl List Prng QCheck QCheck_alcotest String Union_find Weighted_graph
