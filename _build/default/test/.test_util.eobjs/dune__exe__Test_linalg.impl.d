test/test_linalg.ml: Alcotest Array Bfs Cg Csr Ds_graph Ds_linalg Ds_util Gen Jacobi Laplacian List Matrix Power_iteration Printf Prng QCheck QCheck_alcotest Resistance Spectral Vec Weighted_graph
