open Ds_util
open Ds_graph
open Ds_stream
open Ds_agm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------- Min cut (offline verifier) -------------------- *)

let test_mincut_known () =
  check_int "barbell" 1 (Min_cut.edge_connectivity (Gen.barbell 8));
  check_int "cycle" 2 (Min_cut.edge_connectivity (Gen.cycle 12));
  check_int "complete" 9 (Min_cut.edge_connectivity (Gen.complete 10));
  check_int "path" 1 (Min_cut.edge_connectivity (Gen.path 10));
  check_int "disconnected" 0
    (Min_cut.edge_connectivity (Gen.disjoint_cliques (Prng.create 1) ~count:2 ~size:5))

let test_mincut_weighted () =
  (* Two triangles joined by a light edge. *)
  let g =
    Weighted_graph.of_edges 6
      [
        (0, 1, 5.0); (1, 2, 5.0); (0, 2, 5.0);
        (3, 4, 5.0); (4, 5, 5.0); (3, 5, 5.0);
        (2, 3, 0.5);
      ]
  in
  Alcotest.(check (float 1e-9)) "weighted bridge" 0.5 (Min_cut.stoer_wagner g)

let prop_mincut_le_min_degree =
  QCheck.Test.make ~name:"edge connectivity <= min degree" ~count:30 QCheck.small_nat
    (fun seed ->
      let g = Gen.connected_gnp (Prng.create (seed + 40)) ~n:20 ~p:0.25 in
      let min_deg = ref max_int in
      for v = 0 to 19 do
        min_deg := min !min_deg (Graph.degree g v)
      done;
      Min_cut.edge_connectivity g <= !min_deg)

(* -------------------- K-connectivity certificates -------------------- *)

let kconn_of_stream rng ~n ~k stream =
  let t = K_connectivity.create rng ~n ~k ~params:(Agm_sketch.default_params ~n) in
  Array.iter
    (fun u -> K_connectivity.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  t

let test_kconn_cycle () =
  (* A cycle is exactly 2-edge-connected. *)
  let g = Gen.cycle 24 in
  let rng = Prng.create 5 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
  let t2 = kconn_of_stream (Prng.split rng) ~n:24 ~k:2 stream in
  check_bool "cycle is 2-connected" true (K_connectivity.is_k_connected t2);
  let t3 = kconn_of_stream (Prng.split rng) ~n:24 ~k:3 stream in
  check_bool "cycle is not 3-connected" false (K_connectivity.is_k_connected t3)

let test_kconn_bridge () =
  let g = Gen.barbell 10 in
  let rng = Prng.create 6 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let t = kconn_of_stream (Prng.split rng) ~n:20 ~k:2 stream in
  check_bool "bridge blocks 2-connectivity" false (K_connectivity.is_k_connected t)

let test_kconn_certificate_preserves_cuts () =
  (* The certificate's edge connectivity equals min(k, lambda(G)). *)
  for seed = 0 to 4 do
    let rng = Prng.create (700 + seed) in
    let g = Gen.connected_gnp rng ~n:24 ~p:0.3 in
    let lambda = Min_cut.edge_connectivity g in
    let k = 3 in
    let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
    let t = kconn_of_stream (Prng.split rng) ~n:24 ~k stream in
    let cert = K_connectivity.certificate t in
    check_bool "certificate is a subgraph" true (Graph.is_subgraph ~sub:cert ~super:g);
    (* The certificate preserves every cut value up to k: lambda(cert) is at
       least min(k, lambda(G)), at most lambda(G), and equals lambda(G)
       whenever lambda(G) <= k. *)
    let lc = Min_cut.edge_connectivity cert in
    check_bool
      (Printf.sprintf "certificate lower bound (seed %d)" seed)
      true
      (lc >= min k lambda);
    check_bool (Printf.sprintf "certificate upper bound (seed %d)" seed) true (lc <= lambda);
    if lambda <= k then
      check_int (Printf.sprintf "exact below k (seed %d)" seed) lambda lc
  done

let test_kconn_certificate_size () =
  let g = Gen.complete 32 in
  let rng = Prng.create 8 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let t = kconn_of_stream (Prng.split rng) ~n:32 ~k:4 stream in
  let cert = K_connectivity.certificate t in
  check_bool "O(kn) edges" true (Graph.num_edges cert <= 4 * 32)

(* -------------------- Bipartiteness -------------------- *)

let bip_of_stream rng ~n stream =
  let t = Bipartiteness.create rng ~n ~params:(Agm_sketch.default_params ~n) in
  Array.iter
    (fun u -> Bipartiteness.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  Bipartiteness.test t

let test_bipartite_yes () =
  let g = Gen.random_bipartite (Prng.create 9) ~left:12 ~right:14 ~p:0.3 in
  let v = bip_of_stream (Prng.create 10) ~n:26 (Stream_gen.insert_only (Prng.create 11) g) in
  check_bool "bipartite detected" true v.Bipartiteness.is_bipartite

let test_bipartite_even_cycle () =
  let v =
    bip_of_stream (Prng.create 12) ~n:16 (Stream_gen.insert_only (Prng.create 13) (Gen.cycle 16))
  in
  check_bool "even cycle bipartite" true v.Bipartiteness.is_bipartite;
  check_int "one component" 1 v.Bipartiteness.components

let test_bipartite_odd_cycle () =
  let v =
    bip_of_stream (Prng.create 14) ~n:15 (Stream_gen.insert_only (Prng.create 15) (Gen.cycle 15))
  in
  check_bool "odd cycle not bipartite" false v.Bipartiteness.is_bipartite;
  check_int "no bipartite components" 0 v.Bipartiteness.bipartite_components

let test_bipartite_mixed_components () =
  (* One odd cycle + one even cycle, disjoint. *)
  let g = Graph.create 11 in
  for i = 0 to 4 do
    Graph.add_edge g i ((i + 1) mod 5)
  done;
  for i = 0 to 5 do
    Graph.add_edge g (5 + i) (5 + ((i + 1) mod 6))
  done;
  let v = bip_of_stream (Prng.create 16) ~n:11 (Stream_gen.insert_only (Prng.create 17) g) in
  check_int "two components" 2 v.Bipartiteness.components;
  check_int "one bipartite" 1 v.Bipartiteness.bipartite_components;
  check_bool "overall not bipartite" false v.Bipartiteness.is_bipartite

let test_bipartite_after_deletion () =
  (* An odd cycle becomes bipartite when one edge is deleted. *)
  let n = 9 in
  let t = Bipartiteness.create (Prng.create 18) ~n ~params:(Agm_sketch.default_params ~n) in
  for i = 0 to n - 1 do
    Bipartiteness.update t ~u:i ~v:((i + 1) mod n) ~delta:1
  done;
  let v1 = Bipartiteness.test t in
  check_bool "odd cycle" false v1.Bipartiteness.is_bipartite;
  Bipartiteness.update t ~u:0 ~v:1 ~delta:(-1);
  let v2 = Bipartiteness.test t in
  check_bool "path after deletion is bipartite" true v2.Bipartiteness.is_bipartite

let prop_bipartiteness_matches_offline =
  QCheck.Test.make ~name:"sketch bipartiteness matches 2-coloring" ~count:25 QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (seed + 800) in
      let g = Gen.gnp rng ~n:14 ~p:0.12 in
      (* offline: BFS 2-coloring per component *)
      let n = 14 in
      let color = Array.make n (-1) in
      let offline_bipartite = ref true in
      for s = 0 to n - 1 do
        if color.(s) = -1 then begin
          color.(s) <- 0;
          let q = Queue.create () in
          Queue.add s q;
          while not (Queue.is_empty q) do
            let u = Queue.take q in
            Graph.iter_neighbors g u (fun v ->
                if color.(v) = -1 then begin
                  color.(v) <- 1 - color.(u);
                  Queue.add v q
                end
                else if color.(v) = color.(u) then offline_bipartite := false)
          done
        end
      done;
      let v = bip_of_stream (Prng.split rng) ~n (Stream_gen.insert_only (Prng.split rng) g) in
      v.Bipartiteness.is_bipartite = !offline_bipartite)

(* -------------------- Approximate MST -------------------- *)

let mst_params gamma =
  {
    Mst.gamma;
    w_min = 1.0;
    w_max = 64.0;
    sketch = Agm_sketch.default_params ~n:32;
  }

let random_weighted rng ~n ~p =
  let g0 = Gen.connected_gnp rng ~n ~p in
  let wg = Weighted_graph.create n in
  Graph.iter_edges g0 (fun u v -> Weighted_graph.add_edge wg u v (1.0 +. Prng.float rng 60.0));
  wg

let test_mst_approximation () =
  for seed = 0 to 3 do
    let rng = Prng.create (900 + seed) in
    let wg = random_weighted (Prng.split rng) ~n:32 ~p:0.2 in
    let gamma = 0.25 in
    let t = Mst.create (Prng.split rng) ~n:32 ~params:(mst_params gamma) in
    List.iter
      (fun (u, v, w) -> Mst.update t ~u ~v ~weight:w ~delta:1)
      (Weighted_graph.edges wg);
    let approx = Mst.extract t in
    let exact = Mst_offline.kruskal wg in
    check_int "spanning size" (List.length exact) (List.length approx);
    let wa = Mst.forest_weight approx and we = Mst_offline.forest_weight exact in
    check_bool
      (Printf.sprintf "weight within (1+gamma)^2 both ways (seed %d: %.1f vs %.1f)" seed wa we)
      true
      (wa <= we *. (1.0 +. gamma) *. (1.0 +. gamma) +. 1e-6
      && wa >= we /. ((1.0 +. gamma) *. (1.0 +. gamma)) -. 1e-6);
    (* every output edge is a real edge *)
    List.iter
      (fun (u, v, _) -> check_bool "real edge" true (Weighted_graph.mem_edge wg u v))
      approx
  done

let test_mst_with_deletions () =
  (* Insert a heavy spanning structure plus light decoys, delete the light
     ones: the MST must be built from what remains. *)
  let n = 16 in
  let rng = Prng.create 20 in
  let t = Mst.create (Prng.split rng) ~n ~params:(mst_params 0.5) in
  (* final graph: cycle with weight 8 *)
  for i = 0 to n - 1 do
    Mst.update t ~u:i ~v:((i + 1) mod n) ~weight:8.0 ~delta:1
  done;
  (* decoys: light chords, inserted then deleted *)
  for i = 0 to n - 3 do
    Mst.update t ~u:i ~v:(i + 2) ~weight:1.0 ~delta:1
  done;
  for i = 0 to n - 3 do
    Mst.update t ~u:i ~v:(i + 2) ~weight:1.0 ~delta:(-1)
  done;
  let forest = Mst.extract t in
  check_int "spanning tree size" (n - 1) (List.length forest);
  List.iter
    (fun (u, v, w) ->
      check_bool "cycle edge" true ((u - v + n) mod n = 1 || (v - u + n) mod n = 1);
      check_bool "heavy class weight" true (w >= 6.0))
    forest

let test_mst_disconnected () =
  let n = 12 in
  let t = Mst.create (Prng.create 21) ~n ~params:(mst_params 0.5) in
  (* two triangles *)
  List.iter
    (fun (u, v) -> Mst.update t ~u ~v ~weight:2.0 ~delta:1)
    [ (0, 1); (1, 2); (0, 2); (6, 7); (7, 8); (6, 8) ];
  let forest = Mst.extract t in
  check_int "forest of two trees" 4 (List.length forest)

(* -------------------- Connectivity oracle -------------------- *)

let test_connectivity_oracle () =
  let n = 40 in
  let rng = Prng.create 950 in
  let g = Gen.gnp rng ~n ~p:0.06 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:150 g in
  let c = Connectivity.create (Prng.split rng) ~n ~params:(Agm_sketch.default_params ~n) in
  Array.iter
    (fun u -> Connectivity.update c ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  let a = Connectivity.freeze c in
  check_int "component count" (Components.count g) (Connectivity.components a);
  let labels = Components.labels g in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      check_bool "pairwise connectivity" (labels.(u) = labels.(v)) (Connectivity.connected a u v)
    done
  done;
  for v = 0 to n - 1 do
    check_bool "canonical label is a member" true
      (Connectivity.connected a v (Connectivity.component_of a v))
  done

let test_connectivity_refreeze () =
  let n = 6 in
  let c = Connectivity.create (Prng.create 951) ~n ~params:(Agm_sketch.default_params ~n) in
  Connectivity.update c ~u:0 ~v:1 ~delta:1;
  let a1 = Connectivity.freeze c in
  check_bool "before" true (Connectivity.connected a1 0 1);
  check_bool "before disjoint" false (Connectivity.connected a1 0 2);
  Connectivity.update c ~u:1 ~v:2 ~delta:1;
  let a2 = Connectivity.freeze c in
  check_bool "after" true (Connectivity.connected a2 0 2)

let () =
  Alcotest.run "agm_apps"
    [
      ( "min_cut",
        [
          Alcotest.test_case "known graphs" `Quick test_mincut_known;
          Alcotest.test_case "weighted" `Quick test_mincut_weighted;
        ] );
      ( "k_connectivity",
        [
          Alcotest.test_case "cycle" `Quick test_kconn_cycle;
          Alcotest.test_case "bridge" `Quick test_kconn_bridge;
          Alcotest.test_case "cut preservation" `Slow test_kconn_certificate_preserves_cuts;
          Alcotest.test_case "certificate size" `Quick test_kconn_certificate_size;
        ] );
      ( "bipartiteness",
        [
          Alcotest.test_case "bipartite yes" `Quick test_bipartite_yes;
          Alcotest.test_case "even cycle" `Quick test_bipartite_even_cycle;
          Alcotest.test_case "odd cycle" `Quick test_bipartite_odd_cycle;
          Alcotest.test_case "mixed components" `Quick test_bipartite_mixed_components;
          Alcotest.test_case "after deletion" `Quick test_bipartite_after_deletion;
        ] );
      ( "mst",
        [
          Alcotest.test_case "approximation" `Slow test_mst_approximation;
          Alcotest.test_case "with deletions" `Quick test_mst_with_deletions;
          Alcotest.test_case "disconnected" `Quick test_mst_disconnected;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "oracle" `Quick test_connectivity_oracle;
          Alcotest.test_case "refreeze" `Quick test_connectivity_refreeze;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mincut_le_min_degree; prop_bipartiteness_matches_offline ] );
    ]
