open Ds_util
open Ds_graph
open Ds_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let stretch_ok g spanner bound =
  let s = Stretch.multiplicative ~base:g ~spanner in
  s.Stretch.violations = 0 && s.Stretch.max <= float_of_int bound +. 1e-9

(* -------------------- Baswana–Sen -------------------- *)

let test_bs_stretch () =
  for seed = 0 to 4 do
    let g = Gen.connected_gnp (Prng.create (30 + seed)) ~n:80 ~p:0.1 in
    List.iter
      (fun k ->
        let h = Baswana_sen.run (Prng.create (100 + seed + (k * 17))) ~k g in
        check_bool "subgraph" true (Graph.is_subgraph ~sub:h ~super:g);
        check_bool
          (Printf.sprintf "BS stretch <= 2k-1 (k=%d seed=%d)" k seed)
          true
          (stretch_ok g h (Baswana_sen.stretch_bound ~k)))
      [ 1; 2; 3 ]
  done

let test_bs_k1_identity () =
  let g = Gen.connected_gnp (Prng.create 40) ~n:30 ~p:0.2 in
  check_bool "k=1 keeps everything" true (Graph.equal_edge_sets g (Baswana_sen.run (Prng.create 41) ~k:1 g))

let test_bs_compresses_clique () =
  let g = Gen.complete 64 in
  let h = Baswana_sen.run (Prng.create 42) ~k:3 g in
  check_bool "clique compressed" true (Graph.num_edges h < Graph.num_edges g / 3);
  check_bool "stretch" true (stretch_ok g h 5)

let test_bs_expected_size () =
  (* Expected size O(k n^{1+1/k}); allow a generous constant. *)
  let g = Gen.connected_gnp (Prng.create 43) ~n:100 ~p:0.4 in
  let h = Baswana_sen.run (Prng.create 44) ~k:2 g in
  let bound = 8.0 *. 2.0 *. (100.0 ** 1.5) in
  check_bool "size order" true (float_of_int (Graph.num_edges h) <= bound)

(* -------------------- Greedy -------------------- *)

let test_greedy_stretch () =
  for seed = 0 to 2 do
    let g = Gen.connected_gnp (Prng.create (50 + seed)) ~n:60 ~p:0.15 in
    List.iter
      (fun k ->
        let h = Greedy_spanner.run ~k g in
        check_bool "subgraph" true (Graph.is_subgraph ~sub:h ~super:g);
        check_bool "greedy stretch" true (stretch_ok g h ((2 * k) - 1)))
      [ 1; 2; 3 ]
  done

let test_greedy_k1_identity () =
  let g = Gen.connected_gnp (Prng.create 51) ~n:30 ~p:0.2 in
  check_bool "k=1 keeps everything" true (Graph.equal_edge_sets g (Greedy_spanner.run ~k:1 g))

let test_greedy_girth () =
  (* The greedy (2k-1)-spanner has girth > 2k: check for k = 2 that no
     4-cycles remain among spanner edges... verified via stretch instead:
     removing any spanner edge must increase its endpoints' distance above
     2k-1. This is the defining minimality property. *)
  let g = Gen.connected_gnp (Prng.create 52) ~n:40 ~p:0.3 in
  let k = 2 in
  let h = Greedy_spanner.run ~k g in
  Graph.iter_edges h (fun u v ->
      let h' = Graph.subgraph h ~keep:(fun a b -> not ((a, b) = (u, v) || (b, a) = (u, v))) in
      let d = Bfs.distance h' u v in
      check_bool "edge essential" true (d > (2 * k) - 1))

let test_greedy_weighted () =
  let rng = Prng.create 53 in
  let g0 = Gen.connected_gnp rng ~n:40 ~p:0.2 in
  let wg = Weighted_graph.create 40 in
  Graph.iter_edges g0 (fun u v -> Weighted_graph.add_edge wg u v (1.0 +. Prng.float rng 9.0));
  let h = Greedy_spanner.run_weighted ~k:2 wg in
  let s = Stretch.multiplicative_weighted ~base:wg ~spanner:h in
  check_int "no violations" 0 s.Stretch.violations;
  check_bool "weighted stretch <= 3" true (s.Stretch.max <= 3.0 +. 1e-9)

(* -------------------- Aingworth additive-2 baseline -------------------- *)

let test_aingworth_distortion () =
  for seed = 0 to 4 do
    let g = Gen.connected_gnp (Prng.create (60 + seed)) ~n:60 ~p:0.2 in
    let h = Aingworth.run g in
    check_bool "subgraph" true (Graph.is_subgraph ~sub:h ~super:g);
    let s = Stretch.additive ~base:g ~spanner:h () in
    check_int "no violations" 0 s.Stretch.violations;
    check_bool
      (Printf.sprintf "additive distortion <= 2 (seed %d, max %.0f)" seed s.Stretch.max)
      true (s.Stretch.max <= 2.0)
  done

let test_aingworth_compresses () =
  let g = Gen.complete 100 in
  let h = Aingworth.run g in
  check_bool "clique shrinks" true (Graph.num_edges h < Graph.num_edges g / 2);
  check_bool "within size bound" true
    (float_of_int (Graph.num_edges h) <= 2.0 *. Aingworth.size_bound ~n:100)

let test_aingworth_sparse_identity () =
  (* Everything is low-degree on a path: kept exactly. *)
  let g = Gen.path 30 in
  check_bool "path kept" true (Graph.equal_edge_sets g (Aingworth.run g))

(* -------------------- Weighted two-pass wrapper (Remark 14) ---------- *)

let test_weighted_spanner () =
  let rng = Prng.create 54 in
  let g0 = Gen.connected_gnp rng ~n:48 ~p:0.15 in
  let wg = Weighted_graph.create 48 in
  Graph.iter_edges g0 (fun u v ->
      Weighted_graph.add_edge wg u v (2.0 ** float_of_int (Prng.int rng 6)));
  let stream =
    Array.of_list
      (List.map
         (fun (u, v, w) -> { Ds_stream.Update.wu = u; wv = v; weight = w; wsign = Ds_stream.Update.Insert })
         (Weighted_graph.edges wg))
  in
  let gamma = 0.5 in
  let k = 2 in
  let r =
    Weighted_spanner.run (Prng.split rng) ~n:48
      ~params:(Two_pass_spanner.default_params ~k)
      ~gamma ~w_min:1.0 ~w_max:32.0 stream
  in
  check_bool "some classes ran" true (r.Weighted_spanner.classes >= 2);
  let s = Stretch.multiplicative_weighted ~base:wg ~spanner:r.Weighted_spanner.spanner in
  check_int "no violations" 0 s.Stretch.violations;
  check_bool "weighted stretch bound" true
    (s.Stretch.max <= Weighted_spanner.stretch_bound ~k ~gamma +. 1e-9)

let test_weighted_spanner_with_deletions () =
  (* The weighted model: weighted edges are inserted and later removed
     wholesale (footnote 1). Decoy weighted edges must vanish from every
     weight class. *)
  let rng = Prng.create 55 in
  let n = 40 in
  let g0 = Gen.connected_gnp rng ~n ~p:0.15 in
  let wg = Weighted_graph.create n in
  Graph.iter_edges g0 (fun u v ->
      Weighted_graph.add_edge wg u v (2.0 ** float_of_int (Prng.int rng 5)));
  let real =
    List.map
      (fun (u, v, w) -> { Ds_stream.Update.wu = u; wv = v; weight = w; wsign = Ds_stream.Update.Insert })
      (Weighted_graph.edges wg)
  in
  (* Decoys: weighted edges on pairs absent from the final graph, inserted
     then deleted with the same weight. *)
  let decoys = ref [] in
  let attempts = ref 0 in
  while List.length !decoys < 60 && !attempts < 2000 do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Weighted_graph.mem_edge wg u v)
       && not (List.exists (fun (a, b, _) -> (min a b, max a b) = (min u v, max u v)) !decoys)
    then decoys := (u, v, 2.0 ** float_of_int (Prng.int rng 5)) :: !decoys
  done;
  let decoy_ins =
    List.map
      (fun (u, v, w) -> { Ds_stream.Update.wu = u; wv = v; weight = w; wsign = Ds_stream.Update.Insert })
      !decoys
  in
  let decoy_del =
    List.map
      (fun (u, v, w) -> { Ds_stream.Update.wu = u; wv = v; weight = w; wsign = Ds_stream.Update.Delete })
      !decoys
  in
  let stream = Array.of_list (decoy_ins @ real @ decoy_del) in
  let gamma = 0.5 and k = 2 in
  let r =
    Weighted_spanner.run (Prng.split rng) ~n
      ~params:(Two_pass_spanner.default_params ~k)
      ~gamma ~w_min:1.0 ~w_max:16.0 stream
  in
  (* No decoy edge may survive. *)
  List.iter
    (fun (u, v, _) ->
      check_bool "decoy gone" false (Weighted_graph.mem_edge r.Weighted_spanner.spanner u v))
    !decoys;
  let s = Stretch.multiplicative_weighted ~base:wg ~spanner:r.Weighted_spanner.spanner in
  check_int "no violations" 0 s.Stretch.violations;
  check_bool "weighted stretch bound under churn" true
    (s.Stretch.max <= Weighted_spanner.stretch_bound ~k ~gamma +. 1e-9)

let prop_bs_stretch =
  QCheck.Test.make ~name:"baswana-sen respects 2k-1 on random graphs" ~count:20
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, k) ->
      let g = Gen.connected_gnp (Prng.create (seed + 600)) ~n:50 ~p:0.15 in
      let h = Baswana_sen.run (Prng.create (seed + 601)) ~k g in
      Graph.is_subgraph ~sub:h ~super:g && stretch_ok g h ((2 * k) - 1))

let () =
  Alcotest.run "baselines"
    [
      ( "baswana_sen",
        [
          Alcotest.test_case "stretch" `Slow test_bs_stretch;
          Alcotest.test_case "k=1 identity" `Quick test_bs_k1_identity;
          Alcotest.test_case "compresses clique" `Quick test_bs_compresses_clique;
          Alcotest.test_case "expected size" `Quick test_bs_expected_size;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "stretch" `Quick test_greedy_stretch;
          Alcotest.test_case "k=1 identity" `Quick test_greedy_k1_identity;
          Alcotest.test_case "edges essential" `Quick test_greedy_girth;
          Alcotest.test_case "weighted" `Quick test_greedy_weighted;
        ] );
      ( "aingworth",
        [
          Alcotest.test_case "distortion <= 2" `Quick test_aingworth_distortion;
          Alcotest.test_case "compresses" `Quick test_aingworth_compresses;
          Alcotest.test_case "sparse identity" `Quick test_aingworth_sparse_identity;
        ] );
      ( "weighted_spanner",
        [
          Alcotest.test_case "weight classes" `Slow test_weighted_spanner;
          Alcotest.test_case "weighted deletions" `Slow test_weighted_spanner_with_deletions;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bs_stretch ]);
    ]
