(* Boundary conditions: the smallest legal inputs, empty results, and
   parameters at the extremes of their ranges. Streaming algorithms break at
   boundaries more often than in the bulk. *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let two_pass ~n ~k stream =
  Two_pass_spanner.run (Prng.create 7) ~n ~params:(Two_pass_spanner.default_params ~k) stream

let test_single_edge () =
  let stream = [| Update.insert 0 1 |] in
  let r = two_pass ~n:2 ~k:2 stream in
  check_int "the edge is kept" 1 (Graph.num_edges r.Two_pass_spanner.spanner);
  check_bool "it is the right edge" true (Graph.mem_edge r.Two_pass_spanner.spanner 0 1)

let test_edge_inserted_and_deleted () =
  let stream = [| Update.insert 0 1; Update.delete 0 1 |] in
  let r = two_pass ~n:2 ~k:2 stream in
  check_int "nothing survives" 0 (Graph.num_edges r.Two_pass_spanner.spanner)

let test_triangle_all_k () =
  let g = Gen.complete 3 in
  let stream = Stream_gen.insert_only (Prng.create 1) g in
  List.iter
    (fun k ->
      let r = two_pass ~n:3 ~k stream in
      let s = Stretch.multiplicative ~base:g ~spanner:r.Two_pass_spanner.spanner in
      check_bool
        (Printf.sprintf "triangle k=%d" k)
        true
        (s.Stretch.violations = 0 && s.Stretch.max <= float_of_int (1 lsl k)))
    [ 1; 2; 3; 5 ]

let test_k_exceeds_log_n () =
  (* k far above log2 n: all center levels above 0 are usually empty; the
     algorithm must still produce a valid spanner. *)
  let g = Gen.connected_gnp (Prng.create 2) ~n:12 ~p:0.3 in
  let stream = Stream_gen.insert_only (Prng.create 3) g in
  let r = two_pass ~n:12 ~k:8 stream in
  let s = Stretch.multiplicative ~base:g ~spanner:r.Two_pass_spanner.spanner in
  check_int "still no violations" 0 s.Stretch.violations

let test_multiplicity_saturation () =
  (* One edge at multiplicity 50, partially deleted. *)
  let inserts = Array.make 50 (Update.insert 0 1) in
  let deletes = Array.make 49 (Update.delete 0 1) in
  let r = two_pass ~n:2 ~k:1 (Array.append inserts deletes) in
  check_bool "edge with residual multiplicity kept" true
    (Graph.mem_edge r.Two_pass_spanner.spanner 0 1)

let test_additive_small_n () =
  let g = Gen.complete 4 in
  let stream = Stream_gen.insert_only (Prng.create 4) g in
  let r =
    Additive_spanner.run (Prng.create 5) ~n:4
      ~params:(Additive_spanner.default_params ~n:4 ~d:2)
      stream
  in
  let s = Stretch.additive ~base:g ~spanner:r.Additive_spanner.spanner () in
  check_int "connected" 0 s.Stretch.violations

let test_additive_d_exceeds_n () =
  (* d > n: threshold above every possible degree, so everything is
     low-degree and the graph is kept exactly. *)
  let g = Gen.connected_gnp (Prng.create 6) ~n:16 ~p:0.3 in
  let stream = Stream_gen.insert_only (Prng.create 7) g in
  let r =
    Additive_spanner.run (Prng.create 8) ~n:16
      ~params:(Additive_spanner.default_params ~n:16 ~d:64)
      stream
  in
  check_bool "kept exactly" true (Graph.equal_edge_sets g r.Additive_spanner.spanner)

let test_empty_stream_everything () =
  let n = 8 in
  check_int "two-pass" 0 (Graph.num_edges (two_pass ~n ~k:2 [||]).Two_pass_spanner.spanner);
  let ra =
    Additive_spanner.run (Prng.create 9) ~n
      ~params:(Additive_spanner.default_params ~n ~d:2)
      [||]
  in
  check_int "additive" 0 (Graph.num_edges ra.Additive_spanner.spanner);
  let rm =
    Multipass_spanner.run (Prng.create 10) ~n ~params:(Multipass_spanner.default_params ~k:2) [||]
  in
  check_int "multipass" 0 (Graph.num_edges rm.Multipass_spanner.spanner);
  let rs =
    Sparsify.run (Prng.create 11) ~n ~params:(Sparsify.default_params ~k:2 ~eps:0.5 ~n) [||]
  in
  check_int "sparsifier" 0 (Weighted_graph.num_edges rs.Sparsify.sparsifier)

let test_star_graph_spanner () =
  (* A star: every edge is a bridge, so every spanner keeps all edges. *)
  let g = Gen.star 20 in
  let stream = Stream_gen.with_churn (Prng.create 12) ~decoys:40 g in
  List.iter
    (fun k ->
      let r = two_pass ~n:20 ~k stream in
      check_bool
        (Printf.sprintf "star kept whole at k=%d" k)
        true
        (Graph.equal_edge_sets g r.Two_pass_spanner.spanner))
    [ 1; 2; 3 ]

let test_two_components_two_pass () =
  let g = Gen.disjoint_cliques (Prng.create 13) ~count:2 ~size:5 in
  let stream = Stream_gen.insert_only (Prng.create 14) g in
  let r = two_pass ~n:10 ~k:2 stream in
  check_int "components preserved" 2 (Components.count r.Two_pass_spanner.spanner)

let test_oracle_disconnected_pair () =
  let stream = [| Update.insert 0 1; Update.insert 2 3 |] in
  let o = Distance_oracle.of_stream (Prng.create 15) ~n:4 ~k:2 stream in
  check_bool "infinite across components" true (Distance_oracle.query o 0 3 = infinity);
  Alcotest.(check (float 1e-9)) "connected pair" 1.0 (Distance_oracle.query o 0 1)

let () =
  Alcotest.run "edge_cases"
    [
      ( "two_pass",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "insert+delete" `Quick test_edge_inserted_and_deleted;
          Alcotest.test_case "triangle all k" `Quick test_triangle_all_k;
          Alcotest.test_case "k > log n" `Quick test_k_exceeds_log_n;
          Alcotest.test_case "multiplicity saturation" `Quick test_multiplicity_saturation;
          Alcotest.test_case "star graph" `Quick test_star_graph_spanner;
          Alcotest.test_case "two components" `Quick test_two_components_two_pass;
        ] );
      ( "others",
        [
          Alcotest.test_case "additive small n" `Quick test_additive_small_n;
          Alcotest.test_case "additive d > n" `Quick test_additive_d_exceeds_n;
          Alcotest.test_case "empty stream everywhere" `Quick test_empty_stream_everything;
          Alcotest.test_case "oracle disconnected" `Quick test_oracle_disconnected_pair;
        ] );
    ]
