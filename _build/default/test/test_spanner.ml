open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------- Clustering -------------------- *)

let test_centers_shape () =
  let c = Clustering.sample_centers (Prng.create 1) ~n:100 ~k:3 in
  check_int "levels" 3 (Array.length c);
  check_bool "level 0 all" true (Array.for_all (fun b -> b) c.(0));
  let count r = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 c.(r) in
  check_bool "densities decrease" true (count 1 >= count 2)

let test_clustering_k1 () =
  (* k = 1: every vertex is a level-0 terminal. *)
  let centers = Clustering.sample_centers (Prng.create 2) ~n:10 ~k:1 in
  let t =
    Clustering.build ~n:10 ~k:1 ~centers ~attach:(fun ~level:_ ~root:_ ~members:_ ->
        Alcotest.fail "attach must not be called for k = 1")
  in
  check_int "terminals" 10 (Array.length t.Clustering.terminals);
  check_bool "partition" true (Clustering.check_partition t)

let test_clustering_merges () =
  (* Hand-driven attach: all level-0 clusters attach to center 0. *)
  let n = 6 in
  let centers = [| Array.make n true; Array.init n (fun v -> v = 0) |] in
  let t =
    Clustering.build ~n ~k:2 ~centers ~attach:(fun ~level ~root ~members:_ ->
        check_int "only level 0 attaches" 0 level;
        Some (0, (root, 0)))
  in
  check_int "single terminal" 1 (Array.length t.Clustering.terminals);
  check_int "witnesses" n (List.length t.Clustering.witnesses);
  check_bool "partition" true (Clustering.check_partition t);
  let top = t.Clustering.terminals.(0) in
  check_int "terminal level" 1 top.Clustering.level;
  check_int "all members" n (List.length top.Clustering.members)

let test_clustering_rejects_non_center_parent () =
  let n = 4 in
  let centers = [| Array.make n true; Array.make n false |] in
  Alcotest.check_raises "bad parent"
    (Invalid_argument "Clustering.build: parent not a level+1 center") (fun () ->
      ignore
        (Clustering.build ~n ~k:2 ~centers ~attach:(fun ~level:_ ~root ~members:_ ->
             Some (1, (root, 1)))))

(* -------------------- Basic (offline) spanner -------------------- *)

let stretch_ok g spanner bound =
  let s = Stretch.multiplicative ~base:g ~spanner in
  s.Stretch.violations = 0 && s.Stretch.max <= float_of_int bound +. 1e-9

let test_basic_spanner_stretch () =
  for seed = 0 to 4 do
    let rng = Prng.create (10 + seed) in
    let g = Gen.connected_gnp rng ~n:80 ~p:0.08 in
    List.iter
      (fun k ->
        let { Basic_spanner.spanner; clustering } = Basic_spanner.run (Prng.split rng) ~k g in
        check_bool "subgraph" true (Graph.is_subgraph ~sub:spanner ~super:g);
        check_bool "partition" true (Clustering.check_partition clustering);
        check_bool
          (Printf.sprintf "stretch <= 2^%d (seed %d)" k seed)
          true
          (stretch_ok g spanner (1 lsl k)))
      [ 1; 2; 3 ]
  done

let test_basic_spanner_k1_keeps_all () =
  (* k = 1 keeps every edge: each vertex is its own terminal cluster, and
     phase 2 adds an edge to each outside neighbour = all edges. *)
  let g = Gen.connected_gnp (Prng.create 20) ~n:40 ~p:0.15 in
  let { Basic_spanner.spanner; _ } = Basic_spanner.run (Prng.create 21) ~k:1 g in
  check_bool "identical" true (Graph.equal_edge_sets spanner g)

let test_basic_spanner_dense_shrinks () =
  let g = Gen.complete 64 in
  let { Basic_spanner.spanner; _ } = Basic_spanner.run (Prng.create 22) ~k:3 g in
  check_bool "sparsifies the clique" true (Graph.num_edges spanner < Graph.num_edges g / 4);
  check_bool "stretch" true (stretch_ok g spanner 8)

let test_basic_spanner_disconnected () =
  let g = Gen.disjoint_cliques (Prng.create 23) ~count:3 ~size:10 in
  let { Basic_spanner.spanner; _ } = Basic_spanner.run (Prng.create 24) ~k:2 g in
  check_bool "stretch per component" true (stretch_ok g spanner 4);
  check_int "components preserved" 3 (Components.count spanner)

(* -------------------- Two-pass streaming spanner -------------------- *)

let run_streaming ?(decoys = 300) ~k ~seed g =
  let n = Graph.n g in
  let rng = Prng.create seed in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys g in
  Two_pass_spanner.run (Prng.split rng) ~n
    ~params:(Two_pass_spanner.default_params ~k)
    stream

let test_two_pass_stretch_bound () =
  List.iter
    (fun (k, seed) ->
      let g = Gen.connected_gnp (Prng.create seed) ~n:72 ~p:0.09 in
      let r = run_streaming ~k ~seed:(seed * 7) g in
      check_bool "subgraph" true (Graph.is_subgraph ~sub:r.Two_pass_spanner.spanner ~super:g);
      check_bool
        (Printf.sprintf "streaming stretch <= 2^%d" k)
        true
        (stretch_ok g r.Two_pass_spanner.spanner (1 lsl k)))
    [ (1, 31); (2, 32); (3, 33); (2, 34); (3, 35) ]

let test_two_pass_families () =
  let cases =
    [
      ("path", Gen.path 60, 3);
      ("cycle", Gen.cycle 60, 3);
      ("grid", Gen.grid 8 8, 3);
      ("clique", Gen.complete 40, 2);
      ("star", Gen.star 50, 2);
    ]
  in
  List.iter
    (fun (name, g, k) ->
      let r = run_streaming ~k ~seed:(Hashtbl.hash name) g in
      check_bool (name ^ " subgraph") true
        (Graph.is_subgraph ~sub:r.Two_pass_spanner.spanner ~super:g);
      check_bool (name ^ " stretch") true (stretch_ok g r.Two_pass_spanner.spanner (1 lsl k)))
    cases

let test_two_pass_heavy_deletion () =
  (* Insert K_n then delete down to a sparse graph; the sketches must track. *)
  let n = 48 in
  let target = Gen.connected_gnp (Prng.create 40) ~n ~p:0.08 in
  let stream =
    Stream_gen.delete_down_to (Prng.create 41) ~from:(Gen.complete n) target
  in
  let r =
    Two_pass_spanner.run (Prng.create 42) ~n
      ~params:(Two_pass_spanner.default_params ~k:2)
      stream
  in
  check_bool "subgraph of remnant" true
    (Graph.is_subgraph ~sub:r.Two_pass_spanner.spanner ~super:target);
  check_bool "stretch on remnant" true (stretch_ok target r.Two_pass_spanner.spanner 4)

let test_two_pass_multiplicities () =
  let g = Gen.connected_gnp (Prng.create 43) ~n:40 ~p:0.1 in
  let stream = Stream_gen.multiplicity_churn (Prng.create 44) ~copies:3 g in
  let r =
    Two_pass_spanner.run (Prng.create 45) ~n:40
      ~params:(Two_pass_spanner.default_params ~k:2)
      stream
  in
  check_bool "multigraph handled" true (stretch_ok g r.Two_pass_spanner.spanner 4)

let test_two_pass_empty_stream () =
  let r =
    Two_pass_spanner.run (Prng.create 46) ~n:10
      ~params:(Two_pass_spanner.default_params ~k:2)
      [||]
  in
  check_int "empty spanner" 0 (Graph.num_edges r.Two_pass_spanner.spanner)

let test_two_pass_matches_offline_semantics () =
  (* The streaming spanner emulates the offline algorithm: same size order,
     stretch bound, and it must recover at least a spanning structure per
     component. *)
  let g = Gen.connected_gnp (Prng.create 47) ~n:64 ~p:0.1 in
  let r = run_streaming ~k:3 ~seed:48 g in
  check_bool "connected spanner" true (Components.is_connected r.Two_pass_spanner.spanner);
  let bound = 4.0 *. Basic_spanner.size_bound ~n:64 ~k:3 in
  check_bool "size within Lemma 12 order" true
    (float_of_int (Graph.num_edges r.Two_pass_spanner.spanner) <= bound)

let test_two_pass_accessed_superset () =
  (* Augmented output (Claim 20): accessed edges contain the spanner and are
     all real edges of G. *)
  let g = Gen.connected_gnp (Prng.create 49) ~n:50 ~p:0.1 in
  let r = run_streaming ~k:2 ~seed:50 g in
  List.iter
    (fun (a, b) -> check_bool "accessed edge real" true (Graph.mem_edge g a b))
    r.Two_pass_spanner.accessed_edges;
  let accessed = Hashtbl.create 64 in
  List.iter
    (fun (a, b) -> Hashtbl.replace accessed (min a b, max a b) ())
    r.Two_pass_spanner.accessed_edges;
  Graph.iter_edges r.Two_pass_spanner.spanner (fun a b ->
      check_bool "spanner inside accessed" true (Hashtbl.mem accessed (a, b)))

let test_two_pass_diagnostics_clean () =
  let g = Gen.connected_gnp (Prng.create 51) ~n:64 ~p:0.1 in
  let r = run_streaming ~k:3 ~seed:52 g in
  let d = r.Two_pass_spanner.diagnostics in
  check_int "no table failures" 0 d.Two_pass_spanner.table_decode_failures;
  check_bool "space accounted" true (r.Two_pass_spanner.space_words > 0)

let prop_two_pass_stretch =
  QCheck.Test.make ~name:"two-pass spanner respects 2^k on random graphs+streams" ~count:15
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, k) ->
      let rng = Prng.create (seed + 900) in
      let g = Gen.connected_gnp rng ~n:40 ~p:0.12 in
      let r = run_streaming ~k ~seed:(seed + 901) ~decoys:150 g in
      Graph.is_subgraph ~sub:r.Two_pass_spanner.spanner ~super:g
      && stretch_ok g r.Two_pass_spanner.spanner (1 lsl k))

(* -------------------- Multi-pass (2k-1) streaming spanner ------------ *)

let run_multipass ?(decoys = 200) ~k ~seed g =
  let n = Graph.n g in
  let rng = Prng.create seed in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys g in
  Multipass_spanner.run (Prng.split rng) ~n ~params:(Multipass_spanner.default_params ~k) stream

let test_multipass_stretch () =
  List.iter
    (fun (k, seed) ->
      let g = Gen.connected_gnp (Prng.create seed) ~n:72 ~p:0.1 in
      let r = run_multipass ~k ~seed:(seed * 11) g in
      check_bool "subgraph" true (Graph.is_subgraph ~sub:r.Multipass_spanner.spanner ~super:g);
      check_int "pass count" k r.Multipass_spanner.passes;
      check_bool
        (Printf.sprintf "multipass stretch <= 2k-1 (k=%d)" k)
        true
        (stretch_ok g r.Multipass_spanner.spanner (Multipass_spanner.stretch_bound ~k)))
    [ (1, 81); (2, 82); (3, 83); (4, 84) ]

let test_multipass_k1_keeps_all () =
  let g = Gen.connected_gnp (Prng.create 85) ~n:40 ~p:0.15 in
  let r = run_multipass ~k:1 ~seed:86 g in
  (* One pass, one cluster per vertex: every edge is an inter-cluster edge
     and must be kept (stretch 1). *)
  check_bool "identical" true (Graph.equal_edge_sets g r.Multipass_spanner.spanner)

let test_multipass_deletion_heavy () =
  let n = 40 in
  let target = Gen.connected_gnp (Prng.create 87) ~n ~p:0.12 in
  let stream = Stream_gen.delete_down_to (Prng.create 88) ~from:(Gen.complete n) target in
  let r =
    Multipass_spanner.run (Prng.create 89) ~n ~params:(Multipass_spanner.default_params ~k:2)
      stream
  in
  check_bool "subgraph of remnant" true
    (Graph.is_subgraph ~sub:r.Multipass_spanner.spanner ~super:target);
  check_bool "stretch" true (stretch_ok target r.Multipass_spanner.spanner 3)

let test_multipass_vs_two_pass_tradeoff () =
  (* The paper's Section 1 comparison: more passes buy a better stretch at
     comparable space. Verify the qualitative claim on one graph. *)
  let g = Gen.connected_gnp (Prng.create 90) ~n:96 ~p:0.1 in
  let k = 3 in
  let mp = run_multipass ~k ~seed:91 g in
  let rng = Prng.create 92 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:200 g in
  let tp =
    Two_pass_spanner.run (Prng.split rng) ~n:96 ~params:(Two_pass_spanner.default_params ~k)
      stream
  in
  let s_mp = Stretch.multiplicative ~base:g ~spanner:mp.Multipass_spanner.spanner in
  let s_tp = Stretch.multiplicative ~base:g ~spanner:tp.Two_pass_spanner.spanner in
  check_bool "multipass uses more passes" true (mp.Multipass_spanner.passes > 2);
  check_bool "both respect their bounds" true
    (s_mp.Stretch.max <= float_of_int ((2 * k) - 1) && s_tp.Stretch.max <= float_of_int (1 lsl k))

(* -------------------- Distance oracle -------------------- *)

let test_oracle_unweighted () =
  let n = 64 in
  let rng = Prng.create 60 in
  let g = Gen.connected_gnp rng ~n ~p:0.08 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:300 g in
  let o = Distance_oracle.of_stream (Prng.split rng) ~n ~k:3 stream in
  Alcotest.(check (float 1e-9)) "stretch constant" 8.0 (Distance_oracle.stretch o);
  for u = 0 to 9 do
    for v = 10 to 19 do
      let exact = float_of_int (Bfs.distance g u v) in
      let est = Distance_oracle.query o u v in
      check_bool "lower bound" true (est >= exact -. 1e-9);
      check_bool "stretch bound" true (est <= (8.0 *. exact) +. 1e-9)
    done
  done;
  check_bool "reports space" true (Distance_oracle.space_words o > 0);
  check_bool "reports size" true (Distance_oracle.spanner_edges o > 0)

let test_oracle_weighted () =
  let n = 40 in
  let rng = Prng.create 61 in
  let g0 = Gen.connected_gnp rng ~n ~p:0.15 in
  let wg = Weighted_graph.create n in
  Graph.iter_edges g0 (fun u v ->
      Weighted_graph.add_edge wg u v (2.0 ** float_of_int (Prng.int rng 4)));
  let stream =
    Array.of_list
      (List.map
         (fun (u, v, w) -> { Update.wu = u; wv = v; weight = w; wsign = Update.Insert })
         (Weighted_graph.edges wg))
  in
  let gamma = 0.5 in
  let o =
    Distance_oracle.of_weighted_stream (Prng.split rng) ~n ~k:2 ~gamma ~w_min:1.0 ~w_max:8.0
      stream
  in
  let bound = Distance_oracle.stretch o in
  for u = 0 to 7 do
    for v = 8 to 15 do
      let exact = Dijkstra.distance wg u v in
      let est = Distance_oracle.query o u v in
      (* Rounded class weights can undershoot true weights by (1+gamma). *)
      check_bool "weighted lower bound" true (est >= (exact /. (1.0 +. gamma)) -. 1e-9);
      check_bool "weighted stretch" true (est <= (bound *. exact) +. 1e-9)
    done
  done

(* -------------------- Stretch evaluation itself -------------------- *)

let test_stretch_exact () =
  let g = Gen.cycle 8 in
  (* Remove one edge: that edge's endpoints are now at distance 7. *)
  let h = Graph.subgraph g ~keep:(fun u v -> not (u = 0 && v = 1) && not (u = 1 && v = 0)) in
  let s = Stretch.multiplicative ~base:g ~spanner:h in
  Alcotest.(check (float 1e-9)) "max stretch" 7.0 s.Stretch.max;
  check_int "no violations" 0 s.Stretch.violations

let test_stretch_violation_detected () =
  let g = Gen.path 4 in
  let h = Graph.create 4 in
  (* Empty spanner: every edge is a violation. *)
  let s = Stretch.multiplicative ~base:g ~spanner:h in
  check_int "violations" 3 s.Stretch.violations;
  check_bool "max infinite" true (s.Stretch.max = infinity)

let test_additive_exact () =
  let g = Gen.cycle 6 in
  let h = Graph.subgraph g ~keep:(fun u v -> not (u = 0 && v = 5) && not (u = 5 && v = 0)) in
  let s = Stretch.additive ~base:g ~spanner:h () in
  (* Pair (0,5): base distance 1, spanner distance 5: surplus 4. *)
  Alcotest.(check (float 1e-9)) "max surplus" 4.0 s.Stretch.max

let () =
  Alcotest.run "spanner"
    [
      ( "clustering",
        [
          Alcotest.test_case "centers shape" `Quick test_centers_shape;
          Alcotest.test_case "k=1" `Quick test_clustering_k1;
          Alcotest.test_case "merges" `Quick test_clustering_merges;
          Alcotest.test_case "rejects bad parent" `Quick test_clustering_rejects_non_center_parent;
        ] );
      ( "basic_spanner",
        [
          Alcotest.test_case "stretch bound" `Slow test_basic_spanner_stretch;
          Alcotest.test_case "k=1 keeps all" `Quick test_basic_spanner_k1_keeps_all;
          Alcotest.test_case "dense shrinks" `Quick test_basic_spanner_dense_shrinks;
          Alcotest.test_case "disconnected" `Quick test_basic_spanner_disconnected;
        ] );
      ( "two_pass",
        [
          Alcotest.test_case "stretch bound" `Slow test_two_pass_stretch_bound;
          Alcotest.test_case "graph families" `Slow test_two_pass_families;
          Alcotest.test_case "heavy deletion" `Quick test_two_pass_heavy_deletion;
          Alcotest.test_case "multiplicities" `Quick test_two_pass_multiplicities;
          Alcotest.test_case "empty stream" `Quick test_two_pass_empty_stream;
          Alcotest.test_case "offline semantics" `Quick test_two_pass_matches_offline_semantics;
          Alcotest.test_case "accessed superset" `Quick test_two_pass_accessed_superset;
          Alcotest.test_case "diagnostics clean" `Quick test_two_pass_diagnostics_clean;
        ] );
      ( "multipass",
        [
          Alcotest.test_case "stretch bound" `Slow test_multipass_stretch;
          Alcotest.test_case "k=1 keeps all" `Quick test_multipass_k1_keeps_all;
          Alcotest.test_case "heavy deletion" `Quick test_multipass_deletion_heavy;
          Alcotest.test_case "tradeoff vs two-pass" `Quick test_multipass_vs_two_pass_tradeoff;
        ] );
      ( "distance_oracle",
        [
          Alcotest.test_case "unweighted" `Quick test_oracle_unweighted;
          Alcotest.test_case "weighted" `Slow test_oracle_weighted;
        ] );
      ( "stretch_eval",
        [
          Alcotest.test_case "exact" `Quick test_stretch_exact;
          Alcotest.test_case "violation detected" `Quick test_stretch_violation_detected;
          Alcotest.test_case "additive exact" `Quick test_additive_exact;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_two_pass_stretch ]);
    ]
