open Ds_util
open Ds_graph
open Ds_stream

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_update_apply () =
  let g = Graph.create 4 in
  Update.apply g (Update.insert 0 1);
  Update.apply g (Update.insert 0 1);
  Update.apply g (Update.delete 0 1);
  check_int "multiplicity" 1 (Graph.multiplicity g 0 1);
  check_int "delta insert" 1 (Update.delta (Update.insert 0 1));
  check_int "delta delete" (-1) (Update.delta (Update.delete 0 1))

let test_insert_only () =
  let g = Gen.connected_gnp (Prng.create 1) ~n:30 ~p:0.1 in
  let s = Stream_gen.insert_only (Prng.create 2) g in
  check_int "length = edges" (Graph.num_edges g) (Array.length s);
  check_bool "valid" true (Update.is_valid ~n:30 s);
  check_bool "ends at g" true (Graph.equal_edge_sets g (Update.final_graph ~n:30 s))

let test_with_churn () =
  for seed = 0 to 9 do
    let rng = Prng.create seed in
    let g = Gen.connected_gnp rng ~n:25 ~p:0.1 in
    let s = Stream_gen.with_churn (Prng.split rng) ~decoys:80 g in
    check_bool "valid" true (Update.is_valid ~n:25 s);
    check_bool "ends at g" true (Graph.equal_edge_sets g (Update.final_graph ~n:25 s));
    check_bool "has deletions" true
      (Array.exists (fun u -> u.Update.sign = Update.Delete) s)
  done

let test_delete_down_to () =
  let from = Gen.complete 12 in
  let target = Gen.path 12 in
  let s = Stream_gen.delete_down_to (Prng.create 3) ~from target in
  check_bool "valid" true (Update.is_valid ~n:12 s);
  check_bool "ends at target" true
    (Graph.equal_edge_sets target (Update.final_graph ~n:12 s));
  check_int "length" (66 + (66 - 11)) (Array.length s)

let test_multiplicity_churn () =
  let g = Gen.cycle 8 in
  let s = Stream_gen.multiplicity_churn (Prng.create 4) ~copies:3 g in
  check_bool "valid" true (Update.is_valid ~n:8 s);
  let final = Update.final_graph ~n:8 s in
  check_bool "same edges" true (Graph.equal_edge_sets g final);
  Graph.iter_edges final (fun u v ->
      check_int "multiplicity 1 at end" 1 (Graph.multiplicity final u v))

let test_interleave_preserves_order () =
  let a = [| Update.insert 0 1; Update.insert 0 2 |] in
  let b = [| Update.insert 1 2 |] in
  let s = Stream_gen.interleave (Prng.create 5) a b in
  check_int "total" 3 (Array.length s);
  let pos u = ref (-1) |> fun r ->
    Array.iteri (fun i x -> if x = u then r := i) s;
    !r
  in
  check_bool "a order kept" true (pos a.(0) < pos a.(1))

let test_flapping () =
  let g = Gen.connected_gnp (Prng.create 6) ~n:20 ~p:0.15 in
  let s = Stream_gen.flapping (Prng.create 7) ~flaps:50 g in
  check_bool "valid" true (Update.is_valid ~n:20 s);
  let final = Update.final_graph ~n:20 s in
  check_bool "ends at g" true (Graph.equal_edge_sets g final);
  Graph.iter_edges final (fun u v ->
      check_int "multiplicity restored" 1 (Graph.multiplicity final u v));
  check_int "length" (Graph.num_edges g + 100) (Array.length s)

let test_sliding_window () =
  let rng = Prng.create 8 in
  let snaps = List.init 5 (fun i -> Gen.gnm (Prng.create (100 + i)) ~n:15 ~m:20) in
  let window = 2 in
  let s = Stream_gen.sliding_window (Prng.split rng) ~window snaps in
  check_bool "valid" true (Update.is_valid ~n:15 s);
  let final = Update.final_graph ~n:15 s in
  (* Final distinct edges = union of the last [window] snapshots. *)
  let expected =
    List.fold_left Graph.union (Graph.create 15)
      (List.filteri (fun i _ -> i >= List.length snaps - window) snaps)
  in
  check_bool "window union" true (Graph.equal_edge_sets expected final)

let test_sliding_window_size_mismatch () =
  Alcotest.check_raises "mismatched snapshots"
    (Invalid_argument "Stream_gen.sliding_window: snapshots must share the vertex set")
    (fun () ->
      ignore (Stream_gen.sliding_window (Prng.create 9) ~window:1 [ Gen.path 4; Gen.path 5 ]))

let prop_churn_valid =
  QCheck.Test.make ~name:"with_churn always yields a valid stream ending at g" ~count:50
    QCheck.(pair small_nat (int_range 0 100))
    (fun (seed, decoys) ->
      let rng = Prng.create (seed + 100) in
      let g = Gen.gnp rng ~n:15 ~p:0.2 in
      let s = Stream_gen.with_churn (Prng.split rng) ~decoys g in
      Update.is_valid ~n:15 s
      && Graph.equal_edge_sets g (Update.final_graph ~n:15 s))

(* -------------------- Stream statistics -------------------- *)

let test_stream_stats () =
  let n = 20 in
  let g = Gen.connected_gnp (Prng.create 30) ~n ~p:0.2 in
  let stream = Stream_gen.with_churn (Prng.create 31) ~decoys:40 g in
  let st = Stream_stats.create (Prng.create 32) ~n in
  Array.iter (Stream_stats.update st) stream;
  let s = Stream_stats.summary st in
  Alcotest.(check int) "updates" (Array.length stream) s.Stream_stats.updates;
  Alcotest.(check int) "inserts - deletes = live" (Graph.num_edges g)
    (s.Stream_stats.inserts - s.Stream_stats.deletes);
  Alcotest.(check int) "live multiplicity" (Graph.num_edges g) s.Stream_stats.live_multiplicity;
  check_bool "touched >= live" true (s.Stream_stats.distinct_touched >= Graph.num_edges g);
  (* F2 of a 0/1 vector equals F1. *)
  let f1 = float_of_int s.Stream_stats.live_multiplicity in
  check_bool "F2 ~ F1 for multiplicity-1 graphs" true
    (s.Stream_stats.f2_estimate >= 0.5 *. f1 && s.Stream_stats.f2_estimate <= 1.5 *. f1);
  check_bool "max vertex sane" true (s.Stream_stats.max_vertex < n)

(* -------------------- Trace I/O -------------------- *)

let test_trace_roundtrip_string () =
  let g = Gen.connected_gnp (Prng.create 20) ~n:15 ~p:0.2 in
  let s = Stream_gen.with_churn (Prng.create 21) ~decoys:30 g in
  let s' = Trace.of_string (Trace.to_string s) in
  Alcotest.(check int) "length" (Array.length s) (Array.length s');
  Array.iteri (fun i u -> check_bool "update equal" true (u = s'.(i))) s

let test_trace_roundtrip_file () =
  let g = Gen.cycle 10 in
  let s = Stream_gen.insert_only (Prng.create 22) g in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path s;
      let s' = Trace.load path in
      check_bool "file roundtrip" true (s = s'))

let test_trace_comments_and_blanks () =
  let s = Trace.of_string "# header\n\n+ 0 1\n- 0 1\n  \n+ 2 3\n" in
  Alcotest.(check int) "three updates" 3 (Array.length s);
  check_bool "delete parsed" true (s.(1) = Update.delete 0 1)

let test_trace_malformed () =
  check_bool "garbage rejected" true
    (try
       ignore (Trace.of_string "+ 0\n");
       false
     with Failure _ -> true);
  check_bool "bad sign rejected" true
    (try
       ignore (Trace.of_string "* 0 1\n");
       false
     with Failure _ -> true)

let test_trace_weighted_roundtrip () =
  let updates =
    [|
      { Update.wu = 0; wv = 1; weight = 2.5; wsign = Update.Insert };
      { Update.wu = 1; wv = 2; weight = 0.125; wsign = Update.Insert };
      { Update.wu = 0; wv = 1; weight = 2.5; wsign = Update.Delete };
    |]
  in
  let path = Filename.temp_file "wtrace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save_weighted path updates;
      check_bool "weighted roundtrip" true (Trace.load_weighted path = updates))

(* -------------------- Weight classes -------------------- *)

let test_weight_class_bounds () =
  let wc = Weight_class.create ~gamma:0.5 ~w_min:1.0 ~w_max:100.0 in
  check_bool "enough classes" true (Weight_class.num_classes wc >= 12);
  check_int "min class" 0 (Weight_class.class_of wc 1.0);
  check_int "clamp below" 0 (Weight_class.class_of wc 0.01);
  check_int "clamp above"
    (Weight_class.num_classes wc - 1)
    (Weight_class.class_of wc 1e9)

let test_weight_class_rounding () =
  let wc = Weight_class.create ~gamma:0.25 ~w_min:1.0 ~w_max:64.0 in
  (* Every representative is within (1 + gamma) of the weights it covers. *)
  let ws = [ 1.0; 1.7; 3.14; 10.0; 42.0; 63.9 ] in
  List.iter
    (fun w ->
      let r = Weight_class.representative wc (Weight_class.class_of wc w) in
      let ratio = if r > w then r /. w else w /. r in
      check_bool "rounding error bounded" true
        (ratio <= Weight_class.max_rounding_error wc +. 1e-9))
    ws

let test_weight_class_split () =
  let wc = Weight_class.create ~gamma:1.0 ~w_min:1.0 ~w_max:8.0 in
  let stream =
    [|
      { Update.wu = 0; wv = 1; weight = 1.0; wsign = Update.Insert };
      { Update.wu = 1; wv = 2; weight = 8.0; wsign = Update.Insert };
      { Update.wu = 0; wv = 1; weight = 1.0; wsign = Update.Delete };
    |]
  in
  let classes = Weight_class.split wc stream in
  check_int "class count" (Weight_class.num_classes wc) (Array.length classes);
  check_int "light class got insert+delete" 2 (Array.length classes.(0));
  let heavy = Weight_class.class_of wc 8.0 in
  check_int "heavy class got one" 1 (Array.length classes.(heavy));
  (* Each class stream is itself valid. *)
  Array.iter (fun s -> check_bool "class stream valid" true (Update.is_valid ~n:3 s)) classes

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_churn_valid ]

let () =
  Alcotest.run "stream"
    [
      ( "updates",
        [
          Alcotest.test_case "apply" `Quick test_update_apply;
          Alcotest.test_case "insert only" `Quick test_insert_only;
          Alcotest.test_case "with churn" `Quick test_with_churn;
          Alcotest.test_case "delete down to" `Quick test_delete_down_to;
          Alcotest.test_case "multiplicity churn" `Quick test_multiplicity_churn;
          Alcotest.test_case "interleave order" `Quick test_interleave_preserves_order;
          Alcotest.test_case "flapping" `Quick test_flapping;
          Alcotest.test_case "sliding window" `Quick test_sliding_window;
          Alcotest.test_case "sliding window mismatch" `Quick test_sliding_window_size_mismatch;
        ] );
      ("stats", [ Alcotest.test_case "summary" `Quick test_stream_stats ]);
      ( "trace",
        [
          Alcotest.test_case "string roundtrip" `Quick test_trace_roundtrip_string;
          Alcotest.test_case "file roundtrip" `Quick test_trace_roundtrip_file;
          Alcotest.test_case "comments/blanks" `Quick test_trace_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick test_trace_malformed;
          Alcotest.test_case "weighted roundtrip" `Quick test_trace_weighted_roundtrip;
        ] );
      ( "weight_classes",
        [
          Alcotest.test_case "bounds" `Quick test_weight_class_bounds;
          Alcotest.test_case "rounding" `Quick test_weight_class_rounding;
          Alcotest.test_case "split" `Quick test_weight_class_split;
        ] );
      ("properties", qcheck_cases);
    ]
