open Ds_util
open Ds_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------- Edge_index -------------------- *)

let test_edge_index_roundtrip () =
  let n = 37 in
  Edge_index.iter_pairs ~n (fun u v ->
      let idx = Edge_index.encode ~n u v in
      check_bool "in range" true (idx >= 0 && idx < Edge_index.dim n);
      Alcotest.(check (pair int int)) "roundtrip" (u, v) (Edge_index.decode ~n idx))

let test_edge_index_symmetric () =
  let n = 10 in
  check_int "order independent" (Edge_index.encode ~n 3 7) (Edge_index.encode ~n 7 3)

let test_edge_index_bijective () =
  let n = 25 in
  let seen = Hashtbl.create 300 in
  Edge_index.iter_pairs ~n (fun u v ->
      let idx = Edge_index.encode ~n u v in
      check_bool "no collision" false (Hashtbl.mem seen idx);
      Hashtbl.add seen idx ());
  check_int "covers the space" (Edge_index.dim n) (Hashtbl.length seen)

let prop_edge_index =
  QCheck.Test.make ~name:"edge_index roundtrips on random pairs" ~count:300
    QCheck.(triple (int_range 2 300) small_nat small_nat)
    (fun (n, a, b) ->
      let u = a mod n and v = b mod n in
      QCheck.assume (u <> v);
      Edge_index.decode ~n (Edge_index.encode ~n u v) = (min u v, max u v))

(* -------------------- Graph -------------------- *)

let test_graph_basic () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  check_bool "mem" true (Graph.mem_edge g 1 0);
  check_bool "not mem" false (Graph.mem_edge g 0 2);
  check_int "degree" 2 (Graph.degree g 1);
  check_int "edges" 2 (Graph.num_edges g)

let test_graph_multiplicity () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 1;
  check_int "multiplicity 2" 2 (Graph.multiplicity g 0 1);
  check_int "distinct edges" 1 (Graph.num_edges g);
  Graph.remove_edge g 0 1;
  check_bool "still present" true (Graph.mem_edge g 0 1);
  Graph.remove_edge g 0 1;
  check_bool "gone" false (Graph.mem_edge g 0 1);
  Alcotest.check_raises "negative multiplicity rejected"
    (Invalid_argument "Graph.remove_edge: multiplicity already zero") (fun () ->
      Graph.remove_edge g 0 1)

let test_graph_self_loop_rejected () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph: self-loop") (fun () ->
      Graph.add_edge g 1 1)

let test_graph_subgraph_union () =
  let g = Gen.complete 6 in
  let h = Graph.subgraph g ~keep:(fun u v -> (u + v) mod 2 = 0) in
  check_bool "subgraph" true (Graph.is_subgraph ~sub:h ~super:g);
  let u = Graph.union h g in
  check_bool "union equals super" true (Graph.equal_edge_sets u g)

(* -------------------- BFS -------------------- *)

let test_bfs_path () =
  let g = Gen.path 10 in
  let d = Bfs.distances g ~source:0 in
  for i = 0 to 9 do
    check_int "path distance" i d.(i)
  done

let test_bfs_disconnected () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 2 3;
  check_int "unreachable" max_int (Bfs.distance g 0 3)

let test_bfs_capped () =
  let g = Gen.path 10 in
  let d = Bfs.distances_capped g ~source:0 ~cap:3 in
  check_int "within cap" 3 d.(3);
  check_int "beyond cap" max_int d.(7)

let test_bfs_grid () =
  let g = Gen.grid 5 7 in
  (* Manhattan distance on a grid. *)
  let d = Bfs.distances g ~source:0 in
  check_int "corner to corner" (4 + 6) d.((5 * 7) - 1)

let test_eccentricity () =
  check_int "path ecc" 9 (Bfs.eccentricity (Gen.path 10) 0);
  check_int "cycle ecc" 5 (Bfs.eccentricity (Gen.cycle 10) 0)

(* -------------------- Union_find / Components -------------------- *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check_bool "fresh distinct" false (Union_find.same uf 0 1);
  check_bool "union" true (Union_find.union uf 0 1);
  check_bool "redundant union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  check_bool "transitive" true (Union_find.same uf 0 3);
  check_int "classes" 3 (Union_find.num_classes uf)

let test_components () =
  let g = Graph.create 7 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 3 4;
  check_int "count" 4 (Components.count g);
  check_bool "same" true (Components.same_component g 0 2);
  check_bool "different" false (Components.same_component g 0 3);
  check_bool "not connected" false (Components.is_connected g);
  check_bool "connected path" true (Components.is_connected (Gen.path 5))

let test_spanning_forest () =
  let g = Gen.connected_gnp (Prng.create 3) ~n:40 ~p:0.1 in
  let f = Components.spanning_forest g in
  check_int "tree size" 39 (List.length f);
  let tree = Graph.of_edges 40 (List.map (fun (u, v) -> (u, v)) f) in
  check_bool "forest edges from g" true (Graph.is_subgraph ~sub:tree ~super:g);
  check_bool "spans" true (Components.is_connected tree)

(* -------------------- Generators -------------------- *)

let test_gen_gnm () =
  let g = Gen.gnm (Prng.create 1) ~n:30 ~m:100 in
  check_int "edge count" 100 (Graph.num_edges g)

let test_gen_complete () =
  let g = Gen.complete 9 in
  check_int "edges" 36 (Graph.num_edges g);
  check_int "degree" 8 (Graph.degree g 0)

let test_gen_barbell () =
  let g = Gen.barbell 5 in
  check_int "vertices" 10 (Graph.n g);
  check_int "edges" ((2 * 10) + 1) (Graph.num_edges g);
  check_bool "bridge" true (Graph.mem_edge g 4 5);
  check_bool "connected" true (Components.is_connected g)

let test_gen_lollipop () =
  let g = Gen.lollipop 4 6 in
  check_int "vertices" 10 (Graph.n g);
  check_bool "connected" true (Components.is_connected g);
  check_int "far end distance" 7 (Bfs.distance g 0 9)

let test_gen_disjoint_cliques () =
  let g = Gen.disjoint_cliques (Prng.create 2) ~count:4 ~size:5 in
  check_int "components" 4 (Components.count g);
  check_int "edges" (4 * 10) (Graph.num_edges g)

let test_gen_preferential () =
  let g = Gen.preferential_attachment (Prng.create 4) ~n:100 ~m:3 in
  check_bool "connected" true (Components.is_connected g);
  check_bool "enough edges" true (Graph.num_edges g >= 3 * (100 - 4));
  (* Heavy tail: some vertex much above the minimum degree. *)
  let dmax = ref 0 in
  for v = 0 to 99 do
    dmax := max !dmax (Graph.degree g v)
  done;
  check_bool "hub exists" true (!dmax >= 10)

let test_gen_connected_gnp () =
  for seed = 0 to 4 do
    let g = Gen.connected_gnp (Prng.create seed) ~n:50 ~p:0.02 in
    check_bool "always connected" true (Components.is_connected g)
  done

let test_gen_watts_strogatz () =
  for seed = 0 to 3 do
    let g = Gen.watts_strogatz (Prng.create seed) ~n:60 ~k:3 ~beta:0.2 in
    check_int "vertices" 60 (Graph.n g);
    check_bool "connected (ring kept)" true (Components.is_connected g);
    (* Edge count is conserved by rewiring. *)
    check_int "edges" (60 * 3) (Graph.num_edges g)
  done;
  Alcotest.check_raises "k too large" (Invalid_argument "Gen.watts_strogatz: need 1 <= k < n/2")
    (fun () -> ignore (Gen.watts_strogatz (Prng.create 1) ~n:10 ~k:5 ~beta:0.1))

let test_gen_bipartite () =
  let g = Gen.random_bipartite (Prng.create 5) ~left:10 ~right:15 ~p:0.5 in
  Graph.iter_edges g (fun u v ->
      check_bool "crosses sides" true (min u v < 10 && max u v >= 10))

(* -------------------- Weighted graphs / Dijkstra -------------------- *)

let test_weighted_basic () =
  let g = Weighted_graph.create 4 in
  Weighted_graph.add_edge g 0 1 2.5;
  Alcotest.(check (option (float 1e-9))) "weight" (Some 2.5) (Weighted_graph.weight g 1 0);
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Weighted_graph.add_edge: edge already present") (fun () ->
      Weighted_graph.add_edge g 0 1 3.0);
  Weighted_graph.remove_edge g 0 1;
  check_bool "removed" false (Weighted_graph.mem_edge g 0 1)

let test_weighted_range () =
  let g =
    Weighted_graph.of_edges 4 [ (0, 1, 0.5); (1, 2, 8.0); (2, 3, 2.0) ]
  in
  let lo, hi = Weighted_graph.weight_range g in
  Alcotest.(check (float 1e-9)) "min" 0.5 lo;
  Alcotest.(check (float 1e-9)) "max" 8.0 hi;
  Alcotest.(check (float 1e-9)) "total" 10.5 (Weighted_graph.total_weight g)

let test_dijkstra_matches_bfs () =
  let g = Gen.connected_gnp (Prng.create 6) ~n:40 ~p:0.08 in
  let wg = Weighted_graph.of_graph g in
  let d_bfs = Bfs.distances g ~source:0 in
  let d_dij = Dijkstra.distances wg ~source:0 in
  for v = 0 to 39 do
    Alcotest.(check (float 1e-9)) "unit weights agree" (float_of_int d_bfs.(v)) d_dij.(v)
  done

let test_dijkstra_weighted () =
  (* Triangle where the direct edge is heavier than the two-hop route. *)
  let g = Weighted_graph.of_edges 3 [ (0, 2, 10.0); (0, 1, 1.0); (1, 2, 2.0) ] in
  Alcotest.(check (float 1e-9)) "takes detour" 3.0 (Dijkstra.distance g 0 2)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra satisfies the triangle inequality" ~count:50
    QCheck.small_nat
    (fun seed ->
      let g = Gen.connected_gnp (Prng.create seed) ~n:20 ~p:0.15 in
      let wg = Weighted_graph.of_graph g in
      let d = Array.init 20 (fun s -> Dijkstra.distances wg ~source:s) in
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if d.(a).(b) > d.(a).(c) +. d.(c).(b) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

(* -------------------- Diameter -------------------- *)

let test_diameter_known () =
  check_int "path" 9 (Diameter.exact (Gen.path 10));
  check_int "cycle" 5 (Diameter.exact (Gen.cycle 10));
  check_int "clique" 1 (Diameter.exact (Gen.complete 8));
  check_int "star" 2 (Diameter.exact (Gen.star 9));
  check_int "grid" 8 (Diameter.exact (Gen.grid 5 5))

let test_double_sweep () =
  (* Lower bound everywhere, exact on trees/paths. *)
  check_int "path exact" 9 (Diameter.double_sweep (Gen.path 10));
  for seed = 0 to 4 do
    let g = Gen.connected_gnp (Prng.create (70 + seed)) ~n:40 ~p:0.08 in
    check_bool "lower bound" true (Diameter.double_sweep g <= Diameter.exact g)
  done

let test_radius () =
  check_int "path radius" 4 (Diameter.radius (Gen.path 9));
  check_int "star radius" 1 (Diameter.radius (Gen.star 9))

(* -------------------- Graphviz -------------------- *)

let test_graphviz () =
  let g = Gen.path 4 in
  let dot = Graphviz.to_dot ~highlight:(Gen.path 2) g in
  check_bool "has header" true (String.length dot > 10 && String.sub dot 0 5 = "graph");
  check_bool "edge present" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains dot "0 -- 1" && contains dot "penwidth");
  let wdot = Graphviz.weighted_to_dot (Weighted_graph.of_graph g) in
  check_bool "weighted label" true (String.length wdot > 10)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_edge_index; prop_dijkstra_triangle ]

let () =
  Alcotest.run "graph"
    [
      ( "edge_index",
        [
          Alcotest.test_case "roundtrip" `Quick test_edge_index_roundtrip;
          Alcotest.test_case "symmetric" `Quick test_edge_index_symmetric;
          Alcotest.test_case "bijective" `Quick test_edge_index_bijective;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "multiplicity" `Quick test_graph_multiplicity;
          Alcotest.test_case "self loop" `Quick test_graph_self_loop_rejected;
          Alcotest.test_case "subgraph/union" `Quick test_graph_subgraph_union;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path" `Quick test_bfs_path;
          Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "capped" `Quick test_bfs_capped;
          Alcotest.test_case "grid" `Quick test_bfs_grid;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "union_find" `Quick test_union_find;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "spanning forest" `Quick test_spanning_forest;
        ] );
      ( "generators",
        [
          Alcotest.test_case "gnm" `Quick test_gen_gnm;
          Alcotest.test_case "complete" `Quick test_gen_complete;
          Alcotest.test_case "barbell" `Quick test_gen_barbell;
          Alcotest.test_case "lollipop" `Quick test_gen_lollipop;
          Alcotest.test_case "disjoint cliques" `Quick test_gen_disjoint_cliques;
          Alcotest.test_case "preferential attachment" `Quick test_gen_preferential;
          Alcotest.test_case "connected gnp" `Quick test_gen_connected_gnp;
          Alcotest.test_case "watts-strogatz" `Quick test_gen_watts_strogatz;
          Alcotest.test_case "bipartite" `Quick test_gen_bipartite;
        ] );
      ( "diameter",
        [
          Alcotest.test_case "known graphs" `Quick test_diameter_known;
          Alcotest.test_case "double sweep" `Quick test_double_sweep;
          Alcotest.test_case "radius" `Quick test_radius;
        ] );
      ("graphviz", [ Alcotest.test_case "dot output" `Quick test_graphviz ]);
      ( "weighted",
        [
          Alcotest.test_case "basic" `Quick test_weighted_basic;
          Alcotest.test_case "range" `Quick test_weighted_range;
          Alcotest.test_case "dijkstra vs bfs" `Quick test_dijkstra_matches_bfs;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
        ] );
      ("properties", qcheck_cases);
    ]
