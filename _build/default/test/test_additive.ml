open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_additive ?(decoys = 200) ~d ~seed g =
  let n = Graph.n g in
  let rng = Prng.create seed in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys g in
  Additive_spanner.run (Prng.split rng) ~n
    ~params:(Additive_spanner.default_params ~n ~d)
    stream

let test_subgraph_and_distortion () =
  List.iter
    (fun (seed, d, p) ->
      let g = Gen.connected_gnp (Prng.create seed) ~n:80 ~p in
      let r = run_additive ~d ~seed:(seed * 3) g in
      check_bool "subgraph" true (Graph.is_subgraph ~sub:r.Additive_spanner.spanner ~super:g);
      let s = Stretch.additive ~base:g ~spanner:r.Additive_spanner.spanner () in
      check_int "no violations" 0 s.Stretch.violations;
      check_bool "surplus within bound" true
        (s.Stretch.max <= Additive_spanner.distortion_bound ~n:80 ~d))
    [ (1, 2, 0.1); (2, 4, 0.2); (3, 4, 0.4); (4, 8, 0.3) ]

let test_dense_compresses () =
  let g = Gen.complete 64 in
  let r = run_additive ~d:8 ~seed:10 g in
  check_bool "clique compressed" true
    (Graph.num_edges r.Additive_spanner.spanner < Graph.num_edges g / 4);
  let s = Stretch.additive ~base:g ~spanner:r.Additive_spanner.spanner () in
  check_int "still connected" 0 s.Stretch.violations

let test_low_degree_exact () =
  (* A path is all low-degree: the spanner is the whole graph, distortion 0. *)
  let g = Gen.path 64 in
  let r = run_additive ~d:4 ~seed:11 g in
  check_bool "path kept exactly" true (Graph.equal_edge_sets g r.Additive_spanner.spanner);
  check_int "all classified low" 64 r.Additive_spanner.diagnostics.Additive_spanner.low_degree

let test_heavy_deletion () =
  let n = 48 in
  let target = Gen.connected_gnp (Prng.create 12) ~n ~p:0.1 in
  let stream = Stream_gen.delete_down_to (Prng.create 13) ~from:(Gen.complete n) target in
  let r =
    Additive_spanner.run (Prng.create 14) ~n
      ~params:(Additive_spanner.default_params ~n ~d:4)
      stream
  in
  check_bool "subgraph of remnant" true
    (Graph.is_subgraph ~sub:r.Additive_spanner.spanner ~super:target);
  let s = Stretch.additive ~base:target ~spanner:r.Additive_spanner.spanner () in
  check_int "no violations after deletions" 0 s.Stretch.violations

let test_disconnected_preserved () =
  let g = Gen.disjoint_cliques (Prng.create 15) ~count:3 ~size:12 in
  let r = run_additive ~d:4 ~seed:16 g in
  check_int "components preserved" 3 (Components.count r.Additive_spanner.spanner)

let test_space_scales_with_d () =
  let g = Gen.connected_gnp (Prng.create 17) ~n:64 ~p:0.2 in
  let r2 = run_additive ~d:2 ~seed:18 g in
  let r8 = run_additive ~d:8 ~seed:18 g in
  check_bool "space grows with d" true
    (r8.Additive_spanner.space_words > r2.Additive_spanner.space_words)

let prop_additive =
  QCheck.Test.make ~name:"additive spanner surplus bounded on random graphs" ~count:10
    QCheck.(pair small_nat (int_range 2 6))
    (fun (seed, d) ->
      let g = Gen.connected_gnp (Prng.create (seed + 70)) ~n:48 ~p:0.15 in
      let r = run_additive ~d ~seed:(seed + 71) ~decoys:100 g in
      let s = Stretch.additive ~base:g ~spanner:r.Additive_spanner.spanner () in
      Graph.is_subgraph ~sub:r.Additive_spanner.spanner ~super:g
      && s.Stretch.violations = 0
      && s.Stretch.max <= Additive_spanner.distortion_bound ~n:48 ~d)

(* -------------------- IND game (Theorem 4) -------------------- *)

let test_ind_high_budget_wins () =
  let o =
    Ind_game.play (Prng.create 20) ~n:24 ~d:6 ~algo_budget:8 ~trials:20 ()
  in
  check_bool "high budget succeeds mostly" true (Ind_game.success_rate o >= 0.85)

let test_ind_budget_monotone () =
  (* Success with a starved budget must not beat a generous one by much. *)
  let lo = Ind_game.play (Prng.create 21) ~n:24 ~d:8 ~algo_budget:1 ~trials:25 () in
  let hi = Ind_game.play (Prng.create 22) ~n:24 ~d:8 ~algo_budget:10 ~trials:25 () in
  check_bool "space monotone" true (hi.Ind_game.mean_space_words > lo.Ind_game.mean_space_words);
  check_bool "budget helps" true
    (Ind_game.success_rate hi +. 0.15 >= Ind_game.success_rate lo)

let () =
  Alcotest.run "additive"
    [
      ( "additive_spanner",
        [
          Alcotest.test_case "distortion bound" `Slow test_subgraph_and_distortion;
          Alcotest.test_case "dense compresses" `Quick test_dense_compresses;
          Alcotest.test_case "low degree exact" `Quick test_low_degree_exact;
          Alcotest.test_case "heavy deletion" `Quick test_heavy_deletion;
          Alcotest.test_case "disconnected" `Quick test_disconnected_preserved;
          Alcotest.test_case "space scales" `Quick test_space_scales_with_d;
        ] );
      ( "ind_game",
        [
          Alcotest.test_case "high budget wins" `Slow test_ind_high_budget_wins;
          Alcotest.test_case "budget monotone" `Slow test_ind_budget_monotone;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_additive ]);
    ]
