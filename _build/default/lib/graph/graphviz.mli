(** Graphviz (dot) export for eyeballing graphs, spanners, and certificates.
    Optional edge highlighting renders a subgraph (e.g. a spanner) in bold
    over its base graph. *)

val to_dot : ?highlight:Graph.t -> ?name:string -> Graph.t -> string
(** Undirected dot source. Edges also present in [highlight] are bold. *)

val weighted_to_dot : ?name:string -> Weighted_graph.t -> string
(** Edges labelled with their weights. *)

val save : string -> string -> unit
(** [save path dot_source]. *)
