(** Deterministic (seeded) graph generators — the workload suite for every
    experiment. Families are chosen to stress different parts of the theory:
    G(n,p) for the typical case, paths/cycles/grids for large diameters
    (stretch is only interesting when distances are long), barbells for
    sparse cuts (the hard case for sparsifiers), cliques and clique unions
    for dense neighbourhoods (the hard case for the cluster growth of
    Algorithm 1), and preferential attachment for heavy-tailed degrees. *)

val gnp : Ds_util.Prng.t -> n:int -> p:float -> Graph.t
val gnm : Ds_util.Prng.t -> n:int -> m:int -> Graph.t
(** Exactly [m] distinct uniformly random edges. *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val complete : int -> Graph.t
val star : int -> Graph.t

val grid : int -> int -> Graph.t
(** [grid r c] is the r-by-c 4-neighbour lattice on [r * c] vertices. *)

val barbell : int -> Graph.t
(** Two [K_m] cliques joined by a single edge; [2 m] vertices. *)

val lollipop : int -> int -> Graph.t
(** [lollipop m len]: a [K_m] clique with a path of [len] extra vertices. *)

val disjoint_cliques : Ds_util.Prng.t -> count:int -> size:int -> Graph.t
(** [count] disjoint copies of [K_size] (the Theorem 4 hard instance before
    Bob's path edges are added). *)

val preferential_attachment : Ds_util.Prng.t -> n:int -> m:int -> Graph.t
(** Barabasi–Albert: each new vertex attaches to [m] earlier vertices chosen
    proportionally to degree. Connected; heavy-tailed degrees. *)

val random_bipartite : Ds_util.Prng.t -> left:int -> right:int -> p:float -> Graph.t

val connected_gnp : Ds_util.Prng.t -> n:int -> p:float -> Graph.t
(** G(n,p) with a random Hamiltonian path added, so it is always connected
    (stretch measurements need finite distances). *)

val watts_strogatz : Ds_util.Prng.t -> n:int -> k:int -> beta:float -> Graph.t
(** Small-world graph: ring lattice with [k] neighbours per side, each edge
    rewired with probability [beta]. Connected for [k >= 1]; high clustering
    with short paths — a qualitatively different workload from G(n,p). *)
