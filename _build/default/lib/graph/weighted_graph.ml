type t = { n : int; adj : (int, float) Hashtbl.t array }

let create n =
  if n < 1 then invalid_arg "Weighted_graph.create: need at least one vertex";
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let n t = t.n

let check_pair t u v =
  if u = v then invalid_arg "Weighted_graph: self-loop";
  if u < 0 || v < 0 || u >= t.n || v >= t.n then
    invalid_arg "Weighted_graph: vertex out of range"

let weight t u v =
  check_pair t u v;
  Hashtbl.find_opt t.adj.(u) v

let mem_edge t u v = weight t u v <> None

let add_edge t u v w =
  check_pair t u v;
  if w <= 0.0 then invalid_arg "Weighted_graph.add_edge: weight must be positive";
  if mem_edge t u v then invalid_arg "Weighted_graph.add_edge: edge already present";
  Hashtbl.replace t.adj.(u) v w;
  Hashtbl.replace t.adj.(v) u w

let remove_edge t u v =
  check_pair t u v;
  if not (mem_edge t u v) then invalid_arg "Weighted_graph.remove_edge: edge absent";
  Hashtbl.remove t.adj.(u) v;
  Hashtbl.remove t.adj.(v) u

let iter_edges t f =
  for u = 0 to t.n - 1 do
    Hashtbl.iter (fun v w -> if u < v then f u v w) t.adj.(u)
  done

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v w -> acc := (u, v, w) :: !acc);
  !acc

let num_edges t =
  let c = ref 0 in
  iter_edges t (fun _ _ _ -> incr c);
  !c

let degree t u = Hashtbl.length t.adj.(u)
let iter_neighbors t u f = Hashtbl.iter f t.adj.(u)

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge g u v w) es;
  g

let unweighted t =
  let g = Graph.create t.n in
  iter_edges t (fun u v _ -> Graph.add_edge g u v);
  g

let of_graph ?(weight = 1.0) g =
  let t = create (Graph.n g) in
  Graph.iter_edges g (fun u v -> add_edge t u v weight);
  t

let weight_range t =
  let lo = ref infinity and hi = ref neg_infinity in
  iter_edges t (fun _ _ w ->
      if w < !lo then lo := w;
      if w > !hi then hi := w);
  if !lo > !hi then (1.0, 1.0) else (!lo, !hi)

let total_weight t =
  let acc = ref 0.0 in
  iter_edges t (fun _ _ w -> acc := !acc +. w);
  !acc
