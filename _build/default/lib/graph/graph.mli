(** Reference (in-memory) undirected multigraph with non-negative edge
    multiplicities. This is the ground truth the streaming algorithms are
    verified against — the streaming side never touches it. *)

type t

val create : int -> t
(** [create n] is the empty graph on vertices [0 .. n-1]. *)

val n : t -> int

val add_edge : t -> int -> int -> unit
(** Increment the multiplicity of [{u, v}]. Self-loops are rejected. *)

val remove_edge : t -> int -> int -> unit
(** Decrement the multiplicity of [{u, v}].
    @raise Invalid_argument if the multiplicity is already zero (the model
    forbids negative multiplicities). *)

val multiplicity : t -> int -> int -> int
val mem_edge : t -> int -> int -> bool

val degree : t -> int -> int
(** Number of distinct neighbours (not counting multiplicity). *)

val neighbors : t -> int -> int list
val iter_neighbors : t -> int -> (int -> unit) -> unit

val edges : t -> (int * int) list
(** Distinct edges as pairs [u < v], unordered. *)

val num_edges : t -> int
(** Number of distinct edges. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val copy : t -> t

val of_edges : int -> (int * int) list -> t
(** Graph on [n] vertices with the given distinct edges. *)

val subgraph : t -> keep:(int -> int -> bool) -> t
(** Graph with only the edges passing the predicate. *)

val union : t -> t -> t
(** Union of distinct-edge sets (multiplicities are maxed, not summed). *)

val equal_edge_sets : t -> t -> bool
(** Same distinct-edge sets (ignores multiplicities). *)

val is_subgraph : sub:t -> super:t -> bool
(** Every distinct edge of [sub] is an edge of [super]. *)
