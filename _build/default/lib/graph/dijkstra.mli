(** Exact weighted shortest paths (binary-heap Dijkstra) — the verification
    oracle for weighted spanners. *)

val distances : Weighted_graph.t -> source:int -> float array
(** Weighted distances from [source]; [infinity] for unreachable. *)

val distance : Weighted_graph.t -> int -> int -> float
