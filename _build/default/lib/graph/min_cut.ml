(* Stoer–Wagner minimum cut: repeated maximum-adjacency orderings; after
   each ordering the cut-of-the-phase (last vertex vs the rest) is a
   candidate, and the last two vertices are merged. *)

let stoer_wagner g =
  let n = Weighted_graph.n g in
  if n < 2 then infinity
  else begin
    (* Dense working copy of edge weights between supernodes. *)
    let w = Array.make_matrix n n 0.0 in
    Weighted_graph.iter_edges g (fun u v x ->
        w.(u).(v) <- w.(u).(v) +. x;
        w.(v).(u) <- w.(v).(u) +. x);
    let alive = Array.make n true in
    let best = ref infinity in
    let remaining = ref n in
    while !remaining > 1 do
      (* Maximum-adjacency order over alive supernodes. *)
      let in_a = Array.make n false in
      let key = Array.make n 0.0 in
      let prev = ref (-1) and last = ref (-1) in
      for _ = 1 to !remaining do
        (* pick alive, not yet added, with max key *)
        let sel = ref (-1) in
        for v = 0 to n - 1 do
          if alive.(v) && not in_a.(v) && (!sel = -1 || key.(v) > key.(!sel)) then sel := v
        done;
        let v = !sel in
        in_a.(v) <- true;
        prev := !last;
        last := v;
        for u = 0 to n - 1 do
          if alive.(u) && not in_a.(u) then key.(u) <- key.(u) +. w.(v).(u)
        done
      done;
      (* Cut of the phase: last vertex alone. *)
      best := min !best key.(!last);
      (* Merge last into prev. *)
      let s = !last and t = !prev in
      alive.(s) <- false;
      for u = 0 to n - 1 do
        if alive.(u) && u <> t then begin
          w.(t).(u) <- w.(t).(u) +. w.(s).(u);
          w.(u).(t) <- w.(u).(t) +. w.(u).(s)
        end
      done;
      decr remaining
    done;
    !best
  end

let edge_connectivity g =
  let n = Graph.n g in
  if n < 2 then max_int
  else if not (Components.is_connected g) then 0
  else begin
    let wg = Weighted_graph.of_graph g in
    int_of_float (Float.round (stoer_wagner wg))
  end
