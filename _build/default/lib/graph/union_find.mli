(** Disjoint sets with path compression and union by rank; used by the
    Boruvka rounds of the AGM spanning-forest extraction and by the
    reference connectivity checks. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b]; returns [false] when
    they were already equal. *)

val same : t -> int -> int -> bool
val num_classes : t -> int
val class_members : t -> int list array
(** Members of each class, indexed by class representative (empty lists at
    non-representative indices). *)
