let distances_capped g ~source ~cap =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  dist.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    if dist.(u) < cap then
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
  done;
  dist

let distances g ~source = distances_capped g ~source ~cap:max_int
let distance g u v = (distances g ~source:u).(v)
let all_pairs g = Array.init (Graph.n g) (fun source -> distances g ~source)

let eccentricity g u =
  Array.fold_left
    (fun acc d -> if d <> max_int && d > acc then d else acc)
    0
    (distances g ~source:u)
