(** Exact shortest paths on the reference graph — the verification oracle
    for every spanner experiment (unit edge lengths; see {!Dijkstra} for
    weighted graphs). *)

val distances : Graph.t -> source:int -> int array
(** Unit-length distances from [source]; [max_int] for unreachable. *)

val distances_capped : Graph.t -> source:int -> cap:int -> int array
(** Like {!distances} but the search stops expanding beyond distance [cap]
    (entries further than [cap] stay [max_int]). Used by the sparsifier's
    distance-oracle queries, which only care whether [d > threshold]. *)

val distance : Graph.t -> int -> int -> int
(** Pairwise distance; [max_int] if disconnected. *)

val all_pairs : Graph.t -> int array array
(** All-pairs unit-length distances, [n] BFS runs. *)

val eccentricity : Graph.t -> int -> int
(** Largest finite distance from a vertex. *)
