(** Global minimum cut (Stoer–Wagner), O(n^3) — the offline verifier for the
    k-edge-connectivity certificates extracted from AGM sketches. *)

val stoer_wagner : Weighted_graph.t -> float
(** Weight of a global minimum cut. [infinity] for graphs with fewer than
    two vertices; [0.0] if disconnected. *)

val edge_connectivity : Graph.t -> int
(** Unweighted edge connectivity (minimum number of edges whose removal
    disconnects the graph); [max_int] on a single vertex. *)
