let kruskal g =
  let n = Weighted_graph.n g in
  let edges =
    List.sort (fun (_, _, w1) (_, _, w2) -> compare w1 w2) (Weighted_graph.edges g)
  in
  let uf = Union_find.create n in
  List.filter (fun (u, v, _) -> Union_find.union uf u v) edges

let forest_weight edges = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 edges
