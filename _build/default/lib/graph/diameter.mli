(** Graph diameter: exact (all BFS) and the classical 2-approximation
    (one BFS from an arbitrary vertex). Used by the experiment harness to
    report workload properties — stretch is only informative relative to the
    diameter of the input. *)

val exact : Graph.t -> int
(** Largest finite pairwise distance; 0 for edgeless graphs. O(n * m). *)

val double_sweep : Graph.t -> int
(** Lower bound from two BFS sweeps (exact on trees, excellent in
    practice). *)

val radius : Graph.t -> int
(** Minimum eccentricity over vertices of the largest component. *)
