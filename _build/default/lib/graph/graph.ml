type t = { n : int; adj : (int, int) Hashtbl.t array (* neighbour -> multiplicity *) }

let create n =
  if n < 1 then invalid_arg "Graph.create: need at least one vertex";
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let n t = t.n

let check_pair t u v =
  if u = v then invalid_arg "Graph: self-loop";
  if u < 0 || v < 0 || u >= t.n || v >= t.n then invalid_arg "Graph: vertex out of range"

let multiplicity t u v =
  check_pair t u v;
  match Hashtbl.find_opt t.adj.(u) v with Some m -> m | None -> 0

let add_edge t u v =
  check_pair t u v;
  let bump a b =
    let m = match Hashtbl.find_opt t.adj.(a) b with Some m -> m | None -> 0 in
    Hashtbl.replace t.adj.(a) b (m + 1)
  in
  bump u v;
  bump v u

let remove_edge t u v =
  check_pair t u v;
  let drop a b =
    match Hashtbl.find_opt t.adj.(a) b with
    | None | Some 0 -> invalid_arg "Graph.remove_edge: multiplicity already zero"
    | Some 1 -> Hashtbl.remove t.adj.(a) b
    | Some m -> Hashtbl.replace t.adj.(a) b (m - 1)
  in
  drop u v;
  drop v u

let mem_edge t u v = multiplicity t u v > 0
let degree t u = Hashtbl.length t.adj.(u)
let iter_neighbors t u f = Hashtbl.iter (fun v _ -> f v) t.adj.(u)

let neighbors t u =
  let acc = ref [] in
  iter_neighbors t u (fun v -> acc := v :: !acc);
  !acc

let iter_edges t f =
  for u = 0 to t.n - 1 do
    Hashtbl.iter (fun v _ -> if u < v then f u v) t.adj.(u)
  done

let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  !acc

let num_edges t =
  let c = ref 0 in
  iter_edges t (fun _ _ -> incr c);
  !c

let copy t = { t with adj = Array.map Hashtbl.copy t.adj }

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let subgraph t ~keep =
  let g = create t.n in
  iter_edges t (fun u v -> if keep u v then add_edge g u v);
  g

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: size mismatch";
  let g = create a.n in
  iter_edges a (fun u v -> add_edge g u v);
  iter_edges b (fun u v -> if not (mem_edge g u v) then add_edge g u v);
  g

let is_subgraph ~sub ~super =
  let ok = ref true in
  iter_edges sub (fun u v -> if not (mem_edge super u v) then ok := false);
  !ok

let equal_edge_sets a b =
  a.n = b.n && is_subgraph ~sub:a ~super:b && is_subgraph ~sub:b ~super:a
