(** Exact minimum spanning forest (Kruskal) — the verifier for the sketched
    (1+gamma)-MST. *)

val kruskal : Weighted_graph.t -> (int * int * float) list
(** Minimum spanning forest edges (one tree per component). *)

val forest_weight : (int * int * float) list -> float
