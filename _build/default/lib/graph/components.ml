let labels g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  for s = 0 to n - 1 do
    if label.(s) = -1 then begin
      let q = Queue.create () in
      Queue.add s q;
      label.(s) <- s;
      while not (Queue.is_empty q) do
        let u = Queue.take q in
        Graph.iter_neighbors g u (fun v ->
            if label.(v) = -1 then begin
              label.(v) <- s;
              Queue.add v q
            end)
      done
    end
  done;
  label

let count g =
  let l = labels g in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun x -> Hashtbl.replace distinct x ()) l;
  Hashtbl.length distinct

let same_component g u v =
  let l = labels g in
  l.(u) = l.(v)

let is_connected g = count g = 1

let spanning_forest g =
  let n = Graph.n g in
  let uf = Union_find.create n in
  let forest = ref [] in
  Graph.iter_edges g (fun u v -> if Union_find.union uf u v then forest := (u, v) :: !forest);
  !forest
