let exact g =
  let n = Graph.n g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    let e = Bfs.eccentricity g v in
    if e > !best then best := e
  done;
  !best

let farthest g source =
  let dist = Bfs.distances g ~source in
  let best = ref source and bd = ref 0 in
  Array.iteri
    (fun v d ->
      if d <> max_int && d > !bd then begin
        bd := d;
        best := v
      end)
    dist;
  (!best, !bd)

let double_sweep g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    (* Start from a non-isolated vertex if one exists. *)
    let start = ref 0 in
    (try
       for v = 0 to n - 1 do
         if Graph.degree g v > 0 then begin
           start := v;
           raise Exit
         end
       done
     with Exit -> ());
    let far, _ = farthest g !start in
    let _, d = farthest g far in
    d
  end

let radius g =
  let n = Graph.n g in
  (* Restrict to the largest component so the radius is finite. *)
  let labels = Components.labels g in
  let sizes = Hashtbl.create 8 in
  Array.iter
    (fun l ->
      Hashtbl.replace sizes l (1 + Option.value ~default:0 (Hashtbl.find_opt sizes l)))
    labels;
  let big, _ =
    Hashtbl.fold (fun l s (bl, bs) -> if s > bs then (l, s) else (bl, bs)) sizes (0, 0)
  in
  let best = ref max_int in
  for v = 0 to n - 1 do
    if labels.(v) = big then begin
      let e = Bfs.eccentricity g v in
      if e < !best then best := e
    end
  done;
  if !best = max_int then 0 else !best
