let dim n = n * (n - 1) / 2

let encode ~n u v =
  if u = v then invalid_arg "Edge_index.encode: self-loop";
  if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Edge_index.encode: out of range";
  let u, v = if u < v then (u, v) else (v, u) in
  (* Row u starts after rows 0..u-1, which hold (n-1) + (n-2) + ... entries. *)
  (u * (n - 1)) - (u * (u - 1) / 2) + (v - u - 1)

let decode ~n idx =
  if idx < 0 || idx >= dim n then invalid_arg "Edge_index.decode: out of range";
  (* Find the row u by walking; rows shrink so this is O(n) worst case, but
     callers on hot paths decode rarely (only after a successful sketch
     decode). *)
  let rec find_row u start =
    let row_len = n - 1 - u in
    if idx < start + row_len then (u, start) else find_row (u + 1) (start + row_len)
  in
  let u, start = find_row 0 0 in
  (u, u + 1 + (idx - start))

let iter_pairs ~n f =
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      f u v
    done
  done
