open Ds_util

let gnp rng ~n ~p =
  let g = Graph.create n in
  Edge_index.iter_pairs ~n (fun u v -> if Prng.bernoulli rng p then Graph.add_edge g u v);
  g

let gnm rng ~n ~m =
  let dim = Edge_index.dim n in
  if m > dim then invalid_arg "Gen.gnm: too many edges";
  let g = Graph.create n in
  let added = ref 0 in
  while !added < m do
    let idx = Prng.int rng dim in
    let u, v = Edge_index.decode ~n idx in
    if not (Graph.mem_edge g u v) then begin
      Graph.add_edge g u v;
      incr added
    end
  done;
  g

let path n =
  let g = Graph.create n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  g

let cycle n =
  let g = path n in
  if n > 2 then Graph.add_edge g (n - 1) 0;
  g

let complete n =
  let g = Graph.create n in
  Edge_index.iter_pairs ~n (fun u v -> Graph.add_edge g u v);
  g

let star n =
  let g = Graph.create n in
  for i = 1 to n - 1 do
    Graph.add_edge g 0 i
  done;
  g

let grid r c =
  let g = Graph.create (r * c) in
  let id i j = (i * c) + j in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if j + 1 < c then Graph.add_edge g (id i j) (id i (j + 1));
      if i + 1 < r then Graph.add_edge g (id i j) (id (i + 1) j)
    done
  done;
  g

let barbell m =
  let g = Graph.create (2 * m) in
  Edge_index.iter_pairs ~n:m (fun u v ->
      Graph.add_edge g u v;
      Graph.add_edge g (m + u) (m + v));
  Graph.add_edge g (m - 1) m;
  g

let lollipop m len =
  let g = Graph.create (m + len) in
  Edge_index.iter_pairs ~n:m (fun u v -> Graph.add_edge g u v);
  for i = 0 to len - 1 do
    Graph.add_edge g (m - 1 + i) (m + i)
  done;
  g

let disjoint_cliques _rng ~count ~size =
  let g = Graph.create (count * size) in
  for c = 0 to count - 1 do
    let base = c * size in
    Edge_index.iter_pairs ~n:size (fun u v -> Graph.add_edge g (base + u) (base + v))
  done;
  g

let preferential_attachment rng ~n ~m =
  if n < m + 1 then invalid_arg "Gen.preferential_attachment: n too small";
  let g = Graph.create n in
  (* Seed clique on the first m+1 vertices. *)
  Edge_index.iter_pairs ~n:(m + 1) (fun u v -> Graph.add_edge g u v);
  (* Endpoint pool: each vertex appears once per incident edge, so drawing
     uniformly from the pool is degree-proportional. *)
  let pool = ref [] in
  Graph.iter_edges g (fun u v -> pool := u :: v :: !pool);
  let pool = ref (Array.of_list !pool) in
  let pool_len = ref (Array.length !pool) in
  let push x =
    if !pool_len >= Array.length !pool then begin
      let bigger = Array.make (max 16 (2 * Array.length !pool)) 0 in
      Array.blit !pool 0 bigger 0 !pool_len;
      pool := bigger
    end;
    !pool.(!pool_len) <- x;
    incr pool_len
  in
  for v = m + 1 to n - 1 do
    let attached = Hashtbl.create m in
    while Hashtbl.length attached < m do
      let u = !pool.(Prng.int rng !pool_len) in
      if u <> v && not (Hashtbl.mem attached u) then Hashtbl.add attached u ()
    done;
    Hashtbl.iter
      (fun u () ->
        Graph.add_edge g u v;
        push u;
        push v)
      attached
  done;
  g

let random_bipartite rng ~left ~right ~p =
  let g = Graph.create (left + right) in
  for u = 0 to left - 1 do
    for v = left to left + right - 1 do
      if Prng.bernoulli rng p then Graph.add_edge g u v
    done
  done;
  g

let watts_strogatz rng ~n ~k ~beta =
  if k < 1 || 2 * k >= n then invalid_arg "Gen.watts_strogatz: need 1 <= k < n/2";
  let g = Graph.create n in
  (* Ring lattice: each vertex to its k clockwise neighbours. *)
  for v = 0 to n - 1 do
    for j = 1 to k do
      let w = (v + j) mod n in
      if not (Graph.mem_edge g v w) then Graph.add_edge g v w
    done
  done;
  (* Rewire each lattice edge (v, v+j) with probability beta, keeping the
     ring (j = 1) intact so the graph stays connected. *)
  for v = 0 to n - 1 do
    for j = 2 to k do
      let w = (v + j) mod n in
      if Graph.mem_edge g v w && Prng.bernoulli rng beta then begin
        let rec fresh () =
          let t = Prng.int rng n in
          if t = v || Graph.mem_edge g v t then fresh () else t
        in
        if Graph.degree g v < n - 1 then begin
          Graph.remove_edge g v w;
          Graph.add_edge g v (fresh ())
        end
      end
    done
  done;
  g

let connected_gnp rng ~n ~p =
  let g = gnp rng ~n ~p in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  for i = 0 to n - 2 do
    if not (Graph.mem_edge g perm.(i) perm.(i + 1)) then Graph.add_edge g perm.(i) perm.(i + 1)
  done;
  g
