(** Bijection between vertex pairs and the [binom(n,2)]-dimensional edge
    space. The paper views a multigraph on [n] vertices as a vector indexed
    by unordered pairs; every sketch in the system addresses edges through
    this encoding. Pairs are canonicalised to [u < v]; the encoding is the
    row-major upper triangle. *)

val dim : int -> int
(** [dim n] is [n * (n-1) / 2], the number of unordered pairs. *)

val encode : n:int -> int -> int -> int
(** [encode ~n u v] is the index of the unordered pair [{u, v}].
    Requires [0 <= u, v < n] and [u <> v]. *)

val decode : n:int -> int -> int * int
(** Inverse of {!encode}; returns [(u, v)] with [u < v]. *)

val iter_pairs : n:int -> (int -> int -> unit) -> unit
(** Iterate all unordered pairs [(u, v)], [u < v], in encoding order. *)
