(** Undirected weighted graph with positive real edge weights. The paper's
    weighted model allows adding a weighted edge and later removing it
    entirely (no turnstile weight updates); this reference structure mirrors
    that. *)

type t

val create : int -> t
val n : t -> int

val add_edge : t -> int -> int -> float -> unit
(** Set the weight of [{u, v}]. @raise Invalid_argument on non-positive
    weight or if the edge is already present (the model inserts each
    weighted edge once). *)

val remove_edge : t -> int -> int -> unit
(** Remove the edge entirely. @raise Invalid_argument if absent. *)

val weight : t -> int -> int -> float option
val mem_edge : t -> int -> int -> bool
val iter_edges : t -> (int -> int -> float -> unit) -> unit
val edges : t -> (int * int * float) list
val num_edges : t -> int
val degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> float -> unit) -> unit

val of_edges : int -> (int * int * float) list -> t

val unweighted : t -> Graph.t
(** Forget the weights. *)

val of_graph : ?weight:float -> Graph.t -> t
(** Give every distinct edge the same weight (default [1.0]). *)

val weight_range : t -> float * float
(** [(w_min, w_max)] over present edges; [(1., 1.)] for the empty graph. *)

val total_weight : t -> float
