(** Connected components of the reference graph. *)

val labels : Graph.t -> int array
(** [labels g] assigns every vertex the smallest vertex id in its component. *)

val count : Graph.t -> int
val same_component : Graph.t -> int -> int -> bool
val is_connected : Graph.t -> bool

val spanning_forest : Graph.t -> (int * int) list
(** A spanning forest (one tree per component) computed offline; the ground
    truth the AGM sketch output is checked against. *)
