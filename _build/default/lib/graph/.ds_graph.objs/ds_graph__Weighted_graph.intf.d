lib/graph/weighted_graph.mli: Graph
