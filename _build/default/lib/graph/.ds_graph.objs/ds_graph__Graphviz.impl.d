lib/graph/graphviz.ml: Buffer Fun Graph Printf Weighted_graph
