lib/graph/min_cut.mli: Graph Weighted_graph
