lib/graph/components.ml: Array Graph Hashtbl Queue Union_find
