lib/graph/edge_index.ml:
