lib/graph/graph.mli:
