lib/graph/mst_offline.ml: List Union_find Weighted_graph
