lib/graph/weighted_graph.ml: Array Graph Hashtbl List
