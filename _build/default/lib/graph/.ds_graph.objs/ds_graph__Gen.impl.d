lib/graph/gen.ml: Array Ds_util Edge_index Graph Hashtbl Prng
