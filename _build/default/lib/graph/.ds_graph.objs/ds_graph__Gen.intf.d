lib/graph/gen.mli: Ds_util Graph
