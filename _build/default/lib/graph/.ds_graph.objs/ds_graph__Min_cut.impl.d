lib/graph/min_cut.ml: Array Components Float Graph Weighted_graph
