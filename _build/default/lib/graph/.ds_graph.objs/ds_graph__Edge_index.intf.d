lib/graph/edge_index.mli:
