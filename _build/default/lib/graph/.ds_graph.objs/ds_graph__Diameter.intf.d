lib/graph/diameter.mli: Graph
