lib/graph/dijkstra.ml: Array Weighted_graph
