lib/graph/dijkstra.mli: Weighted_graph
