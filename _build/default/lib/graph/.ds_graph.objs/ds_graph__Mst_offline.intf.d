lib/graph/mst_offline.mli: Weighted_graph
