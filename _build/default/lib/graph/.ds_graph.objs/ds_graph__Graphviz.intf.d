lib/graph/graphviz.mli: Graph Weighted_graph
