lib/graph/diameter.ml: Array Bfs Components Graph Hashtbl Option
