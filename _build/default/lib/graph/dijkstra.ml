(* Minimal binary heap of (distance, vertex). *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable len : int }

  let create () = { data = Array.make 16 (0.0, 0); len = 0 }
  let is_empty h = h.len = 0
  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h x =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) (0.0, 0) in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    top
end

let distances g ~source =
  let n = Weighted_graph.n g in
  let dist = Array.make n infinity in
  dist.(source) <- 0.0;
  let h = Heap.create () in
  Heap.push h (0.0, source);
  while not (Heap.is_empty h) do
    let d, u = Heap.pop h in
    if d <= dist.(u) then
      Weighted_graph.iter_neighbors g u (fun v w ->
          let nd = d +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            Heap.push h (nd, v)
          end)
  done;
  dist

let distance g u v = (distances g ~source:u).(v)
