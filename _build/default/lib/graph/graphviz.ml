let to_dot ?highlight ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  Graph.iter_edges g (fun u v ->
      let bold =
        match highlight with
        | Some h -> u < Graph.n h && v < Graph.n h && Graph.mem_edge h u v
        | None -> false
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d%s;\n" u v
           (if bold then " [penwidth=2.5, color=black]" else " [color=gray60]")));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let weighted_to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  Weighted_graph.iter_edges g (fun u v w ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d [label=\"%.2g\"];\n" u v w));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path dot =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc dot)
