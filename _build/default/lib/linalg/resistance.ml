open Ds_graph

let effective g u v =
  if u = v then invalid_arg "Resistance.effective: self-pair";
  let n = Weighted_graph.n g in
  if not (Components.same_component (Weighted_graph.unweighted g) u v) then infinity
  else begin
    let b = Array.make n 0.0 in
    b.(u) <- 1.0;
    b.(v) <- -1.0;
    let { Cg.x; _ } = Cg.solve g ~b ~tol:1e-10 () in
    x.(u) -. x.(v)
  end

let all_edges g =
  List.map (fun (u, v, w) -> (u, v, w, effective g u v)) (Weighted_graph.edges g)

let total g =
  List.fold_left (fun acc (_, _, w, r) -> acc +. (w *. r)) 0.0 (all_edges g)
