(** Graph Laplacians (Section 2): [L(i,j) = -w(i,j)], [L(i,i) = sum_j w_ij].
    Provides both a dense materialisation (verification) and matrix-free
    application/quadratic forms (cheap enough for CG). *)

val dense : Ds_graph.Weighted_graph.t -> Matrix.t

val apply : Ds_graph.Weighted_graph.t -> float array -> float array
(** [L x] in O(m) without materialising [L]. *)

val quadratic_form : Ds_graph.Weighted_graph.t -> float array -> float
(** [x^T L x = sum_e w_e (x_u - x_v)^2], computed edge-wise (exact,
    numerically stable, O(m)). *)

val cut_weight : Ds_graph.Weighted_graph.t -> int list -> float
(** Total weight crossing the cut [(S, V \ S)]; equals the quadratic form of
    the indicator vector of [S]. *)

val degree_weighted : Ds_graph.Weighted_graph.t -> int -> float
