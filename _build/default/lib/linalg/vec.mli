(** Dense float vectors. *)

val dot : float array -> float array -> float
val norm : float array -> float
val scale : float -> float array -> float array
val axpy : float -> float array -> float array -> unit
(** [axpy a x y] sets [y := y + a * x] in place. *)

val add : float array -> float array -> float array
val sub : float array -> float array -> float array

val project_off_ones : float array -> unit
(** Subtract the mean in place: afterwards the vector is orthogonal to the
    all-ones vector (the kernel of a connected graph's Laplacian). *)

val random_unit : Ds_util.Prng.t -> int -> float array
(** Uniform random unit vector (Gaussian normalised). *)

val e : int -> int -> float array
(** [e n i] is the [i]-th standard basis vector of length [n]. *)

val indicator : int -> int list -> float array
(** 0/1 vector of a vertex subset — a cut vector for Laplacian forms. *)
