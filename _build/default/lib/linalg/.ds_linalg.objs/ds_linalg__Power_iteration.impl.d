lib/linalg/power_iteration.ml: Cg Ds_graph Ds_util Laplacian Prng Vec Weighted_graph
