lib/linalg/csr.mli: Ds_graph Matrix
