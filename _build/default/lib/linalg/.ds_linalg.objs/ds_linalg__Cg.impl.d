lib/linalg/cg.ml: Array Ds_graph Laplacian Vec
