lib/linalg/power_iteration.mli: Ds_graph
