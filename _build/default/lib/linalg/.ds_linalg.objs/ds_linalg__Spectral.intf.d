lib/linalg/spectral.mli: Ds_graph Ds_util
