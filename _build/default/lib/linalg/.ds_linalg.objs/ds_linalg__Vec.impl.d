lib/linalg/vec.ml: Array Ds_util List Prng
