lib/linalg/vec.mli: Ds_util
