lib/linalg/resistance.mli: Ds_graph
