lib/linalg/laplacian.mli: Ds_graph Matrix
