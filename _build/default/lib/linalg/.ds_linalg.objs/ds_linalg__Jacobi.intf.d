lib/linalg/jacobi.mli: Matrix
