lib/linalg/csr.ml: Array Ds_graph List Matrix
