lib/linalg/cg.mli: Ds_graph
