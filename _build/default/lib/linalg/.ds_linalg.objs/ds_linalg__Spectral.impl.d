lib/linalg/spectral.ml: Array Ds_graph Ds_util Jacobi Laplacian List Matrix Prng Vec Weighted_graph
