lib/linalg/laplacian.ml: Array Ds_graph List Matrix Weighted_graph
