lib/linalg/jacobi.ml: Array Matrix
