lib/linalg/resistance.ml: Array Cg Components Ds_graph List Weighted_graph
