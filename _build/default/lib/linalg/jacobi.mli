(** Cyclic Jacobi eigendecomposition of dense symmetric matrices — the exact
    eigensolver behind the sparsifier-quality evaluation. O(n^3) per sweep;
    fine at verification scale (n <= a few hundred). *)

type eig = { values : float array; vectors : Matrix.t }
(** [values] ascending; column [j] of [vectors] is the eigenvector of
    [values.(j)]. *)

val decompose : ?tol:float -> ?max_sweeps:int -> Matrix.t -> eig
(** @raise Invalid_argument if the matrix is not symmetric. *)

val eigenvalues : ?tol:float -> Matrix.t -> float array
(** Just the (ascending) spectrum. *)
