type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows + 1 *)
  col_idx : int array;
  values : float array;
}

let of_triplets ~rows ~cols triplets =
  if rows < 1 || cols < 1 then invalid_arg "Csr.of_triplets: bad shape";
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Csr.of_triplets: index out of range")
    triplets;
  (* Sort by (row, col) and fuse duplicates. *)
  let sorted = List.sort compare triplets in
  let fused = ref [] in
  List.iter
    (fun (r, c, v) ->
      match !fused with
      | (r', c', v') :: rest when r' = r && c' = c -> fused := (r, c, v +. v') :: rest
      | _ -> fused := (r, c, v) :: !fused)
    sorted;
  let entries = Array.of_list (List.rev !fused) in
  let nnz = Array.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iter (fun (r, _, _) -> row_ptr.(r + 1) <- row_ptr.(r + 1) + 1) entries;
  for r = 0 to rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  let col_idx = Array.make nnz 0 and values = Array.make nnz 0.0 in
  Array.iteri
    (fun i (_, c, v) ->
      col_idx.(i) <- c;
      values.(i) <- v)
    entries;
  { rows; cols; row_ptr; col_idx; values }

let of_laplacian g =
  let n = Ds_graph.Weighted_graph.n g in
  let triplets = ref [] in
  Ds_graph.Weighted_graph.iter_edges g (fun u v w ->
      triplets :=
        (u, v, -.w) :: (v, u, -.w) :: (u, u, w) :: (v, v, w) :: !triplets);
  of_triplets ~rows:n ~cols:n !triplets

let rows t = t.rows
let cols t = t.cols
let nnz t = Array.length t.values

let get t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then invalid_arg "Csr.get: out of range";
  let lo = ref t.row_ptr.(r) and hi = ref (t.row_ptr.(r + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.col_idx.(mid) = c then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if t.col_idx.(mid) < c then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec t x =
  if Array.length x <> t.cols then invalid_arg "Csr.mul_vec: size mismatch";
  Array.init t.rows (fun r ->
      let acc = ref 0.0 in
      for i = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
        acc := !acc +. (t.values.(i) *. x.(t.col_idx.(i)))
      done;
      !acc)

let transpose t =
  let triplets = ref [] in
  for r = 0 to t.rows - 1 do
    for i = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
      triplets := (t.col_idx.(i), r, t.values.(i)) :: !triplets
    done
  done;
  of_triplets ~rows:t.cols ~cols:t.rows !triplets

let to_dense t =
  if t.rows <> t.cols then invalid_arg "Csr.to_dense: only square supported";
  let m = Matrix.create t.rows in
  for r = 0 to t.rows - 1 do
    for i = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
      Matrix.set m r t.col_idx.(i) t.values.(i)
    done
  done;
  m
