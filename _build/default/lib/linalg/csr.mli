(** Compressed sparse row matrices — O(nnz) storage and matrix–vector
    products, so verification-side iterative methods (CG, power iteration)
    scale past the dense [Matrix] limit. Rows are built once from triplets
    and immutable afterwards. *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Duplicate entries are summed. @raise Invalid_argument on out-of-range
    indices. *)

val of_laplacian : Ds_graph.Weighted_graph.t -> t

val rows : t -> int
val cols : t -> int
val nnz : t -> int
val get : t -> int -> int -> float
(** O(log row-length) lookup. *)

val mul_vec : t -> float array -> float array
val transpose : t -> t
val to_dense : t -> Matrix.t
(** For tests; O(rows * cols) memory. *)
