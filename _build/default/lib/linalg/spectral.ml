open Ds_util
open Ds_graph

type bounds = { lambda_min : float; lambda_max : float; kernel_leak : float }

let pencil_bounds ~base ~candidate =
  let n = Weighted_graph.n base in
  if Weighted_graph.n candidate <> n then invalid_arg "Spectral.pencil_bounds: size mismatch";
  let lg = Laplacian.dense base in
  let { Jacobi.values; vectors } = Jacobi.decompose lg in
  let vmax = Array.fold_left (fun a x -> max a (abs_float x)) 0.0 values in
  let tol = 1e-9 *. max vmax 1.0 in
  (* S = Q * diag(lambda_i^{-1/2} on the range, 0 on the kernel). *)
  let s = Matrix.create n in
  let rank = ref 0 in
  for j = 0 to n - 1 do
    if values.(j) > tol then begin
      incr rank;
      let c = 1.0 /. sqrt values.(j) in
      for i = 0 to n - 1 do
        Matrix.set s i j (Matrix.get vectors i j *. c)
      done
    end
  done;
  let lh = Laplacian.dense candidate in
  let m = Matrix.mul (Matrix.transpose s) (Matrix.mul lh s) in
  let evals = Jacobi.eigenvalues m in
  (* The first n - rank eigenvalues are structural zeros (kernel columns). *)
  let kernel_dim = n - !rank in
  let lambda_min = if !rank = 0 then 1.0 else evals.(kernel_dim) in
  let lambda_max = if !rank = 0 then 1.0 else evals.(n - 1) in
  (* Energy of L_H inside ker(L_G): x^T L_H x over kernel eigenvectors. *)
  let kernel_leak = ref 0.0 in
  for j = 0 to n - 1 do
    if values.(j) <= tol then begin
      let x = Array.init n (fun i -> Matrix.get vectors i j) in
      kernel_leak := max !kernel_leak (Laplacian.quadratic_form candidate x)
    end
  done;
  { lambda_min; lambda_max; kernel_leak = !kernel_leak }

let is_sparsifier ~base ~candidate ~eps =
  let { lambda_min; lambda_max; kernel_leak } = pencil_bounds ~base ~candidate in
  kernel_leak < 1e-6 && lambda_min >= 1.0 -. eps -. 1e-9 && lambda_max <= 1.0 +. eps +. 1e-9

let ratio_samples draw ~base ~candidate ~samples =
  let acc = ref [] in
  let attempts = ref 0 in
  while List.length !acc < samples && !attempts < 20 * samples do
    incr attempts;
    let x = draw () in
    let qb = Laplacian.quadratic_form base x in
    if qb > 1e-12 then acc := (Laplacian.quadratic_form candidate x /. qb) :: !acc
  done;
  Array.of_list !acc

let quadratic_ratio_samples rng ~base ~candidate ~samples =
  let n = Weighted_graph.n base in
  let draw () =
    let x = Vec.random_unit rng n in
    Vec.project_off_ones x;
    x
  in
  ratio_samples draw ~base ~candidate ~samples

let cut_ratio_samples rng ~base ~candidate ~samples =
  let n = Weighted_graph.n base in
  let draw () = Array.init n (fun _ -> if Prng.bool rng then 1.0 else 0.0) in
  ratio_samples draw ~base ~candidate ~samples
