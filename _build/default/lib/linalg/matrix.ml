type t = { n : int; a : float array }

let create n =
  if n < 1 then invalid_arg "Matrix.create: order must be positive";
  { n; a = Array.make (n * n) 0.0 }

let dim t = t.n
let get t i j = t.a.((i * t.n) + j)
let set t i j v = t.a.((i * t.n) + j) <- v
let add_to t i j v = t.a.((i * t.n) + j) <- t.a.((i * t.n) + j) +. v

let of_rows rows =
  let n = Array.length rows in
  let t = create n in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Matrix.of_rows: not square";
      Array.iteri (fun j v -> set t i j v) row)
    rows;
  t

let identity n =
  let t = create n in
  for i = 0 to n - 1 do
    set t i i 1.0
  done;
  t

let copy t = { t with a = Array.copy t.a }

let transpose t =
  let r = create t.n in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      set r j i (get t i j)
    done
  done;
  r

let mul x y =
  if x.n <> y.n then invalid_arg "Matrix.mul: size mismatch";
  let r = create x.n in
  for i = 0 to x.n - 1 do
    for k = 0 to x.n - 1 do
      let xik = get x i k in
      if xik <> 0.0 then
        for j = 0 to x.n - 1 do
          add_to r i j (xik *. get y k j)
        done
    done
  done;
  r

let mul_vec t v =
  if Array.length v <> t.n then invalid_arg "Matrix.mul_vec: size mismatch";
  Array.init t.n (fun i ->
      let acc = ref 0.0 in
      for j = 0 to t.n - 1 do
        acc := !acc +. (get t i j *. v.(j))
      done;
      !acc)

let scale c t = { t with a = Array.map (fun x -> c *. x) t.a }

let zip f x y =
  if x.n <> y.n then invalid_arg "Matrix: size mismatch";
  { x with a = Array.init (Array.length x.a) (fun i -> f x.a.(i) y.a.(i)) }

let add = zip ( +. )
let sub = zip ( -. )
let frobenius t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.a)

let max_abs_off_diagonal t =
  let m = ref 0.0 in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if i <> j then m := max !m (abs_float (get t i j))
    done
  done;
  !m

let is_symmetric ?(tol = 1e-9) t =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      if abs_float (get t i j -. get t j i) > tol then ok := false
    done
  done;
  !ok

let pp ppf t =
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      Format.fprintf ppf "%8.3f " (get t i j)
    done;
    Format.pp_print_newline ppf ()
  done
