open Ds_util

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)
let scale c a = Array.map (fun x -> c *. x) a

let axpy a x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.axpy: length mismatch";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let add a b = Array.init (Array.length a) (fun i -> a.(i) +. b.(i))
let sub a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let project_off_ones v =
  let n = Array.length v in
  if n > 0 then begin
    let mean = Array.fold_left ( +. ) 0.0 v /. float_of_int n in
    for i = 0 to n - 1 do
      v.(i) <- v.(i) -. mean
    done
  end

let random_unit rng n =
  let v = Array.init n (fun _ -> Prng.gaussian rng) in
  let len = norm v in
  if len = 0.0 then Array.init n (fun i -> if i = 0 then 1.0 else 0.0)
  else scale (1.0 /. len) v

let e n i =
  let v = Array.make n 0.0 in
  v.(i) <- 1.0;
  v

let indicator n members =
  let v = Array.make n 0.0 in
  List.iter (fun i -> v.(i) <- 1.0) members;
  v
