type eig = { values : float array; vectors : Matrix.t }

let decompose ?(tol = 1e-12) ?(max_sweeps = 100) m =
  if not (Matrix.is_symmetric ~tol:1e-8 m) then
    invalid_arg "Jacobi.decompose: matrix not symmetric";
  let n = Matrix.dim m in
  let a = Matrix.copy m in
  let v = Matrix.identity n in
  let scale = max (Matrix.frobenius m) 1e-30 in
  let sweeps = ref 0 in
  while Matrix.max_abs_off_diagonal a > tol *. scale && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Matrix.get a p q in
        if abs_float apq > tol *. scale /. float_of_int (n * n) then begin
          let app = Matrix.get a p p and aqq = Matrix.get a q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (abs_float theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Rotate rows/columns p and q of a. *)
          for k = 0 to n - 1 do
            let akp = Matrix.get a k p and akq = Matrix.get a k q in
            Matrix.set a k p ((c *. akp) -. (s *. akq));
            Matrix.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Matrix.get a p k and aqk = Matrix.get a q k in
            Matrix.set a p k ((c *. apk) -. (s *. aqk));
            Matrix.set a q k ((s *. apk) +. (c *. aqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Matrix.get v k p and vkq = Matrix.get v k q in
            Matrix.set v k p ((c *. vkp) -. (s *. vkq));
            Matrix.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  (* Sort ascending by eigenvalue, permuting eigenvector columns. *)
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (Matrix.get a i i) (Matrix.get a j j)) idx;
  let values = Array.map (fun i -> Matrix.get a i i) idx in
  let vectors = Matrix.create n in
  Array.iteri
    (fun j src ->
      for i = 0 to n - 1 do
        Matrix.set vectors i j (Matrix.get v i src)
      done)
    idx;
  { values; vectors }

let eigenvalues ?tol m = (decompose ?tol m).values
