open Ds_util
open Ds_graph

let rayleigh apply x =
  let ax = apply x in
  Vec.dot x ax /. Vec.dot x x

let iterate ~n ~iters ~seed apply =
  let rng = Prng.create seed in
  let x = Vec.random_unit rng n in
  Vec.project_off_ones x;
  let x = ref x in
  for _ = 1 to iters do
    let y = apply !x in
    Vec.project_off_ones y;
    let norm = Vec.norm y in
    if norm > 1e-300 then x := Vec.scale (1.0 /. norm) y
  done;
  rayleigh apply !x

let lambda_max g ?(iters = 200) ?(seed = 1) () =
  iterate ~n:(Weighted_graph.n g) ~iters ~seed (Laplacian.apply g)

let lambda_max_pencil ~base ~candidate ?(iters = 100) ?(seed = 1) () =
  let n = Weighted_graph.n base in
  if Weighted_graph.n candidate <> n then
    invalid_arg "Power_iteration.lambda_max_pencil: size mismatch";
  (* One application of L_base^+ L_candidate = a CG solve per iteration. *)
  let apply x =
    let b = Laplacian.apply candidate x in
    (Cg.solve base ~b ~tol:1e-10 ()).Cg.x
  in
  iterate ~n ~iters ~seed apply
