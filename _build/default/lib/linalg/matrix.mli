(** Dense square matrices (row-major float arrays) — enough numerical linear
    algebra for the exact verification side of the sparsifier experiments.
    Everything here is O(n^2) space and O(n^3) time: verification only. *)

type t

val create : int -> t
(** Zero matrix of the given order. *)

val of_rows : float array array -> t
val dim : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
val identity : int -> t
val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array
val scale : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val frobenius : t -> float
val max_abs_off_diagonal : t -> float
val is_symmetric : ?tol:float -> t -> bool
val pp : Format.formatter -> t -> unit
