(** Effective resistances (Section 2): the potential difference across
    [{u, v}] when a unit current is injected at [u] and extracted at [v],
    with every edge [e] a conductor of conductance [w_e]. Computed by
    conjugate gradients, [R_uv = (e_u - e_v)^T L^+ (e_u - e_v)]. These are
    the sampling probabilities of the [SS08] baseline (Theorem 7) and the
    quantity the KP12 robust connectivities approximate. *)

val effective : Ds_graph.Weighted_graph.t -> int -> int -> float
(** @raise Invalid_argument on a self-pair. Returns [infinity] when [u] and
    [v] are in different components. *)

val all_edges : Ds_graph.Weighted_graph.t -> (int * int * float * float) list
(** [(u, v, w_e, R_e)] for every edge. One CG solve per edge. *)

val total : Ds_graph.Weighted_graph.t -> float
(** [sum_e w_e R_e]; equals [n - #components] exactly (Foster's theorem) —
    used as a self-check in tests. *)
