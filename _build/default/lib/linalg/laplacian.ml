open Ds_graph

let dense g =
  let n = Weighted_graph.n g in
  let m = Matrix.create n in
  Weighted_graph.iter_edges g (fun u v w ->
      Matrix.add_to m u v (-.w);
      Matrix.add_to m v u (-.w);
      Matrix.add_to m u u w;
      Matrix.add_to m v v w);
  m

let apply g x =
  let n = Weighted_graph.n g in
  if Array.length x <> n then invalid_arg "Laplacian.apply: size mismatch";
  let y = Array.make n 0.0 in
  Weighted_graph.iter_edges g (fun u v w ->
      let d = x.(u) -. x.(v) in
      y.(u) <- y.(u) +. (w *. d);
      y.(v) <- y.(v) -. (w *. d));
  y

let quadratic_form g x =
  let acc = ref 0.0 in
  Weighted_graph.iter_edges g (fun u v w ->
      let d = x.(u) -. x.(v) in
      acc := !acc +. (w *. d *. d));
  !acc

let cut_weight g members =
  let n = Weighted_graph.n g in
  let inside = Array.make n false in
  List.iter (fun i -> inside.(i) <- true) members;
  let acc = ref 0.0 in
  Weighted_graph.iter_edges g (fun u v w -> if inside.(u) <> inside.(v) then acc := !acc +. w);
  !acc

let degree_weighted g u =
  let acc = ref 0.0 in
  Weighted_graph.iter_neighbors g u (fun _ w -> acc := !acc +. w);
  !acc
