(** Power iteration on Laplacian pencils — a cheap, matrix-free alternative
    to the dense Jacobi route in {!Spectral} for larger verification graphs.

    [lambda_max_pencil] estimates [max_x x^T L_H x / x^T L_G x] by iterating
    [x <- L_G^+ L_H x] (each application is one CG solve), deflating the
    all-ones kernel. Converges linearly in the eigogap; intended for
    sanity-scale checks, with {!Spectral} remaining the exact oracle. *)

val lambda_max :
  Ds_graph.Weighted_graph.t -> ?iters:int -> ?seed:int -> unit -> float
(** Largest Laplacian eigenvalue of a graph (ordinary power iteration). *)

val lambda_max_pencil :
  base:Ds_graph.Weighted_graph.t ->
  candidate:Ds_graph.Weighted_graph.t ->
  ?iters:int ->
  ?seed:int ->
  unit ->
  float
(** Largest generalized eigenvalue of [(L_candidate, L_base)] on the range
    of [L_base]. Requires the base graph to be connected. *)
