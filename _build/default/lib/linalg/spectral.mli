(** Exact spectral-approximation quality of a candidate sparsifier: the
    extreme generalized eigenvalues of the pencil [(L_H, L_G)] restricted to
    the range of [L_G]. [H] is an [eps]-spectral sparsifier of [G]
    (Definition 6 / Theorem 7) iff both bounds land in [[1-eps, 1+eps]].

    Verification-only: O(n^3) dense eigendecompositions. *)

type bounds = {
  lambda_min : float;  (** min of [x^T L_H x / x^T L_G x] over the range of [L_G] *)
  lambda_max : float;
  kernel_leak : float;  (** energy of [L_H] inside the kernel of [L_G]; must be ~0 *)
}

val pencil_bounds : base:Ds_graph.Weighted_graph.t -> candidate:Ds_graph.Weighted_graph.t -> bounds

val is_sparsifier :
  base:Ds_graph.Weighted_graph.t -> candidate:Ds_graph.Weighted_graph.t -> eps:float -> bool

val quadratic_ratio_samples :
  Ds_util.Prng.t ->
  base:Ds_graph.Weighted_graph.t ->
  candidate:Ds_graph.Weighted_graph.t ->
  samples:int ->
  float array
(** Ratios [x^T L_H x / x^T L_G x] on random unit vectors (projected off the
    ones vector) — a cheap statistical check that brackets the exact
    bounds. Skips draws where the base form is ~0. *)

val cut_ratio_samples :
  Ds_util.Prng.t ->
  base:Ds_graph.Weighted_graph.t ->
  candidate:Ds_graph.Weighted_graph.t ->
  samples:int ->
  float array
(** The same ratios on random binary cut vectors: the classical cut-
    sparsifier guarantee implied by a spectral one. *)
