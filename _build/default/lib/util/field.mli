(** Arithmetic in the Mersenne prime field [F_p] with [p = 2^31 - 1].

    All elements are native OCaml [int]s in the range [0, p). Products of two
    elements fit in a 63-bit native int ([ (p-1)^2 < 2^62 ]), so no big-number
    support is needed. This field backs every fingerprint and hash polynomial
    in the sketching layer. *)

val p : int
(** The field modulus, [2^31 - 1]. *)

val of_int : int -> int
(** [of_int x] reduces an arbitrary integer (possibly negative) into [0, p). *)

val add : int -> int -> int
(** Field addition. Arguments must already be reduced. *)

val sub : int -> int -> int
(** Field subtraction. Arguments must already be reduced. *)

val neg : int -> int
(** Field negation. *)

val mul : int -> int -> int
(** Field multiplication. Arguments must already be reduced. *)

val pow : int -> int -> int
(** [pow b e] is [b^e mod p] by binary exponentiation. Requires [e >= 0]. *)

val inv : int -> int
(** Multiplicative inverse by Fermat's little theorem.
    @raise Division_by_zero on [inv 0]. *)

val div : int -> int -> int
(** [div a b = mul a (inv b)]. *)

val scale_int : int -> int -> int
(** [scale_int c x] multiplies a field element [x] by an arbitrary (possibly
    negative, possibly large) integer coefficient [c], reducing [c] first.
    Used to fold signed stream multiplicities into fingerprints. *)
