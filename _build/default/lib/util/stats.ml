let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted a in
    if n land 1 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let percentile a q =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted a in
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let lo = max 0 (min lo (n - 1)) and hi = max 0 (min hi (n - 1)) in
    let frac = rank -. floor rank in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let max_arr a = Array.fold_left max neg_infinity a
let min_arr a = Array.fold_left min infinity a

let histogram a ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let h = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      h.(i) <- h.(i) + 1)
    a;
  h

let total_variation p q =
  if Array.length p <> Array.length q then
    invalid_arg "Stats.total_variation: length mismatch";
  let norm a =
    let s = Array.fold_left ( +. ) 0.0 a in
    if s = 0.0 then a else Array.map (fun x -> x /. s) a
  in
  let p = norm p and q = norm q in
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  !acc /. 2.0

let chi_square_uniform counts =
  let n = Array.length counts in
  if n = 0 then 0.0
  else begin
    let total = Array.fold_left ( + ) 0 counts in
    let expected = float_of_int total /. float_of_int n in
    if expected = 0.0 then 0.0
    else
      Array.fold_left
        (fun acc c ->
          let d = float_of_int c -. expected in
          acc +. (d *. d /. expected))
        0.0 counts
  end
