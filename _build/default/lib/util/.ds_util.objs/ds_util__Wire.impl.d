lib/util/wire.ml: Array Buffer Char Printf String
