lib/util/kwise.mli: Prng
