lib/util/field.mli:
