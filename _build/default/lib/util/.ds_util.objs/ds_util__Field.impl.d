lib/util/field.ml:
