lib/util/kwise.ml: Array Field Prng
