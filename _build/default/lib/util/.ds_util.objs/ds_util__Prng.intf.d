lib/util/prng.mli:
