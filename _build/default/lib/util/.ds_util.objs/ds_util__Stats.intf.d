lib/util/stats.mli:
