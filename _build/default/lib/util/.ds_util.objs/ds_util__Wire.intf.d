lib/util/wire.mli:
