lib/util/space.mli: Format
