lib/util/space.ml: Format
