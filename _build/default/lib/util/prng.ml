type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 output mix (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let split t = { state = mix (next64 t) }

let split_named t tag =
  let h = ref t.state in
  String.iter (fun c -> h := mix (Int64.add !h (Int64.of_int (Char.code c)))) tag;
  { state = mix !h }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = 0x3FFFFFFFFFFFFFFF in
  let lim = max - (max mod bound) in
  let rec go () =
    let r = next t in
    if r >= lim then go () else r mod bound
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  r /. 9007199254740992.0 *. bound (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L
let bernoulli t q = float t 1.0 < q

let geometric_level t =
  (* Count trailing ones of a uniform word; resample on the (2^-62)-probability
     all-ones word so the level is unbounded in principle but cheap. *)
  let rec go acc =
    let r = next t in
    let rec count r acc = if r land 1 = 1 then count (r lsr 1) (acc + 1) else acc in
    let ones = count r 0 in
    if ones = 62 then go (acc + 62) else acc + ones
  in
  go 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
