type t = { coeffs : int array }

let create rng ~k =
  if k < 1 then invalid_arg "Kwise.create: k must be >= 1";
  let coeffs = Array.init k (fun _ -> Prng.int rng Field.p) in
  (* Avoid the identically-zero function for degenerate uses. *)
  if Array.for_all (fun c -> c = 0) coeffs then coeffs.(0) <- 1;
  { coeffs }

(* Keys can exceed p (edge indices go up to n^2); fold the high bits in with
   a multiplier so that keys congruent mod p still hash differently. *)
let fold_key x =
  let lo = x land 0x7fffffff
  and hi = (x lsr 31) land 0x7fffffff in
  Field.add (Field.of_int lo) (Field.mul (Field.of_int hi) 0x5DEECE66)

let eval t x =
  let x = fold_key x in
  let acc = ref 0 in
  for i = Array.length t.coeffs - 1 downto 0 do
    acc := Field.add (Field.mul !acc x) t.coeffs.(i)
  done;
  !acc

let to_range t x ~bound =
  if bound <= 0 then invalid_arg "Kwise.to_range: bound must be positive";
  eval t x mod bound

let to_unit t x = float_of_int (eval t x) /. float_of_int Field.p

let bernoulli t x q = to_unit t x < q

let level t x =
  let v = eval t x in
  if v = 0 then 31
  else begin
    (* v uniform in [1, p); level j iff v < p / 2^j. *)
    let rec go j threshold =
      if j >= 31 then 31
      else if v < threshold then go (j + 1) (threshold / 2)
      else j
    in
    go 0 Field.p - 1 |> max 0
  end

let space_in_words t = Array.length t.coeffs
