(** Deterministic, splittable pseudo-random number generation.

    The whole repository derives every random choice from a single master
    seed through this module, so all experiments and tests are reproducible.
    The core generator is SplitMix64; [split] derives statistically
    independent child generators, which stands in for the shared randomness
    that the paper's distributed servers agree on (Section 1) and for Nisan's
    PRG in Section 6.3 (see DESIGN.md, substitutions). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val copy : t -> t
(** Independent copy sharing no future state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of [t]'s subsequent output. *)

val split_named : t -> string -> t
(** [split_named t tag] derives a child generator from [t]'s {e current
    seed} and [tag] without advancing [t]; equal tags give equal children.
    Used to give every sketch instance its own reproducible seed. *)

val next : t -> int
(** Next raw 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t q] is true with probability [q]. *)

val geometric_level : t -> int
(** Number of fair-coin heads before the first tail: [Geometric(1/2)],
    i.e. level [j] with probability [2^-(j+1)]. Used for nested sampling. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)
