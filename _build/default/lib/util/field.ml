let p = 0x7fffffff (* 2^31 - 1 *)

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = let d = a - b in if d < 0 then d + p else d
let neg a = if a = 0 then 0 else p - a

(* (p-1)^2 = (2^31-2)^2 < 2^62 - 1 = max_int, so the product never wraps. *)
let mul a b = a * b mod p

let pow b e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  if e < 0 then invalid_arg "Field.pow: negative exponent";
  go 1 (of_int b) e

let inv a = if a = 0 then raise Division_by_zero else pow a (p - 2)
let div a b = mul a (inv b)
let scale_int c x = mul (of_int c) x
