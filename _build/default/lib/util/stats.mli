(** Small statistics helpers used by experiments and tests. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val median : float array -> float
(** Median (average of middle pair for even lengths); 0 on empty. *)

val percentile : float array -> float -> float
(** [percentile a q] with [q] in [0, 100], nearest-rank with linear
    interpolation; 0 on empty. Does not mutate [a]. *)

val max_arr : float array -> float
val min_arr : float array -> float

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** Fixed-width histogram; values outside [lo, hi) clamp to end bins. *)

val total_variation : float array -> float array -> float
(** Total-variation distance between two discrete distributions given as
    (not necessarily normalised) non-negative weight vectors of equal
    length. *)

val chi_square_uniform : int array -> float
(** Chi-square statistic of observed counts against the uniform law. *)
