let words_to_bits w = w * 63
let words_to_mib w = float_of_int (w * 8) /. (1024.0 *. 1024.0)

let pp_words ppf w =
  let fw = float_of_int w in
  if fw >= 1e9 then Format.fprintf ppf "%.2f Gw" (fw /. 1e9)
  else if fw >= 1e6 then Format.fprintf ppf "%.2f Mw" (fw /. 1e6)
  else if fw >= 1e3 then Format.fprintf ppf "%.1f Kw" (fw /. 1e3)
  else Format.fprintf ppf "%d w" w
