open Ds_graph

type t = { n : int; k : int; sketches : Agm_sketch.t array }

let create rng ~n ~k ~params =
  if k < 1 then invalid_arg "K_connectivity.create: k must be >= 1";
  let sketches =
    Array.init k (fun i ->
        Agm_sketch.create (Ds_util.Prng.split_named rng (Printf.sprintf "kc%d" i)) ~n ~params)
  in
  { n; k; sketches }

let update t ~u ~v ~delta =
  Array.iter (fun s -> Agm_sketch.update s ~u ~v ~delta) t.sketches

let certificate t =
  let acc = Graph.create t.n in
  (* Peel forests: each round's forest is removed from all later sketches so
     the next forest finds k-edge-connectivity witnesses beyond it. *)
  for i = 0 to t.k - 1 do
    let forest = Agm_sketch.spanning_forest t.sketches.(i) in
    let layer = Graph.create t.n in
    List.iter
      (fun (u, v) ->
        if not (Graph.mem_edge layer u v) then begin
          Graph.add_edge layer u v;
          if not (Graph.mem_edge acc u v) then Graph.add_edge acc u v
        end)
      forest;
    for j = i + 1 to t.k - 1 do
      Agm_sketch.subtract_graph t.sketches.(j) layer
    done
  done;
  acc

let is_k_connected t = Min_cut.edge_connectivity (certificate t) >= t.k

let space_in_words t =
  Array.fold_left (fun acc s -> acc + Agm_sketch.space_in_words s) 0 t.sketches
