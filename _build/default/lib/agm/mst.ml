open Ds_graph
open Ds_stream

type params = { gamma : float; w_min : float; w_max : float; sketch : Agm_sketch.params }

type t = {
  n : int;
  classes : Weight_class.t;
  sketches : Agm_sketch.t array; (* one per weight class *)
}

let create rng ~n ~params =
  let classes =
    Weight_class.create ~gamma:params.gamma ~w_min:params.w_min ~w_max:params.w_max
  in
  let sketches =
    Array.init (Weight_class.num_classes classes) (fun c ->
        Agm_sketch.create
          (Ds_util.Prng.split_named rng (Printf.sprintf "mst%d" c))
          ~n ~params:params.sketch)
  in
  { n; classes; sketches }

let update t ~u ~v ~weight ~delta =
  let c = Weight_class.class_of t.classes weight in
  Agm_sketch.update t.sketches.(c) ~u ~v ~delta

let extract t =
  let uf = Union_find.create t.n in
  let edges = ref [] in
  Array.iteri
    (fun c sketch ->
      if Union_find.num_classes uf > 1 then begin
        let labels = Array.init t.n (fun v -> Union_find.find uf v) in
        let forest = Agm_sketch.spanning_forest ~labels sketch in
        let w = Weight_class.representative t.classes c in
        List.iter
          (fun (a, b) -> if Union_find.union uf a b then edges := (a, b, w) :: !edges)
          forest
      end)
    t.sketches;
  !edges

let forest_weight edges = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 edges

let space_in_words t =
  Array.fold_left (fun acc s -> acc + Agm_sketch.space_in_words s) 0 t.sketches
