lib/agm/bipartiteness.mli: Agm_sketch Ds_util
