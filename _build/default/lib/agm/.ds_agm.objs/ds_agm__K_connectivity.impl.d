lib/agm/k_connectivity.ml: Agm_sketch Array Ds_graph Ds_util Graph List Min_cut Printf
