lib/agm/agm_sketch.ml: Array Ds_graph Ds_sketch Ds_util Edge_index F0 Graph Hashtbl L0_sampler List Printf Prng Union_find
