lib/agm/mst.ml: Agm_sketch Array Ds_graph Ds_stream Ds_util List Printf Union_find Weight_class
