lib/agm/agm_sketch.mli: Ds_graph Ds_sketch Ds_util
