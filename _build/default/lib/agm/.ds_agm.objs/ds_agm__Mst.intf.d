lib/agm/mst.mli: Agm_sketch Ds_util
