lib/agm/connectivity.ml: Agm_sketch Array Ds_graph List Union_find
