lib/agm/k_connectivity.mli: Agm_sketch Ds_graph Ds_util
