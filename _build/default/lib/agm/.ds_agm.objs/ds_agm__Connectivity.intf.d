lib/agm/connectivity.mli: Agm_sketch Ds_util
