lib/agm/bipartiteness.ml: Agm_sketch Ds_graph Ds_util List Union_find
