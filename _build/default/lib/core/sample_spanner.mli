(** Algorithm 5: SAMPLE-AUGMENTED-SPANNER.

    One invocation samples nested edge sets [E_1 ⊇ E_2 ⊇ ... ⊇ E_H] at
    rates [2^-j], builds the {e augmented} two-pass spanner of each (the
    spanner plus every edge its execution path decoded, Claim 20), and
    emits, for each edge [e] recovered at level [j] with [q_hat(e) = 2^-j],
    the weight [2^j]. Averaged over [Z] independent invocations by
    {!Sparsify}, the expectation of an edge's weight is
    [~ q_hat(e) * 2^{j(e)} = 1], and Lemma 22 shows the matrix concentrates
    to a spectral sparsifier. *)

type result = {
  edges : (int * int * float) list;  (** (u, v, weight [2^j]) for emitted edges *)
  space_words : int;
}

val run :
  Ds_util.Prng.t ->
  n:int ->
  spanner_params:Two_pass_spanner.params ->
  h_levels:int ->
  q:(int -> int -> int) ->
  Ds_stream.Update.t array ->
  result
(** [q u v] must return the level [j] with [q_hat = 2^-j] (an {!Estimate}
    query). Two passes over the stream per level. *)
