open Ds_util
open Ds_graph
open Ds_stream

type outcome = {
  trials : int;
  correct : int;
  mean_space_words : float;
  mean_distortion : float;
}

let success_rate o = float_of_int o.correct /. float_of_int o.trials

let play rng ~n ~d ?(block_factor = 3.0) ~algo_budget ~trials () =
  if d < 2 then invalid_arg "Ind_game.play: d must be >= 2";
  let s = max 2 (int_of_float (ceil (block_factor *. float_of_int n /. float_of_int d))) in
  let total = s * d in
  let correct = ref 0 and space_acc = ref 0.0 and distortion_acc = ref 0.0 in
  for _ = 1 to trials do
    let trng = Prng.split rng in
    (* Alice's input: s independent G(d, 1/2) blocks. *)
    let g = Graph.create total in
    for block = 0 to s - 1 do
      let base = block * d in
      Edge_index.iter_pairs ~n:d (fun a b ->
          if Prng.bool trng then Graph.add_edge g (base + a) (base + b))
    done;
    let alice_stream = Stream_gen.insert_only (Prng.split trng) g in
    (* Bob's choices. *)
    let j = Prng.int trng s in
    let pick_pair () =
      let a = Prng.int trng d in
      let rec other () =
        let b = Prng.int trng d in
        if b = a then other () else b
      in
      (a, other ())
    in
    let pairs = Array.init s (fun _ -> pick_pair ()) in
    let u_j, v_j = pairs.(j) in
    let truth = Graph.mem_edge g ((j * d) + u_j) ((j * d) + v_j) in
    let bob_edges = ref [] in
    for l = 0 to s - 2 do
      let _, v_l = pairs.(l) and u_next, _ = pairs.(l + 1) in
      let a = (l * d) + v_l and b = ((l + 1) * d) + u_next in
      if not (Graph.mem_edge g a b) then begin
        Graph.add_edge g a b;
        bob_edges := Update.insert a b :: !bob_edges
      end
    done;
    let stream = Array.append alice_stream (Array.of_list (List.rev !bob_edges)) in
    (* The space-bounded streaming algorithm (a single pass, so handing the
       state from Alice to Bob is just continuing the same run). *)
    let params = Additive_spanner.default_params ~n:total ~d:algo_budget in
    let r = Additive_spanner.run (Prng.split trng) ~n:total ~params stream in
    let answer = Graph.mem_edge r.Additive_spanner.spanner ((j * d) + u_j) ((j * d) + v_j) in
    if answer = truth then incr correct;
    space_acc := !space_acc +. float_of_int r.Additive_spanner.space_words;
    let dist = Stretch.additive ~pairs:(`Sample (Prng.split trng, 30)) ~base:g
        ~spanner:r.Additive_spanner.spanner ()
    in
    if dist.Stretch.max <> infinity then distortion_acc := !distortion_acc +. dist.Stretch.max
  done;
  {
    trials;
    correct = !correct;
    mean_space_words = !space_acc /. float_of_int trials;
    mean_distortion = !distortion_acc /. float_of_int trials;
  }
