(** The cluster hierarchy of Section 3.1, shared by the offline reference
    algorithm and the two-pass streaming implementation.

    Levels [0 .. k-1] carry center sets [C_r] ([C_0 = V], density
    [n^{-r/k}]). Every vertex starts as a singleton cluster at level 0; at
    step [i] each live cluster rooted at [u ∈ C_i] either attaches to a
    parent [w ∈ C_{i+1}] found adjacent to the cluster (merging member sets
    at level [i+1]) or becomes {e terminal}. How a parent is found is the
    only difference between the offline and streaming versions, so it is a
    callback here. Membership is chain-based: each vertex belongs, at each
    level it survives to, to exactly one cluster — hence terminal clusters
    partition [V], which pass 2 of Algorithm 2 relies on to route updates by
    "terminal parent".

    Note that the same vertex can root two different terminal clusters (its
    own chain can die at level 0 while other clusters attach to it higher
    up — the paper's forest is on [V x levels], footnote 2), so terminals
    are identified by a dense id, never by their root vertex. *)

type centers = bool array array
(** [centers.(r).(v)] iff [v ∈ C_r]; row 0 is all-true. *)

val sample_centers : Ds_util.Prng.t -> n:int -> k:int -> centers
(** Independent sampling at rate [n^{-r/k}] per level [r]. *)

type attach = level:int -> root:int -> members:int list -> (int * (int * int)) option
(** [attach ~level ~root ~members] looks for a parent for the cluster rooted
    at [root] with the given members: [Some (w, (a, b))] attaches to
    [w ∈ C_{level+1}] with witness edge [(a, b) ∈ E], [a] inside the
    cluster, [b = w]. [None] makes the cluster terminal. *)

type terminal = { root : int; level : int; members : int list }

type t = {
  n : int;
  k : int;
  centers : centers;
  terminal_id_of : int array;  (** vertex -> index into [terminals] *)
  terminals : terminal array;  (** member lists partition [V] *)
  witnesses : (int * int) list;  (** all witness edges [phi(F)] *)
}

val build : n:int -> k:int -> centers:centers -> attach:attach -> t
(** Run the first phase. [attach] is called once per live non-final-level
    cluster per step, in increasing level order. *)

val terminal_level_of : t -> int -> int
(** Level of the terminal cluster a vertex belongs to. *)

val check_partition : t -> bool
(** Terminal member lists partition the vertex set (internal invariant,
    exposed for tests). *)
