(** Algorithm 4: the robust-connectivity oracle [q_hat].

    Preprocessing builds [J x T] distance oracles, one per (repetition,
    sampling rate): oracle [(j, t)] is a two-pass spanner (stretch
    [alpha = 2^kappa]) of the edge set [E^j_t], where [E^j_1 = E] and each
    subsequent level keeps edges at rate 1/2. A query for an edge [(u, v)]
    declares the pair "far" at rate [t] in repetition [j] when the spanner
    distance exceeds [alpha^2] (which certifies that the subsample has no
    path of length [<= alpha] between them); [q_hat = 2^-t*] for the
    smallest [t*] at which at least a [(1 - lambda)] fraction of the [J]
    repetitions are far. By Lemma 19 of [KP12], [q_hat = Omega(R_e /
    alpha^2)].

    The [Exact_resistance] mode replaces the whole machinery by exact
    effective resistances (ablation E7: isolates the error of the KP12
    reduction from the error of the streaming oracle). *)

type mode =
  | Spanner_oracle of Two_pass_spanner.params
  | Exact_resistance

type params = {
  j_reps : int;  (** J: independent repetitions (paper: [O(log n / lambda^2)]) *)
  t_levels : int;  (** T: sampling rates [2^0 .. 2^-(T-1)] *)
  lambda : float;  (** fraction of repetitions allowed to disagree *)
  far_threshold : int;  (** spanner distance certifying "no short path" *)
  mode : mode;
}

val default_params : k:int -> params
(** [j_reps = 5], [t_levels] sized to the edge space, [lambda = 0.2],
    [far_threshold = (2^k)^2], spanner oracles with stretch [2^k]. *)

type t

val build : Ds_util.Prng.t -> n:int -> params:params -> Ds_stream.Update.t array -> t
(** Two passes over the stream (shared by all oracles). *)

val query : t -> int -> int -> int
(** [query t u v] is the level [j >= 0] such that [q_hat(u,v) = 2^-j]. *)

val space_words : t -> int
