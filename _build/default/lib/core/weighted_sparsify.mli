(** Corollary 2 for weighted graphs: the paper's statement carries a
    [log(wmax/wmin)] factor because the input is split into geometric weight
    classes (Section 6: "first, we round all edge weights to the nearest
    power of (1+gamma)") and one unweighted sparsifier runs per class. The
    union, with each class's output weights scaled by the class
    representative, is a [(1 + gamma)(1 ± eps)]-spectral sparsifier of the
    weighted input. *)

type result = {
  sparsifier : Ds_graph.Weighted_graph.t;
  space_words : int;
  classes : int;  (** non-empty weight classes processed *)
}

val run :
  Ds_util.Prng.t ->
  n:int ->
  params:Sparsify.params ->
  gamma:float ->
  w_min:float ->
  w_max:float ->
  Ds_stream.Update.weighted array ->
  result

val quality_bound : eps:float -> gamma:float -> float * float
(** [(lo, hi)] multiplicative window the pencil eigenvalues must land in:
    [((1-eps)/(1+gamma), (1+eps)(1+gamma))]. *)
