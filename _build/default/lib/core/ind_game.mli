(** Theorem 4 as an executable experiment: the INDEX communication game.

    Alice holds [s = ceil(factor * n / d)] independent [G(d, 1/2)] graphs
    (her input bits) and streams their disjoint union through a space-
    bounded one-pass streaming spanner (our Algorithm 3 instance). Bob
    receives the algorithm state (in the simulation, the same in-memory
    sketch — exactly what the reduction means), picks a uniformly random
    block [J] and pair [{U, V}] inside it, inserts his random path edges
    [{V_l, U_{l+1}}], finishes the pass, and answers "the bit [X_{U,V}] is
    1" iff the edge appears in the returned spanner.

    Theorem 4 says any algorithm with additive distortion [n/d] and success
    probability [>= 6/7] must use [Omega(n d)] bits, so sweeping the
    algorithm's space budget must show success probability rising from
    coin-flipping to near-1 as the budget crosses [Theta(n d)] — experiment
    E5. *)

type outcome = {
  trials : int;
  correct : int;  (** Bob's answer equals the true bit *)
  mean_space_words : float;  (** measured streaming-state size *)
  mean_distortion : float;  (** measured additive distortion of the returned spanners *)
}

val play :
  Ds_util.Prng.t ->
  n:int ->
  d:int ->
  ?block_factor:float ->
  algo_budget:int ->
  trials:int ->
  unit ->
  outcome
(** [n, d]: instance shape (the hard distribution has [ceil(factor * n/d)]
    blocks of [d] vertices; [block_factor] defaults to 3.0, scaled down from
    the paper's 18 to keep laptop-size instances meaningful).
    [algo_budget]: the [d] parameter handed to the streaming spanner — its
    space is [~O(n * algo_budget)]. *)

val success_rate : outcome -> float
