open Ds_graph

let run ~k g =
  if k < 1 then invalid_arg "Greedy_spanner.run: k must be >= 1";
  let n = Graph.n g in
  let t = (2 * k) - 1 in
  let spanner = Graph.create n in
  Graph.iter_edges g (fun u v ->
      let d = Bfs.distances_capped spanner ~source:u ~cap:t in
      if d.(v) > t then Graph.add_edge spanner u v);
  spanner

let run_weighted ~k g =
  if k < 1 then invalid_arg "Greedy_spanner.run_weighted: k must be >= 1";
  let n = Weighted_graph.n g in
  let t = float_of_int ((2 * k) - 1) in
  let edges =
    List.sort (fun (_, _, w1) (_, _, w2) -> compare w1 w2) (Weighted_graph.edges g)
  in
  let spanner = Weighted_graph.create n in
  List.iter
    (fun (u, v, w) ->
      let d = Dijkstra.distances spanner ~source:u in
      if d.(v) > t *. w then Weighted_graph.add_edge spanner u v w)
    edges;
  spanner
