open Ds_graph

type result = { spanner : Graph.t; clustering : Clustering.t }

let attach_offline g centers ~level ~root:_ ~members =
  let next = centers.(level + 1) in
  let found = ref None in
  List.iter
    (fun v ->
      if !found = None then
        Graph.iter_neighbors g v (fun w -> if !found = None && next.(w) then found := Some (w, (v, w))))
    members;
  !found

let run rng ~k g =
  if k < 1 then invalid_arg "Basic_spanner.run: k must be >= 1";
  let n = Graph.n g in
  let centers = Clustering.sample_centers rng ~n ~k in
  let clustering =
    Clustering.build ~n ~k ~centers ~attach:(attach_offline g centers)
  in
  let spanner = Graph.create n in
  let add u v = if not (Graph.mem_edge spanner u v) then Graph.add_edge spanner u v in
  (* Witness edges phi(F). *)
  List.iter (fun (a, b) -> add a b) clustering.Clustering.witnesses;
  (* For each terminal cluster S, one edge from every outside neighbour v of
     S back into S. Membership is by terminal id (a vertex may root two
     terminal clusters, so roots do not identify clusters). *)
  let tid_of = clustering.Clustering.terminal_id_of in
  Array.iteri
    (fun tid { Clustering.members; _ } ->
      let covered = Hashtbl.create 16 in
      List.iter
        (fun w ->
          Graph.iter_neighbors g w (fun v ->
              if tid_of.(v) <> tid && not (Hashtbl.mem covered v) then begin
                Hashtbl.add covered v ();
                add v w
              end))
        members)
    clustering.Clustering.terminals;
  { spanner; clustering }

let size_bound ~n ~k =
  let nf = float_of_int n and kf = float_of_int k in
  kf *. (nf ** (1.0 +. (1.0 /. kf))) *. log (max 2.0 nf)
