open Ds_util
open Ds_graph
open Ds_linalg
open Ds_stream

type mode = Spanner_oracle of Two_pass_spanner.params | Exact_resistance

type params = {
  j_reps : int;
  t_levels : int;
  lambda : float;
  far_threshold : int;
  mode : mode;
}

let default_params ~k =
  let alpha = 1 lsl k in
  {
    j_reps = 5;
    t_levels = 12;
    lambda = 0.2;
    far_threshold = alpha * alpha;
    mode = Spanner_oracle (Two_pass_spanner.default_params ~k);
  }

type oracle = {
  spanner : Graph.t;
  dist_cache : (int, int array) Hashtbl.t; (* capped BFS per source *)
}

type t = {
  n : int;
  prm : params;
  oracles : oracle array array; (* j_reps x t_levels *)
  resistances : (int, float) Hashtbl.t; (* Exact_resistance mode *)
  space : int;
}

let filter_stream hash ~t stream =
  (* E^j_t: keep edges whose geometric level is >= t - 1 (rate 2^-(t-1));
     the key is a symmetric encoding of the unordered pair. *)
  Array.of_list
    (List.filter
       (fun (u : Update.t) ->
         let key = min u.Update.u u.Update.v + (1_000_003 * max u.Update.u u.Update.v) in
         Kwise.level hash key >= t - 1)
       (Array.to_list stream))

let build rng ~n ~params:prm stream =
  match prm.mode with
  | Exact_resistance ->
      let g = Update.final_graph ~n stream in
      let wg = Weighted_graph.of_graph g in
      let resistances = Hashtbl.create (Graph.num_edges g) in
      Graph.iter_edges g (fun u v ->
          Hashtbl.replace resistances
            (Edge_index.encode ~n u v)
            (Resistance.effective wg u v));
      { n; prm; oracles = [||]; resistances; space = 0 }
  | Spanner_oracle sp ->
      let space = ref 0 in
      let oracles =
        Array.init prm.j_reps (fun j ->
            let jrng = Prng.split_named rng (Printf.sprintf "estimate.j%d" j) in
            let hash = Kwise.create (Prng.split_named jrng "levels") ~k:6 in
            Array.init prm.t_levels (fun ti ->
                let t = ti + 1 in
                let sub = filter_stream hash ~t stream in
                let r =
                  Two_pass_spanner.run
                    (Prng.split_named jrng (Printf.sprintf "t%d" t))
                    ~n ~params:sp sub
                in
                space := !space + r.Two_pass_spanner.space_words;
                { spanner = r.Two_pass_spanner.spanner; dist_cache = Hashtbl.create 16 }))
      in
      { n; prm; oracles; resistances = Hashtbl.create 0; space = !space }

let oracle_distance prm o u v =
  let dist =
    match Hashtbl.find_opt o.dist_cache u with
    | Some d -> d
    | None ->
        let d = Bfs.distances_capped o.spanner ~source:u ~cap:(prm.far_threshold + 1) in
        Hashtbl.replace o.dist_cache u d;
        d
  in
  dist.(v)

let query t u v =
  match t.prm.mode with
  | Exact_resistance ->
      let r =
        match Hashtbl.find_opt t.resistances (Edge_index.encode ~n:t.n u v) with
        | Some r -> r
        | None -> 1.0
      in
      (* q = clamp(R_e) to [2^-T, 1/2]; j = -log2 q (levels start at 1, as in
         Algorithm 5 where the sampled classes are E_1, E_2, ...). *)
      let q = max (min r 0.5) (2.0 ** -.float_of_int t.prm.t_levels) in
      max 1 (int_of_float (Float.round (-.(log q /. log 2.0))))
  | Spanner_oracle _ ->
      let needed =
        int_of_float (ceil ((1.0 -. t.prm.lambda) *. float_of_int t.prm.j_reps))
      in
      (* Index ti samples at rate 2^-ti; the paper's E^j_t uses t = ti + 1
         and sets q_hat = 2^-t, so the returned level is ti + 1 >= 1. *)
      let rec scan ti =
        if ti >= t.prm.t_levels then t.prm.t_levels
        else begin
          let far = ref 0 in
          Array.iter
            (fun reps ->
              let d = oracle_distance t.prm reps.(ti) u v in
              if d > t.prm.far_threshold then incr far)
            t.oracles;
          if !far >= needed then ti + 1 else scan (ti + 1)
        end
      in
      scan 0

let space_words t = t.space
