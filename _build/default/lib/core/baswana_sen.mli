(** The Baswana–Sen randomized (2k-1)-spanner [BS07] — the classical offline
    comparator the paper discusses (its own algorithm is explicitly {e not} a
    streaming port of this one). Expected size [O(k n^{1+1/k})], stretch
    [2k - 1], linear time. Used as the baseline in experiment E2. *)

val run : Ds_util.Prng.t -> k:int -> Ds_graph.Graph.t -> Ds_graph.Graph.t
(** @raise Invalid_argument if [k < 1]. For [k = 1] returns the graph
    itself (stretch 1). *)

val stretch_bound : k:int -> int
(** [2k - 1]. *)
