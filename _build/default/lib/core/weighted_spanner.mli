(** Remark 14: spanners of weighted graphs by geometric weight classes.

    Weights are rounded to powers of [1 + gamma]; one unweighted two-pass
    spanner runs per class on the class-filtered stream, and the union of
    the per-class spanners (with class-representative weights) is a
    [2^k (1 + gamma)]-spanner of the weighted graph, at a space cost of
    [O(log(wmax/wmin) / gamma)] unweighted instances. *)

type result = {
  spanner : Ds_graph.Weighted_graph.t;
  space_words : int;
  classes : int;  (** number of (non-empty) weight classes processed *)
}

val run :
  Ds_util.Prng.t ->
  n:int ->
  params:Two_pass_spanner.params ->
  gamma:float ->
  w_min:float ->
  w_max:float ->
  Ds_stream.Update.weighted array ->
  result

val stretch_bound : k:int -> gamma:float -> float
(** [2^k * (1 + gamma)]. *)
