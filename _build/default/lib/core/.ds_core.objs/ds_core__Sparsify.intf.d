lib/core/sparsify.mli: Ds_graph Ds_stream Ds_util Estimate Two_pass_spanner
