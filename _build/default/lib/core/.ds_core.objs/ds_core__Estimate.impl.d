lib/core/estimate.ml: Array Bfs Ds_graph Ds_linalg Ds_stream Ds_util Edge_index Float Graph Hashtbl Kwise List Printf Prng Resistance Two_pass_spanner Update Weighted_graph
