lib/core/two_pass_spanner.mli: Clustering Ds_graph Ds_sketch Ds_stream Ds_util
