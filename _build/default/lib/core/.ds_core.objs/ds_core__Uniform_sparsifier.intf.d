lib/core/uniform_sparsifier.mli: Ds_graph Ds_util
