lib/core/ss_sparsifier.ml: Ds_graph Ds_linalg Ds_util List Prng Resistance Weighted_graph
