lib/core/sample_spanner.mli: Ds_stream Ds_util Two_pass_spanner
