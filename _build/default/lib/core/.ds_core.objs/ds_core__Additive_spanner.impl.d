lib/core/additive_spanner.ml: Agm_sketch Array Ds_agm Ds_graph Ds_sketch Ds_stream Ds_util F0 Graph L0_sampler List Prng Sparse_recovery Update
