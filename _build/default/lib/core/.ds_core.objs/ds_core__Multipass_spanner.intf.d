lib/core/multipass_spanner.mli: Ds_graph Ds_sketch Ds_stream Ds_util
