lib/core/baswana_sen.ml: Array Ds_graph Ds_util Graph Hashtbl List Prng
