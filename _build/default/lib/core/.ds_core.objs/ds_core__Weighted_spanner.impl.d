lib/core/weighted_spanner.ml: Array Ds_graph Ds_stream Ds_util Graph Printf Prng Two_pass_spanner Weight_class Weighted_graph
