lib/core/stretch.mli: Ds_graph Ds_util
