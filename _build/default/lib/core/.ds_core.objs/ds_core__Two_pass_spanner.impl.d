lib/core/two_pass_spanner.ml: Array Clustering Ds_graph Ds_sketch Ds_stream Ds_util Edge_index F0 Graph Hashtbl Kwise List Packed_l0 Printf Prng Sketch_table Sparse_recovery Update
