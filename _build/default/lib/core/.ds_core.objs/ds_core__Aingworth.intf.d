lib/core/aingworth.mli: Ds_graph
