lib/core/weighted_sparsify.ml: Array Ds_graph Ds_stream Ds_util Printf Prng Sparsify Weight_class Weighted_graph
