lib/core/greedy_spanner.mli: Ds_graph
