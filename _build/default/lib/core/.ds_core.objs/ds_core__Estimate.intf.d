lib/core/estimate.mli: Ds_stream Ds_util Two_pass_spanner
