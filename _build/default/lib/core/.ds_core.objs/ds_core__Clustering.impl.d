lib/core/clustering.ml: Array Ds_util Hashtbl List Prng
