lib/core/multipass_spanner.ml: Array Ds_graph Ds_sketch Ds_stream Ds_util F0 Graph L0_sampler List Packed_l0 Printf Prng Sketch_table Update
