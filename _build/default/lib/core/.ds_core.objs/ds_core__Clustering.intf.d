lib/core/clustering.mli: Ds_util
