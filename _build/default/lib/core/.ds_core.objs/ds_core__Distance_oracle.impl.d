lib/core/distance_oracle.ml: Array Bfs Dijkstra Ds_graph Graph Hashtbl Two_pass_spanner Weighted_graph Weighted_spanner
