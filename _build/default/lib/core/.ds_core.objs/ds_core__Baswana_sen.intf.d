lib/core/baswana_sen.mli: Ds_graph Ds_util
