lib/core/weighted_spanner.mli: Ds_graph Ds_stream Ds_util Two_pass_spanner
