lib/core/distance_oracle.mli: Ds_stream Ds_util
