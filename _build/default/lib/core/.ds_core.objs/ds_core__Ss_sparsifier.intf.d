lib/core/ss_sparsifier.mli: Ds_graph Ds_util
