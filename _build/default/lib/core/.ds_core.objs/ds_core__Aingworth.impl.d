lib/core/aingworth.ml: Array Bfs Ds_graph Graph List
