lib/core/weighted_sparsify.mli: Ds_graph Ds_stream Ds_util Sparsify
