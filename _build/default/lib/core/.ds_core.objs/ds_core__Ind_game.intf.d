lib/core/ind_game.mli: Ds_util
