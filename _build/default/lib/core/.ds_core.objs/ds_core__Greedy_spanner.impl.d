lib/core/greedy_spanner.ml: Array Bfs Dijkstra Ds_graph Graph List Weighted_graph
