lib/core/basic_spanner.ml: Array Clustering Ds_graph Graph Hashtbl List
