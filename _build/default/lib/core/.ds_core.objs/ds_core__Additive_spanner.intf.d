lib/core/additive_spanner.mli: Ds_agm Ds_graph Ds_sketch Ds_stream Ds_util
