lib/core/ind_game.ml: Additive_spanner Array Ds_graph Ds_stream Ds_util Edge_index Graph List Prng Stream_gen Stretch Update
