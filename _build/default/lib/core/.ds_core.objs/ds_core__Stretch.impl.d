lib/core/stretch.ml: Array Bfs Dijkstra Ds_graph Ds_util Graph List Prng Stats Weighted_graph
