lib/core/uniform_sparsifier.ml: Ds_graph Ds_util Prng Weighted_graph
