lib/core/sample_spanner.ml: Array Ds_stream Ds_util Hashtbl Kwise List Printf Prng Two_pass_spanner Update
