lib/core/sparsify.ml: Ds_graph Ds_sketch Ds_util Estimate Hashtbl List Printf Prng Sample_spanner Two_pass_spanner Weighted_graph
