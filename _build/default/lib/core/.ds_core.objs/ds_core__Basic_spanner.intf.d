lib/core/basic_spanner.mli: Clustering Ds_graph Ds_util
