(** Exact distortion measurement of a spanner against its base graph.

    For a subgraph [H ⊆ G] the multiplicative stretch
    [max_{u,v} d_H(u,v) / d_G(u,v)] is attained on an {e edge} of [G]
    (sub-paths of shortest paths are shortest paths), so the exact stretch
    needs only one BFS in [H] per vertex — that is what {!multiplicative}
    computes. Additive distortion has no such reduction, so {!additive}
    measures all pairs (or a sample) directly. *)

type summary = {
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  samples : int;
  violations : int;  (** pairs/edges with infinite spanner distance *)
}

val multiplicative : base:Ds_graph.Graph.t -> spanner:Ds_graph.Graph.t -> summary
(** Exact stretch over all edges of [base]. A disconnected pair in the
    spanner counts as a violation and contributes [infinity] to [max]. *)

val multiplicative_weighted :
  base:Ds_graph.Weighted_graph.t -> spanner:Ds_graph.Weighted_graph.t -> summary
(** Weighted counterpart (Dijkstra per vertex). *)

val additive :
  ?pairs:[ `All | `Sample of Ds_util.Prng.t * int ] ->
  base:Ds_graph.Graph.t ->
  spanner:Ds_graph.Graph.t ->
  unit ->
  summary
(** Surplus [d_H(u,v) - d_G(u,v)] over vertex pairs (default all pairs,
    connected in base). *)
