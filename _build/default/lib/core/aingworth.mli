(** The Aingworth–Chekuri–Indyk–Motwani additive-2 spanner [ACIM99] — the
    classical offline comparator for additive spanners that the paper's
    introduction cites ("one can achieve ~O(n^{3/2}) space and O(1)
    distortion"). Keep all edges of vertices with degree below [sqrt n];
    cover the high-degree vertices by a greedy dominating set and add a full
    BFS tree from each dominator. Size [O(n^{3/2} log n)], additive
    distortion 2. Offline (needs the whole graph), which is exactly the gap
    Theorem 3 addresses. *)

val run : Ds_graph.Graph.t -> Ds_graph.Graph.t

val size_bound : n:int -> float
(** [n^{3/2} log n] with unit constant. *)
