open Ds_util
open Ds_stream

type result = { edges : (int * int * float) list; space_words : int }

let run rng ~n ~spanner_params ~h_levels ~q stream =
  let hash = Kwise.create (Prng.split_named rng "levels") ~k:6 in
  let in_level (u : Update.t) j =
    let key = min u.Update.u u.Update.v + (1_000_003 * max u.Update.u u.Update.v) in
    Kwise.level hash key >= j
  in
  let edges = ref [] in
  let space = ref 0 in
  for j = 1 to h_levels do
    let sub = Array.of_list (List.filter (fun u -> in_level u j) (Array.to_list stream)) in
    if Array.length sub > 0 then begin
      let r =
        Two_pass_spanner.run
          (Prng.split_named rng (Printf.sprintf "level%d" j))
          ~n ~params:spanner_params sub
      in
      space := !space + r.Two_pass_spanner.space_words;
      (* Augmented output: spanner plus accessed edges (deduplicated). *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (a, b) ->
          let key = (min a b, max a b) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            if q a b = j then
              edges := (min a b, max a b, float_of_int (1 lsl j)) :: !edges
          end)
        r.Two_pass_spanner.accessed_edges
    end
  done;
  { edges = !edges; space_words = !space }
