(** Theorem 3 / Algorithm 3: the single-pass [O(n/d)]-additive spanner in
    [~O(nd)] space.

    One pass maintains, per vertex [u]:
    - [S(u)]: a sparse-recovery sketch of [N(u)] with budget [~O(d)], so a
      low-degree vertex's whole neighbourhood can be read out ([E_low]);
    - a degree sketch (Theorem 9 stand-in) to decide low vs high;
    - [A(u)]: an L0-sampler of [N(u) ∩ C] (the sets [Z_r] are the sampler's
      internal levels) to pick a parent center for high-degree vertices;
    - AGM connectivity sketches of the whole graph.

    Post-processing subtracts [E_low] from the AGM sketches by linearity,
    contracts the center stars [T_w] into supernodes, extracts a spanning
    forest [F'] of the contraction, and outputs [E_low ∪ F ∪ F'].

    The distortion argument (Theorem 19) needs a path to cross each star at
    most once and pay [O(1)] per star, giving surplus [O(#centers) =
    O(n/d)]. *)

type params = {
  d : int;  (** space/distortion knob: space [~O(nd)], distortion [O(n/d)] *)
  degree_factor : float;
      (** low-degree threshold = [factor * d * log2 n]; recovery budget is
          twice the threshold *)
  center_rate_factor : float;  (** centers sampled at [factor / d] *)
  sampler : Ds_sketch.L0_sampler.params;
  f0 : Ds_sketch.F0.params;
  agm : Ds_agm.Agm_sketch.params;
  hash_degree : int;
}

val default_params : n:int -> d:int -> params

type diagnostics = {
  centers : int;
  low_degree : int;
  high_degree : int;
  degree_misclassified : int;  (** low-degree decodes that failed *)
  orphan_high : int;  (** high-degree vertices with no recoverable center *)
}

type result = {
  spanner : Ds_graph.Graph.t;
  space_words : int;
  diagnostics : diagnostics;
}

val run : Ds_util.Prng.t -> n:int -> params:params -> Ds_stream.Update.t array -> result
(** Single pass over the stream. *)

val distortion_bound : n:int -> d:int -> float
(** [2 + 8 * (#expected centers)] — the Theorem 19 surplus with the
    constants of our proof-following implementation, for experiment
    tables. *)

val space_bound : n:int -> d:int -> float
(** [~O(nd)] with unit constant and one log factor, in words. *)
