open Ds_util

type centers = bool array array

let sample_centers rng ~n ~k =
  if k < 1 then invalid_arg "Clustering.sample_centers: k must be >= 1";
  let rate r = float_of_int n ** (-.float_of_int r /. float_of_int k) in
  Array.init k (fun r ->
      if r = 0 then Array.make n true
      else begin
        let p = rate r in
        Array.init n (fun _ -> Prng.bernoulli rng p)
      end)

type attach = level:int -> root:int -> members:int list -> (int * (int * int)) option

type terminal = { root : int; level : int; members : int list }

type t = {
  n : int;
  k : int;
  centers : centers;
  terminal_id_of : int array;
  terminals : terminal array;
  witnesses : (int * int) list;
}

let build ~n ~k ~centers ~attach =
  if Array.length centers <> k then invalid_arg "Clustering.build: centers/k mismatch";
  let terminal_id_of = Array.make n (-1) in
  let terminals = ref [] in
  let num_terminals = ref 0 in
  let witnesses = ref [] in
  (* Live clusters at the current level: (root, members). *)
  let live = ref (List.init n (fun v -> (v, [ v ]))) in
  for level = 0 to k - 1 do
    let next = Hashtbl.create 16 in
    List.iter
      (fun (root, members) ->
        let attachment = if level = k - 1 then None else attach ~level ~root ~members in
        match attachment with
        | Some (parent, witness) ->
            if not centers.(level + 1).(parent) then
              invalid_arg "Clustering.build: parent not a level+1 center";
            witnesses := witness :: !witnesses;
            let prev = match Hashtbl.find_opt next parent with Some l -> l | None -> [] in
            Hashtbl.replace next parent (List.rev_append members prev)
        | None ->
            let tid = !num_terminals in
            incr num_terminals;
            terminals := { root; level; members } :: !terminals;
            List.iter (fun v -> terminal_id_of.(v) <- tid) members)
      !live;
    live := Hashtbl.fold (fun root members acc -> (root, members) :: acc) next []
  done;
  assert (!live = []);
  {
    n;
    k;
    centers;
    terminal_id_of;
    terminals = Array.of_list (List.rev !terminals);
    witnesses = !witnesses;
  }

let terminal_level_of t v = t.terminals.(t.terminal_id_of.(v)).level

let check_partition t =
  let seen = Array.make t.n false in
  let ok = ref true in
  Array.iteri
    (fun tid { members; _ } ->
      List.iter
        (fun v ->
          if seen.(v) then ok := false;
          seen.(v) <- true;
          if t.terminal_id_of.(v) <> tid then ok := false)
        members)
    t.terminals;
  !ok && Array.for_all (fun b -> b) seen
