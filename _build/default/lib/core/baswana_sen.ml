open Ds_util
open Ds_graph

let stretch_bound ~k = (2 * k) - 1

(* Phase 1 state: cluster.(v) is the id of v's cluster, or -1 once v has
   fallen out of the clustering (it then keeps only its phase-1 edges).
   Cluster ids are the original center vertices. *)

let run rng ~k g =
  if k < 1 then invalid_arg "Baswana_sen.run: k must be >= 1";
  let n = Graph.n g in
  if k = 1 then Graph.copy g
  else begin
    let spanner = Graph.create n in
    let add u v = if not (Graph.mem_edge spanner u v) then Graph.add_edge spanner u v in
    let sample_p = float_of_int n ** (-1.0 /. float_of_int k) in
    (* Residual graph: edges still under consideration. *)
    let residual = Graph.copy g in
    let cluster = Array.init n (fun v -> v) in
    let alive = Array.make n true (* still participating in clustering *) in
    for _round = 1 to k - 1 do
      (* Sample surviving clusters. *)
      let ids = Hashtbl.create 16 in
      for v = 0 to n - 1 do
        if alive.(v) && cluster.(v) >= 0 then Hashtbl.replace ids cluster.(v) ()
      done;
      let sampled = Hashtbl.create 16 in
      Hashtbl.iter (fun id () -> if Prng.bernoulli rng sample_p then Hashtbl.add sampled id ()) ids;
      let new_cluster = Array.make n (-1) in
      (* Vertices already in a sampled cluster stay. *)
      for v = 0 to n - 1 do
        if alive.(v) && cluster.(v) >= 0 && Hashtbl.mem sampled cluster.(v) then
          new_cluster.(v) <- cluster.(v)
      done;
      let to_remove = ref [] in
      for v = 0 to n - 1 do
        if alive.(v) && new_cluster.(v) = -1 then begin
          (* Neighbouring clusters of v in the residual graph. *)
          let adjacent = Hashtbl.create 8 in
          Graph.iter_neighbors residual v (fun w ->
              if alive.(w) && cluster.(w) >= 0 && not (Hashtbl.mem adjacent cluster.(w)) then
                Hashtbl.add adjacent cluster.(w) w);
          (* Find a sampled neighbour cluster. *)
          let joined = ref None in
          Hashtbl.iter
            (fun id w -> if !joined = None && Hashtbl.mem sampled id then joined := Some (id, w))
            adjacent;
          match !joined with
          | Some (id, w) ->
              (* Join: keep one connecting edge, drop edges to that cluster. *)
              add v w;
              new_cluster.(v) <- id;
              Graph.iter_neighbors residual v (fun x ->
                  if alive.(x) && cluster.(x) = id then to_remove := (v, x) :: !to_remove)
          | None ->
              (* No sampled neighbour: keep one edge per adjacent cluster and
                 retire v from the clustering. *)
              Hashtbl.iter (fun _ w -> add v w) adjacent;
              alive.(v) <- false;
              Graph.iter_neighbors residual v (fun x -> to_remove := (v, x) :: !to_remove)
        end
      done;
      List.iter
        (fun (a, b) -> if Graph.mem_edge residual a b then Graph.remove_edge residual a b)
        !to_remove;
      Array.blit new_cluster 0 cluster 0 n
    done;
    (* Phase 2: every surviving vertex keeps one edge to each adjacent
       surviving cluster. *)
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let adjacent = Hashtbl.create 8 in
        Graph.iter_neighbors residual v (fun w ->
            if alive.(w) && cluster.(w) >= 0 && cluster.(w) <> cluster.(v) then
              if not (Hashtbl.mem adjacent cluster.(w)) then Hashtbl.add adjacent cluster.(w) w);
        Hashtbl.iter (fun _ w -> add v w) adjacent
      end
    done;
    spanner
  end
