open Ds_util
open Ds_graph

let run rng ~p g =
  if p <= 0.0 || p > 1.0 then invalid_arg "Uniform_sparsifier.run: p must be in (0, 1]";
  let out = Weighted_graph.create (Weighted_graph.n g) in
  Weighted_graph.iter_edges g (fun u v w ->
      if Prng.bernoulli rng p then Weighted_graph.add_edge out u v (w /. p));
  out

let matching_p ~target_edges g =
  let m = Weighted_graph.num_edges g in
  if m = 0 then 1.0 else min 1.0 (float_of_int target_edges /. float_of_int m)
