(** Theorem 7: the Spielman–Srivastava offline sparsifier [SS08] — sample
    each edge independently with probability [p_e = min(1, C w_e R_e log n /
    eps^2)] and weight survivors by [1/p_e]. This is the quality baseline
    (experiment E7): it sees the whole graph and exact resistances, which no
    streaming algorithm can, so it bounds what the two-pass pipeline could
    hope for. *)

val run :
  Ds_util.Prng.t ->
  eps:float ->
  ?oversample:float ->
  Ds_graph.Weighted_graph.t ->
  Ds_graph.Weighted_graph.t
(** [oversample] is the constant [C] (default 0.5 — tuned so that sizes at
    laptop scale are non-trivial; quality/size both appear in the tables). *)

val expected_size : eps:float -> ?oversample:float -> Ds_graph.Weighted_graph.t -> float
(** [sum_e p_e], the expected number of sampled edges. *)
