open Ds_util
open Ds_graph

type summary = {
  max : float;
  mean : float;
  p50 : float;
  p95 : float;
  samples : int;
  violations : int;
}

let summarise values violations =
  let finite = Array.of_list (List.filter (fun x -> x <> infinity) values) in
  let max_v =
    if violations > 0 then infinity
    else if Array.length finite = 0 then 0.0
    else Stats.max_arr finite
  in
  {
    max = max_v;
    mean = Stats.mean finite;
    p50 = Stats.percentile finite 50.0;
    p95 = Stats.percentile finite 95.0;
    samples = List.length values;
    violations;
  }

let multiplicative ~base ~spanner =
  if Graph.n base <> Graph.n spanner then invalid_arg "Stretch.multiplicative: size mismatch";
  let values = ref [] and violations = ref 0 in
  for u = 0 to Graph.n base - 1 do
    if Graph.degree base u > 0 then begin
      let dh = Bfs.distances spanner ~source:u in
      Graph.iter_neighbors base u (fun v ->
          if u < v then
            if dh.(v) = max_int then begin
              incr violations;
              values := infinity :: !values
            end
            else values := float_of_int dh.(v) :: !values)
    end
  done;
  summarise !values !violations

let multiplicative_weighted ~base ~spanner =
  if Weighted_graph.n base <> Weighted_graph.n spanner then
    invalid_arg "Stretch.multiplicative_weighted: size mismatch";
  let values = ref [] and violations = ref 0 in
  for u = 0 to Weighted_graph.n base - 1 do
    if Weighted_graph.degree base u > 0 then begin
      let dh = Dijkstra.distances spanner ~source:u in
      Weighted_graph.iter_neighbors base u (fun v w ->
          if u < v then
            if dh.(v) = infinity then begin
              incr violations;
              values := infinity :: !values
            end
            else values := (dh.(v) /. w) :: !values)
    end
  done;
  summarise !values !violations

let additive ?(pairs = `All) ~base ~spanner () =
  let n = Graph.n base in
  if Graph.n spanner <> n then invalid_arg "Stretch.additive: size mismatch";
  let values = ref [] and violations = ref 0 in
  let record dg dh =
    if dg <> max_int then
      if dh = max_int then begin
        incr violations;
        values := infinity :: !values
      end
      else values := float_of_int (dh - dg) :: !values
  in
  (match pairs with
  | `All ->
      for u = 0 to n - 1 do
        let dg = Bfs.distances base ~source:u in
        let dh = Bfs.distances spanner ~source:u in
        for v = u + 1 to n - 1 do
          record dg.(v) dh.(v)
        done
      done
  | `Sample (rng, count) ->
      for _ = 1 to count do
        let u = Prng.int rng n in
        let v = Prng.int rng n in
        if u <> v then begin
          let dg = Bfs.distances base ~source:u in
          let dh = Bfs.distances spanner ~source:u in
          record dg.(v) dh.(v)
        end
      done);
  summarise !values !violations
