(** The Althöfer et al. greedy (2k-1)-spanner: scan edges, keep an edge only
    if the spanner built so far cannot already connect its endpoints within
    [2k - 1] hops. Deterministic given the scan order, size [O(n^{1+1/k})]
    by the girth argument, and the strongest offline size baseline in
    experiment E2 (it is slow: one truncated BFS per edge). *)

val run : k:int -> Ds_graph.Graph.t -> Ds_graph.Graph.t

val run_weighted : k:int -> Ds_graph.Weighted_graph.t -> Ds_graph.Weighted_graph.t
(** Weighted variant: edges scanned in non-decreasing weight; an edge is kept
    if the current weighted spanner distance exceeds [(2k-1) * w(e)]. *)
