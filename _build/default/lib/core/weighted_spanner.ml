open Ds_util
open Ds_graph
open Ds_stream

type result = { spanner : Weighted_graph.t; space_words : int; classes : int }

let stretch_bound ~k ~gamma = float_of_int (1 lsl k) *. (1.0 +. gamma)

let run rng ~n ~params ~gamma ~w_min ~w_max stream =
  let wc = Weight_class.create ~gamma ~w_min ~w_max in
  let class_streams = Weight_class.split wc stream in
  let spanner = Weighted_graph.create n in
  let space = ref 0 in
  let non_empty = ref 0 in
  Array.iteri
    (fun c cstream ->
      if Array.length cstream > 0 then begin
        incr non_empty;
        let crng = Prng.split_named rng (Printf.sprintf "class%d" c) in
        let r = Two_pass_spanner.run crng ~n ~params cstream in
        space := !space + r.Two_pass_spanner.space_words;
        let w = Weight_class.representative wc c in
        Graph.iter_edges r.Two_pass_spanner.spanner (fun u v ->
            (* Classes partition the edges, but be safe about duplicates. *)
            if not (Weighted_graph.mem_edge spanner u v) then
              Weighted_graph.add_edge spanner u v w)
      end)
    class_streams;
  { spanner; space_words = !space; classes = !non_empty }
