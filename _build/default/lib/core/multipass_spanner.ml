open Ds_util
open Ds_sketch
open Ds_graph
open Ds_stream

type params = {
  k : int;
  table_capacity_factor : float;
  table_rows : int;
  payload : Packed_l0.params;
  sampler : L0_sampler.params;
  hash_degree : int;
}

let default_params ~k =
  {
    k;
    table_capacity_factor = 3.0;
    table_rows = 3;
    payload = { Packed_l0.default_params with reps = 1; sparsity = 2 };
    sampler = L0_sampler.default_params;
    hash_degree = 6;
  }

type result = { spanner : Graph.t; passes : int; space_words : int; join_failures : int }

let stretch_bound ~k = (2 * k) - 1

(* Per-vertex sketches for one pass: a sampler of edges into sampled
   clusters and a per-adjacent-cluster table. Only vertices whose cluster
   was not sampled carry them. *)
type vertex_sketch = {
  join_sampler : L0_sampler.t option; (* None in the final pass *)
  table : Sketch_table.t;
  payload_cfg : Packed_l0.config;
}

let run rng ~n ~params:prm stream =
  if prm.k < 1 then invalid_arg "Multipass_spanner.run: k must be >= 1";
  let rng = Prng.split_named rng "multipass" in
  let sample_rate = float_of_int n ** (-1.0 /. float_of_int prm.k) in
  let log2n = F0.levels_for n in
  let capacity =
    let ideal =
      prm.table_capacity_factor *. float_of_int log2n
      *. (float_of_int n ** (1.0 /. float_of_int prm.k))
    in
    max 8 (min (2 * n) (int_of_float (ceil ideal)))
  in
  let spanner = Graph.create n in
  let add a b = if a <> b && not (Graph.mem_edge spanner a b) then Graph.add_edge spanner a b in
  let cluster = Array.init n (fun v -> v) in
  let failures = ref 0 in
  let max_space = ref 0 in
  let run_pass ~pass_idx ~final ~sampled_cluster =
    let prng = Prng.split_named rng (Printf.sprintf "pass%d" pass_idx) in
    (* Shared payload configuration (per-vertex states, common hashes). *)
    let payload_cfg =
      Packed_l0.make_config (Prng.split_named prng "payload") ~dim:n ~params:prm.payload
    in
    let payload_len = Packed_l0.state_len payload_cfg in
    let needs_sketch v =
      cluster.(v) >= 0 && ((not final) && not sampled_cluster.(cluster.(v)) || final)
    in
    let sketches = Array.make n None in
    for v = 0 to n - 1 do
      if needs_sketch v then begin
        let vr = Prng.split_named prng (Printf.sprintf "v%d" v) in
        let join_sampler =
          if final then None
          else Some (L0_sampler.create (Prng.split_named vr "join") ~dim:n ~params:prm.sampler)
        in
        let table =
          Sketch_table.create (Prng.split_named vr "table") ~key_dim:n ~capacity
            ~rows:prm.table_rows ~hash_degree:prm.hash_degree ~payload_len
        in
        sketches.(v) <- Some { join_sampler; table; payload_cfg }
      end
    done;
    (* The pass itself. *)
    let feed a b delta =
      match sketches.(a) with
      | None -> ()
      | Some s ->
          (match s.join_sampler with
          | Some smp when sampled_cluster.(cluster.(b)) ->
              L0_sampler.update smp ~index:b ~delta
          | Some _ | None -> ());
          Sketch_table.update s.table ~key:cluster.(b) ~weight:delta ~write:(fun arr off ->
              Packed_l0.update s.payload_cfg arr ~off ~index:b ~delta)
    in
    Array.iter
      (fun (u : Update.t) ->
        let a = u.Update.u and b = u.Update.v in
        if cluster.(a) >= 0 && cluster.(b) >= 0 && cluster.(a) <> cluster.(b) then begin
          let delta = Update.delta u in
          feed a b delta;
          feed b a delta
        end)
      stream;
    (* Space high-water mark. *)
    let pass_space =
      Array.fold_left
        (fun acc s ->
          match s with
          | None -> acc
          | Some { join_sampler; table; _ } ->
              acc
              + Sketch_table.space_in_words table
              + (match join_sampler with Some j -> L0_sampler.space_in_words j | None -> 0))
        0 sketches
    in
    if pass_space > !max_space then max_space := pass_space;
    (* Post-pass decoding. *)
    let connect_all_adjacent v s =
      match Sketch_table.decode s.table with
      | None -> incr failures
      | Some entries ->
          List.iter
            (fun (_, weight, payload) ->
              if weight > 0 then
                match Packed_l0.decode s.payload_cfg payload ~off:0 with
                | Some (w, _) -> add v w
                | None -> incr failures)
            entries
    in
    for v = 0 to n - 1 do
      match sketches.(v) with
      | None -> ()
      | Some s ->
          if final then connect_all_adjacent v s
          else begin
            match s.join_sampler with
            | None -> ()
            | Some smp -> (
                match L0_sampler.sample smp with
                | Some (w, _) ->
                    (* Join the sampled cluster through the witness edge. *)
                    add v w;
                    cluster.(v) <- cluster.(w)
                | None ->
                    (* No sampled neighbour: keep one edge per adjacent
                       cluster and retire. *)
                    connect_all_adjacent v s;
                    cluster.(v) <- -1)
          end
    done
  in
  let no_sampling = Array.make n false in
  for round = 1 to prm.k - 1 do
    (* Sample surviving clusters. *)
    let srng = Prng.split_named rng (Printf.sprintf "sample%d" round) in
    let sampled_cluster = Array.make n false in
    let seen = Array.make n false in
    for v = 0 to n - 1 do
      if cluster.(v) >= 0 && not seen.(cluster.(v)) then begin
        seen.(cluster.(v)) <- true;
        sampled_cluster.(cluster.(v)) <- Prng.bernoulli srng sample_rate
      end
    done;
    run_pass ~pass_idx:round ~final:false ~sampled_cluster
  done;
  run_pass ~pass_idx:prm.k ~final:true ~sampled_cluster:no_sampling;
  { spanner; passes = prm.k; space_words = !max_space; join_failures = !failures }
