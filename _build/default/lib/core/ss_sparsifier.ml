open Ds_util
open Ds_graph
open Ds_linalg

let probability ~eps ~oversample ~log_n (w, r) =
  min 1.0 (oversample *. w *. r *. log_n /. (eps *. eps))

let run rng ~eps ?(oversample = 0.5) g =
  let n = Weighted_graph.n g in
  let log_n = log (float_of_int (max 2 n)) in
  let out = Weighted_graph.create n in
  List.iter
    (fun (u, v, w, r) ->
      let p = probability ~eps ~oversample ~log_n (w, r) in
      if p > 0.0 && Prng.bernoulli rng p then Weighted_graph.add_edge out u v (w /. p))
    (Resistance.all_edges g);
  out

let expected_size ~eps ?(oversample = 0.5) g =
  let n = Weighted_graph.n g in
  let log_n = log (float_of_int (max 2 n)) in
  List.fold_left
    (fun acc (_, _, w, r) -> acc +. probability ~eps ~oversample ~log_n (w, r))
    0.0 (Resistance.all_edges g)
