open Ds_graph

let size_bound ~n =
  let nf = float_of_int n in
  (nf ** 1.5) *. log (max 2.0 nf)

let run g =
  let n = Graph.n g in
  let threshold = max 1 (int_of_float (sqrt (float_of_int n))) in
  let spanner = Graph.create n in
  let add u v = if not (Graph.mem_edge spanner u v) then Graph.add_edge spanner u v in
  (* All edges incident on low-degree vertices. *)
  let high = Array.init n (fun v -> Graph.degree g v > threshold) in
  Graph.iter_edges g (fun u v -> if (not high.(u)) || not high.(v) then add u v);
  (* Greedy dominating set of the high-degree vertices: every high-degree
     vertex has > sqrt(n) neighbours, so picking undominated high vertices
     greedily (covering their closed neighbourhoods) selects
     O(sqrt n log n) centers. *)
  let dominated = Array.make n false in
  let dominators = ref [] in
  for v = 0 to n - 1 do
    if high.(v) && not dominated.(v) then begin
      dominators := v :: !dominators;
      dominated.(v) <- true;
      Graph.iter_neighbors g v (fun w -> dominated.(w) <- true)
    end
  done;
  (* A shortest-path (BFS) tree from every dominator. *)
  List.iter
    (fun root ->
      let dist = Bfs.distances g ~source:root in
      let chosen = Array.make n false in
      for v = 0 to n - 1 do
        if v <> root && dist.(v) <> max_int && not chosen.(v) then begin
          (* parent: any neighbour one step closer *)
          let parent = ref (-1) in
          Graph.iter_neighbors g v (fun w ->
              if !parent = -1 && dist.(w) = dist.(v) - 1 then parent := w);
          if !parent >= 0 then begin
            add v !parent;
            chosen.(v) <- true
          end
        end
      done;
      (* Also connect each dominated high vertex to its dominator by the
         covering edge (it is in the BFS tree already unless tie-broken
         elsewhere; adding it is free for the bound). *)
      Graph.iter_neighbors g root (fun w -> add root w))
    !dominators;
  spanner
