(** Uniform edge sampling — the naive sparsifier every importance-aware
    scheme is measured against. Samples each edge with the same probability
    [p] and weight [1/p]. Unbiased for every cut in expectation, but a cut
    crossed by few edges (a barbell bridge) is lost with probability
    [1 - p]: the ablation that shows why Theorem 7's resistances / the
    paper's robust connectivities are necessary. *)

val run :
  Ds_util.Prng.t -> p:float -> Ds_graph.Weighted_graph.t -> Ds_graph.Weighted_graph.t

val matching_p : target_edges:int -> Ds_graph.Weighted_graph.t -> float
(** The sampling rate giving [target_edges] in expectation (for same-size
    comparisons against other sparsifiers). *)
