open Ds_util
open Ds_graph
open Ds_stream

type result = { sparsifier : Weighted_graph.t; space_words : int; classes : int }

let quality_bound ~eps ~gamma = ((1.0 -. eps) /. (1.0 +. gamma), (1.0 +. eps) *. (1.0 +. gamma))

let run rng ~n ~params ~gamma ~w_min ~w_max stream =
  let wc = Weight_class.create ~gamma ~w_min ~w_max in
  let class_streams = Weight_class.split wc stream in
  let sparsifier = Weighted_graph.create n in
  let space = ref 0 and non_empty = ref 0 in
  Array.iteri
    (fun c cstream ->
      if Array.length cstream > 0 then begin
        incr non_empty;
        let crng = Prng.split_named rng (Printf.sprintf "wclass%d" c) in
        let r = Sparsify.run crng ~n ~params cstream in
        space := !space + r.Sparsify.space_words;
        let scale = Weight_class.representative wc c in
        Weighted_graph.iter_edges r.Sparsify.sparsifier (fun u v w ->
            let extra = scale *. w in
            match Weighted_graph.weight sparsifier u v with
            | None -> Weighted_graph.add_edge sparsifier u v extra
            | Some prev ->
                (* Classes partition edges, but sampled outputs of different
                   classes may both name an edge after rounding collisions;
                   accumulate. *)
                Weighted_graph.remove_edge sparsifier u v;
                Weighted_graph.add_edge sparsifier u v (prev +. extra))
      end)
    class_streams;
  { sparsifier; space_words = !space; classes = !non_empty }
