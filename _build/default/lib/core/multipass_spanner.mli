(** The [AGM12b]-style multi-pass streaming spanner: the tradeoff the paper
    positions Theorem 1 against. [k] passes, stretch [2k - 1], space
    [~O(n^{1+1/k})] — a sketch-based Baswana–Sen.

    Pass [i] (for [i = 1 .. k-1]) implements one clustering round: clusters
    surviving from the previous round are sampled at rate [n^{-1/k}] before
    the pass; during the pass every live unclustered vertex sketches

    - an L0-sampler of its edges into {e sampled} clusters (to join one), and
    - a {!Ds_sketch.Sketch_table} keyed by {e cluster id} whose payload
      samples one incident neighbour per adjacent cluster (used when there is
      no sampled neighbour: the vertex keeps one edge per adjacent cluster
      and retires).

    The final pass gives every surviving vertex the same per-cluster table
    to connect it to all adjacent clusters. All filtering (retired vertices,
    intra-cluster edges) depends only on the clustering fixed before the
    pass, so each pass is a linear sketch of the stream.

    Contrast with {!Two_pass_spanner}: pass count [k] vs 2, stretch [2k-1]
    vs [2^k] — the two ends of the tradeoff in the paper's Section 1. *)

type params = {
  k : int;
  table_capacity_factor : float;  (** cells per table = [factor * log2 n * n^{1/k}] *)
  table_rows : int;
  payload : Ds_sketch.Packed_l0.params;
  sampler : Ds_sketch.L0_sampler.params;
  hash_degree : int;
}

val default_params : k:int -> params

type result = {
  spanner : Ds_graph.Graph.t;
  passes : int;
  space_words : int;  (** maximum sketch state alive during any single pass *)
  join_failures : int;  (** sampler/table decode failures (degrade size, not stretch) *)
}

val run : Ds_util.Prng.t -> n:int -> params:params -> Ds_stream.Update.t array -> result

val stretch_bound : k:int -> int
(** [2k - 1]. *)
