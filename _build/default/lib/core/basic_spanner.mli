(** The offline reference algorithm of Section 3.1: two-phase cluster
    growing with stretch [2^k] and expected size [O(k n^{1+1/k} log n)]
    (Lemmas 12 and 13). The streaming version (Algorithms 1 and 2) must
    emulate this exactly; tests compare the two. *)

type result = {
  spanner : Ds_graph.Graph.t;
  clustering : Clustering.t;
}

val run : Ds_util.Prng.t -> k:int -> Ds_graph.Graph.t -> result
(** @raise Invalid_argument if [k < 1]. *)

val size_bound : n:int -> k:int -> float
(** The Lemma 12 bound [O(k n^{1+1/k} log n)] with unit constant, for
    reporting measured size against the theory in experiment tables. *)
