(** Plain-text stream traces, so real update sequences can be replayed
    through the algorithms and test failures can be shipped as files.

    Format: one update per line. Unweighted: [+ u v] / [- u v]. Weighted:
    [+ u v w] / [- u v w]. Lines starting with [#] and blank lines are
    ignored. *)

val save : string -> Update.t array -> unit
val load : string -> Update.t array
(** @raise Failure with the offending line number on malformed input. *)

val save_weighted : string -> Update.weighted array -> unit
val load_weighted : string -> Update.weighted array

val to_string : Update.t array -> string
val of_string : string -> Update.t array
