type t = { gamma : float; w_min : float; count : int }

let create ~gamma ~w_min ~w_max =
  if gamma <= 0.0 then invalid_arg "Weight_class.create: gamma must be positive";
  if w_min <= 0.0 || w_max < w_min then invalid_arg "Weight_class.create: bad weight range";
  let count = 1 + int_of_float (ceil (log (w_max /. w_min) /. log (1.0 +. gamma))) in
  { gamma; w_min; count }

let num_classes t = t.count

let class_of t w =
  if w <= t.w_min then 0
  else begin
    let i = int_of_float (Float.round (log (w /. t.w_min) /. log (1.0 +. t.gamma))) in
    max 0 (min (t.count - 1) i)
  end

let representative t i =
  if i < 0 || i >= t.count then invalid_arg "Weight_class.representative: out of range";
  t.w_min *. ((1.0 +. t.gamma) ** float_of_int i)

let split t stream =
  let buckets = Array.make t.count [] in
  Array.iter
    (fun { Update.wu; wv; weight; wsign } ->
      let c = class_of t weight in
      buckets.(c) <- { Update.u = wu; v = wv; sign = wsign } :: buckets.(c))
    stream;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let max_rounding_error t = 1.0 +. t.gamma
