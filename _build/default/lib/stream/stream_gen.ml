open Ds_util
open Ds_graph

let shuffled_array rng list =
  let a = Array.of_list list in
  Prng.shuffle rng a;
  a

let insert_only rng g =
  shuffled_array rng (List.map (fun (u, v) -> Update.insert u v) (Graph.edges g))

let interleave rng a b =
  let out = Array.make (Array.length a + Array.length b) (Update.insert 0 1) in
  let ia = ref 0 and ib = ref 0 in
  for k = 0 to Array.length out - 1 do
    let take_a =
      if !ia >= Array.length a then false
      else if !ib >= Array.length b then true
      else begin
        (* Choose proportionally to remaining lengths: a uniform interleaving. *)
        let ra = Array.length a - !ia and rb = Array.length b - !ib in
        Prng.int rng (ra + rb) < ra
      end
    in
    if take_a then begin
      out.(k) <- a.(!ia);
      incr ia
    end
    else begin
      out.(k) <- b.(!ib);
      incr ib
    end
  done;
  out

(* Random decoy edges not present in [g]. May return fewer than requested on
   dense graphs. *)
let decoy_edges rng g count =
  let n = Graph.n g in
  let dim = Edge_index.dim n in
  let chosen = Hashtbl.create count in
  let attempts = ref 0 in
  while Hashtbl.length chosen < count && !attempts < 20 * (count + 1) do
    incr attempts;
    let idx = Prng.int rng dim in
    let u, v = Edge_index.decode ~n idx in
    if (not (Graph.mem_edge g u v)) && not (Hashtbl.mem chosen idx) then
      Hashtbl.add chosen idx (u, v)
  done;
  Hashtbl.fold (fun _ e acc -> e :: acc) chosen []

let with_churn rng ~decoys g =
  let decoy = decoy_edges rng g decoys in
  let real_inserts = List.map (fun (u, v) -> Update.insert u v) (Graph.edges g) in
  (* Each decoy contributes an insert strictly before its delete; build the
     decoy sub-stream first, then interleave with the shuffled real inserts. *)
  let decoy_stream =
    (* The i-th delete pairs with the i-th insert (same edge), so a merge is
       valid iff, at every prefix, more inserts than deletes were taken — a
       ballot-style merge. *)
    let ins = shuffled_array rng (List.map (fun (u, v) -> Update.insert u v) decoy) in
    let del = Array.map (fun { Update.u; v; _ } -> Update.delete u v) ins in
    let total = Array.length ins + Array.length del in
    let out = Array.make total (Update.insert 0 1) in
    let ia = ref 0 and ib = ref 0 in
    for k = 0 to total - 1 do
      let can_del = !ib < !ia && !ib < Array.length del in
      let must_del = !ia >= Array.length ins in
      let take_del = must_del || (can_del && Prng.bool rng) in
      if take_del then begin
        out.(k) <- del.(!ib);
        incr ib
      end
      else begin
        out.(k) <- ins.(!ia);
        incr ia
      end
    done;
    out
  in
  interleave rng (Array.of_list real_inserts) decoy_stream

let delete_down_to rng ~from target =
  if not (Graph.is_subgraph ~sub:target ~super:from) then
    invalid_arg "Stream_gen.delete_down_to: target must be a subgraph of from";
  let inserts = insert_only rng from in
  let deletes =
    Graph.edges from
    |> List.filter (fun (u, v) -> not (Graph.mem_edge target u v))
    |> List.map (fun (u, v) -> Update.delete u v)
    |> shuffled_array rng
  in
  Array.append inserts deletes

let flapping rng ~flaps g =
  let base = insert_only rng g in
  let edges = Array.of_list (Graph.edges g) in
  if Array.length edges = 0 then base
  else begin
    let flap_updates =
      Array.concat
        (List.init flaps (fun _ ->
             let u, v = edges.(Prng.int rng (Array.length edges)) in
             [| Update.delete u v; Update.insert u v |]))
    in
    Array.append base flap_updates
  end

let sliding_window rng ~window snapshots =
  if window < 1 then invalid_arg "Stream_gen.sliding_window: window must be >= 1";
  (match snapshots with
  | [] -> ()
  | g :: rest ->
      let n = Graph.n g in
      if List.exists (fun h -> Graph.n h <> n) rest then
        invalid_arg "Stream_gen.sliding_window: snapshots must share the vertex set");
  let arr = Array.of_list snapshots in
  let chunks = ref [] in
  Array.iteri
    (fun i g ->
      chunks := insert_only rng g :: !chunks;
      let expired = i - window + 1 in
      if expired > 0 then begin
        let old = arr.(expired - 1) in
        chunks :=
          shuffled_array rng (List.map (fun (u, v) -> Update.delete u v) (Graph.edges old))
          :: !chunks
      end)
    arr;
  Array.concat (List.rev !chunks)

let multiplicity_churn rng ~copies g =
  if copies < 1 then invalid_arg "Stream_gen.multiplicity_churn: copies < 1";
  let phases = ref [] in
  (* copies inserts then copies-1 deletes, phase by phase, keeps validity. *)
  for c = 0 to (2 * copies) - 2 do
    let mk (u, v) = if c < copies then Update.insert u v else Update.delete u v in
    phases := shuffled_array rng (List.map mk (Graph.edges g)) :: !phases
  done;
  Array.concat (List.rev !phases)
