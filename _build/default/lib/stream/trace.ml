let sign_char = function Update.Insert -> '+' | Update.Delete -> '-'

let to_string updates =
  let buf = Buffer.create (16 * Array.length updates) in
  Array.iter
    (fun { Update.u; v; sign } -> Buffer.add_string buf (Printf.sprintf "%c %d %d\n" (sign_char sign) u v))
    updates;
  Buffer.contents buf

let parse_line ~lineno line =
  let fail () = failwith (Printf.sprintf "Trace: malformed line %d: %S" lineno line) in
  match String.split_on_char ' ' (String.trim line) with
  | [ s; a; b ] -> (
      let sign =
        match s with "+" -> Update.Insert | "-" -> Update.Delete | _ -> fail ()
      in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some u, Some v -> { Update.u; v; sign }
      | _ -> fail ())
  | _ -> fail ()

let of_string text =
  let updates = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then updates := parse_line ~lineno:(i + 1) line :: !updates)
    (String.split_on_char '\n' text);
  Array.of_list (List.rev !updates)

let save path updates =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string updates))

let read_all path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (read_all path)

let save_weighted path updates =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun { Update.wu; wv; weight; wsign } ->
          output_string oc (Printf.sprintf "%c %d %d %.17g\n" (sign_char wsign) wu wv weight))
        updates)

let load_weighted path =
  let updates = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let fail () = failwith (Printf.sprintf "Trace: malformed line %d: %S" (i + 1) line) in
        match String.split_on_char ' ' line with
        | [ s; a; b; w ] -> (
            let wsign =
              match s with "+" -> Update.Insert | "-" -> Update.Delete | _ -> fail ()
            in
            match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt w) with
            | Some wu, Some wv, Some weight ->
                updates := { Update.wu; wv; weight; wsign } :: !updates
            | _ -> fail ())
        | _ -> fail ()
      end)
    (String.split_on_char '\n' (read_all path));
  Array.of_list (List.rev !updates)
