(** One-pass statistics over a dynamic stream: the health metrics a long-
    running ingest pipeline keeps next to its sketches. Everything is
    incremental and O(1) per update except the F2 estimate, which rides the
    linear {!Ds_sketch.Ams_f2} sketch over the edge-multiplicity vector. *)

type t

val create : Ds_util.Prng.t -> n:int -> t
val update : t -> Update.t -> unit

type summary = {
  updates : int;
  inserts : int;
  deletes : int;
  distinct_touched : int;  (** distinct edge slots ever updated *)
  live_multiplicity : int;  (** sum of current multiplicities = F1 *)
  f2_estimate : float;  (** estimated sum of squared multiplicities *)
  max_vertex : int;  (** largest endpoint seen *)
}

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit
