(** Stream builders: turn a target graph into a valid dynamic stream that
    ends at that graph, with various amounts of adversarial churn. Every
    builder shuffles so the algorithms cannot rely on arrival order, and
    every produced stream satisfies {!Update.is_valid}. *)

val insert_only : Ds_util.Prng.t -> Ds_graph.Graph.t -> Update.t array
(** The distinct edges of the graph, inserted once each in random order. *)

val with_churn : Ds_util.Prng.t -> decoys:int -> Ds_graph.Graph.t -> Update.t array
(** Insert the real edges plus up to [decoys] decoy edges (absent from the
    final graph); every decoy is deleted later in the stream. Insertions and
    deletions are interleaved randomly subject to validity. *)

val delete_down_to : Ds_util.Prng.t -> from:Ds_graph.Graph.t -> Ds_graph.Graph.t -> Update.t array
(** Insert all edges of [from] (a supergraph), then delete [from \ target].
    The classic hard case: the final graph is a small remnant of a dense
    stream prefix, so any algorithm that samples the prefix loses. *)

val multiplicity_churn : Ds_util.Prng.t -> copies:int -> Ds_graph.Graph.t -> Update.t array
(** Each real edge is inserted [copies] times and deleted [copies - 1]
    times, exercising multigraph multiplicities. *)

val interleave : Ds_util.Prng.t -> Update.t array -> Update.t array -> Update.t array
(** Random interleaving preserving the relative order inside each input. *)

val flapping : Ds_util.Prng.t -> flaps:int -> Ds_graph.Graph.t -> Update.t array
(** Insert the graph, then repeatedly delete and re-insert random existing
    edges ([flaps] delete+insert pairs) — link-flapping churn that keeps the
    final graph equal to the input. Stresses algorithms whose state must be
    exactly linear (any leftover from a flap is a bug). *)

val sliding_window : Ds_util.Prng.t -> window:int -> Ds_graph.Graph.t list -> Update.t array
(** A sequence of graph snapshots on the same vertex set, streamed so that
    each snapshot's edges are inserted and then deleted when it leaves the
    [window] (in snapshots). The final graph is the union of the last
    [window] snapshots. All snapshots must share the vertex count. *)
