open Ds_graph
open Ds_sketch

type t = {
  n : int;
  mutable updates : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable live : int;
  mutable max_vertex : int;
  touched : (int, unit) Hashtbl.t;
  f2 : Ams_f2.t;
}

let create rng ~n =
  {
    n;
    updates = 0;
    inserts = 0;
    deletes = 0;
    live = 0;
    max_vertex = -1;
    touched = Hashtbl.create 256;
    f2 = Ams_f2.create rng ~dim:(Edge_index.dim n) ~params:Ams_f2.default_params;
  }

let update t (u : Update.t) =
  let delta = Update.delta u in
  t.updates <- t.updates + 1;
  if delta > 0 then t.inserts <- t.inserts + 1 else t.deletes <- t.deletes + 1;
  t.live <- t.live + delta;
  t.max_vertex <- max t.max_vertex (max u.Update.u u.Update.v);
  let idx = Edge_index.encode ~n:t.n u.Update.u u.Update.v in
  Hashtbl.replace t.touched idx ();
  Ams_f2.update t.f2 ~index:idx ~delta

type summary = {
  updates : int;
  inserts : int;
  deletes : int;
  distinct_touched : int;
  live_multiplicity : int;
  f2_estimate : float;
  max_vertex : int;
}

let summary (t : t) =
  {
    updates = t.updates;
    inserts = t.inserts;
    deletes = t.deletes;
    distinct_touched = Hashtbl.length t.touched;
    live_multiplicity = t.live;
    f2_estimate = Ams_f2.estimate t.f2;
    max_vertex = t.max_vertex;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "updates=%d (+%d/-%d) touched=%d live-multiplicity=%d F2~%.0f max-vertex=%d" s.updates
    s.inserts s.deletes s.distinct_touched s.live_multiplicity s.f2_estimate s.max_vertex
