(** Geometric weight classes (Remark 14 / Section 6): round every weight to
    the nearest power of [1 + gamma] and run one unweighted algorithm per
    class. Costs a factor [O(log(wmax/wmin) / gamma)] in space and turns the
    output into a [(1 + gamma)]-approximately weighted subgraph. *)

type t
(** A classification scheme: [gamma] plus the observed weight origin. *)

val create : gamma:float -> w_min:float -> w_max:float -> t
(** @raise Invalid_argument unless [gamma > 0] and [0 < w_min <= w_max]. *)

val num_classes : t -> int

val class_of : t -> float -> int
(** Index of the class whose representative is nearest [w] in log scale.
    Weights outside [w_min, w_max] clamp to the end classes. *)

val representative : t -> int -> float
(** The rounded weight [w_min * (1 + gamma)^i] of class [i]. *)

val split : t -> Update.weighted array -> Update.t array array
(** Partition a weighted stream into one unweighted stream per class.
    A weighted edge lands (whole) in the class of its weight; deletion of a
    weighted edge must carry the same weight as its insertion, which the
    model guarantees. *)

val max_rounding_error : t -> float
(** Worst multiplicative error [<= 1 + gamma] introduced by rounding. *)
