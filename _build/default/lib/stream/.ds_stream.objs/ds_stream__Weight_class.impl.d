lib/stream/weight_class.ml: Array Float List Update
