lib/stream/weight_class.mli: Update
