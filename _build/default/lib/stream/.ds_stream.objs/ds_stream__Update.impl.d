lib/stream/update.ml: Array Ds_graph Format Graph Weighted_graph
