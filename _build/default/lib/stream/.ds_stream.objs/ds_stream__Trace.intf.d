lib/stream/trace.mli: Update
