lib/stream/stream_stats.ml: Ams_f2 Ds_graph Ds_sketch Edge_index Format Hashtbl Update
