lib/stream/stream_stats.mli: Ds_util Format Update
