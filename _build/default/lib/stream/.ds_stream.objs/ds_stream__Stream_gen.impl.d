lib/stream/stream_gen.ml: Array Ds_graph Ds_util Edge_index Graph Hashtbl List Prng Update
