lib/stream/trace.ml: Array Buffer Fun List Printf String Update
