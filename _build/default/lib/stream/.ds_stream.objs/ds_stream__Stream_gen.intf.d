lib/stream/stream_gen.mli: Ds_graph Ds_util Update
