lib/stream/update.mli: Ds_graph Format
