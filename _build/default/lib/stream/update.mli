(** Dynamic-stream updates: the model of [AGM12a] the paper works in. An
    unweighted stream is a sequence of signed edge updates on an [n]-vertex
    multigraph whose multiplicities must remain non-negative; a weighted
    stream adds a weight that is fixed at insertion and removed wholesale
    (footnote 1 of the paper: no turnstile weight updates). *)

type sign = Insert | Delete

type t = { u : int; v : int; sign : sign }
(** An unweighted update to the multiplicity of [{u, v}]. *)

type weighted = { wu : int; wv : int; weight : float; wsign : sign }

val delta : t -> int
(** [+1] for [Insert], [-1] for [Delete]. *)

val insert : int -> int -> t
val delete : int -> int -> t

val apply : Ds_graph.Graph.t -> t -> unit
(** Apply to a reference graph (raises if a deletion would make a
    multiplicity negative — such a stream is outside the model). *)

val apply_all : Ds_graph.Graph.t -> t array -> unit

val final_graph : n:int -> t array -> Ds_graph.Graph.t
(** The multigraph at the end of the stream. *)

val final_weighted : n:int -> weighted array -> Ds_graph.Weighted_graph.t

val is_valid : n:int -> t array -> bool
(** Multiplicities stay non-negative throughout and indices are in range. *)

val pp : Format.formatter -> t -> unit
