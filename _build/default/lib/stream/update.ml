open Ds_graph

type sign = Insert | Delete
type t = { u : int; v : int; sign : sign }
type weighted = { wu : int; wv : int; weight : float; wsign : sign }

let delta t = match t.sign with Insert -> 1 | Delete -> -1
let insert u v = { u; v; sign = Insert }
let delete u v = { u; v; sign = Delete }

let apply g t =
  match t.sign with Insert -> Graph.add_edge g t.u t.v | Delete -> Graph.remove_edge g t.u t.v

let apply_all g updates = Array.iter (apply g) updates

let final_graph ~n updates =
  let g = Graph.create n in
  apply_all g updates;
  g

let final_weighted ~n updates =
  let g = Weighted_graph.create n in
  Array.iter
    (fun { wu; wv; weight; wsign } ->
      match wsign with
      | Insert -> Weighted_graph.add_edge g wu wv weight
      | Delete -> Weighted_graph.remove_edge g wu wv)
    updates;
  g

let is_valid ~n updates =
  try
    ignore (final_graph ~n updates);
    true
  with Invalid_argument _ -> false

let pp ppf t =
  Format.fprintf ppf "%c(%d,%d)" (match t.sign with Insert -> '+' | Delete -> '-') t.u t.v
