lib/sketch/one_sparse.mli: Ds_util
