lib/sketch/one_sparse.ml: Ds_util Field Prng Wire
