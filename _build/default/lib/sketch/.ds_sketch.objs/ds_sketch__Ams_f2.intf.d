lib/sketch/ams_f2.mli: Ds_util
