lib/sketch/packed_l0.ml: Array Ds_util F0 Field Kwise List Printf Prng
