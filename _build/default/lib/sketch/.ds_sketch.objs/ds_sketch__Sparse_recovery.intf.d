lib/sketch/sparse_recovery.mli: Ds_util
