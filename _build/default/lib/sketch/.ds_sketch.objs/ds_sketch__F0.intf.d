lib/sketch/f0.mli: Ds_util
