lib/sketch/ams_f2.ml: Array Ds_util Kwise Printf Prng Stats
