lib/sketch/sketch_table.mli: Ds_util
