lib/sketch/count_sketch.mli: Ds_util
