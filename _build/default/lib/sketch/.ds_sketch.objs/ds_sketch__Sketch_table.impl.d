lib/sketch/sketch_table.ml: Array Ds_util Field Kwise Printf Prng
