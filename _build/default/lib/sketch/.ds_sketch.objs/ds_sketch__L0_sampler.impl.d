lib/sketch/l0_sampler.ml: Array Ds_util F0 Kwise List Printf Prng Sparse_recovery Wire
