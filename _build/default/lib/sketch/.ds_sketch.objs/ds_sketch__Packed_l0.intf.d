lib/sketch/packed_l0.mli: Ds_util
