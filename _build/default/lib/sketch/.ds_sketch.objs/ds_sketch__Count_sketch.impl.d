lib/sketch/count_sketch.ml: Array Ds_util Kwise List Printf Prng Stats
