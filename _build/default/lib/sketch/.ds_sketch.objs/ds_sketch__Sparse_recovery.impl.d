lib/sketch/sparse_recovery.ml: Array Ds_util Kwise List One_sparse Printf Prng Wire
