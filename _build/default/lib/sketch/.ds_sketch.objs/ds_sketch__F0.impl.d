lib/sketch/f0.ml: Array Ds_util Kwise List Printf Prng Sparse_recovery Stats
