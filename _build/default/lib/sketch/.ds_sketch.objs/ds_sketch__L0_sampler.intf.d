lib/sketch/l0_sampler.mli: Ds_util
