lib/sim/cluster_sim.mli: Ds_stream Ds_util Format
