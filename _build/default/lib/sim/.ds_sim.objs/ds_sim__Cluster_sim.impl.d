lib/sim/cluster_sim.ml: Agm_sketch Array Components Ds_agm Ds_graph Ds_stream Ds_util Format Graph List Prng String Update
