(* Bench-regression guard.

     dune exec bench/guard.exe -- BASELINE.json FRESH.json [TOLERANCE] [SERVE.json]
                                  [SPARSIFY_BASELINE.json SPARSIFY_FRESH.json]

   Compares a freshly measured BENCH_ingest.json against the committed
   baseline: every single-thread kernel throughput must be within
   TOLERANCE (default 25%) of the baseline, and the telemetry overheads
   recorded in the fresh file (metrics enabled vs disabled, and span
   tracing enabled vs disabled, each measured interleaved on the
   sharded AGM path) must be under 3%.

   Parallel scaling is gated against the fresh run's own single-thread
   kernel rate, never against the baseline file: absolute parallel
   rates depend on the runner, but the shape of the curve is the
   engine's responsibility.  The thresholds are core-aware (the fresh
   file records host_cores): a multi-core runner must show >= 1.5x at
   2 domains, while a single-core runner can only be held to a
   no-regression floor — the engine's overhead at 1 forced worker must
   keep >= 0.75x of the sequential kernel.  The full 8-domain curve is
   printed as advisory only.

   With a fourth argument — a fresh BENCH_serve.json — the serving
   layer is gated on absolute ceilings rather than a baseline ratio:
   ingest latency through the socket is dominated by syscalls and
   checkpoint fsyncs, so its budget is a wall-clock promise (p99 under
   250 ms, recovery of the full store under 2 s), not a machine-relative
   one.  The ceilings are deliberately loose: they catch the pathology
   class (an accidental O(store) scan per frame, a lost fsync batch, a
   recovery walk that re-decodes every generation), not scheduler noise.

   With a fifth and sixth argument — the committed BENCH_sparsify.json
   baseline and a freshly measured one — the single-pass sparsifier is
   gated three ways: the fresh run must report pencil_ok (every suite
   graph inside its exact (1 +- eps) window), its decode time must stay
   under an absolute wall-clock ceiling (decode is CG solves plus a
   candidate sweep; the ceiling catches an accidental extra chain pass
   or a quadratic blow-up, not machine noise), and its sketch size in
   words — which is deterministic — may not exceed the baseline's by
   more than 10%.

   The values are extracted with a key scanner rather than a JSON
   parser: the repo deliberately has no JSON dependency, and
   bench/ingest.ml writes each key exactly once. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("guard: " ^ m); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    data
  with Sys_error m -> fail "cannot read %s: %s" path m

let is_number_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

(* First occurrence of ["key": <number>]; None if the key is absent. *)
let find_number json key =
  let pat = Printf.sprintf "\"%s\"" key in
  let plen = String.length pat and len = String.length json in
  let rec search i =
    if i + plen > len then None
    else if String.sub json i plen = pat then
      let j = ref (i + plen) in
      while !j < len && (json.[!j] = ':' || json.[!j] = ' ') do incr j done;
      let start = !j in
      while !j < len && is_number_char json.[!j] do incr j done;
      if !j = start then search (i + 1)
      else float_of_string_opt (String.sub json start (!j - start))
    else search (i + 1)
  in
  search 0

let require json path key =
  match find_number json key with
  | Some v -> v
  | None -> fail "%s: key %S not found" path key

let throughput_keys =
  [
    "kernel_one_sparse_ops_per_sec";
    "kernel_sparse_recovery_ops_per_sec";
    "kernel_l0_ops_per_sec";
    "kernel_agm_ops_per_sec";
  ]

let max_overhead = 0.03

let () =
  let argc = Array.length Sys.argv in
  if argc < 3 then fail "usage: guard BASELINE.json FRESH.json [TOLERANCE]";
  let baseline_path = Sys.argv.(1) and fresh_path = Sys.argv.(2) in
  let tolerance = if argc > 3 then float_of_string Sys.argv.(3) else 0.25 in
  let baseline = read_file baseline_path and fresh = read_file fresh_path in
  let failures = ref 0 in
  List.iter
    (fun key ->
      let base = require baseline baseline_path key in
      let now = require fresh fresh_path key in
      let floor = (1.0 -. tolerance) *. base in
      let verdict = if now >= floor then "ok" else (incr failures; "REGRESSION") in
      Printf.printf "guard: %-40s base %12.0f  now %12.0f  (%+6.1f%%)  %s\n" key base now
        (100.0 *. ((now /. base) -. 1.0))
        verdict)
    throughput_keys;
  (* Overheads are checked on the fresh run only: older baselines predate
     the telemetry subsystem and legitimately lack the keys. *)
  List.iter
    (fun (label, key) ->
      let overhead = require fresh fresh_path key in
      let verdict =
        if overhead < max_overhead then "ok" else (incr failures; "TOO HIGH")
      in
      Printf.printf "guard: %-40s %.2f%% (limit %.0f%%)  %s\n" label (100.0 *. overhead)
        (100.0 *. max_overhead) verdict)
    [
      ("metrics_enabled_overhead", "enabled_overhead_frac");
      ("tracing_enabled_overhead", "tracing_overhead_frac");
    ];
  (* GC gate (v3 schema). The fresh file must show the arena paying for
     itself: recycled replicas must at least halve the major-heap garbage
     of fresh clones on the parallel AGM path. A v2 baseline has no GC
     keys — the trajectory starts with the first v3 file — and a v2
     fresh file (older binary) skips the gate entirely. When both files
     are v3, the fresh run's arena-path allocation must not blow up
     against the recorded baseline (loose 2x: allocation is near
     deterministic, GC bookkeeping noise is not). *)
  (match find_number fresh "arena_major_words_ratio" with
  | None -> print_endline "guard: no GC section in fresh file (pre-v3), skipping"
  | Some ratio ->
      let verdict = if ratio <= 0.5 then "ok" else (incr failures; "TOO HIGH") in
      Printf.printf "guard: %-40s %.3fx (limit 0.50x)  %s\n" "arena_major_words_ratio" ratio
        verdict;
      (match
         ( find_number baseline "parallel_agm_major_words_arena",
           find_number fresh "parallel_agm_major_words_arena" )
       with
      | Some base, Some now when base > 0.0 ->
          let verdict =
            if now <= 2.0 *. base then "ok" else (incr failures; "REGRESSION")
          in
          Printf.printf "guard: %-40s base %12.0f  now %12.0f  %s\n"
            "parallel_agm_major_words_arena" base now verdict
      | _ -> print_endline "guard: baseline has no GC keys (pre-v3), trajectory starts here"));
  (* Parallel gate (fresh run only; v1 baselines have no flat curve). *)
  (match find_number fresh "parallel_speedup_d1" with
  | None -> print_endline "guard: no parallel curve in fresh file (pre-v2), skipping"
  | Some d1 ->
      let host_cores =
        int_of_float (Option.value ~default:1.0 (find_number fresh "host_cores"))
      in
      let check label value floor =
        let verdict = if value >= floor then "ok" else (incr failures; "TOO SLOW") in
        Printf.printf "guard: %-40s %.3fx (floor %.2fx, host cores %d)  %s\n" label value
          floor host_cores verdict
      in
      if host_cores >= 2 then
        check "parallel_speedup_d2" (require fresh fresh_path "parallel_speedup_d2") 1.5
      else
        (* One core: parallelism cannot pay, so hold the engine to its
           overhead — a forced single worker ingesting through the plan,
           deque and merge machinery must stay near the plain kernel. *)
        check "parallel_speedup_d1 (single-core floor)" d1 0.75;
      List.iter
        (fun d ->
          match find_number fresh (Printf.sprintf "parallel_speedup_d%d" d) with
          | Some s -> Printf.printf "guard: advisory parallel_speedup_d%-2d %25.3fx\n" d s
          | None -> ())
        [ 1; 2; 4; 8 ]);
  (* Serve gate: absolute latency ceilings on a fresh BENCH_serve.json. *)
  (if argc > 4 then begin
     let serve_path = Sys.argv.(4) in
     let serve = read_file serve_path in
     let ceiling label key limit =
       let v = require serve serve_path key in
       let verdict = if v <= limit then "ok" else (incr failures; "TOO SLOW") in
       Printf.printf "guard: %-40s %10.1f ms (ceiling %.0f ms)  %s\n" label v limit verdict
     in
     ceiling "serve_ingest_p99" "ingest_p99_ms" 250.0;
     ceiling "serve_recovery" "recovery_ms" 2000.0;
     ceiling "serve_flush" "flush_ms" 2000.0;
     (match find_number serve "recovery_streams" with
     | Some s when s > 0.0 -> ()
     | _ ->
         incr failures;
         print_endline "guard: serve file recovered zero streams            EMPTY STORE");
     (* Enabled-observability overhead on the serve path (v2 schema): a
        v1 file predates the quantile/STAT/flight subsystem and
        legitimately lacks the key. *)
     match find_number serve "serve_obs_overhead_frac" with
     | None -> print_endline "guard: no serve observability overhead (pre-v2), skipping"
     | Some o ->
         let verdict = if o < max_overhead then "ok" else (incr failures; "TOO HIGH") in
         Printf.printf "guard: %-40s %.2f%% (limit %.0f%%)  %s\n" "serve_obs_overhead_frac"
           (100.0 *. o) (100.0 *. max_overhead) verdict
   end);
  (* Sparsify gate: committed baseline + fresh BENCH_sparsify.json. *)
  (if argc > 6 then begin
     let sp_base_path = Sys.argv.(5) and sp_fresh_path = Sys.argv.(6) in
     let sp_base = read_file sp_base_path and sp_fresh = read_file sp_fresh_path in
     let pencil_ok = require sp_fresh sp_fresh_path "sparsify_pencil_ok" in
     let verdict =
       if pencil_ok = 1.0 then "ok" else (incr failures; "OUTSIDE (1 +- eps)")
     in
     Printf.printf "guard: %-40s %d  %s\n" "sparsify_pencil_ok"
       (int_of_float pencil_ok) verdict;
     let decode_ms = require sp_fresh sp_fresh_path "sparsify_decode_ms_max" in
     let decode_ceiling = 15000.0 in
     let verdict =
       if decode_ms <= decode_ceiling then "ok" else (incr failures; "TOO SLOW")
     in
     Printf.printf "guard: %-40s %10.1f ms (ceiling %.0f ms)  %s\n"
       "sparsify_decode_ms_max" decode_ms decode_ceiling verdict;
     let base_words = require sp_base sp_base_path "sparsify_space_words_max" in
     let now_words = require sp_fresh sp_fresh_path "sparsify_space_words_max" in
     let verdict =
       if now_words <= 1.1 *. base_words then "ok" else (incr failures; "REGRESSION")
     in
     Printf.printf "guard: %-40s base %12.0f  now %12.0f  (%+6.1f%%)  %s\n"
       "sparsify_space_words_max" base_words now_words
       (100.0 *. ((now_words /. base_words) -. 1.0))
       verdict
   end);
  if !failures > 0 then fail "%d check(s) failed" !failures;
  print_endline "guard: all checks passed"
