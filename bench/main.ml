(* Experiment harness: regenerates every table/figure of the reproduction
   (see DESIGN.md section 2 for the experiment index E1..E13). Each
   experiment prints the paper's claim next to the measured quantities; the
   Bechamel suite (E10) times the sketch primitives and full passes.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe e1 e5      -- run selected experiments *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let line () = Fmt.pr "%s@." (String.make 100 '-')

let header id claim =
  Fmt.pr "@.%s@." (String.make 100 '=');
  Fmt.pr "%s  %s@." id claim;
  Fmt.pr "%s@." (String.make 100 '=')

let master_seed = 20140721 (* PODC'14 *)

(* ------------------------------------------------------------------ *)
(* E1: Theorem 1 — two-pass 2^k spanner: size, stretch, space          *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Theorem 1: two-pass 2^k-spanner; size O(k n^(1+1/k) log n), stretch <= 2^k";
  Fmt.pr "%-6s %-3s %-7s %-8s %-10s %-9s %-7s %-10s %-12s@." "n" "k" "|E|" "|H|" "size-bnd"
    "stretch" "2^k" "space(w)" "space-bnd(w)";
  line ();
  List.iter
    (fun (n, k) ->
      let rng = Prng.create (master_seed + n + (1000 * k)) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:(12.0 /. float_of_int n) in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:(2 * Graph.num_edges g) g in
      let r =
        Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k)
          stream
      in
      let s = Stretch.multiplicative ~base:g ~spanner:r.Two_pass_spanner.spanner in
      Fmt.pr "%-6d %-3d %-7d %-8d %-10.0f %-9.1f %-7d %-10d %-12.0f@." n k (Graph.num_edges g)
        (Graph.num_edges r.Two_pass_spanner.spanner)
        (Basic_spanner.size_bound ~n ~k)
        s.Stretch.max (1 lsl k) r.Two_pass_spanner.space_words
        (Two_pass_spanner.space_bound ~n ~k);
      Gc.compact ())
    [ (64, 2); (128, 2); (256, 2); (64, 3); (128, 3); (256, 3); (384, 3); (128, 4); (256, 4) ];
  Fmt.pr "shape check: |H| grows ~ n^(1+1/k) at fixed k; measured stretch never exceeds 2^k.@."

(* ------------------------------------------------------------------ *)
(* E2: streaming vs offline baselines                                  *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2" "Theorem 1 vs offline baselines (same graphs): size/stretch per algorithm";
  let n = 192 in
  Fmt.pr "%-26s %-3s %-8s %-9s %-9s %-8s@." "algorithm" "k" "passes" "|H|" "stretch" "bound";
  line ();
  List.iter
    (fun k ->
      let rng = Prng.create (master_seed + 17 + k) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.08 in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:2000 g in
      let row name passes spanner bound =
        let s = Stretch.multiplicative ~base:g ~spanner in
        Fmt.pr "%-26s %-3d %-8s %-9d %-9.1f %-8d@." name k passes (Graph.num_edges spanner)
          s.Stretch.max bound
      in
      let tp =
        Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k)
          stream
      in
      row "two-pass (this paper)" "2" tp.Two_pass_spanner.spanner (1 lsl k);
      let mp =
        Multipass_spanner.run (Prng.split rng) ~n
          ~params:(Multipass_spanner.default_params ~k)
          stream
      in
      row "k-pass sketch BS [AGM12b]" (string_of_int mp.Multipass_spanner.passes)
        mp.Multipass_spanner.spanner
        (Multipass_spanner.stretch_bound ~k);
      row "offline basic (Sec 3.1)" "-"
        (Basic_spanner.run (Prng.split rng) ~k g).Basic_spanner.spanner (1 lsl k);
      row "Baswana-Sen [BS07]" "-" (Baswana_sen.run (Prng.split rng) ~k g) ((2 * k) - 1);
      row "greedy [Althofer]" "-" (Greedy_spanner.run ~k g) ((2 * k) - 1);
      line ();
      Gc.compact ())
    [ 2; 3 ];
  Fmt.pr "expected: offline (2k-1) baselines are smaller/tighter; the streaming cost is the@.";
  Fmt.pr "2^k stretch and log-factor size overhead -- the paper's stated tradeoff.@."

(* ------------------------------------------------------------------ *)
(* E3: stretch distribution vs k (figure-style series)                 *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3" "Lemma 13 shape: distribution of per-edge stretch as k grows (fixed graph)";
  let n = 256 in
  let rng = Prng.create (master_seed + 3) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.05 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:3000 g in
  Fmt.pr "%-3s %-8s %-8s %-8s %-8s %-8s %-9s@." "k" "|H|" "mean" "p50" "p95" "max" "bound 2^k";
  line ();
  List.iter
    (fun k ->
      let r =
        Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k)
          stream
      in
      let s = Stretch.multiplicative ~base:g ~spanner:r.Two_pass_spanner.spanner in
      Fmt.pr "%-3d %-8d %-8.2f %-8.1f %-8.1f %-8.1f %-9d@." k
        (Graph.num_edges r.Two_pass_spanner.spanner)
        s.Stretch.mean s.Stretch.p50 s.Stretch.p95 s.Stretch.max (1 lsl k);
      Gc.compact ())
    [ 1; 2; 3; 4; 5 ];
  Fmt.pr "expected: size falls and the stretch distribution shifts right as k grows, always@.";
  Fmt.pr "below 2^k -- the exponential-diameter clusters of Section 3 in action.@."

(* ------------------------------------------------------------------ *)
(* E4: Theorem 3 — additive spanner                                    *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4" "Theorem 3: single-pass n/d-additive spanner in ~O(nd) space";
  Fmt.pr "%-16s %-6s %-3s %-7s %-8s %-9s %-10s %-10s %-12s@." "graph" "n" "d" "|E|" "|H|"
    "surplus" "bound" "space(w)" "space-bnd(w)";
  line ();
  let cases =
    [
      ("gnp-sparse", Gen.connected_gnp (Prng.create 1) ~n:192 ~p:0.06, 4);
      ("gnp-dense", Gen.connected_gnp (Prng.create 2) ~n:192 ~p:0.35, 4);
      ("gnp-dense", Gen.connected_gnp (Prng.create 3) ~n:192 ~p:0.35, 8);
      ("pref-attach", Gen.preferential_attachment (Prng.create 4) ~n:192 ~m:6, 4);
      ("clique", Gen.complete 128, 2);
      ("clique", Gen.complete 128, 8);
      ("clique-chain", Gen.lollipop 96 64, 4);
    ]
  in
  List.iter
    (fun (name, g, d) ->
      let n = Graph.n g in
      let rng = Prng.create (master_seed + n + d) in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:1000 g in
      let r =
        Additive_spanner.run (Prng.split rng) ~n
          ~params:(Additive_spanner.default_params ~n ~d)
          stream
      in
      let s = Stretch.additive ~base:g ~spanner:r.Additive_spanner.spanner () in
      Fmt.pr "%-16s %-6d %-3d %-7d %-8d %-9.0f %-10.0f %-10d %-12.0f@." name n d
        (Graph.num_edges g)
        (Graph.num_edges r.Additive_spanner.spanner)
        s.Stretch.max
        (Additive_spanner.distortion_bound ~n ~d)
        r.Additive_spanner.space_words
        (Additive_spanner.space_bound ~n ~d);
      Gc.compact ())
    cases;
  Fmt.pr "expected: surplus well under the O(n/d) bound; space grows linearly with d;@.";
  Fmt.pr "dense graphs compress hard (everything is high-degree, only stars+forest remain).@.";
  (* Offline additive baseline for context: ACIM99's +2-spanner. *)
  Fmt.pr "@.-- offline baseline [ACIM99] (+2 additive, needs the whole graph)@.";
  Fmt.pr "%-16s %-6s %-7s %-8s %-9s@." "graph" "n" "|E|" "|H|" "surplus";
  line ();
  List.iter
    (fun (name, g) ->
      let h = Aingworth.run g in
      let s = Stretch.additive ~base:g ~spanner:h () in
      Fmt.pr "%-16s %-6d %-7d %-8d %-9.0f@." name (Graph.n g) (Graph.num_edges g)
        (Graph.num_edges h) s.Stretch.max;
      Gc.compact ())
    [
      ("gnp-dense", Gen.connected_gnp (Prng.create 2) ~n:192 ~p:0.35);
      ("clique", Gen.complete 128);
    ];
  Fmt.pr "expected: +2 surplus at ~n^1.5 size -- stronger distortion, offline-only,@.";
  Fmt.pr "which is the gap Theorem 3's single-pass algorithm fills.@."

(* ------------------------------------------------------------------ *)
(* E5: Theorem 4 — the INDEX lower-bound game                          *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5" "Theorem 4: Omega(nd) lower bound -- success of the INDEX game vs space budget";
  (* Blocks must be denser than the algorithm's low-degree threshold at the
     starved end of the sweep, otherwise the neighbourhood sketches decode
     every block exactly and space never binds. *)
  let n = 64 and d = 32 in
  Fmt.pr "instance: %d blocks of G(%d, 1/2); nd = %d@." (3 * n / d) d (n * d);
  Fmt.pr "%-8s %-14s %-12s %-12s@." "budget" "space(words)" "success" "distortion";
  line ();
  List.iter
    (fun budget ->
      let o =
        Ind_game.play
          (Prng.create (master_seed + budget))
          ~n ~d ~algo_budget:budget ~trials:20 ()
      in
      Fmt.pr "%-8d %-14.0f %-12.2f %-12.1f@." budget o.Ind_game.mean_space_words
        (Ind_game.success_rate o) o.Ind_game.mean_distortion;
      Gc.compact ())
    [ 1; 2; 3; 4; 6 ];
  Fmt.pr "expected: success rises from coin-flipping toward 1 as the algorithm's space@.";
  Fmt.pr "crosses Theta(nd) -- the information-theoretic wall of Theorem 4.@."

(* ------------------------------------------------------------------ *)
(* E6: Corollary 2 — two-pass spectral sparsifier                      *)
(* ------------------------------------------------------------------ *)

let pencil g h = Ds_linalg.Spectral.pencil_bounds ~base:(Weighted_graph.of_graph g) ~candidate:h

let e6 () =
  header "E6" "Corollary 2: two-pass spectral sparsifier -- quality vs rounds Z (fixed graph)";
  let n = 64 in
  let rng = Prng.create (master_seed + 6) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.3 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:500 g in
  Fmt.pr "graph: n=%d |E|=%d; oracle stretch 2^2, shift 2@." n (Graph.num_edges g);
  Fmt.pr "%-5s %-8s %-12s %-12s %-12s@." "Z" "|H|" "lambda_min" "lambda_max" "space(w)";
  line ();
  List.iter
    (fun z ->
      let prm = { (Sparsify.default_params ~k:2 ~eps:0.5 ~n) with Sparsify.z_rounds = z } in
      let r = Sparsify.run (Prng.split rng) ~n ~params:prm stream in
      let b = pencil g r.Sparsify.sparsifier in
      Fmt.pr "%-5d %-8d %-12.3f %-12.3f %-12d@." z
        (Weighted_graph.num_edges r.Sparsify.sparsifier)
        b.Ds_linalg.Spectral.lambda_min b.Ds_linalg.Spectral.lambda_max r.Sparsify.space_words;
      Gc.compact ())
    [ 4; 8; 16; 32 ];
  Fmt.pr "space bound (Cor 2, eps=0.5): %.0f words-order@." (Sparsify.space_bound ~n ~eps:0.5);
  Fmt.pr "expected: pencil bounds tighten toward [1-eps, 1+eps] as Z grows like@.";
  Fmt.pr "the paper's Z = O(alpha^2 log n / eps^3) -- convergence, not free lunch.@."

(* ------------------------------------------------------------------ *)
(* E7: sparsifier baselines/ablation                                   *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7" "Theorem 7 baseline + oracle ablation: who pays what for streaming";
  let n = 64 in
  let rng = Prng.create (master_seed + 7) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.3 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let wg = Weighted_graph.of_graph g in
  Fmt.pr "%-34s %-8s %-12s %-12s@." "algorithm" "|H|" "lambda_min" "lambda_max";
  line ();
  let base_prm = { (Sparsify.default_params ~k:2 ~eps:0.5 ~n) with Sparsify.z_rounds = 16 } in
  let r1 = Sparsify.run (Prng.split rng) ~n ~params:base_prm stream in
  let b1 = pencil g r1.Sparsify.sparsifier in
  Fmt.pr "%-34s %-8d %-12.3f %-12.3f@." "two-pass, spanner oracle (Cor 2)"
    (Weighted_graph.num_edges r1.Sparsify.sparsifier)
    b1.Ds_linalg.Spectral.lambda_min b1.Ds_linalg.Spectral.lambda_max;
  Gc.compact ();
  let exact_prm =
    {
      base_prm with
      Sparsify.estimate =
        { base_prm.Sparsify.estimate with Estimate.mode = Estimate.Exact_resistance };
    }
  in
  let r2 = Sparsify.run (Prng.split rng) ~n ~params:exact_prm stream in
  let b2 = pencil g r2.Sparsify.sparsifier in
  Fmt.pr "%-34s %-8d %-12.3f %-12.3f@." "two-pass, exact-R oracle (ablation)"
    (Weighted_graph.num_edges r2.Sparsify.sparsifier)
    b2.Ds_linalg.Spectral.lambda_min b2.Ds_linalg.Spectral.lambda_max;
  Gc.compact ();
  let h = Ss_sparsifier.run (Prng.split rng) ~eps:0.5 wg in
  let b3 = Ds_linalg.Spectral.pencil_bounds ~base:wg ~candidate:h in
  Fmt.pr "%-34s %-8d %-12.3f %-12.3f@." "offline SS08 (Theorem 7)"
    (Weighted_graph.num_edges h) b3.Ds_linalg.Spectral.lambda_min
    b3.Ds_linalg.Spectral.lambda_max;
  let p = Uniform_sparsifier.matching_p ~target_edges:(Weighted_graph.num_edges h) wg in
  let hu = Uniform_sparsifier.run (Prng.split rng) ~p wg in
  let b4 = Ds_linalg.Spectral.pencil_bounds ~base:wg ~candidate:hu in
  Fmt.pr "%-34s %-8d %-12.3f %-12.3f@." "uniform sampling (naive)"
    (Weighted_graph.num_edges hu) b4.Ds_linalg.Spectral.lambda_min
    b4.Ds_linalg.Spectral.lambda_max;
  Fmt.pr "expected: SS08 (sees everything, exact R_e) is tightest; the exact-R ablation@.";
  Fmt.pr "isolates the oracle's share of the streaming pipeline's looseness. Uniform@.";
  Fmt.pr "sampling holds on this expander but catastrophically loses sparse cuts@.";
  Fmt.pr "(see the barbell test in test/test_sparsifier.ml) -- why importance matters.@."

(* ------------------------------------------------------------------ *)
(* E8: Theorem 10 — AGM spanning forest under deletions                *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8" "Theorem 10: AGM spanning forest correctness/space under adversarial deletions";
  Fmt.pr "%-10s %-16s %-10s %-12s %-12s@." "n" "stream" "del-frac" "success" "space(w)";
  line ();
  let forest_correct g forest =
    let n = Graph.n g in
    List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest
    && begin
      let fg = Graph.create n in
      List.iter (fun (u, v) -> if not (Graph.mem_edge fg u v) then Graph.add_edge fg u v) forest;
      Components.count fg = Components.count g
      && List.length forest = n - Components.count g
    end
  in
  let run_case n mk_stream label =
    let trials = 10 in
    let ok = ref 0 and words = ref 0 and delfrac = ref 0.0 in
    for t = 1 to trials do
      let rng = Prng.create (master_seed + (1000 * n) + t) in
      let g, stream = mk_stream rng in
      let sk =
        Ds_agm.Agm_sketch.create (Prng.split rng) ~n
          ~params:(Ds_agm.Agm_sketch.default_params ~n)
      in
      Array.iter
        (fun u ->
          Ds_agm.Agm_sketch.update sk ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
        stream;
      if forest_correct g (Ds_agm.Agm_sketch.spanning_forest sk) then incr ok;
      words := Ds_agm.Agm_sketch.space_in_words sk;
      let dels =
        Array.fold_left (fun a u -> if u.Update.sign = Update.Delete then a + 1 else a) 0 stream
      in
      delfrac := float_of_int dels /. float_of_int (max 1 (Array.length stream))
    done;
    Fmt.pr "%-10d %-16s %-10.2f %-12s %-12d@." n label !delfrac
      (Printf.sprintf "%d/%d" !ok trials)
      !words;
    Gc.compact ()
  in
  List.iter
    (fun n ->
      run_case n
        (fun rng ->
          let g = Gen.gnp (Prng.split rng) ~n ~p:(8.0 /. float_of_int n) in
          (g, Stream_gen.insert_only (Prng.split rng) g))
        "insert-only";
      run_case n
        (fun rng ->
          let g = Gen.gnp (Prng.split rng) ~n ~p:(8.0 /. float_of_int n) in
          (g, Stream_gen.with_churn (Prng.split rng) ~decoys:(4 * Graph.num_edges g) g))
        "churn-4x")
    [ 64; 128; 256 ];
  run_case 96
    (fun rng ->
      let target = Gen.cycle 96 in
      (target, Stream_gen.delete_down_to (Prng.split rng) ~from:(Gen.complete 96) target))
    "delete-98%";
  Fmt.pr "expected: correctness independent of deletion fraction (linearity), space ~ n polylog.@."

(* ------------------------------------------------------------------ *)
(* E9: sketch primitives                                               *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9" "Theorems 8/9 stand-ins: recovery success, F0 accuracy, L0 uniformity";
  let open Ds_sketch in
  Fmt.pr "-- s-sparse recovery: success vs load (budget s = 8, 200 trials/row)@.";
  Fmt.pr "%-12s %-10s %-12s@." "support/s" "success" "wrong";
  line ();
  List.iter
    (fun frac ->
      let s = 8 in
      let support = max 1 (int_of_float (frac *. float_of_int s)) in
      let ok = ref 0 and wrong = ref 0 in
      let rng = Prng.create (master_seed + support) in
      for t = 1 to 200 do
        let sk =
          Sparse_recovery.create
            (Prng.create (master_seed + (1000 * support) + t))
            ~dim:50000
            ~params:(Sparse_recovery.default_params ~sparsity:s)
        in
        let truth = Hashtbl.create support in
        while Hashtbl.length truth < support do
          let i = Prng.int rng 50000 in
          if not (Hashtbl.mem truth i) then Hashtbl.add truth i (1 + Prng.int rng 9)
        done;
        Hashtbl.iter (fun i w -> Sparse_recovery.update sk ~index:i ~delta:w) truth;
        match Sparse_recovery.decode sk with
        | Some assoc ->
            let sorted = List.sort compare assoc in
            let expected =
              List.sort compare (Hashtbl.fold (fun i w acc -> (i, w) :: acc) truth [])
            in
            if sorted = expected then incr ok else incr wrong
        | None -> ()
      done;
      Fmt.pr "%-12.2f %-10.2f %-12d@." frac (float_of_int !ok /. 200.0) !wrong)
    [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 4.0 ];
  Fmt.pr "expected: ~1.0 success up to load 1.0, detected (never wrong) failures beyond.@.";
  Fmt.pr "@.-- F0 estimation (Theorem 9 stand-in): relative error vs true support@.";
  Fmt.pr "%-10s %-12s %-10s@." "F0" "estimate" "rel-err";
  line ();
  List.iter
    (fun f0 ->
      let sk =
        F0.create (Prng.create (master_seed + f0)) ~dim:100000 ~params:F0.default_params
      in
      for i = 0 to f0 - 1 do
        F0.update sk ~index:(i * 7) ~delta:1
      done;
      let e = F0.estimate sk in
      Fmt.pr "%-10d %-12d %-10.2f@." f0 e
        (abs_float (float_of_int e -. float_of_int f0) /. float_of_int (max 1 f0)))
    [ 4; 32; 256; 2048; 14000 ];
  Fmt.pr "expected: exact below the level-0 budget, constant-factor above (gate quality).@.";
  Fmt.pr "@.-- L0 sampler uniformity: TV distance from uniform over a 16-element support@.";
  let support = Array.init 16 (fun i -> (i * 61) + 7) in
  let counts = Array.make 16 0 in
  let trials = 2000 in
  let failures = ref 0 in
  for t = 0 to trials - 1 do
    let sk =
      L0_sampler.create
        (Prng.create (master_seed + t))
        ~dim:1024 ~params:L0_sampler.default_params
    in
    Array.iter (fun i -> L0_sampler.update sk ~index:i ~delta:1) support;
    match L0_sampler.sample sk with
    | Some (i, _) -> Array.iteri (fun j v -> if v = i then counts.(j) <- counts.(j) + 1) support
    | None -> incr failures
  done;
  let tv = Stats.total_variation (Array.map float_of_int counts) (Array.make 16 1.0) in
  Fmt.pr "trials=%d failures=%d TV=%.3f (perfectly uniform = 0)@." trials !failures tv;
  Fmt.pr "expected: small TV, sub-1%% failures -- the AGM substrate's contract.@."

(* ------------------------------------------------------------------ *)
(* E11: ablations of the engineering knobs                             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11" "Ablations: sketch budget, table capacity, payload reps; weight classes";
  let n = 128 in
  let k = 3 in
  let rng = Prng.create (master_seed + 11) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.08 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:1500 g in
  Fmt.pr "%-34s %-8s %-9s %-9s %-12s %-10s@." "variant" "|H|" "stretch" "viol" "decode-fails"
    "space(w)";
  line ();
  let base = Two_pass_spanner.default_params ~k in
  let try_variant name prm =
    let r = Two_pass_spanner.run (Prng.split rng) ~n ~params:prm stream in
    let s = Stretch.multiplicative ~base:g ~spanner:r.Two_pass_spanner.spanner in
    let d = r.Two_pass_spanner.diagnostics in
    let fails =
      d.Two_pass_spanner.pass1_decode_failures + d.Two_pass_spanner.table_decode_failures
      + d.Two_pass_spanner.payload_decode_failures
    in
    Fmt.pr "%-34s %-8d %-9.1f %-9d %-12d %-10d@." name
      (Graph.num_edges r.Two_pass_spanner.spanner)
      s.Stretch.max s.Stretch.violations fails r.Two_pass_spanner.space_words;
    Gc.compact ()
  in
  try_variant "default (B=8, cap=3.0, reps=2)" base;
  try_variant "sketch budget B=4" { base with Two_pass_spanner.sketch_sparsity = 4 };
  try_variant "sketch budget B=16" { base with Two_pass_spanner.sketch_sparsity = 16 };
  try_variant "table capacity factor 1.0" { base with Two_pass_spanner.capacity_factor = 1.0 };
  try_variant "payload reps=1 (cheaper, riskier)"
    { base with Two_pass_spanner.payload = { Ds_sketch.Packed_l0.default_params with reps = 1 } };
  try_variant "payload sparsity=1"
    {
      base with
      Two_pass_spanner.payload = { Ds_sketch.Packed_l0.default_params with sparsity = 1 };
    };
  Fmt.pr "@.-- Remark 14: weighted graphs via weight classes (gamma sweep)@.";
  Fmt.pr "%-8s %-9s %-8s %-10s %-12s@." "gamma" "classes" "|H|" "stretch" "bound";
  line ();
  let wrng = Prng.create (master_seed + 111) in
  let g0 = Gen.connected_gnp wrng ~n:96 ~p:0.1 in
  let wg = Weighted_graph.create 96 in
  Graph.iter_edges g0 (fun u v ->
      Weighted_graph.add_edge wg u v (2.0 ** float_of_int (Prng.int wrng 6)));
  let wstream =
    Array.of_list
      (List.map
         (fun (u, v, w) -> { Update.wu = u; wv = v; weight = w; wsign = Update.Insert })
         (Weighted_graph.edges wg))
  in
  List.iter
    (fun gamma ->
      let r =
        Weighted_spanner.run (Prng.split wrng) ~n:96
          ~params:(Two_pass_spanner.default_params ~k:2)
          ~gamma ~w_min:1.0 ~w_max:32.0 wstream
      in
      let s = Stretch.multiplicative_weighted ~base:wg ~spanner:r.Weighted_spanner.spanner in
      Fmt.pr "%-8.2f %-9d %-8d %-10.2f %-12.2f@." gamma r.Weighted_spanner.classes
        (Weighted_graph.num_edges r.Weighted_spanner.spanner)
        s.Stretch.max
        (Weighted_spanner.stretch_bound ~k:2 ~gamma);
      Gc.compact ())
    [ 0.25; 0.5; 1.0 ];
  Fmt.pr "expected: smaller gamma = more classes = more space but tighter weighted stretch.@."

(* ------------------------------------------------------------------ *)
(* E12: the AGM12a substrate extensions (k-connectivity, bipartiteness, *)
(* approximate MST) — the toolbox the paper's Section 1-2 builds on     *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12" "[AGM12a] substrate: k-connectivity, bipartiteness, (1+g)-MST from sketches";
  let open Ds_agm in
  Fmt.pr "-- k-edge-connectivity certificates (10 random graphs per row)@.";
  Fmt.pr "%-6s %-3s %-22s %-12s@." "n" "k" "verdict-agrees-exact" "space(w)";
  line ();
  List.iter
    (fun (n, k) ->
      let agree = ref 0 and words = ref 0 in
      for t = 1 to 10 do
        let rng = Prng.create (master_seed + (100 * n) + k + t) in
        let g = Gen.gnp (Prng.split rng) ~n ~p:(6.0 /. float_of_int n) in
        let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:200 g in
        let kc =
          K_connectivity.create (Prng.split rng) ~n ~k ~params:(Agm_sketch.default_params ~n)
        in
        Array.iter
          (fun u -> K_connectivity.update kc ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
          stream;
        let verdict = K_connectivity.is_k_connected kc in
        let exact = Min_cut.edge_connectivity g >= k in
        if verdict = exact then incr agree;
        words := K_connectivity.space_in_words kc
      done;
      Fmt.pr "%-6d %-3d %-22s %-12d@." n k (Printf.sprintf "%d/10" !agree) !words;
      Gc.compact ())
    [ (48, 2); (48, 3); (96, 2) ];
  Fmt.pr "@.-- bipartiteness via the double cover (20 random graphs per row)@.";
  Fmt.pr "%-10s %-22s@." "n" "verdict-agrees-exact";
  line ();
  List.iter
    (fun n ->
      let agree = ref 0 in
      for t = 1 to 20 do
        let rng = Prng.create (master_seed + (7 * n) + t) in
        (* Half the trials bipartite by construction. *)
        let g =
          if t mod 2 = 0 then Gen.random_bipartite (Prng.split rng) ~left:(n / 2) ~right:(n - (n / 2)) ~p:0.15
          else Gen.gnp (Prng.split rng) ~n ~p:0.15
        in
        let exact =
          (* 2-colourability by BFS *)
          let color = Array.make n (-1) in
          let ok = ref true in
          for s = 0 to n - 1 do
            if color.(s) = -1 then begin
              color.(s) <- 0;
              let q = Queue.create () in
              Queue.add s q;
              while not (Queue.is_empty q) do
                let u = Queue.take q in
                Graph.iter_neighbors g u (fun v ->
                    if color.(v) = -1 then begin
                      color.(v) <- 1 - color.(u);
                      Queue.add v q
                    end
                    else if color.(v) = color.(u) then ok := false)
              done
            end
          done;
          !ok
        in
        let b = Bipartiteness.create (Prng.split rng) ~n ~params:(Agm_sketch.default_params ~n) in
        let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
        Array.iter
          (fun u -> Bipartiteness.update b ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
          stream;
        if (Bipartiteness.test b).Bipartiteness.is_bipartite = exact then incr agree
      done;
      Fmt.pr "%-10d %-22s@." n (Printf.sprintf "%d/20" !agree);
      Gc.compact ())
    [ 32; 64 ];
  Fmt.pr "@.-- (1+gamma)-approximate MST (weight ratio vs exact Kruskal, 5 graphs per row)@.";
  Fmt.pr "%-8s %-6s %-14s %-14s@." "gamma" "n" "mean ratio" "guarantee";
  line ();
  List.iter
    (fun gamma ->
      let n = 64 in
      let ratios = ref [] in
      for t = 1 to 5 do
        let rng = Prng.create (master_seed + t + int_of_float (100.0 *. gamma)) in
        let g0 = Gen.connected_gnp (Prng.split rng) ~n ~p:0.1 in
        let wg = Weighted_graph.create n in
        Graph.iter_edges g0 (fun u v ->
            Weighted_graph.add_edge wg u v (1.0 +. Prng.float (Prng.copy rng) 31.0));
        let t_mst =
          Mst.create (Prng.split rng) ~n
            ~params:{ Mst.gamma; w_min = 1.0; w_max = 32.0; sketch = Agm_sketch.default_params ~n }
        in
        Weighted_graph.iter_edges wg (fun u v w -> Mst.update t_mst ~u ~v ~weight:w ~delta:1);
        let forest = Mst.extract t_mst in
        let true_cost =
          List.fold_left
            (fun acc (u, v, _) ->
              acc +. Option.value ~default:0.0 (Weighted_graph.weight wg u v))
            0.0 forest
        in
        let exact = Mst_offline.forest_weight (Mst_offline.kruskal wg) in
        ratios := (true_cost /. exact) :: !ratios
      done;
      Fmt.pr "%-8.2f %-6d %-14.3f %-14.2f@." gamma n
        (Stats.mean (Array.of_list !ratios))
        (1.0 +. gamma);
      Gc.compact ())
    [ 0.1; 0.25; 0.5; 1.0 ];
  Fmt.pr "expected: all verdicts agree with exact offline computation; MST ratio within 1+gamma.@."

(* ------------------------------------------------------------------ *)
(* E13: the distributed setting — communication vs number of servers    *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13" "Distributed setting (Sec 1): per-server state & wire bytes vs server count";
  let n = 192 in
  let rng = Prng.create (master_seed + 13) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.06 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:(2 * Graph.num_edges g) g in
  Fmt.pr "graph: n=%d |E|=%d, stream %d updates (raw stream ~ %d bytes/server if re-shipped)@."
    n (Graph.num_edges g) (Array.length stream) (Array.length stream * 8);
  Fmt.pr "%-9s %-12s %-16s %-14s %-10s@." "servers" "upd/server" "state(w)/server" "bytes total"
    "correct";
  line ();
  List.iter
    (fun servers ->
      let r =
        Ds_sim.Cluster_sim.run (Prng.split rng) ~n ~servers
          ~partition:Ds_sim.Cluster_sim.Round_robin stream
      in
      Fmt.pr "%-9d %-12d %-16d %-14d %-10b@." servers
        (Array.length stream / servers)
        r.Ds_sim.Cluster_sim.words_per_server r.Ds_sim.Cluster_sim.bytes_total
        r.Ds_sim.Cluster_sim.forest_correct;
      Gc.compact ())
    [ 1; 2; 4; 8; 16 ];
  Fmt.pr "expected: correctness at every partition; total communication grows ~linearly@.";
  Fmt.pr "with servers (one fixed-size message each) while per-server load drops -- the@.";
  Fmt.pr "mergeability dividend of linear sketches.@.";
  (* The same round-trip across the full registered sketch inventory, via
     the generic linear-sketch interface. *)
  let dim = 4096 and servers = 8 in
  let updates =
    Array.init 20_000 (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))
  in
  Fmt.pr "@.full inventory shipped over the generic interface (dim=%d, %d updates, %d servers):@."
    dim (Array.length updates) servers;
  Fmt.pr "%-16s %-13s %-16s %-16s %-8s@." "family" "wire bytes" "bytes/server" "state(w)/server"
    "merged=direct";
  line ();
  List.iter
    (fun (r : Ds_sim.Cluster_sim.ship_report) ->
      Fmt.pr "%-16s %-13d %-16d %-16d %-8b@." r.Ds_sim.Cluster_sim.family
        r.Ds_sim.Cluster_sim.ship_bytes_total
        (Array.fold_left max 0 r.Ds_sim.Cluster_sim.ship_bytes_per_server)
        r.Ds_sim.Cluster_sim.ship_words_per_server r.Ds_sim.Cluster_sim.matches_direct)
    (Ds_sim.Cluster_sim.ship_families (Prng.split rng) ~dim ~servers updates);
  Fmt.pr "expected: merged=direct for every family -- the coordinator's deserialized sum@.";
  Fmt.pr "is byte-identical to sketching the stream in one process.@."

(* ------------------------------------------------------------------ *)
(* E10: throughput (Bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10" "Throughput: ns per operation for each sketch primitive and full passes";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let open Ds_sketch in
  let n = 256 in
  let dim = Edge_index.dim n in
  let rng = Prng.create (master_seed + 10) in
  let updates =
    Array.init 4096 (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))
  in
  let cursor = ref 0 in
  let next () =
    let u = updates.(!cursor land 4095) in
    incr cursor;
    u
  in
  let one_sparse = One_sparse.create (Prng.split rng) ~dim in
  let sr =
    Sparse_recovery.create (Prng.split rng) ~dim
      ~params:(Sparse_recovery.default_params ~sparsity:8)
  in
  let l0 = L0_sampler.create (Prng.split rng) ~dim ~params:L0_sampler.default_params in
  let f0 = F0.create (Prng.split rng) ~dim ~params:F0.default_params in
  let agm =
    Ds_agm.Agm_sketch.create (Prng.split rng) ~n ~params:(Ds_agm.Agm_sketch.default_params ~n)
  in
  let tests =
    [
      Test.make ~name:"one_sparse.update"
        (Staged.stage (fun () ->
             let i, d = next () in
             One_sparse.update one_sparse ~index:i ~delta:d));
      Test.make ~name:"sparse_recovery.update(s=8)"
        (Staged.stage (fun () ->
             let i, d = next () in
             Sparse_recovery.update sr ~index:i ~delta:d));
      Test.make ~name:"l0_sampler.update"
        (Staged.stage (fun () ->
             let i, d = next () in
             L0_sampler.update l0 ~index:i ~delta:d));
      Test.make ~name:"f0.update"
        (Staged.stage (fun () ->
             let i, d = next () in
             F0.update f0 ~index:i ~delta:d));
      Test.make ~name:"agm.update(n=256)"
        (Staged.stage (fun () ->
             let i, _ = next () in
             let u, v = Edge_index.decode ~n i in
             Ds_agm.Agm_sketch.update agm ~u ~v ~delta:1));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  Fmt.pr "%-30s %-14s@." "operation" "ns/op";
  line ();
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Fmt.pr "%-30s %-14.1f@." name t
          | Some _ | None -> Fmt.pr "%-30s (no estimate)@." name)
        results)
    tests;
  (* Full-pass wall-clock rates (dominated by structure building, so timed
     end-to-end rather than with bechamel). *)
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.05 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:2000 g in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let t_spanner =
    time (fun () ->
        ignore
          (Two_pass_spanner.run (Prng.split rng) ~n
             ~params:(Two_pass_spanner.default_params ~k:3)
             stream))
  in
  let t_additive =
    time (fun () ->
        ignore
          (Additive_spanner.run (Prng.split rng) ~n
             ~params:(Additive_spanner.default_params ~n ~d:4)
             stream))
  in
  Fmt.pr "%-30s %-14.0f (end-to-end, n=%d, %d updates x 2 passes)@." "two_pass_spanner/update"
    (1e9 *. t_spanner /. float_of_int (2 * Array.length stream))
    n (Array.length stream);
  Fmt.pr "%-30s %-14.0f (end-to-end, single pass)@." "additive_spanner/update"
    (1e9 *. t_additive /. float_of_int (Array.length stream))

(* ------------------------------------------------------------------ *)
(* E14: ingestion throughput — kernels and domain-parallel sharding     *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14" "Ingestion engine: batched update kernels + domain-parallel sharding (Sec 1)";
  let module C = Ingest_common in
  let dim = Ds_graph.Edge_index.dim 256 in
  let l0_updates = 100_000 and agm_n = 256 and agm_updates = 20_000 in
  Fmt.pr "workloads: L0 micro dim=%d (%d updates); AGM end-to-end n=%d (%d updates)@." dim
    l0_updates agm_n agm_updates;
  Fmt.pr "recommended_domain_count=%d (speedup is hardware-bound by core count)@."
    (Domain.recommended_domain_count ());
  Fmt.pr "%-26s %-14s %-10s@." "configuration" "updates/sec" "speedup";
  line ();
  let baseline_l0 = C.baseline_l0_rate ~dim ~updates:l0_updates in
  Fmt.pr "%-26s %-14.0f %-10s@." "l0 baseline (pre-kernel)" baseline_l0 "1.00";
  let kernel_l0 = C.kernel_l0_rate ~dim ~updates:l0_updates in
  Fmt.pr "%-26s %-14.0f %-10.2f@." "l0 kernelized" kernel_l0 (kernel_l0 /. baseline_l0);
  let baseline_agm = C.baseline_agm_rate ~n:agm_n ~updates:agm_updates in
  Fmt.pr "%-26s %-14.0f %-10s@." "agm baseline (pre-kernel)" baseline_agm "1.00";
  let kernel_agm = C.kernel_agm_rate ~n:agm_n ~updates:agm_updates in
  Fmt.pr "%-26s %-14.0f %-10.2f@." "agm kernelized" kernel_agm (kernel_agm /. baseline_agm);
  List.iter
    (fun domains ->
      let r = C.parallel_agm_rate ~n:agm_n ~updates:agm_updates ~domains in
      Fmt.pr "%-26s %-14.0f %-10.2f@."
        (Printf.sprintf "agm sharded, %d domains" domains)
        r (r /. baseline_agm))
    [ 1; 2; 4; 8 ];
  Fmt.pr "expected: kernels >=5x baseline single-thread; sharded scaling tracks physical@.";
  Fmt.pr "cores (flat on 1-core machines -- merge overhead only). bench/ingest.exe writes@.";
  Fmt.pr "the same numbers as machine-readable BENCH_ingest.json for regression tracking.@."

(* ------------------------------------------------------------------ *)
(* E15: chaos — the supervised coordinator under deterministic faults   *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15" "Fault injection: self-healing coordinator vs fault rate and server count";
  let n = 128 in
  let rng = Prng.create (master_seed + 15) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.06 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g in
  let module CS = Ds_sim.Cluster_sim in
  let module FP = Ds_fault.Fault_plan in
  let supervised ?allow_reingest ~plan ~servers () =
    CS.run_supervised ?allow_reingest ~plan
      (Prng.create (master_seed + 15))
      ~n ~servers ~partition:CS.Round_robin stream
  in
  Fmt.pr "graph: n=%d |E|=%d, stream %d updates@." n (Graph.num_edges g) (Array.length stream);
  let clean = supervised ~plan:FP.none ~servers:4 () in
  Fmt.pr "fault-free reference: hash=%016Lx forest correct=%b@." clean.CS.sup_merged_hash
    clean.CS.sup_forest_correct;
  Fmt.pr "@.healing sweep (re-ingestion on): merged state must equal the reference bit for bit@.";
  Fmt.pr "%-8s %-9s %-9s %-8s %-9s %-9s %-11s %-10s %-9s@." "servers" "rate" "attempts"
    "faults" "retries" "crashed" "recov(B)" "overhead" "healed";
  line ();
  List.iter
    (fun servers ->
      (* Fault-free wall clock for this server count, the overhead baseline. *)
      let t0 = Unix.gettimeofday () in
      ignore (supervised ~plan:FP.none ~servers ());
      let base = Unix.gettimeofday () -. t0 in
      List.iter
        (fun rate ->
          let plan = FP.random ~seed:(master_seed + servers) ~rate in
          let t1 = Unix.gettimeofday () in
          let r = supervised ~plan ~servers () in
          let dt = Unix.gettimeofday () -. t1 in
          let healed =
            r.CS.sup_merged_hash = clean.CS.sup_merged_hash
            && r.CS.sup_forest_correct
            && r.CS.sup_quorum = r.CS.sup_copies
          in
          Fmt.pr "%-8d %-9.2f %-9d %-8d %-9d %-9d %-11d %-10.2f %-9b@." servers rate
            r.CS.sup_attempts r.CS.sup_faults r.CS.sup_retries
            (List.length r.CS.sup_crashed_servers)
            r.CS.sup_recovery_bytes (dt /. base) healed;
          Gc.compact ())
        [ 0.02; 0.05; 0.1; 0.2; 0.4 ])
    [ 2; 4; 8 ];
  Fmt.pr "expected: healed=true at every rate -- by linearity the re-ingested sum is the@.";
  Fmt.pr "fault-free sum; overhead grows with the recovery traffic, not with the rate alone.@.";
  (* Degraded decoding: recovery forbidden, repetitions knocked out one by
     one by persistently dropping one server's envelope. *)
  let servers = 4 in
  let copies = clean.CS.sup_copies in
  let max_attempts = Ds_fault.Supervisor.default.Ds_fault.Supervisor.max_attempts in
  Fmt.pr "@.degraded decoding (re-ingestion off, %d repetitions budgeted):@." copies;
  Fmt.pr "%-14s %-9s %-16s %-9s@." "lost reps" "quorum" "certified delta" "correct";
  line ();
  List.iter
    (fun lost ->
      let drops =
        List.concat_map
          (fun m -> List.init max_attempts (fun a -> ((1, m, a), FP.Drop)))
          (List.init lost (fun m -> m))
      in
      let plan = FP.of_list ~seed:(master_seed + lost) drops in
      let r = supervised ~allow_reingest:false ~plan ~servers () in
      Fmt.pr "%-14d %-9d %-16g %-9b@." lost r.CS.sup_quorum r.CS.sup_degraded_delta
        r.CS.sup_forest_correct;
      Gc.compact ())
    [ 0; 1; 2; 3; 4 ];
  Fmt.pr "expected: every lost repetition halves the certified confidence (doubles delta);@.";
  Fmt.pr "decoding keeps succeeding from the surviving quorum until the budget nears the@.";
  Fmt.pr "ceil(log2 n) Boruvka rounds it must fund.@."

(* ------------------------------------------------------------------ *)
(* E16: telemetry — measured space vs closed-form bounds via the ledger *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16" "Telemetry: measured space vs theorem bounds (space-ledger constants)";
  let module Obs = Ds_obs in
  Obs.Export.enable ();
  Obs.Export.reset ();
  let ledger_entry phase =
    List.find_opt (fun e -> e.Obs.Ledger.phase = phase) (Obs.Ledger.entries ())
  in
  Fmt.pr "two-pass spanner: pass-1 sketch words vs k n^(1+1/k) log n (Theorem 1)@.";
  Fmt.pr "%-6s %-3s %-12s %-12s %-12s %-9s %-5s@." "n" "k" "pass1(w)" "ckpt(B)" "bound(w)" "c"
    "ok";
  line ();
  List.iter
    (fun (n, k) ->
      Obs.Export.reset ();
      let rng = Prng.create (master_seed + n + (1000 * k)) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:(12.0 /. float_of_int n) in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g in
      ignore
        (Two_pass_spanner.run (Prng.split rng) ~n
           ~params:(Two_pass_spanner.default_params ~k)
           stream);
      (match ledger_entry "two_pass.pass1" with
      | Some e ->
          Fmt.pr "%-6d %-3d %-12d %-12d %-12.0f %-9.2f %-5b@." n k e.Obs.Ledger.words
            e.Obs.Ledger.wire_bytes e.Obs.Ledger.bound_words e.Obs.Ledger.constant
            (Obs.Ledger.check e)
      | None -> Fmt.pr "%-6d %-3d (no ledger entry)@." n k);
      Gc.compact ())
    [ (64, 2); (128, 2); (256, 2); (64, 3); (128, 3); (256, 3); (384, 3); (128, 4); (256, 4) ];
  Fmt.pr "expected: at fixed k the constant c stays flat as n doubles (measured state tracks@.";
  Fmt.pr "the n^(1+1/k) curve); polylog slack keeps c well under the ledger tolerance.@.";
  Fmt.pr "@.additive spanner: total sketch words vs n d log n (Theorem 3)@.";
  Fmt.pr "%-6s %-3s %-12s %-12s %-12s %-9s %-5s@." "n" "d" "words" "agm-wire(B)" "bound(w)" "c"
    "ok";
  line ();
  List.iter
    (fun (n, d) ->
      Obs.Export.reset ();
      let rng = Prng.create (master_seed + n + d) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:(10.0 /. float_of_int n) in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g in
      ignore
        (Additive_spanner.run (Prng.split rng) ~n
           ~params:(Additive_spanner.default_params ~n ~d)
           stream);
      (match ledger_entry "additive.total" with
      | Some e ->
          Fmt.pr "%-6d %-3d %-12d %-12d %-12.0f %-9.2f %-5b@." n d e.Obs.Ledger.words
            e.Obs.Ledger.wire_bytes e.Obs.Ledger.bound_words e.Obs.Ledger.constant
            (Obs.Ledger.check e)
      | None -> Fmt.pr "%-6d %-3d (no ledger entry)@." n d);
      Gc.compact ())
    [ (128, 2); (128, 4); (128, 8); (256, 4) ];
  (* The healing counters of E15, replayed through the metrics registry:
     the same numbers dynospan chaos --metrics exports, so the two
     experiment tables share one export path. *)
  Fmt.pr "@.chaos healing counters via the registry (one export path with E15):@.";
  Obs.Export.reset ();
  let n = 128 in
  let rng = Prng.create (master_seed + 15) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.06 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g in
  let module CS = Ds_sim.Cluster_sim in
  let r =
    CS.run_supervised
      ~plan:(Ds_fault.Fault_plan.random ~seed:(master_seed + 4) ~rate:0.2)
      (Prng.create (master_seed + 15))
      ~n ~servers:4 ~partition:CS.Round_robin stream
  in
  let snap = Obs.Metrics.snapshot () in
  let c name = Option.value ~default:0 (List.assoc_opt name snap.Obs.Metrics.counters) in
  let gauge name = Option.value ~default:0 (List.assoc_opt name snap.Obs.Metrics.gauges) in
  Fmt.pr "%-28s %-10s %-10s@." "counter" "registry" "report";
  line ();
  Fmt.pr "%-28s %-10d %-10d@." "cluster.attempts" (c "cluster.attempts") r.CS.sup_attempts;
  Fmt.pr "%-28s %-10d %-10d@." "cluster.faults" (c "cluster.faults") r.CS.sup_faults;
  Fmt.pr "%-28s %-10d %-10d@." "cluster.retries" (c "cluster.retries") r.CS.sup_retries;
  Fmt.pr "%-28s %-10d %-10d@." "cluster.healed_servers" (c "cluster.healed_servers")
    (List.length r.CS.sup_reingested_servers);
  Fmt.pr "%-28s %-10d %-10d@." "cluster.reingested_updates" (c "cluster.reingested_updates")
    r.CS.sup_reingested_updates;
  Fmt.pr "%-28s %-10d %-10d@." "cluster.recovery_bytes" (c "cluster.recovery_bytes")
    r.CS.sup_recovery_bytes;
  Fmt.pr "%-28s %-10d %-10d@." "cluster.lost_servers" (c "cluster.lost_servers")
    (List.length r.CS.sup_lost_servers);
  Fmt.pr "%-28s %-10d %-10d@." "cluster.quorum (gauge)" (gauge "cluster.quorum") r.CS.sup_quorum;
  Fmt.pr "expected: registry equals report column for column -- the metrics path is a view@.";
  Fmt.pr "over the same accounting, not a second bookkeeping.@.";
  Obs.Export.disable ();
  Obs.Export.reset ()

(* ------------------------------------------------------------------ *)
(* E17: causal tracing — critical-path breakdown and counter cross-check *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17"
    "Causal tracing: critical-path breakdown (pass1/pass2/ship/decode) vs k and shard count";
  let module Obs = Ds_obs in
  let module T = Obs.Trace_tree in
  Obs.Export.enable ();
  (* Run a workload with a clean registry + ring; hand back the span
     forest, its main root, and the metrics snapshot of the same run so
     trace-derived numbers can be checked against the counters. *)
  let traced f =
    Obs.Export.reset ();
    f ();
    let forest = T.of_spans (Obs.Trace.spans ()) in
    let root = Option.get (T.main_root forest) in
    (forest, root, Obs.Metrics.snapshot ())
  in
  (* Critical-path nanoseconds attributed to each span name. *)
  let phase_table root =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun { T.p_node; p_ns } ->
        let name = p_node.T.span.Obs.Trace.name in
        Hashtbl.replace tbl name
          (Int64.add p_ns (Option.value ~default:0L (Hashtbl.find_opt tbl name))))
      (T.critical_path root);
    tbl
  in
  let pct root tbl name =
    let ns = Option.value ~default:0L (Hashtbl.find_opt tbl name) in
    100.0 *. Int64.to_float ns /. Int64.to_float (max 1L root.T.span.Obs.Trace.dur_ns)
  in
  let span_count forest name =
    let c = ref 0 in
    T.iter_forest (fun n -> if n.T.span.Obs.Trace.name = name then incr c) forest;
    !c
  in
  Fmt.pr "two-pass spanner: where the wall clock goes as k grows (n fixed)@.";
  Fmt.pr "%-6s %-3s %-10s %-8s %-8s %-10s %-8s %-9s %-8s %-9s@." "n" "k" "root(ms)" "derive%"
    "pass1%" "cluster%" "pass2%" "extract%" "other%" "path=root";
  line ();
  List.iter
    (fun (n, k) ->
      let forest, root, _snap =
        traced (fun () ->
            let rng = Prng.create (master_seed + n + (1000 * k)) in
            let g = Gen.connected_gnp (Prng.split rng) ~n ~p:(12.0 /. float_of_int n) in
            let stream =
              Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g
            in
            ignore
              (Two_pass_spanner.run (Prng.split rng) ~n
                 ~params:(Two_pass_spanner.default_params ~k)
                 stream))
      in
      ignore (span_count forest "spanner.run");
      let tbl = phase_table root in
      let path_eq_root =
        T.path_total (T.critical_path root) = root.T.span.Obs.Trace.dur_ns
      in
      Fmt.pr "%-6d %-3d %-10.2f %-8.1f %-8.1f %-10.1f %-8.1f %-9.1f %-8.1f %-9b@." n k
        (Int64.to_float root.T.span.Obs.Trace.dur_ns /. 1e6)
        (pct root tbl "spanner.derive")
        (pct root tbl "spanner.pass1")
        (pct root tbl "spanner.clustering")
        (pct root tbl "spanner.pass2")
        (pct root tbl "spanner.extract")
        (pct root tbl "spanner.run") path_eq_root;
      Gc.compact ())
    [ (256, 2); (256, 3); (256, 4) ];
  Fmt.pr "expected: table decode (extract) and structure building (derive) dominate; the@.";
  Fmt.pr "ingestion passes' share grows with k (more levels of sketches per update); the@.";
  Fmt.pr "critical path always partitions the root span exactly (path=root).@.";
  Fmt.pr "@.supervised shipping: critical path vs shard count, trace vs registry cross-check@.";
  Fmt.pr "%-8s %-10s %-9s %-7s %-9s %-18s %-18s %-18s@." "servers" "root(ms)" "sketch%"
    "ship%" "deliver%" "attempts(tr/reg)" "ships(tr/reg)" "decodes(tr/reg)";
  line ();
  List.iter
    (fun servers ->
      let n = 128 in
      let forest, root, snap =
        traced (fun () ->
            let rng = Prng.create (master_seed + 17) in
            let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.06 in
            let stream =
              Stream_gen.with_churn (Prng.split rng) ~decoys:(Graph.num_edges g) g
            in
            ignore
              (Ds_sim.Cluster_sim.run_supervised
                 ~plan:(Ds_fault.Fault_plan.random ~seed:(master_seed + 5) ~rate:0.1)
                 (Prng.split rng) ~n ~servers ~partition:Ds_sim.Cluster_sim.Round_robin
                 stream))
      in
      let c name = Option.value ~default:0 (List.assoc_opt name snap.Obs.Metrics.counters) in
      let tbl = phase_table root in
      let attempts_tr = span_count forest "fault.attempt" in
      let ships_tr = span_count forest "cluster.ship" in
      let decodes_tr = span_count forest "sketch.decode" in
      Fmt.pr "%-8d %-10.2f %-9.1f %-7.1f %-9.1f %-18s %-18s %-18s@." servers
        (Int64.to_float root.T.span.Obs.Trace.dur_ns /. 1e6)
        (pct root tbl "cluster.sketch") (pct root tbl "cluster.ship")
        (pct root tbl "cluster.deliver" +. pct root tbl "fault.attempt")
        (Printf.sprintf "%d/%d%s" attempts_tr (c "cluster.attempts")
           (if attempts_tr = c "cluster.attempts" then "=" else "!"))
        (Printf.sprintf "%d/%d%s" ships_tr (c "cluster.envelopes")
           (if ships_tr = c "cluster.envelopes" then "=" else "!"))
        (Printf.sprintf "%d/%d%s" decodes_tr (c "sketch.decode.ok")
           (if decodes_tr = c "sketch.decode.ok" then "=" else "!"));
      Gc.compact ())
    [ 2; 4; 8 ];
  Fmt.pr "expected: every trace-derived count matches its registry counter (marked '=') —@.";
  Fmt.pr "one fault.attempt span per send attempt, one cluster.ship span per serialized@.";
  Fmt.pr "envelope, one sketch.decode span per successfully decoded envelope; sketch/ship@.";
  Fmt.pr "share of the critical path shrinks as servers spread the sketching work.@.";
  Obs.Export.disable ();
  Obs.Export.reset ()

(* ------------------------------------------------------------------ *)
(* E18: parallel scaling curve of the work-stealing ingest engine       *)
(* ------------------------------------------------------------------ *)

let e18 () =
  header "E18" "Work-stealing ingest: scaling curve, efficiency and steal traffic (Sec 1)";
  let module C = Ingest_common in
  let module Obs = Ds_obs in
  let agm_n = 256 and agm_updates = 20_000 in
  let host_cores = Domain.recommended_domain_count () in
  Fmt.pr "workload: AGM end-to-end n=%d (%d updates); host cores=%d@." agm_n agm_updates
    host_cores;
  let kernel_agm = C.kernel_agm_rate ~n:agm_n ~updates:agm_updates in
  Fmt.pr "sequential kernel: %.0f updates/sec (speedup denominator)@." kernel_agm;
  Fmt.pr "%-10s %-14s %-10s %-12s %-14s@." "domains" "updates/sec" "speedup" "efficiency"
    "v1 speedup";
  line ();
  (* The v1 engine's measured curve on this workload (committed with the
     first BENCH_ingest.json): materialized per-shard copies, eager
     replicas, serial merge.  Kept inline as the before/after anchor. *)
  let v1_speedups = [ (1, 0.784); (2, 0.550); (4, 0.342); (8, 0.215) ] in
  List.iter
    (fun domains ->
      let r = C.parallel_agm_rate ~n:agm_n ~updates:agm_updates ~domains in
      let speedup = r /. kernel_agm in
      let eff = speedup /. float_of_int (min domains host_cores) in
      Fmt.pr "%-10d %-14.0f %-10.2f %-12.2f %-14s@." domains r speedup eff
        (match List.assoc_opt domains v1_speedups with
        | Some s -> Printf.sprintf "%.3f" s
        | None -> "-"))
    [ 1; 2; 4; 8 ];
  (* Steal traffic under a skewed deal: a star stream routed By_key lands
     every chunk on one worker's deque; the steals counter shows the
     other workers draining it. *)
  let module U = Ds_stream.Update in
  let star =
    Array.init agm_updates (fun i -> U.insert 0 (1 + (i mod (agm_n - 1))))
  in
  let proto =
    Ds_agm.Agm_sketch.create (Ds_util.Prng.create 7) ~n:agm_n
      ~params:(Ds_agm.Agm_sketch.default_params ~n:agm_n)
  in
  Obs.Export.enable ();
  Ds_par.Pool.with_pool ~domains:4 (fun pool ->
      Ds_par.Shard_ingest.agm pool ~policy:Ds_par.Shard_ingest.by_vertex ~workers:4 proto
        star);
  let count name =
    match List.assoc_opt name (Obs.Metrics.snapshot ()).Obs.Metrics.counters with
    | Some v -> v
    | None -> 0
  in
  Fmt.pr "skewed By_key star stream, 4 workers: %d chunks, %d stolen@."
    (count "par.ingest.batches") (count "par.ingest.steals");
  Obs.Export.disable ();
  Obs.Export.reset ();
  Fmt.pr "expected: on multi-core hosts speedup grows to ~cores and efficiency stays@.";
  Fmt.pr "above ~0.5; on 1-core hosts the curve is flat near 1.0x (the v1 engine fell@.";
  Fmt.pr "to 0.2x at 8 domains on the same machine). Steals > 0 under skew shows the@.";
  Fmt.pr "deques rebalancing a one-hot partition instead of serializing on its owner.@."

(* ------------------------------------------------------------------ *)
(* E19: the serving layer — admission control, crash-consistent         *)
(* checkpoints, kill -9 recovery under connection faults                *)
(* ------------------------------------------------------------------ *)

let e19 () =
  header "E19"
    "Serving layer: bounded-queue backpressure, torn-generation quarantine, kill -9 recovery";
  let module SS = Ds_sim.Serve_sim in
  let module FP = Ds_fault.Fault_plan in
  let fresh_dir =
    let counter = ref 0 in
    fun () ->
      incr counter;
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "dynospan-e19-%d-%d" (Unix.getpid ()) !counter)
      in
      Unix.mkdir d 0o755;
      d
  in
  let workload =
    Ds_serve.Loadgen.make ~seed:(master_seed + 19) ~tenants:2 ~streams_per_tenant:3
      ~updates:600 ~n:64 ~batch:4 ()
  in
  let frames =
    List.fold_left
      (fun a s -> a + Ds_serve.Loadgen.frame_count s)
      0 workload.Ds_serve.Loadgen.p_specs
  in
  Fmt.pr "workload: 2 tenants x 3 streams, %d ingest frames, Zipf-profiled sizes@." frames;
  Fmt.pr "@.chaos sweep: every row must converge to bit-identical envelopes@.";
  Fmt.pr "%-7s %-7s %-6s %-7s %-8s %-7s %-9s %-8s %-7s %-6s %-9s %-6s@." "rate" "crash"
    "tear" "sends" "faults" "acked" "overload" "crashes" "quar" "gens" "replayed" "match";
  line ();
  let sweep =
    [
      (0.0, 0, false);
      (0.0, 30, false);
      (0.0, 30, true);
      (0.15, 0, false);
      (0.15, 30, false);
      (0.15, 30, true);
      (0.3, 20, true);
    ]
  in
  let reports =
    List.map
      (fun (rate, crash_every, tear) ->
        let plan =
          if rate = 0.0 then FP.none else FP.random ~seed:(master_seed + 190) ~rate
        in
        let r =
          SS.run ~crash_every ~tear_on_crash:tear ~queue_bound:4 ~drain_per_tick:2
            ~checkpoint_every:32 ~burst:4 ~plan ~dir:(fresh_dir ()) workload
        in
        Fmt.pr "%-7.2f %-7d %-6b %-7d %-8d %-7d %-9d %-8d %-7d %-6d %-9d %-6b@." rate
          crash_every tear r.SS.sv_sends r.SS.sv_conn_faults r.SS.sv_acked r.SS.sv_overloaded
          r.SS.sv_crashes r.SS.sv_quarantined r.SS.sv_generations r.SS.sv_replayed
          r.SS.sv_final_match;
        ((rate, crash_every, tear), r))
      sweep
  in
  let all_match = List.for_all (fun (_, r) -> r.SS.sv_final_match) reports in
  Fmt.pr "@.every row bit-identical to the seeded mirror: %b@." all_match;
  (* Determinism: the whole report is a pure function of (seed, plan,
     knobs) — rerunning the nastiest row must reproduce it field for
     field, which is what makes any CI failure replayable at a laptop. *)
  let rerun (rate, crash_every, tear) =
    let plan = if rate = 0.0 then FP.none else FP.random ~seed:(master_seed + 190) ~rate in
    SS.run ~crash_every ~tear_on_crash:tear ~queue_bound:4 ~drain_per_tick:2
      ~checkpoint_every:32 ~burst:4 ~plan ~dir:(fresh_dir ()) workload
  in
  let nastiest = (0.3, 20, true) in
  let first = List.assoc nastiest reports in
  let second = rerun nastiest in
  Fmt.pr "deterministic replay of (rate=0.3, crash=20, tear): %b@." (first = second);
  Fmt.pr "@.expected: acked >= frames (replays re-ack); overload > 0 once the bounded@.";
  Fmt.pr "queue fills; every torn generation is quarantined without being decoded; and@.";
  Fmt.pr "match=true everywhere -- the replayed suffix is the same linear function of@.";
  Fmt.pr "the stream as the lost volatile state, so recovery is exact, not approximate.@."

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E20: KLMMS single-pass sparsifier vs two-pass vs offline exact      *)
(* ------------------------------------------------------------------ *)

let e20 () =
  header "E20"
    "KLMMS single pass (arXiv 1407.1289): eps vs space vs measured approximation factor";
  let n = 64 in
  let rng = Prng.create (master_seed + 20) in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.25 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:500 g in
  let wg = Weighted_graph.of_graph g in
  Fmt.pr "graph: n=%d |E|=%d (churn: 500 decoy edges inserted and deleted)@." n
    (Graph.num_edges g);
  Fmt.pr "%-26s %-6s %-7s %-11s %-11s %-10s %-12s@." "algorithm" "eps" "|H|" "lambda_min"
    "lambda_max" "space(w)" "space-bnd(w)";
  line ();
  let module S1 = Ds_sparsify.Sparsify1p in
  List.iter
    (fun eps ->
      let r1 = S1.run (Prng.split rng) ~n ~params:(S1.default_params ~n ~eps) ~eps stream in
      let b1 = pencil g r1.S1.sparsifier in
      Fmt.pr "%-26s %-6.2f %-7d %-11.3f %-11.3f %-10d %-12.0f@." "single-pass (KLMMS)" eps
        (Weighted_graph.num_edges r1.S1.sparsifier)
        b1.Ds_linalg.Spectral.lambda_min b1.Ds_linalg.Spectral.lambda_max r1.S1.space_words
        (S1.space_bound ~n ~eps);
      Gc.compact ();
      let r2 = Sparsify.run (Prng.split rng) ~n ~params:(Sparsify.default_params ~k:2 ~eps ~n) stream in
      let b2 = pencil g r2.Sparsify.sparsifier in
      Fmt.pr "%-26s %-6.2f %-7d %-11.3f %-11.3f %-10d %-12.0f@." "two-pass (Cor 2)" eps
        (Weighted_graph.num_edges r2.Sparsify.sparsifier)
        b2.Ds_linalg.Spectral.lambda_min b2.Ds_linalg.Spectral.lambda_max
        r2.Sparsify.space_words
        (Sparsify.space_bound ~n ~eps);
      Gc.compact ();
      let h = Ss_sparsifier.run (Prng.split rng) ~eps wg in
      let b3 = Ds_linalg.Spectral.pencil_bounds ~base:wg ~candidate:h in
      Fmt.pr "%-26s %-6.2f %-7d %-11.3f %-11.3f %-10s %-12s@." "offline SS08 (exact R)" eps
        (Weighted_graph.num_edges h) b3.Ds_linalg.Spectral.lambda_min
        b3.Ds_linalg.Spectral.lambda_max "-" "-";
      Gc.compact ())
    [ 0.5; 0.4; 0.3; 0.25 ];
  Fmt.pr "expected: the single pass holds its exact pencil bounds inside [1-eps, 1+eps]@.";
  Fmt.pr "at every eps (the two-pass table shows measured quality vs its Z budget, the@.";
  Fmt.pr "offline SS08 row is the no-streaming reference); single-pass space grows like@.";
  Fmt.pr "1/eps^2 -- at laptop scale its final chain step saturates, so |H| approaches@.";
  Fmt.pr "|E| while the sketch, not the output, carries the space story.@."

(* ------------------------------------------------------------------ *)
(* E21: live observability — scraping a serving process under load     *)
(* ------------------------------------------------------------------ *)

let e21 () =
  header "E21"
    "Live observability: STAT rollup scraped from a loaded server, then the crash flight dump";
  let module Server = Ds_serve.Server in
  let module Client = Ds_serve.Client in
  let module Loadgen = Ds_serve.Loadgen in
  let module Json = Ds_util.Json in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dynospan-e21-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let socket_path = Filename.concat dir "sock" in
  let server_pid =
    match Unix.fork () with
    | 0 ->
        Ds_obs.Export.enable ();
        let config =
          {
            (Server.default_config ~dir) with
            Server.checkpoint_every = 32;
            drain_per_tick = 16;
            flight = true;
          }
        in
        (try Server.run_unix (Server.create config) ~socket_path ~tick:0.002 ()
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let rec wait_listening tries =
    if tries = 0 then failwith "e21: server did not come up";
    if not (Sys.file_exists socket_path) then begin
      Unix.sleepf 0.02;
      wait_listening (tries - 1)
    end
  in
  wait_listening 250;
  let plan =
    Loadgen.make ~seed:(master_seed + 21) ~tenants:3 ~streams_per_tenant:3 ~updates:3_000
      ~n:64 ~batch:4 ()
  in
  let load_pid =
    match Unix.fork () with
    | 0 ->
        let client = Client.connect ~socket_path ~delay_unit:0.05 () in
        let o = Loadgen.run client plan ~ledger:None in
        Client.close client;
        Unix._exit (if o.Loadgen.o_failed_frames > 0 then 1 else 0)
    | pid -> pid
  in
  (* The scrape plane is the point: poll the STAT rollup over SRV1 while
     the loadgen child hammers the same select loop, and show the stats
     moving.  Every number below went through the bounded quantile
     sketch and the capped per-tenant table — fixed memory, live. *)
  let stat_client = Client.connect ~socket_path ~delay_unit:0.05 () in
  let jnum path doc =
    match Option.bind (Json.path path doc) Json.to_float with Some v -> v | None -> 0.0
  in
  Fmt.pr "@.polling the STAT rollup while the load runs:@.";
  Fmt.pr "%-8s %-7s %-9s %-9s %-12s %-12s@." "t(s)" "queue" "applied" "words" "p50(ms)"
    "p99(ms)";
  line ();
  let t0 = Unix.gettimeofday () in
  let done_ = ref false in
  let rows = ref 0 in
  while not !done_ do
    (match Unix.waitpid [ Unix.WNOHANG ] load_pid with
    | 0, _ -> ()
    | _ -> done_ := true);
    (match Client.stat stat_client with
    | Ok s -> (
        match Json.parse s with
        | Ok doc ->
            incr rows;
            Fmt.pr "%-8.2f %-7.0f %-9.0f %-9.0f %-12.2f %-12.2f@."
              (Unix.gettimeofday () -. t0)
              (jnum [ "queue"; "depth" ] doc)
              (jnum [ "totals"; "applied_frames" ] doc)
              (jnum [ "totals"; "words" ] doc)
              (jnum [ "ingest"; "p50" ] doc /. 1e6)
              (jnum [ "ingest"; "p99" ] doc /. 1e6)
        | Error m -> Fmt.pr "(unparseable rollup: %s)@." m)
    | Error m -> Fmt.pr "(stat failed: %s)@." m);
    if not !done_ then Unix.sleepf 0.25
  done;
  (match Client.stat stat_client with
  | Ok s -> (
      match Json.parse s with
      | Ok doc ->
          Fmt.pr "@.final per-tenant space vs quota (from the same rollup):@.";
          (match Option.bind (Json.member "tenants" doc) Json.to_obj with
          | Some tenants ->
              List.iter
                (fun (name, tj) ->
                  Fmt.pr "  %-12s %7.0f / %.0f words, p99 %.2f ms@." name
                    (jnum [ "words" ] tj) (jnum [ "quota_words" ] tj)
                    (jnum [ "ingest"; "p99" ] tj /. 1e6))
                tenants
          | None -> ())
      | Error _ -> ())
  | Error _ -> ());
  Client.close stat_client;
  (* Now the part the operator sees after an incident: kill -9 the
     server and read what the flight recorder persisted. *)
  Unix.kill server_pid Sys.sigkill;
  ignore (Unix.waitpid [] server_pid);
  (match Ds_serve.Flight.read ~dir with
  | Ok doc ->
      let spans =
        match Option.bind (Json.member "spans" doc) Json.to_list with
        | Some l -> List.length l
        | None -> 0
      in
      Fmt.pr "@.flight dump after kill -9: seq=%.0f reason=%s spans=%d@."
        (jnum [ "seq" ] doc)
        (match Option.bind (Json.member "reason" doc) Json.to_str with
        | Some r -> r
        | None -> "?")
        spans
  | Error m -> Fmt.pr "@.flight dump after kill -9: UNREADABLE (%s)@." m);
  Fmt.pr "@.expected: the rollup stays parseable and monotone (applied frames and words@.";
  Fmt.pr "grow) while the same event loop serves the load; scrapes cost one bounded@.";
  Fmt.pr "JSON render each, no per-tenant allocation growth; and the post-kill flight@.";
  Fmt.pr "dump is a complete JSON document holding the last applied spans -- the crash@.";
  Fmt.pr "story survives the process.@.";
  Fmt.pr "scraped %d rollup(s) mid-load@." !rows

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
    ("e20", e20);
    ("e21", e21);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.lowercase_ascii names
    | _ -> List.map fst experiments
  in
  Fmt.pr "Spanners and Sparsifiers in Dynamic Streams (Kapralov-Woodruff, PODC 2014)@.";
  Fmt.pr "experiment harness -- see DESIGN.md section 2 for the index@.";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          f ();
          Gc.compact ()
      | None -> Fmt.epr "unknown experiment %S (known: e1..e21)@." name)
    requested
