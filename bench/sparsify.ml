(* Single-pass sparsifier bench.

     dune exec bench/sparsify.exe [-- OUTPUT.json]

   Runs the KLMMS single-pass sparsifier over a fixed seeded suite (two
   graph families x eps in {0.5, 0.25}), verifies every run against the
   exact pencil bounds, and writes the measurements as machine-readable
   JSON (default ./BENCH_sparsify.json, schema bench_sparsify/v1) so
   bench/guard.exe can gate later PRs:

   - decode wall time (the chain: JL resistance solves + candidate sweep)
     per run, and the suite maximum;
   - sketch state in words (deterministic — a params change shows up as an
     exact delta against the committed baseline);
   - pencil_ok: 1 iff every run's exact generalized-eigenvalue bounds land
     inside [1 - eps, 1 + eps] with clean kernel.

   Ceilings live in the guard, not here: this file records what the
   machine did, the guard decides what is acceptable. *)

open Ds_util
open Ds_graph
open Ds_stream
module S1 = Ds_sparsify.Sparsify1p

let git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let master_seed = 20140721

type row = {
  label : string;
  eps : float;
  edges_in : int;
  edges_out : int;
  space_words : int;
  ingest_ms : float;
  decode_ms : float;
  lambda_min : float;
  lambda_max : float;
  ok : bool;
}

let run_case ~label ~eps g =
  let n = Graph.n g in
  let rng = Prng.create (master_seed + Hashtbl.hash (label, eps)) in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:500 g in
  let prm = S1.default_params ~n ~eps in
  let t = S1.create (Prng.split rng) ~n ~params:prm in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun (u : Update.t) -> S1.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
    stream;
  let t1 = Unix.gettimeofday () in
  let r = S1.decode (Prng.split rng) t ~eps in
  let t2 = Unix.gettimeofday () in
  let b =
    Ds_linalg.Spectral.pencil_bounds ~base:(Weighted_graph.of_graph g)
      ~candidate:r.S1.sparsifier
  in
  {
    label;
    eps;
    edges_in = Graph.num_edges g;
    edges_out = Weighted_graph.num_edges r.S1.sparsifier;
    space_words = r.S1.space_words;
    ingest_ms = 1000.0 *. (t1 -. t0);
    decode_ms = 1000.0 *. (t2 -. t1);
    lambda_min = b.Ds_linalg.Spectral.lambda_min;
    lambda_max = b.Ds_linalg.Spectral.lambda_max;
    ok =
      b.Ds_linalg.Spectral.lambda_min >= 1.0 -. eps
      && b.Ds_linalg.Spectral.lambda_max <= 1.0 +. eps
      && b.Ds_linalg.Spectral.kernel_leak < 1e-6;
  }

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_sparsify.json" in
  let n = 64 in
  let gnp = Gen.connected_gnp (Prng.create (master_seed + 20)) ~n ~p:0.25 in
  let barbell = Gen.barbell (n / 2) in
  let rows =
    List.concat_map
      (fun eps ->
        [ run_case ~label:"gnp" ~eps gnp; run_case ~label:"barbell" ~eps barbell ])
      [ 0.5; 0.25 ]
  in
  List.iter
    (fun r ->
      Printf.printf
        "sparsify bench: %-8s eps=%.2f  |E|=%-5d |H|=%-5d space=%-8d ingest=%6.1fms \
         decode=%7.1fms pencil=[%.3f, %.3f] %s\n"
        r.label r.eps r.edges_in r.edges_out r.space_words r.ingest_ms r.decode_ms
        r.lambda_min r.lambda_max
        (if r.ok then "ok" else "OUTSIDE WINDOW"))
    rows;
  let decode_ms_max = List.fold_left (fun a r -> max a r.decode_ms) 0.0 rows in
  let space_words_max = List.fold_left (fun a r -> max a r.space_words) 0 rows in
  let all_ok = List.for_all (fun r -> r.ok) rows in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"bench_sparsify/v1\",\n";
  add "  \"timestamp_utc\": \"%s\",\n" (iso8601_utc ());
  add "  \"git_sha\": \"%s\",\n" (git_sha ());
  add "  \"sparsify_decode_ms_max\": %.1f,\n" decode_ms_max;
  add "  \"sparsify_space_words_max\": %d,\n" space_words_max;
  add "  \"sparsify_pencil_ok\": %d,\n" (if all_ok then 1 else 0);
  add "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      add
        "    { \"graph\": \"%s\", \"eps\": %.2f, \"edges_in\": %d, \"edges_out\": %d, \
         \"space_words\": %d, \"ingest_ms\": %.1f, \"decode_ms\": %.1f, \"lambda_min\": \
         %.4f, \"lambda_max\": %.4f, \"ok\": %d }%s\n"
        r.label r.eps r.edges_in r.edges_out r.space_words r.ingest_ms r.decode_ms
        r.lambda_min r.lambda_max
        (if r.ok then 1 else 0)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "sparsify bench: wrote %s\n" out;
  if not all_ok then exit 1
