(* Serving-layer bench.

     dune exec bench/serve.exe [-- OUTPUT.json]

   Measures the two latencies the serving layer promises to keep bounded
   and writes them as machine-readable JSON (default ./BENCH_serve.json,
   schema bench_serve/v1) so bench/guard.exe can gate later PRs:

   - ingest round-trip latency through the real Unix-socket path (fork a
     server, drive a seeded Loadgen plan frame by frame, feed every
     ack's wall clock into a [Ds_obs.Quantile] sketch) — p50/p90/p99/
     p999 and throughput;
   - crash recovery: build a multi-tenant checkpoint store, discard the
     live server, and time [Server.create]'s recovery walk (decode +
     verify + load of the newest good generation per tenant);
   - checkpoint write: the fsync-bounded cost of one [Flush];
   - enabled-observability overhead: three paired off/on server runs of
     the same seeded workload (telemetry registry + quantiles + tracing
     enabled in the "on" child), reported as the clamped median wall
     ratio [serve_obs_overhead_frac] so the guard can hold the serve
     path's observability tax under its budget.

   Percentile ceilings live in the guard, not here: this file records
   what the machine did, the guard decides what is acceptable. *)

module Server = Ds_serve.Server
module Client = Ds_serve.Client
module Loadgen = Ds_serve.Loadgen

let git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dynospan-bench-serve-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir d 0o755;
    d

let start_server ?(obs = false) config ~socket_path =
  match Unix.fork () with
  | 0 ->
      if obs then Ds_obs.Export.enable ();
      (try Server.run_unix (Server.create config) ~socket_path ~tick:0.002 ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      let rec wait_listening tries =
        if tries = 0 then failwith "bench serve: server did not come up";
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
        | () -> Unix.close fd
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            Unix.sleepf 0.02;
            wait_listening (tries - 1)
      in
      wait_listening 250;
      pid

let stop_server pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let seed = 20140721 + 19
let tenants = 2
let streams_per_tenant = 4
let updates = 6_000
let n = 128
let batch = 8

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_serve.json" in
  let oc = open_out out in
  let plan = Loadgen.make ~seed ~tenants ~streams_per_tenant ~updates ~n ~batch () in
  let frames =
    List.fold_left (fun a s -> a + Loadgen.frame_count s) 0 plan.Loadgen.p_specs
  in
  Fmt.pr "serve bench: %d tenants x %d streams, %d frames (n=%d, batch=%d)@." tenants
    streams_per_tenant frames n batch;

  (* --- ingest latency through the socket ---------------------------- *)
  let dir = fresh_dir () in
  let socket_path = Filename.concat dir "sock" in
  let config =
    { (Server.default_config ~dir) with Server.checkpoint_every = 64; drain_per_tick = 64 }
  in
  let pid = start_server config ~socket_path in
  let client = Client.connect ~socket_path ~delay_unit:0.005 () in
  List.iter
    (fun s ->
      match
        Client.create_stream client ~tenant:s.Loadgen.l_tenant ~stream:s.Loadgen.l_stream
          ~family:s.Loadgen.l_family ~n:s.Loadgen.l_n ~seed:s.Loadgen.l_seed
      with
      | Ok _ -> ()
      | Error m -> failwith ("bench serve: create: " ^ m))
    plan.Loadgen.p_specs;
  (* Client-side wall clock per acked frame, accumulated in the same
     fixed-memory quantile sketch the serve path itself uses — so the
     bench reports the estimator we actually ship, tails included. *)
  let lat = Ds_obs.Quantile.make () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun s ->
      List.iter
        (fun payload ->
          let t = Ds_obs.Clock.now_ns () in
          (match
             Client.ingest client ~tenant:s.Loadgen.l_tenant ~stream:s.Loadgen.l_stream
               ~payload
           with
          | Ok () -> ()
          | Error m -> failwith ("bench serve: ingest: " ^ m));
          Ds_obs.Quantile.observe lat (Int64.to_int (Ds_obs.Clock.elapsed_ns t)))
        (Loadgen.batches s))
    plan.Loadgen.p_specs;
  let ingest_wall = Unix.gettimeofday () -. t0 in
  (* Checkpoint write cost: one Flush over every dirty tenant. *)
  let flush_ms =
    let t = Unix.gettimeofday () in
    List.iter
      (fun tenant ->
        match Client.flush client ~tenant with
        | Ok _ -> ()
        | Error m -> failwith ("bench serve: flush: " ^ m))
      (List.sort_uniq compare
         (List.map (fun s -> s.Loadgen.l_tenant) plan.Loadgen.p_specs));
    1000.0 *. (Unix.gettimeofday () -. t)
  in
  Client.close client;
  stop_server pid;
  let s = Ds_obs.Quantile.summarize lat in
  let ms ns = ns /. 1e6 in
  let p50 = ms s.Ds_obs.Quantile.s_p50
  and p90 = ms s.Ds_obs.Quantile.s_p90
  and p99 = ms s.Ds_obs.Quantile.s_p99
  and p999 = ms s.Ds_obs.Quantile.s_p999 in
  let rate = float_of_int frames /. ingest_wall in
  Fmt.pr "  ingest  %d frames in %.2fs (%.0f frames/s)@." frames ingest_wall rate;
  Fmt.pr "  latency p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, p999 %.3f ms@." p50 p90 p99 p999;
  Fmt.pr "  flush   %.1f ms (%d tenants, fsync-bounded)@." flush_ms tenants;

  (* --- recovery time ------------------------------------------------ *)
  (* The store just written by the socket phase is the recovery corpus:
     every stream checkpointed at full depth.  Time the walk. *)
  let t = Unix.gettimeofday () in
  let recovered = Server.create config in
  let recovery_ms = 1000.0 *. (Unix.gettimeofday () -. t) in
  let rr = Server.recovery_report recovered in
  Fmt.pr "  recovery %.1f ms (%d tenants, %d streams, %d quarantined)@." recovery_ms
    rr.Server.r_tenants rr.Server.r_streams rr.Server.r_quarantined;
  if rr.Server.r_streams <> tenants * streams_per_tenant then
    failwith "bench serve: recovery lost streams";

  (* --- enabled-observability overhead ------------------------------- *)
  (* Same seeded workload against a telemetry-off and a telemetry-on
     server child (quantiles + counters + span tracing + per-tenant
     stats all live in the "on" child), three interleaved pairs; the
     reported fraction is the median wall ratio, clamped at zero since
     on a syscall-dominated path scheduler noise swamps a few atomics. *)
  let obs_plan =
    Loadgen.make ~seed:(seed + 1) ~tenants:2 ~streams_per_tenant:2 ~updates:1_500 ~n:64
      ~batch:8 ()
  in
  let run_once ~obs =
    let dir = fresh_dir () in
    let socket_path = Filename.concat dir "sock" in
    let config =
      { (Server.default_config ~dir) with Server.checkpoint_every = 64; drain_per_tick = 64 }
    in
    let pid = start_server ~obs config ~socket_path in
    let client = Client.connect ~socket_path ~delay_unit:0.005 () in
    let t = Unix.gettimeofday () in
    let o = Loadgen.run client obs_plan ~ledger:None in
    let wall = Unix.gettimeofday () -. t in
    Client.close client;
    stop_server pid;
    if o.Loadgen.o_failed_frames > 0 then failwith "bench serve: obs phase dropped frames";
    wall
  in
  let ratios =
    List.init 3 (fun _ ->
        let off = run_once ~obs:false in
        let on = run_once ~obs:true in
        (on -. off) /. off)
  in
  let obs_overhead = max 0.0 (List.nth (List.sort compare ratios) 1) in
  Fmt.pr "  obs overhead %.2f%% (median of 3 off/on pairs: %s)@." (100.0 *. obs_overhead)
    (String.concat " " (List.map (fun r -> Printf.sprintf "%+.1f%%" (100.0 *. r)) ratios));

  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"bench_serve/v2\",\n";
  p "  \"git_sha\": \"%s\",\n" (git_sha ());
  p "  \"date\": \"%s\",\n" (iso8601_utc ());
  p "  \"timestamp\": %.0f,\n" (Unix.time ());
  p "  \"workload\": {\n";
  p "    \"tenants\": %d,\n" tenants;
  p "    \"streams_per_tenant\": %d,\n" streams_per_tenant;
  p "    \"frames\": %d,\n" frames;
  p "    \"n\": %d,\n" n;
  p "    \"batch\": %d\n" batch;
  p "  },\n";
  p "  \"ingest\": {\n";
  p "    \"frames_per_sec\": %.0f,\n" rate;
  p "    \"ingest_p50_ms\": %.3f,\n" p50;
  p "    \"ingest_p90_ms\": %.3f,\n" p90;
  p "    \"ingest_p99_ms\": %.3f,\n" p99;
  p "    \"ingest_p999_ms\": %.3f\n" p999;
  p "  },\n";
  p "  \"durability\": {\n";
  p "    \"flush_ms\": %.1f,\n" flush_ms;
  p "    \"recovery_ms\": %.1f,\n" recovery_ms;
  p "    \"recovery_streams\": %d\n" rr.Server.r_streams;
  p "  },\n";
  p "  \"observability\": {\n";
  p "    \"serve_obs_overhead_frac\": %.4f\n" obs_overhead;
  p "  }\n";
  p "}\n";
  close_out oc;
  Fmt.pr "wrote %s@." out
