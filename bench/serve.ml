(* Serving-layer bench.

     dune exec bench/serve.exe [-- OUTPUT.json]

   Measures the two latencies the serving layer promises to keep bounded
   and writes them as machine-readable JSON (default ./BENCH_serve.json,
   schema bench_serve/v1) so bench/guard.exe can gate later PRs:

   - ingest round-trip latency through the real Unix-socket path (fork a
     server, drive a seeded Loadgen plan frame by frame, record every
     ack's wall clock) — p50/p95/p99 and throughput;
   - crash recovery: build a multi-tenant checkpoint store, discard the
     live server, and time [Server.create]'s recovery walk (decode +
     verify + load of the newest good generation per tenant);
   - checkpoint write: the fsync-bounded cost of one [Flush].

   Percentile ceilings live in the guard, not here: this file records
   what the machine did, the guard decides what is acceptable. *)

module Server = Ds_serve.Server
module Client = Ds_serve.Client
module Loadgen = Ds_serve.Loadgen

let git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dynospan-bench-serve-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir d 0o755;
    d

(* Percentile over a sorted array, nearest-rank. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1 |> max 0))

let start_server config ~socket_path =
  match Unix.fork () with
  | 0 ->
      (try Server.run_unix (Server.create config) ~socket_path ~tick:0.002 ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      let rec wait_listening tries =
        if tries = 0 then failwith "bench serve: server did not come up";
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
        | () -> Unix.close fd
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            Unix.sleepf 0.02;
            wait_listening (tries - 1)
      in
      wait_listening 250;
      pid

let stop_server pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let seed = 20140721 + 19
let tenants = 2
let streams_per_tenant = 4
let updates = 6_000
let n = 128
let batch = 8

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_serve.json" in
  let oc = open_out out in
  let plan = Loadgen.make ~seed ~tenants ~streams_per_tenant ~updates ~n ~batch () in
  let frames =
    List.fold_left (fun a s -> a + Loadgen.frame_count s) 0 plan.Loadgen.p_specs
  in
  Fmt.pr "serve bench: %d tenants x %d streams, %d frames (n=%d, batch=%d)@." tenants
    streams_per_tenant frames n batch;

  (* --- ingest latency through the socket ---------------------------- *)
  let dir = fresh_dir () in
  let socket_path = Filename.concat dir "sock" in
  let config =
    { (Server.default_config ~dir) with Server.checkpoint_every = 64; drain_per_tick = 64 }
  in
  let pid = start_server config ~socket_path in
  let client = Client.connect ~socket_path ~delay_unit:0.005 () in
  List.iter
    (fun s ->
      match
        Client.create_stream client ~tenant:s.Loadgen.l_tenant ~stream:s.Loadgen.l_stream
          ~family:s.Loadgen.l_family ~n:s.Loadgen.l_n ~seed:s.Loadgen.l_seed
      with
      | Ok _ -> ()
      | Error m -> failwith ("bench serve: create: " ^ m))
    plan.Loadgen.p_specs;
  let latencies = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun s ->
      List.iter
        (fun payload ->
          let t = Unix.gettimeofday () in
          (match
             Client.ingest client ~tenant:s.Loadgen.l_tenant ~stream:s.Loadgen.l_stream
               ~payload
           with
          | Ok () -> ()
          | Error m -> failwith ("bench serve: ingest: " ^ m));
          latencies := (Unix.gettimeofday () -. t) :: !latencies)
        (Loadgen.batches s))
    plan.Loadgen.p_specs;
  let ingest_wall = Unix.gettimeofday () -. t0 in
  (* Checkpoint write cost: one Flush over every dirty tenant. *)
  let flush_ms =
    let t = Unix.gettimeofday () in
    List.iter
      (fun tenant ->
        match Client.flush client ~tenant with
        | Ok _ -> ()
        | Error m -> failwith ("bench serve: flush: " ^ m))
      (List.sort_uniq compare
         (List.map (fun s -> s.Loadgen.l_tenant) plan.Loadgen.p_specs));
    1000.0 *. (Unix.gettimeofday () -. t)
  in
  Client.close client;
  stop_server pid;
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let p50 = 1000.0 *. percentile sorted 0.50 in
  let p95 = 1000.0 *. percentile sorted 0.95 in
  let p99 = 1000.0 *. percentile sorted 0.99 in
  let rate = float_of_int frames /. ingest_wall in
  Fmt.pr "  ingest  %d frames in %.2fs (%.0f frames/s)@." frames ingest_wall rate;
  Fmt.pr "  latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms@." p50 p95 p99;
  Fmt.pr "  flush   %.1f ms (%d tenants, fsync-bounded)@." flush_ms tenants;

  (* --- recovery time ------------------------------------------------ *)
  (* The store just written by the socket phase is the recovery corpus:
     every stream checkpointed at full depth.  Time the walk. *)
  let t = Unix.gettimeofday () in
  let recovered = Server.create config in
  let recovery_ms = 1000.0 *. (Unix.gettimeofday () -. t) in
  let rr = Server.recovery_report recovered in
  Fmt.pr "  recovery %.1f ms (%d tenants, %d streams, %d quarantined)@." recovery_ms
    rr.Server.r_tenants rr.Server.r_streams rr.Server.r_quarantined;
  if rr.Server.r_streams <> tenants * streams_per_tenant then
    failwith "bench serve: recovery lost streams";

  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"bench_serve/v1\",\n";
  p "  \"git_sha\": \"%s\",\n" (git_sha ());
  p "  \"date\": \"%s\",\n" (iso8601_utc ());
  p "  \"timestamp\": %.0f,\n" (Unix.time ());
  p "  \"workload\": {\n";
  p "    \"tenants\": %d,\n" tenants;
  p "    \"streams_per_tenant\": %d,\n" streams_per_tenant;
  p "    \"frames\": %d,\n" frames;
  p "    \"n\": %d,\n" n;
  p "    \"batch\": %d\n" batch;
  p "  },\n";
  p "  \"ingest\": {\n";
  p "    \"frames_per_sec\": %.0f,\n" rate;
  p "    \"ingest_p50_ms\": %.3f,\n" p50;
  p "    \"ingest_p95_ms\": %.3f,\n" p95;
  p "    \"ingest_p99_ms\": %.3f\n" p99;
  p "  },\n";
  p "  \"durability\": {\n";
  p "    \"flush_ms\": %.1f,\n" flush_ms;
  p "    \"recovery_ms\": %.1f,\n" recovery_ms;
  p "    \"recovery_streams\": %d\n" rr.Server.r_streams;
  p "  }\n";
  p "}\n";
  close_out oc;
  Fmt.pr "wrote %s@." out
